#!/usr/bin/env bash
# Sanitizer gate: configure + build the asan preset and run the full test
# suite under AddressSanitizer/UBSan. Run from anywhere; operates on the
# repo root.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset asan -S "$repo"
cmake --build --preset asan -j "$jobs"
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
