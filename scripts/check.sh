#!/usr/bin/env bash
# CI gates. Run from anywhere; operates on the repo root.
#
#   check.sh [asan]        sanitizer gate: full test suite under ASan/UBSan
#   check.sh tsan          thread gate: ParallelSweep tests under TSan
#   check.sh chaos         robustness gate: fixed-seed chaos schedules under ASan
#   check.sh bench-smoke   perf gate: bench_micro_core --smoke vs BENCH_core.json
#   check.sh scale-smoke   scale gate: bench_scale --smoke vs BENCH_scale.json
#   check.sh stream-smoke  stream gate: bench_stream_loss --smoke vs BENCH_scale.json
#   check.sh overload-smoke  overload gate: bench_overload --smoke vs BENCH_scale.json
#   check.sh transport-smoke transport-zoo gate: bench_fig3_short_flows --smoke vs BENCH_scale.json
#   check.sh all           every gate in sequence
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-asan}"

run_asan() {
  # The full suite includes the `hybrid`-labelled flow_test (fluid bulk model
  # + packet/flow fidelity gates), so the asan lane covers it by construction.
  cmake --preset asan -S "$repo"
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
}

run_tsan() {
  # ThreadSanitizer over the multi-threaded surface: ParallelSweep jobs
  # exercise the thread-local telemetry singletons, the synchronized logger,
  # and per-simulator packet uids from several workers at once.
  # scale_test's scenario-sweep case runs whole ScenarioBuilder rigs on
  # worker threads, covering the scenario library's thread-local surfaces.
  # sharded_test/chaos_test's Sharded* cases run one fabric split across
  # worker shards, covering the SPSC handoff channels, the window barrier,
  # and the per-shard counter slots.
  # flow_test's hybrid scenarios run per-shard FluidModel replicas on worker
  # threads; the `hybrid` ctest label selects exactly those cases.
  # stream_test's `stream` label covers the mtp::stream reassembly/FEC suite;
  # its StreamSharded chaos case also runs sharded muxes on worker threads.
  # overload_test's `overload` label covers mtp::overload (admission,
  # shedding, budgets); its OverloadChaosSharded cases run the metastable-
  # failure harness on worker shards and also match the -R filter.
  cmake --preset tsan -S "$repo"
  # transport_conformance_test's `transport` label runs the registry zoo
  # (MTP/TCP/DCTCP/Homa/MPTCP) including the 1/2/4-shard digest cases, so
  # every transport's fleet also gets exercised on worker shards under TSan.
  cmake --build --preset tsan -j "$jobs" --target parallel_test chaos_test scale_test scenario_test sharded_test flow_test stream_test overload_test transport_conformance_test
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" \
    -R 'ParallelSweep|ScenarioSweep|ScenarioBuilder|Sharded'
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L hybrid
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L stream
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L overload
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L transport
}

run_chaos() {
  # Seeded fault schedules (link flaps, bursty corruption, device crashes)
  # with exactly-once / integrity / quiescence invariants, run under ASan so
  # recovery paths are also leak- and UB-checked. Fixed seeds: a failure here
  # reproduces with `build-asan/tests/chaos_test`.
  cmake --preset asan -S "$repo"
  cmake --build --preset asan -j "$jobs" --target chaos_test fault_test
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs" \
    -R 'Chaos|FaultInjector|RecoveryEdge|Impairment'
}

run_bench_smoke() {
  # Fails on a >25% events/sec regression against the recorded baseline, or
  # on any violation of the allocation-free scheduler contract.
  cmake --preset release -S "$repo"
  cmake --build --preset release -j "$jobs" --target bench_micro_core
  local out
  out="$("$repo/build/bench/bench_micro_core" --smoke)"
  echo "$out"
  local events allocs baseline allocs_max
  events="$(echo "$out" | sed -n 's/^events_per_sec=//p')"
  allocs="$(echo "$out" | sed -n 's/^allocs_per_event=//p')"
  baseline="$(sed -n 's/.*"events_per_sec": \([0-9]*\).*/\1/p' "$repo/BENCH_core.json" | head -1)"
  allocs_max="$(sed -n 's/.*"allocs_per_event_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_core.json" | head -1)"
  if [ -z "$events" ] || [ -z "$baseline" ]; then
    echo "bench-smoke: failed to parse events_per_sec (got '$events') or baseline (got '$baseline')" >&2
    exit 1
  fi
  awk -v got="$events" -v base="$baseline" 'BEGIN {
    floor = base * 0.75;
    if (got < floor) {
      printf "bench-smoke: FAIL events_per_sec %.0f < 75%% of baseline %.0f (floor %.0f)\n", got, base, floor;
      exit 1;
    }
    printf "bench-smoke: OK events_per_sec %.0f >= floor %.0f (baseline %.0f)\n", got, floor, base;
  }'
  awk -v got="$allocs" -v max="$allocs_max" 'BEGIN {
    if (got > max) {
      printf "bench-smoke: FAIL allocs_per_event %f > %f\n", got, max;
      exit 1;
    }
    printf "bench-smoke: OK allocs_per_event %f <= %f\n", got, max;
  }'
}

run_scale_smoke() {
  # Fails on a >25% events/sec regression against the recorded baseline, a
  # peak below 100k concurrent messages, an idle-message footprint above the
  # recorded bound, a serial-vs-ParallelSweep digest mismatch, or a
  # serial-vs-sharded digest mismatch on the k=16 burst. The sharded speedup
  # gate (shards=8 >= speedup_min x shards=1) only arms when the box exposes
  # at least speedup_gate_min_cores CPUs — digest equality is asserted
  # regardless, speedup on a 1-core CI box is not meaningful.
  # Hybrid gates: fig3/fig7 fluid-vs-packet foreground FCT delta within
  # hybrid_fct_delta_pct_max, bulk event collapse >= hybrid_bulk_event_ratio_min,
  # k=32 tenant-isolation digests identical across 1/2/4 shards plus a 75%
  # events/s floor, and the idle-TCP-connection heap probe under its ceiling.
  cmake --preset release -S "$repo"
  cmake --build --preset release -j "$jobs" --target bench_scale
  local out
  out="$("$repo/build/bench/bench_scale" --smoke)"
  echo "$out"
  local events peak idle match base_events peak_min idle_max
  local scores smatch s1 s8 sspeed base_s1 speed_min gate_cores
  local iconn iconn_max hdelta hdelta_max hratio hratio_min hk32 hk32eps base_k32
  events="$(echo "$out" | sed -n 's/^events_per_sec=//p')"
  peak="$(echo "$out" | sed -n 's/^peak_concurrent_msgs=//p')"
  idle="$(echo "$out" | sed -n 's/^bytes_per_idle_msg=//p')"
  match="$(echo "$out" | sed -n 's/^digest_match=//p')"
  scores="$(echo "$out" | sed -n 's/^shard_available_cores=//p')"
  smatch="$(echo "$out" | sed -n 's/^shard_digest_match=//p')"
  s1="$(echo "$out" | sed -n 's/^shard1_events_per_sec=//p')"
  s8="$(echo "$out" | sed -n 's/^shard8_events_per_sec=//p')"
  sspeed="$(echo "$out" | sed -n 's/^shard_speedup=//p')"
  iconn="$(echo "$out" | sed -n 's/^bytes_per_idle_conn=//p')"
  hdelta="$(echo "$out" | sed -n 's/^hybrid_fct_delta_pct=//p')"
  hratio="$(echo "$out" | sed -n 's/^hybrid_bulk_event_ratio=//p')"
  hk32="$(echo "$out" | sed -n 's/^hybrid_k32_digest_match=//p')"
  hk32eps="$(echo "$out" | sed -n 's/^hybrid_k32_events_per_sec=//p')"
  base_events="$(sed -n 's/.*"events_per_sec": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  peak_min="$(sed -n 's/.*"peak_concurrent_msgs_min": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  idle_max="$(sed -n 's/.*"bytes_per_idle_msg_max": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  base_s1="$(sed -n 's/.*"k16_shard1_events_per_sec": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  speed_min="$(sed -n 's/.*"speedup_min": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  gate_cores="$(sed -n 's/.*"speedup_gate_min_cores": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  iconn_max="$(sed -n 's/.*"bytes_per_idle_conn_max": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  hdelta_max="$(sed -n 's/.*"hybrid_fct_delta_pct_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  hratio_min="$(sed -n 's/.*"hybrid_bulk_event_ratio_min": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  base_k32="$(sed -n 's/.*"k32_events_per_sec": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  if [ -z "$events" ] || [ -z "$base_events" ] || [ -z "$peak" ]; then
    echo "scale-smoke: failed to parse bench output or baseline" >&2
    exit 1
  fi
  if [ "$match" != "1" ]; then
    echo "scale-smoke: FAIL serial vs ParallelSweep digest mismatch" >&2
    exit 1
  fi
  if [ -z "$smatch" ] || [ -z "$s1" ] || [ -z "$base_s1" ]; then
    echo "scale-smoke: failed to parse sharded bench output or shard baseline" >&2
    exit 1
  fi
  if [ "$smatch" != "1" ]; then
    echo "scale-smoke: FAIL serial vs sharded digest mismatch" >&2
    exit 1
  fi
  awk -v got="$events" -v base="$base_events" 'BEGIN {
    floor = base * 0.75;
    if (got < floor) {
      printf "scale-smoke: FAIL events_per_sec %.0f < 75%% of baseline %.0f (floor %.0f)\n", got, base, floor;
      exit 1;
    }
    printf "scale-smoke: OK events_per_sec %.0f >= floor %.0f (baseline %.0f)\n", got, floor, base;
  }'
  awk -v got="$peak" -v min="$peak_min" 'BEGIN {
    if (got + 0 < min + 0) {
      printf "scale-smoke: FAIL peak_concurrent_msgs %d < %d\n", got, min;
      exit 1;
    }
    printf "scale-smoke: OK peak_concurrent_msgs %d >= %d\n", got, min;
  }'
  awk -v got="$idle" -v max="$idle_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "scale-smoke: FAIL bytes_per_idle_msg %.1f > %d\n", got, max;
      exit 1;
    }
    printf "scale-smoke: OK bytes_per_idle_msg %.1f <= %d\n", got, max;
  }'
  awk -v got="$s1" -v base="$base_s1" 'BEGIN {
    floor = base * 0.75;
    if (got < floor) {
      printf "scale-smoke: FAIL shard1_events_per_sec %.0f < 75%% of baseline %.0f (floor %.0f)\n", got, base, floor;
      exit 1;
    }
    printf "scale-smoke: OK shard1_events_per_sec %.0f >= floor %.0f (baseline %.0f)\n", got, floor, base;
  }'
  if [ -z "$hdelta" ] || [ -z "$hratio" ] || [ -z "$hk32" ] || [ -z "$iconn" ]; then
    echo "scale-smoke: failed to parse hybrid/idle-conn bench output" >&2
    exit 1
  fi
  if [ "$hk32" != "1" ]; then
    echo "scale-smoke: FAIL k=32 tenant-isolation digest mismatch across 1/2/4 shards" >&2
    exit 1
  fi
  awk -v got="$iconn" -v max="$iconn_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "scale-smoke: FAIL bytes_per_idle_conn %.1f > %d\n", got, max;
      exit 1;
    }
    printf "scale-smoke: OK bytes_per_idle_conn %.1f <= %d\n", got, max;
  }'
  awk -v got="$hdelta" -v max="$hdelta_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "scale-smoke: FAIL hybrid_fct_delta_pct %.2f > %.1f\n", got, max;
      exit 1;
    }
    printf "scale-smoke: OK hybrid_fct_delta_pct %.2f <= %.1f\n", got, max;
  }'
  awk -v got="$hratio" -v min="$hratio_min" 'BEGIN {
    if (got + 0 < min + 0) {
      printf "scale-smoke: FAIL hybrid_bulk_event_ratio %.1f < %.1f\n", got, min;
      exit 1;
    }
    printf "scale-smoke: OK hybrid_bulk_event_ratio %.1fx >= %.1fx\n", got, min;
  }'
  awk -v got="$hk32eps" -v base="$base_k32" 'BEGIN {
    floor = base * 0.75;
    if (got < floor) {
      printf "scale-smoke: FAIL hybrid_k32_events_per_sec %.0f < 75%% of baseline %.0f (floor %.0f)\n", got, base, floor;
      exit 1;
    }
    printf "scale-smoke: OK hybrid_k32_events_per_sec %.0f >= floor %.0f (baseline %.0f)\n", got, floor, base;
  }'
  if [ "${scores:-0}" -ge "${gate_cores:-8}" ]; then
    awk -v got="$sspeed" -v min="$speed_min" -v s8="$s8" 'BEGIN {
      if (got + 0 < min + 0) {
        printf "scale-smoke: FAIL shard_speedup %.2f < %.1f (shard8_events_per_sec %.0f)\n", got, min, s8;
        exit 1;
      }
      printf "scale-smoke: OK shard_speedup %.2f >= %.1f (shard8_events_per_sec %.0f)\n", got, min, s8;
    }'
  else
    echo "scale-smoke: INFO shard_speedup $sspeed on $scores core(s) — gate needs >= ${gate_cores:-8} cores, skipped"
  fi
}

run_stream_smoke() {
  # mtp::stream loss-recovery gate vs the stream_baseline in BENCH_scale.json:
  # FEC p99 under its ceiling AND >= ratio_min better than ARQ-only, goodput
  # overhead under its cap, repairs actually happening, all records delivered,
  # and a hard fail on any 1/2/4-shard stream digest mismatch. Every metric is
  # simulated time (deterministic per seed); --smoke takes best-of-3
  # interleaved FEC/ARQ pairs internally per the de-flaking pattern.
  cmake --preset release -S "$repo"
  cmake --build --preset release -j "$jobs" --target bench_stream_loss
  local out
  out="$("$repo/build/bench/bench_stream_loss" --smoke)"
  echo "$out"
  local p99 ratio overhead repairs dmatch complete
  local p99_max ratio_min overhead_max repairs_min
  p99="$(echo "$out" | sed -n 's/^stream_fec_p99_us=//p')"
  ratio="$(echo "$out" | sed -n 's/^stream_p99_ratio=//p')"
  overhead="$(echo "$out" | sed -n 's/^stream_fec_overhead_pct=//p')"
  repairs="$(echo "$out" | sed -n 's/^stream_fec_repairs=//p')"
  dmatch="$(echo "$out" | sed -n 's/^stream_digest_match=//p')"
  complete="$(echo "$out" | sed -n 's/^stream_complete=//p')"
  p99_max="$(sed -n 's/.*"stream_fec_p99_us_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  ratio_min="$(sed -n 's/.*"stream_p99_ratio_min": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  overhead_max="$(sed -n 's/.*"stream_fec_overhead_pct_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  repairs_min="$(sed -n 's/.*"stream_fec_repairs_min": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  if [ -z "$p99" ] || [ -z "$ratio" ] || [ -z "$p99_max" ] || [ -z "$ratio_min" ]; then
    echo "stream-smoke: failed to parse bench output or stream_baseline" >&2
    exit 1
  fi
  if [ "$dmatch" != "1" ]; then
    echo "stream-smoke: FAIL stream digest mismatch across 1/2/4 shards" >&2
    exit 1
  fi
  if [ "$complete" != "1" ]; then
    echo "stream-smoke: FAIL not every record was delivered" >&2
    exit 1
  fi
  awk -v got="$p99" -v max="$p99_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "stream-smoke: FAIL stream_fec_p99_us %.2f > %.1f\n", got, max;
      exit 1;
    }
    printf "stream-smoke: OK stream_fec_p99_us %.2f <= %.1f\n", got, max;
  }'
  awk -v got="$ratio" -v min="$ratio_min" 'BEGIN {
    if (got + 0 < min + 0) {
      printf "stream-smoke: FAIL stream_p99_ratio %.2f < %.1f (FEC must beat ARQ-only)\n", got, min;
      exit 1;
    }
    printf "stream-smoke: OK stream_p99_ratio %.2fx >= %.1fx\n", got, min;
  }'
  awk -v got="$overhead" -v max="$overhead_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "stream-smoke: FAIL stream_fec_overhead_pct %.2f > %.1f\n", got, max;
      exit 1;
    }
    printf "stream-smoke: OK stream_fec_overhead_pct %.2f%% <= %.1f%%\n", got, max;
  }'
  awk -v got="$repairs" -v min="$repairs_min" 'BEGIN {
    if (got + 0 < min + 0) {
      printf "stream-smoke: FAIL stream_fec_repairs %d < %d (FEC never repaired)\n", got, min;
      exit 1;
    }
    printf "stream-smoke: OK stream_fec_repairs %d >= %d\n", got, min;
  }'
}

run_overload_smoke() {
  # mtp::overload metastable-failure gate vs the overload_baseline in
  # BENCH_scale.json: with the defenses disabled the crash-recovery retry
  # storm must actually collapse goodput (below its ceiling — otherwise the
  # bench isn't demonstrating anything), with them enabled goodput must
  # recover above its floor AND the admitted high-priority prober's p99 must
  # stay within ratio_max of an uncongested baseline. Any 1/2/4-shard digest
  # mismatch on the defended run is a hard fail.
  cmake --preset release -S "$repo"
  cmake --build --preset release -j "$jobs" --target bench_overload
  local out
  out="$("$repo/build/bench/bench_overload" --smoke)"
  echo "$out"
  local dis ena ratio dmatch
  local dis_max ena_min ratio_max
  dis="$(echo "$out" | sed -n 's/^overload_goodput_disabled_pct=//p')"
  ena="$(echo "$out" | sed -n 's/^overload_goodput_enabled_pct=//p')"
  ratio="$(echo "$out" | sed -n 's/^overload_p99_ratio=//p')"
  dmatch="$(echo "$out" | sed -n 's/^overload_digest_match=//p')"
  dis_max="$(sed -n 's/.*"overload_goodput_disabled_pct_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  ena_min="$(sed -n 's/.*"overload_goodput_enabled_pct_min": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  ratio_max="$(sed -n 's/.*"overload_p99_ratio_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  if [ -z "$dis" ] || [ -z "$ena" ] || [ -z "$ratio" ] || [ -z "$dis_max" ] || [ -z "$ena_min" ] || [ -z "$ratio_max" ]; then
    echo "overload-smoke: failed to parse bench output or overload_baseline" >&2
    exit 1
  fi
  if [ "$dmatch" != "1" ]; then
    echo "overload-smoke: FAIL overload digest mismatch across 1/2/4 shards" >&2
    exit 1
  fi
  awk -v got="$dis" -v max="$dis_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "overload-smoke: FAIL overload_goodput_disabled_pct %.2f > %.1f (no collapse: bench is not demonstrating metastability)\n", got, max;
      exit 1;
    }
    printf "overload-smoke: OK overload_goodput_disabled_pct %.2f%% <= %.1f%%\n", got, max;
  }'
  awk -v got="$ena" -v min="$ena_min" 'BEGIN {
    if (got + 0 < min + 0) {
      printf "overload-smoke: FAIL overload_goodput_enabled_pct %.2f < %.1f\n", got, min;
      exit 1;
    }
    printf "overload-smoke: OK overload_goodput_enabled_pct %.2f%% >= %.1f%%\n", got, min;
  }'
  awk -v got="$ratio" -v max="$ratio_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "overload-smoke: FAIL overload_p99_ratio %.2f > %.1f\n", got, max;
      exit 1;
    }
    printf "overload-smoke: OK overload_p99_ratio %.2fx <= %.1fx\n", got, max;
  }'
}

run_transport_smoke() {
  # Transport-zoo gate vs the transport_baseline in BENCH_scale.json: the
  # same closed-loop 16 KB incast through every registry transport. MTP's
  # p99 under its ceiling, Homa within ratio_max of MTP (both handshake-free
  # — Homa drifting toward DCTCP's handshake tax is a model bug), MPTCP's
  # flap recovery positive and under its ceiling, per-transport completion
  # floors, and a hard fail on any 1/2/4-shard completion-digest mismatch
  # (the bench exits non-zero on mismatch on its own). All simulated-time
  # metrics, deterministic per seed.
  cmake --preset release -S "$repo"
  cmake --build --preset release -j "$jobs" --target bench_fig3_short_flows
  local out
  out="$("$repo/build/bench/bench_fig3_short_flows" --smoke)"
  echo "$out"
  local mtp_p99 homa_p99 flap mtp_p99_max ratio_max flap_max done_min
  mtp_p99="$(echo "$out" | sed -n 's/^mtp_p99_us_16k=//p')"
  homa_p99="$(echo "$out" | sed -n 's/^homa_p99_us_16k=//p')"
  flap="$(echo "$out" | sed -n 's/^mptcp_flap_recovery_us=//p')"
  mtp_p99_max="$(sed -n 's/.*"transport_mtp_p99_us_16k_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  ratio_max="$(sed -n 's/.*"transport_homa_vs_mtp_p99_ratio_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  flap_max="$(sed -n 's/.*"transport_mptcp_flap_recovery_us_max": \([0-9.]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  done_min="$(sed -n 's/.*"transport_min_completed_16k": \([0-9]*\).*/\1/p' "$repo/BENCH_scale.json" | head -1)"
  if [ -z "$mtp_p99" ] || [ -z "$homa_p99" ] || [ -z "$flap" ] || [ -z "$mtp_p99_max" ] || [ -z "$ratio_max" ] || [ -z "$flap_max" ] || [ -z "$done_min" ]; then
    echo "transport-smoke: failed to parse bench output or transport_baseline" >&2
    exit 1
  fi
  local t dm dc
  for t in mtp tcp dctcp homa mptcp; do
    dm="$(echo "$out" | sed -n "s/^${t}_digest_match=//p")"
    if [ "$dm" != "1" ]; then
      echo "transport-smoke: FAIL $t completion digest differs across 1/2/4 shards" >&2
      exit 1
    fi
  done
  for t in mtp dctcp homa mptcp; do
    dc="$(echo "$out" | sed -n "s/^${t}_completed_16k=//p")"
    awk -v got="$dc" -v min="$done_min" -v t="$t" 'BEGIN {
      if (got + 0 < min + 0) {
        printf "transport-smoke: FAIL %s completed %d < %d 16KB messages\n", t, got, min;
        exit 1;
      }
      printf "transport-smoke: OK %s completed %d >= %d\n", t, got, min;
    }'
  done
  awk -v got="$mtp_p99" -v max="$mtp_p99_max" 'BEGIN {
    if (got + 0 > max + 0) {
      printf "transport-smoke: FAIL mtp_p99_us_16k %.2f > %.1f\n", got, max;
      exit 1;
    }
    printf "transport-smoke: OK mtp_p99_us_16k %.2f <= %.1f\n", got, max;
  }'
  awk -v homa="$homa_p99" -v mtp="$mtp_p99" -v max="$ratio_max" 'BEGIN {
    ratio = homa / mtp;
    if (ratio > max + 0) {
      printf "transport-smoke: FAIL homa p99 %.2f us is %.2fx MTP%s %.2f us (max %.1fx)\n", homa, ratio, "\x27s", mtp, max;
      exit 1;
    }
    printf "transport-smoke: OK homa/mtp p99 ratio %.2f <= %.1f\n", ratio, max;
  }'
  awk -v got="$flap" -v max="$flap_max" 'BEGIN {
    if (got + 0 <= 0) {
      printf "transport-smoke: FAIL mptcp never recovered from the link flap\n";
      exit 1;
    }
    if (got + 0 > max + 0) {
      printf "transport-smoke: FAIL mptcp_flap_recovery_us %.0f > %.0f\n", got, max;
      exit 1;
    }
    printf "transport-smoke: OK mptcp_flap_recovery_us %.0f <= %.0f\n", got, max;
  }'
}

case "$mode" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  chaos) run_chaos ;;
  bench-smoke) run_bench_smoke ;;
  scale-smoke) run_scale_smoke ;;
  stream-smoke) run_stream_smoke ;;
  overload-smoke) run_overload_smoke ;;
  transport-smoke) run_transport_smoke ;;
  all)
    run_asan
    run_tsan
    run_chaos
    run_bench_smoke
    run_scale_smoke
    run_stream_smoke
    run_overload_smoke
    run_transport_smoke
    ;;
  *)
    echo "usage: check.sh [asan|tsan|chaos|bench-smoke|scale-smoke|stream-smoke|overload-smoke|transport-smoke|all]" >&2
    exit 2
    ;;
esac
