# Empty dependencies file for bench_fig5_multipath.
# This may be replaced when dependencies are built.
