file(REMOVE_RECURSE
  "../lib/libmtp_bench_scenarios.a"
)
