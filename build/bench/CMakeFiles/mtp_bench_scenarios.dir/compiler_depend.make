# Empty compiler generated dependencies file for mtp_bench_scenarios.
# This may be replaced when dependencies are built.
