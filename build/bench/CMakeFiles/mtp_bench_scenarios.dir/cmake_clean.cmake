file(REMOVE_RECURSE
  "../lib/libmtp_bench_scenarios.a"
  "../lib/libmtp_bench_scenarios.pdb"
  "CMakeFiles/mtp_bench_scenarios.dir/scenarios.cpp.o"
  "CMakeFiles/mtp_bench_scenarios.dir/scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_bench_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
