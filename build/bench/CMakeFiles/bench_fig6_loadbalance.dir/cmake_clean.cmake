file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_loadbalance.dir/bench_fig6_loadbalance.cpp.o"
  "CMakeFiles/bench_fig6_loadbalance.dir/bench_fig6_loadbalance.cpp.o.d"
  "bench_fig6_loadbalance"
  "bench_fig6_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
