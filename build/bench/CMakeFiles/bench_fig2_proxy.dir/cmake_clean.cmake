file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_proxy.dir/bench_fig2_proxy.cpp.o"
  "CMakeFiles/bench_fig2_proxy.dir/bench_fig2_proxy.cpp.o.d"
  "bench_fig2_proxy"
  "bench_fig2_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
