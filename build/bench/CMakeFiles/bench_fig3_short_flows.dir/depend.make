# Empty dependencies file for bench_fig3_short_flows.
# This may be replaced when dependencies are built.
