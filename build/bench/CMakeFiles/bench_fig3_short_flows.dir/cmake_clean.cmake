file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_short_flows.dir/bench_fig3_short_flows.cpp.o"
  "CMakeFiles/bench_fig3_short_flows.dir/bench_fig3_short_flows.cpp.o.d"
  "bench_fig3_short_flows"
  "bench_fig3_short_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_short_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
