file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mtp.dir/bench_ablation_mtp.cpp.o"
  "CMakeFiles/bench_ablation_mtp.dir/bench_ablation_mtp.cpp.o.d"
  "bench_ablation_mtp"
  "bench_ablation_mtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
