# Empty dependencies file for bench_ablation_mtp.
# This may be replaced when dependencies are built.
