# Empty dependencies file for ml_allreduce.
# This may be replaced when dependencies are built.
