file(REMOVE_RECURSE
  "CMakeFiles/ml_allreduce.dir/ml_allreduce.cpp.o"
  "CMakeFiles/ml_allreduce.dir/ml_allreduce.cpp.o.d"
  "ml_allreduce"
  "ml_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
