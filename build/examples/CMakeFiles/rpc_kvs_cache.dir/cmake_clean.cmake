file(REMOVE_RECURSE
  "CMakeFiles/rpc_kvs_cache.dir/rpc_kvs_cache.cpp.o"
  "CMakeFiles/rpc_kvs_cache.dir/rpc_kvs_cache.cpp.o.d"
  "rpc_kvs_cache"
  "rpc_kvs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_kvs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
