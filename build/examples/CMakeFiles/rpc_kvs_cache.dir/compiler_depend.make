# Empty compiler generated dependencies file for rpc_kvs_cache.
# This may be replaced when dependencies are built.
