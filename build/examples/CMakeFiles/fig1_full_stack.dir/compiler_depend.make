# Empty compiler generated dependencies file for fig1_full_stack.
# This may be replaced when dependencies are built.
