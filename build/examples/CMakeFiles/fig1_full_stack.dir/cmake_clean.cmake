file(REMOVE_RECURSE
  "CMakeFiles/fig1_full_stack.dir/fig1_full_stack.cpp.o"
  "CMakeFiles/fig1_full_stack.dir/fig1_full_stack.cpp.o.d"
  "fig1_full_stack"
  "fig1_full_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_full_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
