# Empty dependencies file for multipath_bulk.
# This may be replaced when dependencies are built.
