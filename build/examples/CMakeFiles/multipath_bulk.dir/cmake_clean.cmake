file(REMOVE_RECURSE
  "CMakeFiles/multipath_bulk.dir/multipath_bulk.cpp.o"
  "CMakeFiles/multipath_bulk.dir/multipath_bulk.cpp.o.d"
  "multipath_bulk"
  "multipath_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
