# Empty compiler generated dependencies file for tenant_isolation.
# This may be replaced when dependencies are built.
