# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/mtp_test[1]_include.cmake")
include("/root/repo/build/tests/innetwork_test[1]_include.cmake")
include("/root/repo/build/tests/stats_workload_test[1]_include.cmake")
include("/root/repo/build/tests/advanced_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/overhead_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/paper_results_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_edge_test[1]_include.cmake")
