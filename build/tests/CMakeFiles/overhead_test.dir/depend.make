# Empty dependencies file for overhead_test.
# This may be replaced when dependencies are built.
