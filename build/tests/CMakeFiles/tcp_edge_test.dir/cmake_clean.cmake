file(REMOVE_RECURSE
  "CMakeFiles/tcp_edge_test.dir/tcp_edge_test.cpp.o"
  "CMakeFiles/tcp_edge_test.dir/tcp_edge_test.cpp.o.d"
  "tcp_edge_test"
  "tcp_edge_test.pdb"
  "tcp_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
