file(REMOVE_RECURSE
  "CMakeFiles/advanced_test.dir/advanced_test.cpp.o"
  "CMakeFiles/advanced_test.dir/advanced_test.cpp.o.d"
  "advanced_test"
  "advanced_test.pdb"
  "advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
