# Empty compiler generated dependencies file for stats_workload_test.
# This may be replaced when dependencies are built.
