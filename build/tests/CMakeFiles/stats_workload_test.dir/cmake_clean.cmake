file(REMOVE_RECURSE
  "CMakeFiles/stats_workload_test.dir/stats_workload_test.cpp.o"
  "CMakeFiles/stats_workload_test.dir/stats_workload_test.cpp.o.d"
  "stats_workload_test"
  "stats_workload_test.pdb"
  "stats_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
