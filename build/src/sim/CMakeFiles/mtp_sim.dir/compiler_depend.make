# Empty compiler generated dependencies file for mtp_sim.
# This may be replaced when dependencies are built.
