file(REMOVE_RECURSE
  "CMakeFiles/mtp_sim.dir/logging.cpp.o"
  "CMakeFiles/mtp_sim.dir/logging.cpp.o.d"
  "CMakeFiles/mtp_sim.dir/simulator.cpp.o"
  "CMakeFiles/mtp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mtp_sim.dir/time.cpp.o"
  "CMakeFiles/mtp_sim.dir/time.cpp.o.d"
  "libmtp_sim.a"
  "libmtp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
