file(REMOVE_RECURSE
  "libmtp_sim.a"
)
