file(REMOVE_RECURSE
  "CMakeFiles/mtp_core.dir/endpoint.cpp.o"
  "CMakeFiles/mtp_core.dir/endpoint.cpp.o.d"
  "libmtp_core.a"
  "libmtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
