file(REMOVE_RECURSE
  "libmtp_core.a"
)
