# Empty compiler generated dependencies file for mtp_core.
# This may be replaced when dependencies are built.
