# Empty compiler generated dependencies file for mtp_proto.
# This may be replaced when dependencies are built.
