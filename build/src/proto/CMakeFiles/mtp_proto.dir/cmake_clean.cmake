file(REMOVE_RECURSE
  "CMakeFiles/mtp_proto.dir/mtp_header.cpp.o"
  "CMakeFiles/mtp_proto.dir/mtp_header.cpp.o.d"
  "CMakeFiles/mtp_proto.dir/tcp_header.cpp.o"
  "CMakeFiles/mtp_proto.dir/tcp_header.cpp.o.d"
  "libmtp_proto.a"
  "libmtp_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
