file(REMOVE_RECURSE
  "libmtp_proto.a"
)
