# Empty dependencies file for mtp_net.
# This may be replaced when dependencies are built.
