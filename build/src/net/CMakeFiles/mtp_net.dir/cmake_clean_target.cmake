file(REMOVE_RECURSE
  "libmtp_net.a"
)
