file(REMOVE_RECURSE
  "CMakeFiles/mtp_net.dir/link.cpp.o"
  "CMakeFiles/mtp_net.dir/link.cpp.o.d"
  "libmtp_net.a"
  "libmtp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
