file(REMOVE_RECURSE
  "CMakeFiles/mtp_transport.dir/tcp.cpp.o"
  "CMakeFiles/mtp_transport.dir/tcp.cpp.o.d"
  "libmtp_transport.a"
  "libmtp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
