# Empty dependencies file for mtp_transport.
# This may be replaced when dependencies are built.
