file(REMOVE_RECURSE
  "libmtp_transport.a"
)
