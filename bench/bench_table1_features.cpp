// Table 1: feature comparison of transport approaches.
//
// Prints the paper's matrix and, for every transport implemented in this
// repository, runs a live micro-scenario per feature to verify the claimed
// check marks in simulation:
//   Data Mutation              — an in-network offload halves a message and
//                                the receiver still reassembles it
//   Low Buffering/Computation  — a device bounds its buffering using the
//                                Msg Len carried in the first packet
//   Inter-Message Independence — an L7 balancer sends consecutive messages
//                                of one sender to different replicas
//   Multi-Resource/Algorithm CC— one sender simultaneously runs ECN-window
//                                and RCP-rate control on two pathlets
//   Multi-Entity Isolation     — per-TC fair share on a shared queue
//
// Rows for transports that exist only outside this repo (QUIC, MPTCP,
// Swift, RDMA) reproduce the paper's assessment and are marked [paper].
#include <cstdio>

#include "innetwork/fair_policer.hpp"
#include "innetwork/l7_lb.hpp"
#include "innetwork/mutation_offload.hpp"
#include "mtp/endpoint.hpp"
#include "net/forwarding.hpp"
#include "net/network.hpp"
#include "scenario/paper_figs.hpp"
#include "stats/table.hpp"

using namespace mtp;
using namespace mtp::scenario;

namespace {

// --- Live checks (each returns true when the property held in simulation).

bool check_mtp_data_mutation() {
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *b, sim::Bandwidth::gbps(100), 1_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  auto offload = std::make_shared<innetwork::MutationOffload>(
      *sw, innetwork::MutationOffload::Config{.match_port = 7000});
  sw->add_ingress(offload);
  core::MtpEndpoint src(*a, {});
  core::MtpEndpoint dst(*b, {});
  std::int64_t got = 0;
  bool sender_completed = false;
  dst.listen(7000, [&](const core::ReceivedMessage& m) { got = m.bytes; });
  src.send_message(b->id(), 100'000, {.dst_port = 7000},
                   [&](proto::MsgId, sim::SimTime) { sender_completed = true; });
  net.simulator().run(sim::SimTime::milliseconds(50));
  return sender_completed && got == 50'000 && offload->messages_mutated() == 1;
}

bool check_mtp_low_buffering() {
  // A device with a 64KB budget must refuse (pass through) a 1MB message
  // after seeing only its FIRST packet — possible because every MTP packet
  // carries Msg Len.
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us, {.capacity_pkts = 2048});
  net.connect(*sw, *b, sim::Bandwidth::gbps(100), 1_us, {.capacity_pkts = 2048});
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  innetwork::MutationOffload::Config cfg{.match_port = 7000};
  cfg.receiver.max_message_bytes = 64'000;
  auto offload = std::make_shared<innetwork::MutationOffload>(*sw, cfg);
  sw->add_ingress(offload);
  core::MtpEndpoint src(*a, {});
  core::MtpEndpoint dst(*b, {});
  std::int64_t got = 0;
  net::NodeId got_src = net::kInvalidNode;
  dst.listen(7000, [&](const core::ReceivedMessage& m) {
    got = m.bytes;
    got_src = m.src;
  });
  src.send_message(b->id(), 1'000'000, {.dst_port = 7000});
  net.simulator().run(sim::SimTime::milliseconds(100));
  // Passed through untouched, no device buffering of the oversized message.
  return got == 1'000'000 && got_src == a->id() && offload->messages_mutated() == 0;
}

bool check_mtp_inter_message_independence() {
  net::Network net;
  auto* client = net.add_host("client");
  auto* sw = net.add_switch("lb");
  auto* r1 = net.add_host("r1");
  auto* r2 = net.add_host("r2");
  net.connect(*client, *sw, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *r1, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *r2, sim::Bandwidth::gbps(100), 1_us);
  sw->add_route(client->id(), 0);
  sw->add_route(r1->id(), 1);
  sw->add_route(r2->id(), 2);
  sw->add_ingress(std::make_shared<innetwork::L7LoadBalancer>(
      innetwork::L7LoadBalancer::Config{.virtual_service = 999,
                                        .replicas = {r1->id(), r2->id()}}));
  core::MtpEndpoint c(*client, {});
  core::MtpEndpoint e1(*r1, {});
  core::MtpEndpoint e2(*r2, {});
  int n1 = 0, n2 = 0, done = 0;
  e1.listen(80, [&](const core::ReceivedMessage&) { ++n1; });
  e2.listen(80, [&](const core::ReceivedMessage&) { ++n2; });
  for (int i = 0; i < 10; ++i) {
    c.send_message(999, 5000, {.dst_port = 80},
                   [&](proto::MsgId, sim::SimTime) { ++done; });
  }
  net.simulator().run(sim::SimTime::milliseconds(50));
  return n1 > 0 && n2 > 0 && done == 10;
}

bool check_mtp_multi_algorithm_cc() {
  // Two hops with different feedback kinds: the endpoint must end up running
  // a DCTCP-style window on one pathlet and an RCP rate on the other,
  // simultaneously, for the same destination.
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  auto d1 = net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us,
                        {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  auto d2 = net.connect(*sw, *b, sim::Bandwidth::gbps(10), 1_us,
                        {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  d1.forward->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  d2.forward->set_pathlet({.id = 2, .feedback = proto::FeedbackType::kRate,
                           .rcp_rtt = sim::SimTime::microseconds(10)});
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  core::MtpEndpoint src(*a, {});
  core::MtpEndpoint dst(*b, {});
  dst.listen(80, [](const core::ReceivedMessage&) {});
  src.send_message(b->id(), 2'000'000, {.dst_port = 80});
  net.simulator().run(sim::SimTime::milliseconds(20));
  const auto* cc1 = src.pathlet_cc(1, 0);
  const auto* cc2 = src.pathlet_cc(2, 0);
  return cc1 != nullptr && cc2 != nullptr && cc1->name() == "dctcp" &&
         cc2->name() == "rcp";
}

bool check_mtp_multi_entity_isolation() {
  const Fig7Result r = run_fig7("mtp-fairshare", sim::SimTime::milliseconds(15));
  return r.jain > 0.9;
}

bool check_tcp_lacks_isolation() {
  const Fig7Result r = run_fig7("dctcp-shared", sim::SimTime::milliseconds(15));
  return r.tenant2_gbps > 4 * r.tenant1_gbps;  // per-flow fairness: 8 flows win
}

}  // namespace

int main() {
  std::printf("=== Table 1: transport features for in-network computing ===\n\n");

  stats::Table t({"Transport (RPF = requests per flow)", "Mutation", "LowBuf",
                  "MsgIndep", "MultiRes CC", "Isolation", "source"});
  t.add_row({"TCP Pass-Through (many RPF)", "x", "ok", "x", "ok", "x", "[paper]"});
  t.add_row({"TCP Pass-Through (one RPF)", "x", "ok", "x", "x", "ok", "[paper]"});
  t.add_row({"TCP Termination (many RPF)", "ok", "x", "x", "ok", "x", "[paper+sim]"});
  t.add_row({"TCP Termination (one RPF)", "ok", "x", "ok", "x", "ok", "[paper]"});
  t.add_row({"DCTCP", "x", "x", "x", "x", "x", "[paper+sim]"});
  t.add_row({"UDP", "ok", "ok", "ok", "x", "x", "[paper+sim]"});
  t.add_row({"QUIC", "x", "ok", "ok", "-", "x", "[paper]"});
  t.add_row({"MPTCP", "x", "x", "ok", "ok", "x", "[paper]"});
  t.add_row({"Swift", "x", "ok", "x", "x", "x", "[paper]"});
  t.add_row({"RDMA RC", "x", "ok", "x", "x", "x", "[paper]"});
  t.add_row({"RDMA UC", "x", "ok", "x", "x", "x", "[paper]"});
  t.add_row({"RDMA UD", "ok", "ok", "ok", "x", "x", "[paper]"});
  t.add_row({"MTP (this repo)", "ok", "ok", "ok", "ok", "ok", "[verified below]"});
  t.print();

  std::printf("\nlive verification of the MTP row (and two TCP failure modes):\n\n");
  stats::Table v({"property", "scenario", "verified"});
  v.add_row({"Data Mutation", "in-network offload halves a 100KB message",
             check_mtp_data_mutation() ? "YES" : "NO"});
  v.add_row({"Low Buffering", "64KB-budget device refuses 1MB message on pkt 0",
             check_mtp_low_buffering() ? "YES" : "NO"});
  v.add_row({"Inter-Message Independence", "L7 LB splits one sender across replicas",
             check_mtp_inter_message_independence() ? "YES" : "NO"});
  v.add_row({"Multi-Resource/Algorithm CC", "DCTCP window + RCP rate on one path",
             check_mtp_multi_algorithm_cc() ? "YES" : "NO"});
  v.add_row({"Multi-Entity Isolation", "per-TC fair share on shared queue",
             check_mtp_multi_entity_isolation() ? "YES" : "NO"});
  v.add_row({"(TCP counterexample)", "DCTCP shared queue: 8-flow tenant dominates",
             check_tcp_lacks_isolation() ? "YES" : "NO"});
  v.print();
  return 0;
}
