// Figure 2: the TCP-termination trade-off at a proxy.
//
// Client --100 Gb/s--> proxy --40 Gb/s--> server. The proxy terminates the
// client's TCP connection and relays over its own connection to the server.
//
// Config A (unlimited receive window): the 60 Gb/s rate mismatch accumulates
// in the proxy — buffer occupancy grows without bound over time.
// Config B (limited receive window): buffering is bounded, but the client is
// throttled to the backend rate and bytes head-of-line block behind the
// standing buffer (relay latency).
#include <cstdio>

#include "innetwork/tcp_proxy.hpp"
#include "net/network.hpp"
#include "scenario/paper_figs.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;

namespace {

struct Result {
  std::vector<std::pair<double, double>> buffer_series;  // (ms, MB)
  double relay_p99_us = 0;
  double relay_p50_us = 0;
  double client_gbps = 0;
  double server_gbps = 0;
  telemetry::RegistrySnapshot registry;
};

Result run(bool limited_window, sim::SimTime duration) {
  net::Network net;
  net::Host* client = net.add_host("client");
  net::Host* proxy = net.add_host("proxy");
  net::Host* server = net.add_host("server");
  net.connect(*client, *proxy, sim::Bandwidth::gbps(100), 1_us, {.capacity_pkts = 1024});
  net.connect(*proxy, *server, sim::Bandwidth::gbps(40), 1_us, {.capacity_pkts = 1024});
  proxy->add_route(server->id(), 1);

  transport::TcpStack cs(*client, {});
  transport::TcpConfig pcfg;
  if (limited_window) pcfg.rcv_buf_bytes = 200 * 1000;  // 200 packets
  transport::TcpStack ps(*proxy, pcfg);
  transport::TcpStack ss(*server, {});
  stats::ThroughputMeter server_meter(100_us);
  transport::TcpSink sink(ss, 80, &server_meter);
  innetwork::TcpProxy relay(
      ps, {.listen_port = 80,
           .backend = server->id(),
           .backend_port = 80,
           .forward_buffer_bytes = limited_window ? 200 * 1000 : (std::int64_t{1} << 40)});
  transport::TcpBulkSource src(cs, proxy->id(), 80);

  Result r;
  sim::PeriodicTask probe(net.simulator(), 250_us, [&] {
    r.buffer_series.emplace_back(net.simulator().now().ms(),
                                 static_cast<double>(relay.buffer_occupancy()) / 1e6);
  });
  probe.start(sim::SimTime::microseconds(1));
  net.simulator().run(duration);

  if (!relay.relay_latency_us().empty()) {
    r.relay_p99_us = stats::percentile(relay.relay_latency_us(), 99);
    r.relay_p50_us = stats::percentile(relay.relay_latency_us(), 50);
  }
  r.client_gbps = static_cast<double>(src.connection().bytes_delivered()) * 8.0 /
                  duration.sec() / 1e9;
  r.server_gbps = server_meter.average_gbps();
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

}  // namespace

int main() {
  const sim::SimTime duration = 10_ms;
  std::printf(
      "=== Figure 2: TCP termination at a proxy (100G client side, 40G server side) "
      "===\n\n");

  const Result unlimited = run(/*limited_window=*/false, duration);
  const Result limited = run(/*limited_window=*/true, duration);

  stats::Table t({"config", "client rate (Gb/s)", "server rate (Gb/s)",
                  "final buffer (MB)", "relay p50 (us)", "relay p99 (us)"});
  t.add_row({"unlimited rwnd", stats::format("%.1f", unlimited.client_gbps),
             stats::format("%.1f", unlimited.server_gbps),
             stats::format("%.1f", unlimited.buffer_series.back().second),
             stats::format("%.0f", unlimited.relay_p50_us),
             stats::format("%.0f", unlimited.relay_p99_us)});
  t.add_row({"limited rwnd", stats::format("%.1f", limited.client_gbps),
             stats::format("%.1f", limited.server_gbps),
             stats::format("%.3f", limited.buffer_series.back().second),
             stats::format("%.0f", limited.relay_p50_us),
             stats::format("%.0f", limited.relay_p99_us)});
  t.print();

  std::printf(
      "\npaper shape: unlimited window -> buffer grows without bound at ~(100-40) Gb/s;\n"
      "limited window -> bounded buffer but client throttled + HOL blocking.\n\n");

  std::printf("proxy buffer occupancy over time (MB):\n");
  stats::Table series({"t (ms)", "unlimited rwnd", "limited rwnd"});
  const std::size_t n = std::min(unlimited.buffer_series.size(), limited.buffer_series.size());
  for (std::size_t i = 0; i < n; i += 2) {
    series.add_row({stats::format("%.2f", unlimited.buffer_series[i].first),
                    stats::format("%.2f", unlimited.buffer_series[i].second),
                    stats::format("%.3f", limited.buffer_series[i].second)});
  }
  series.print();

  telemetry::RunReport report("fig2_proxy");
  auto fill = [&](const char* config, const Result& r) {
    auto& sec = report.section(config);
    sec.add_scalar("client_gbps", r.client_gbps);
    sec.add_scalar("server_gbps", r.server_gbps);
    sec.add_scalar("final_buffer_mb", r.buffer_series.back().second);
    sec.add_scalar("relay_p50_us", r.relay_p50_us);
    sec.add_scalar("relay_p99_us", r.relay_p99_us);
    sec.set_registry(r.registry);
  };
  fill("unlimited_rwnd", unlimited);
  fill("limited_rwnd", limited);
  report.write();
  return 0;
}
