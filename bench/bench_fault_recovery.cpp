// Fault recovery: the transport zoo across a link flap on a multipath
// fabric — MTP vs TCP, with Homa-style and MPTCP baselines riding along.
//
// Scenario (bench::run_fault_recovery): snd -- sw1 ==(two 25 Gb/s two-hop
// paths via swA / swB)== sw2 -- rcv; the sw1->swA uplink goes down at 2 ms
// and comes back 4 ms later.
//
//   MTP  — messages are atomic, placed per-message (paper §3.1.2): the
//          message-aware switch pins new messages onto the surviving path the
//          moment the port drops, and re-places in-flight messages whose pin
//          died. The sender's RTO resends the packets stranded at the flap,
//          ACK path feedback re-teaches the live pathlet, and repeated
//          timeouts push the dead one onto the Path Exclude list (§3.1.3).
//          Goodput barely dips while the link is still down.
//   TCP  — the flow is hash-pinned to one path (the static first-candidate
//          policy models ECMP); the bytestream blackholes for the full
//          outage and then climbs out of RTO backoff once the link returns.
//
// Recovery time = first goodput sample at >= 80% of the pre-fault mean,
// measured from flap onset. The RunReport must show MTP strictly faster
// (guarded by tests/paper_results_test.cpp).
#include <cstdio>

#include "scenario/paper_figs.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;

int main() {
  std::printf("=== Fault recovery: %s uplink outage at %s on a two-path fabric ===\n\n",
              kFaultFlapFor.to_string().c_str(), kFaultFlapAt.to_string().c_str());

  const FaultRecoveryResult mtp = run_fault_recovery("mtp");
  const FaultRecoveryResult tcp = run_fault_recovery("tcp");
  const FaultRecoveryResult homa = run_fault_recovery("homa");
  const FaultRecoveryResult mptcp = run_fault_recovery("mptcp");

  stats::Table table({"transport", "pre-fault (Gb/s)", "during fault (Gb/s)",
                      "recovery (us)"});
  auto row = [&](const char* name, const FaultRecoveryResult& r) {
    table.add_row({name, stats::format("%.2f", r.pre_fault_gbps),
                   stats::format("%.2f", r.during_fault_gbps),
                   r.recovery_us < 0 ? "never" : stats::format("%.0f", r.recovery_us)});
  };
  row("MTP (message-aware LB)", mtp);
  row("TCP (ECMP hash-pinned)", tcp);
  row("Homa (sprayed, grant-paced)", homa);
  row("MPTCP (ECMP'd subflows)", mptcp);
  table.print();

  std::printf("\nMTP recovers %.0f us after onset vs TCP's %.0f us "
              "(outage alone is %.0f us).\n"
              "Homa keeps losing every packet sprayed at the dead uplink; MPTCP\n"
              "rides its surviving subflows but couples their windows down.\n\n",
              mtp.recovery_us, tcp.recovery_us, kFaultFlapFor.us());

  telemetry::RunReport report("fault_recovery");
  auto fill = [&](const char* name, const FaultRecoveryResult& r) {
    auto& sec = report.section(name);
    sec.add_scalar("pre_fault_gbps", r.pre_fault_gbps);
    sec.add_scalar("during_fault_gbps", r.during_fault_gbps);
    sec.add_scalar("recovery_us", r.recovery_us);
    add_transport_metrics(sec, name, r.metrics);
    sec.add_throughput("goodput", r.meter);
  };
  fill("mtp", mtp);
  fill("tcp", tcp);
  fill("homa", homa);
  fill("mptcp", mptcp);
  report.section("mtp").add_scalar(
      "recovery_speedup",
      mtp.recovery_us > 0 ? tcp.recovery_us / mtp.recovery_us : 0);
  report.write();
  return 0;
}
