// Record-delivery latency under Gilbert-Elliott bursty loss: mtp::stream
// with FEC vs ARQ-only vs TCP.
//
// Rig: 4 senders incast a record stream (4 KB records, one record per
// 20 us per sender) through one switch whose downlink to the receiver runs
// a seeded Gilbert-Elliott impairment. A lost 1-packet stream segment has
// no gap for MTP's SACK/NACK machinery to see, so ARQ-only recovery stalls
// a full retransmission timeout; systematic FEC (k = 4 data segments, r
// parity) rebuilds the segment from parity already in flight. TCP sends
// each record as an independent message over the same impaired path.
//
// Headline: p99 record-delivery latency (arrival -> in-order delivery).
// Sweep: burst-loss level x redundancy mode. Every latency/overhead metric
// is simulated time, so it is bit-deterministic per seed; --smoke still
// takes the best of 3 interleaved measurement pairs (the PR 7 de-flaking
// pattern) so the gate never keys off a single run, and hard-fails unless
// the FEC receiver digest is identical at 1/2/4 shards.
//
//   --smoke   key=value output + gates input for scripts/check.sh:
//             stream_records, stream_fec_p99_us, stream_arq_p99_us,
//             stream_p99_ratio, stream_fec_overhead_pct, stream_fec_repairs,
//             stream_digest_match
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "scenario/scenario.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;
using namespace mtp::sim::literals;

namespace {

constexpr int kSenders = 4;
constexpr int kRecords = 250;      // per sender
constexpr std::uint32_t kRecordBytes = 4000;  // = one full FEC group (k=4)
constexpr std::int64_t kAppBytes =
    static_cast<std::int64_t>(kSenders) * kRecords * kRecordBytes;

struct LossLevel {
  const char* name;
  fault::GilbertElliott::Config ge;
};

const LossLevel kLossLevels[] = {
    {"clean", {.p_good_to_bad = 0.0}},
    {"light", {.p_good_to_bad = 0.004, .p_bad_to_good = 0.5, .bad_loss = 0.5}},
    {"heavy", {.p_good_to_bad = 0.012, .p_bad_to_good = 0.5, .bad_loss = 0.5}},
};

struct Mode {
  const char* name;
  const char* transport;  ///< TransportRegistry name
  stream::StreamConfig cfg;  // ignored for TCP
  bool is_stream;
};

const Mode kModes[] = {
    {"mtp-stream-fec", "mtp", {.fec_k = 4, .fec_r = 1}, true},
    {"mtp-stream-adaptive",
     "mtp",
     {.fec_k = 4, .fec_r = 0, .adaptive_fec = true, .fec_r_max = 2},
     true},
    {"mtp-stream-arq", "mtp", {.fec_k = 4, .fec_r = 0}, true},
    {"tcp", "tcp", {}, false},
};

workload::ArrivalSchedule make_schedule() {
  workload::ArrivalSchedule sched;
  for (int rec = 0; rec < kRecords; ++rec) {
    for (std::uint32_t src = 0; src < kSenders; ++src) {
      sched.add(sim::SimTime::microseconds(10 + rec * 20), src, kRecordBytes);
    }
  }
  return sched;
}

struct Result {
  double p99_us = 0;
  double p50_us = 0;
  double mean_us = 0;
  std::size_t records = 0;
  double overhead_pct = 0;  ///< wire payload bytes vs app bytes (streams only)
  std::uint64_t fec_repairs = 0;
  std::uint64_t stream_retx = 0;
  std::uint64_t digest = 0;
};

Result run_mode(const Mode& mode, const LossLevel& loss, unsigned shards,
                std::uint64_t seed) {
  ScenarioBuilder b;
  b.seed(seed)
      .shards(shards)
      .topology(topo::incast(kSenders))
      .transport(mode.transport)
      .workload(make_schedule());
  if (mode.is_stream) b.stream_workload(mode.cfg);
  auto s = b.build();
  fault::FaultInjector inj(s->simulator(), seed * 101 + 3);
  if (loss.ge.p_good_to_bad > 0) {
    inj.impair_link(*s->topo().paths[0], loss.ge);
  }
  s->run();

  Result r;
  r.records = s->fct().count();
  if (r.records > 0) {
    r.p99_us = s->fct().p99_us();
    r.p50_us = s->fct().p50_us();
    r.mean_us = s->fct().mean_us();
  }
  if (mode.is_stream) {
    const auto st = s->stream_stats();
    r.overhead_pct =
        100.0 * (static_cast<double>(st.bytes_submitted) / kAppBytes - 1.0);
    r.fec_repairs = st.fec_repairs;
    r.stream_retx = st.stream_retx;
    r.digest = s->stream_digest();
  }
  return r;
}

int run_smoke() {
  const LossLevel& loss = kLossLevels[2];  // heavy bursty loss
  const Mode& fec = kModes[0];
  const Mode& arq = kModes[2];
  const Mode& tcp = kModes[3];

  // Best-of-3 interleaved pairs: sim-time metrics are deterministic per
  // seed, so this guards the gate against any nondeterminism regression
  // rather than against load (a divergent run would shift the best).
  Result best_fec, best_arq;
  for (int i = 0; i < 3; ++i) {
    const Result f = run_mode(fec, loss, 1, 7);
    const Result a = run_mode(arq, loss, 1, 7);
    if (i == 0 || f.p99_us < best_fec.p99_us) best_fec = f;
    if (i == 0 || a.p99_us < best_arq.p99_us) best_arq = a;
  }
  const Result t = run_mode(tcp, loss, 1, 7);

  // Shard-safety hard gate: FEC receiver state digest at 1/2/4 shards.
  const std::uint64_t d1 = run_mode(fec, loss, 1, 7).digest;
  const std::uint64_t d2 = run_mode(fec, loss, 2, 7).digest;
  const std::uint64_t d4 = run_mode(fec, loss, 4, 7).digest;
  const bool digest_match = d1 == d2 && d2 == d4;

  std::printf("stream_records=%zu\n", best_fec.records);
  std::printf("stream_fec_p99_us=%.2f\n", best_fec.p99_us);
  std::printf("stream_arq_p99_us=%.2f\n", best_arq.p99_us);
  std::printf("stream_tcp_p99_us=%.2f\n", t.p99_us);
  std::printf("stream_p99_ratio=%.2f\n",
              best_fec.p99_us > 0 ? best_arq.p99_us / best_fec.p99_us : 0.0);
  std::printf("stream_fec_overhead_pct=%.2f\n", best_fec.overhead_pct);
  std::printf("stream_fec_repairs=%llu\n",
              static_cast<unsigned long long>(best_fec.fec_repairs));
  std::printf("stream_digest_match=%d\n", digest_match ? 1 : 0);
  const bool complete = best_fec.records == kSenders * kRecords &&
                        best_arq.records == kSenders * kRecords;
  std::printf("stream_complete=%d\n", complete ? 1 : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  std::printf("=== Record p99 latency under Gilbert-Elliott loss: "
              "FEC vs ARQ-only vs TCP ===\n\n");
  telemetry::RunReport report("stream_loss");
  stats::Table table({"loss", "mode", "p50 (us)", "p99 (us)", "overhead (%)",
                      "fec repairs", "stream retx"});
  for (const LossLevel& loss : kLossLevels) {
    for (const Mode& mode : kModes) {
      const Result r = run_mode(mode, loss, 1, 7);
      table.add_row({loss.name, mode.name, stats::format("%.1f", r.p50_us),
                     stats::format("%.1f", r.p99_us),
                     mode.is_stream ? stats::format("%.1f", r.overhead_pct) : "-",
                     mode.is_stream ? stats::format("%llu", (unsigned long long)r.fec_repairs)
                                    : "-",
                     mode.is_stream ? stats::format("%llu", (unsigned long long)r.stream_retx)
                                    : "-"});
      auto& sec = report.section(std::string(loss.name) + "/" + mode.name);
      sec.add_scalar("p50_us", r.p50_us);
      sec.add_scalar("p99_us", r.p99_us);
      sec.add_scalar("mean_us", r.mean_us);
      sec.add_scalar("records", static_cast<double>(r.records));
      if (mode.is_stream) {
        sec.add_scalar("overhead_pct", r.overhead_pct);
        sec.add_scalar("fec_repairs", static_cast<double>(r.fec_repairs));
        sec.add_scalar("stream_retx", static_cast<double>(r.stream_retx));
      }
    }
  }
  table.print();
  std::printf("\nA lost 1-packet segment gives MTP's SACK/NACK nothing to "
              "see, so ARQ-only waits out the retransmission timeout; FEC "
              "rebuilds it from parity already in flight.\n");
  report.write();
  return 0;
}
