// Metastable-failure bench: crash-recovery retry storm and 8:1 incast on a
// k=8 fat-tree, with the mtp::overload defenses off vs on.
//
// Storm rig: one RPC server (5 us service time, bounded 256-deep app queue,
// capacity 200k rps) takes ~0.85x capacity of open-loop load from 8 clients
// in different pods, plus a low-rate high-priority prober. The server app
// crashes at 1 ms for 500 us (the transport keeps ACKing — requests are
// delivered, never answered), which lights a retry storm. Undefended
// clients (timeouts + 2 retries, no budget, no deadline) push offered load
// to ~3x capacity; once the app queue's delay exceeds client pendency,
// every served request's caller has already given up, and the retry inflow
// keeps the queue pinned — goodput collapses and *stays* collapsed after
// the trigger is gone. The defended run turns on receiver-driven grants,
// deadline propagation (expired work shed at the server before service),
// and per-client retry budgets: the same trigger, but the backlog drains
// and goodput recovers.
//
// Headline gates (scripts/check.sh overload-smoke vs BENCH_scale.json):
//   goodput over the post-recovery window [4 ms, 10 ms] as % of capacity —
//   disabled must collapse below its ceiling, enabled must recover above
//   its floor; p99 latency of the admitted high-priority prober at most
//   overload_p99_ratio_max x an uncongested baseline; and the defended-run
//   digest must be identical at 1/2/4 space shards (hard fail).
//
//   --smoke   key=value output for scripts/check.sh:
//             overload_calls, overload_goodput_disabled_pct,
//             overload_goodput_enabled_pct, overload_p99_base_us,
//             overload_p99_hi_us, overload_p99_ratio, overload_digest_match
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "mtp/endpoint.hpp"
#include "mtp/rpc.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::sim::literals;
using core::MtpConfig;
using core::MtpEndpoint;
using core::RpcClient;
using core::RpcReply;
using core::RpcServer;
using sim::SimTime;

namespace {

constexpr int kClients = 8;
constexpr std::uint64_t kSeed = 11;
const SimTime kServiceTime = SimTime::microseconds(5);  // capacity 200k rps
const SimTime kCrashAt = 1_ms;
const SimTime kRestartAt = SimTime::microseconds(1'500);
const SimTime kLoadEnd = 10_ms;
const SimTime kWindowStart = 4_ms;  // post-recovery measurement window
const SimTime kWindowEnd = 10_ms;
constexpr std::int64_t kMeanIntervalNs = 47'000;  // per client: ~0.85x capacity
constexpr std::int64_t kProbeIntervalNs = 97'000;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double capacity_rps() { return 1e9 / static_cast<double>(kServiceTime.ns()); }

struct StormResult {
  double goodput_pct = 0;  ///< ok completions in window vs capacity
  double p99_hi_us = 0;    ///< prober (priority 1) p99, ok-in-window only
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejected = 0;
  std::uint64_t retries = 0;
  std::uint64_t served = 0;
  std::uint64_t server_shed = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t grants = 0;
  std::uint64_t digest = 0;
  std::size_t leaked_events = 0;
};

/// One storm run. `defended` switches every overload control at once (the
/// bench's whole point is the package, not one knob); `load`/`crash` off
/// gives the uncongested prober-only baseline for the p99 ratio gate.
StormResult run_storm(bool defended, bool load, bool crash, unsigned shards) {
  net::Network net(kSeed, shards);
  net::FatTree ft(net, {.k = 8});
  net::Host* server_host = ft.host(0, 0, 0);
  std::vector<net::Host*> client_hosts;
  for (int p = 0; p < kClients; ++p) client_hosts.push_back(ft.host(p, 1, 0));
  net::Host* prober_host = ft.host(4, 2, 2);

  MtpConfig cfg;
  cfg.overload.enabled = defended;
  auto server_ep = std::make_unique<MtpEndpoint>(*server_host, cfg);
  auto prober_ep = std::make_unique<MtpEndpoint>(*prober_host, cfg);
  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  for (net::Host* h : client_hosts) eps.push_back(std::make_unique<MtpEndpoint>(*h, cfg));

  RpcServer server(*server_ep, 80);
  server.set_service_model({.service_time = kServiceTime,
                            .queue_limit = 256,
                            .shed_expired = defended});
  server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{512, "ok"};
  });
  sim::Simulator& server_sim = net.simulator(net.shard_of(*server_host));
  if (crash) {
    server_sim.schedule_at(kCrashAt, [&server] { server.crash(); });
    server_sim.schedule_at(kRestartAt, [&server] { server.restart(); });
  }

  RpcClient::Config cc;
  cc.reply_port = 9000;
  cc.timeout = SimTime::microseconds(160);
  cc.max_retries = 2;
  cc.retry_backoff_cap = SimTime::microseconds(320);
  if (defended) {
    cc.retry_budget_ratio = 0.1;
    cc.retry_budget_burst = 8.0;
    cc.deadline = SimTime::microseconds(300);
  }
  std::vector<std::unique_ptr<RpcClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    RpcClient::Config c = cc;
    c.retry_seed = kSeed * 131 + static_cast<std::uint64_t>(i);
    clients.push_back(std::make_unique<RpcClient>(*eps[i], c));
  }
  // The prober stands in for latency-sensitive foreground traffic: admitted
  // at protected priority, never retried, no deadline to shed it by.
  RpcClient prober(*prober_ep, {.reply_port = 9000, .timeout = 10_ms});

  // Per-host fold slots, written only on the owning host's shard so the
  // sharded runs stay race-free and the digest is seed-pure.
  struct alignas(64) Slot {
    std::uint64_t cell = 0;
    std::uint64_t ok_in_window = 0;
  };
  std::vector<Slot> slot(kClients);
  for (int i = 0; i < kClients; ++i) slot[i].cell = mix64(0xc11e47ULL ^ static_cast<std::uint64_t>(i));
  struct alignas(64) ProbeSlot {
    std::vector<std::int64_t> ok_latency_ns;  // completions inside the window
  };
  ProbeSlot probe;

  // Open-loop load: schedules derive from the seed alone, issued on the
  // sending host's shard.
  if (load) {
    for (int i = 0; i < kClients; ++i) {
      sim::Rng rng(mix64(kSeed * 977 + static_cast<std::uint64_t>(i)));
      sim::Simulator& s = net.simulator(net.shard_of(*client_hosts[i]));
      RpcClient* cl = clients[i].get();
      MtpEndpoint* ep = eps[i].get();
      Slot* sl = &slot[i];
      std::int64_t t = rng.uniform_int(0, kMeanIntervalNs);
      while (t < kLoadEnd.ns()) {
        s.schedule_at(SimTime::nanoseconds(t), [cl, ep, sl, server_host] {
          cl->call(server_host->id(), 80, "work", 512,
                   [ep, sl](const RpcReply& r) {
                     const SimTime now = ep->host().simulator().now();
                     if (r.ok && now >= kWindowStart && now < kWindowEnd) {
                       ++sl->ok_in_window;
                     }
                     sl->cell = mix64(sl->cell ^ (r.ok ? 0x600dULL : 0xbadULL) ^
                                      (r.rejected ? 0x7e7ec7ULL : 0) ^
                                      static_cast<std::uint64_t>(r.latency.ns()));
                   });
        });
        // Jittered inter-arrival: mean kMeanIntervalNs, +-10%.
        t += kMeanIntervalNs * 9 / 10 + rng.uniform_int(0, kMeanIntervalNs / 5);
      }
    }
  }
  {
    sim::Simulator& s = net.simulator(net.shard_of(*prober_host));
    MtpEndpoint* ep = prober_ep.get();
    for (std::int64_t t = 50'000; t < kLoadEnd.ns(); t += kProbeIntervalNs) {
      s.schedule_at(SimTime::nanoseconds(t), [&prober, ep, &probe, server_host] {
        prober.call(server_host->id(), 80, "probe", 512,
                    [ep, &probe](const RpcReply& r) {
                      const SimTime now = ep->host().simulator().now();
                      if (r.ok && now >= kWindowStart && now < kWindowEnd) {
                        probe.ok_latency_ns.push_back(r.latency.ns());
                      }
                    },
                    /*priority=*/1);
      });
    }
  }

  net.run(50_ms);

  StormResult res;
  for (const auto& cl : clients) {
    res.ok += cl->completed();
    res.timeouts += cl->timed_out();
    res.rejected += cl->rejected();
    res.retries += cl->retries();
  }
  std::uint64_t ok_in_window = 0;
  for (const Slot& s : slot) ok_in_window += s.ok_in_window;
  ok_in_window += probe.ok_latency_ns.size();
  const double window_s =
      static_cast<double>((kWindowEnd - kWindowStart).ns()) / 1e9;
  res.goodput_pct =
      100.0 * static_cast<double>(ok_in_window) / (capacity_rps() * window_s);
  if (!probe.ok_latency_ns.empty()) {
    std::sort(probe.ok_latency_ns.begin(), probe.ok_latency_ns.end());
    const std::size_t idx =
        std::min(probe.ok_latency_ns.size() - 1,
                 static_cast<std::size_t>(0.99 * static_cast<double>(probe.ok_latency_ns.size())));
    res.p99_hi_us = static_cast<double>(probe.ok_latency_ns[idx]) / 1e3;
  }
  res.served = server.requests_served();
  res.server_shed = server.shed_expired();
  res.queue_drops = server.queue_drops();
  res.grants = server_ep->grants_issued();
  for (unsigned sh = 0; sh < net.shards(); ++sh) {
    res.leaked_events += net.simulator(sh).pending_events();
  }
  std::uint64_t d = 0;
  for (const Slot& s : slot) d ^= s.cell;
  res.digest = mix64(d ^ mix64(res.ok) ^ mix64(res.timeouts) ^
                     mix64(res.rejected) ^ mix64(res.retries) ^
                     mix64(res.served) ^ mix64(res.server_shed) ^
                     mix64(res.queue_drops) ^
                     mix64(server_ep->busy_rejects_sent()) ^
                     mix64(static_cast<std::uint64_t>(probe.ok_latency_ns.size())));
  return res;
}

struct IncastResult {
  double fct_us = 0;  ///< last message's completion
  std::uint64_t grants = 0;
  bool all_delivered = false;
};

/// 8:1 incast across pods: with admission on, the receiver's grants pace
/// the senders instead of the last-hop queue absorbing the burst.
IncastResult run_incast(bool on) {
  net::Network net(kSeed, 1);
  net::FatTree ft(net, {.k = 8});
  net::Host* rx_host = ft.host(0, 3, 3);
  MtpConfig cfg;
  cfg.overload.enabled = on;
  cfg.overload.admission.grant_horizon = 10_us;
  MtpEndpoint rx(*rx_host, cfg);
  std::uint64_t delivered = 0;
  rx.listen_any([&](const core::ReceivedMessage&) { ++delivered; });
  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  SimTime last_fct;
  for (int p = 0; p < 8; ++p) {
    eps.push_back(std::make_unique<MtpEndpoint>(*ft.host(p, 2, 1), cfg));
    eps.back()->send_message(rx_host->id(), 500'000, {.dst_port = 80},
                             [&last_fct](proto::MsgId, SimTime fct) {
                               last_fct = std::max(last_fct, fct);
                             });
  }
  net.run(500_ms);
  IncastResult r;
  r.fct_us = static_cast<double>(last_fct.ns()) / 1e3;
  r.grants = rx.grants_issued();
  r.all_delivered = delivered == 8;
  return r;
}

int run_smoke() {
  // Best-of-3 interleaved pairs (the de-flaking pattern): every metric is
  // simulated time and thus deterministic per seed, so divergence across
  // the three runs would itself flag a nondeterminism regression; "best"
  // for the gate is the least-collapsed disabled run and the
  // least-recovered enabled run never actually differing.
  StormResult dis, ena;
  for (int i = 0; i < 3; ++i) {
    const StormResult d = run_storm(false, true, true, 1);
    const StormResult e = run_storm(true, true, true, 1);
    if (i == 0 || d.goodput_pct > dis.goodput_pct) dis = d;
    if (i == 0 || e.goodput_pct < ena.goodput_pct) ena = e;
  }
  const StormResult base = run_storm(true, false, false, 1);

  // Shard-safety hard gate: defended-run digest at 1/2/4 shards.
  const std::uint64_t d1 = run_storm(true, true, true, 1).digest;
  const std::uint64_t d2 = run_storm(true, true, true, 2).digest;
  const std::uint64_t d4 = run_storm(true, true, true, 4).digest;
  const bool digest_match = d1 == d2 && d2 == d4;

  std::printf("overload_calls=%llu\n",
              static_cast<unsigned long long>(ena.ok + ena.timeouts + ena.rejected));
  std::printf("overload_goodput_disabled_pct=%.2f\n", dis.goodput_pct);
  std::printf("overload_goodput_enabled_pct=%.2f\n", ena.goodput_pct);
  std::printf("overload_p99_base_us=%.2f\n", base.p99_hi_us);
  std::printf("overload_p99_hi_us=%.2f\n", ena.p99_hi_us);
  std::printf("overload_p99_ratio=%.2f\n",
              base.p99_hi_us > 0 ? ena.p99_hi_us / base.p99_hi_us : 0.0);
  std::printf("overload_retries_disabled=%llu\n",
              static_cast<unsigned long long>(dis.retries));
  std::printf("overload_retries_enabled=%llu\n",
              static_cast<unsigned long long>(ena.retries));
  std::printf("overload_server_shed=%llu\n",
              static_cast<unsigned long long>(ena.server_shed));
  std::printf("overload_digest_match=%d\n", digest_match ? 1 : 0);
  std::printf("overload_leaked_events=%zu\n", dis.leaked_events + ena.leaked_events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  std::printf("=== Metastable retry storm on a k=8 fat-tree: overload "
              "defenses off vs on ===\n\n");
  telemetry::RunReport report("overload");
  stats::Table table({"defenses", "goodput (%)", "prober p99 (us)", "ok",
                      "timeouts", "rejected", "retries", "served", "shed",
                      "queue drops"});
  const StormResult base = run_storm(true, false, false, 1);
  for (const bool defended : {false, true}) {
    const StormResult r = run_storm(defended, true, true, 1);
    table.add_row({defended ? "on" : "off", stats::format("%.1f", r.goodput_pct),
                   stats::format("%.1f", r.p99_hi_us),
                   stats::format("%llu", (unsigned long long)r.ok),
                   stats::format("%llu", (unsigned long long)r.timeouts),
                   stats::format("%llu", (unsigned long long)r.rejected),
                   stats::format("%llu", (unsigned long long)r.retries),
                   stats::format("%llu", (unsigned long long)r.served),
                   stats::format("%llu", (unsigned long long)r.server_shed),
                   stats::format("%llu", (unsigned long long)r.queue_drops)});
    auto& sec = report.section(defended ? "storm/defended" : "storm/undefended");
    sec.add_scalar("goodput_pct", r.goodput_pct);
    sec.add_scalar("p99_hi_us", r.p99_hi_us);
    sec.add_scalar("retries", static_cast<double>(r.retries));
    sec.add_scalar("server_shed", static_cast<double>(r.server_shed));
  }
  table.print();
  std::printf("\nUncongested prober baseline p99: %.1f us\n", base.p99_hi_us);

  std::printf("\n=== 8:1 cross-pod incast: receiver-driven admission ===\n\n");
  stats::Table itable({"admission", "last FCT (us)", "grants", "complete"});
  for (const bool on : {false, true}) {
    const IncastResult r = run_incast(on);
    itable.add_row({on ? "on" : "off", stats::format("%.1f", r.fct_us),
                    stats::format("%llu", (unsigned long long)r.grants),
                    r.all_delivered ? "yes" : "NO"});
    auto& sec = report.section(on ? "incast/admission" : "incast/plain");
    sec.add_scalar("fct_us", r.fct_us);
    sec.add_scalar("grants", static_cast<double>(r.grants));
  }
  itable.print();
  std::printf("\nThe collapse is metastable: the crash lasts 500 us, but the "
              "undefended goodput stays collapsed long after the trigger is "
              "gone — served work whose caller already gave up plus retry "
              "inflow above capacity is a self-sustaining state.\n");
  report.write();
  return 0;
}
