// Microbenchmarks of the substrate (google-benchmark): event-queue
// operations, header serialization, queue datapaths, and end-to-end
// simulated-packet throughput. These guard the simulator's performance —
// packet-level experiments execute tens of millions of events.
#include <benchmark/benchmark.h>

#include "innetwork/queues.hpp"
#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "proto/mtp_header.hpp"
#include "sim/simulator.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < batch; ++i) {
      sim.schedule(sim::SimTime::nanoseconds(i % 64), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

void BM_SimulatorCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(sim.schedule(1_us, [] {}));
    }
    for (auto id : ids) sim.cancel(id);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorCancel);

proto::MtpHeader typical_data_header() {
  proto::MtpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.msg_id = 424242;
  h.msg_len_bytes = 1'000'000;
  h.msg_len_pkts = 1000;
  h.pkt_num = 500;
  h.pkt_offset = 500'000;
  h.pkt_len = 1000;
  h.path_feedback = {{1, 0, {proto::FeedbackType::kEcn, 1}},
                     {2, 0, {proto::FeedbackType::kRate, 40'000'000'000}}};
  return h;
}

void BM_MtpHeaderSerialize(benchmark::State& state) {
  const proto::MtpHeader h = typical_data_header();
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    h.serialize(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(h.wire_size()));
}
BENCHMARK(BM_MtpHeaderSerialize);

void BM_MtpHeaderParse(benchmark::State& state) {
  const proto::MtpHeader h = typical_data_header();
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  for (auto _ : state) {
    auto parsed = proto::MtpHeader::parse(buf);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_MtpHeaderParse);

net::Packet make_pkt(proto::TrafficClassId tc) {
  net::Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload_bytes = 1000;
  p.header_bytes = 64;
  p.tc = tc;
  proto::MtpHeader h;
  h.msg_len_pkts = 1;
  h.pkt_len = 1000;
  p.header = h;
  return p;
}

void BM_DropTailQueue(benchmark::State& state) {
  net::DropTailQueue q({.capacity_pkts = 1024, .ecn_threshold_pkts = 64});
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.enqueue(make_pkt(0));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DropTailQueue);

void BM_WfqQueue(benchmark::State& state) {
  innetwork::WfqQueue q({.per_tc_capacity_pkts = 1024});
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.enqueue(make_pkt(static_cast<proto::TrafficClassId>(i % 4)));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_WfqQueue);

// End-to-end: packets/second the full stack simulates (hosts, switch,
// queues, MTP endpoints with acking).
void BM_EndToEndMtpTransfer(benchmark::State& state) {
  for (auto _ : state) {
    net::Network net;
    auto* a = net.add_host("a");
    auto* b = net.add_host("b");
    auto* sw = net.add_switch("sw");
    net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us);
    net.connect(*sw, *b, sim::Bandwidth::gbps(100), 1_us);
    sw->add_route(a->id(), 0);
    sw->add_route(b->id(), 1);
    core::MtpEndpoint src(*a, {});
    core::MtpEndpoint dst(*b, {});
    dst.listen(80, [](const core::ReceivedMessage&) {});
    src.send_message(b->id(), 1'000'000, {.dst_port = 80});
    net.simulator().run();
    benchmark::DoNotOptimize(dst.msgs_delivered());
  }
  // 1000 data packets + 1000 acks per iteration.
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EndToEndMtpTransfer)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
