// Microbenchmarks of the substrate (google-benchmark): event-queue
// operations, header serialization, queue datapaths, and end-to-end
// simulated-packet throughput. These guard the simulator's performance —
// packet-level experiments execute tens of millions of events.
//
// Two extra facilities beyond plain google-benchmark:
//  - a global operator new/delete counter, so the hot benchmarks report
//    allocs_per_event alongside events_per_sec (the allocation-free core
//    contract, docs/perf.md);
//  - a --smoke mode that runs a fixed workload and prints machine-readable
//    `events_per_sec=` / `allocs_per_event=` lines for scripts/check.sh to
//    compare against the recorded baseline in BENCH_core.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>

#include "innetwork/queues.hpp"
#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "proto/mtp_header.hpp"
#include "sim/simulator.hpp"

namespace {
// Counts every heap allocation in the process (benchmark library included).
// Benchmarks read deltas around their timed loop, so the noise floor is
// whatever the loop itself allocates — which is exactly the number we want.
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < batch; ++i) {
      sim.schedule(sim::SimTime::nanoseconds(i % 64), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

// Steady-state scheduler churn: one warmed-up simulator, waves of
// schedule+run. This is the shape every long experiment settles into, and
// the allocation-free contract applies exactly here: allocs_per_event must
// read 0.00 (slot pool, heap storage, and free list are all recycled).
void BM_SimulatorSteadyChurn(benchmark::State& state) {
  sim::Simulator sim;
  int counter = 0;
  for (int i = 0; i < 512; ++i) {
    sim.schedule(sim::SimTime::nanoseconds(i % 64), [&counter] { ++counter; });
  }
  sim.run();  // warm-up: grow pool and heap to steady state
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      sim.schedule(sim::SimTime::nanoseconds(i % 64), [&counter] { ++counter; });
    }
    events += sim.run();
    benchmark::DoNotOptimize(counter);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_event"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(events));
}
BENCHMARK(BM_SimulatorSteadyChurn);

void BM_SimulatorCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(sim.schedule(1_us, [] {}));
    }
    for (auto id : ids) sim.cancel(id);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorCancel);

proto::MtpHeader typical_data_header() {
  proto::MtpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.msg_id = 424242;
  h.msg_len_bytes = 1'000'000;
  h.msg_len_pkts = 1000;
  h.pkt_num = 500;
  h.pkt_offset = 500'000;
  h.pkt_len = 1000;
  h.path_feedback() = {{1, 0, {proto::FeedbackType::kEcn, 1}},
                     {2, 0, {proto::FeedbackType::kRate, 40'000'000'000}}};
  return h;
}

void BM_MtpHeaderSerialize(benchmark::State& state) {
  const proto::MtpHeader h = typical_data_header();
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    h.serialize(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(h.wire_size()));
}
BENCHMARK(BM_MtpHeaderSerialize);

void BM_MtpHeaderParse(benchmark::State& state) {
  const proto::MtpHeader h = typical_data_header();
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  for (auto _ : state) {
    auto parsed = proto::MtpHeader::parse(buf);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_MtpHeaderParse);

net::Packet make_pkt(proto::TrafficClassId tc) {
  net::Packet p;
  p.src = 1;
  p.dst = 2;
  p.payload_bytes = 1000;
  p.header_bytes = 64;
  p.tc = tc;
  proto::MtpHeader h;
  h.msg_len_pkts = 1;
  h.pkt_len = 1000;
  p.header = h;
  return p;
}

void BM_DropTailQueue(benchmark::State& state) {
  net::DropTailQueue q({.capacity_pkts = 1024, .ecn_threshold_pkts = 64});
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.enqueue(make_pkt(0));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DropTailQueue);

void BM_WfqQueue(benchmark::State& state) {
  innetwork::WfqQueue q({.per_tc_capacity_pkts = 1024});
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.enqueue(make_pkt(static_cast<proto::TrafficClassId>(i % 4)));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_WfqQueue);

// One end-to-end MTP transfer over host -> switch -> host; the workload
// behind BM_EndToEndMtpTransfer and the --smoke probe. Returns the number of
// simulator events executed.
std::uint64_t run_e2e_transfer() {
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *b, sim::Bandwidth::gbps(100), 1_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  core::MtpEndpoint src(*a, {});
  core::MtpEndpoint dst(*b, {});
  dst.listen(80, [](const core::ReceivedMessage&) {});
  src.send_message(b->id(), 1'000'000, {.dst_port = 80});
  net.simulator().run();
  benchmark::DoNotOptimize(dst.msgs_delivered());
  return net.simulator().events_executed();
}

// End-to-end: packets/second the full stack simulates (hosts, switch,
// queues, MTP endpoints with acking). Reports events_per_sec and
// allocs_per_event (whole-stack: endpoint bookkeeping included, so this is
// the honest per-event allocation trajectory, not just the kernel's).
void BM_EndToEndMtpTransfer(benchmark::State& state) {
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    events += run_e2e_transfer();
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  // 1000 data packets + 1000 acks per iteration.
  state.SetItemsProcessed(state.iterations() * 2000);
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["allocs_per_event"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(events));
}
BENCHMARK(BM_EndToEndMtpTransfer)->Unit(benchmark::kMicrosecond);

// --smoke: fixed workload, machine-readable output, no benchmark machinery.
// scripts/check.sh compares events_per_sec against BENCH_core.json (>25%
// regression fails) and bounds allocs_per_event on the pure-scheduler churn.
int smoke_main() {
  using Clock = std::chrono::steady_clock;

  // Throughput probe: the end-to-end transfer, best-of-3 to shrug off
  // scheduler noise on shared CI machines.
  double best_events_per_sec = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::uint64_t events = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < 20; ++i) events += run_e2e_transfer();
    const std::chrono::duration<double> dt = Clock::now() - t0;
    best_events_per_sec = std::max(best_events_per_sec, static_cast<double>(events) / dt.count());
  }

  // Allocation probe: steady-state scheduler churn only (the kernel
  // contract; endpoint bookkeeping is measured by the benchmark counters).
  sim::Simulator sim;
  int counter = 0;
  for (int i = 0; i < 512; ++i) {
    sim.schedule(sim::SimTime::nanoseconds(i % 64), [&counter] { ++counter; });
  }
  sim.run();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t churn_events = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 512; ++i) {
      sim.schedule(sim::SimTime::nanoseconds(i % 64), [&counter] { ++counter; });
    }
    churn_events += sim.run();
  }
  const std::uint64_t churn_allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(counter);

  std::printf("events_per_sec=%.0f\n", best_events_per_sec);
  std::printf("allocs_per_event=%.6f\n",
              static_cast<double>(churn_allocs) / static_cast<double>(churn_events));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return smoke_main();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
