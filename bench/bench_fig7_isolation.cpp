// Figure 7: per-entity isolation.
//
// Two tenants share a 100 Gb/s / 10 us bottleneck. Tenant 2 generates 8x the
// messages (flows) of tenant 1. Three systems:
//   dctcp-shared    — DCTCP, one shared drop-tail queue: per-flow fairness
//                     gives tenant 2 ~8x the bandwidth (paper: ~80 vs ~10)
//   dctcp-queues    — separate per-tenant queues (DRR): ~equal, but needs
//                     per-entity queues in hardware
//   mtp-fairshare   — MTP traffic classes + fair-share policer on the shared
//                     queue: ~equal without separate queues
#include <cstdio>

#include "scenario/paper_figs.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;

int main() {
  const sim::SimTime duration = 40_ms;
  std::printf(
      "=== Figure 7: per-entity isolation (tenant 2 sends 8x the messages) ===\n\n");

  stats::Table t({"system", "tenant 1 (Gb/s)", "tenant 2 (Gb/s)", "ratio t2/t1",
                  "Jain index"});
  telemetry::RunReport report("fig7_isolation");
  for (const std::string system : {"dctcp-shared", "dctcp-queues", "mtp-fairshare"}) {
    const Fig7Result r = run_fig7(system, duration);
    t.add_row({r.system, stats::format("%.1f", r.tenant1_gbps),
               stats::format("%.1f", r.tenant2_gbps),
               stats::format("%.1f", r.tenant1_gbps > 0 ? r.tenant2_gbps / r.tenant1_gbps : 0),
               stats::format("%.3f", r.jain)});
    auto& sec = report.section(r.system);
    sec.add_scalar("tenant1_gbps", r.tenant1_gbps);
    sec.add_scalar("tenant2_gbps", r.tenant2_gbps);
    sec.add_scalar("jain_index", r.jain);
    sec.set_registry(r.registry);
  }
  t.print();
  report.write();
  std::printf(
      "\npaper shape: shared queue -> ~8x skew (~80/10); separate queues and the\n"
      "MTP-enabled shared queue -> near-equal sharing of the 100G link.\n");
  return 0;
}
