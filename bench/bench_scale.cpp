// Scale-out fabric benchmark: 100k+ concurrent messages on a fat-tree.
//
// The paper argues MTP's per-message state is what lets in-network fabrics
// scale; this bench puts a number on it. Three probes:
//
//  1. Capacity + throughput: a k=8 fat-tree (128 hosts, 16 cores) where
//     every host bursts 800 x 10 KB messages to a host 37 ranks away —
//     102,400 messages injected inside 10 us, far faster than they drain, so
//     >= 100k messages are concurrently in flight. The per-message retx
//     timers live on the shared sim::TimerWheel (one bucket op per arm, not
//     an O(inflight) scan), and the workload replays from one
//     workload::ArrivalSchedule cursor event. Reports events/s against the
//     BENCH_core.json end-to-end rate and peak RSS (getrusage).
//  2. Idle-message footprint: park 100k admitted-but-window-limited
//     messages on one endpoint and report net heap bytes per message (the
//     compact PktMeta/PktFifo layout; the old two-deque layout burned
//     ~1.2 KB per idle message in empty deque chunks alone).
//  3. Determinism at scale: the same k=4 fat-tree sweep run serially and on
//     a sim::ParallelSweep must produce bit-identical digests.
//  4. Space-parallel speedup: the k=16 burst run on 1/2/4/8 sim::sharded
//     shards (`--shards N` runs one shard count by itself). The completion
//     digest — an XOR of per-source-host streams, so it is independent of
//     how completions interleave across shards — must be bit-identical for
//     every shard count; events/s against shards=1 is the speedup. The
//     table also lands in a telemetry::RunReport ("scale_shards").
//
// `--smoke` runs probes 1-4 at k=8/k=16 and prints machine-readable lines
// for scripts/check.sh (compared against BENCH_scale.json); the default mode
// also runs the k=16 (1024-host) smoke to prove the fabric constructs and
// routes at four-digit host counts.
#include <sched.h>
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string_view>
#include <thread>
#include <vector>

#include "net/fat_tree.hpp"
#include "scenario/hybrid.hpp"
#include "scenario/scenario.hpp"
#include "sim/parallel.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"
#include "transport/tcp.hpp"

namespace {
// Net heap bytes currently allocated by this process (tracked via the
// global operator new/delete overrides below). Used for the idle-message
// footprint probe; deltas around a parked population are what we report.
std::atomic<std::int64_t> g_heap_bytes{0};

void* track_alloc(std::size_t n) {
  // Stash the size in a header so delete can subtract it.
  constexpr std::size_t kHeader = alignof(std::max_align_t);
  void* raw = std::malloc(n + kHeader);
  if (!raw) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = n;
  g_heap_bytes.fetch_add(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  return static_cast<char*>(raw) + kHeader;
}

void track_free(void* p) noexcept {
  if (!p) return;
  constexpr std::size_t kHeader = alignof(std::max_align_t);
  void* raw = static_cast<char*>(p) - kHeader;
  g_heap_bytes.fetch_sub(static_cast<std::int64_t>(*static_cast<std::size_t*>(raw)),
                         std::memory_order_relaxed);
  std::free(raw);
}
}  // namespace

void* operator new(std::size_t n) { return track_alloc(n); }
void* operator new[](std::size_t n) { return track_alloc(n); }
void operator delete(void* p) noexcept { track_free(p); }
void operator delete(void* p, std::size_t) noexcept { track_free(p); }
void operator delete[](void* p) noexcept { track_free(p); }
void operator delete[](void* p, std::size_t) noexcept { track_free(p); }

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

constexpr std::int64_t kMsgBytes = 10'000;  // 10 packets at the 1000 B MTU

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// CPUs this process may actually run on (the cgroup/affinity mask, not the
/// machine) — what decides whether a sharded speedup is measurable here.
unsigned available_cores() {
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct ScaleResult {
  int hosts = 0;
  unsigned shards = 1;
  std::uint64_t messages = 0;
  std::uint64_t completed = 0;
  std::uint64_t peak_concurrent = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t digest = 0;
  double wall_sec = 0;
  double sim_ms = 0;
  double events_per_sec = 0;
};

/// Probes 1 and 4: burst `msgs_per_host` messages from every fat-tree host
/// to the host 37 ranks away, all inside the first 10 us of simulated time,
/// on `shards` space shards. The digest folds each completion into a cell
/// owned by its *source host* and XORs the cells: per-host completion order
/// is part of the (shard-invariant) timeline while cross-host interleaving
/// is not, so equal digests across shard counts mean the sharded run
/// completed the same messages at the same simulated times.
ScaleResult run_fat_tree_burst(int k, int msgs_per_host,
                               scenario::Forwarding fwd = scenario::Forwarding::kEcmp,
                               unsigned shards = 1) {
  using Clock = std::chrono::steady_clock;
  const int hosts = k * k * k / 4;

  // One flat schedule: src field = sender host index. Under shards > 1 the
  // scenario replays each host's arrivals on the shard that owns the host,
  // keyed by global schedule index (workload::KeyedReplay).
  workload::ArrivalSchedule sched;
  for (int m = 0; m < msgs_per_host; ++m) {
    const sim::SimTime at = sim::SimTime::nanoseconds(m * 10'000 / msgs_per_host);
    for (int h = 0; h < hosts; ++h) {
      sched.add(at, static_cast<std::uint32_t>(h), kMsgBytes);
    }
  }

  auto s = scenario::ScenarioBuilder()
               .seed(7)
               .shards(shards)
               .topology(scenario::topo::fat_tree({.k = k}))
               .forwarding(fwd)
               .transport("mtp")
               .workload(std::move(sched))
               .build();

  ScaleResult r;
  r.hosts = hosts;
  r.shards = shards;
  r.messages = static_cast<std::uint64_t>(hosts) * msgs_per_host;

  // Counters live per shard (cacheline-padded: each slot is written only by
  // its shard's worker thread) and digest cells per source host (each host
  // lives on exactly one shard).
  struct alignas(64) ShardStat {
    std::uint64_t outstanding = 0;
    std::uint64_t peak = 0;
    std::uint64_t completed = 0;
  };
  std::vector<ShardStat> st(shards);
  std::vector<std::uint64_t> cell(hosts);
  for (int h = 0; h < hosts; ++h) cell[h] = splitmix64(0xc2b2ae3d27d4eb4fULL ^ h);

  scenario::Scenario* sp = s.get();
  s->set_arrival_handler([sp, &st, &cell, hosts](const workload::ArrivalSchedule::Arrival& a) {
    const int src = static_cast<int>(a.src);
    const auto dst = sp->topo().senders[(src + 37) % hosts]->id();
    ShardStat& ss = st[sp->network().shard_of(*sp->topo().senders[src])];
    ++ss.outstanding;
    if (ss.outstanding > ss.peak) ss.peak = ss.outstanding;
    sp->mtp_sender(a.src)->send_message(
        dst, a.bytes, {.dst_port = 80},
        [&ss, c = &cell[src]](proto::MsgId, sim::SimTime fct) {
          --ss.outstanding;
          ++ss.completed;
          *c ^= splitmix64(*c ^ static_cast<std::uint64_t>(fct.ns()));
        });
  });

  const auto t0 = Clock::now();
  r.events = s->run(200_ms);
  r.wall_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const ShardStat& ss : st) {
    r.completed += ss.completed;
    r.peak_concurrent += ss.peak;  // sum of per-shard peaks (== peak at shards=1)
  }
  for (int h = 0; h < hosts; ++h) r.digest ^= cell[h];
  r.windows = s->windows();
  r.sim_ms = s->simulator().now().ms();
  r.events_per_sec = static_cast<double>(r.events) / r.wall_sec;
  return r;
}

/// Probe 2: park `count` window-limited messages on one endpoint and
/// report net heap bytes per parked message.
double idle_message_bytes(int count) {
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *b, sim::Bandwidth::gbps(100), 1_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  core::MtpEndpoint src(*a, {});
  core::MtpEndpoint dst(*b, {});
  dst.listen(80, [](const core::ReceivedMessage&) {});
  // Warm up internal tables so their first-touch growth isn't attributed
  // to the parked population.
  src.send_message(b->id(), kMsgBytes, {.dst_port = 80});
  net.simulator().run();

  const std::int64_t before = g_heap_bytes.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    // No done-callback: we are measuring protocol state, not app closures.
    src.send_message(b->id(), kMsgBytes, {.dst_port = 80});
  }
  const std::int64_t after = g_heap_bytes.load(std::memory_order_relaxed);
  const double per_msg = static_cast<double>(after - before) / count;
  net.simulator().run();  // drain so destructors run cleanly
  return per_msg;
}

/// Probe 3: FNV-1a digest over completion data of a 4-job k=4 fat-tree
/// sweep. Must be identical serial vs parallel.
std::uint64_t sweep_digest(unsigned workers) {
  sim::ParallelSweep pool(workers);
  const std::vector<std::uint64_t> digests =
      pool.map(4, [](std::size_t job) -> std::uint64_t {
        auto s = scenario::ScenarioBuilder()
                     .seed(100 + job)
                     .topology(scenario::topo::fat_tree({.k = 4}))
                     .forwarding(scenario::Forwarding::kMessageAware)
                     .transport("mtp")
                     .build();
        const int hosts = static_cast<int>(s->num_senders());
        std::uint64_t digest = 14695981039346656037ull;
        auto mix = [&digest](std::uint64_t v) {
          digest = (digest ^ v) * 1099511628211ull;
        };
        for (int h = 0; h < hosts; ++h) {
          const auto dst = s->topo().senders[(h + 5) % hosts]->id();
          for (int m = 0; m < 40; ++m) {
            s->mtp_sender(h)->send_message(
                dst, kMsgBytes, {.dst_port = 80},
                [&mix, h, m](proto::MsgId, sim::SimTime fct) {
                  mix(static_cast<std::uint64_t>(fct.ns()) + h * 1000003ull + m);
                });
          }
        }
        mix(s->simulator().run(50_ms));
        return digest;
      });
  std::uint64_t combined = 14695981039346656037ull;
  for (std::uint64_t d : digests) combined = (combined ^ d) * 1099511628211ull;
  return combined;
}

/// Probe 2b: park `count` idle *established* TCP connections (both endpoints
/// in-process) and report net heap bytes per connection — the Fig 3 cost MTP
/// deletes by not keeping connections at all. Compare bytes_per_idle_msg:
/// an idle MTP message is transient state, an idle TCP connection is
/// permanent state.
double idle_connection_bytes(int count) {
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *b, sim::Bandwidth::gbps(100), 1_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  transport::TcpStack src(*a, {});
  transport::TcpStack dst(*b, {});
  std::vector<std::shared_ptr<transport::TcpConnection>> opened, accepted;
  dst.listen(7, [&accepted](std::shared_ptr<transport::TcpConnection> c) {
    accepted.push_back(std::move(c));
  });
  // Warm up stack tables and pre-size the app-side vectors so neither
  // first-touch growth nor reallocation churn lands in the measurement.
  opened.reserve(count + 1);
  accepted.reserve(count + 1);
  opened.push_back(src.connect(b->id(), 7));
  net.simulator().run();

  const std::int64_t before = g_heap_bytes.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    opened.push_back(src.connect(b->id(), 7));
  }
  net.simulator().run();  // drive every handshake to ESTABLISHED
  const std::int64_t after = g_heap_bytes.load(std::memory_order_relaxed);
  return static_cast<double>(after - before) / count;
}

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB -> MB
}

/// Two runs are "the same experiment" when they completed the same messages
/// at the same simulated times. Raw event counts are NOT compared: each
/// shard runs its own sim::TimerWheel, so one serial bucket-wake serving
/// timers of several shards becomes one wake per shard — a handful of extra
/// bookkeeping events that never touch the model timeline.
bool same_run(const ScaleResult& a, const ScaleResult& b) {
  return a.digest == b.digest && a.completed == b.completed;
}

int smoke_main() {
  // The wall-clock-rate floors (events_per_sec, shard1/shard8) are judged
  // best-of-3, with the three configurations *interleaved* round-robin: a
  // noisy-neighbor burst on a shared CI box then degrades one sample of
  // each config instead of every sample of one config, so the per-config
  // max recovers the machine's real rate. Digests must agree across rounds
  // (same seed, same timeline) — gated below alongside the shard digests.
  ScaleResult r{}, s1{}, s8{};
  bool repeat_match = true;
  for (int round = 0; round < 3; ++round) {
    const ScaleResult a = run_fat_tree_burst(/*k=*/8, /*msgs_per_host=*/800);
    const ScaleResult b = run_fat_tree_burst(/*k=*/16, /*msgs_per_host=*/64,
                                             scenario::Forwarding::kEcmp, /*shards=*/1);
    const ScaleResult c = run_fat_tree_burst(/*k=*/16, /*msgs_per_host=*/64,
                                             scenario::Forwarding::kEcmp, /*shards=*/8);
    if (round == 0) {
      r = a;
      s1 = b;
      s8 = c;
    } else {
      repeat_match = repeat_match && same_run(r, a) && same_run(s1, b) && same_run(s8, c);
      if (a.events_per_sec > r.events_per_sec) r = a;
      if (b.events_per_sec > s1.events_per_sec) s1 = b;
      if (c.events_per_sec > s8.events_per_sec) s8 = c;
    }
  }
  const double idle = idle_message_bytes(100'000);
  const double idle_conn = idle_connection_bytes(20'000);
  const std::uint64_t serial = sweep_digest(1);
  const std::uint64_t parallel = sweep_digest(0);

  // Probe 4 (sharded): digest equality at k=8 across 1/2/4 shards, then the
  // k=16 speedup pair. scripts/check.sh gates the digests unconditionally
  // and the speedup only when shard_available_cores is large enough to make
  // a wall-clock ratio meaningful (a 1-vCPU CI box timeslices the shards).
  const ScaleResult d1 = run_fat_tree_burst(/*k=*/8, /*msgs_per_host=*/64,
                                            scenario::Forwarding::kEcmp, /*shards=*/1);
  const ScaleResult d2 = run_fat_tree_burst(/*k=*/8, /*msgs_per_host=*/64,
                                            scenario::Forwarding::kEcmp, /*shards=*/2);
  const ScaleResult d4 = run_fat_tree_burst(/*k=*/8, /*msgs_per_host=*/64,
                                            scenario::Forwarding::kEcmp, /*shards=*/4);
  const bool shard_match =
      repeat_match && same_run(d1, d2) && same_run(d1, d4) && same_run(s1, s8);

  // Probe 5 (hybrid): the fluid bulk model must reproduce the packet-level
  // foreground percentiles on the fig3/fig7 rigs while collapsing the bulk
  // share of events, and the k=32 (8192-host) tenant-isolation scenario
  // must complete digest-identically on 1/2/4 shards.
  const auto f3 = scenario::hybrid::fig3_fidelity();
  const auto f7 = scenario::hybrid::fig7_fidelity();
  const auto k32a = scenario::hybrid::tenant_isolation(/*k=*/32, /*shards=*/1);
  const auto k32b = scenario::hybrid::tenant_isolation(/*k=*/32, /*shards=*/2);
  const auto k32c = scenario::hybrid::tenant_isolation(/*k=*/32, /*shards=*/4);
  const bool k32_match = k32a.digest == k32b.digest && k32a.digest == k32c.digest &&
                         k32a.fg_completed == k32a.fg_sent &&
                         k32a.bulk_completed == k32a.bulk_count;
  const double hybrid_delta =
      f3.fct_delta_pct > f7.fct_delta_pct ? f3.fct_delta_pct : f7.fct_delta_pct;
  const double hybrid_ratio =
      f3.bulk_event_ratio < f7.bulk_event_ratio ? f3.bulk_event_ratio : f7.bulk_event_ratio;
  double k32_best = k32a.events_per_sec;
  if (k32b.events_per_sec > k32_best) k32_best = k32b.events_per_sec;
  if (k32c.events_per_sec > k32_best) k32_best = k32c.events_per_sec;

  std::printf("events_per_sec=%.0f\n", r.events_per_sec);
  std::printf("peak_concurrent_msgs=%llu\n",
              static_cast<unsigned long long>(r.peak_concurrent));
  std::printf("completed_msgs=%llu\n", static_cast<unsigned long long>(r.completed));
  std::printf("bytes_per_idle_msg=%.1f\n", idle);
  std::printf("peak_rss_mb=%.1f\n", peak_rss_mb());
  std::printf("digest_serial=%016llx\n", static_cast<unsigned long long>(serial));
  std::printf("digest_parallel=%016llx\n", static_cast<unsigned long long>(parallel));
  std::printf("digest_match=%d\n", serial == parallel ? 1 : 0);
  std::printf("shard_available_cores=%u\n", available_cores());
  std::printf("shard_digest_match=%d\n", shard_match ? 1 : 0);
  std::printf("shard1_events_per_sec=%.0f\n", s1.events_per_sec);
  std::printf("shard8_events_per_sec=%.0f\n", s8.events_per_sec);
  std::printf("shard8_windows=%llu\n", static_cast<unsigned long long>(s8.windows));
  std::printf("shard_speedup=%.2f\n", s8.events_per_sec / s1.events_per_sec);
  std::printf("bytes_per_idle_conn=%.1f\n", idle_conn);
  std::printf("hybrid_fct_delta_pct=%.2f\n", hybrid_delta);
  std::printf("hybrid_bulk_event_ratio=%.1f\n", hybrid_ratio);
  std::printf("hybrid_k32_hosts=%d\n", k32a.hosts);
  std::printf("hybrid_k32_digest_match=%d\n", k32_match ? 1 : 0);
  std::printf("hybrid_k32_events_per_sec=%.0f\n", k32_best);
  return (serial == parallel && shard_match && k32_match) ? 0 : 1;
}

/// `--bulk-mode flow|packet|none` in full: the fig3/fig7 fidelity tables and
/// the k=32 tenant-isolation run, with the requested mode's column called out.
int hybrid_main(std::string_view mode) {
  std::printf("=== Hybrid fidelity: packet foreground over %.*s-mode bulk ===\n\n",
              static_cast<int>(mode.size()), mode.data());
  stats::Table t({"experiment", "mode", "fg p50 (us)", "fg p99 (us)", "events",
                  "bulk done"});
  telemetry::RunReport report("scale_hybrid");
  for (const auto& [name, f] :
       {std::pair<const char*, scenario::hybrid::FidelityResult>{
            "fig3 incast", scenario::hybrid::fig3_fidelity()},
        {"fig7 tenants", scenario::hybrid::fig7_fidelity()}}) {
    t.add_row({name, "none", stats::format("%.1f", f.p50_none),
               stats::format("%.1f", f.p99_none),
               stats::format("%llu", static_cast<unsigned long long>(f.events_none)),
               "-"});
    t.add_row({name, "packet", stats::format("%.1f", f.p50_packet),
               stats::format("%.1f", f.p99_packet),
               stats::format("%llu", static_cast<unsigned long long>(f.events_packet)),
               stats::format("%zu", f.bulk_count)});
    t.add_row({name, "flow", stats::format("%.1f", f.p50_flow),
               stats::format("%.1f", f.p99_flow),
               stats::format("%llu", static_cast<unsigned long long>(f.events_flow)),
               stats::format("%zu", f.bulk_count)});
    auto& sec = report.section(name);
    sec.add_scalar("fct_delta_pct", f.fct_delta_pct);
    sec.add_scalar("bulk_event_ratio", f.bulk_event_ratio);
    std::printf("%s: fct_delta=%.2f%% bulk_event_ratio=%.1fx\n", name,
                f.fct_delta_pct, f.bulk_event_ratio);
  }
  t.print();

  std::printf("\n--- k=32 tenant isolation (8192 hosts, fluid bulk) ---\n");
  bool match = true;
  std::uint64_t digest0 = 0;
  for (unsigned shards : {1u, 2u, 4u}) {
    const auto r = scenario::hybrid::tenant_isolation(/*k=*/32, shards);
    if (shards == 1) digest0 = r.digest;
    match = match && r.digest == digest0 && r.fg_completed == r.fg_sent &&
            r.bulk_completed == r.bulk_count;
    std::printf(
        "shards=%u events=%llu wall=%.2fs Mevents/s=%.1f fg=%zu/%zu bulk=%zu/%zu "
        "digest=%016llx\n",
        shards, static_cast<unsigned long long>(r.events), r.wall_sec,
        r.events_per_sec / 1e6, r.fg_completed, r.fg_sent, r.bulk_completed,
        r.bulk_count, static_cast<unsigned long long>(r.digest));
    auto& sec = report.section(stats::format("k32_shards_%u", shards));
    sec.add_scalar("events", static_cast<double>(r.events));
    sec.add_scalar("wall_sec", r.wall_sec);
    sec.add_scalar("events_per_sec", r.events_per_sec);
    sec.add_text("digest",
                 stats::format("%016llx", static_cast<unsigned long long>(r.digest)));
  }
  std::printf("k=32 digests %s across {1,2,4} shards\n",
              match ? "bit-identical" : "MISMATCH");
  report.write();
  return match ? 0 : 1;
}

/// Probe 4 in full: the k=16 burst at 1/2/4/8 shards, printed as a table
/// and written to a telemetry::RunReport.
bool shard_speedup_main(const std::vector<unsigned>& shard_counts) {
  std::printf("\n=== sim::sharded speedup: k=16 burst, %u core(s) available ===\n\n",
              available_cores());
  stats::Table t({"shards", "events", "windows", "wall (s)", "Mevents/s",
                  "speedup", "digest"});
  telemetry::RunReport report("scale_shards");
  std::vector<ScaleResult> rs;
  for (unsigned n : shard_counts) {
    rs.push_back(run_fat_tree_burst(/*k=*/16, /*msgs_per_host=*/64,
                                    scenario::Forwarding::kEcmp, n));
  }
  const double base = rs.front().events_per_sec;
  bool match = true;
  for (const ScaleResult& r : rs) {
    match = match && same_run(rs.front(), r);
    t.add_row({stats::format("%u", r.shards),
               stats::format("%llu", static_cast<unsigned long long>(r.events)),
               stats::format("%llu", static_cast<unsigned long long>(r.windows)),
               stats::format("%.2f", r.wall_sec),
               stats::format("%.1f", r.events_per_sec / 1e6),
               stats::format("%.2fx", r.events_per_sec / base),
               stats::format("%016llx", static_cast<unsigned long long>(r.digest))});
    auto& sec = report.section(stats::format("shards_%u", r.shards));
    sec.add_scalar("shards", r.shards);
    sec.add_scalar("hosts", r.hosts);
    sec.add_scalar("events", static_cast<double>(r.events));
    sec.add_scalar("windows", static_cast<double>(r.windows));
    sec.add_scalar("completed_msgs", static_cast<double>(r.completed));
    sec.add_scalar("wall_sec", r.wall_sec);
    sec.add_scalar("events_per_sec", r.events_per_sec);
    sec.add_scalar("speedup_vs_1", r.events_per_sec / base);
    sec.add_text("digest", stats::format("%016llx",
                                         static_cast<unsigned long long>(r.digest)));
  }
  t.print();
  std::printf("shard digests %s across {", match ? "bit-identical" : "MISMATCH");
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    std::printf("%s%u", i ? "," : "", shard_counts[i]);
  }
  std::printf("} shards; %u core(s) available\n", available_cores());
  report.section("env").add_scalar("available_cores", available_cores());
  report.write();
  return match;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return smoke_main();
    if (std::string_view(argv[i]) == "--bulk-mode" && i + 1 < argc) {
      const std::string_view mode(argv[i + 1]);
      if (mode != "flow" && mode != "packet" && mode != "none") {
        std::fprintf(stderr, "bench_scale: --bulk-mode wants flow|packet|none\n");
        return 2;
      }
      return hybrid_main(mode);
    }
    if (std::string_view(argv[i]) == "--shards" && i + 1 < argc) {
      // One shard count by itself (plus the shards=1 baseline it is judged
      // against): the handle for profiling a single configuration.
      const unsigned n = static_cast<unsigned>(std::atoi(argv[i + 1]));
      if (n == 0) {
        std::fprintf(stderr, "bench_scale: --shards needs a count >= 1\n");
        return 2;
      }
      return shard_speedup_main(n == 1 ? std::vector<unsigned>{1}
                                       : std::vector<unsigned>{1, n})
                 ? 0
                 : 1;
    }
  }

  std::printf("=== Scale-out fabrics: fat-tree capacity and event-core throughput ===\n\n");

  stats::Table t({"fabric", "hosts", "messages", "peak in flight", "events",
                  "sim time (ms)", "wall (s)", "Mevents/s"});
  auto row = [&](const char* name, const ScaleResult& r) {
    t.add_row({name, stats::format("%d", r.hosts),
               stats::format("%llu", static_cast<unsigned long long>(r.messages)),
               stats::format("%llu", static_cast<unsigned long long>(r.peak_concurrent)),
               stats::format("%llu", static_cast<unsigned long long>(r.events)),
               stats::format("%.1f", r.sim_ms), stats::format("%.2f", r.wall_sec),
               stats::format("%.1f", r.events_per_sec / 1e6)});
  };

  // The capacity rows run ECMP forwarding: the probe measures the
  // transport + event core at 100k concurrent messages, and per-flow
  // hashing is stateless at the switches. The msg-aware row shows the
  // extra per-hop cost of the paper's per-message placement (a pin-table
  // lookup per packet per switch); the figure benches study its behaviour.
  const ScaleResult k8 = run_fat_tree_burst(/*k=*/8, /*msgs_per_host=*/800);
  row("k=8 ecmp", k8);
  const ScaleResult k8ma = run_fat_tree_burst(/*k=*/8, /*msgs_per_host=*/800,
                                              scenario::Forwarding::kMessageAware);
  row("k=8 msg-aware", k8ma);
  // 1024 hosts: a lighter burst — the point is that construction, routing
  // and the timer wheel hold up at four-digit host counts, not raw volume.
  const ScaleResult k16 = run_fat_tree_burst(/*k=*/16, /*msgs_per_host=*/64);
  row("k=16 ecmp", k16);
  t.print();

  const double idle = idle_message_bytes(100'000);
  std::printf("\nidle-message footprint: %.1f bytes/message (100k parked)\n", idle);

  const std::uint64_t serial = sweep_digest(1);
  const std::uint64_t parallel = sweep_digest(0);
  std::printf("sweep digest: serial=%016llx parallel=%016llx (%s)\n",
              static_cast<unsigned long long>(serial),
              static_cast<unsigned long long>(parallel),
              serial == parallel ? "bit-identical" : "MISMATCH");
  std::printf("peak RSS: %.1f MB\n", peak_rss_mb());

  const bool shard_match = shard_speedup_main({1, 2, 4, 8});
  return (serial == parallel && shard_match) ? 0 : 1;
}
