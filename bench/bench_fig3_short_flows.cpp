// Figure 3: one message per flow breaks congestion control.
//
// Four hosts in a dumbbell with 100 Gb/s links send messages to one
// receiver. Baseline: persistent connections (one flow per host, messages
// streamed). Anti-pattern (the paper's figure): a brand-new TCP connection
// per message — every message pays a handshake and restarts from the initial
// window, so aggregate throughput is noisy and low. The sweep runs the
// per-message pattern at several message sizes to show the penalty shrink as
// messages grow (amortizing the handshake), and records per-message flow
// completion times via the client's done-callback.
//
// The second half runs the same closed-loop one-message-at-a-time workload
// through the transport zoo (transport::TransportRegistry): MTP and the
// Homa-style receiver-driven transport complete short messages without a
// handshake, while DCTCP-per-message and MPTCP pay connection setup — the
// paper's argument, now as a four-way comparison behind one API.
//
// `--smoke` runs a trimmed deterministic subset and prints key=value lines
// for scripts/check.sh transport-smoke: per-transport 16 KB closed-loop
// p99s, the MPTCP flap-recovery time, and a per-transport shard-invariance
// digest check (exits non-zero on any digest mismatch).
//
// Scenarios are independent simulations, so they run on a sim::ParallelSweep
// by default; `--serial` runs them inline on one thread. Results are
// bit-identical either way (the determinism contract in docs/perf.md), which
// `tests/parallel_test.cpp` locks in for the same rig shape.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "scenario/paper_figs.hpp"
#include "sim/parallel.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;

namespace {

struct Rig {
  net::Network net;
  std::vector<net::Host*> senders;
  net::Host* receiver;
  net::Switch* sw;

  Rig() {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    sw = net.add_switch("sw");
    receiver = net.add_host("recv");
    for (int i = 0; i < 4; ++i) {
      net::Host* h = net.add_host("h" + std::to_string(i));
      senders.push_back(h);
      net.connect(*h, *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    net.connect(*sw, *receiver, sim::Bandwidth::gbps(100), 1_us, q);
    sw->add_route(receiver->id(), 4);
  }
};

struct FlowCase {
  std::string name;
  bool per_message = false;
  std::int64_t msg_bytes = 0;  ///< unused for the persistent baseline
};

struct Result {
  std::string name;
  std::vector<stats::ThroughputMeter::Sample> series;
  double avg_gbps = 0;
  double cov = 0;  ///< coefficient of variation of the 32us samples
  // Per-message FCTs from the client's done-callback (empty for persistent).
  std::size_t fct_count = 0;
  double fct_mean_us = 0;
  double fct_p50_us = 0;
  double fct_p99_us = 0;
  telemetry::RegistrySnapshot registry;
};

void summarize(Result& r, const stats::ThroughputMeter& meter, sim::SimTime duration) {
  r.series = meter.series();
  r.avg_gbps = static_cast<double>(meter.total_bytes()) * 8.0 / duration.sec() / 1e9;
  // Skip the first 10% (startup) when computing variability.
  std::vector<double> xs;
  for (std::size_t i = r.series.size() / 10; i < r.series.size(); ++i) {
    xs.push_back(r.series[i].gbps);
  }
  if (xs.size() > 1) {
    const double m = stats::mean(xs);
    double var = 0;
    for (double x : xs) var += (x - m) * (x - m);
    var /= static_cast<double>(xs.size());
    r.cov = m > 0 ? std::sqrt(var) / m : 0;
  }
}

Result run_scenario(const FlowCase& sc, sim::SimTime duration) {
  Rig rig;
  transport::TcpConfig cfg;
  cfg.dctcp = true;
  std::vector<std::unique_ptr<transport::TcpStack>> stacks;
  transport::TcpStack rs(*rig.receiver, cfg);
  stats::ThroughputMeter meter(32_us);
  transport::TcpSink sink(rs, 80, &meter);

  std::vector<std::unique_ptr<transport::TcpBulkSource>> sources;
  std::vector<std::unique_ptr<transport::TcpPerMessageClient>> clients;
  std::vector<std::function<void()>> next;
  stats::FctRecorder fcts;

  if (!sc.per_message) {
    for (auto* h : rig.senders) {
      stacks.push_back(std::make_unique<transport::TcpStack>(*h, cfg));
      sources.push_back(std::make_unique<transport::TcpBulkSource>(
          *stacks.back(), rig.receiver->id(), 80));
    }
  } else {
    // Closed loop, one outstanding message per host (the paper's pattern): as
    // soon as a message's connection closes, record its FCT and open the next
    // one — so every message pays the full handshake + slow-start + teardown.
    for (auto* h : rig.senders) {
      stacks.push_back(std::make_unique<transport::TcpStack>(*h, cfg));
      clients.push_back(std::make_unique<transport::TcpPerMessageClient>(
          *stacks.back(), rig.receiver->id(), 80));
      auto* client = clients.back().get();
      next.push_back([client, &next, &fcts, bytes = sc.msg_bytes, idx = next.size()]() {
        client->send_message(bytes, [&next, &fcts, idx](sim::SimTime fct,
                                                        std::int64_t done_bytes) {
          fcts.record(fct, done_bytes);
          next[idx]();
        });
      });
    }
    for (auto& f : next) f();
  }

  rig.net.simulator().run(duration);

  Result r;
  r.name = sc.name;
  summarize(r, meter, duration);
  if (fcts.count() > 0) {
    r.fct_count = fcts.count();
    r.fct_mean_us = fcts.mean_us();
    r.fct_p50_us = fcts.p50_us();
    r.fct_p99_us = fcts.p99_us();
  }
  // Snapshot inside the job: the registry is thread-local, so this must run
  // on the worker thread that ran the simulation.
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

// ------------------------------------------------------- transport zoo

struct ZooCase {
  std::string transport;
  std::int64_t msg_bytes = 0;
};

struct ZooResult {
  std::string transport;
  std::int64_t msg_bytes = 0;
  double avg_gbps = 0;
  std::size_t completed = 0;
  double fct_p50_us = 0;
  double fct_p99_us = 0;
  transport::TransportMetrics metrics;
  telemetry::RegistrySnapshot registry;
};

/// The paper's one-message-at-a-time pattern through the registry API:
/// incast(4), each sender keeps exactly one message outstanding and issues
/// the next from the done callback. Same workload for every transport — the
/// only variable is what a "message" costs the transport.
ZooResult run_zoo(const ZooCase& zc, sim::SimTime duration) {
  auto s = ScenarioBuilder()
               .seed(13)
               .topology(topo::incast(4))
               .transport(zc.transport)
               .goodput_window(32_us)
               .build();
  stats::FctRecorder fcts;
  std::vector<std::function<void()>> next;
  for (std::size_t i = 0; i < s->num_senders(); ++i) {
    next.push_back([&s = *s, &next, &fcts, bytes = zc.msg_bytes, i]() {
      s.sender(i).send_message(
          bytes, [&next, &fcts, i](sim::SimTime fct, std::int64_t done_bytes) {
            fcts.record(fct, done_bytes);
            next[i]();
          });
    });
  }
  auto& sim = s->simulator();
  for (std::size_t i = 0; i < next.size(); ++i) {
    sim.schedule_keyed_at(1_us, 0xF163C0DEULL + i, [&next, i] { next[i](); });
  }
  s->run(duration);

  ZooResult r;
  r.transport = zc.transport;
  r.msg_bytes = zc.msg_bytes;
  r.completed = fcts.count();
  if (r.completed > 0) {
    r.fct_p50_us = fcts.p50_us();
    r.fct_p99_us = fcts.p99_us();
  }
  r.avg_gbps =
      static_cast<double>(s->goodput()->total_bytes()) * 8.0 / duration.sec() / 1e9;
  r.metrics = s->transport_metrics();
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

// ------------------------------------------------------------- smoke mode

/// incast(4) with sender i placed on shard i mod shards; creation order is
/// identical for every shard count (the sharded engine's determinism
/// contract). Mirrors tests/transport_conformance_test.cpp.
TopologyFn sharded_incast(int senders) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    Topology t;
    net::Switch* sw = net.add_switch("sw");
    net::Host* rcv = net.add_host("recv");
    for (int i = 0; i < senders; ++i) {
      net.set_build_shard(static_cast<unsigned>(i) % net.shards());
      net::Host* h = net.add_host("h" + std::to_string(i));
      t.senders.push_back(h);
      net.connect(*h, *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    net.set_build_shard(0);
    auto down = net.connect(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us, q);
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders));
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {down.forward};
    return t;
  };
}

std::tuple<std::uint64_t, std::size_t> digest_run(const std::string& transport,
                                                  unsigned shards) {
  workload::ArrivalSchedule sched;
  sim::SimTime t = 1_us;
  for (int m = 0; m < 4; ++m) {
    for (int s = 0; s < 4; ++s) {
      sched.add(t, static_cast<std::uint32_t>(s), 12'000);
      t += 3_us;
    }
  }
  auto s = ScenarioBuilder()
               .seed(21)
               .shards(shards)
               .topology(sharded_incast(4))
               .transport(transport)
               .workload(std::move(sched))
               .build();
  s->run();
  return {s->fct_digest(), s->fct().count()};
}

/// key=value lines for the scripts/check.sh transport-smoke gate. Returns
/// non-zero if any transport's completion digest differs across shard
/// counts — that is a correctness bug, not a performance regression, so it
/// hard-fails here rather than being compared against a baseline.
int run_smoke() {
  const std::vector<std::string> zoo = {"mtp", "dctcp", "homa", "mptcp"};
  const sim::SimTime duration = 2_ms;

  sim::ParallelSweep pool(0u);
  const std::vector<ZooResult> results = pool.map(zoo.size(), [&](std::size_t i) {
    return run_zoo({.transport = zoo[i], .msg_bytes = 16'384}, duration);
  });
  for (const ZooResult& r : results) {
    std::printf("%s_p99_us_16k=%.3f\n", r.transport.c_str(), r.fct_p99_us);
    std::printf("%s_completed_16k=%zu\n", r.transport.c_str(), r.completed);
  }

  const FaultRecoveryResult mptcp_flap = run_fault_recovery("mptcp");
  std::printf("mptcp_flap_recovery_us=%.3f\n", mptcp_flap.recovery_us);

  int rc = 0;
  for (const char* t : {"mtp", "tcp", "dctcp", "homa", "mptcp"}) {
    const auto one = digest_run(t, 1);
    bool match = std::get<1>(one) == 16u;
    for (unsigned shards : {2u, 4u}) {
      match = match && digest_run(t, shards) == one;
    }
    std::printf("%s_digest_match=%d\n", t, match ? 1 : 0);
    if (!match) {
      std::fprintf(stderr, "FAIL: %s completion digest differs across shard counts\n", t);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool serial = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) serial = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) return run_smoke();

  const sim::SimTime duration = 4_ms;
  const std::vector<FlowCase> scenarios = {
      {.name = "persistent flows", .per_message = false},
      {.name = "one 4 KB msg per flow", .per_message = true, .msg_bytes = 4'096},
      {.name = "one 16 KB msg per flow", .per_message = true, .msg_bytes = 16'384},
      {.name = "one 64 KB msg per flow", .per_message = true, .msg_bytes = 65'536},
  };

  std::printf(
      "=== Figure 3: one message per TCP flow (4 hosts, 100G dumbbell) ===\n\n");

  sim::ParallelSweep pool(serial ? 1u : 0u);
  std::printf("running %zu scenarios on %u worker(s)%s\n\n", scenarios.size(),
              pool.workers(), serial ? " (--serial)" : "");
  const std::vector<Result> results = pool.map(
      scenarios.size(), [&](std::size_t i) { return run_scenario(scenarios[i], duration); });

  stats::Table t({"scheme", "aggregate goodput (Gb/s)", "sample CoV", "msgs done",
                  "FCT p50 (us)", "FCT p99 (us)"});
  for (const Result& r : results) {
    const bool has_fct = r.fct_count > 0;
    t.add_row({r.name, stats::format("%.1f", r.avg_gbps), stats::format("%.2f", r.cov),
               has_fct ? stats::format("%zu", r.fct_count) : "-",
               has_fct ? stats::format("%.1f", r.fct_p50_us) : "-",
               has_fct ? stats::format("%.1f", r.fct_p99_us) : "-"});
  }
  t.print();

  std::printf(
      "\npaper shape: per-message flows are noisy (high variation) and leave the\n"
      "bottleneck underutilized; persistent flows are smooth and saturating. The\n"
      "penalty shrinks as messages grow (handshake + slow-start amortize).\n\n");

  const Result& persistent = results[0];
  const Result& per_msg_16k = results[2];
  std::printf("throughput series (Gb/s per 32 us window, first 2 ms):\n");
  stats::Table series({"t (us)", "persistent", "one-16KB-msg-per-flow"});
  const std::size_t n = std::min(
      {persistent.series.size(), per_msg_16k.series.size(), std::size_t{2000 / 32}});
  for (std::size_t i = 0; i < n; ++i) {
    series.add_row({stats::format("%.0f", persistent.series[i].start.us()),
                    stats::format("%.1f", persistent.series[i].gbps),
                    stats::format("%.1f", per_msg_16k.series[i].gbps)});
  }
  series.print();

  // The same closed-loop pattern through the transport zoo: message-native
  // transports (MTP, Homa) pay no handshake, so "one message per flow" is
  // simply how they always run.
  std::vector<ZooCase> zoo_cases;
  for (const char* tr : {"mtp", "dctcp", "homa", "mptcp"}) {
    for (std::int64_t bytes : {std::int64_t{4'096}, std::int64_t{16'384},
                               std::int64_t{65'536}}) {
      zoo_cases.push_back({.transport = tr, .msg_bytes = bytes});
    }
  }
  const std::vector<ZooResult> zoo = pool.map(
      zoo_cases.size(), [&](std::size_t i) { return run_zoo(zoo_cases[i], duration); });

  std::printf("\n=== transport zoo, same closed-loop incast(4) ===\n");
  stats::Table zt({"transport", "msg size", "goodput (Gb/s)", "msgs done",
                   "FCT p50 (us)", "FCT p99 (us)", "retx"});
  for (const ZooResult& r : zoo) {
    zt.add_row({r.transport, stats::format("%lld KB", static_cast<long long>(r.msg_bytes / 1024)),
                stats::format("%.1f", r.avg_gbps), stats::format("%zu", r.completed),
                stats::format("%.1f", r.fct_p50_us), stats::format("%.1f", r.fct_p99_us),
                stats::format("%llu", static_cast<unsigned long long>(r.metrics.retransmits))});
  }
  zt.print();
  std::printf(
      "\nzoo shape: MTP and Homa carry short messages with no handshake tax, so\n"
      "their p99 stays near the wire floor; DCTCP-per-message and MPTCP pay the\n"
      "3-way handshake (MPTCP once per subflow) before the first byte moves.\n");

  telemetry::RunReport report("fig3_short_flows");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FlowCase& sc = scenarios[i];
    const Result& r = results[i];
    // Section names are stable keys: persistent, per_message_4096, ...
    const std::string key =
        sc.per_message ? "per_message_" + std::to_string(sc.msg_bytes) : "persistent";
    auto& sec = report.section(key);
    sec.add_scalar("avg_gbps", r.avg_gbps);
    sec.add_scalar("sample_cov", r.cov);
    if (r.fct_count > 0) {
      sec.add_scalar("messages_completed", static_cast<double>(r.fct_count));
      sec.add_scalar("fct_mean_us", r.fct_mean_us);
      sec.add_scalar("fct_p50_us", r.fct_p50_us);
      sec.add_scalar("fct_p99_us", r.fct_p99_us);
    }
    sec.set_registry(r.registry);
  }
  for (const ZooResult& r : zoo) {
    auto& sec =
        report.section("zoo_" + r.transport + "_" + std::to_string(r.msg_bytes));
    sec.add_scalar("avg_gbps", r.avg_gbps);
    sec.add_scalar("fct_p50_us", r.fct_p50_us);
    sec.add_scalar("fct_p99_us", r.fct_p99_us);
    add_transport_metrics(sec, r.transport, r.metrics);
    sec.set_registry(r.registry);
  }
  report.write();
  return 0;
}
