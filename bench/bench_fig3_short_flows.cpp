// Figure 3: one message per flow breaks congestion control.
//
// Four hosts in a dumbbell with 100 Gb/s links send 16 KB messages to one
// receiver. Baseline: persistent connections (one flow per host, messages
// streamed). Anti-pattern (the paper's figure): a brand-new TCP connection
// per message — every message pays a handshake and restarts from the initial
// window, so aggregate throughput is noisy and low.
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>

#include "net/network.hpp"
#include "scenarios.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::bench;

namespace {

struct Rig {
  net::Network net;
  std::vector<net::Host*> senders;
  net::Host* receiver;
  net::Switch* sw;

  Rig() {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    sw = net.add_switch("sw");
    receiver = net.add_host("recv");
    for (int i = 0; i < 4; ++i) {
      net::Host* h = net.add_host("h" + std::to_string(i));
      senders.push_back(h);
      net.connect(*h, *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    net.connect(*sw, *receiver, sim::Bandwidth::gbps(100), 1_us, q);
    sw->add_route(receiver->id(), 4);
  }
};

struct Result {
  std::vector<stats::ThroughputMeter::Sample> series;
  double avg_gbps = 0;
  double cov = 0;  ///< coefficient of variation of the 32us samples
  telemetry::RegistrySnapshot registry;
};

Result summarize(const stats::ThroughputMeter& meter, sim::SimTime duration) {
  Result r;
  r.series = meter.series();
  r.avg_gbps = static_cast<double>(meter.total_bytes()) * 8.0 / duration.sec() / 1e9;
  // Skip the first 10% (startup) when computing variability.
  std::vector<double> xs;
  for (std::size_t i = r.series.size() / 10; i < r.series.size(); ++i) {
    xs.push_back(r.series[i].gbps);
  }
  if (xs.size() > 1) {
    const double m = stats::mean(xs);
    double var = 0;
    for (double x : xs) var += (x - m) * (x - m);
    var /= static_cast<double>(xs.size());
    r.cov = m > 0 ? std::sqrt(var) / m : 0;
  }
  return r;
}

Result run_persistent(sim::SimTime duration) {
  Rig rig;
  transport::TcpConfig cfg;
  cfg.dctcp = true;
  std::vector<std::unique_ptr<transport::TcpStack>> stacks;
  transport::TcpStack rs(*rig.receiver, cfg);
  stats::ThroughputMeter meter(32_us);
  transport::TcpSink sink(rs, 80, &meter);
  std::vector<std::unique_ptr<transport::TcpBulkSource>> sources;
  for (auto* h : rig.senders) {
    stacks.push_back(std::make_unique<transport::TcpStack>(*h, cfg));
    sources.push_back(std::make_unique<transport::TcpBulkSource>(
        *stacks.back(), rig.receiver->id(), 80));
  }
  rig.net.simulator().run(duration);
  Result r = summarize(meter, duration);
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

Result run_per_message(sim::SimTime duration) {
  Rig rig;
  transport::TcpConfig cfg;
  cfg.dctcp = true;
  std::vector<std::unique_ptr<transport::TcpStack>> stacks;
  transport::TcpStack rs(*rig.receiver, cfg);
  stats::ThroughputMeter meter(32_us);
  transport::TcpSink sink(rs, 80, &meter);
  std::vector<std::unique_ptr<transport::TcpPerMessageClient>> clients;
  // Closed loop, one outstanding message per host (the paper's pattern): as
  // soon as a message's connection closes, open the next one — so every
  // message pays the full handshake + slow-start + teardown cost.
  std::vector<std::function<void()>> next;
  for (auto* h : rig.senders) {
    stacks.push_back(std::make_unique<transport::TcpStack>(*h, cfg));
    clients.push_back(std::make_unique<transport::TcpPerMessageClient>(
        *stacks.back(), rig.receiver->id(), 80));
    auto* client = clients.back().get();
    next.push_back([client, &next, idx = next.size()]() {
      client->send_message(16'384,
                           [&next, idx](sim::SimTime, std::int64_t) { next[idx](); });
    });
  }
  for (auto& f : next) f();
  rig.net.simulator().run(duration);
  Result r = summarize(meter, duration);
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

}  // namespace

int main() {
  const sim::SimTime duration = 4_ms;
  std::printf(
      "=== Figure 3: one 16 KB message per TCP flow (4 hosts, 100G dumbbell) ===\n\n");

  const Result persistent = run_persistent(duration);
  const Result per_msg = run_per_message(duration);

  stats::Table t({"scheme", "aggregate goodput (Gb/s)", "sample CoV"});
  t.add_row({"persistent flows", stats::format("%.1f", persistent.avg_gbps),
             stats::format("%.2f", persistent.cov)});
  t.add_row({"one message per flow", stats::format("%.1f", per_msg.avg_gbps),
             stats::format("%.2f", per_msg.cov)});
  t.print();

  std::printf(
      "\npaper shape: per-message flows are noisy (high variation) and leave the\n"
      "bottleneck underutilized; persistent flows are smooth and saturating.\n\n");

  std::printf("throughput series (Gb/s per 32 us window, first 2 ms):\n");
  stats::Table series({"t (us)", "persistent", "one-msg-per-flow"});
  const std::size_t n =
      std::min({persistent.series.size(), per_msg.series.size(), std::size_t{2000 / 32}});
  for (std::size_t i = 0; i < n; ++i) {
    series.add_row({stats::format("%.0f", persistent.series[i].start.us()),
                    stats::format("%.1f", persistent.series[i].gbps),
                    stats::format("%.1f", per_msg.series[i].gbps)});
  }
  series.print();

  telemetry::RunReport report("fig3_short_flows");
  auto fill = [&](const char* scheme, const Result& r) {
    auto& sec = report.section(scheme);
    sec.add_scalar("avg_gbps", r.avg_gbps);
    sec.add_scalar("sample_cov", r.cov);
    sec.set_registry(r.registry);
  };
  fill("persistent", persistent);
  fill("per_message", per_msg);
  report.write();
  return 0;
}
