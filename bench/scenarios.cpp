#include "scenarios.hpp"

#include "fault/fault.hpp"
#include "innetwork/fair_policer.hpp"
#include "innetwork/queues.hpp"
#include "workload/workload.hpp"

namespace mtp::bench {

namespace {

Fig5Result summarize_fig5(const stats::ThroughputMeter& meter, sim::SimTime flip_period,
                          sim::SimTime duration) {
  Fig5Result r;
  r.series = meter.series();
  r.avg_gbps = static_cast<double>(meter.total_bytes()) * 8.0 / duration.sec() / 1e9;
  double fast_sum = 0, slow_sum = 0;
  std::size_t fast_n = 0, slow_n = 0;
  for (const auto& s : r.series) {
    // Phase parity at the *send* time: samples lag by ~RTT, which is tiny
    // (4us) next to the 384us phases; attribute by receive-window start.
    const auto phase = (s.start.ns() / flip_period.ns()) % 2;
    if (phase == 0) {
      fast_sum += s.gbps;
      ++fast_n;
    } else {
      slow_sum += s.gbps;
      ++slow_n;
    }
  }
  r.fast_phase_gbps = fast_n ? fast_sum / static_cast<double>(fast_n) : 0;
  r.slow_phase_gbps = slow_n ? slow_sum / static_cast<double>(slow_n) : 0;
  return r;
}

}  // namespace

Fig5Result run_fig5_dctcp(sim::SimTime duration, sim::SimTime flip_period,
                          sim::SimTime sample) {
  TwoPathFlipRig rig(flip_period);
  transport::TcpConfig cfg;
  cfg.dctcp = true;
  transport::TcpStack snd(*rig.sender, cfg);
  transport::TcpStack rcv(*rig.receiver, cfg);
  stats::ThroughputMeter meter(sample);
  transport::TcpSink sink(rcv, 80, &meter);
  transport::TcpBulkSource src(snd, rig.receiver->id(), 80);
  rig.net.simulator().run(duration);
  Fig5Result r = summarize_fig5(meter, flip_period, duration);
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

Fig5Result run_fig5_mtp(sim::SimTime duration, sim::SimTime flip_period,
                        proto::FeedbackType feedback, bool pathlets_per_path,
                        sim::SimTime sample) {
  TwoPathFlipRig rig(flip_period);
  rig.fast->set_pathlet({.id = 1, .feedback = feedback, .rcp_rtt = 10_us});
  rig.slow->set_pathlet({.id = pathlets_per_path ? 2u : 1u,
                         .feedback = feedback,
                         .rcp_rtt = 10_us});
  core::MtpEndpoint src(*rig.sender, {});
  core::MtpEndpoint dst(*rig.receiver, {});
  stats::ThroughputMeter meter(sample);
  dst.listen(80, [](const core::ReceivedMessage&) {});
  dst.on_payload = [&](std::int64_t bytes) {
    meter.record(rig.net.simulator().now(), bytes);
  };
  // A long-lasting flow: one very large message (it will not finish).
  src.send_message(rig.receiver->id(), std::int64_t{1} << 30, {.dst_port = 80});
  rig.net.simulator().run(duration);
  Fig5Result r = summarize_fig5(meter, flip_period, duration);
  r.registry = telemetry::MetricRegistry::global().snapshot();
  return r;
}

Fig6Result run_fig6(const std::string& scheme, int messages, std::uint64_t seed,
                    std::int64_t max_msg_bytes) {
  // Topology: two senders share an LB switch toward one receiver over two
  // 100G paths; the second path has +1us extra propagation delay (paper
  // setup). Two senders offer ~130G aggregate, so balancing is required.
  net::Network net(seed);
  net::Host* snd0 = net.add_host("snd0");
  net::Host* snd1 = net.add_host("snd1");
  net::Host* rcv = net.add_host("rcv");
  net::Switch* sw = net.add_switch("lb");
  const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
  net.connect(*snd0, *sw, sim::Bandwidth::gbps(100), 1_us, q);
  net.connect(*snd1, *sw, sim::Bandwidth::gbps(100), 1_us, q);
  net::Link* path_a = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us,
                                          std::make_unique<net::DropTailQueue>(q));
  net::Link* path_b = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 2_us,
                                          std::make_unique<net::DropTailQueue>(q));
  net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 1_us,
                      std::make_unique<net::DropTailQueue>(q));
  sw->add_route(snd0->id(), 0);
  sw->add_route(snd1->id(), 1);
  sw->add_route(rcv->id(), 2);
  sw->add_route(rcv->id(), 3);

  if (scheme == "ecmp") {
    sw->set_policy(std::make_unique<net::EcmpPolicy>());
  } else if (scheme == "spray") {
    sw->set_policy(std::make_unique<net::SprayPolicy>());
  } else {
    sw->set_policy(std::make_unique<net::MessageAwarePolicy>());
  }

  // Workload: skewed sizes (10KB..max); each sender offers an independent
  // Poisson stream at ~65% of its NIC (130% of one path in aggregate).
  workload::SizeDist sizes = workload::SizeDist::skewed(10'000, max_msg_bytes);
  sim::Rng rng(seed * 7919 + 1);
  std::vector<std::int64_t> msg_sizes(static_cast<std::size_t>(messages));
  for (auto& s : msg_sizes) s = sizes.sample(rng);
  std::vector<sim::SimTime> arrivals(msg_sizes.size());
  std::vector<int> origin(msg_sizes.size());
  {
    const double mean_bytes = sizes.mean();
    // Aggregate arrival rate across the two senders.
    const double rate_bytes_per_sec = 1.30 * 100e9 / 8.0;
    const sim::SimTime mean_gap = sim::SimTime::from_seconds(mean_bytes / rate_bytes_per_sec);
    sim::SimTime t = 10_us;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      arrivals[i] = t;
      origin[i] = static_cast<int>(rng.uniform_int(0, 1));
      t += rng.exponential_time(mean_gap);
    }
  }

  Fig6Result result;
  result.scheme = scheme;
  stats::FctRecorder fct;

  if (scheme == "mtp-lb") {
    core::MtpEndpoint src0(*snd0, {});
    core::MtpEndpoint src1(*snd1, {});
    core::MtpEndpoint dst(*rcv, {});
    dst.listen(80, [](const core::ReceivedMessage&) {});
    core::MtpEndpoint* srcs[2] = {&src0, &src1};
    for (std::size_t i = 0; i < msg_sizes.size(); ++i) {
      net.simulator().schedule_at(arrivals[i], [&, i] {
        srcs[origin[i]]->send_message(
            rcv->id(), msg_sizes[i], {.dst_port = 80},
            [&fct, bytes = msg_sizes[i]](proto::MsgId, sim::SimTime t) {
              fct.record(t, bytes);
            });
      });
    }
    net.simulator().run();
    result.registry = telemetry::MetricRegistry::global().snapshot();
  } else {
    // Per-message DCTCP connections (so ECMP places each message once).
    transport::TcpConfig cfg;
    cfg.dctcp = true;
    transport::TcpStack cs0(*snd0, cfg);
    transport::TcpStack cs1(*snd1, cfg);
    transport::TcpStack ss(*rcv, cfg);
    transport::TcpSink sink(ss, 80);
    transport::TcpPerMessageClient client0(cs0, rcv->id(), 80);
    transport::TcpPerMessageClient client1(cs1, rcv->id(), 80);
    transport::TcpPerMessageClient* clients[2] = {&client0, &client1};
    for (std::size_t i = 0; i < msg_sizes.size(); ++i) {
      net.simulator().schedule_at(arrivals[i], [&, i] {
        clients[origin[i]]->send_message(
            msg_sizes[i], [&fct](sim::SimTime t, std::int64_t bytes) {
              fct.record(t, bytes);
            });
      });
    }
    net.simulator().run();
    result.registry = telemetry::MetricRegistry::global().snapshot();
  }

  result.messages = fct.count();
  if (fct.count() > 0) {
    result.p50_us = fct.p50_us();
    result.p99_us = fct.p99_us();
    result.mean_us = fct.mean_us();
  }
  const double a = static_cast<double>(path_a->stats().bytes_delivered);
  const double b = static_cast<double>(path_b->stats().bytes_delivered);
  result.path_a_bytes_frac = (a + b) > 0 ? a / (a + b) : 0;
  result.fct = fct;
  return result;
}

Fig7Result run_fig7(const std::string& system, sim::SimTime duration) {
  // Two tenant sender hosts share one switch and a 100G/10us bottleneck to
  // the receiver. Tenant 2 runs 8x the message streams of tenant 1.
  net::Network net(42);
  net::Host* t1 = net.add_host("tenant1");
  net::Host* t2 = net.add_host("tenant2");
  net::Host* rcv = net.add_host("rcv");
  net::Switch* sw = net.add_switch("sw");
  const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
  net.connect(*t1, *sw, sim::Bandwidth::gbps(100), 1_us, q);
  net.connect(*t2, *sw, sim::Bandwidth::gbps(100), 1_us, q);

  net::Link* bottleneck = nullptr;
  if (system == "dctcp-queues") {
    bottleneck = net.connect_simplex(
        *sw, *rcv, sim::Bandwidth::gbps(100), 10_us,
        std::make_unique<innetwork::WfqQueue>(innetwork::WfqQueue::Config{
            .per_tc_capacity_pkts = 512, .ecn_threshold_pkts = 100}));
  } else {
    bottleneck = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 10_us,
                                     std::make_unique<net::DropTailQueue>(q));
  }
  net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 10_us,
                      std::make_unique<net::DropTailQueue>(q));
  sw->add_route(t1->id(), 0);
  sw->add_route(t2->id(), 1);
  sw->add_route(rcv->id(), 2);

  Fig7Result result;
  result.system = system;
  std::array<std::int64_t, 3> delivered{};

  if (system == "mtp-fairshare") {
    bottleneck->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
    auto policer = std::make_shared<innetwork::FairSharePolicer>(
        net.simulator(), innetwork::FairSharePolicer::Config{.egress = bottleneck});
    sw->add_ingress(policer);
    auto s1 = std::make_unique<core::MtpEndpoint>(*t1, core::MtpConfig{});
    auto s2 = std::make_unique<core::MtpEndpoint>(*t2, core::MtpConfig{});
    core::MtpEndpoint dst(*rcv, {});
    dst.listen_any([](const core::ReceivedMessage&) {});
    // Count per-tenant delivered payload via per-message completion. Each
    // stream keeps two 1MB messages outstanding so completion round-trips
    // don't bubble the pipe.
    constexpr std::int64_t kMsgBytes = 1'000'000;
    // The scenario owns the self-rescheduling generators; the callbacks hold
    // only raw pointers, so no generator keeps itself alive via a
    // shared_ptr cycle once the run ends.
    std::vector<std::unique_ptr<std::function<void()>>> generators;
    std::function<void(core::MtpEndpoint&, proto::TrafficClassId, int)> feed =
        [&](core::MtpEndpoint& ep, proto::TrafficClassId tc, int streams) {
          for (int s = 0; s < 2 * streams; ++s) {
            generators.push_back(std::make_unique<std::function<void()>>());
            std::function<void()>* again = generators.back().get();
            *again = [&ep, tc, &delivered, again, rcv] {
              core::MessageOptions opts;
              opts.tc = tc;
              opts.dst_port = 80;
              ep.send_message(rcv->id(), kMsgBytes, std::move(opts),
                              [tc, &delivered, again](proto::MsgId, sim::SimTime) {
                                delivered[tc] += kMsgBytes;
                                (*again)();
                              });
            };
            (*again)();
          }
        };
    feed(*s1, 1, 1);
    feed(*s2, 2, 8);
    net.simulator().run(duration);
    result.registry = telemetry::MetricRegistry::global().snapshot();
  } else {
    // DCTCP tenants: tenant 1 has one long flow, tenant 2 has eight (the
    // paper's "8x the number of messages" expressed as flow count).
    transport::TcpConfig cfg1;
    cfg1.dctcp = true;
    cfg1.tc = 1;
    transport::TcpConfig cfg2 = cfg1;
    cfg2.tc = 2;
    transport::TcpConfig rcfg;
    rcfg.dctcp = true;
    transport::TcpStack s1(*t1, cfg1);
    transport::TcpStack s2(*t2, cfg2);
    transport::TcpStack rs(*rcv, rcfg);
    std::vector<std::unique_ptr<transport::TcpSink>> sinks;
    std::vector<std::unique_ptr<transport::TcpBulkSource>> sources;
    auto tenant_flows = [&](transport::TcpStack& stack, int flows,
                            proto::PortNum base_port) {
      for (int f = 0; f < flows; ++f) {
        const proto::PortNum port = static_cast<proto::PortNum>(base_port + f);
        sinks.push_back(std::make_unique<transport::TcpSink>(rs, port));
        sources.push_back(
            std::make_unique<transport::TcpBulkSource>(stack, rcv->id(), port));
      }
    };
    tenant_flows(s1, 1, 8000);
    tenant_flows(s2, 8, 9000);
    net.simulator().run(duration);
    result.registry = telemetry::MetricRegistry::global().snapshot();
    std::int64_t b1 = 0, b2 = 0;
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (i == 0) {
        b1 += sinks[i]->bytes_received();
      } else {
        b2 += sinks[i]->bytes_received();
      }
    }
    delivered[1] = b1;
    delivered[2] = b2;
  }

  result.tenant1_gbps =
      static_cast<double>(delivered[1]) * 8.0 / duration.sec() / 1e9;
  result.tenant2_gbps =
      static_cast<double>(delivered[2]) * 8.0 / duration.sec() / 1e9;
  result.jain = stats::jain_index({result.tenant1_gbps, result.tenant2_gbps});
  return result;
}

// ------------------------------------------------------- fault recovery

namespace {

// snd -- sw1 ==(two 25 Gb/s two-hop paths via swA / swB)== sw2 -- rcv.
// The MTP run gets message-aware switches; the TCP run keeps the default
// static first-candidate policy, which pins the flow to the swA path the way
// an ECMP hash would.
struct FaultRig {
  net::Network net{42};
  net::Host* snd;
  net::Host* rcv;
  net::Switch* sw1;
  net::Switch* swa;
  net::Switch* swb;
  net::Switch* sw2;
  net::Link* fail_link;  ///< sw1 -> swA: TCP's pinned path, one of MTP's two

  explicit FaultRig(bool message_aware) {
    snd = net.add_host("snd");
    rcv = net.add_host("rcv");
    sw1 = net.add_switch("sw1");
    swa = net.add_switch("swA");
    swb = net.add_switch("swB");
    sw2 = net.add_switch("sw2");
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    const sim::SimTime d = 2_us;
    net.connect(*snd, *sw1, sim::Bandwidth::gbps(100), d, q);
    auto a_up = net.connect(*sw1, *swa, sim::Bandwidth::gbps(25), d, q);
    auto b_up = net.connect(*sw1, *swb, sim::Bandwidth::gbps(25), d, q);
    net.connect(*swa, *sw2, sim::Bandwidth::gbps(25), d, q);
    net.connect(*swb, *sw2, sim::Bandwidth::gbps(25), d, q);
    net.connect(*sw2, *rcv, sim::Bandwidth::gbps(100), d, q);
    fail_link = a_up.forward;
    // Pathlets on the two first-hop choices: what MTP learns and excludes.
    a_up.forward->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
    b_up.forward->set_pathlet({.id = 2, .feedback = proto::FeedbackType::kEcn});

    sw1->add_route(snd->id(), 0);
    sw1->add_route(rcv->id(), 1);  // via swA (the static policy's pick)
    sw1->add_route(rcv->id(), 2);  // via swB
    swa->add_route(snd->id(), 0);
    swa->add_route(rcv->id(), 1);
    swb->add_route(snd->id(), 0);
    swb->add_route(rcv->id(), 1);
    sw2->add_route(snd->id(), 0);  // ACKs return via swA
    sw2->add_route(snd->id(), 1);
    sw2->add_route(rcv->id(), 2);
    if (message_aware) {
      sw1->set_policy(std::make_unique<net::MessageAwarePolicy>());
      sw2->set_policy(std::make_unique<net::MessageAwarePolicy>());
    }
  }
};

void finish_fault_run(FaultRecoveryResult& r) {
  const auto series = r.meter.series();
  double pre_sum = 0;
  int pre_n = 0;
  double dur_sum = 0;
  int dur_n = 0;
  for (const auto& s : series) {
    if (s.start >= 1_ms && s.start < kFaultFlapAt) {
      pre_sum += s.gbps;
      ++pre_n;
    } else if (s.start >= kFaultFlapAt && s.start < kFaultFlapAt + kFaultFlapFor) {
      dur_sum += s.gbps;
      ++dur_n;
    }
  }
  r.pre_fault_gbps = pre_n > 0 ? pre_sum / pre_n : 0;
  r.during_fault_gbps = dur_n > 0 ? dur_sum / dur_n : 0;
  for (const auto& s : series) {
    if (s.start < kFaultFlapAt) continue;
    if (s.gbps >= 0.8 * r.pre_fault_gbps) {
      r.recovery_us = (s.start + kFaultWindow - kFaultFlapAt).us();
      break;
    }
  }
}

}  // namespace

FaultRecoveryResult run_fault_recovery(const std::string& transport) {
  const bool mtp = transport == "mtp";
  FaultRig rig(/*message_aware=*/mtp);
  FaultRecoveryResult res;
  const sim::SimTime horizon = 16_ms;
  fault::FaultInjector inj(rig.net.simulator(), 1);
  inj.flap_link(*rig.fail_link, kFaultFlapAt, kFaultFlapFor);

  if (mtp) {
    core::MtpConfig cfg;
    cfg.auto_exclude_after_losses = 2;
    cfg.exclude_duration = 2_ms;
    core::MtpEndpoint src(*rig.snd, cfg);
    core::MtpEndpoint dst(*rig.rcv, {});
    dst.listen(80, [](const core::ReceivedMessage&) {});
    dst.on_payload = [&](std::int64_t bytes) {
      res.meter.record(rig.net.simulator().now(), bytes);
    };
    // Offered load: one 32 KB message every 12.8 us = 20 Gb/s, under either
    // path's solo capacity so the surviving path can carry everything.
    for (sim::SimTime t = sim::SimTime::zero(); t < 12_ms;
         t += sim::SimTime::nanoseconds(12'800)) {
      rig.net.simulator().schedule_at(t, [&src, &rig] {
        src.send_message(rig.rcv->id(), 32'768, {.dst_port = 80});
      });
    }
    rig.net.simulator().run(horizon);
  } else {
    transport::TcpConfig cfg;
    cfg.dctcp = true;
    transport::TcpStack ca(*rig.snd, cfg);
    transport::TcpStack cb(*rig.rcv, cfg);
    std::shared_ptr<transport::TcpConnection> server;
    cb.listen(80, [&](std::shared_ptr<transport::TcpConnection> c) {
      server = std::move(c);
      server->on_data = [&](std::int64_t bytes) {
        res.meter.record(rig.net.simulator().now(), bytes);
      };
    });
    auto client = ca.connect(rig.rcv->id(), 80);
    client->on_established = [&] { client->send(40'000'000); };
    rig.net.simulator().run(horizon);
  }
  finish_fault_run(res);
  return res;
}

}  // namespace mtp::bench
