// Figure 5: multi-path congestion control under path flapping.
//
// A first-hop switch alternates a long-lived flow between a 100 Gb/s and a
// 10 Gb/s path every 384 us (optical-switch model). Links: 1 us delay;
// queues: 128 packets, ECN threshold 20 (paper parameters). Goodput is
// sampled every 32 us at the receiver.
//
// Paper result: MTP converges faster after each flip and achieves ~33%
// higher average goodput than DCTCP, because it keeps a remembered
// congestion window per pathlet while DCTCP drags one mis-sized window
// across both paths. Two more baselines from the transport zoo ride along:
// Homa's receiver-driven grants re-clock to the slow path within one
// rtt_bytes window (no handshake, but also no per-path memory), and MPTCP
// couples all subflows over whichever path the flip offers — both sit
// between DCTCP and MTP.
#include <cstdio>

#include "scenario/paper_figs.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;

int main() {
  const sim::SimTime duration = 8_ms;
  const sim::SimTime flip = 384_us;

  std::printf("=== Figure 5: multi-path congestion control (flip every %s) ===\n\n",
              flip.to_string().c_str());

  const Fig5Result dctcp = run_fig5_dctcp(duration, flip);
  const Fig5Result mtp = run_fig5_mtp(duration, flip);
  const Fig5Result homa = run_fig5("homa", duration, flip);
  const Fig5Result mptcp = run_fig5("mptcp", duration, flip);

  stats::Table summary({"protocol", "avg goodput (Gb/s)", "fast-phase (Gb/s)",
                        "slow-phase (Gb/s)"});
  auto srow = [&](const char* name, const Fig5Result& r) {
    summary.add_row({name, stats::format("%.2f", r.avg_gbps),
                     stats::format("%.2f", r.fast_phase_gbps),
                     stats::format("%.2f", r.slow_phase_gbps)});
  };
  srow("DCTCP", dctcp);
  srow("MPTCP", mptcp);
  srow("Homa", homa);
  srow("MTP", mtp);
  summary.print();

  const double gain = (mtp.avg_gbps / dctcp.avg_gbps - 1.0) * 100.0;
  std::printf("\nMTP goodput gain over DCTCP: %+.1f%%  (paper reports ~+33%%)\n\n",
              gain);

  // Time series for the figure itself (first 2 ms, one row per 32 us).
  std::printf("goodput series (first 2 ms; Gb/s per 32 us window):\n");
  stats::Table series({"t (us)", "DCTCP", "MTP", "active path"});
  const std::size_t n =
      std::min({dctcp.series.size(), mtp.series.size(), std::size_t{2'000 / 32}});
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = dctcp.series[i].start;
    const bool fast = (t.ns() / flip.ns()) % 2 == 0;
    series.add_row({stats::format("%.0f", t.us()),
                    stats::format("%.1f", dctcp.series[i].gbps),
                    stats::format("%.1f", mtp.series[i].gbps),
                    fast ? "fast(100G)" : "slow(10G)"});
  }
  series.print();

  telemetry::RunReport report("fig5_multipath");
  auto fill = [&](const char* scheme, const Fig5Result& r) {
    auto& sec = report.section(scheme);
    sec.add_scalar("avg_gbps", r.avg_gbps);
    sec.add_scalar("fast_phase_gbps", r.fast_phase_gbps);
    sec.add_scalar("slow_phase_gbps", r.slow_phase_gbps);
    add_transport_metrics(sec, r.transport, r.metrics);
    sec.set_registry(r.registry);
  };
  fill("dctcp", dctcp);
  fill("mptcp", mptcp);
  fill("homa", homa);
  fill("mtp", mtp);
  report.section("mtp").add_scalar("goodput_gain_pct", gain);
  report.write();
  return 0;
}
