// Figure 6: load- and request-aware load balancing.
//
// Two 100 Gb/s paths between sender and receiver, the second with +1 us
// extra delay. A skewed mix of message sizes (10 KB up; heavy tail). Three
// schemes:
//   ecmp   — per-message flow-hash placement, blind to size and load
//   spray  — per-packet round-robin: perfect byte balance, reordering
//   mtp-lb — MTP message-aware balancer: whole messages placed on the
//            currently least-loaded path (no reordering within a message)
//
// Paper result (tail FCT): ECMP suffers from load imbalance, spraying from
// reordering; the MTP-enabled balancer achieves near-perfect balance without
// reordering.
//
// The three schemes are independent simulations, so they run on a
// sim::ParallelSweep by default; `--serial` runs them inline on one thread.
// Output is bit-identical either way (results come back in job order and
// each job snapshots its own thread-local registry).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/paper_figs.hpp"
#include "sim/parallel.hpp"
#include "stats/table.hpp"
#include "telemetry/report.hpp"

using namespace mtp;
using namespace mtp::scenario;

int main(int argc, char** argv) {
  bool serial = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) serial = true;
  }

  // The paper's distribution runs to 1 GB; the simulated tail is capped at
  // 16 MB to bound run time (documented in EXPERIMENTS.md) — the skew that
  // drives the result is preserved.
  const int messages = 1200;
  const std::int64_t cap = 16 << 20;
  std::printf(
      "=== Figure 6: tail FCT under three load-balancing schemes ===\n"
      "(two 100G paths, +1us delay on one; %d messages, sizes 10KB..16MB skewed "
      "short)\n\n",
      messages);

  const std::vector<std::string> schemes = {"ecmp", "spray", "mtp-lb", "homa",
                                            "mptcp"};
  sim::ParallelSweep pool(serial ? 1u : 0u);
  const std::vector<Fig6Result> results = pool.map(schemes.size(), [&](std::size_t i) {
    return run_fig6(schemes[i], messages, /*seed=*/7, cap);
  });

  stats::Table t({"scheme", "p50 FCT (us)", "p99 FCT (us)", "mean (us)",
                  "bytes on path A", "completed", "retx", "grants"});
  telemetry::RunReport report("fig6_loadbalance");
  for (const Fig6Result& r : results) {
    t.add_row({r.scheme, stats::format("%.0f", r.p50_us), stats::format("%.0f", r.p99_us),
               stats::format("%.0f", r.mean_us),
               stats::format("%.0f%%", r.path_a_bytes_frac * 100.0),
               stats::format("%zu", r.messages),
               stats::format("%llu", static_cast<unsigned long long>(r.metrics.retransmits)),
               stats::format("%llu", static_cast<unsigned long long>(r.metrics.grants_issued))});
    auto& sec = report.section(r.scheme);
    sec.add_scalar("completed", static_cast<double>(r.messages));
    sec.add_scalar("path_a_bytes_frac", r.path_a_bytes_frac);
    add_transport_metrics(sec, r.transport, r.metrics);
    // Split at 1 MB: "short" messages vs the heavy tail.
    sec.add_fct("fct", r.fct, /*split_bytes=*/1 << 20);
    sec.set_registry(r.registry);
  }
  t.print();
  report.write();
  std::printf(
      "\npaper shape: mtp-lb beats every TCP-derived scheme on the tail; ecmp\n"
      "suffers hash imbalance (bytes far from 50/50 + collisions); spraying\n"
      "balances bytes but reorders. Zoo baselines: homa sprays under\n"
      "receiver-driven SRPT — reordering is free for it, so it rivals mtp-lb\n"
      "on this skewed-short mix; mptcp couples ECMP'd subflows, inheriting\n"
      "ecmp's imbalance with some multi-path relief.\n");
  return 0;
}
