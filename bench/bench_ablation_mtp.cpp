// Ablations of MTP's design choices (not in the paper; they quantify the
// mechanisms behind Figs 5-7):
//
//  A. Pathlet granularity on the Fig 5 flapping topology: per-path pathlets
//     (MTP proper) vs a single pathlet spanning both paths (the "mimics
//     TCP" degenerate configuration from §4).
//  B. Feedback algorithm choice on the same topology: ECN window (DCTCP),
//     explicit rate (RCP), delay target (Swift).
//  C. Load-balancing granularity on the Fig 6 topology: message-aware
//     placement vs per-packet spraying vs ECMP, all with MTP traffic —
//     isolates the placement policy from the transport.
#include <cstdio>

#include "scenario/paper_figs.hpp"
#include "workload/workload.hpp"
#include "stats/table.hpp"

using namespace mtp;
using namespace mtp::scenario;

namespace {

// C: Fig 6 topology, MTP transport under the three switch policies.
double run_mtp_lb_policy(const std::string& policy, int messages) {
  net::Network net(11);
  net::Host* snd = net.add_host("snd");
  net::Host* rcv = net.add_host("rcv");
  net::Switch* sw = net.add_switch("lb");
  const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
  net.connect(*snd, *sw, sim::Bandwidth::gbps(100), 1_us, q);
  net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us,
                      std::make_unique<net::DropTailQueue>(q));
  net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 2_us,
                      std::make_unique<net::DropTailQueue>(q));
  net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 1_us,
                      std::make_unique<net::DropTailQueue>(q));
  sw->add_route(snd->id(), 0);
  sw->add_route(rcv->id(), 1);
  sw->add_route(rcv->id(), 2);
  if (policy == "ecmp") {
    sw->set_policy(std::make_unique<net::EcmpPolicy>());
  } else if (policy == "spray") {
    sw->set_policy(std::make_unique<net::SprayPolicy>());
  } else {
    sw->set_policy(std::make_unique<net::MessageAwarePolicy>());
  }

  core::MtpEndpoint src(*snd, {});
  core::MtpEndpoint dst(*rcv, {});
  dst.listen(80, [](const core::ReceivedMessage&) {});
  workload::SizeDist sizes = workload::SizeDist::skewed(10'000, 4 << 20);
  sim::Rng rng(13);
  stats::FctRecorder fct;
  sim::SimTime t = sim::SimTime::microseconds(10);
  for (int i = 0; i < messages; ++i) {
    const std::int64_t bytes = sizes.sample(rng);
    net.simulator().schedule_at(t, [&src, &fct, &rcv, bytes] {
      src.send_message(rcv->id(), bytes, {.dst_port = 80},
                       [&fct, bytes](proto::MsgId, sim::SimTime d) { fct.record(d, bytes); });
    });
    t += rng.exponential_time(sim::SimTime::microseconds(3));
  }
  net.simulator().run();
  return fct.p99_us();
}

// D: header/ACK overhead knobs from the paper's §4 discussion.
struct OverheadResult {
  std::uint64_t acks = 0;
  double avg_data_header_bytes = 0;
  double fct_ms = 0;
};

OverheadResult run_overhead(std::uint32_t ack_coalesce, std::uint32_t selective_every) {
  net::Network net(5);
  net::Host* a = net.add_host("a");
  net::Host* b = net.add_host("b");
  net::Switch* sw = net.add_switch("sw");
  auto up = net.connect(*a, *sw, sim::Bandwidth::gbps(10), 2_us,
                        {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
  net.connect(*sw, *b, sim::Bandwidth::gbps(10), 2_us,
              {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  up.forward->set_pathlet({.id = 1,
                           .feedback = proto::FeedbackType::kEcn,
                           .selective_every = selective_every});
  core::MtpConfig cfg;
  cfg.ack_coalesce = ack_coalesce;
  core::MtpEndpoint src(*a, cfg);
  core::MtpEndpoint dst(*b, cfg);
  dst.listen(80, [](const core::ReceivedMessage&) {});

  // Sniff data-header wire sizes at the switch.
  struct Sniffer : net::IngressProcessor {
    std::uint64_t bytes = 0, pkts = 0;
    bool process(net::Packet& pkt, net::Switch&) override {
      if (pkt.is_mtp() && !pkt.mtp().is_ack()) {
        bytes += pkt.mtp().wire_size();
        ++pkts;
      }
      return false;
    }
  };
  auto sniffer = std::make_shared<Sniffer>();
  sw->add_ingress(sniffer);

  OverheadResult r;
  src.send_message(b->id(), 5'000'000, {.dst_port = 80},
                   [&r](proto::MsgId, sim::SimTime fct) { r.fct_ms = fct.ms(); });
  net.simulator().run(sim::SimTime::milliseconds(200));
  r.acks = dst.acks_sent();
  r.avg_data_header_bytes =
      sniffer->pkts ? static_cast<double>(sniffer->bytes) / sniffer->pkts : 0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== MTP design ablations ===\n\n");

  // --- A: pathlet granularity, across flip periods. The faster the network
  // changes paths, the more the remembered per-pathlet window matters: a
  // single shared window must re-converge inside every phase.
  {
    std::printf("A. pathlet granularity vs path-flip period (Fig 5 topology):\n");
    stats::Table t({"flip period", "per-path pathlets (Gb/s)",
                    "single pathlet (Gb/s)", "gain"});
    for (const auto flip : {96_us, 384_us, 1536_us}) {
      const Fig5Result per_path =
          run_fig5_mtp(6_ms, flip, proto::FeedbackType::kEcn, true);
      const Fig5Result single =
          run_fig5_mtp(6_ms, flip, proto::FeedbackType::kEcn, false);
      t.add_row({flip.to_string(), stats::format("%.2f", per_path.avg_gbps),
                 stats::format("%.2f", single.avg_gbps),
                 stats::format("%+.1f%%",
                               (per_path.avg_gbps / single.avg_gbps - 1) * 100)});
    }
    t.print();
    std::printf("\n");
  }

  // --- B: per-pathlet algorithm choice.
  {
    std::printf("B. feedback algorithm (same topology, per-path pathlets):\n");
    stats::Table t({"algorithm", "avg goodput (Gb/s)", "fast-phase", "slow-phase"});
    const struct {
      const char* name;
      proto::FeedbackType type;
    } algos[] = {{"ECN window (DCTCP)", proto::FeedbackType::kEcn},
                 {"explicit rate (RCP)", proto::FeedbackType::kRate},
                 {"delay target (Swift)", proto::FeedbackType::kDelay}};
    for (const auto& a : algos) {
      const Fig5Result r = run_fig5_mtp(6_ms, 384_us, a.type, true);
      t.add_row({a.name, stats::format("%.2f", r.avg_gbps),
                 stats::format("%.2f", r.fast_phase_gbps),
                 stats::format("%.2f", r.slow_phase_gbps)});
    }
    t.print();
    std::printf("\n");
  }

  // --- C: placement granularity with the transport held fixed.
  {
    std::printf("C. LB policy with MTP transport (p99 FCT, 600 skewed messages):\n");
    stats::Table t({"policy", "p99 FCT (us)"});
    for (const char* policy : {"ecmp", "spray", "msg-aware"}) {
      t.add_row({policy, stats::format("%.0f", run_mtp_lb_policy(policy, 600))});
    }
    t.print();
    std::printf(
        "note: with MTP even per-packet spraying stays close to message-aware\n"
        "placement -- per-(MsgID, PktNum) SACKs make reordering harmless, unlike\n"
        "TCP in Figure 6 where spraying inflates p99 by an order of magnitude.\n");
    std::printf("\n");
  }

  // --- D: header and ACK overhead knobs (paper §4 discussion).
  {
    std::printf("D. header/ACK overhead (5MB transfer over one ECN pathlet):\n");
    stats::Table t({"config", "ACK packets", "avg data header (B)", "FCT (ms)"});
    const struct {
      const char* name;
      std::uint32_t coalesce;
      std::uint32_t selective;
    } cfgs[] = {{"per-pkt ACKs, always stamp", 1, 1},
                {"8x ACK coalescing", 8, 1},
                {"selective stamping (1/10)", 1, 10},
                {"both", 8, 10}};
    for (const auto& c : cfgs) {
      const OverheadResult r = run_overhead(c.coalesce, c.selective);
      t.add_row({c.name, stats::format("%llu", (unsigned long long)r.acks),
                 stats::format("%.1f", r.avg_data_header_bytes),
                 stats::format("%.2f", r.fct_ms)});
    }
    t.print();
  }
  return 0;
}
