// In-network KVS cache (the paper's Figure 1 motivating scenario).
//
// A client issues GET requests (independent MTP messages carrying the key in
// AppData) to a storage backend through a ToR switch. The switch hosts a
// NetCache-style cache: hot keys are answered directly by the switch —
// the backend never sees them — while cold keys pass through and are learned
// from the backend's responses.
//
// The example prints per-key latencies showing the cache cutting the RTT and
// offloading the backend, with a Zipf-ish skewed key popularity.
//
//   $ ./examples/rpc_kvs_cache
#include <cstdio>
#include <string>

#include "innetwork/kvs_cache.hpp"
#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "stats/stats.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

int main() {
  net::Network net(2026);
  net::Host* client = net.add_host("client");
  net::Host* backend = net.add_host("backend");
  net::Switch* tor = net.add_switch("tor");
  // The backend is intentionally far away (50 us): cache hits pay only the
  // 2 us client<->switch hop.
  net.connect(*client, *tor, sim::Bandwidth::gbps(100), 1_us);
  net.connect(*tor, *backend, sim::Bandwidth::gbps(100), 50_us);
  tor->add_route(client->id(), 0);
  tor->add_route(backend->id(), 1);

  auto cache = std::make_shared<innetwork::KvsCache>(
      *tor, innetwork::KvsCache::Config{.backend = backend->id(),
                                        .service_port = 80,
                                        .capacity_entries = 64});
  tor->add_ingress(cache);

  core::MtpEndpoint c(*client, {});
  core::MtpEndpoint b(*backend, {});

  // Backend: answers GETs with an 8 KB value after 5 us of "storage work".
  b.listen(80, [&](const core::ReceivedMessage& req) {
    net.simulator().schedule(5_us, [&, req] {
      core::MessageOptions opts;
      opts.dst_port = req.src_port;
      opts.app = net::AppData{req.app ? req.app->key : "?", "backend-value"};
      b.send_message(req.src, 8'192, std::move(opts));
    });
  });

  // Client: issues 200 GETs over a skewed popularity distribution
  // (16 keys; key k chosen with probability ~ 1/(k+1)).
  stats::FctRecorder cache_lat, backend_lat;
  int outstanding = 0, issued = 0;
  sim::Rng rng(99);
  std::unordered_map<std::string, sim::SimTime> sent_at;

  c.listen(9000, [&](const core::ReceivedMessage& reply) {
    const std::string& key = reply.app ? reply.app->key : "?";
    const sim::SimTime lat = net.simulator().now() - sent_at[key];
    if (reply.src == tor->id()) {
      cache_lat.record(lat, reply.bytes);
    } else {
      backend_lat.record(lat, reply.bytes);
    }
    --outstanding;
  });

  std::function<void()> issue = [&] {
    if (issued >= 200) return;
    ++issued;
    ++outstanding;
    // Skewed key choice: repeatedly halve the range.
    int k = 0;
    while (k < 15 && rng.bernoulli(0.5)) ++k;
    const std::string key = "user:" + std::to_string(k);
    sent_at[key] = net.simulator().now();
    core::MessageOptions opts;
    opts.src_port = 9000;
    opts.dst_port = 80;
    opts.app = net::AppData{key, ""};
    c.send_message(backend->id(), 128, std::move(opts));
    net.simulator().schedule(2_us, issue);
  };
  issue();

  net.simulator().run();

  std::printf("=== in-network KVS cache ===\n");
  std::printf("requests issued:       %d\n", issued);
  std::printf("cache hits:            %llu (answered by the switch)\n",
              static_cast<unsigned long long>(cache->hits()));
  std::printf("cache misses:          %llu (served by the backend, then learned)\n",
              static_cast<unsigned long long>(cache->misses()));
  std::printf("cached entries:        %zu\n", cache->entries());
  if (cache_lat.count() > 0 && backend_lat.count() > 0) {
    std::printf("\nGET latency, cache hit:    p50 %.1f us   p99 %.1f us\n",
                cache_lat.p50_us(), cache_lat.p99_us());
    std::printf("GET latency, backend path: p50 %.1f us   p99 %.1f us\n",
                backend_lat.p50_us(), backend_lat.p99_us());
    std::printf("\nhit/miss latency ratio: %.1fx faster from the cache\n",
                backend_lat.p50_us() / cache_lat.p50_us());
  }
  return 0;
}
