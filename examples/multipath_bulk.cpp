// Bulk blobs over a multipath fabric with packet trimming.
//
// Demonstrates two MTP mechanisms together (paper §3.1.2 + §4/NDP):
//   - blob mode: a 20 MB transfer is cut into single-packet messages that
//     the network may spray freely across parallel paths (inter-message
//     independence means reordering between chunks is harmless);
//   - NDP-style trimming queues: on overload the switch trims payloads
//     instead of dropping, receivers NACK, and senders retransmit in ~1 RTT.
//
//   $ ./examples/multipath_bulk
#include <cstdio>

#include "innetwork/queues.hpp"
#include "mtp/bulk.hpp"
#include "mtp/endpoint.hpp"
#include "net/forwarding.hpp"
#include "net/network.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

int main() {
  net::Network net;
  net::Host* src_host = net.add_host("src");
  net::Host* dst_host = net.add_host("dst");
  net::Switch* fabric = net.add_switch("fabric");

  net.connect(*src_host, *fabric, sim::Bandwidth::gbps(100), 1_us,
              {.capacity_pkts = 512});
  // Four parallel 25G paths with small trimming queues.
  std::vector<innetwork::TrimmingQueue*> queues;
  for (int i = 0; i < 4; ++i) {
    auto q = std::make_unique<innetwork::TrimmingQueue>(
        innetwork::TrimmingQueue::Config{.capacity_pkts = 32});
    queues.push_back(q.get());
    net.connect_simplex(*fabric, *dst_host, sim::Bandwidth::gbps(25),
                        sim::SimTime::microseconds(1 + i), std::move(q));
  }
  net.connect_simplex(*dst_host, *fabric, sim::Bandwidth::gbps(100), 1_us,
                      std::make_unique<net::DropTailQueue>());
  fabric->add_route(src_host->id(), 0);
  for (int i = 0; i < 4; ++i) fabric->add_route(dst_host->id(), 1 + i);
  fabric->set_policy(std::make_unique<net::SprayPolicy>());

  core::MtpEndpoint tx(*src_host, {});
  core::MtpEndpoint rx(*dst_host, {});

  int blobs_done = 0;
  core::BulkReceiver receiver(
      rx, 5000,
      [&](net::NodeId, std::uint64_t blob, std::int64_t bytes, sim::SimTime elapsed) {
        ++blobs_done;
        std::printf("[dst] blob %llu reassembled: %lld bytes in %s (%.1f Gb/s)\n",
                    static_cast<unsigned long long>(blob),
                    static_cast<long long>(bytes), elapsed.to_string().c_str(),
                    static_cast<double>(bytes) * 8.0 / elapsed.sec() / 1e9);
      });
  core::BulkSender sender(tx, dst_host->id(), 5000);

  const std::int64_t kBlob = 20'000'000;
  sender.send_blob(kBlob, [&](std::uint64_t blob, sim::SimTime elapsed) {
    std::printf("[src] blob %llu fully acknowledged after %s\n",
                static_cast<unsigned long long>(blob), elapsed.to_string().c_str());
  });

  net.simulator().run();

  std::uint64_t trimmed = 0;
  for (auto* q : queues) trimmed += q->trimmed();
  std::printf("\nblobs completed:      %d\n", blobs_done);
  std::printf("chunks sent:          %llu packets (%llu retransmitted)\n",
              static_cast<unsigned long long>(tx.pkts_sent()),
              static_cast<unsigned long long>(tx.pkts_retransmitted()));
  std::printf("payloads trimmed:     %llu (NACKed and recovered in ~1 RTT)\n",
              static_cast<unsigned long long>(trimmed));
  std::printf("aggregate path rate:  4 x 25G, blob spread across all paths\n");
  return 0;
}
