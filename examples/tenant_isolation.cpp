// Per-tenant isolation on a shared queue (the paper's §5.3 scenario as a
// runnable walkthrough).
//
// Two tenants share one 100 Gb/s link. The aggressive tenant runs sixteen
// message streams, the polite one runs two. Watch live throughput with and
// without the MTP fair-share policer — same shared FIFO queue, no per-tenant
// queues anywhere.
//
// The rig is the scenario library's topo::shared_bottleneck (the same one
// bench_fig7 measures): the builder wires the network, the endpoints and the
// listener, sender_tcs() tags each tenant's traffic class, and the example
// layers the pathlet, the policer and the closed-loop streams on top through
// the Topology accessors. Streams submit through the transport-agnostic
// transport::Transport endpoints, so switching this walkthrough to DCTCP is
// a one-line .transport("dctcp") change.
//
//   $ ./examples/tenant_isolation
#include <array>
#include <cstdio>
#include <functional>
#include <memory>

#include "innetwork/fair_policer.hpp"
#include "scenario/scenario.hpp"
#include "stats/stats.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

void run(bool with_policer) {
  auto s = scenario::ScenarioBuilder()
               .seed(7)
               .topology(scenario::topo::shared_bottleneck())
               .transport("mtp")
               .sender_tcs({1, 2})  // tenant 0 -> TC 1 (polite), tenant 1 -> TC 2 (greedy)
               .build();
  net::Link* shared = s->topo().paths[0];
  shared->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  if (with_policer) {
    s->topo().lb_switches[0]->add_ingress(std::make_shared<innetwork::FairSharePolicer>(
        s->simulator(), innetwork::FairSharePolicer::Config{.egress = shared}));
  }

  std::array<std::int64_t, 3> delivered{};
  auto stream = [&](std::size_t tenant, proto::TrafficClassId tc, int n) {
    for (int st = 0; st < n; ++st) {
      auto again = std::make_shared<std::function<void()>>();
      *again = [&, tenant, tc, again] {
        s->sender(tenant).send_message(
            1'000'000, [&, tc, again](sim::SimTime, std::int64_t bytes) {
              delivered[tc] += bytes;
              (*again)();
            });
      };
      (*again)();
    }
  };
  stream(0, 1, 2);
  stream(1, 2, 16);

  std::printf("%s:\n", with_policer ? "WITH fair-share policer (shared FIFO)"
                                    : "WITHOUT policer (shared FIFO)");
  std::printf("  %8s | %14s | %14s\n", "t (ms)", "polite (Gb/s)", "greedy (Gb/s)");
  std::array<std::int64_t, 3> last{};
  sim::PeriodicTask report(s->simulator(), 5_ms, [&] {
    const double g1 = static_cast<double>(delivered[1] - last[1]) * 8.0 / 0.005 / 1e9;
    const double g2 = static_cast<double>(delivered[2] - last[2]) * 8.0 / 0.005 / 1e9;
    last = delivered;
    std::printf("  %8.0f | %14.1f | %14.1f\n", s->simulator().now().ms(), g1, g2);
  });
  report.start();
  s->run(25_ms);
  const double g1 = static_cast<double>(delivered[1]) * 8.0 / 0.025 / 1e9;
  const double g2 = static_cast<double>(delivered[2]) * 8.0 / 0.025 / 1e9;
  std::printf("  overall: polite %.1f Gb/s, greedy %.1f Gb/s, Jain %.3f\n\n", g1, g2,
              stats::jain_index({g1, g2}));
}

}  // namespace

int main() {
  std::printf("=== tenant isolation on one shared queue ===\n");
  std::printf("polite tenant: 2 streams; greedy tenant: 16 streams (8x)\n\n");
  run(/*with_policer=*/false);
  run(/*with_policer=*/true);
  std::printf(
      "The policer needs no per-tenant queues: it reads the TC every MTP packet\n"
      "carries, estimates per-TC rates, and marks the over-share tenant, whose\n"
      "per-(pathlet, TC) windows then back off (paper Fig 7).\n");
  return 0;
}
