// Per-tenant isolation on a shared queue (the paper's §5.3 scenario as a
// runnable walkthrough).
//
// Two tenants share one 100 Gb/s link. The aggressive tenant runs eight
// message streams, the polite one runs one. Watch live throughput with and
// without the MTP fair-share policer — same shared FIFO queue, no per-tenant
// queues anywhere.
//
//   $ ./examples/tenant_isolation
#include <cstdio>
#include <functional>

#include "innetwork/fair_policer.hpp"
#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "stats/stats.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

void run(bool with_policer) {
  net::Network net(7);
  net::Host* polite = net.add_host("polite");
  net::Host* greedy = net.add_host("greedy");
  net::Host* server = net.add_host("server");
  net::Switch* sw = net.add_switch("sw");
  const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
  net.connect(*polite, *sw, sim::Bandwidth::gbps(100), 1_us, q);
  net.connect(*greedy, *sw, sim::Bandwidth::gbps(100), 1_us, q);
  net::Link* shared = net.connect_simplex(*sw, *server, sim::Bandwidth::gbps(100), 10_us,
                                          std::make_unique<net::DropTailQueue>(q));
  net.connect_simplex(*server, *sw, sim::Bandwidth::gbps(100), 10_us,
                      std::make_unique<net::DropTailQueue>(q));
  sw->add_route(polite->id(), 0);
  sw->add_route(greedy->id(), 1);
  sw->add_route(server->id(), 2);
  shared->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
  if (with_policer) {
    sw->add_ingress(std::make_shared<innetwork::FairSharePolicer>(
        net.simulator(), innetwork::FairSharePolicer::Config{.egress = shared}));
  }

  core::MtpEndpoint ep_polite(*polite, {});
  core::MtpEndpoint ep_greedy(*greedy, {});
  core::MtpEndpoint ep_server(*server, {});
  ep_server.listen_any([](const core::ReceivedMessage&) {});

  std::array<std::int64_t, 3> delivered{};
  auto stream = [&](core::MtpEndpoint& ep, proto::TrafficClassId tc, int n) {
    for (int s = 0; s < n; ++s) {
      auto again = std::make_shared<std::function<void()>>();
      *again = [&, tc, again] {
        core::MessageOptions opts;
        opts.tc = tc;
        opts.dst_port = 80;
        ep.send_message(server->id(), 1'000'000, std::move(opts),
                        [&, tc, again](proto::MsgId, sim::SimTime) {
                          delivered[tc] += 1'000'000;
                          (*again)();
                        });
      };
      (*again)();
    }
  };
  stream(ep_polite, 1, 2);
  stream(ep_greedy, 2, 16);

  std::printf("%s:\n", with_policer ? "WITH fair-share policer (shared FIFO)"
                                    : "WITHOUT policer (shared FIFO)");
  std::printf("  %8s | %14s | %14s\n", "t (ms)", "polite (Gb/s)", "greedy (Gb/s)");
  std::array<std::int64_t, 3> last{};
  sim::PeriodicTask report(net.simulator(), 5_ms, [&] {
    const double g1 = static_cast<double>(delivered[1] - last[1]) * 8.0 / 0.005 / 1e9;
    const double g2 = static_cast<double>(delivered[2] - last[2]) * 8.0 / 0.005 / 1e9;
    last = delivered;
    std::printf("  %8.0f | %14.1f | %14.1f\n", net.simulator().now().ms(), g1, g2);
  });
  report.start();
  net.simulator().run(25_ms);
  const double g1 = static_cast<double>(delivered[1]) * 8.0 / 0.025 / 1e9;
  const double g2 = static_cast<double>(delivered[2]) * 8.0 / 0.025 / 1e9;
  std::printf("  overall: polite %.1f Gb/s, greedy %.1f Gb/s, Jain %.3f\n\n", g1, g2,
              stats::jain_index({g1, g2}));
}

}  // namespace

int main() {
  std::printf("=== tenant isolation on one shared queue ===\n");
  std::printf("polite tenant: 2 streams; greedy tenant: 16 streams (8x)\n\n");
  run(/*with_policer=*/false);
  run(/*with_policer=*/true);
  std::printf(
      "The policer needs no per-tenant queues: it reads the TC every MTP packet\n"
      "carries, estimates per-TC rates, and marks the over-share tenant, whose\n"
      "per-(pathlet, TC) windows then back off (paper Fig 7).\n");
  return 0;
}
