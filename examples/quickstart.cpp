// Quickstart: the smallest end-to-end MTP program.
//
// Builds a two-host network, sends independent messages (no connection
// setup), and prints completion times and pathlet state. Start here.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

int main() {
  // 0. Turn on packet-event tracing (off by default; zero cost when off).
  telemetry::TraceSink::set_enabled(true);
  // 1. A network: two hosts joined by a switch; 100 Gb/s links, 1 us delay.
  net::Network net;
  net::Host* alice = net.add_host("alice");
  net::Host* bob = net.add_host("bob");
  net::Switch* sw = net.add_switch("tor");
  auto up = net.connect(*alice, *sw, sim::Bandwidth::gbps(100), 1_us,
                        {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  net.connect(*sw, *bob, sim::Bandwidth::gbps(100), 1_us,
              {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  sw->add_route(alice->id(), 0);
  sw->add_route(bob->id(), 1);

  // Give the uplink a pathlet so the endpoints learn per-resource
  // congestion state (DCTCP-style ECN feedback here).
  up.forward->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});

  // 2. MTP endpoints. No listen/accept handshake: messages just arrive.
  core::MtpEndpoint tx(*alice, {});
  core::MtpEndpoint rx(*bob, {});
  rx.listen(80, [&](const core::ReceivedMessage& m) {
    std::printf("[bob]   got message %llu: %lld bytes (priority %u, from port %u)\n",
                static_cast<unsigned long long>(m.msg_id),
                static_cast<long long>(m.bytes), m.priority, m.src_port);
  });

  // 3. Send three independent messages, one of them high priority.
  for (int i = 0; i < 3; ++i) {
    core::MessageOptions opts;
    opts.dst_port = 80;
    opts.priority = (i == 2) ? 7 : 0;  // the last one jumps the queue
    tx.send_message(bob->id(), 500'000, std::move(opts),
                    [i](proto::MsgId id, sim::SimTime fct) {
                      std::printf("[alice] message %llu (#%d) delivered in %s\n",
                                  static_cast<unsigned long long>(id), i,
                                  fct.to_string().c_str());
                    });
  }

  // 4. Run to quiescence.
  net.simulator().run();

  std::printf("\nsimulated time: %s, packets sent: %llu (%llu retransmitted)\n",
              net.simulator().now().to_string().c_str(),
              static_cast<unsigned long long>(tx.pkts_sent()),
              static_cast<unsigned long long>(tx.pkts_retransmitted()));
  const auto path = tx.current_path(bob->id());
  std::printf("learned path to bob: %zu pathlet(s)", path.size());
  for (auto p : path) std::printf(" #%u", p);
  if (const auto* cc = tx.pathlet_cc(1, 0)) {
    std::printf("; pathlet 1 runs '%s', window %lld bytes\n", cc->name().c_str(),
                static_cast<long long>(cc->window_bytes()));
  } else {
    std::printf("\n");
  }

  // 5. Telemetry: every component registered itself in the global metric
  // registry; read one metric and dump the first few trace events as JSONL.
  const telemetry::RegistrySnapshot snap = telemetry::MetricRegistry::global().snapshot();
  if (const auto v = snap.value("link", "alice->tor", "pkts_delivered")) {
    std::printf("registry: link alice->tor delivered %.0f packets\n", *v);
  }
  std::printf("registry: %.0f acks across all MTP endpoints\n",
              snap.total("mtp", "acks_sent"));

  const auto& sink = telemetry::trace();
  std::printf("\ntrace: %zu events recorded (first 5 as JSONL):\n", sink.size());
  const auto events = sink.events();
  for (std::size_t i = 0; i < events.size() && i < 5; ++i) {
    std::printf("  %s\n", telemetry::to_json(events[i]).c_str());
  }
  return 0;
}
