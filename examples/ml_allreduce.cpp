// Distributed training with in-network gradient aggregation (ATP-style,
// paper §4 "ML Training").
//
// Eight workers push a gradient per round to a parameter server; the server
// broadcasts the updated model back; the next round starts when a worker
// receives the update. Run twice — with and without the aggregation
// offload on the ToR switch — and compare round latency and the bytes the
// server-side link carries.
//
//   $ ./examples/ml_allreduce
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "innetwork/aggregation.hpp"
#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "stats/stats.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

struct Result {
  double mean_round_us = 0;
  double server_link_mb = 0;
  int rounds = 0;
};

Result run(bool with_offload, int n_workers, int n_rounds, std::int64_t grad_bytes) {
  net::Network net(3);
  net::Switch* tor = net.add_switch("tor");
  net::Host* ps = net.add_host("ps");
  std::vector<net::Host*> workers;
  for (int i = 0; i < n_workers; ++i) {
    net::Host* w = net.add_host("w" + std::to_string(i));
    workers.push_back(w);
    net.connect(*w, *tor, sim::Bandwidth::gbps(100), 1_us,
                {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
    tor->add_route(w->id(), static_cast<net::PortIndex>(i));
  }
  auto d = net.connect(*tor, *ps, sim::Bandwidth::gbps(100), 1_us,
                       {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
  tor->add_route(ps->id(), static_cast<net::PortIndex>(n_workers));

  std::shared_ptr<innetwork::AggregationOffload> agg;
  if (with_offload) {
    agg = std::make_shared<innetwork::AggregationOffload>(
        *tor, innetwork::AggregationOffload::Config{
                  .server = ps->id(),
                  .service_port = 90,
                  .fan_in = static_cast<std::uint32_t>(n_workers)});
    tor->add_ingress(agg);
  }

  std::vector<std::unique_ptr<core::MtpEndpoint>> weps;
  for (auto* w : workers) weps.push_back(std::make_unique<core::MtpEndpoint>(*w, core::MtpConfig{}));
  core::MtpEndpoint ps_ep(*ps, {});

  Result result;
  std::vector<double> round_us;
  int round = 0;
  sim::SimTime round_start;
  std::uint32_t grads_this_round = 0;

  std::function<void()> start_round = [&] {
    if (round >= n_rounds) return;
    ++round;
    round_start = net.simulator().now();
    grads_this_round = 0;
    for (auto& ep : weps) {
      core::MessageOptions opts;
      opts.dst_port = 90;
      opts.app = net::AppData{"grad:" + std::to_string(round), ""};
      ep->send_message(ps->id(), grad_bytes, std::move(opts));
    }
  };

  // PS: counts gradients (1 aggregate with the offload, N without), then
  // broadcasts the model update; workers' receipt ends the round.
  ps_ep.listen(90, [&](const core::ReceivedMessage& m) {
    std::uint32_t contribution = 1;
    if (m.app && m.app->value.rfind("agg:", 0) == 0) {
      contribution = static_cast<std::uint32_t>(std::stoul(m.app->value.substr(4)));
    }
    grads_this_round += contribution;
    if (grads_this_round < static_cast<std::uint32_t>(n_workers)) return;
    for (auto* w : workers) {
      ps_ep.send_message(w->id(), grad_bytes, {.dst_port = 91});
    }
  });
  int updates_received = 0;
  for (auto& ep : weps) {
    ep->listen(91, [&](const core::ReceivedMessage&) {
      if (++updates_received % n_workers == 0) {
        round_us.push_back((net.simulator().now() - round_start).us());
        start_round();
      }
    });
  }

  start_round();
  net.simulator().run(2_s);

  result.rounds = static_cast<int>(round_us.size());
  result.mean_round_us = round_us.empty() ? 0 : stats::mean(round_us);
  result.server_link_mb = static_cast<double>(d.forward->stats().bytes_delivered) / 1e6;
  return result;
}

}  // namespace

int main() {
  const int workers = 8, rounds = 20;
  const std::int64_t grad = 1'000'000;  // 1 MB gradients
  std::printf("=== in-network gradient aggregation (%d workers, %d rounds, 1MB grads) ===\n\n",
              workers, rounds);
  const Result off = run(false, workers, rounds, grad);
  const Result on = run(true, workers, rounds, grad);
  std::printf("%-28s %14s %20s\n", "", "round latency", "bytes to server");
  std::printf("%-28s %11.1f us %17.1f MB\n", "no offload (all-to-PS):", off.mean_round_us,
              off.server_link_mb);
  std::printf("%-28s %11.1f us %17.1f MB\n", "with aggregation offload:", on.mean_round_us,
              on.server_link_mb);
  if (on.mean_round_us > 0) {
    std::printf("\nround speedup: %.2fx, server-link traffic reduction: %.1fx\n",
                off.mean_round_us / on.mean_round_us,
                off.server_link_mb / on.server_link_mb);
  }
  std::printf("(rounds completed: %d / %d)\n", on.rounds, rounds);
  return 0;
}
