// Distributed training with in-network gradient aggregation (ATP-style,
// paper §4 "ML Training").
//
// Eight workers push a gradient per round to a parameter server; the server
// broadcasts the updated model back; the next round starts when a worker
// receives the update. Run twice — with and without the aggregation
// offload on the ToR switch — and compare round latency and the bytes the
// server-side link carries.
//
// The fabric is the scenario library's topo::incast (workers -> ToR -> PS);
// the builder wires the network and every endpoint, and the example drops
// down to the concrete MtpEndpoint accessors for what the unified sender
// API deliberately doesn't cover: app-tagged gradient messages, a custom
// parameter-server handler (listen() on the service port replaces the
// builder's no-op), and the reverse model broadcast on a second port.
//
//   $ ./examples/ml_allreduce
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "innetwork/aggregation.hpp"
#include "mtp/endpoint.hpp"
#include "scenario/scenario.hpp"
#include "stats/stats.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

namespace {

struct Result {
  double mean_round_us = 0;
  double server_link_mb = 0;
  int rounds = 0;
};

Result run(bool with_offload, int n_workers, int n_rounds, std::int64_t grad_bytes) {
  auto s = scenario::ScenarioBuilder()
               .seed(3)
               .topology(scenario::topo::incast(n_workers))
               .transport("mtp")
               .dst_port(90)
               .build();
  net::Switch* tor = s->topo().lb_switches[0];
  const net::NodeId ps = s->topo().receiver->id();

  if (with_offload) {
    tor->add_ingress(std::make_shared<innetwork::AggregationOffload>(
        *tor, innetwork::AggregationOffload::Config{
                  .server = ps,
                  .service_port = 90,
                  .fan_in = static_cast<std::uint32_t>(n_workers)}));
  }

  Result result;
  std::vector<double> round_us;
  int round = 0;
  sim::SimTime round_start;
  std::uint32_t grads_this_round = 0;

  std::function<void()> start_round = [&] {
    if (round >= n_rounds) return;
    ++round;
    round_start = s->simulator().now();
    grads_this_round = 0;
    for (int i = 0; i < n_workers; ++i) {
      core::MessageOptions opts;
      opts.dst_port = 90;
      opts.app = net::AppData{"grad:" + std::to_string(round), ""};
      s->mtp_sender(i)->send_message(ps, grad_bytes, std::move(opts));
    }
  };

  // PS: counts gradients (1 aggregate with the offload, N without), then
  // broadcasts the model update; workers' receipt ends the round. listen()
  // replaces the no-op handler the builder installed on the service port.
  s->mtp_receiver()->listen(90, [&](const core::ReceivedMessage& m) {
    std::uint32_t contribution = 1;
    if (m.app && m.app->value.rfind("agg:", 0) == 0) {
      contribution = static_cast<std::uint32_t>(std::stoul(m.app->value.substr(4)));
    }
    grads_this_round += contribution;
    if (grads_this_round < static_cast<std::uint32_t>(n_workers)) return;
    for (net::Host* w : s->topo().senders) {
      s->mtp_receiver()->send_message(w->id(), grad_bytes, {.dst_port = 91});
    }
  });
  int updates_received = 0;
  for (int i = 0; i < n_workers; ++i) {
    s->mtp_sender(i)->listen(91, [&](const core::ReceivedMessage&) {
      if (++updates_received % n_workers == 0) {
        round_us.push_back((s->simulator().now() - round_start).us());
        start_round();
      }
    });
  }

  start_round();
  s->run(2_s);

  result.rounds = static_cast<int>(round_us.size());
  result.mean_round_us = round_us.empty() ? 0 : stats::mean(round_us);
  result.server_link_mb =
      static_cast<double>(s->topo().paths[0]->stats().bytes_delivered) / 1e6;
  return result;
}

}  // namespace

int main() {
  const int workers = 8, rounds = 20;
  const std::int64_t grad = 1'000'000;  // 1 MB gradients
  std::printf("=== in-network gradient aggregation (%d workers, %d rounds, 1MB grads) ===\n\n",
              workers, rounds);
  const Result off = run(false, workers, rounds, grad);
  const Result on = run(true, workers, rounds, grad);
  std::printf("%-28s %14s %20s\n", "", "round latency", "bytes to server");
  std::printf("%-28s %11.1f us %17.1f MB\n", "no offload (all-to-PS):", off.mean_round_us,
              off.server_link_mb);
  std::printf("%-28s %11.1f us %17.1f MB\n", "with aggregation offload:", on.mean_round_us,
              on.server_link_mb);
  if (on.mean_round_us > 0) {
    std::printf("\nround speedup: %.2fx, server-link traffic reduction: %.1fx\n",
                off.mean_round_us / on.mean_round_us,
                off.server_link_mb / on.server_link_mb);
  }
  std::printf("(rounds completed: %d / %d)\n", on.rounds, rounds);
  return 0;
}
