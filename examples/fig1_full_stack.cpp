// The paper's Figure 1, end to end: a dynamic-website cluster where
// in-network computing accelerates document lookups.
//
//   clients --- ToR switch --- [ (1) in-network cache            ]
//                              [ (2a) L7 load balancer           ] --- 3 storage replicas
//                              [ (3a) ECN pathlet feedback       ]
//
// Clients issue GET RPCs against a *virtual service address*. At the ToR:
//   (1)  hot keys are answered by the in-network cache — the backends never
//        see them;
//   (2a) misses are load-balanced per request across three storage replicas
//        (whole messages, never packets — inter-message independence);
//   (3a) the replica links carry ECN pathlets, so client congestion windows
//        are per-resource.
// The printout shows the cache absorbing the hot set at switch latency while
// misses spread evenly across the replicas.
//
//   $ ./examples/fig1_full_stack
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "innetwork/kvs_cache.hpp"
#include "innetwork/l7_lb.hpp"
#include "mtp/rpc.hpp"
#include "net/network.hpp"
#include "stats/stats.hpp"

using namespace mtp;
using namespace mtp::sim::literals;

int main() {
  net::Network net(4242);
  net::Host* client_host = net.add_host("client");
  net::Switch* tor = net.add_switch("tor");
  std::vector<net::Host*> replicas;
  net.connect(*client_host, *tor, sim::Bandwidth::gbps(100), 1_us,
              {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
  tor->add_route(client_host->id(), 0);
  std::vector<net::Link*> replica_links;
  for (int i = 0; i < 3; ++i) {
    net::Host* r = net.add_host("replica" + std::to_string(i));
    replicas.push_back(r);
    auto d = net.connect(*tor, *r, sim::Bandwidth::gbps(100), 5_us,
                         {.capacity_pkts = 256, .ecn_threshold_pkts = 40});
    replica_links.push_back(d.forward);
    // (3a) each replica link is its own pathlet with ECN feedback.
    d.forward->set_pathlet({.id = static_cast<proto::PathletId>(10 + i),
                            .feedback = proto::FeedbackType::kEcn});
    tor->add_route(r->id(), static_cast<net::PortIndex>(1 + i));
  }

  // (1) the cache fronts the *virtual service address*. Ingress processors
  // run in registration order, so the cache is added first: it must see
  // requests before the balancer rewrites their destination.
  const net::NodeId kService = 9999;
  auto cache = std::make_shared<innetwork::KvsCache>(
      *tor, innetwork::KvsCache::Config{.backend = kService,
                                        .service_port = 80,
                                        .capacity_entries = 8,
                                        .learn_from_responses = false});
  tor->add_ingress(cache);

  // (2a) L7 balancer behind the cache: misses get spread across replicas.
  auto lb = std::make_shared<innetwork::L7LoadBalancer>(
      innetwork::L7LoadBalancer::Config{.virtual_service = kService,
                                        .service_port = 80,
                                        .replicas = {replicas[0]->id(),
                                                     replicas[1]->id(),
                                                     replicas[2]->id()}});
  tor->add_ingress(lb);
  // Preload the hot set.
  for (int k = 0; k < 4; ++k) {
    cache->put("doc:" + std::to_string(k), "cached-doc", 8'000);
  }

  // Replicas: identical RPC servers answering 8KB documents.
  core::MtpEndpoint client_ep(*client_host, {});
  std::vector<std::unique_ptr<core::MtpEndpoint>> replica_eps;
  std::vector<std::unique_ptr<core::RpcServer>> servers;
  std::array<int, 3> served{};
  for (int i = 0; i < 3; ++i) {
    replica_eps.push_back(std::make_unique<core::MtpEndpoint>(*replicas[i], core::MtpConfig{}));
    servers.push_back(std::make_unique<core::RpcServer>(*replica_eps[i], 80));
    servers[static_cast<std::size_t>(i)]->handle(
        "", [i, &served](const std::string&, std::int64_t, net::NodeId) {
          ++served[static_cast<std::size_t>(i)];
          return core::RpcServer::Response{8'000, "doc-from-replica"};
        });
  }

  // Client: 400 GETs; hot keys doc:0..3 (60%), cold keys doc:4..63 (40%).
  core::RpcClient rpc(client_ep, {.reply_port = 9000, .timeout = 50_ms});
  stats::FctRecorder hot_lat, cold_lat;
  int cache_answers = 0, replica_answers = 0, failures = 0;
  sim::Rng rng(7);
  int issued = 0;
  std::function<void()> issue = [&] {
    if (issued >= 400) return;
    ++issued;
    const bool hot = rng.bernoulli(0.6);
    const int k = hot ? static_cast<int>(rng.uniform_int(0, 3))
                      : static_cast<int>(rng.uniform_int(4, 63));
    rpc.call(kService, 80, "doc:" + std::to_string(k), 200,
             [&, hot](const core::RpcReply& rep) {
               if (!rep.ok) {
                 ++failures;
                 return;
               }
               (rep.responder == tor->id() ? cache_answers : replica_answers)++;
               (hot ? hot_lat : cold_lat).record(rep.latency, rep.bytes);
             });
    net.simulator().schedule(5_us, issue);
  };
  issue();
  net.simulator().run(200_ms);

  std::printf("=== Figure 1 full stack: cache + L7 LB + pathlet feedback ===\n\n");
  std::printf("requests issued:        %d (failures: %d)\n", issued, failures);
  std::printf("answered by the switch: %d (cache hits: %llu)\n", cache_answers,
              static_cast<unsigned long long>(cache->hits()));
  std::printf("answered by replicas:   %d  [r0=%d r1=%d r2=%d]\n", replica_answers,
              served[0], served[1], served[2]);
  if (hot_lat.count() > 0 && cold_lat.count() > 0) {
    std::printf("\nhot-key GET latency:  p50 %6.1f us   p99 %6.1f us (mostly in-network)\n",
                hot_lat.p50_us(), hot_lat.p99_us());
    std::printf("cold-key GET latency: p50 %6.1f us   p99 %6.1f us (replica round trip)\n",
                cold_lat.p50_us(), cold_lat.p99_us());
  }
  std::printf("\npathlet windows learned by the client:\n");
  for (int i = 0; i < 3; ++i) {
    if (const auto* cc = client_ep.pathlet_cc(static_cast<proto::PathletId>(10 + i), 0)) {
      std::printf("  replica link %d: algorithm=%s window=%lld B\n", i,
                  cc->name().c_str(), static_cast<long long>(cc->window_bytes()));
    }
  }
  return 0;
}
