// Minimal leveled trace logging for the simulator.
//
// Logging is off by default (benchmarks must stay quiet); tests and examples
// turn it on per-component. The format is "<time> [component] message".
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace mtp::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kTrace };

/// Global log threshold; cheap to test on the fast path. Thread-safe: the
/// level is an atomic (relaxed — a level change becoming visible a few
/// events late is fine) and write() serializes output lines under a mutex so
/// parallel sweeps do not interleave characters.
class Log {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel l) { level_.store(l, std::memory_order_relaxed); }
  static bool enabled(LogLevel l) {
    const LogLevel cur = level_.load(std::memory_order_relaxed);
    return l <= cur && cur != LogLevel::kOff;
  }

  static void write(LogLevel l, SimTime now, std::string_view component, std::string_view msg);

  /// Overwrite the tail of `buf` with a truncation marker when snprintf
  /// reported a formatted length >= size. Returns buf as a string_view.
  static std::string_view mark_truncated(char* buf, std::size_t size, int formatted_len) {
    constexpr std::string_view kMarker = "...[truncated]";
    if (formatted_len >= 0 && static_cast<std::size_t>(formatted_len) >= size &&
        size > kMarker.size()) {
      std::char_traits<char>::copy(buf + size - 1 - kMarker.size(), kMarker.data(),
                                   kMarker.size());
      buf[size - 1] = '\0';
    }
    return std::string_view(buf);
  }

 private:
  static inline std::atomic<LogLevel> level_ = LogLevel::kOff;
};

#define MTP_LOG(lvl, sim_now, component, ...)                                  \
  do {                                                                         \
    if (::mtp::sim::Log::enabled(lvl)) {                                       \
      char mtp_log_buf_[512];                                                  \
      const int mtp_log_len_ =                                                 \
          std::snprintf(mtp_log_buf_, sizeof(mtp_log_buf_), __VA_ARGS__);      \
      ::mtp::sim::Log::write(                                                  \
          lvl, (sim_now), (component),                                         \
          ::mtp::sim::Log::mark_truncated(mtp_log_buf_, sizeof(mtp_log_buf_),  \
                                          mtp_log_len_));                      \
    }                                                                          \
  } while (0)

#define MTP_TRACE(sim_now, component, ...) \
  MTP_LOG(::mtp::sim::LogLevel::kTrace, sim_now, component, __VA_ARGS__)
#define MTP_INFO(sim_now, component, ...) \
  MTP_LOG(::mtp::sim::LogLevel::kInfo, sim_now, component, __VA_ARGS__)
#define MTP_WARN(sim_now, component, ...) \
  MTP_LOG(::mtp::sim::LogLevel::kWarn, sim_now, component, __VA_ARGS__)

}  // namespace mtp::sim
