// sim::Task — the simulator's callback type.
//
// A move-only callable with small-buffer optimization. The inline buffer is
// sized so the largest hot-path lambda — a link delivery closure capturing a
// whole net::Packet by value — fits without touching the heap; link.cpp
// static_asserts this, so growing Packet past the budget is a compile error,
// not a silent perf cliff. Oversized or alignment-exceeding callables fall
// back to the heap and bump a thread-local counter that the microbenches and
// tests read to enforce the ~0 allocations/event contract (docs/perf.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mtp::sim {

class Task {
 public:
  /// Inline capacity: sizeof(net::Packet) (144 as of this writing — the
  /// variable-length header lists ride behind proto::Boxed pointers) plus a
  /// captured `this`, a SimTime, and rounding slack. Keeping this tight
  /// matters beyond the no-heap contract: every scheduler slot carries a
  /// Task, so the inline buffer sets the slot stride the event heap walks.
  static constexpr std::size_t kInlineBytes = 184;

  /// True if a callable of type F runs from the inline buffer (no heap).
  template <class F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  /// Heap fallbacks constructed by this thread since process start. The
  /// steady-state simulator path must not move this number (tested).
  static std::uint64_t heap_allocations() { return heap_allocs_; }

  Task() = default;

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, Task> &&
                         std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): callback sink, like std::function
    emplace(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` in place. The
  /// scheduler uses this to build the callable directly in its slot — the
  /// capture state is moved exactly once, at the schedule() call site.
  template <class F>
  void emplace(F&& f) {
    reset();
    using D = std::decay_t<F>;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kMoveFromOther:
            ::new (self) D(std::move(*static_cast<D*>(other)));
            static_cast<D*>(other)->~D();
            break;
          case Op::kDestroy:
            static_cast<D*>(self)->~D();
            break;
        }
      };
    } else {
      ++heap_allocs_;
      ptr() = new D(std::forward<F>(f));
      invoke_ = [](void* p) { (**static_cast<D**>(p))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kMoveFromOther:
            *static_cast<D**>(self) = *static_cast<D**>(other);
            break;
          case Op::kDestroy:
            delete *static_cast<D**>(self);
            break;
        }
      };
    }
  }

  Task(Task&& o) noexcept { move_from(o); }
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  void reset() {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  enum class Op { kMoveFromOther, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* other);

  void move_from(Task& o) noexcept {
    if (o.invoke_ != nullptr) {
      o.manage_(Op::kMoveFromOther, buf_, o.buf_);
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
  }

  void*& ptr() { return *reinterpret_cast<void**>(buf_); }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;

  static inline thread_local std::uint64_t heap_allocs_ = 0;
};

}  // namespace mtp::sim
