#include "sim/worker_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace mtp::sim {

unsigned WorkerPool::default_workers() {
  if (const char* env = std::getenv("MTP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

WorkerPool::WorkerPool(unsigned workers)
    : workers_(workers != 0 ? workers : default_workers()) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::rethrow_first(std::vector<std::exception_ptr>& errors) {
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void WorkerPool::run_lane(std::size_t lane) {
  // Strided assignment: deterministic index->lane mapping, and with
  // n == lanes exactly one index per lane (the sharded::Engine shape).
  for (std::size_t i = lane; i < dispatch_.n; i += dispatch_.lanes) {
    try {
      (*dispatch_.body)(i);
    } catch (...) {
      dispatch_.errors[i] = std::current_exception();
    }
  }
}

void WorkerPool::worker_main(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    if (lane < dispatch_.lanes) {
      run_lane(lane);
      std::lock_guard<std::mutex> lock(mu_);
      if (++dispatch_.lanes_done == dispatch_.lanes) done_cv_.notify_all();
    }
  }
}

void WorkerPool::ensure_threads(std::size_t lanes) {
  while (threads_.size() < lanes) {
    const std::size_t lane = threads_.size();
    threads_.emplace_back([this, lane] { worker_main(lane); });
  }
}

void WorkerPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t lanes = std::min<std::size_t>(workers_, n);
  if (lanes == 1) {
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    rethrow_first(errors);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ensure_threads(lanes);
    dispatch_.body = &body;
    dispatch_.n = n;
    dispatch_.lanes = lanes;
    dispatch_.lanes_done = 0;
    dispatch_.errors.assign(n, nullptr);
    ++generation_;
  }
  work_cv_.notify_all();
  {
    // The caller only waits: every lane runs on a pool thread, so jobs never
    // see the caller's thread-local telemetry state (the ParallelSweep
    // isolation contract).
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return dispatch_.lanes_done == dispatch_.lanes; });
    dispatch_.body = nullptr;
  }
  rethrow_first(dispatch_.errors);
}

}  // namespace mtp::sim
