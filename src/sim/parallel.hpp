// sim::ParallelSweep — run independent simulations on a pool of workers.
//
// A Simulator is single-threaded by design; experiment breadth comes from
// running *many* simulators at once. ParallelSweep executes a list of
// independent jobs (each typically constructs its own Network/Simulator,
// runs it, and returns a result struct) across worker threads and returns
// results in job order, so output is bit-identical to a serial run.
//
// Determinism contract (docs/perf.md): a job must derive every input from
// its own arguments (topology, seed, duration) and touch no cross-thread
// mutable state. The process-wide telemetry singletons are thread-local
// (MetricRegistry::global(), telemetry::trace()) or internally synchronized
// (sim::Log), and packet uids are per-Simulator, so an unmodified bench
// scenario already satisfies the contract. Jobs that enable tracing or
// tune thread-local telemetry must do so *inside* the job body: worker
// threads do not inherit the caller's thread-local state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace mtp::sim {

class ParallelSweep {
 public:
  /// `workers` = 0 picks std::thread::hardware_concurrency(). `workers` = 1
  /// runs every job inline on the calling thread (the serial baseline —
  /// including thread-local state, so serial-vs-parallel comparisons are
  /// meaningful).
  explicit ParallelSweep(unsigned workers = 0)
      : workers_(workers != 0 ? workers
                              : std::max(1u, std::thread::hardware_concurrency())) {}

  unsigned workers() const { return workers_; }

  /// Run all jobs; blocks until every job finished. Results come back in job
  /// order. If any job throws, the first exception (by job index) is
  /// rethrown after the sweep drains.
  template <class T>
  std::vector<T> run(std::vector<std::function<T()>> jobs) const {
    std::vector<std::optional<T>> slots(jobs.size());
    dispatch(jobs.size(), [&](std::size_t i) { slots[i].emplace(jobs[i]()); });
    std::vector<T> out;
    out.reserve(slots.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  void run(std::vector<std::function<void()>> jobs) const {
    dispatch(jobs.size(), [&](std::size_t i) { jobs[i](); });
  }

  /// Convenience: results[i] = fn(i) for i in [0, n).
  template <class Fn>
  auto map(std::size_t n, Fn fn) const {
    using T = decltype(fn(std::size_t{0}));
    std::vector<std::function<T()>> jobs;
    jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) jobs.push_back([fn, i] { return fn(i); });
    return run<T>(std::move(jobs));
  }

 private:
  /// Work-stealing-free static pool: an atomic cursor hands each worker the
  /// next unclaimed job. Which thread runs a job is nondeterministic; the
  /// result slot it fills is not.
  template <class RunOne>
  void dispatch(std::size_t n, RunOne run_one) const {
    if (n == 0) return;
    std::vector<std::exception_ptr> errors(n);
    if (workers_ == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        try {
          run_one(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    } else {
      std::atomic<std::size_t> next{0};
      auto worker = [&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            run_one(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      };
      const std::size_t nthreads = workers_ < n ? workers_ : n;
      std::vector<std::thread> threads;
      threads.reserve(nthreads);
      for (std::size_t t = 0; t < nthreads; ++t) threads.emplace_back(worker);
      for (auto& t : threads) t.join();
    }
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  unsigned workers_;
};

}  // namespace mtp::sim
