// sim::ParallelSweep — run independent simulations on a pool of workers.
//
// A Simulator is single-threaded by design; experiment breadth comes from
// running *many* simulators at once. ParallelSweep executes a list of
// independent jobs (each typically constructs its own Network/Simulator,
// runs it, and returns a result struct) across worker threads and returns
// results in job order, so output is bit-identical to a serial run.
//
// Determinism contract (docs/perf.md): a job must derive every input from
// its own arguments (topology, seed, duration) and touch no cross-thread
// mutable state. The process-wide telemetry singletons are thread-local
// (MetricRegistry::global(), telemetry::trace()) or internally synchronized
// (sim::Log), and packet uids are per-Simulator, so an unmodified bench
// scenario already satisfies the contract. Jobs that enable tracing or
// tune thread-local telemetry must do so *inside* the job body: worker
// threads do not inherit the caller's thread-local state.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "sim/worker_pool.hpp"

namespace mtp::sim {

class ParallelSweep {
 public:
  /// `workers` = 0 picks WorkerPool::default_workers() — the MTP_THREADS
  /// environment override when set, else hardware_concurrency. `workers` = 1
  /// runs every job inline on the calling thread (the serial baseline —
  /// including thread-local state, so serial-vs-parallel comparisons are
  /// meaningful).
  explicit ParallelSweep(unsigned workers = 0)
      : workers_(workers != 0 ? workers : WorkerPool::default_workers()) {}

  unsigned workers() const { return workers_; }

  /// Run all jobs; blocks until every job finished. Results come back in job
  /// order. If any job throws, the first exception (by job index) is
  /// rethrown after the sweep drains.
  template <class T>
  std::vector<T> run(std::vector<std::function<T()>> jobs) const {
    std::vector<std::optional<T>> slots(jobs.size());
    dispatch(jobs.size(), [&](std::size_t i) { slots[i].emplace(jobs[i]()); });
    std::vector<T> out;
    out.reserve(slots.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  void run(std::vector<std::function<void()>> jobs) const {
    dispatch(jobs.size(), [&](std::size_t i) { jobs[i](); });
  }

  /// Convenience: results[i] = fn(i) for i in [0, n).
  template <class Fn>
  auto map(std::size_t n, Fn fn) const {
    using T = decltype(fn(std::size_t{0}));
    std::vector<std::function<T()>> jobs;
    jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) jobs.push_back([fn, i] { return fn(i); });
    return run<T>(std::move(jobs));
  }

 private:
  /// One sweep = one WorkerPool dispatch (sim/worker_pool.hpp — the same
  /// pool abstraction sharded::Engine runs on). The pool hands lane k jobs
  /// k, k+W, 2W+k, ...; which thread runs a job is deterministic in the lane
  /// mapping but irrelevant to results — the slot a job fills is its index.
  template <class RunOne>
  void dispatch(std::size_t n, RunOne run_one) const {
    if (n == 0) return;
    WorkerPool pool(workers_);
    const std::function<void(std::size_t)> body = [&](std::size_t i) { run_one(i); };
    pool.parallel_for(n, body);
  }

  unsigned workers_;
};

}  // namespace mtp::sim
