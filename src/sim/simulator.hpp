// Discrete-event simulation kernel.
//
// A Simulator owns a priority queue of timestamped callbacks. Components
// schedule work with schedule()/schedule_at() and may cancel pending events
// through the returned EventId. Events at equal timestamps run in scheduling
// order (FIFO), which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mtp::sim {

/// Handle to a scheduled event; used only for cancellation.
/// Default-constructed ids are "null" and safe to cancel (a no-op).
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// The event loop. Not thread-safe by design: a simulation is a single
/// logical timeline and all components run on it.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing during run().
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after now. Negative delays are a logic
  /// error and throw.
  EventId schedule(SimTime delay, Callback fn) {
    if (delay < SimTime::zero()) {
      throw std::invalid_argument("Simulator::schedule: negative delay " + delay.to_string());
    }
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute time, which must not be in the past.
  EventId schedule_at(SimTime when, Callback fn) {
    if (when < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past " + when.to_string());
    }
    const std::uint64_t seq = ++next_seq_;
    queue_.push(Event{when, seq, std::move(fn)});
    return EventId{seq};
  }

  /// Cancel a pending event. Safe to call on null ids, already-run events,
  /// and already-cancelled events (all no-ops). The tombstone is erased when
  /// the event pops, so memory is bounded by concurrently-pending
  /// cancellations.
  void cancel(EventId id) {
    if (id.valid() && id.seq_ <= next_seq_) cancelled_.insert(id.seq_);
  }

  /// Run until the event queue drains or `until` (exclusive upper bound on
  /// event timestamps) is reached. Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Number of events executed so far (for micro-benchmarks and tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Events still in the queue (including cancelled ones not yet popped).
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    mutable Callback fn;  // moved out on execution
    // Min-heap on (when, seq): std::priority_queue is a max-heap, so invert.
    bool operator<(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  SimTime now_;
  std::priority_queue<Event> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// Convenience: a periodic task that reschedules itself until stopped.
/// Used by meters, path-flapping switches, RCP rate updaters, etc.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, SimTime period, std::function<void()> fn)
      : sim_(simulator), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedule the first tick `period` from now (or `first_delay` if given).
  void start() { start(period_); }
  void start(SimTime first_delay) {
    stop();
    running_ = true;
    id_ = sim_.schedule(first_delay, [this] { tick(); });
  }
  void stop() {
    if (running_) {
      sim_.cancel(id_);
      running_ = false;
    }
  }
  bool running() const { return running_; }

 private:
  void tick() {
    // Reschedule before invoking so fn_ may call stop() to terminate.
    id_ = sim_.schedule(period_, [this] { tick(); });
    fn_();
  }

  Simulator& sim_;
  SimTime period_;
  std::function<void()> fn_;
  EventId id_;
  bool running_ = false;
};

}  // namespace mtp::sim
