// Discrete-event simulation kernel.
//
// A Simulator owns a timestamp-ordered queue of callbacks. Components
// schedule work with schedule()/schedule_at() and may cancel pending events
// through the returned EventId. Events at equal timestamps run in scheduling
// order (FIFO), which makes runs fully deterministic.
//
// The hot path is allocation-free (docs/perf.md): callbacks are sim::Task
// (small-buffer optimized, no heap for anything up to a captured Packet) and
// the queue is a vector-backed 4-ary min-heap of 24-byte entries whose Tasks
// live in recycled side slots. Cancellation is O(1) and lazy: it flips a flag
// in the event's slot, and the entry is discarded when it reaches the top of
// the heap. EventIds carry a slot generation, so cancelling an event that
// already ran (or was already cancelled) is a guaranteed no-op — there is no
// tombstone set to leak.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mtp::sim {

class TimerWheel;

/// Canonical keyspace for Simulator::schedule_keyed_at (63 usable bits).
/// Keyed events at one timestamp run in ascending key order, before every
/// plain FIFO event — so this layout fixes the cross-component ordering at
/// equal timestamps, independent of scheduling history:
///   [0, 2^44)   link packet deliveries: (link uid << 28) | tx counter
///   [2^60, 2^61) fluid flow-model steps (sim/flow): base | per-model seq —
///               after deliveries so a rate re-solve at time t sees every
///               packet that finished serializing at t, replica-identical
///               across shards because the seq counter advances identically
///   2^61        timer-wheel bucket service (at most one per sim per time)
///   [2^62, ...) workload arrival replay: base | arrival index
/// History-independent tie-breaking is what makes a sharded run execute the
/// exact per-shard event sequences of the serial run (sim/sharded/engine.hpp).
inline constexpr std::uint64_t kFlowKeyBase = std::uint64_t{1} << 60;
inline constexpr std::uint64_t kTimerWheelKey = std::uint64_t{1} << 61;
inline constexpr std::uint64_t kArrivalKeyBase = std::uint64_t{1} << 62;

/// Handle to a scheduled event; used only for cancellation.
/// Default-constructed ids are "null" and safe to cancel (a no-op).
class EventId {
 public:
  EventId() = default;
  bool valid() const { return slot_ != kNullSlot; }

 private:
  friend class Simulator;
  static constexpr std::uint32_t kNullSlot = 0xffffffff;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNullSlot;
  std::uint32_t gen_ = 0;
};

/// The event loop. Not thread-safe by design: a simulation is a single
/// logical timeline and all components run on it. Parallelism happens one
/// level up — sim::ParallelSweep runs one independent Simulator per worker.
class Simulator {
 public:
  using Callback = Task;

  /// `reserve_events` pre-sizes the heap and the free list so steady-state
  /// scheduling never reallocates (both still grow if exceeded). Slot pages
  /// are deliberately NOT pre-allocated: a page is ~90KB of Task storage,
  /// and short-lived simulators (tests, per-scenario sweeps) would pay for
  /// pages they never touch — demand allocation in acquire_slot() reaches
  /// the same steady state after the first few hundred events.
  explicit Simulator(std::size_t reserve_events = 1024);
  ~Simulator();  // out of line: timers_ holds an incomplete type here
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing during run().
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after now. Negative delays are a logic
  /// error and throw. `fn` is any void() callable; it is forwarded into the
  /// event slot and move-constructed exactly once.
  template <class F>
  EventId schedule(SimTime delay, F&& fn) {
    if (delay < SimTime::zero()) {
      throw std::invalid_argument("Simulator::schedule: negative delay " + delay.to_string());
    }
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` at an absolute time, which must not be in the past.
  template <class F>
  EventId schedule_at(SimTime when, F&& fn) {
    return schedule_with_seq(when, kFifoBit | ++next_seq_, std::forward<F>(fn));
  }

  /// Schedule `fn` at an absolute time with a *canonical* tie-break key
  /// instead of FIFO order. At equal timestamps every keyed event runs
  /// before every plain schedule()/schedule_at() event, and keyed events
  /// run in ascending `key` order — regardless of the order the schedule
  /// calls were made in. This is what lets the sharded engine replay
  /// cross-shard packet handoffs in a different real-time order than the
  /// serial engine and still execute the identical event sequence: the key
  /// is derived from simulation content (link uid, per-link packet index),
  /// not from scheduling history. Keys must be unique per (when, key) —
  /// the top bit is reserved (keys >= 2^63 throw).
  template <class F>
  EventId schedule_keyed_at(SimTime when, std::uint64_t key, F&& fn) {
    if (key & kFifoBit) {
      throw std::invalid_argument("Simulator::schedule_keyed_at: key has reserved top bit");
    }
    return schedule_with_seq(when, key, std::forward<F>(fn));
  }

  /// Cancel a pending event in O(1). Safe to call on null ids, already-run
  /// events, and already-cancelled events (all no-ops): the id's generation
  /// must match the slot's current generation, and every execution or
  /// cancellation bumps it. No per-cancel memory is retained.
  void cancel(EventId id) {
    if (id.slot_ >= slot_count_) return;  // null or from another simulator
    Slot& s = slot(id.slot_);
    if (s.gen != id.gen_) return;
    // Flag only: the task object stays put until its heap entry pops (it may
    // be the one currently executing — cancelling yourself is legal).
    s.cancelled = true;
  }

  /// Run until the event queue drains or `until` (exclusive upper bound on
  /// event timestamps) is reached. Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Number of events executed so far (for micro-benchmarks and tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Events still in the queue (including cancelled ones not yet popped).
  std::size_t pending_events() const { return heap_.size(); }

  /// Fresh packet-transmission uid. Per-simulator (not a process global) so
  /// concurrent sweeps are race-free and every run sees the same uid
  /// sequence regardless of what ran before it.
  std::uint64_t next_packet_uid() { return ++next_packet_uid_; }

  /// Fresh link uid for keyed delivery ordering (net/link.hpp). Deterministic
  /// in construction order; net::Network overrides per-link with a
  /// topology-global counter so uids agree across shard counts.
  std::uint64_t next_link_uid() { return ++next_link_uid_; }

  /// Re-base the packet uid counter (next uid handed out is base + 1).
  /// The sharded engine gives shard i base i << 48 so uids stay unique
  /// across shards without any cross-thread coordination.
  void seed_packet_uids(std::uint64_t base) { next_packet_uid_ = base; }

  /// Timestamp of the earliest pending (non-cancelled) event, or
  /// SimTime::max() if the queue is empty. Prunes cancelled heap tops as a
  /// side effect. The sharded engine's barrier uses this to compute the
  /// global next-window start.
  SimTime next_event_time();

  /// The simulation-wide hashed timer wheel (sim/timer_wheel.hpp), built
  /// lazily on first use. Transports share it for retransmission/RTO timers;
  /// simulations that never arm a timer pay nothing.
  TimerWheel& timers();

 private:
  // Heap entries are deliberately tiny (24 bytes): sift operations move
  // entries O(log n) times per event, while the fat Task moves exactly twice
  // (into its slot, out at execution).
  //
  // The seq field doubles as the equal-timestamp tie-break. Plain events get
  // kFifoBit | counter (FIFO among themselves); keyed events get their
  // canonical key, which sorts below kFifoBit — so at one timestamp the
  // order is: all keyed events ascending by key, then FIFO.
  static constexpr std::uint64_t kFifoBit = 1ull << 63;

  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;   ///< tie-break: canonical key, or kFifoBit | counter
    std::uint32_t slot;  ///< index into slots_
  };

  struct Slot {
    Task task;
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  // Slots live in fixed-size pages so a Slot& stays valid while its task
  // executes even if the callback schedules enough to grow the pool (a flat
  // vector would reallocate under the running closure's feet). Stability is
  // what lets run() invoke tasks in place: one move-construct at schedule()
  // and one destroy after execution, nothing else touches the capture state.
  static constexpr std::size_t kSlotsPerPage = 256;

  Slot& slot(std::uint32_t i) { return pages_[i / kSlotsPerPage][i % kSlotsPerPage]; }

  void add_page() { pages_.push_back(std::make_unique<Slot[]>(kSlotsPerPage)); }

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot() {
    if (free_slots_.empty()) {
      if (slot_count_ == pages_.size() * kSlotsPerPage) add_page();
      return static_cast<std::uint32_t>(slot_count_++);
    }
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    slot(idx).cancelled = false;
    return idx;
  }

  /// Bump the generation (invalidating outstanding EventIds) and recycle.
  void release_slot(std::uint32_t idx) {
    Slot& s = slot(idx);
    s.task.reset();
    ++s.gen;
    free_slots_.push_back(idx);
  }

  template <class F>
  EventId schedule_with_seq(SimTime when, std::uint64_t seq, F&& fn) {
    if (when < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past " + when.to_string());
    }
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    s.task.emplace(std::forward<F>(fn));
    heap_.push_back(HeapEntry{when, seq, idx});
    sift_up(heap_.size() - 1);
    return EventId{idx, s.gen};
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_top();

  SimTime now_;
  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap on (when, seq)
  std::vector<std::unique_ptr<Slot[]>> pages_;
  std::size_t slot_count_ = 0;  ///< slots handed out so far (all pages)
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t next_packet_uid_ = 0;
  std::uint64_t next_link_uid_ = 0;
  std::unique_ptr<TimerWheel> timers_;  ///< lazy; see timers()
};

/// Convenience: a periodic task that reschedules itself until stopped.
/// Used by meters, path-flapping switches, RCP rate updaters, etc.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, SimTime period, std::function<void()> fn)
      : sim_(simulator), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedule the first tick `period` from now (or `first_delay` if given).
  /// Restarts cleanly if already running.
  void start() { start(period_); }
  void start(SimTime first_delay) {
    stop();
    running_ = true;
    id_ = sim_.schedule(first_delay, [this] { tick(); });
  }
  void stop() {
    if (running_) {
      sim_.cancel(id_);
      running_ = false;
    }
  }
  bool running() const { return running_; }

 private:
  void tick() {
    // Reschedule before invoking so fn_ may call stop() to terminate.
    id_ = sim_.schedule(period_, [this] { tick(); });
    fn_();
  }

  Simulator& sim_;
  SimTime period_;
  std::function<void()> fn_;
  EventId id_;
  bool running_ = false;
};

}  // namespace mtp::sim
