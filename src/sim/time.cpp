#include "sim/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace mtp::sim {

std::string SimTime::to_string() const {
  char buf[48];
  const std::int64_t v = ns_;
  const std::int64_t a = v < 0 ? -v : v;
  if (a < 1'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", v);
  } else if (a < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3gus", static_cast<double>(v) / 1e3);
  } else if (a < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.4gms", static_cast<double>(v) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6gs", static_cast<double>(v) / 1e9);
  }
  return buf;
}

}  // namespace mtp::sim
