#include "sim/logging.hpp"

#include <mutex>

namespace mtp::sim {

void Log::write(LogLevel l, SimTime now, std::string_view component, std::string_view msg) {
  const char* tag = "?";
  switch (l) {
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kTrace: tag = "T"; break;
    case LogLevel::kOff: return;
  }
  // One line per call even when parallel sweep workers log concurrently.
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "%s %-10s [%.*s] %.*s\n", tag, now.to_string().c_str(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace mtp::sim
