// sim::Arena — a bump allocator that owns its objects.
//
// Each shard in sim::sharded::Engine constructs its nodes, links, and queues
// into a private Arena so the whole shard working set sits in a handful of
// contiguous blocks touched by exactly one worker thread — no allocator
// contention during construction and no cross-shard cache-line sharing from
// interleaved heap allocations (docs/scale.md).
//
// make<T>() bump-allocates and records a destructor thunk; destructors run
// in reverse construction order when the Arena is destroyed (or reset()),
// mirroring stack semantics so objects may reference earlier-constructed
// ones. There is no per-object free — that is the point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mtp::sim {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 256 * 1024) : block_bytes_(block_bytes) {}
  ~Arena() { reset(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Construct a T in arena storage. The Arena owns it: the destructor runs
  /// at reset()/Arena destruction, LIFO.
  template <class T, class... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Destroy all owned objects (reverse construction order) and release the
  /// blocks.
  void reset() {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) it->destroy(it->obj);
    dtors_.clear();
    blocks_.clear();
    cur_ = end_ = nullptr;
  }

  std::size_t bytes_allocated() const { return bytes_; }

 private:
  struct Dtor {
    void* obj;
    void (*destroy)(void*);
  };

  void* allocate(std::size_t size, std::size_t align) {
    auto p = reinterpret_cast<std::uintptr_t>(cur_);
    std::uintptr_t aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (cur_ == nullptr || aligned + size > reinterpret_cast<std::uintptr_t>(end_)) {
      const std::size_t want = size + align > block_bytes_ ? size + align : block_bytes_;
      blocks_.push_back(std::make_unique<std::byte[]>(want));
      cur_ = blocks_.back().get();
      end_ = cur_ + want;
      p = reinterpret_cast<std::uintptr_t>(cur_);
      aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cur_ = reinterpret_cast<std::byte*>(aligned + size);
    bytes_ += size;
    return reinterpret_cast<void*>(aligned);
  }

  const std::size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_ = 0;
  std::vector<Dtor> dtors_;
};

}  // namespace mtp::sim
