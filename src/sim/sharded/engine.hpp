// sim::sharded::Engine — conservative space-parallel execution of one run.
//
// A single experiment is split into S shards, each owning a private
// Simulator (event heap, timer wheel, clock). The engine advances all
// shards through synchronized time windows (classic Chandy-Misra-Bryant
// conservatism, specialized to a global window barrier):
//
//   lookahead Δ = minimum propagation delay over all cross-shard links.
//   Every cross-shard interaction is a packet handoff, and a packet sent at
//   time t arrives no earlier than t + Δ. So if every shard has seen every
//   handoff with deliver_at < W, all shards may run [W, W + Δ) with no
//   further communication: anything a peer generates inside the window
//   lands at >= W + Δ.
//
// The window loop per shard is:
//   1. drain(shard)  — pull queued handoffs from peers, schedule them
//   2. publish the shard's next-event time; barrier. The barrier completion
//      computes gmin = min over shards and the window end
//      min(until, gmin + Δ) — jumping the window start to gmin skips idle
//      gaps instead of spinning Δ at a time.
//   3. run the shard's simulator to the window end; barrier (so every
//      handoff pushed during the window is published before anyone drains).
//
// Determinism does NOT depend on thread timing: handoffs are scheduled as
// *keyed* events (Simulator::schedule_keyed_at) whose tie-break key derives
// from simulation content, so each shard executes the exact event sequence
// the serial engine would execute restricted to that shard (docs/scale.md).
//
// The engine runs on sim::WorkerPool — the same pool abstraction behind
// sim::ParallelSweep — with exactly one lane per shard, because shard
// bodies block on each other through the barrier and must run concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/worker_pool.hpp"

namespace mtp::sim::sharded {

class Engine {
 public:
  struct Config {
    /// One Simulator per shard; the engine does not own them.
    std::vector<Simulator*> sims;
    /// Conservative lookahead: minimum cross-shard propagation delay.
    /// Must be > zero when sims.size() > 1.
    SimTime lookahead;
    /// drain(shard): move every queued incoming handoff onto the shard's
    /// simulator (as keyed events). Called at the top of every window, on
    /// the shard's worker thread. Required for multi-shard configs.
    std::function<void(std::size_t)> drain;
    /// Optional per-worker bracket, run on the shard's thread before the
    /// first window / after the last. Used to set up and collect
    /// thread-local telemetry (trace sinks). Not called when sims.size()==1
    /// — the serial fast path runs on the caller's thread with its existing
    /// thread-local state.
    std::function<void(std::size_t)> on_worker_start;
    std::function<void(std::size_t)> on_worker_finish;
  };

  explicit Engine(Config cfg);

  /// Advance every shard to `until` (exclusive bound on event timestamps,
  /// like Simulator::run). Returns the total number of events executed
  /// across shards. Callable repeatedly with increasing bounds.
  std::uint64_t run(SimTime until);

  std::size_t shards() const { return cfg_.sims.size(); }

  /// Barrier rounds executed so far (one round = one window) — exposed for
  /// tests and the bench report; the window count bounds synchronization
  /// overhead.
  std::uint64_t windows() const { return windows_; }

 private:
  Config cfg_;
  WorkerPool pool_;
  std::uint64_t windows_ = 0;
};

}  // namespace mtp::sim::sharded
