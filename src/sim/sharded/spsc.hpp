// sharded::SpscChannel — single-producer single-consumer handoff queue.
//
// One channel exists per ordered shard pair (src shard -> dst shard). The
// sharded engine's window protocol makes its use phases barrier-separated:
// producers push only while a window executes, the consumer drains only
// between windows, and the std::barrier between the two phases provides the
// acquire/release ordering for the element payloads. The atomics here make
// the index handoff race-free even if a producer's last push and the
// consumer's first pop straddle the barrier by nanoseconds (TSan-clean),
// but the capacity/ordering contract leans on the protocol, not on the
// queue: an unbounded segment list means push never blocks, so a window
// can generate any number of cross-shard packets.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace mtp::sim::sharded {

template <class T, std::size_t kSegment = 256>
class SpscChannel {
 public:
  SpscChannel() : head_(new Segment), tail_(head_) {}
  ~SpscChannel() {
    Segment* s = head_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }
  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  /// Producer side. Never blocks; allocates a fresh segment only when the
  /// current one fills (steady state reuses nothing — segments retire to the
  /// consumer — but windows are short, so a segment covers most windows).
  void push(T value) {
    Segment* t = tail_;
    const std::size_t w = t->write.load(std::memory_order_relaxed);
    if (w == kSegment) {
      auto* next = new Segment;
      next->slots[0] = std::move(value);
      next->write.store(1, std::memory_order_release);
      t->next.store(next, std::memory_order_release);
      tail_ = next;
      return;
    }
    t->slots[w] = std::move(value);
    t->write.store(w + 1, std::memory_order_release);
  }

  /// Consumer side: move every queued element into `out`. Called between
  /// windows, after the barrier, so everything the producer pushed this
  /// window is visible.
  void drain(std::vector<T>& out) {
    for (;;) {
      Segment* h = head_;
      const std::size_t w = h->write.load(std::memory_order_acquire);
      while (read_ < w) out.push_back(std::move(h->slots[read_++]));
      Segment* next = h->next.load(std::memory_order_acquire);
      if (next == nullptr) return;
      head_ = next;
      read_ = 0;
      delete h;
    }
  }

 private:
  struct Segment {
    T slots[kSegment];
    std::atomic<std::size_t> write{0};
    std::atomic<Segment*> next{nullptr};
  };

  Segment* head_;         ///< consumer-owned
  std::size_t read_ = 0;  ///< consumer cursor within head_
  alignas(64) Segment* tail_;  ///< producer-owned
};

}  // namespace mtp::sim::sharded
