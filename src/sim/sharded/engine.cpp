#include "sim/sharded/engine.hpp"

#include <atomic>
#include <barrier>
#include <exception>
#include <stdexcept>

namespace mtp::sim::sharded {

Engine::Engine(Config cfg) : cfg_(std::move(cfg)), pool_(static_cast<unsigned>(cfg_.sims.size())) {
  if (cfg_.sims.empty()) {
    throw std::invalid_argument("sharded::Engine: no shards");
  }
  if (cfg_.sims.size() > 1) {
    if (cfg_.lookahead <= SimTime::zero()) {
      throw std::invalid_argument(
          "sharded::Engine: lookahead must be positive (a zero-delay "
          "cross-shard link defeats conservative windows)");
    }
    if (!cfg_.drain) {
      throw std::invalid_argument("sharded::Engine: drain hook is required");
    }
  }
}

std::uint64_t Engine::run(SimTime until) {
  const std::size_t S = cfg_.sims.size();
  if (S == 1) {
    // Serial fast path: no windows, no barriers, caller's thread-local
    // telemetry — byte-for-byte the classic engine.
    if (cfg_.drain) cfg_.drain(0);
    return cfg_.sims[0]->run(until);
  }

  std::vector<SimTime> next(S, SimTime::max());
  std::vector<std::uint64_t> counts(S, 0);
  std::vector<std::exception_ptr> errors(S);
  std::atomic<bool> failed{false};
  SimTime window_end = SimTime::zero();
  bool stop = false;

  // Runs single-threaded between barrier phases; its writes are published
  // to every shard by the barrier itself. The completion fires at *both*
  // sync points of a window; only the publish phase (after drain +
  // next-event publication) computes anything — the post-run phase exists
  // purely to order handoff pushes before the next drain.
  bool publish_phase = true;
  auto on_completion = [&]() noexcept {
    if (!publish_phase) {
      publish_phase = true;
      return;
    }
    publish_phase = false;
    ++windows_;
    SimTime gmin = SimTime::max();
    for (const SimTime t : next) {
      if (t < gmin) gmin = t;
    }
    if (failed.load(std::memory_order_relaxed) || gmin >= until) {
      stop = true;
      return;
    }
    // Window = [gmin, gmin + Δ), clipped to `until`. Guard the addition:
    // gmin + Δ must not overflow when until == SimTime::max().
    window_end = gmin > until - cfg_.lookahead ? until : gmin + cfg_.lookahead;
  };
  std::barrier bar(static_cast<std::ptrdiff_t>(S), on_completion);

  pool_.parallel_for(S, [&](std::size_t shard) {
    if (cfg_.on_worker_start) cfg_.on_worker_start(shard);
    for (;;) {
      try {
        cfg_.drain(shard);
        next[shard] = cfg_.sims[shard]->next_event_time();
      } catch (...) {
        errors[shard] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        next[shard] = SimTime::max();
      }
      bar.arrive_and_wait();
      if (stop) break;
      try {
        counts[shard] += cfg_.sims[shard]->run(window_end);
      } catch (...) {
        errors[shard] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      bar.arrive_and_wait();
    }
    // Leave every shard clock at `until`, exactly like a serial run() that
    // stopped on its bound. No pending event is earlier (gmin >= until), so
    // this executes nothing.
    if (!failed.load(std::memory_order_relaxed)) {
      counts[shard] += cfg_.sims[shard]->run(until);
    }
    if (cfg_.on_worker_finish) cfg_.on_worker_finish(shard);
  });

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

}  // namespace mtp::sim::sharded
