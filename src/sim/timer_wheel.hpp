// Hashed timer wheel for high-count, mostly-cancelled timers.
//
// Transports arm one timer per in-flight message (MTP retransmission) or per
// connection (TCP RTO). At 100k+ concurrent messages a heap event per timer
// would dominate the simulator queue, and the old approach — one periodic
// task sweeping every message — costs O(messages) per tick whether or not
// anything expired. The wheel hashes each timer into a bucket by its
// quantized deadline; arming and cancelling are O(1), and the wheel wakes
// the simulator only at ticks that actually have timers due (an empty wheel
// schedules nothing, so simulations still quiesce).
//
// Semantics:
//   - Deadlines are rounded UP to a multiple of `granularity`: a timer never
//     fires early, and fires at most one granularity late. This matches the
//     old retx_scan contract, which noticed expiry at the first scan tick at
//     or after the deadline.
//   - Timers that share a quantized tick fire in arm order (FIFO), mirroring
//     both the simulator's same-timestamp ordering and the old sweep's
//     iteration order over a recorded schedule.
//   - Callbacks are a raw function pointer + owner + 64-bit argument rather
//     than a sim::Task: a timer slot is 64 bytes, not 400, which is what
//     keeps per-idle-message cost bounded at scale (docs/scale.md).
//   - Callbacks may arm and cancel timers freely, including their own id
//     (a no-op: the id is already released when the callback runs).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mtp::sim {

/// Handle to an armed timer, used for cancellation. Default-constructed ids
/// are "null" and safe to cancel (a no-op), as are ids whose timer already
/// fired or was already cancelled (generation-checked, like sim::EventId).
class TimerId {
 public:
  TimerId() = default;
  bool valid() const { return slot_ != kNullSlot; }

 private:
  friend class TimerWheel;
  static constexpr std::uint32_t kNullSlot = 0xffffffff;
  TimerId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNullSlot;
  std::uint32_t gen_ = 0;
};

class TimerWheel {
 public:
  struct Config {
    /// Deadline quantum. Smaller = tighter firing, more wakeups.
    SimTime granularity = SimTime::microseconds(10);
    /// Wheel size; deadlines wrap modulo buckets*granularity (far-future
    /// timers just sit through extra revolutions unexamined until due).
    std::size_t buckets = 1024;
  };

  /// `owner` is the object the timer belongs to, `arg` a caller-chosen
  /// discriminator (e.g. a message id). Plain function pointers keep the
  /// slot small; bind member functions through a static trampoline.
  using FireFn = void (*)(void* owner, std::uint64_t arg);

  explicit TimerWheel(Simulator& sim) : TimerWheel(sim, Config()) {}
  TimerWheel(Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg), buckets_(cfg.buckets) {}
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm a timer at absolute `deadline` (quantized up; clamped to now).
  TimerId arm(SimTime deadline, FireFn fn, void* owner, std::uint64_t arg = 0) {
    const std::uint64_t tick = tick_of(deadline);
    const std::uint32_t idx = acquire_slot();
    Timer& t = timers_[idx];
    t.tick = tick;
    t.fn = fn;
    t.owner = owner;
    t.arg = arg;
    t.armed = true;
    link_back(bucket_of(tick), idx);
    ++armed_count_;
    wake_bucket(bucket_of(tick), tick);
    return TimerId{idx, t.gen};
  }

  /// Cancel in O(1). Null, fired, and already-cancelled ids are no-ops.
  void cancel(TimerId id) {
    if (id.slot_ >= timers_.size()) return;
    Timer& t = timers_[id.slot_];
    if (t.gen != id.gen_ || !t.armed) return;
    unlink(bucket_of(t.tick), id.slot_);
    release_slot(id.slot_);
    --armed_count_;
    // The bucket's wake event, if now moot, pops as a cheap no-op.
  }

  /// True while the timer is pending (not yet fired or cancelled).
  bool armed(TimerId id) const {
    if (id.slot_ >= timers_.size()) return false;
    const Timer& t = timers_[id.slot_];
    return t.gen == id.gen_ && t.armed;
  }

  std::size_t armed_count() const { return armed_count_; }
  SimTime granularity() const { return cfg_.granularity; }

  /// The time an `arm(deadline, ...)` would actually fire at.
  SimTime fire_time(SimTime deadline) const {
    return SimTime::nanoseconds(static_cast<std::int64_t>(tick_of(deadline)) *
                                cfg_.granularity.ns());
  }

 private:
  static constexpr std::uint32_t kNull = 0xffffffff;

  struct Timer {
    std::uint64_t tick = 0;  ///< absolute quantized deadline (ns / granularity)
    FireFn fn = nullptr;
    void* owner = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t prev = kNull;  ///< intrusive per-bucket list, arm order
    std::uint32_t next = kNull;
    std::uint32_t gen = 0;
    bool armed = false;
  };

  struct Bucket {
    std::uint32_t head = kNull;
    std::uint32_t tail = kNull;
    /// Earliest tick this bucket has a wake event scheduled for (kNoWake if
    /// none). Lets arm() skip rescheduling when an earlier wake is pending.
    std::uint64_t wake_tick = kNoWake;
    EventId wake_event;
  };
  static constexpr std::uint64_t kNoWake = ~std::uint64_t{0};

  std::uint64_t tick_of(SimTime deadline) const {
    std::int64_t ns = deadline.ns();
    const std::int64_t g = cfg_.granularity.ns();
    if (ns < sim_.now().ns()) ns = sim_.now().ns();
    return static_cast<std::uint64_t>((ns + g - 1) / g);
  }

  std::size_t bucket_of(std::uint64_t tick) const { return tick % buckets_.size(); }

  std::uint32_t acquire_slot() {
    if (free_.empty()) {
      timers_.emplace_back();
      return static_cast<std::uint32_t>(timers_.size() - 1);
    }
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }

  void release_slot(std::uint32_t idx) {
    Timer& t = timers_[idx];
    t.armed = false;
    ++t.gen;
    free_.push_back(idx);
  }

  void link_back(std::size_t b, std::uint32_t idx) {
    Bucket& bk = buckets_[b];
    Timer& t = timers_[idx];
    t.prev = bk.tail;
    t.next = kNull;
    if (bk.tail != kNull) timers_[bk.tail].next = idx;
    bk.tail = idx;
    if (bk.head == kNull) bk.head = idx;
  }

  void unlink(std::size_t b, std::uint32_t idx) {
    Bucket& bk = buckets_[b];
    Timer& t = timers_[idx];
    if (t.prev != kNull) timers_[t.prev].next = t.next; else bk.head = t.next;
    if (t.next != kNull) timers_[t.next].prev = t.prev; else bk.tail = t.prev;
    t.prev = t.next = kNull;
  }

  /// Ensure bucket `b` has a wake event at or before `tick`. The wake is a
  /// *keyed* event (kTimerWheelKey): a wake's position among same-timestamp
  /// events must not depend on how often it was cancelled and rescheduled —
  /// FIFO seq order would encode that history and break serial-vs-sharded
  /// bit-identity. At most one wake exists per timestamp per wheel (a wake
  /// time determines its tick, a tick its bucket), so a constant key is
  /// collision-free.
  void wake_bucket(std::size_t b, std::uint64_t tick) {
    Bucket& bk = buckets_[b];
    if (bk.wake_tick <= tick) return;
    sim_.cancel(bk.wake_event);
    bk.wake_tick = tick;
    const SimTime when =
        SimTime::nanoseconds(static_cast<std::int64_t>(tick) * cfg_.granularity.ns());
    bk.wake_event = sim_.schedule_keyed_at(when, kTimerWheelKey, [this, b] { service_bucket(b); });
  }

  /// Fire every timer in bucket `b` whose tick has arrived, then reschedule
  /// the bucket's wake for its next pending round (if any).
  void service_bucket(std::size_t b) {
    Bucket& bk = buckets_[b];
    bk.wake_tick = kNoWake;
    const std::uint64_t now_tick =
        static_cast<std::uint64_t>(sim_.now().ns()) /
        static_cast<std::uint64_t>(cfg_.granularity.ns());
    // Collect-then-invoke: callbacks may arm into this bucket (growing
    // timers_ and relinking), so the traversal must finish first.
    due_.clear();
    std::uint64_t next_round = kNoWake;
    for (std::uint32_t i = bk.head; i != kNull;) {
      Timer& t = timers_[i];
      const std::uint32_t next = t.next;
      if (t.tick <= now_tick) {
        due_.push_back(Due{t.fn, t.owner, t.arg});
        unlink(b, i);
        release_slot(i);
        --armed_count_;
      } else if (t.tick < next_round) {
        next_round = t.tick;
      }
      i = next;
    }
    if (next_round != kNoWake) wake_bucket(b, next_round);
    for (const Due& d : due_) d.fn(d.owner, d.arg);
  }

  struct Due {
    FireFn fn;
    void* owner;
    std::uint64_t arg;
  };

  Simulator& sim_;
  Config cfg_;
  std::vector<Timer> timers_;
  std::vector<std::uint32_t> free_;
  std::vector<Bucket> buckets_;
  std::vector<Due> due_;  ///< scratch, reused across ticks
  std::size_t armed_count_ = 0;
};

}  // namespace mtp::sim
