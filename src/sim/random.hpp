// Deterministic random-number generation for simulations.
//
// Every experiment takes an explicit seed so results are reproducible; the
// distributions here (bounded Pareto, empirical CDF) are the ones the
// paper's workloads need and are not in <random>.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace mtp::sim {

/// A seeded PRNG plus the sampling helpers used throughout the workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::generate_canonical<double, 53>(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (inter-arrival times for Poisson flows).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  SimTime exponential_time(SimTime mean) {
    return SimTime::nanoseconds(
        static_cast<std::int64_t>(exponential(static_cast<double>(mean.ns()))));
  }

  bool bernoulli(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Bounded Pareto distribution over [lo, hi] with shape `alpha`.
///
/// This is the standard heavy-tailed, short-skewed message-size model: most
/// samples land near `lo`, with a tail stretching to `hi`. Used for the
/// Fig 6 workload ("10 KB-1 GB skewed toward short messages").
class BoundedPareto {
 public:
  BoundedPareto(double lo, double hi, double alpha) : lo_(lo), hi_(hi), alpha_(alpha) {
    if (!(lo > 0) || !(hi > lo) || !(alpha > 0)) {
      throw std::invalid_argument("BoundedPareto: need 0 < lo < hi and alpha > 0");
    }
  }

  double sample(Rng& rng) const {
    const double u = rng.uniform();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    // Inverse-CDF of the bounded Pareto.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  }

  std::int64_t sample_int(Rng& rng) const {
    return static_cast<std::int64_t>(sample(rng));
  }

  double mean() const {
    if (alpha_ == 1.0) return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    return la / (1 - la / ha) * (alpha_ / (alpha_ - 1)) *
           (1 / std::pow(lo_, alpha_ - 1) - 1 / std::pow(hi_, alpha_ - 1));
  }

 private:
  double lo_, hi_, alpha_;
};

/// Piecewise-linear empirical CDF: sample values by inverse-transform over
/// (value, cumulative-probability) knots. This is how published workloads
/// (web search, data mining) are usually specified.
class EmpiricalCdf {
 public:
  struct Knot {
    double value;
    double cdf;  // cumulative probability in [0, 1], non-decreasing
  };

  explicit EmpiricalCdf(std::vector<Knot> knots) : knots_(std::move(knots)) {
    if (knots_.size() < 2) throw std::invalid_argument("EmpiricalCdf: need >= 2 knots");
    if (knots_.front().cdf != 0.0 || knots_.back().cdf != 1.0) {
      throw std::invalid_argument("EmpiricalCdf: cdf must span [0, 1]");
    }
    for (std::size_t i = 1; i < knots_.size(); ++i) {
      if (knots_[i].cdf < knots_[i - 1].cdf || knots_[i].value < knots_[i - 1].value) {
        throw std::invalid_argument("EmpiricalCdf: knots must be non-decreasing");
      }
    }
  }

  double sample(Rng& rng) const {
    const double u = rng.uniform();
    // Find the segment containing u and interpolate.
    std::size_t i = 1;
    while (i < knots_.size() - 1 && knots_[i].cdf < u) ++i;
    const Knot& a = knots_[i - 1];
    const Knot& b = knots_[i];
    if (b.cdf == a.cdf) return b.value;
    const double t = (u - a.cdf) / (b.cdf - a.cdf);
    return a.value + t * (b.value - a.value);
  }

  std::int64_t sample_int(Rng& rng) const {
    return static_cast<std::int64_t>(sample(rng));
  }

  double mean() const {
    // Mean of the piecewise-linear density: sum of segment midpoints weighted
    // by segment probability mass.
    double m = 0;
    for (std::size_t i = 1; i < knots_.size(); ++i) {
      m += (knots_[i].cdf - knots_[i - 1].cdf) * (knots_[i].value + knots_[i - 1].value) / 2.0;
    }
    return m;
  }

  std::span<const Knot> knots() const { return knots_; }

 private:
  std::vector<Knot> knots_;
};

}  // namespace mtp::sim
