#include "sim/simulator.hpp"

namespace mtp::sim {

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t executed_this_run = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when >= until) break;
    if (!cancelled_.empty()) {
      auto it = cancelled_.find(top.seq);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
    }
    now_ = top.when;
    Callback fn = std::move(top.fn);
    queue_.pop();
    fn();
    ++executed_;
    ++executed_this_run;
  }
  // If we stopped on `until`, advance the clock to it so back-to-back run()
  // calls observe contiguous time.
  if (until != SimTime::max() && now_ < until) now_ = until;
  return executed_this_run;
}

}  // namespace mtp::sim
