#include "sim/simulator.hpp"

#include <utility>

#include "sim/timer_wheel.hpp"

namespace mtp::sim {

Simulator::Simulator(std::size_t reserve_events) {
  heap_.reserve(reserve_events);
  free_slots_.reserve(reserve_events);
}

Simulator::~Simulator() = default;

TimerWheel& Simulator::timers() {
  if (!timers_) timers_ = std::make_unique<TimerWheel>(*this);
  return *timers_;
}

// 4-ary heap: children of i are 4i+1 .. 4i+4. Compared to a binary heap the
// tree is half as deep, so pop does half the sift-down levels; the extra
// comparisons per level are cheap on 24-byte entries that share cache lines.
void Simulator::sift_up(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::pop_top() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

SimTime Simulator::next_event_time() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (!slot(top.slot).cancelled) return top.when;
    pop_top();
    release_slot(top.slot);
  }
  return SimTime::max();
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t executed_this_run = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    Slot& s = slot(top.slot);
    if (s.cancelled) {
      pop_top();
      release_slot(top.slot);
      continue;
    }
    if (top.when >= until) break;
    now_ = top.when;
    pop_top();
    // Execute in place: slot pages are address-stable, so the callback may
    // schedule freely (it cannot reuse this slot — it is not on the free
    // list yet, and cancelling it merely sets the flag we are done reading).
    s.task();
    release_slot(top.slot);
    ++executed_;
    ++executed_this_run;
  }
  // If we stopped on `until`, advance the clock to it so back-to-back run()
  // calls observe contiguous time.
  if (until != SimTime::max() && now_ < until) now_ = until;
  return executed_this_run;
}

}  // namespace mtp::sim
