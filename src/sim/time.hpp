// Simulated-time representation for the MTP packet-level simulator.
//
// SimTime is a strong type over signed 64-bit nanoseconds. A signed
// representation lets durations be subtracted freely; 2^63 ns is ~292 years
// of simulated time, far beyond any experiment here.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace mtp::sim {

/// A point in (or duration of) simulated time with nanosecond resolution.
///
/// SimTime is deliberately a single type for both points and durations, as is
/// conventional in network simulators: experiments constantly mix the two
/// ("now + rtt/2") and a Chrono-style split adds noise without catching real
/// bugs at this scale.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Prefer these (or the literals below) over raw counts.
  static constexpr SimTime nanoseconds(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime microseconds(std::int64_t us) { return SimTime{us * 1'000}; }
  static constexpr SimTime milliseconds(std::int64_t ms) { return SimTime{ms * 1'000'000}; }
  static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000'000}; }
  /// Fractional seconds, e.g. SimTime::from_seconds(0.0000015).
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

  /// Scale a duration by a double (e.g. RTO backoff, EWMA mixing).
  constexpr SimTime scaled(double f) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * f + 0.5)};
  }

  /// Human-readable rendering with an auto-selected unit ("384us", "1.5ms").
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) { return SimTime::nanoseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_us(unsigned long long v) { return SimTime::microseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_ms(unsigned long long v) { return SimTime::milliseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_s(unsigned long long v) { return SimTime::seconds(static_cast<std::int64_t>(v)); }
}  // namespace literals

/// Bits-per-second bandwidth as a strong type, with the serialization-delay
/// arithmetic every link needs. Kept alongside SimTime because the two are
/// only ever used together.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bps(std::int64_t v) { return Bandwidth{v}; }
  static constexpr Bandwidth kbps(std::int64_t v) { return Bandwidth{v * 1'000}; }
  static constexpr Bandwidth mbps(std::int64_t v) { return Bandwidth{v * 1'000'000}; }
  static constexpr Bandwidth gbps(std::int64_t v) { return Bandwidth{v * 1'000'000'000}; }

  constexpr std::int64_t bits_per_sec() const { return bps_; }
  constexpr double gbit_per_sec() const { return static_cast<double>(bps_) / 1e9; }

  /// Time to serialize `bytes` onto a link of this rate.
  /// Uses __int128 internally: 1 GB at 1 bps would overflow int64 ns math.
  constexpr SimTime serialization_delay(std::int64_t bytes) const {
    const auto bits = static_cast<__int128>(bytes) * 8;
    const auto ns = (bits * 1'000'000'000 + bps_ - 1) / bps_;  // ceil
    return SimTime::nanoseconds(static_cast<std::int64_t>(ns));
  }

  /// Bytes transmittable in `t` at this rate (floor).
  constexpr std::int64_t bytes_in(SimTime t) const {
    const auto bits = static_cast<__int128>(t.ns()) * bps_ / 1'000'000'000;
    return static_cast<std::int64_t>(bits / 8);
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth scaled(double f) const {
    return Bandwidth{static_cast<std::int64_t>(static_cast<double>(bps_) * f + 0.5)};
  }

 private:
  constexpr explicit Bandwidth(std::int64_t bps) : bps_(bps) {}
  std::int64_t bps_ = 0;
};

}  // namespace mtp::sim
