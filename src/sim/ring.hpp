// sim::RingBuffer — a growable circular FIFO.
//
// std::deque<T> allocates a fresh chunk for every element once sizeof(T)
// exceeds the chunk size (512 bytes in libstdc++) — for 312-byte Packets
// that is a malloc/free per enqueue, which the allocation-free hot path
// (docs/perf.md) cannot afford. RingBuffer keeps elements in one contiguous
// power-of-two array, doubling (and re-linearizing) only when full, so
// steady-state push/pop never touches the heap.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mtp::sim {

/// Move-only FIFO. T must be default-constructible and movable (elements are
/// stored in a pre-sized vector and moved in/out of their cells).
template <class T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t initial_capacity = 0) {
    if (initial_capacity > 0) buf_.resize(ceil_pow2(initial_capacity));
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  void push_back(T&& v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
    ++count_;
  }

  /// Claim the next back cell and return it for in-place assignment. The
  /// cell holds a default-constructed (or previously moved-from) T; callers
  /// assign its fields directly, skipping the temporary that push_back of a
  /// freshly built aggregate would move twice.
  T& push_empty() {
    if (count_ == buf_.size()) grow();
    ++count_;
    return back();
  }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }
  T& back() {
    assert(count_ > 0);
    return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
  }

  T pop_front() {
    assert(count_ > 0);
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return v;
  }

  /// Move the front element into `out` (one move-assign, no temporary).
  void pop_front_into(T& out) {
    assert(count_ > 0);
    out = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  /// Advance past the front element without moving it out. For use after the
  /// caller consumed it via front() — anything it still owns stays in the
  /// cell until that cell is overwritten, so move out what matters first.
  void drop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  /// Un-claim the cell most recently claimed with push_empty() (same caveat
  /// as drop_front: the cell's contents stay until overwritten).
  void drop_back() {
    assert(count_ > 0);
    --count_;
  }

  /// FIFO-order element access: (*this)[0] is the front.
  T& operator[](std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  void clear() {
    // Drop payloads eagerly; keep the storage for reuse.
    while (count_ > 0) (void)pop_front();
  }

 private:
  static std::size_t ceil_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void grow() {
    const std::size_t new_cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace mtp::sim
