// sim::WorkerPool — the one thread pool behind every parallel surface.
//
// Both parallel surfaces in the simulator — sim::ParallelSweep (many
// independent simulations) and sim::sharded::Engine (one simulation split
// into space shards) — need the same primitive: run fn(0..n-1) on a fixed
// set of worker threads and block until all are done. They used to be free
// to spawn their own threads; WorkerPool is the shared abstraction so worker
// count is decided in exactly one place.
//
// Worker-count policy: an explicit count wins; 0 means "the default", which
// is the MTP_THREADS environment variable when set (and >= 1), else
// std::thread::hardware_concurrency(). Setting MTP_THREADS=1 therefore
// forces every parallel surface in the process onto the calling thread —
// handy on CI boxes where the container is pinned to one core.
//
// Threads are spawned lazily on the first multi-way dispatch and parked on a
// condition variable between dispatches, so a pool that is constructed but
// never used (or only ever used with one worker) costs nothing. Multi-way
// dispatches run every lane on a pool thread while the caller blocks — jobs
// never share the caller's thread-local telemetry singletons. Only the
// one-lane serial baseline (workers == 1, or n == 1) runs inline on the
// calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mtp::sim {

class WorkerPool {
 public:
  /// `workers` = 0 picks default_workers(). `workers` = 1 runs every
  /// dispatch inline on the calling thread (the serial baseline, including
  /// thread-local state, so serial-vs-parallel comparisons are meaningful).
  explicit WorkerPool(unsigned workers = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// MTP_THREADS (if set and >= 1) else hardware_concurrency(), min 1.
  static unsigned default_workers();

  unsigned workers() const { return workers_; }

  /// Run body(i) for every i in [0, n), spread over min(workers, n) lanes;
  /// blocks until every index finished. Lane k executes indices k, k+W,
  /// k+2W, ... in order, so with n == workers each lane is one long-lived
  /// body — the shape sharded::Engine needs for its window loop, where each
  /// body synchronizes with its peers through a barrier and must therefore
  /// run on its own lane. If any body throws, the first exception (by index)
  /// is rethrown after all lanes drain.
  ///
  /// NOT reentrant: a body must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Dispatch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t lanes = 0;
    std::size_t lanes_done = 0;
    std::vector<std::exception_ptr> errors;
  };

  void run_lane(std::size_t lane);
  void worker_main(std::size_t lane);
  void ensure_threads(std::size_t lanes);
  void rethrow_first(std::vector<std::exception_ptr>& errors);

  const unsigned workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here between dispatches
  std::condition_variable done_cv_;  ///< the caller waits here for lanes_done
  std::uint64_t generation_ = 0;     ///< bumped per dispatch to wake workers
  bool shutdown_ = false;
  Dispatch dispatch_;
  std::vector<std::thread> threads_;  ///< lanes 1..workers-1, spawned lazily
};

}  // namespace mtp::sim
