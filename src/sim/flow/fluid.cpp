#include "sim/flow/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mtp::sim::flow {

std::uint32_t FluidModel::add_conduit(std::int64_t capacity_bps, RateFn apply) {
  if (started_) throw std::logic_error("FluidModel::add_conduit after start()");
  Conduit c;
  c.capacity_bps = capacity_bps;
  c.apply = std::move(apply);
  conduits_.push_back(std::move(c));
  return static_cast<std::uint32_t>(conduits_.size() - 1);
}

std::uint32_t FluidModel::add_flow(SimTime at, std::vector<std::uint32_t> path,
                                   std::int64_t bytes, std::int64_t rate_cap_bps,
                                   DoneFn done) {
  if (started_) throw std::logic_error("FluidModel::add_flow after start()");
  if (path.empty()) throw std::invalid_argument("FluidModel::add_flow: empty path");
  Flow f;
  f.at = at;
  f.path = std::move(path);
  f.total_bitns = static_cast<__int128>(bytes) * 8 * kNsPerSec;
  f.remaining_bitns = f.total_bitns;
  f.rate_cap_bps = rate_cap_bps;
  f.done_fn = std::move(done);
  flows_.push_back(std::move(f));
  const auto idx = static_cast<std::uint32_t>(flows_.size() - 1);
  declared_.push_back({at, Declared::Kind::kArrival, idx, 0});
  return idx;
}

void FluidModel::set_capacity_at(SimTime at, std::uint32_t conduit,
                                 std::int64_t capacity_bps) {
  if (started_) throw std::logic_error("FluidModel::set_capacity_at after start()");
  declared_.push_back({at, Declared::Kind::kCapacity, conduit, capacity_bps});
}

void FluidModel::add_load_at(SimTime at, std::uint32_t conduit, std::int64_t delta_bps) {
  if (started_) throw std::logic_error("FluidModel::add_load_at after start()");
  declared_.push_back({at, Declared::Kind::kLoad, conduit, delta_bps});
}

void FluidModel::start() {
  if (started_) throw std::logic_error("FluidModel::start called twice");
  started_ = true;
  clock_ = sim_.now();
  // Stable by time: equal-time declarations apply in declaration order,
  // which every replica shares. One keyed event per declaration; the seq
  // counter (and so the keys) advances identically on every replica.
  std::stable_sort(declared_.begin(), declared_.end(),
                   [](const Declared& a, const Declared& b) { return a.at < b.at; });
  for (std::size_t i = 0; i < declared_.size(); ++i) {
    const SimTime at = declared_[i].at < clock_ ? clock_ : declared_[i].at;
    sim_.schedule_keyed_at(at, next_key(), [this, i] {
      advance_to(sim_.now());
      apply_declared(declared_[i]);
      resolve();
      schedule_next_completion();
    });
  }
}

std::int64_t FluidModel::fluid_capacity(const Conduit& c) const {
  const auto scaled = static_cast<__int128>(c.capacity_bps) * cfg_.capacity_num /
                      cfg_.capacity_den;
  const std::int64_t avail = static_cast<std::int64_t>(scaled) - c.external_load_bps;
  return avail > 0 ? avail : 0;
}

void FluidModel::advance_to(SimTime t) {
  const std::int64_t dt = (t - clock_).ns();
  clock_ = t;
  if (dt <= 0) return;
  for (Flow& f : flows_) {
    if (!f.active || f.done || f.rate_bps == 0) continue;
    __int128 delta = static_cast<__int128>(f.rate_bps) * dt;
    if (delta > f.remaining_bitns) {
      // An overshoot of >= 1 ns worth of rate means a completion event was
      // missed and the flow "delivered" bits it no longer had — a solver
      // bug, not ceil rounding. Count it; tests assert the count stays 0.
      if (delta - f.remaining_bitns >= static_cast<__int128>(f.rate_bps)) ++violations_;
      delta = f.remaining_bitns;
    }
    f.remaining_bitns -= delta;
    for (const std::uint32_t c : f.path) conduits_[c].delivered_bitns += delta;
  }
}

void FluidModel::apply_declared(const Declared& d) {
  switch (d.kind) {
    case Declared::Kind::kArrival: {
      Flow& f = flows_[d.index];
      f.active = true;
      if (f.remaining_bitns == 0) {  // zero-byte transfer: done on arrival
        f.done = true;
        f.finish_at = clock_;
        ++completed_;
        if (f.done_fn) f.done_fn(d.index, clock_);
      }
      break;
    }
    case Declared::Kind::kCapacity:
      conduits_[d.index].capacity_bps = d.value;
      break;
    case Declared::Kind::kLoad:
      conduits_[d.index].external_load_bps += d.value;
      break;
  }
}

void FluidModel::resolve() {
  ++resolves_;
  ++solve_gen_;  // pending completion events are now stale

  // Scratch over the touched sub-network only: the union of active paths
  // plus conduits still carrying a (possibly stale) reservation. Keeps a
  // re-solve O(active flows x path length), not O(all conduits) — a k=32
  // fabric has ~50k conduits and a re-solve must not scan them all.
  active_.clear();
  touched_.clear();
  for (std::uint32_t fi = 0; fi < flows_.size(); ++fi) {
    Flow& f = flows_[fi];
    f.rate_bps = 0;
    f.frozen = false;
    if (!f.active || f.done) continue;
    active_.push_back(fi);
    for (const std::uint32_t ci : f.path) {
      Conduit& c = conduits_[ci];
      if (!c.in_touched) {
        c.in_touched = true;
        c.residual_bps = fluid_capacity(c);
        c.unfrozen = 0;
        c.pending_bps = 0;
        touched_.push_back(ci);
      }
      ++c.unfrozen;
    }
  }
  for (const std::uint32_t ci : reserved_nonzero_) {
    Conduit& c = conduits_[ci];
    if (!c.in_touched) {
      c.in_touched = true;
      c.residual_bps = fluid_capacity(c);
      c.unfrozen = 0;
      c.pending_bps = 0;
      touched_.push_back(ci);
    }
  }

  // Progressive filling. Each round either freezes every capped flow whose
  // cap fits under the current bottleneck share, or freezes the bottleneck
  // conduit's flows at that share. Ties break toward the lowest conduit
  // index / lowest flow index — content-derived, replica-identical.
  std::size_t unfrozen_flows = active_.size();
  while (unfrozen_flows > 0) {
    std::int64_t best_share = std::numeric_limits<std::int64_t>::max();
    std::uint32_t best_ci = 0;
    bool found = false;
    for (const std::uint32_t ci : touched_) {
      const Conduit& c = conduits_[ci];
      if (c.unfrozen == 0) continue;
      const std::int64_t share = c.residual_bps / c.unfrozen;
      if (share < best_share) {
        best_share = share;
        best_ci = ci;
        found = true;
      }
    }
    assert(found && "unfrozen flow with no conduit");
    if (!found) break;

    const auto freeze = [this](Flow& f, std::int64_t rate) {
      f.rate_bps = rate;
      f.frozen = true;
      for (const std::uint32_t ci : f.path) {
        Conduit& c = conduits_[ci];
        c.residual_bps -= rate;
        c.pending_bps += rate;
        --c.unfrozen;
      }
    };

    bool froze_capped = false;
    for (const std::uint32_t fi : active_) {
      Flow& f = flows_[fi];
      if (f.frozen || f.rate_cap_bps <= 0 || f.rate_cap_bps > best_share) continue;
      freeze(f, f.rate_cap_bps);
      --unfrozen_flows;
      froze_capped = true;
    }
    if (froze_capped) continue;

    for (const std::uint32_t fi : active_) {
      Flow& f = flows_[fi];
      if (f.frozen) continue;
      bool through = false;
      for (const std::uint32_t ci : f.path) {
        if (ci == best_ci) { through = true; break; }
      }
      if (!through) continue;
      freeze(f, best_share);
      --unfrozen_flows;
    }
  }

  // Apply changed reservations (owner replicas push them into the links)
  // and rebuild the nonzero list for the next re-solve.
  reserved_nonzero_.clear();
  for (const std::uint32_t ci : touched_) {
    Conduit& c = conduits_[ci];
    c.in_touched = false;
    if (c.pending_bps != c.reserved_bps) {
      c.reserved_bps = c.pending_bps;
      if (c.apply) c.apply(c.reserved_bps);
    }
    if (c.reserved_bps != 0) reserved_nonzero_.push_back(ci);
  }
}

void FluidModel::schedule_next_completion() {
  SimTime best = SimTime::max();
  bool found = false;
  for (const Flow& f : flows_) {
    if (!f.active || f.done || f.rate_bps <= 0) continue;
    const __int128 dt =
        (f.remaining_bitns + f.rate_bps - 1) / f.rate_bps;  // ceil, >= 1 ns
    const SimTime t = clock_ + SimTime::nanoseconds(static_cast<std::int64_t>(dt));
    if (!found || t < best) {
      best = t;
      found = true;
    }
  }
  if (!found) return;
  const std::uint64_t gen = solve_gen_;
  sim_.schedule_keyed_at(best, next_key(), [this, gen] { on_completion_event(gen); });
}

void FluidModel::on_completion_event(std::uint64_t generation) {
  if (generation != solve_gen_) return;  // superseded by a later re-solve
  advance_to(sim_.now());
  for (std::uint32_t fi = 0; fi < flows_.size(); ++fi) {
    Flow& f = flows_[fi];
    if (!f.active || f.done || f.remaining_bitns != 0) continue;
    f.done = true;
    f.active = false;
    f.finish_at = clock_;
    ++completed_;
    if (f.done_fn) f.done_fn(fi, clock_);
  }
  resolve();
  schedule_next_completion();
}

}  // namespace mtp::sim::flow
