// Fluid (flow-level) model for long bulk transfers — the Narses idea.
//
// A bulk transfer that only has to *occupy capacity* does not need one event
// per packet: model it as a rate process on the conduits (links) along its
// path. The model re-solves max-min fair rates by progressive filling on
// every flow arrival, completion, capacity change (a link flap) and external
// load change (a declared packet-level burst), and schedules exactly one
// keyed simulator event per state change — orders of magnitude fewer events
// than per-packet simulation of the same bytes.
//
// Exactness: rates are integer bits/sec and progress is tracked in
// bit-nanoseconds (bits x 1e9), so the bits delivered over [t1, t2) at rate
// r are exactly r * (t2 - t1) with no floating-point drift. A flow finishes
// when its remaining bit-ns hits zero; per-conduit delivered accounting uses
// the same increments, so conservation (sum of per-flow deliveries ==
// per-conduit total, per-flow total == 8e9 x bytes at completion) holds
// bit-for-bit. violations() counts any breach — tests assert it stays 0.
//
// Sharding: the model is *replicated*, one identical instance per shard.
// Every input is declared before start() (flows, capacity events, load
// events), so every replica executes the identical solve sequence and
// schedules the identical keyed events (kFlowKeyBase | seq) on its own
// shard's simulator — no cross-shard messages, no effect on the engine's
// lookahead. Side effects are gated per replica: a conduit's RateFn and a
// flow's DoneFn are only installed on the shard that owns the link / the
// flow's source, so reservations and completion logs happen exactly once.
// This is why dynamic (runtime-measured) inputs are deliberately NOT
// supported: they would desynchronise the replicas.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mtp::sim::flow {

class FluidModel {
 public:
  /// Applied whenever the summed flow rate through a conduit changes.
  /// Installed only on the replica whose shard owns the underlying link.
  using RateFn = std::function<void(std::int64_t reserved_bps)>;
  /// Fired once when a flow completes, on the replica owning its source.
  using DoneFn = std::function<void(std::uint32_t flow, SimTime at)>;

  struct Config {
    /// Keyed-event namespace; replicas must all use the same base.
    std::uint64_t key_base = kFlowKeyBase;
    /// Flows may claim at most capacity * num/den of any conduit, so
    /// packet-level traffic always keeps a residual to serialize into.
    std::uint32_t capacity_num = 95;
    std::uint32_t capacity_den = 100;
  };

  FluidModel(Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg) {}
  explicit FluidModel(Simulator& sim) : FluidModel(sim, Config{}) {}
  FluidModel(const FluidModel&) = delete;
  FluidModel& operator=(const FluidModel&) = delete;

  // --- declarations (identical call sequence on every replica, before start)

  /// Register a conduit (a link). Returns its index; callers must register
  /// conduits in the same order on every replica so indices agree.
  std::uint32_t add_conduit(std::int64_t capacity_bps, RateFn apply = nullptr);

  /// Declare a bulk transfer: `bytes` from `at` along `path` (conduit
  /// indices, in hop order). rate_cap_bps > 0 models a paced source (the
  /// flow never exceeds the cap even when max-min would allow it).
  std::uint32_t add_flow(SimTime at, std::vector<std::uint32_t> path,
                         std::int64_t bytes, std::int64_t rate_cap_bps = 0,
                         DoneFn done = nullptr);

  /// Declare a capacity change at `at` (0 = the conduit is down — the
  /// mirror of a scheduled link flap). Replaces the conduit's capacity.
  void set_capacity_at(SimTime at, std::uint32_t conduit, std::int64_t capacity_bps);

  /// Declare an external packet-level load delta on a conduit at `at`
  /// (+rate when a declared burst starts, -rate when it ends). Flows see
  /// fluid capacity max(0, cap_fraction * capacity - external_load).
  void add_load_at(SimTime at, std::uint32_t conduit, std::int64_t delta_bps);

  /// Schedule every declared event. Call exactly once, at declaration time
  /// (before the simulator runs past the earliest declaration).
  void start();

  // --- introspection (identical on every replica after the same sim time)

  std::size_t num_conduits() const { return conduits_.size(); }
  std::size_t num_flows() const { return flows_.size(); }
  std::uint64_t resolves() const { return resolves_; }
  std::uint64_t events_scheduled() const { return events_scheduled_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t violations() const { return violations_; }

  /// Current max-min rate of a flow (0 before arrival / after completion).
  std::int64_t rate_bps(std::uint32_t flow) const { return flows_[flow].rate_bps; }
  /// Summed flow rate currently reserved on a conduit.
  std::int64_t reserved_bps(std::uint32_t conduit) const {
    return conduits_[conduit].reserved_bps;
  }
  /// Exact bits delivered across a conduit by fluid flows so far (advanced
  /// to the last flow event; bit-ns internally, returned as whole bits).
  std::int64_t delivered_bits(std::uint32_t conduit) const {
    return static_cast<std::int64_t>(conduits_[conduit].delivered_bitns / kNsPerSec);
  }
  /// Exact bits a flow has delivered so far (whole bits).
  std::int64_t flow_delivered_bits(std::uint32_t flow) const {
    return static_cast<std::int64_t>(
        (flows_[flow].total_bitns - flows_[flow].remaining_bitns) / kNsPerSec);
  }
  bool flow_done(std::uint32_t flow) const { return flows_[flow].done; }
  SimTime flow_finish(std::uint32_t flow) const { return flows_[flow].finish_at; }

 private:
  static constexpr std::int64_t kNsPerSec = 1'000'000'000;

  struct Conduit {
    std::int64_t capacity_bps = 0;      ///< line rate (0 while flapped down)
    std::int64_t external_load_bps = 0; ///< declared packet-burst load
    std::int64_t reserved_bps = 0;      ///< summed flow rates, last applied
    __int128 delivered_bitns = 0;       ///< exact fluid bits x ns delivered
    RateFn apply;                       ///< null on non-owning replicas
    // solver scratch (valid only during resolve())
    std::int64_t residual_bps = 0;
    std::int64_t pending_bps = 0;
    std::uint32_t unfrozen = 0;
    bool in_touched = false;
  };

  struct Flow {
    SimTime at;
    std::vector<std::uint32_t> path;
    __int128 total_bitns = 0;
    __int128 remaining_bitns = 0;
    std::int64_t rate_cap_bps = 0;
    std::int64_t rate_bps = 0;
    bool active = false;
    bool done = false;
    SimTime finish_at;
    DoneFn done_fn;
    bool frozen = false;  ///< solver scratch
  };

  /// One declared state change, scheduled as a keyed event by start().
  struct Declared {
    SimTime at;
    enum class Kind : std::uint8_t { kArrival, kCapacity, kLoad } kind;
    std::uint32_t index = 0;        ///< flow (arrival) or conduit
    std::int64_t value = 0;         ///< capacity / load delta
  };

  std::uint64_t next_key() {
    ++events_scheduled_;
    return cfg_.key_base | (flow_seq_++ & 0x0fffffffffffffffULL);
  }

  std::int64_t fluid_capacity(const Conduit& c) const;
  void advance_to(SimTime t);
  void apply_declared(const Declared& d);
  void resolve();
  void schedule_next_completion();
  void on_completion_event(std::uint64_t generation);

  Simulator& sim_;
  Config cfg_;
  std::vector<Conduit> conduits_;
  std::vector<Flow> flows_;
  std::vector<Declared> declared_;
  std::vector<std::uint32_t> active_;            ///< resolve() scratch
  std::vector<std::uint32_t> touched_;           ///< resolve() scratch
  std::vector<std::uint32_t> reserved_nonzero_;  ///< conduits with reserved != 0
  bool started_ = false;
  SimTime clock_ = SimTime::zero();   ///< last advance_to time
  std::uint64_t flow_seq_ = 0;        ///< keyed-event sequence, replica-identical
  std::uint64_t solve_gen_ = 0;       ///< invalidates stale completion events
  std::uint64_t resolves_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace mtp::sim::flow
