// mtp::overload — receiver-driven admission control.
//
// The receiver is the one node that knows its own service rate, so it is
// the right place to size the incast window (Homa/NDP's receiver-driven
// insight, via Ousterhout's "It's Time to Replace TCP in the Datacenter").
// The receiver tracks an EWMA of its delivered-payload rate and stamps a
// per-sender grant on every ACK:
//
//   grant = clamp(ewma_rate * grant_horizon / active_senders,
//                 min_grant_bytes, max_grant_bytes)
//
// Senders cap new-message bytes in flight toward that receiver at the
// grant, so an 8:1 incast self-paces to the receiver's drain rate instead
// of blind-firing 8x line rate into the last-hop queue.
//
// Everything is folded lazily from delivery events — no timers — so an
// idle receiver contributes nothing to the event queue and simulations
// still run to quiescence.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "sim/time.hpp"

namespace mtp::overload {

struct AdmissionConfig {
  /// Delivered-bytes accumulation window folded into the rate EWMA.
  sim::SimTime rate_window = sim::SimTime::microseconds(20);
  double ewma_alpha = 0.3;
  /// Credit horizon: how much service time each sender's grant covers.
  sim::SimTime grant_horizon = sim::SimTime::microseconds(50);
  std::int64_t min_grant_bytes = 2000;
  std::int64_t max_grant_bytes = 1 << 20;
  /// Senders silent this long stop counting toward the per-sender split.
  sim::SimTime sender_idle_timeout = sim::SimTime::microseconds(500);
};

class Admission {
 public:
  explicit Admission(AdmissionConfig cfg) : cfg_(cfg) {}
  Admission() : Admission(AdmissionConfig{}) {}

  /// Fresh (non-duplicate) payload delivered from `src`.
  void on_delivered(std::uint32_t src, std::int64_t bytes, sim::SimTime now) {
    if (!started_) {
      started_ = true;
      window_start_ = now;
    }
    senders_[src] = now;
    window_bytes_ += bytes;
    if (now - window_start_ >= cfg_.rate_window) fold(now);
  }

  /// Per-sender new-message credit to stamp on the next ACK.
  std::int64_t grant_bytes(sim::SimTime now) {
    // A long silent gap means the EWMA is stale-high; fold the (empty)
    // window so the estimate decays before sizing the grant.
    if (started_ && now - window_start_ >= cfg_.rate_window * 2) fold(now);
    const std::size_t senders = std::max<std::size_t>(1, active_senders_);
    const double credit =
        rate_bytes_per_ns_ * static_cast<double>(cfg_.grant_horizon.ns()) /
        static_cast<double>(senders);
    const std::int64_t g = static_cast<std::int64_t>(credit);
    return std::clamp(g, cfg_.min_grant_bytes, cfg_.max_grant_bytes);
  }

  double rate_gbps() const { return rate_bytes_per_ns_ * 8.0; }
  std::size_t active_senders() const { return std::max<std::size_t>(1, active_senders_); }

 private:
  void fold(sim::SimTime now) {
    const sim::SimTime span = now - window_start_;
    if (span.ns() <= 0) return;
    const double inst =
        static_cast<double>(window_bytes_) / static_cast<double>(span.ns());
    rate_bytes_per_ns_ = seeded_
                             ? cfg_.ewma_alpha * inst +
                                   (1.0 - cfg_.ewma_alpha) * rate_bytes_per_ns_
                             : inst;
    seeded_ = true;
    window_bytes_ = 0;
    window_start_ = now;
    // Prune idle senders here (once per window) so grant_bytes() stays O(1).
    active_senders_ = 0;
    for (auto it = senders_.begin(); it != senders_.end();) {
      if (now - it->second >= cfg_.sender_idle_timeout) {
        it = senders_.erase(it);
      } else {
        ++active_senders_;
        ++it;
      }
    }
  }

  AdmissionConfig cfg_;
  bool started_ = false;
  bool seeded_ = false;
  sim::SimTime window_start_;
  std::int64_t window_bytes_ = 0;
  double rate_bytes_per_ns_ = 0.0;
  std::unordered_map<std::uint32_t, sim::SimTime> senders_;
  std::size_t active_senders_ = 0;
};

}  // namespace mtp::overload
