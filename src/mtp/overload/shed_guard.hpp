// mtp::overload — priority-aware load shedding for in-network devices.
//
// Devices (kvs_cache, aggregation, the MTP receiver itself) have bounded
// work queues. Past a high-watermark the right move is to *shed at
// adoption*: refuse the message with an explicit kBusy reject carried in
// the MTP header (NACK-style, like the corruption NACK) so the sender
// aborts immediately instead of retransmitting into the overload — a
// silent drop would convert one overloaded device into a fabric-wide retry
// storm. Two rules, evaluated on packet 0 before any state is allocated:
//
//   1. Deadline-expired work is shed unconditionally: serving it is pure
//      waste (the client already gave up), and wasted service is what
//      sustains metastable collapse.
//   2. Above high_watermark, messages below protect_priority are shed;
//      above hard_limit everything is. High-priority traffic keeps flowing
//      until the device is truly saturated.
//
// Every shed feeds the embedded CircuitBreaker, which upstreams (l7_lb)
// consult for replica ejection.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mtp/overload/breaker.hpp"
#include "proto/mtp_header.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::overload {

struct ShedConfig {
  bool enabled = false;
  /// Work items (partial reassemblies + outstanding replies) above which
  /// low-priority messages are shed.
  std::size_t high_watermark = 64;
  /// Work items above which everything is shed, regardless of priority.
  std::size_t hard_limit = 256;
  /// Messages with priority >= this survive the high-watermark (but not the
  /// hard limit).
  std::uint8_t protect_priority = 1;
  /// Shed deadline-expired messages before service.
  bool shed_expired = true;
  CircuitBreaker::Config breaker;
};

class ShedGuard {
 public:
  explicit ShedGuard(ShedConfig cfg) : cfg_(cfg), breaker_(cfg.breaker) {}
  ShedGuard() : ShedGuard(ShedConfig{}) {}

  /// Adoption-time decision for one fresh message. Returns the overload
  /// flags to carry on the busy-reject (0 = accept). `work` is the device's
  /// current bounded-queue occupancy; `deadline_ns` is the message's
  /// absolute deadline (0 = none).
  std::uint8_t decide(std::size_t work, std::uint8_t priority,
                      std::uint64_t deadline_ns, sim::SimTime now) {
    if (!cfg_.enabled) return 0;
    if (cfg_.shed_expired && deadline_ns != 0 &&
        static_cast<std::uint64_t>(now.ns()) > deadline_ns) {
      note_shed(priority, now);
      ++expired_sheds_;
      return proto::kOverloadBusy | proto::kOverloadExpired;
    }
    const bool over_hard = work >= cfg_.hard_limit;
    const bool over_high = work >= cfg_.high_watermark && priority < cfg_.protect_priority;
    if (over_hard || over_high) {
      note_shed(priority, now);
      return proto::kOverloadBusy;
    }
    breaker_.on_success(now);
    return 0;
  }

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  bool enabled() const { return cfg_.enabled; }
  std::uint64_t sheds() const { return sheds_; }
  std::uint64_t expired_sheds() const { return expired_sheds_; }
  /// Sheds bucketed by priority (priorities >= 7 share the last bucket).
  std::uint64_t sheds_at_priority(std::uint8_t pri) const {
    return sheds_by_priority_[bucket(pri)];
  }
  const ShedConfig& config() const { return cfg_; }

  /// Append the guard's counters to a device's metrics provider: total and
  /// per-priority sheds (zero buckets omitted), deadline expiries, and the
  /// breaker's full transition history.
  void append_metrics(std::vector<telemetry::MetricSample>& out) const {
    using telemetry::MetricKind;
    static constexpr const char* kPriName[8] = {
        "sheds_pri0", "sheds_pri1", "sheds_pri2", "sheds_pri3",
        "sheds_pri4", "sheds_pri5", "sheds_pri6", "sheds_pri7"};
    out.push_back({"sheds", MetricKind::kCounter, static_cast<double>(sheds_)});
    out.push_back({"expired_sheds", MetricKind::kCounter,
                   static_cast<double>(expired_sheds_)});
    for (std::size_t p = 0; p < sheds_by_priority_.size(); ++p) {
      if (sheds_by_priority_[p] > 0) {
        out.push_back({kPriName[p], MetricKind::kCounter,
                       static_cast<double>(sheds_by_priority_[p])});
      }
    }
    out.push_back({"breaker_opens", MetricKind::kCounter,
                   static_cast<double>(breaker_.opens())});
    out.push_back({"breaker_half_opens", MetricKind::kCounter,
                   static_cast<double>(breaker_.half_opens())});
    out.push_back({"breaker_closes", MetricKind::kCounter,
                   static_cast<double>(breaker_.closes())});
  }

 private:
  static std::size_t bucket(std::uint8_t pri) {
    return pri < 7 ? pri : 7;
  }

  void note_shed(std::uint8_t priority, sim::SimTime now) {
    ++sheds_;
    ++sheds_by_priority_[bucket(priority)];
    breaker_.on_shed(now);
  }

  ShedConfig cfg_;
  CircuitBreaker breaker_;
  std::uint64_t sheds_ = 0;
  std::uint64_t expired_sheds_ = 0;
  std::array<std::uint64_t, 8> sheds_by_priority_{};
};

}  // namespace mtp::overload
