// mtp::overload — token-bucket retry budget.
//
// Retry storms are the engine of metastable failure: after a transient
// outage, every client retries, the retries alone exceed capacity, and the
// system stays collapsed long after the trigger is gone (Bronson et al.,
// "Metastable Failures in Distributed Systems"). The standard defense is to
// cap retries to a *fraction of successes*: tokens accrue per completed
// call and each retry (or hedge) spends one, so retry traffic can never
// exceed ratio x goodput in steady state. A small burst allowance covers
// cold start and isolated blips.
//
// Pure call-sequence state machine — no clocks, no RNG — so budgets are
// deterministic and shard-count invariant by construction.
#pragma once

#include <algorithm>
#include <cstdint>

namespace mtp::overload {

class RetryBudget {
 public:
  struct Config {
    /// Retry tokens earned per successful completion. 0.1 = at most one
    /// retry per ten successes once the burst allowance is spent.
    double ratio = 0.1;
    /// Bucket cap, and the cold-start balance: a fresh client may retry
    /// this many times before it has to earn tokens.
    double burst = 10.0;
  };

  explicit RetryBudget(Config cfg) : cfg_(cfg), tokens_(cfg.burst) {}
  RetryBudget() : RetryBudget(Config{}) {}

  /// A call completed successfully: accrue ratio tokens, capped at burst.
  void on_success() { tokens_ = std::min(cfg_.burst, tokens_ + cfg_.ratio); }

  /// Try to buy one retry/hedge. False = budget exhausted (fail fast).
  bool try_spend() {
    // Epsilon absorbs the accumulated float error of many ratio-increments;
    // the comparison must not deny a token the accrual math clearly earned.
    if (tokens_ + 1e-9 >= 1.0) {
      tokens_ -= 1.0;
      ++spent_;
      return true;
    }
    ++exhausted_;
    return false;
  }

  double tokens() const { return tokens_; }
  std::uint64_t spent() const { return spent_; }
  /// Denied try_spend() calls — the "retry converted to fail-fast" counter.
  std::uint64_t exhausted() const { return exhausted_; }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  double tokens_;
  std::uint64_t spent_ = 0;
  std::uint64_t exhausted_ = 0;
};

}  // namespace mtp::overload
