// mtp::overload — per-device circuit breaker.
//
// A device that sheds work at a sustained rate is overloaded (or broken);
// continuing to offer it traffic wastes upstream work and feeds the retry
// storm. The breaker watches shed events and trips through the classic
// three states:
//
//   kClosed   — healthy; sheds within a sliding window are counted, and
//               crossing the threshold trips the breaker.
//   kOpen     — ejected; allow() refuses everything until open_duration
//               elapses, then the breaker half-opens by itself.
//   kHalfOpen — probing; traffic is allowed through again. Enough
//               consecutive successes close the breaker; a single shed
//               while probing re-opens it.
//
// State is a pure function of the (event, timestamp) sequence — timestamps
// come from the simulator, not wall clock — so breaker transitions are
// deterministic and the transition counters are monotone by construction
// (the chaos harness asserts both).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mtp::overload {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Config {
    /// Sheds within `window` that trip the breaker open.
    std::uint32_t open_after_sheds = 16;
    sim::SimTime window = sim::SimTime::microseconds(200);
    /// How long to stay open before half-opening probes.
    sim::SimTime open_duration = sim::SimTime::microseconds(500);
    /// Consecutive half-open successes required to close again.
    std::uint32_t half_open_successes = 4;
  };

  explicit CircuitBreaker(Config cfg) : cfg_(cfg) {}
  CircuitBreaker() : CircuitBreaker(Config{}) {}

  /// The guarded resource shed a request at `now`.
  void on_shed(sim::SimTime now) {
    tick(now);
    if (state_ == State::kHalfOpen) {  // probe failed: straight back open
      trip(now);
      return;
    }
    if (state_ != State::kClosed) return;
    if (now - window_start_ >= cfg_.window) {
      window_start_ = now;
      sheds_in_window_ = 0;
    }
    if (++sheds_in_window_ >= cfg_.open_after_sheds) trip(now);
  }

  /// The guarded resource served a request cleanly at `now`.
  void on_success(sim::SimTime now) {
    tick(now);
    if (state_ == State::kHalfOpen && ++half_open_ok_ >= cfg_.half_open_successes) {
      state_ = State::kClosed;
      ++closes_;
      window_start_ = now;
      sheds_in_window_ = 0;
    }
  }

  /// May new work be offered at `now`? Open => no; half-open lets probes
  /// through (their outcome decides the next transition).
  bool allow(sim::SimTime now) {
    tick(now);
    return state_ != State::kOpen;
  }

  State state(sim::SimTime now) {
    tick(now);
    return state_;
  }

  // Monotone transition counters (telemetry + chaos invariants).
  std::uint64_t opens() const { return opens_; }
  std::uint64_t half_opens() const { return half_opens_; }
  std::uint64_t closes() const { return closes_; }
  const Config& config() const { return cfg_; }

 private:
  /// Time-driven transition: an open breaker half-opens after open_duration.
  void tick(sim::SimTime now) {
    if (state_ == State::kOpen && now >= reopen_at_) {
      state_ = State::kHalfOpen;
      ++half_opens_;
      half_open_ok_ = 0;
    }
  }

  void trip(sim::SimTime now) {
    state_ = State::kOpen;
    ++opens_;
    reopen_at_ = now + cfg_.open_duration;
    sheds_in_window_ = 0;
    half_open_ok_ = 0;
  }

  Config cfg_;
  State state_ = State::kClosed;
  sim::SimTime window_start_;
  sim::SimTime reopen_at_;
  std::uint32_t sheds_in_window_ = 0;
  std::uint32_t half_open_ok_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t half_opens_ = 0;
  std::uint64_t closes_ = 0;
};

}  // namespace mtp::overload
