// Bulk ("blob") transfer mode (paper §3.1.2).
//
// The second way applications generate MTP messages: a blob of data is sent
// as many single-packet messages, so the network can multiplex, reorder and
// load-balance them freely (each message is independent). "A layer beneath
// the application in a library or OS service is responsible for reassembling
// the blob and reliably handling any packet loss and reordering of
// messages" — these classes are that layer.
//
// Per-message reliability already lives in MtpEndpoint; the bulk layer adds
// blob-level bookkeeping: chunk identification (blob id + offset ride in
// AppData), completion detection on both ends, and out-of-order tolerance.
#pragma once

#include <charconv>
#include <functional>
#include <string>
#include <unordered_map>

#include "mtp/endpoint.hpp"

namespace mtp::core {

/// Splits blobs into single-packet messages.
class BulkSender {
 public:
  using DoneFn = std::function<void(std::uint64_t blob_id, sim::SimTime elapsed)>;

  BulkSender(MtpEndpoint& ep, net::NodeId dst, proto::PortNum dst_port,
             proto::TrafficClassId tc = 0)
      : ep_(ep), dst_(dst), dst_port_(dst_port), tc_(tc) {}

  /// Send `bytes` as ceil(bytes/mss) independent messages. Completion fires
  /// when every chunk message is acknowledged.
  std::uint64_t send_blob(std::int64_t bytes, DoneFn done = {}) {
    const std::uint64_t blob = next_blob_++;
    const std::uint32_t mss = ep_.config().mss;
    const auto chunks = static_cast<std::uint32_t>((bytes + mss - 1) / mss);
    auto state = std::make_shared<BlobState>();
    state->remaining = chunks;
    state->started = ep_.host().simulator().now();
    state->done = std::move(done);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      const std::int64_t off = static_cast<std::int64_t>(c) * mss;
      const std::int64_t len = std::min<std::int64_t>(mss, bytes - off);
      MessageOptions opts;
      opts.tc = tc_;
      opts.dst_port = dst_port_;
      opts.app = net::AppData{
          "blob:" + std::to_string(blob),
          std::to_string(off) + "/" + std::to_string(bytes)};
      auto* simulator = &ep_.host().simulator();
      ep_.send_message(dst_, len, std::move(opts),
                       [state, blob, simulator](proto::MsgId, sim::SimTime) {
                         if (--state->remaining == 0 && state->done) {
                           state->done(blob, simulator->now() - state->started);
                         }
                       });
    }
    return blob;
  }

  std::uint64_t blobs_sent() const { return next_blob_ - 1; }

 private:
  struct BlobState {
    std::uint32_t remaining = 0;
    sim::SimTime started;
    DoneFn done;
  };

  MtpEndpoint& ep_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  proto::TrafficClassId tc_;
  std::uint64_t next_blob_ = 1;
};

/// Reassembles blobs on the receiving host.
class BulkReceiver {
 public:
  /// Fires once per completed blob with (source, blob id, total bytes,
  /// time from first chunk to completion).
  using BlobFn = std::function<void(net::NodeId src, std::uint64_t blob_id,
                                    std::int64_t bytes, sim::SimTime elapsed)>;

  BulkReceiver(MtpEndpoint& ep, proto::PortNum port, BlobFn on_blob)
      : ep_(ep), on_blob_(std::move(on_blob)) {
    ep_.listen(port, [this](const ReceivedMessage& m) { on_chunk(m); });
  }

  std::size_t blobs_in_progress() const { return blobs_.size(); }
  std::uint64_t blobs_completed() const { return completed_; }

 private:
  struct Blob {
    std::int64_t total = 0;
    std::int64_t received = 0;
    sim::SimTime first_chunk;
  };
  struct Key {
    net::NodeId src;
    std::uint64_t blob;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.blob);
    }
  };

  void on_chunk(const ReceivedMessage& m) {
    if (!m.app || m.app->key.rfind("blob:", 0) != 0) return;
    std::uint64_t blob_id = 0;
    {
      const std::string& s = m.app->key;
      std::from_chars(s.data() + 5, s.data() + s.size(), blob_id);
    }
    std::int64_t total = 0;
    {
      const std::string& v = m.app->value;
      const auto slash = v.find('/');
      if (slash == std::string::npos) return;
      std::from_chars(v.data() + slash + 1, v.data() + v.size(), total);
    }
    const Key key{m.src, blob_id};
    auto [it, fresh] = blobs_.try_emplace(key);
    if (fresh) {
      it->second.total = total;
      it->second.first_chunk = m.first_pkt_at;
    }
    it->second.received += m.bytes;
    if (it->second.received >= it->second.total) {
      ++completed_;
      if (on_blob_) {
        on_blob_(m.src, blob_id, it->second.total, m.completed_at - it->second.first_chunk);
      }
      blobs_.erase(it);
    }
  }

  MtpEndpoint& ep_;
  BlobFn on_blob_;
  std::unordered_map<Key, Blob, KeyHash> blobs_;
  std::uint64_t completed_ = 0;
};

}  // namespace mtp::core
