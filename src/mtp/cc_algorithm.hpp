// Per-pathlet congestion-control algorithms (paper §3.1.3).
//
// MTP keys congestion state on (pathlet, traffic class), not on flows, and
// each pathlet's feedback is a TLV — so different pathlets can run different
// algorithms simultaneously ("multi-resource and multi-algorithm congestion
// control"). The factory maps a pathlet's feedback type to its algorithm:
//   kEcn   -> DctcpCc   (ECN-fraction window, DCTCP)
//   kRate  -> RcpCc     (explicit-rate, RCP)
//   kDelay -> SwiftCc   (delay-target window, Swift)
//   kNone  -> AimdCc    (loss-only AIMD; the default pathlet's fallback)
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "proto/mtp_header.hpp"
#include "sim/time.hpp"

namespace mtp::core {

enum class LossKind {
  kTimeout,  ///< retransmission timer expired
  kTrim,     ///< NDP-style trimmed packet reported via NACK
};

struct CcConfig {
  std::uint32_t mss = 1000;
  std::int64_t init_window_pkts = 10;
  std::int64_t max_window_bytes = std::int64_t{64} << 20;
  double dctcp_g = 1.0 / 16.0;
  /// Which algorithm ECN-feedback pathlets run (paper §4: MTP can behave as
  /// DCTCP or DCQCN under the same network feedback).
  enum class EcnAlgorithm { kDctcp, kDcqcn };
  EcnAlgorithm ecn_algorithm = EcnAlgorithm::kDctcp;
  sim::SimTime swift_target_delay = sim::SimTime::microseconds(30);
  double swift_beta = 0.8;
  double rcp_window_gain = 1.0;

  std::int64_t init_window_bytes() const {
    return init_window_pkts * static_cast<std::int64_t>(mss);
  }
};

/// Congestion state for one (pathlet, TC) pair. The endpoint calls, per
/// acknowledged packet: on_feedback() for the pathlet's echoed TLV (if any),
/// then on_ack() with the acknowledged bytes and RTT sample; on_loss() when
/// packets charged to this pathlet are declared lost.
class PathletCc {
 public:
  virtual ~PathletCc() = default;

  virtual void on_feedback(const proto::Feedback& fb, std::int64_t acked_bytes) = 0;
  virtual void on_ack(std::int64_t acked_bytes, sim::SimTime rtt) = 0;
  virtual void on_loss(LossKind kind) = 0;

  /// Bytes this pathlet currently allows in flight for the TC.
  virtual std::int64_t window_bytes() const = 0;
  virtual std::string name() const = 0;
};

/// DCTCP-style: window evolves with slow start / congestion avoidance;
/// once per window, reduce by alpha/2 where alpha is the EWMA of the
/// CE-marked fraction of acknowledged bytes.
class DctcpCc final : public PathletCc {
 public:
  explicit DctcpCc(CcConfig cfg)
      : cfg_(cfg),
        cwnd_(static_cast<double>(cfg.init_window_bytes())),
        window_at_round_start_(cfg.init_window_bytes()) {}

  void on_feedback(const proto::Feedback& fb, std::int64_t acked_bytes) override {
    if (fb.type == proto::FeedbackType::kEcn && fb.value != 0) ce_bytes_ += acked_bytes;
  }

  void on_ack(std::int64_t acked_bytes, sim::SimTime) override {
    acked_bytes_ += acked_bytes;
    window_progress_ += acked_bytes;
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(acked_bytes);
    } else {
      cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(acked_bytes) / cwnd_;
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_window_bytes));
    // Boundary = one window's worth of data acknowledged, measured against
    // the window size when this round started (comparing against the live
    // cwnd would chase slow-start growth and never trigger).
    if (window_progress_ >= window_at_round_start_) window_boundary();
  }

  void on_loss(LossKind) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * cfg_.mss);
    cwnd_ = std::max(cwnd_ / 2.0, static_cast<double>(cfg_.mss));
  }

  std::int64_t window_bytes() const override { return static_cast<std::int64_t>(cwnd_); }
  std::string name() const override { return "dctcp"; }
  double alpha() const { return alpha_; }

 private:
  void window_boundary() {
    if (acked_bytes_ > 0) {
      const double f = static_cast<double>(ce_bytes_) / static_cast<double>(acked_bytes_);
      alpha_ = (1.0 - cfg_.dctcp_g) * alpha_ + cfg_.dctcp_g * f;
      if (ce_bytes_ > 0) {
        cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), static_cast<double>(cfg_.mss));
        ssthresh_ = cwnd_;
      }
    }
    acked_bytes_ = 0;
    ce_bytes_ = 0;
    window_progress_ = 0;
    window_at_round_start_ = static_cast<std::int64_t>(cwnd_);
  }

  CcConfig cfg_;
  double cwnd_;
  double ssthresh_ = 1e18;
  double alpha_ = 0.0;
  std::int64_t acked_bytes_ = 0;
  std::int64_t ce_bytes_ = 0;
  std::int64_t window_progress_ = 0;
  std::int64_t window_at_round_start_ = 0;
};

/// RCP-style: the network stamps an explicit fair rate; the window is simply
/// rate x RTT (no search, immediate convergence — RCP's selling point).
class RcpCc final : public PathletCc {
 public:
  explicit RcpCc(CcConfig cfg)
      : cfg_(cfg), window_(cfg.init_window_bytes()) {}

  void on_feedback(const proto::Feedback& fb, std::int64_t) override {
    if (fb.type == proto::FeedbackType::kRate) rate_bps_ = static_cast<std::int64_t>(fb.value);
  }

  void on_ack(std::int64_t, sim::SimTime rtt) override {
    if (!srtt_valid_) {
      srtt_ = rtt;
      srtt_valid_ = true;
    } else {
      srtt_ = srtt_.scaled(0.875) + rtt.scaled(0.125);
    }
    if (rate_bps_ > 0) {
      const double w = static_cast<double>(rate_bps_) / 8.0 * srtt_.sec() * cfg_.rcp_window_gain;
      window_ = std::clamp(static_cast<std::int64_t>(w),
                           static_cast<std::int64_t>(cfg_.mss), cfg_.max_window_bytes);
    }
  }

  void on_loss(LossKind) override {
    window_ = std::max(window_ / 2, static_cast<std::int64_t>(cfg_.mss));
  }

  std::int64_t window_bytes() const override { return window_; }
  std::string name() const override { return "rcp"; }
  std::int64_t rate_bps() const { return rate_bps_; }

 private:
  CcConfig cfg_;
  std::int64_t window_;
  std::int64_t rate_bps_ = 0;
  sim::SimTime srtt_;
  bool srtt_valid_ = false;
};

/// Swift-style: keep per-pathlet queueing delay near a target; multiplicative
/// decrease (at most once per RTT) when above, additive increase when below.
class SwiftCc final : public PathletCc {
 public:
  explicit SwiftCc(CcConfig cfg)
      : cfg_(cfg), cwnd_(static_cast<double>(cfg.init_window_bytes())) {}

  void on_feedback(const proto::Feedback& fb, std::int64_t) override {
    if (fb.type == proto::FeedbackType::kDelay) {
      last_delay_ = sim::SimTime::nanoseconds(static_cast<std::int64_t>(fb.value));
      have_delay_ = true;
    }
  }

  void on_ack(std::int64_t acked_bytes, sim::SimTime rtt) override {
    now_ += rtt;  // virtual clock advance; decrease pacing only needs ordering
    if (!have_delay_) return;
    const double delay = last_delay_.sec();
    const double target = cfg_.swift_target_delay.sec();
    if (delay <= target) {
      cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(acked_bytes) / cwnd_;
    } else if (now_ >= next_decrease_) {
      const double factor =
          std::max(1.0 - cfg_.swift_beta * (delay - target) / delay, 0.3);
      cwnd_ *= factor;
      next_decrease_ = now_ + rtt;
    }
    cwnd_ = std::clamp(cwnd_, static_cast<double>(cfg_.mss),
                       static_cast<double>(cfg_.max_window_bytes));
  }

  void on_loss(LossKind) override {
    cwnd_ = std::max(cwnd_ / 2.0, static_cast<double>(cfg_.mss));
  }

  std::int64_t window_bytes() const override { return static_cast<std::int64_t>(cwnd_); }
  std::string name() const override { return "swift"; }

 private:
  CcConfig cfg_;
  double cwnd_;
  sim::SimTime last_delay_;
  bool have_delay_ = false;
  sim::SimTime now_;
  sim::SimTime next_decrease_;
};

/// DCQCN-style rate control (paper §4 names it alongside TCP and DCTCP):
/// ECN marks drive an alpha estimate like DCTCP's, but the control variable
/// is a *rate*; decrease is multiplicative in the rate, recovery alternates
/// fast-recovery steps toward the pre-cut target with additive probes. The
/// window exposed to the admission layer is rate x smoothed RTT.
class DcqcnCc final : public PathletCc {
 public:
  explicit DcqcnCc(CcConfig cfg)
      : cfg_(cfg),
        rate_bps_(1e9),  // conservative start; first RTTs probe upward
        target_bps_(rate_bps_) {}

  void on_feedback(const proto::Feedback& fb, std::int64_t) override {
    if (fb.type == proto::FeedbackType::kEcn && fb.value != 0) marked_ = true;
  }

  void on_ack(std::int64_t acked_bytes, sim::SimTime rtt) override {
    if (!srtt_valid_) {
      srtt_ = rtt;
      srtt_valid_ = true;
    } else {
      srtt_ = srtt_.scaled(0.875) + rtt.scaled(0.125);
    }
    bytes_since_update_ += acked_bytes;
    // Update epoch: roughly one rate x srtt worth of acknowledged data.
    const double epoch_bytes = std::max(rate_bps_ * srtt_.sec() / 8.0, 1500.0);
    if (static_cast<double>(bytes_since_update_) < epoch_bytes) return;
    bytes_since_update_ = 0;

    if (marked_) {
      alpha_ = (1.0 - cfg_.dctcp_g) * alpha_ + cfg_.dctcp_g;
      target_bps_ = rate_bps_;
      rate_bps_ = std::max(rate_bps_ * (1.0 - alpha_ / 2.0), 1e8);
      recovery_steps_ = 0;
      marked_ = false;
      return;
    }
    alpha_ = (1.0 - cfg_.dctcp_g) * alpha_;
    if (recovery_steps_ < 5) {
      // Fast recovery: halve the distance to the pre-cut target.
      rate_bps_ = (rate_bps_ + target_bps_) / 2.0;
      ++recovery_steps_;
    } else {
      // Additive increase, probing gently beyond the old target.
      target_bps_ += 0.5e9;  // +0.5 Gb/s per mark-free epoch
      rate_bps_ = (rate_bps_ + target_bps_) / 2.0;
    }
  }

  void on_loss(LossKind) override {
    target_bps_ = rate_bps_;
    rate_bps_ = std::max(rate_bps_ / 2.0, 1e8);
    recovery_steps_ = 0;
  }

  std::int64_t window_bytes() const override {
    const double rtt_s = srtt_valid_ ? srtt_.sec() : 10e-6;
    return std::clamp(static_cast<std::int64_t>(rate_bps_ / 8.0 * rtt_s),
                      static_cast<std::int64_t>(cfg_.mss), cfg_.max_window_bytes);
  }
  std::string name() const override { return "dcqcn"; }
  double rate_gbps() const { return rate_bps_ / 1e9; }
  double alpha() const { return alpha_; }

 private:
  CcConfig cfg_;
  double rate_bps_;
  double target_bps_;
  double alpha_ = 0.0;
  bool marked_ = false;
  int recovery_steps_ = 0;
  std::int64_t bytes_since_update_ = 0;
  sim::SimTime srtt_;
  bool srtt_valid_ = false;
};

/// Loss-only AIMD (pre-ECN TCP shape). Default for pathlets that provide no
/// feedback, including the implicit "whole network" pathlet 0.
class AimdCc final : public PathletCc {
 public:
  explicit AimdCc(CcConfig cfg)
      : cfg_(cfg), cwnd_(static_cast<double>(cfg.init_window_bytes())) {}

  void on_feedback(const proto::Feedback& fb, std::int64_t acked) override {
    // Still react to ECN marks if they appear (robustness, not required).
    if (fb.type == proto::FeedbackType::kEcn && fb.value != 0) {
      pending_mark_bytes_ += acked;
    }
  }

  void on_ack(std::int64_t acked_bytes, sim::SimTime) override {
    if (pending_mark_bytes_ > 0) {
      pending_mark_bytes_ = 0;
      on_loss(LossKind::kTrim);
      return;
    }
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(acked_bytes);
    } else {
      cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(acked_bytes) / cwnd_;
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_window_bytes));
  }

  void on_loss(LossKind) override {
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * cfg_.mss);
    cwnd_ = std::max(cwnd_ / 2.0, static_cast<double>(cfg_.mss));
  }

  std::int64_t window_bytes() const override { return static_cast<std::int64_t>(cwnd_); }
  std::string name() const override { return "aimd"; }

 private:
  CcConfig cfg_;
  double cwnd_;
  double ssthresh_ = 1e18;
  std::int64_t pending_mark_bytes_ = 0;
};

/// Instantiate the algorithm matching a pathlet's feedback type.
inline std::unique_ptr<PathletCc> make_cc(proto::FeedbackType type, const CcConfig& cfg) {
  switch (type) {
    case proto::FeedbackType::kEcn:
      if (cfg.ecn_algorithm == CcConfig::EcnAlgorithm::kDcqcn) {
        return std::make_unique<DcqcnCc>(cfg);
      }
      return std::make_unique<DctcpCc>(cfg);
    case proto::FeedbackType::kRate:
      return std::make_unique<RcpCc>(cfg);
    case proto::FeedbackType::kDelay:
      return std::make_unique<SwiftCc>(cfg);
    default:
      return std::make_unique<AimdCc>(cfg);
  }
}

}  // namespace mtp::core
