#include "mtp/endpoint.hpp"

#include <algorithm>
#include <cassert>

#include "sim/logging.hpp"
#include "telemetry/trace.hpp"

namespace mtp::core {

namespace {
std::uint64_t mtp_flow_hash(net::NodeId a, proto::PortNum ap, net::NodeId b,
                            proto::PortNum bp) {
  std::uint64_t h = (static_cast<std::uint64_t>(a) << 48) ^
                    (static_cast<std::uint64_t>(b) << 32) ^
                    (static_cast<std::uint64_t>(ap) << 16) ^ bp;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}
}  // namespace

MtpEndpoint::MtpEndpoint(net::Host& host, MtpConfig cfg)
    : host_(host), cfg_(cfg), sim_(host.simulator()) {
  host_.set_mtp_handler([this](net::Packet&& pkt) { on_packet(std::move(pkt)); });
  paths_.push_back({proto::kDefaultPathlet});  // PathIndex 0 = default path
  // Retransmission timers live on the simulator's shared timer wheel, one
  // per message with in-flight packets — an idle endpoint leaves the event
  // queue empty (simulations can run to quiescence).
  ack_flush_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, cfg_.ack_flush_timeout, [this] { flush_acks(); });
  metrics_ = telemetry::MetricRegistry::global().add(
      "mtp", host_.name(), [this](std::vector<telemetry::MetricSample>& out) {
        using telemetry::MetricKind;
        out.push_back({"pkts_sent", MetricKind::kCounter,
                       static_cast<double>(pkts_sent_)});
        out.push_back({"pkts_retransmitted", MetricKind::kCounter,
                       static_cast<double>(pkts_retx_)});
        out.push_back({"acks_sent", MetricKind::kCounter,
                       static_cast<double>(acks_sent_)});
        out.push_back({"msgs_delivered", MetricKind::kCounter,
                       static_cast<double>(msgs_delivered_)});
        out.push_back({"outstanding_messages", MetricKind::kGauge,
                       static_cast<double>(outgoing_.size())});
        out.push_back({"known_pathlets", MetricKind::kGauge,
                       static_cast<double>(known_pathlets())});
        out.push_back({"srtt_us", MetricKind::kGauge,
                       rtt_valid_ ? static_cast<double>(srtt_.ns()) / 1000.0 : 0.0});
        out.push_back({"checksum_drops", MetricKind::kCounter,
                       static_cast<double>(checksum_drops_)});
        out.push_back({"rto_backoff", MetricKind::kGauge, rto_backoff_});
        out.push_back({"excluded_pathlets", MetricKind::kGauge,
                       static_cast<double>(excluded_until_.size())});
      });
  if (cfg_.overload.enabled) {
    admission_ = overload::Admission(cfg_.overload.admission);
    overload_metrics_ = telemetry::MetricRegistry::global().add(
        "overload", host_.name(),
        [this](std::vector<telemetry::MetricSample>& out) {
          using telemetry::MetricKind;
          out.push_back({"grants_issued", MetricKind::kCounter,
                         static_cast<double>(grants_issued_)});
          out.push_back({"busy_rejects_sent", MetricKind::kCounter,
                         static_cast<double>(busy_rejects_sent_)});
          out.push_back({"msgs_rejected", MetricKind::kCounter,
                         static_cast<double>(msgs_rejected_)});
          out.push_back({"deadline_expiries", MetricKind::kCounter,
                         static_cast<double>(deadline_expiries_)});
          out.push_back({"service_rate_gbps", MetricKind::kGauge,
                         admission_.rate_gbps()});
          out.push_back({"active_senders", MetricKind::kGauge,
                         static_cast<double>(admission_.active_senders())});
        });
  }
}

MtpEndpoint::~MtpEndpoint() = default;

// ------------------------------------------------------------------ sender

proto::MsgId MtpEndpoint::send_message(net::NodeId dst, std::int64_t bytes,
                                       MessageOptions opts, DoneFn on_delivered) {
  assert(bytes > 0 && "empty messages are not a thing in MTP");
  const proto::MsgId id = next_msg_id_++;
  OutgoingMessage msg;
  msg.id = id;
  msg.dst = dst;
  msg.opts = std::move(opts);
  msg.total_bytes = bytes;
  msg.total_pkts = static_cast<std::uint32_t>((bytes + cfg_.mss - 1) / cfg_.mss);
  msg.pkts.assign(msg.total_pkts, PktMeta{});
  msg.started_at = sim_.now();
  msg.done = std::move(on_delivered);
  OutgoingMessage& slot = outgoing_.emplace(id, std::move(msg)).first->second;
  if (cfg_.scheduling == MtpConfig::Scheduling::kSrpt) {
    srpt_order_.push_back(id);
  } else {
    enqueue_send(slot, /*urgent=*/false);
  }
  pump();
  return id;
}

MtpEndpoint::SendGroup& MtpEndpoint::group_for(const OutgoingMessage& msg) {
  const std::uint64_t key = (static_cast<std::uint64_t>(msg.dst) << 16) |
                            (static_cast<std::uint64_t>(msg.opts.tc) << 8) |
                            msg.opts.priority;
  auto it = group_index_.find(key);
  if (it != group_index_.end()) return *it->second;
  auto group = std::make_unique<SendGroup>();
  group->dst = msg.dst;
  group->tc = msg.opts.tc;
  group->priority = msg.opts.priority;
  SendGroup* raw = group.get();
  // Keep groups_ ordered by priority (desc), creation order within a level —
  // the same service order the old global stable sort produced.
  auto pos = groups_.begin();
  while (pos != groups_.end() && (*pos)->priority >= raw->priority) ++pos;
  groups_.insert(pos, std::move(group));
  group_index_.emplace(key, raw);
  return *raw;
}

void MtpEndpoint::enqueue_send(OutgoingMessage& msg, bool urgent) {
  // SRPT re-derives its service order from srpt_order_ each pump and never
  // drains the group queues, so don't grow them.
  if (cfg_.scheduling == MtpConfig::Scheduling::kSrpt) return;
  if (msg.send_queued) return;
  msg.send_queued = true;
  SendGroup& g = group_for(msg);
  if (urgent) {
    g.q.push_front(msg.id);
  } else {
    g.q.push_back(msg.id);
  }
}

void MtpEndpoint::listen(proto::PortNum port, MessageHandler handler) {
  handlers_[port] = std::move(handler);
}

void MtpEndpoint::exclude_pathlet(proto::PathletId pathlet, sim::SimTime duration) {
  excluded_until_[pathlet] = sim_.now() + duration;
  // Forget learned paths that cross the excluded pathlet: new packets to
  // those destinations fall back to the per-destination virtual pathlet and
  // the next ACK teaches the rerouted path. Without this, the sender would
  // keep charging (and capping traffic to) a path it just asked the network
  // to stop using.
  for (auto it = current_path_.begin(); it != current_path_.end();) {
    const auto& pathlets = paths_[it->second];
    const bool crosses =
        std::find(pathlets.begin(), pathlets.end(), pathlet) != pathlets.end();
    it = crosses ? current_path_.erase(it) : ++it;
  }
}

std::vector<proto::PathRef> MtpEndpoint::active_exclusions() {
  std::vector<proto::PathRef> out;
  for (auto it = excluded_until_.begin(); it != excluded_until_.end();) {
    if (it->second <= sim_.now()) {
      it = excluded_until_.erase(it);
    } else {
      out.push_back({it->first, 0});
      ++it;
    }
  }
  return out;
}

void MtpEndpoint::penalize(proto::PathletId pathlet, proto::TrafficClassId tc,
                           LossKind kind) {
  const sim::SimTime gap =
      rtt_valid_ ? std::max(srtt_ * 2, cfg_.retx_scan_period) : cfg_.min_rto;
  CcState& st = cc_[CcKey{pathlet, tc}];
  if (st.decreased_once && sim_.now() - st.last_decrease < gap) return;
  st.last_decrease = sim_.now();
  st.decreased_once = true;
  if (!st.algo) st.algo = make_cc(proto::FeedbackType::kNone, cfg_.cc);
  st.algo->on_loss(kind);
  if (cfg_.auto_exclude_after_losses > 0 && kind == LossKind::kTimeout &&
      ++consecutive_losses_[pathlet] >= cfg_.auto_exclude_after_losses) {
    exclude_pathlet(pathlet, cfg_.exclude_duration);
    consecutive_losses_[pathlet] = 0;
  }
}

PathletCc& MtpEndpoint::cc(proto::PathletId pathlet, proto::TrafficClassId tc,
                           proto::FeedbackType type_hint) {
  CcState& st = cc_[CcKey{pathlet, tc}];
  if (!st.algo) st.algo = make_cc(type_hint, cfg_.cc);
  return *st.algo;
}

const PathletCc* MtpEndpoint::pathlet_cc(proto::PathletId id,
                                         proto::TrafficClassId tc) const {
  auto it = cc_.find(CcKey{id, tc});
  return it == cc_.end() ? nullptr : it->second.algo.get();
}

MtpEndpoint::PathIndex MtpEndpoint::intern_path(
    const std::vector<proto::PathletId>& pathlets) {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i] == pathlets) return static_cast<PathIndex>(i);
  }
  paths_.push_back(pathlets);
  return static_cast<PathIndex>(paths_.size() - 1);
}

std::vector<proto::PathletId> MtpEndpoint::current_path(net::NodeId dst) const {
  auto it = current_path_.find(dst);
  if (it == current_path_.end()) return {};
  return paths_[it->second];
}

bool MtpEndpoint::admit(PathIndex path, proto::TrafficClassId tc, std::int64_t bytes) {
  for (const proto::PathletId p : paths_[path]) {
    auto it = cc_.find(CcKey{p, tc});
    if (it == cc_.end()) {
      if (bytes > cfg_.cc.init_window_bytes()) return false;
      continue;
    }
    const CcState& st = it->second;
    const std::int64_t wnd =
        st.algo ? st.algo->window_bytes() : cfg_.cc.init_window_bytes();
    if (st.inflight + bytes > wnd) return false;
  }
  return true;
}

void MtpEndpoint::charge(PathIndex path, proto::TrafficClassId tc, std::int64_t bytes) {
  for (const proto::PathletId p : paths_[path]) cc_[CcKey{p, tc}].inflight += bytes;
}

void MtpEndpoint::uncharge(PathIndex path, proto::TrafficClassId tc, std::int64_t bytes) {
  for (const proto::PathletId p : paths_[path]) {
    auto it = cc_.find(CcKey{p, tc});
    if (it != cc_.end()) {
      it->second.inflight = std::max<std::int64_t>(0, it->second.inflight - bytes);
    }
  }
}

void MtpEndpoint::pump() {
  if (cfg_.scheduling == MtpConfig::Scheduling::kSrpt) {
    pump_srpt();
    return;
  }
  // Serve groups in priority order; inside a group, drain messages FIFO
  // until one is window-blocked — every message behind it shares the same
  // (dst-derived path, tc) admission budget, so it would block too. A parked
  // message keeps send_queued and is retried when its group's window frees.
  for (const auto& gp : groups_) {
    SendGroup& g = *gp;
    while (!g.q.empty()) {
      auto it = outgoing_.find(g.q.front());
      if (it == outgoing_.end()) {  // completed since it queued
        g.q.pop_front();
        continue;
      }
      OutgoingMessage& msg = it->second;
      if (!service_msg(msg)) break;
      msg.send_queued = false;
      g.q.pop_front();
    }
  }
}

/// Shortest remaining processing time: fewest unacknowledged packets first;
/// application priority still dominates. Re-sorting by remaining work on
/// every pump is inherently O(n log n) — SRPT keeps the old global-scan
/// machinery and is not meant for six-digit message counts.
void MtpEndpoint::pump_srpt() {
  if (srpt_order_.empty()) return;
  std::erase_if(srpt_order_, [this](proto::MsgId id) { return !outgoing_.contains(id); });
  // `order` is a reused member scratch: pump runs once per received ack, and
  // a fresh vector here was one malloc/free per call.
  std::vector<proto::MsgId>& order = pump_order_;
  order.assign(srpt_order_.begin(), srpt_order_.end());
  if (order.size() > 1) {
    std::stable_sort(order.begin(), order.end(), [this](proto::MsgId a, proto::MsgId b) {
      const OutgoingMessage& ma = outgoing_.at(a);
      const OutgoingMessage& mb = outgoing_.at(b);
      if (ma.opts.priority != mb.opts.priority) {
        return ma.opts.priority > mb.opts.priority;
      }
      return ma.total_pkts - ma.sacked < mb.total_pkts - mb.sacked;
    });
  }
  for (const proto::MsgId id : order) {
    auto it = outgoing_.find(id);
    if (it == outgoing_.end()) continue;
    service_msg(it->second);
  }
}

bool MtpEndpoint::service_msg(OutgoingMessage& msg) {
  // Retransmissions first: they unblock message completion.
  while (!msg.retx_queue.empty()) {
    const std::uint32_t pkt = msg.retx_queue.front();
    if (msg.state(pkt) != PktState::kLost) {  // already re-sacked meanwhile
      msg.retx_queue.pop_front();
      continue;
    }
    if (!try_send_pkt(msg, pkt, /*is_retx=*/true)) return false;
    msg.retx_queue.pop_front();
  }
  while (msg.next_unsent < msg.total_pkts) {
    if (!try_send_pkt(msg, msg.next_unsent, /*is_retx=*/false)) return false;
    ++msg.next_unsent;
  }
  return true;
}

bool MtpEndpoint::try_send_pkt(OutgoingMessage& msg, std::uint32_t pkt, bool is_retx) {
  auto path_it = current_path_.find(msg.dst);
  if (path_it == current_path_.end()) {
    // No feedback learned yet: use a per-destination default pathlet. One
    // pathlet covering the whole network mimics TCP (paper §4), and TCP
    // state is per-connection — so the default window is per destination,
    // keeping an unreachable destination from starving the others.
    const proto::PathletId virtual_id =
        kVirtualPathletFlag | (msg.dst & ~kVirtualPathletFlag);
    path_it = current_path_.emplace(msg.dst, intern_path({virtual_id})).first;
  }
  const PathIndex path = path_it->second;
  const std::int64_t bytes = msg.pkt_len(pkt, cfg_.mss);
  if (!admit(path, msg.opts.tc, bytes)) return false;
  if (!grant_admit(msg.dst, bytes)) return false;
  charge(path, msg.opts.tc, bytes);
  grant_charge(msg.dst, bytes);
  msg.pkts[pkt].charged_path = path;
  msg.set_state(pkt, PktState::kInflight);
  msg.pkts[pkt].sent_at = sim_.now();
  if (is_retx) {
    msg.mark_retransmitted(pkt);
    ++pkts_retx_;
  }
  msg.inflight_fifo.push_back(pkt);
  if (!sim_.timers().armed(msg.retx_timer)) arm_retx(msg, sim_.now() + rto());
  send_data_pkt(msg, pkt, path);
  return true;
}

void MtpEndpoint::send_data_pkt(OutgoingMessage& msg, std::uint32_t pkt, PathIndex) {
  net::Packet p;
  p.src = host_.id();
  p.dst = msg.dst;
  p.payload_bytes = msg.pkt_len(pkt, cfg_.mss);
  p.ecn = net::Ecn::kEct;
  p.tc = msg.opts.tc;
  p.priority = msg.opts.priority;
  p.flow_hash = mtp_flow_hash(p.src, msg.opts.src_port, msg.dst, msg.opts.dst_port);
  p.uid = sim_.next_packet_uid();

  proto::MtpHeader hdr;
  hdr.src_port = msg.opts.src_port;
  hdr.dst_port = msg.opts.dst_port;
  hdr.type = proto::MtpPacketType::kData;
  hdr.msg_id = msg.id;
  hdr.priority = msg.opts.priority;
  hdr.tc = msg.opts.tc;
  hdr.msg_len_bytes = static_cast<std::uint64_t>(msg.total_bytes);
  hdr.msg_len_pkts = msg.total_pkts;
  hdr.pkt_num = pkt;
  hdr.pkt_offset = static_cast<std::uint64_t>(pkt) * cfg_.mss;
  hdr.pkt_len = p.payload_bytes;
  hdr.path_exclude() = active_exclusions();
  if (pkt == 0 && msg.opts.app) p.app = *msg.opts.app;
  if (pkt == 0 && msg.opts.stream) hdr.stream = *msg.opts.stream;
  if (pkt == 0 && msg.opts.deadline.ns() > 0) {
    hdr.overload.ensure().deadline_ns =
        static_cast<std::uint64_t>(msg.opts.deadline.ns());
  }
  p.header_bytes =
      cfg_.base_header_bytes + static_cast<std::uint32_t>(hdr.path_exclude().size() * 5);
  p.header = std::move(hdr);
  ++pkts_sent_;
  host_.send(std::move(p));
}

void MtpEndpoint::complete_outgoing(OutgoingMessage& msg) {
  const sim::SimTime fct = sim_.now() - msg.started_at;
  auto done = std::move(msg.done);
  const proto::MsgId id = msg.id;
  sim_.timers().cancel(msg.retx_timer);
  outgoing_.erase(id);  // msg is dangling beyond this point
  if (done) done(id, fct);
}

void MtpEndpoint::rtt_sample(sim::SimTime sample) {
  if (!rtt_valid_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    rtt_valid_ = true;
  } else {
    const sim::SimTime err = sample >= srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = rttvar_.scaled(0.75) + err.scaled(0.25);
    srtt_ = srtt_.scaled(0.875) + sample.scaled(0.125);
  }
}

sim::SimTime MtpEndpoint::rto() const {
  sim::SimTime r = rtt_valid_ ? srtt_ * 2 + rttvar_ * 4 : cfg_.min_rto.scaled(5.0);
  r = r.scaled(rto_backoff_);
  r = std::max(r, cfg_.min_rto);
  r = std::min(r, cfg_.max_rto);
  return r;
}

void MtpEndpoint::retx_fire(void* self, std::uint64_t id) {
  static_cast<MtpEndpoint*>(self)->on_retx_timer(static_cast<proto::MsgId>(id));
}

void MtpEndpoint::arm_retx(OutgoingMessage& msg, sim::SimTime deadline) {
  // Never (re)arm in the past or at the current instant: a deadline that has
  // already passed still needs a fresh wheel tick so the expiry check runs
  // from a clean event, and an `== now` arm would re-fire at this timestamp
  // forever when the oldest packet sits exactly at its deadline.
  const sim::SimTime floor = sim_.now() + sim_.timers().granularity();
  msg.retx_timer =
      sim_.timers().arm(std::max(deadline, floor), &MtpEndpoint::retx_fire, this, msg.id);
}

/// Per-message expiry check, driven by the shared timer wheel. Replaces the
/// old O(outstanding-messages) periodic retx_scan: each message wakes only
/// when its own oldest in-flight packet may have timed out.
void MtpEndpoint::on_retx_timer(proto::MsgId id) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;  // completed between arm and fire
  OutgoingMessage& msg = it->second;
  const sim::SimTime deadline = rto();
  const sim::SimTime now = sim_.now();
  bool any_lost = false;
  while (!msg.inflight_fifo.empty()) {
    const std::uint32_t pkt = msg.inflight_fifo.front();
    if (msg.state(pkt) != PktState::kInflight) {
      msg.inflight_fifo.pop_front();
      continue;
    }
    if (now - msg.pkts[pkt].sent_at <= deadline) break;  // FIFO: rest are newer
    msg.inflight_fifo.pop_front();
    msg.set_state(pkt, PktState::kLost);
    const std::int64_t bytes = msg.pkt_len(pkt, cfg_.mss);
    uncharge(msg.pkts[pkt].charged_path, msg.opts.tc, bytes);
    grant_uncharge(msg.dst, bytes);
    msg.retx_queue.push_back(pkt);
    enqueue_send(msg, /*urgent=*/true);
    any_lost = true;
    if (telemetry::TraceSink::enabled()) {
      telemetry::TraceEvent ev;
      ev.t = now;
      ev.type = telemetry::TraceEventType::kRto;
      ev.component = host_.name();
      ev.src = host_.id();
      ev.dst = msg.dst;
      ev.msg_id = id;
      ev.pkt_num = pkt;
      ev.bytes = static_cast<std::uint32_t>(bytes);
      ev.tc = msg.opts.tc;
      ev.value = static_cast<std::uint64_t>(deadline.ns());
      telemetry::trace().record(ev);
    }
    for (const proto::PathletId p : paths_[msg.pkts[pkt].charged_path]) {
      penalize(p, msg.opts.tc, LossKind::kTimeout);
    }
  }
  if (!msg.inflight_fifo.empty()) {
    // The surviving front packet defines the next deadline. (If everything
    // expired, the next transmission rearms in try_send_pkt.)
    arm_retx(msg, msg.pkts[msg.inflight_fifo.front()].sent_at + deadline);
  }
  if (any_lost) {
    // Consecutive timeouts back the timer off exponentially (a blackholed
    // path must not be hammered at a fixed rate); any new SACK resets it.
    // At most one doubling per scan period: many messages expiring in the
    // same window are one timeout episode, as under the old single scan.
    if (now - last_backoff_at_ >= cfg_.retx_scan_period) {
      rto_backoff_ = std::min(rto_backoff_ * 2.0, kMaxRtoBackoff);
      last_backoff_at_ = now;
    }
    pump();
  }
}

// ---------------------------------------------------------------- receiver

void MtpEndpoint::on_packet(net::Packet&& pkt) {
  if (!pkt.checksum_ok()) {
    // Payload damaged in flight: count and drop, never deliver. For data,
    // NACK like an NDP trim (header intact, payload gone) so the sender
    // retransmits in ~1 RTT; a corrupted ACK is simply dropped — the
    // sender's timer recovers.
    ++checksum_drops_;
    if (telemetry::TraceSink::enabled()) {
      const auto& hdr = pkt.mtp();
      telemetry::TraceEvent ev;
      ev.t = sim_.now();
      ev.type = telemetry::TraceEventType::kChecksumDrop;
      ev.component = host_.name();
      ev.src = pkt.src;
      ev.dst = pkt.dst;
      ev.msg_id = hdr.msg_id;
      ev.pkt_num = hdr.pkt_num;
      ev.bytes = pkt.size_bytes();
      ev.tc = pkt.tc;
      ev.flow = pkt.flow_hash;
      telemetry::trace().record(ev);
    }
    if (!pkt.mtp().is_ack()) queue_ack(pkt, /*nack=*/true, {}, /*flush_now=*/true);
    return;
  }
  if (pkt.corrupted) ++corrupted_delivered_;  // checksum missed real damage
  if (pkt.mtp().is_ack()) {
    on_ack(pkt);
  } else {
    on_data(std::move(pkt));
  }
}

void MtpEndpoint::queue_ack(const net::Packet& data, bool nack,
                            std::vector<proto::SackEntry> gap_nacks, bool flush_now) {
  const auto& dh = data.mtp();
  // Fast path: this ack would flush immediately (NACKs, completions, and
  // everything when coalescing is off — the default) and nothing is batched
  // for the source, so build it straight from the data packet. Skips the
  // pending_acks_ node churn: a map insert + full Packet copy + erase per
  // received data packet.
  const bool immediate =
      flush_now || nack || !gap_nacks.empty() || cfg_.ack_coalesce <= 1;
  if (immediate && !pending_acks_.contains(data.src)) {
    std::vector<proto::SackEntry> sacks;
    std::vector<proto::SackEntry>& nacks = gap_nacks;
    if (nack) {
      nacks.insert(nacks.begin(), {dh.msg_id, dh.pkt_num});
    } else {
      sacks.push_back({dh.msg_id, dh.pkt_num});
    }
    emit_ack(data, std::move(sacks), std::move(nacks));
    return;
  }
  auto& pa = pending_acks_[data.src];
  pa.last_data = data;  // freshest template: ports, tc, echoed path feedback
  if (nack) {
    pa.nacks.push_back({dh.msg_id, dh.pkt_num});
  } else {
    pa.sacks.push_back({dh.msg_id, dh.pkt_num});
  }
  for (auto& e : gap_nacks) pa.nacks.push_back(e);
  // NACKs and completions flush immediately; otherwise batch to the
  // configured depth with a timer backstop.
  if (flush_now || !pa.nacks.empty() || pa.sacks.size() >= cfg_.ack_coalesce) {
    emit_ack(pa.last_data, std::move(pa.sacks), std::move(pa.nacks));
    pending_acks_.erase(data.src);
    if (pending_acks_.empty() && ack_flush_task_->running()) ack_flush_task_->stop();
    return;
  }
  if (!ack_flush_task_->running()) ack_flush_task_->start(cfg_.ack_flush_timeout);
}

void MtpEndpoint::flush_acks() {
  for (auto& [src, pa] : pending_acks_) {
    emit_ack(pa.last_data, std::move(pa.sacks), std::move(pa.nacks));
  }
  pending_acks_.clear();
  ack_flush_task_->stop();
}

void MtpEndpoint::emit_ack(const net::Packet& data, std::vector<proto::SackEntry>&& sacks,
                           std::vector<proto::SackEntry>&& nacks) {
  const auto& dh = data.mtp();
  net::Packet p;
  p.src = host_.id();
  p.dst = data.src;
  p.payload_bytes = 0;
  p.ecn = net::Ecn::kNotEct;
  p.tc = data.tc;
  p.priority = data.priority;
  p.flow_hash = mtp_flow_hash(p.src, dh.dst_port, data.src, dh.src_port);
  p.uid = sim_.next_packet_uid();

  proto::MtpHeader hdr;
  hdr.src_port = dh.dst_port;
  hdr.dst_port = dh.src_port;
  hdr.type = proto::MtpPacketType::kAck;
  hdr.msg_id = dh.msg_id;
  hdr.tc = dh.tc;
  hdr.priority = dh.priority;
  hdr.msg_len_bytes = dh.msg_len_bytes;
  hdr.msg_len_pkts = dh.msg_len_pkts;
  hdr.pkt_num = dh.pkt_num;
  // The receiver copies the data packet's accumulated path feedback into the
  // ACK's feedback list — the core of pathlet congestion control. With
  // coalescing, the freshest packet's feedback stands in for the batch
  // (paper §4: "feedback can be aggregated").
  hdr.ack_path_feedback() = dh.path_feedback();
  hdr.sack() = std::move(sacks);
  hdr.nack() = std::move(nacks);
  if (cfg_.overload.enabled) {
    // Receiver-driven admission: stamp this endpoint's per-sender credit so
    // the sender paces new in-flight bytes to the receiver's service rate.
    hdr.overload.ensure().grant_bytes =
        static_cast<std::uint64_t>(admission_.grant_bytes(sim_.now()));
    ++grants_issued_;
  }
  p.header_bytes = cfg_.base_header_bytes +
                   static_cast<std::uint32_t>(hdr.ack_path_feedback().size() * 14 +
                                              (hdr.sack().size() + hdr.nack().size()) * 12);
  p.header = std::move(hdr);
  ++acks_sent_;
  if (telemetry::TraceSink::enabled()) {
    const auto& h = p.mtp();
    telemetry::TraceEvent ev;
    ev.t = sim_.now();
    ev.type = telemetry::TraceEventType::kAck;
    ev.component = host_.name();
    ev.src = p.src;
    ev.dst = p.dst;
    ev.msg_id = h.msg_id;
    ev.pkt_num = h.pkt_num;
    ev.bytes = p.size_bytes();
    ev.tc = p.tc;
    ev.flow = p.flow_hash;
    ev.value = h.sack().size();
    telemetry::trace().record(ev);
    for (const auto& n : h.nack()) {
      telemetry::TraceEvent ne = ev;
      ne.type = telemetry::TraceEventType::kNack;
      ne.msg_id = n.msg_id;
      ne.pkt_num = n.pkt_num;
      ne.value = 0;
      telemetry::trace().record(ne);
    }
  }
  host_.send(std::move(p));
}

void MtpEndpoint::on_data(net::Packet&& pkt) {
  const auto& hdr = pkt.mtp();
  const MsgKey key{pkt.src, hdr.msg_id};

  // Packet of a message this endpoint busy-rejected: re-reject to quench the
  // sender (mirrors the completed_ re-ACK). A rejected message must never be
  // partially reassembled, let alone delivered.
  if (!rejected_.empty() && rejected_.contains(key)) {
    send_busy_reject(pkt, proto::kOverloadBusy);
    return;
  }

  // NDP-style trimmed packet: header survived, payload didn't. NACK so the
  // sender retransmits immediately instead of waiting for a timeout.
  const bool trimmed = pkt.payload_bytes == 0 && hdr.pkt_len > 0;
  if (trimmed) {
    queue_ack(pkt, /*nack=*/true, {}, /*flush_now=*/true);
    return;
  }

  // Duplicate of an already-delivered message: re-ACK to quench the sender.
  if (completed_.contains(key)) {
    queue_ack(pkt, /*nack=*/false, {}, /*flush_now=*/true);
    return;
  }

  if (hdr.msg_len_pkts == 0 || hdr.pkt_num >= hdr.msg_len_pkts) return;  // malformed

  // Overload shedding — only for messages not yet under reassembly (an
  // admitted message is a commitment: it completes). Deadline-expired work
  // is shed first (serving it would be wasted — the metastable-failure
  // fuel), then the watermark sheds low-priority fresh messages while the
  // reassembly table is saturated. Both paths send an explicit kBusy reject,
  // never a silent drop.
  const auto& ov = cfg_.overload;
  if (ov.enabled && !incoming_.contains(key)) {
    const std::uint64_t dl = hdr.deadline_ns();
    if (ov.shed_expired && dl != 0 &&
        static_cast<std::uint64_t>(sim_.now().ns()) > dl) {
      ++deadline_expiries_;
      reject_message(key, pkt, proto::kOverloadBusy | proto::kOverloadExpired);
      return;
    }
    if (ov.max_incoming_msgs != 0 && incoming_.size() >= ov.max_incoming_msgs &&
        hdr.priority < ov.shed_below_priority) {
      reject_message(key, pkt, proto::kOverloadBusy);
      return;
    }
  }

  auto [it, fresh] = incoming_.try_emplace(key);
  IncomingMessage& msg = it->second;
  if (fresh) {
    msg.have.assign(hdr.msg_len_pkts, false);
    msg.total_pkts = hdr.msg_len_pkts;
    msg.total_bytes = static_cast<std::int64_t>(hdr.msg_len_bytes);
    msg.priority = hdr.priority;
    msg.tc = hdr.tc;
    msg.src_port = hdr.src_port;
    msg.dst_port = hdr.dst_port;
    msg.first_pkt_at = sim_.now();
  }
  if (pkt.app) msg.app = *pkt.app;
  if (hdr.has_stream()) msg.stream = *hdr.stream;
  if (hdr.deadline_ns() != 0) msg.deadline_ns = hdr.deadline_ns();
  if (!msg.have[hdr.pkt_num]) {
    msg.have[hdr.pkt_num] = true;
    ++msg.received;
    if (on_payload) on_payload(pkt.payload_bytes);
    if (cfg_.overload.enabled) {
      admission_.on_delivered(pkt.src, pkt.payload_bytes, sim_.now());
    }
  }

  // Gap NACKs: packets more than nack_gap_threshold behind this arrival that
  // are still missing were almost certainly lost — ask for them now (each at
  // most once; the sender's timer is the backstop if the retransmission is
  // lost too).
  std::vector<proto::SackEntry> gap_nacks;
  if (cfg_.nack_gap_threshold != 0 && hdr.pkt_num >= cfg_.nack_gap_threshold) {
    const std::uint32_t frontier = hdr.pkt_num - cfg_.nack_gap_threshold;
    while (msg.gap_checked < frontier && gap_nacks.size() < 32) {
      if (!msg.have[msg.gap_checked]) {
        gap_nacks.push_back({hdr.msg_id, msg.gap_checked});
      }
      ++msg.gap_checked;
    }
  }
  const bool completes = msg.received == msg.total_pkts;
  queue_ack(pkt, /*nack=*/false, std::move(gap_nacks),
            /*flush_now=*/completes || cfg_.ack_coalesce <= 1);

  if (completes) {
    ReceivedMessage done;
    done.src = pkt.src;
    done.msg_id = hdr.msg_id;
    done.bytes = msg.total_bytes;
    done.priority = msg.priority;
    done.tc = msg.tc;
    done.src_port = msg.src_port;
    done.dst_port = msg.dst_port;
    done.app = std::move(msg.app);
    done.stream = std::move(msg.stream);
    done.deadline =
        sim::SimTime::nanoseconds(static_cast<std::int64_t>(msg.deadline_ns));
    done.first_pkt_at = msg.first_pkt_at;
    done.completed_at = sim_.now();
    incoming_.erase(it);
    completed_.insert(key);
    completed_fifo_.push_back(key);
    while (completed_fifo_.size() > cfg_.completed_cache) {
      completed_.erase(completed_fifo_.front());
      completed_fifo_.pop_front();
    }
    ++msgs_delivered_;
    auto handler = handlers_.find(done.dst_port);
    if (handler != handlers_.end()) {
      handler->second(done);
    } else if (default_handler_) {
      default_handler_(done);
    }
  }
}

void MtpEndpoint::on_ack(const net::Packet& pkt) {
  const auto& hdr = pkt.mtp();

  if (hdr.has_overload()) {
    const auto& ov = *hdr.overload;
    if (cfg_.overload.enabled && ov.grant_bytes > 0) {
      auto [git, fresh_grant] = grants_.try_emplace(
          pkt.src, DstGrant{cfg_.overload.unsolicited_grant_bytes, 0});
      git->second.grant = static_cast<std::int64_t>(ov.grant_bytes);
      (void)fresh_grant;
    }
    if (ov.busy()) {
      // Explicit busy-reject (receiver or in-network device): the message
      // will never be accepted there — abort it instead of retransmitting
      // into the overload. Busy ACKs carry no SACK/feedback payload.
      abort_outgoing(hdr.msg_id, ov.expired());
      pump();
      return;
    }
  }

  if (telemetry::TraceSink::enabled()) {
    for (const auto& pf : hdr.ack_path_feedback()) {
      telemetry::TraceEvent ev;
      ev.t = sim_.now();
      ev.type = telemetry::TraceEventType::kPathletFeedback;
      ev.component = host_.name();
      ev.src = pkt.src;
      ev.dst = pkt.dst;
      ev.msg_id = hdr.msg_id;
      ev.tc = pf.tc;
      ev.flow = pkt.flow_hash;
      ev.pathlet = pf.pathlet;
      ev.value = pf.feedback.value;
      telemetry::trace().record(ev);
    }
  }

  // Learn the destination's current path from the echoed feedback, and feed
  // each pathlet's algorithm. (The ACK's source is the message destination.)
  if (!hdr.ack_path_feedback().empty()) {
    std::vector<proto::PathletId> pathlets;
    pathlets.reserve(hdr.ack_path_feedback().size());
    for (const auto& pf : hdr.ack_path_feedback()) pathlets.push_back(pf.pathlet);
    current_path_[pkt.src] = intern_path(pathlets);
  }

  auto handle_entries = [&](const std::vector<proto::SackEntry>& entries, bool is_nack) {
    for (const auto& e : entries) {
      auto it = outgoing_.find(e.msg_id);
      if (it == outgoing_.end()) continue;
      OutgoingMessage& msg = it->second;
      if (e.pkt_num >= msg.total_pkts) continue;
      const std::int64_t bytes = msg.pkt_len(e.pkt_num, cfg_.mss);

      if (is_nack) {
        if (msg.state(e.pkt_num) == PktState::kInflight) {
          msg.set_state(e.pkt_num, PktState::kLost);
          uncharge(msg.pkts[e.pkt_num].charged_path, msg.opts.tc, bytes);
          grant_uncharge(msg.dst, bytes);
          msg.retx_queue.push_back(e.pkt_num);
          enqueue_send(msg, /*urgent=*/true);
          for (const proto::PathletId p : paths_[msg.pkts[e.pkt_num].charged_path]) {
            penalize(p, msg.opts.tc, LossKind::kTrim);
          }
        }
        continue;
      }

      const PktState prev = msg.state(e.pkt_num);
      if (prev == PktState::kSacked) continue;
      if (prev == PktState::kInflight) {
        uncharge(msg.pkts[e.pkt_num].charged_path, msg.opts.tc, bytes);
        grant_uncharge(msg.dst, bytes);
      }
      msg.set_state(e.pkt_num, PktState::kSacked);
      ++msg.sacked;
      rto_backoff_ = 1.0;  // forward progress: leave timeout backoff

      const bool karn_valid = !msg.retransmitted(e.pkt_num);
      const sim::SimTime rtt = sim_.now() - msg.pkts[e.pkt_num].sent_at;
      if (karn_valid) rtt_sample(rtt);

      // Feed pathlet algorithms: feedback TLVs first, then the ack credit.
      for (const auto& pf : hdr.ack_path_feedback()) {
        PathletCc& algo = cc(pf.pathlet, pf.tc, pf.feedback.type);
        algo.on_feedback(pf.feedback, bytes);
        consecutive_losses_[pf.pathlet] = 0;
      }
      if (hdr.ack_path_feedback().empty()) {
        // No pathlet info on this path: evolve whatever the packet was
        // charged to (the per-destination virtual pathlet).
        for (const proto::PathletId p : paths_[msg.pkts[e.pkt_num].charged_path]) {
          cc(p, msg.opts.tc, proto::FeedbackType::kNone)
              .on_ack(bytes, karn_valid ? rtt : srtt_);
        }
      } else {
        for (const auto& pf : hdr.ack_path_feedback()) {
          cc(pf.pathlet, pf.tc, pf.feedback.type)
              .on_ack(bytes, karn_valid ? rtt : srtt_);
        }
      }

      if (msg.sacked == msg.total_pkts) {
        complete_outgoing(msg);  // erases msg from outgoing_
        continue;                // later entries re-resolve via the map lookup
      }
    }
  };

  handle_entries(hdr.sack(), /*is_nack=*/false);
  handle_entries(hdr.nack(), /*is_nack=*/true);
  pump();
}

// ------------------------------------------------------------ mtp::overload

bool MtpEndpoint::grant_admit(net::NodeId dst, std::int64_t bytes) {
  if (!cfg_.overload.enabled) return true;
  auto [it, fresh] = grants_.try_emplace(
      dst, DstGrant{cfg_.overload.unsolicited_grant_bytes, 0});
  (void)fresh;
  const DstGrant& g = it->second;
  // inflight == 0 always admits: a stale or tiny grant can slow a sender to
  // one packet per RTT, but can never wedge it entirely.
  return g.inflight == 0 || g.inflight + bytes <= g.grant;
}

void MtpEndpoint::grant_charge(net::NodeId dst, std::int64_t bytes) {
  if (!cfg_.overload.enabled) return;
  grants_[dst].inflight += bytes;
}

void MtpEndpoint::grant_uncharge(net::NodeId dst, std::int64_t bytes) {
  if (!cfg_.overload.enabled) return;
  auto it = grants_.find(dst);
  if (it != grants_.end()) {
    it->second.inflight = std::max<std::int64_t>(0, it->second.inflight - bytes);
  }
}

/// Busy-reject received for an outgoing message: stop sending it. In-flight
/// packets are uncharged from their pathlets (they will never be SACKed) and
/// the DoneFn is dropped unfired — on_rejected is the completion signal.
void MtpEndpoint::abort_outgoing(proto::MsgId id, bool expired) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;  // duplicate reject, already aborted
  OutgoingMessage& msg = it->second;
  for (std::uint32_t k = 0; k < msg.total_pkts; ++k) {
    if (msg.state(k) == PktState::kInflight) {
      const std::int64_t bytes = msg.pkt_len(k, cfg_.mss);
      uncharge(msg.pkts[k].charged_path, msg.opts.tc, bytes);
      grant_uncharge(msg.dst, bytes);
    }
  }
  sim_.timers().cancel(msg.retx_timer);
  const net::NodeId dst = msg.dst;
  ++msgs_rejected_;
  outgoing_.erase(it);  // msg is dangling beyond this point
  if (on_rejected) on_rejected(id, dst, expired);
}

/// Receiver-side shed: remember the reject (so retransmissions are quenched,
/// and the message can never later be accepted) and tell the sender.
void MtpEndpoint::reject_message(const MsgKey& key, const net::Packet& data,
                                 std::uint8_t flags) {
  if (rejected_.insert(key).second) {
    rejected_fifo_.push_back(key);
    while (rejected_fifo_.size() > cfg_.completed_cache) {
      rejected_.erase(rejected_fifo_.front());
      rejected_fifo_.pop_front();
    }
  }
  ++busy_rejects_sent_;
  send_busy_reject(data, flags);
}

void MtpEndpoint::send_busy_reject(const net::Packet& data, std::uint8_t flags) {
  const auto& dh = data.mtp();
  net::Packet p;
  p.src = host_.id();
  p.dst = data.src;
  p.payload_bytes = 0;
  p.ecn = net::Ecn::kNotEct;
  p.tc = data.tc;
  p.priority = data.priority;
  p.flow_hash = mtp_flow_hash(p.src, dh.dst_port, data.src, dh.src_port);
  p.uid = sim_.next_packet_uid();

  proto::MtpHeader hdr;
  hdr.src_port = dh.dst_port;
  hdr.dst_port = dh.src_port;
  hdr.type = proto::MtpPacketType::kAck;
  hdr.msg_id = dh.msg_id;
  hdr.tc = dh.tc;
  hdr.priority = dh.priority;
  hdr.msg_len_bytes = dh.msg_len_bytes;
  hdr.msg_len_pkts = dh.msg_len_pkts;
  hdr.pkt_num = dh.pkt_num;
  hdr.overload.ensure().flags = flags;
  p.header_bytes = cfg_.base_header_bytes;
  p.header = std::move(hdr);
  ++acks_sent_;
  if (telemetry::TraceSink::enabled()) {
    telemetry::TraceEvent ev;
    ev.t = sim_.now();
    ev.type = telemetry::TraceEventType::kBusy;
    ev.component = host_.name();
    ev.src = p.src;
    ev.dst = p.dst;
    ev.msg_id = dh.msg_id;
    ev.pkt_num = dh.pkt_num;
    ev.bytes = data.size_bytes();
    ev.tc = data.tc;
    ev.flow = p.flow_hash;
    ev.value = flags;
    telemetry::trace().record(ev);
  }
  host_.send(std::move(p));
}

}  // namespace mtp::core
