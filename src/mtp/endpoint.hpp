// MtpEndpoint: the MTP transport attached to one host (paper §3).
//
// Message transport (§3.1.2):
//   - Messages are independent; no connection setup. send_message() packetizes
//     and transmits immediately.
//   - Every packet carries the message id, total length in bytes and packets,
//     and its own number/offset — so any device can parse and make
//     per-message decisions with bounded state.
//   - Acknowledgement and retransmission are per (Msg ID, Pkt Num): receivers
//     SACK every packet, NACK trimmed ones, and senders retransmit unacked
//     packets after an adaptive timeout.
//
// Pathlet congestion control (§3.1.3):
//   - Links stamp (Path ID, TC, Feedback) TLVs onto data packets; receivers
//     echo them in ACKs.
//   - The endpoint keeps one PathletCc per (pathlet, TC) — state is shared by
//     all messages/destinations crossing that pathlet, which is the paper's
//     coarser-than-flow isolation granularity.
//   - A packet is admitted when every pathlet on its destination's current
//     path has window headroom; it is "charged" to those pathlets until
//     acknowledged or declared lost.
//   - Persistently congested pathlets can be excluded: their ids ride in the
//     Path Exclude header list and exclusion-aware switches route around them.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mtp/cc_algorithm.hpp"
#include "mtp/overload/admission.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::core {

struct MtpConfig {
  std::uint32_t mss = 1000;          ///< payload bytes per packet
  std::uint32_t base_header_bytes = 64;  ///< accounted fixed header + IP overhead
  CcConfig cc;

  sim::SimTime min_rto = sim::SimTime::microseconds(200);
  sim::SimTime max_rto = sim::SimTime::milliseconds(100);
  /// Consecutive-timeout window: RTO backoff doubles at most once per this
  /// period, no matter how many messages expire inside it. (Historically the
  /// retransmit-scan period; timers now live on the simulator's timer wheel
  /// and fire per message — see docs/scale.md.)
  sim::SimTime retx_scan_period = sim::SimTime::microseconds(100);

  /// Completed-message tombstones kept to re-ACK duplicate retransmissions.
  std::size_t completed_cache = 1 << 14;

  /// Automatically exclude a pathlet after this many consecutive timeout
  /// losses on it (0 disables auto-exclusion).
  int auto_exclude_after_losses = 0;
  sim::SimTime exclude_duration = sim::SimTime::milliseconds(1);

  /// Receiver-side gap NACKs: when packet N of a message arrives and packet
  /// K < N - threshold is still missing, NACK K once so the sender
  /// retransmits in ~1 RTT instead of waiting out the timeout. The threshold
  /// absorbs benign reordering. 0 disables gap NACKs.
  std::uint32_t nack_gap_threshold = 16;

  /// Order in which the sender serves its outstanding messages.
  enum class Scheduling {
    kPriorityFifo,  ///< application priority, FIFO within a level (default)
    kSrpt,          ///< shortest remaining message first (minimizes mean FCT)
  };
  Scheduling scheduling = Scheduling::kPriorityFifo;

  /// ACK coalescing (paper §4 "Packet Header Overheads": feedback can be
  /// aggregated): batch up to this many SACKs per source into one ACK.
  /// 1 = ack every packet. Batches flush on the Nth packet, on message
  /// completion, on any NACK, and on a short timer so senders never stall.
  std::uint32_t ack_coalesce = 1;
  sim::SimTime ack_flush_timeout = sim::SimTime::microseconds(20);

  /// mtp::overload — receiver-driven admission + busy-reject shedding.
  /// Disabled by default: existing runs are byte-identical with the
  /// subsystem compiled in (no grants stamped, no pacing, no sheds).
  struct OverloadControl {
    bool enabled = false;
    /// Receiver service-rate EWMA and grant sizing (see overload/admission).
    overload::AdmissionConfig admission;
    /// Blind-start credit per destination before the first grant arrives.
    std::int64_t unsolicited_grant_bytes = 16000;
    /// Receiver watermark: above this many messages under reassembly, fresh
    /// messages with priority < shed_below_priority are busy-rejected
    /// (0 disables watermark shedding; grants still pace senders).
    std::size_t max_incoming_msgs = 0;
    std::uint8_t shed_below_priority = 1;
    /// Busy-reject deadline-expired fresh messages instead of serving them.
    bool shed_expired = true;
  };
  OverloadControl overload;
};

struct MessageOptions {
  std::uint8_t priority = 0;
  proto::TrafficClassId tc = 0;
  proto::PortNum src_port = 0;
  proto::PortNum dst_port = 0;
  std::optional<net::AppData> app;  ///< rides on packet 0 (request key, ...)
  std::optional<proto::StreamHeader> stream;  ///< rides on packet 0 (mtp::stream)
  /// Absolute deadline carried in the header overload block on packet 0
  /// (zero = none). Devices and receivers shed the message once expired.
  sim::SimTime deadline;
};

/// A completed incoming message handed to the application.
struct ReceivedMessage {
  net::NodeId src = net::kInvalidNode;
  proto::MsgId msg_id = 0;
  std::int64_t bytes = 0;
  std::uint8_t priority = 0;
  proto::TrafficClassId tc = 0;
  proto::PortNum src_port = 0;
  proto::PortNum dst_port = 0;
  std::optional<net::AppData> app;
  std::optional<proto::StreamHeader> stream;
  sim::SimTime deadline;  ///< absolute deadline the sender stamped (0 = none)
  sim::SimTime first_pkt_at;
  sim::SimTime completed_at;
};

class MtpEndpoint {
 public:
  using MessageHandler = std::function<void(const ReceivedMessage&)>;
  using DoneFn = std::function<void(proto::MsgId, sim::SimTime fct)>;

  MtpEndpoint(net::Host& host, MtpConfig cfg);
  ~MtpEndpoint();
  MtpEndpoint(const MtpEndpoint&) = delete;
  MtpEndpoint& operator=(const MtpEndpoint&) = delete;

  /// Send an independent message of `bytes` payload to `dst`. Returns its id.
  proto::MsgId send_message(net::NodeId dst, std::int64_t bytes,
                            MessageOptions opts = {}, DoneFn on_delivered = {});

  /// Deliver completed messages addressed to `port` to `handler`.
  void listen(proto::PortNum port, MessageHandler handler);
  /// Catch-all for ports without a specific listener.
  void listen_any(MessageHandler handler) { default_handler_ = std::move(handler); }

  /// Fine-grained goodput hook: fires once per *new* (non-duplicate) data
  /// packet with its payload size. Experiments meter receive rate with this
  /// rather than waiting for whole messages.
  std::function<void(std::int64_t bytes)> on_payload;

  /// Fires when an outgoing message is busy-rejected by the receiver or an
  /// in-network device (explicit kBusy NACK, never a silent drop). `expired`
  /// means the rejecter shed it because its deadline had passed. The message
  /// is aborted — its DoneFn will never fire — so RPC layers can fail fast
  /// or consult their retry budget instead of burning the full timeout.
  std::function<void(proto::MsgId, net::NodeId dst, bool expired)> on_rejected;

  /// Ask the network to avoid `pathlet` for `duration` (Path Exclude list).
  void exclude_pathlet(proto::PathletId pathlet, sim::SimTime duration);

  // --- Introspection (tests, experiments).
  const PathletCc* pathlet_cc(proto::PathletId id, proto::TrafficClassId tc) const;
  /// Pathlets with a live congestion-control algorithm (charge-only entries
  /// that never saw feedback or loss don't count).
  std::size_t known_pathlets() const {
    std::size_t n = 0;
    for (const auto& [key, st] : cc_) n += st.algo != nullptr;
    return n;
  }
  std::size_t outstanding_messages() const { return outgoing_.size(); }
  std::uint64_t pkts_sent() const { return pkts_sent_; }
  std::uint64_t pkts_retransmitted() const { return pkts_retx_; }
  std::uint64_t msgs_delivered() const { return msgs_delivered_; }
  /// Packets dropped on payload checksum mismatch (fault injection).
  std::uint64_t checksum_drops() const { return checksum_drops_; }
  /// Corrupted packets that *passed* verification — must stay 0; the chaos
  /// harness asserts on it (ground truth vs the checksum mechanism).
  std::uint64_t corrupted_delivered() const { return corrupted_delivered_; }
  /// Current RTO backoff multiplier (1.0 = no consecutive timeouts).
  double rto_backoff() const { return rto_backoff_; }
  // --- mtp::overload counters (all zero while overload control is off).
  /// Outgoing messages aborted by a busy-reject.
  std::uint64_t msgs_rejected() const { return msgs_rejected_; }
  /// Busy-rejects this endpoint emitted as a receiver.
  std::uint64_t busy_rejects_sent() const { return busy_rejects_sent_; }
  /// ACKs stamped with an admission grant.
  std::uint64_t grants_issued() const { return grants_issued_; }
  /// Fresh messages shed because their deadline had already passed.
  std::uint64_t deadline_expiries() const { return deadline_expiries_; }
  const overload::Admission& admission() const { return admission_; }
  sim::SimTime srtt() const { return srtt_; }
  const MtpConfig& config() const { return cfg_; }
  net::Host& host() { return host_; }
  /// Current path (pathlet ids) learned for a destination; empty if unknown.
  std::vector<proto::PathletId> current_path(net::NodeId dst) const;

 private:
  // --- Interned paths: the (pathlet, tc) sets packets get charged to.
  // Path 0 is always the default path {kDefaultPathlet}. Destinations with
  // no feedback yet get a per-destination virtual pathlet (high bit set) so
  // their TCP-like default windows evolve independently.
  static constexpr proto::PathletId kVirtualPathletFlag = 0x8000'0000;
  using PathIndex = std::uint16_t;
  struct CcKey {
    proto::PathletId pathlet;
    proto::TrafficClassId tc;
    bool operator==(const CcKey&) const = default;
  };
  struct CcKeyHash {
    std::size_t operator()(const CcKey& k) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(k.pathlet) << 8) | k.tc);
    }
  };

  enum class PktState : std::uint8_t { kUnsent, kInflight, kSacked, kLost };

  /// Per-packet sender state, one 16-byte record instead of four parallel
  /// vectors: a 1-packet message costs one small allocation, not four.
  struct PktMeta {
    sim::SimTime sent_at;
    PathIndex charged_path = 0;
    std::uint8_t flags = 0;  ///< bits 0-1: PktState, bit 2: retransmitted (Karn)
  };

  /// FIFO of packet numbers. A vector with a head cursor: unlike std::deque
  /// (whose empty libstdc++ instance still owns a 512-byte chunk) it holds no
  /// memory until used, which dominates idle per-message footprint at scale.
  class PktFifo {
   public:
    bool empty() const { return head_ == q_.size(); }
    std::size_t size() const { return q_.size() - head_; }
    std::uint32_t front() const { return q_[head_]; }
    void push_back(std::uint32_t v) { q_.push_back(v); }
    void pop_front() {
      if (++head_ == q_.size()) {  // drained: restart at the buffer's front
        q_.clear();
        head_ = 0;
      }
    }

   private:
    std::vector<std::uint32_t> q_;
    std::size_t head_ = 0;
  };

  struct OutgoingMessage {
    proto::MsgId id = 0;
    net::NodeId dst = net::kInvalidNode;
    MessageOptions opts;
    std::int64_t total_bytes = 0;
    std::uint32_t total_pkts = 0;
    std::vector<PktMeta> pkts;  // per packet
    std::uint32_t next_unsent = 0;
    std::uint32_t sacked = 0;
    PktFifo retx_queue;
    /// Packet numbers in transmission order; the front is always the oldest
    /// in-flight packet, so expiry checks are O(1) until a loss.
    PktFifo inflight_fifo;
    /// True while the message sits in its SendGroup queue (has packets to
    /// send but may be window-blocked). Guards against double-enqueue.
    bool send_queued = false;
    sim::SimTime started_at;
    /// Wheel timer for the oldest in-flight packet's deadline; null when
    /// nothing is in flight.
    sim::TimerId retx_timer;
    DoneFn done;

    PktState state(std::uint32_t pkt) const {
      return static_cast<PktState>(pkts[pkt].flags & 0x3);
    }
    void set_state(std::uint32_t pkt, PktState s) {
      pkts[pkt].flags =
          static_cast<std::uint8_t>((pkts[pkt].flags & ~0x3u) | static_cast<std::uint8_t>(s));
    }
    bool retransmitted(std::uint32_t pkt) const { return (pkts[pkt].flags & 0x4) != 0; }
    void mark_retransmitted(std::uint32_t pkt) { pkts[pkt].flags |= 0x4; }

    std::uint32_t pkt_len(std::uint32_t pkt, std::uint32_t mss) const {
      const std::uint64_t off = static_cast<std::uint64_t>(pkt) * mss;
      return static_cast<std::uint32_t>(
          std::min<std::uint64_t>(mss, static_cast<std::uint64_t>(total_bytes) - off));
    }
  };

  struct IncomingMessage {
    std::vector<bool> have;
    std::uint32_t received = 0;
    std::uint32_t gap_checked = 0;  ///< packets below this were gap-NACKed once
    std::uint32_t total_pkts = 0;
    std::int64_t total_bytes = 0;
    std::uint8_t priority = 0;
    proto::TrafficClassId tc = 0;
    proto::PortNum src_port = 0;
    proto::PortNum dst_port = 0;
    std::optional<net::AppData> app;
    std::optional<proto::StreamHeader> stream;
    std::uint64_t deadline_ns = 0;  ///< from the packet-0 overload block
    sim::SimTime first_pkt_at;
  };

  struct MsgKey {
    net::NodeId src;
    proto::MsgId id;
    bool operator==(const MsgKey&) const = default;
  };
  struct MsgKeyHash {
    std::size_t operator()(const MsgKey& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.id);
    }
  };

  void on_packet(net::Packet&& pkt);
  void on_data(net::Packet&& pkt);
  void on_ack(const net::Packet& pkt);
  struct PendingAck;
  void queue_ack(const net::Packet& data, bool nack,
                 std::vector<proto::SackEntry> gap_nacks, bool flush_now);
  void emit_ack(const net::Packet& data, std::vector<proto::SackEntry>&& sacks,
                std::vector<proto::SackEntry>&& nacks);
  void flush_acks();
  void pump();
  void pump_srpt();
  /// Send msg's pending retransmissions then unsent packets while admission
  /// allows. Returns false if it stopped window-blocked with work remaining.
  bool service_msg(OutgoingMessage& msg);
  bool try_send_pkt(OutgoingMessage& msg, std::uint32_t pkt, bool is_retx);
  void send_data_pkt(OutgoingMessage& msg, std::uint32_t pkt, PathIndex path);
  void complete_outgoing(OutgoingMessage& msg);
  void on_retx_timer(proto::MsgId id);
  static void retx_fire(void* self, std::uint64_t id);  ///< wheel trampoline
  void arm_retx(OutgoingMessage& msg, sim::SimTime deadline);
  void rtt_sample(sim::SimTime sample);
  sim::SimTime rto() const;

  PathletCc& cc(proto::PathletId pathlet, proto::TrafficClassId tc,
                proto::FeedbackType type_hint);
  /// Apply on_loss at most once per RTT per (pathlet, TC).
  void penalize(proto::PathletId pathlet, proto::TrafficClassId tc, LossKind kind);
  PathIndex intern_path(const std::vector<proto::PathletId>& pathlets);
  bool admit(PathIndex path, proto::TrafficClassId tc, std::int64_t bytes);
  void charge(PathIndex path, proto::TrafficClassId tc, std::int64_t bytes);
  void uncharge(PathIndex path, proto::TrafficClassId tc, std::int64_t bytes);
  std::vector<proto::PathRef> active_exclusions();

  // --- mtp::overload: receiver grants pace the sender per destination, and
  // busy-rejects abort outgoing messages instead of letting them time out.
  bool grant_admit(net::NodeId dst, std::int64_t bytes);
  void grant_charge(net::NodeId dst, std::int64_t bytes);
  void grant_uncharge(net::NodeId dst, std::int64_t bytes);
  void abort_outgoing(proto::MsgId id, bool expired);
  void reject_message(const MsgKey& key, const net::Packet& data,
                      std::uint8_t flags);
  void send_busy_reject(const net::Packet& data, std::uint8_t flags);

  net::Host& host_;
  MtpConfig cfg_;
  sim::Simulator& sim_;

  /// Everything the sender tracks per (pathlet, TC), in one map so the
  /// admit/charge/uncharge hot path does a single hash lookup (three separate
  /// maps before). `algo` is created lazily on first feedback/ack/loss;
  /// `last_decrease` rate-limits multiplicative decreases — losses within
  /// one RTT are a single congestion event and must cut the window once.
  struct CcState {
    std::unique_ptr<PathletCc> algo;
    std::int64_t inflight = 0;
    sim::SimTime last_decrease;
    bool decreased_once = false;
  };

  /// Pending-send queue for one (dst, tc, priority) bucket. Admission is
  /// per-(path, tc) and a message's path is a pure function of its
  /// destination, so when the front of a group is window-blocked the rest of
  /// the group is too: pump() parks the whole group after one failed admit
  /// and moves on. That makes a pump cost O(groups + packets actually sent)
  /// instead of O(all queued messages) — the property that keeps 100k
  /// concurrent messages serviceable (the old global scan re-sorted and
  /// re-visited every parked message on every ack).
  struct SendGroup {
    net::NodeId dst;
    proto::TrafficClassId tc = 0;
    std::uint8_t priority = 0;
    std::deque<proto::MsgId> q;  ///< FIFO; retransmit-bearing messages jump the line
  };
  SendGroup& group_for(const OutgoingMessage& msg);
  /// Queue msg for pump service. `urgent` puts it at the front of its group
  /// (retransmissions unblock completion, mirroring the old retx-first rule).
  void enqueue_send(OutgoingMessage& msg, bool urgent);

  // --- Sender.
  proto::MsgId next_msg_id_ = 1;
  std::unordered_map<proto::MsgId, OutgoingMessage> outgoing_;
  /// Groups ordered by (priority desc, creation); few in practice. Stable
  /// pointers — indexed by group_index_.
  std::vector<std::unique_ptr<SendGroup>> groups_;
  std::unordered_map<std::uint64_t, SendGroup*> group_index_;
  std::vector<proto::MsgId> srpt_order_;  ///< SRPT only: ids in arrival order
  std::vector<proto::MsgId> pump_order_;  ///< pump_srpt() scratch (reused)
  std::unordered_map<CcKey, CcState, CcKeyHash> cc_;
  std::vector<std::vector<proto::PathletId>> paths_;  ///< interned path table
  std::unordered_map<net::NodeId, PathIndex> current_path_;
  std::unordered_map<proto::PathletId, sim::SimTime> excluded_until_;
  std::unordered_map<proto::PathletId, int> consecutive_losses_;
  sim::SimTime srtt_;
  sim::SimTime rttvar_;
  bool rtt_valid_ = false;
  /// Exponential RTO backoff under consecutive timeouts (capped ×64,
  /// clamped to max_rto by rto()); reset by any new SACK progress. Karn-safe:
  /// srtt_ only ever learns from non-retransmitted packets.
  double rto_backoff_ = 1.0;
  static constexpr double kMaxRtoBackoff = 64.0;
  /// Per-message wheel timers can expire many messages inside what used to
  /// be one scan tick; the backoff doubles at most once per scan period.
  sim::SimTime last_backoff_at_;
  std::uint64_t pkts_sent_ = 0;
  std::uint64_t pkts_retx_ = 0;
  std::uint64_t checksum_drops_ = 0;
  std::uint64_t corrupted_delivered_ = 0;

  /// Per-destination admission credit (sender side of mtp::overload). The
  /// receiver's grant caps new in-flight bytes; inflight == 0 always admits
  /// one packet so a zero/stale grant can never wedge a sender.
  struct DstGrant {
    std::int64_t grant = 0;
    std::int64_t inflight = 0;
  };
  std::unordered_map<net::NodeId, DstGrant> grants_;
  std::uint64_t msgs_rejected_ = 0;

  // --- Receiver.
  std::unordered_map<MsgKey, IncomingMessage, MsgKeyHash> incoming_;
  std::unordered_set<MsgKey, MsgKeyHash> completed_;
  std::deque<MsgKey> completed_fifo_;
  std::unordered_map<proto::PortNum, MessageHandler> handlers_;
  MessageHandler default_handler_;
  std::uint64_t msgs_delivered_ = 0;

  /// ACK coalescing state: the next ACK to each source, built from the most
  /// recent data packet (template) plus accumulated SACK entries.
  struct PendingAck {
    net::Packet last_data;  ///< template: ports, feedback echo, tc, priority
    std::vector<proto::SackEntry> sacks;
    std::vector<proto::SackEntry> nacks;
  };
  std::unordered_map<net::NodeId, PendingAck> pending_acks_;
  std::unique_ptr<sim::PeriodicTask> ack_flush_task_;
  std::uint64_t acks_sent_ = 0;

  /// Receiver side of mtp::overload: service-rate EWMA feeding grants, plus
  /// the busy-rejected tombstones that quench retransmissions of messages
  /// this endpoint refused (a message must never be both rejected and
  /// delivered, so rejects are remembered exactly like completions).
  overload::Admission admission_;
  std::unordered_set<MsgKey, MsgKeyHash> rejected_;
  std::deque<MsgKey> rejected_fifo_;
  std::uint64_t busy_rejects_sent_ = 0;
  std::uint64_t grants_issued_ = 0;
  std::uint64_t deadline_expiries_ = 0;

  telemetry::Registration metrics_;
  telemetry::Registration overload_metrics_;

 public:
  std::uint64_t acks_sent() const { return acks_sent_; }
};

}  // namespace mtp::core
