// mtp::stream — ordered, reliable record streams over MTP messages.
//
// The paper's message transport deliberately has no ordering or streaming:
// every message is independent. Real workloads (telemetry fan-in, video,
// bulk RPC pipelines) still want ordered streams, and a single bursty-loss
// episode stalls a 1-packet message for a full RTO. Following the Serval
// MSP design (stream layered above an unreliable datagram core), this layer
// multiplexes sequence-numbered *segments* — each one MTP message — into
// ordered streams, with:
//
//   - Reassembly/ordering: a bounded reorder window at the receiver,
//     duplicate suppression, and cumulative + selective progress feedback
//     (StreamHeader kFeedback messages) that slides the sender's window.
//   - Optional systematic FEC: every k data segments are coded into r
//     parity segments (XOR for r = 1, GF(256) Cauchy-RS for r > 1, see
//     fec.hpp) so a segment lost to a Gilbert-Elliott burst is rebuilt at
//     the receiver without waiting out a retransmission timeout.
//   - Adaptive redundancy: r follows the receiver's loss telemetry
//     (gap_events on feedback) through an EWMA, decaying exponentially to
//     zero on clean paths.
//   - Stream-level RTO fallback on the simulator's timer wheel: MTP already
//     retransmits each segment message forever, so this only fires when the
//     *stream* state is gone (receiver crash wiped the mux) or a segment
//     fell outside the reorder window; after max_stream_retx attempts the
//     stream surfaces a clean StreamError instead of hanging.
//
// Segment payload content may ride in AppData (checksum-covered, verified
// against an oracle in tests); size-only streams (empty content) model
// payload bytes without materializing them, like the rest of the simulator.
// Per stream, segments must be uniformly content-carrying or size-only.
//
// Shard safety: all state of a StreamMux is touched only from its host's
// shard (MTP delivery callbacks, its simulator's timer wheel), so sharded
// runs stay bit-identical to serial ones.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mtp/endpoint.hpp"
#include "mtp/stream/fec.hpp"
#include "sim/timer_wheel.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::stream {

struct StreamConfig {
  /// Bytes per segment; <= the endpoint mss so each segment is one packet
  /// (one MTP message), the unit FEC repairs.
  std::uint32_t segment_bytes = 1000;
  /// Receiver buffer span in segments beyond the in-order point; segments
  /// past it are dropped (stream-level flow control keeps senders inside).
  std::uint32_t reorder_window = 4096;
  /// Sender cap on segments submitted beyond the cumulative ack.
  std::uint32_t window_segments = 256;

  std::uint8_t fec_k = 4;  ///< data segments per FEC group (<= fec::kMaxK)
  std::uint8_t fec_r = 0;  ///< parities per group (<= fec::kMaxR); 0 = ARQ only
  bool adaptive_fec = false;  ///< drive r from receiver loss telemetry
  std::uint8_t fec_r_max = 3;
  double fec_loss_decay = 0.5;   ///< EWMA retention per feedback round
  double fec_loss_per_r = 0.01;  ///< one parity per this much loss fraction
  /// Emit parity for a partial group this long after its first segment, so
  /// the tail of a burst is covered too.
  sim::SimTime group_flush_delay = sim::SimTime::microseconds(150);

  std::uint32_t feedback_every = 8;  ///< delivered segments per feedback msg
  sim::SimTime feedback_delay = sim::SimTime::microseconds(100);

  sim::SimTime stream_rto = sim::SimTime::milliseconds(4);
  int max_stream_retx = 8;

  std::uint8_t priority = 0;
  proto::TrafficClassId tc = 0;
};

enum class StreamError : std::uint8_t {
  kTimedOut = 0,   ///< stream-level retransmissions exhausted
  kPeerReset = 1,  ///< receiver lost stream state (device crash) mid-stream
};
const char* to_string(StreamError e);

class StreamMux;

/// Sender side of one stream. Created by StreamMux::open(); owned by the mux.
class Stream {
 public:
  std::uint32_t id() const { return id_; }
  net::NodeId dst() const { return dst_; }

  /// Append one record of `bytes` payload, segmented internally. `content`,
  /// when given, must be exactly `bytes` long and is carried end to end.
  void write(std::int64_t bytes, std::string_view content = {});
  /// Mark end of stream; on_complete fires once everything is acked.
  void finish();

  bool complete() const { return complete_; }
  bool failed() const { return failed_; }
  std::uint32_t acked_seq() const { return cum_; }       ///< stream-acked frontier
  std::uint32_t next_seq() const { return next_seq_; }
  std::uint8_t active_r() const { return r_active_; }    ///< current redundancy
  double loss_ewma() const { return loss_ewma_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t parity_sent() const { return parity_sent_; }
  std::uint64_t stream_retx() const { return stream_retx_; }
  std::uint64_t bytes_submitted() const { return bytes_submitted_; }

  std::function<void()> on_complete;
  std::function<void(StreamError)> on_error;

 private:
  friend class StreamMux;
  Stream(StreamMux& mux, std::uint32_t id, net::NodeId dst, proto::PortNum dst_port,
         StreamConfig cfg);

  static constexpr std::uint8_t kAcked = 1, kFin = 2;
  struct Seg {
    std::uint64_t start = 0;  ///< stream byte offset
    std::uint32_t len = 0;
    std::uint8_t flags = 0;
    std::uint8_t retx = 0;
    std::string content;
  };
  Seg& seg(std::uint32_t s) { return segs_[s - cum_]; }

  void maybe_submit();
  void submit(std::uint32_t seq);
  void flush_group();
  void on_feedback(const proto::StreamHeader& fb);
  void rto_fire();
  void arm_rto();
  void cancel_timers();
  void quarantine();  ///< dead with the device: failed, silent, object kept
  void fail(StreamError e);

  StreamMux& mux_;
  std::uint32_t id_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  StreamConfig cfg_;

  std::deque<Seg> segs_;  ///< seqs [cum_, next_seq_)
  std::uint32_t cum_ = 0;
  std::uint32_t next_seq_ = 0;
  std::uint32_t next_submit_ = 0;
  std::uint64_t stream_bytes_ = 0;
  bool finished_ = false, complete_ = false, failed_ = false;

  // FEC group under construction (submitted data segments only).
  std::uint32_t group_id_ = 0;
  std::uint32_t group_base_ = 0;
  std::vector<std::uint32_t> group_lens_;
  std::vector<std::string> group_contents_;

  std::uint8_t r_active_ = 0;
  double loss_ewma_ = 0.0;
  bool fb_seen_ = false;
  std::uint32_t fb_epoch_ = 0;
  std::uint64_t last_fb_gaps_ = 0;
  int backoff_ = 1;

  sim::TimerId rto_timer_, flush_timer_;
  std::uint64_t segments_sent_ = 0, parity_sent_ = 0, stream_retx_ = 0;
  std::uint64_t bytes_submitted_ = 0;
};

/// Stream endpoint bound to one MtpEndpoint port: demuxes incoming stream
/// messages (data/parity/feedback), owns sender Streams and per-(src, id)
/// receiver state, and reports stream metrics.
class StreamMux {
 public:
  StreamMux(core::MtpEndpoint& ep, proto::PortNum port, StreamConfig cfg = {});
  ~StreamMux();
  StreamMux(const StreamMux&) = delete;
  StreamMux& operator=(const StreamMux&) = delete;

  Stream& open(net::NodeId dst, proto::PortNum dst_port) { return open(dst, dst_port, cfg_); }
  Stream& open(net::NodeId dst, proto::PortNum dst_port, StreamConfig cfg);
  Stream* stream(std::uint32_t id);

  /// Receiver hooks, fired in order for every delivered segment / after each
  /// in-order advance. `repaired` marks FEC-reconstructed segments.
  std::function<void(net::NodeId src, std::uint32_t stream_id, std::uint32_t seq,
                     std::uint32_t len, const std::string& content, bool repaired)>
      on_segment;
  std::function<void(net::NodeId src, std::uint32_t stream_id, std::uint64_t in_order_bytes)>
      on_progress;
  std::function<void(net::NodeId src, std::uint32_t stream_id)> on_stream_complete;

  /// Device-crash semantics (fault::FaultInjector::crash_device): wipe all
  /// receiver state and go deaf until restart(). Local sender streams are
  /// quarantined — kept alive in a failed state (raw Stream* held by callers
  /// stays valid; writes become no-ops) with no on_error, since the app died
  /// with the device. Remote senders talking to a crashed mux surface
  /// StreamError::kPeerReset (their progress regressed) or kTimedOut once
  /// stream-level retransmissions exhaust.
  void crash();
  void restart() { offline_ = false; }
  bool offline() const { return offline_; }

  struct Stats {
    std::uint64_t segments_sent = 0, parity_sent = 0, stream_retx = 0;
    std::uint64_t bytes_submitted = 0;
    std::uint64_t segments_received = 0, parity_received = 0;
    std::uint64_t segments_delivered = 0, bytes_delivered = 0;
    std::uint64_t fec_repairs = 0;    ///< segments rebuilt from parity
    std::uint64_t arq_recovered = 0;  ///< gap-filling (re)transmitted arrivals
    std::uint64_t dup_segments = 0, reorder_drops = 0;
    std::uint64_t gap_events = 0, feedback_sent = 0;
    std::uint64_t streams_completed = 0, streams_failed = 0;
  };
  Stats stats() const;
  /// Deterministic fold of receiver state + counters (shard-equality checks).
  std::uint64_t digest() const;

  const StreamConfig& config() const { return cfg_; }
  proto::PortNum port() const { return port_; }
  core::MtpEndpoint& endpoint() { return ep_; }

 private:
  friend class Stream;

  struct RxKey {
    net::NodeId src;
    std::uint32_t id;
    bool operator==(const RxKey&) const = default;
  };
  struct RxKeyHash {
    std::size_t operator()(const RxKey& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) | k.id);
    }
  };
  static std::uint64_t pack(RxKey k) {
    return (static_cast<std::uint64_t>(k.src) << 32) | k.id;
  }

  static constexpr std::uint8_t kRxRepaired = 1, kRxFin = 2, kRxOrigSeen = 4;
  struct RxSeg {
    std::uint32_t len = 0;
    std::uint8_t flags = 0;
    std::string content;
  };
  struct ParityGroup {
    std::vector<std::uint32_t> lens;
    std::vector<std::pair<std::uint8_t, std::string>> parities;
  };
  struct RxState {
    std::uint32_t cum = 0;       ///< next expected (all below delivered)
    std::uint32_t max_next = 0;  ///< highest seq observed + 1 (gap detection)
    std::uint32_t fin_seq = 0;
    bool fin_known = false;
    std::uint64_t bytes = 0;
    std::uint64_t repaired = 0;
    std::uint32_t gaps = 0;  ///< cumulative segments first observed missing
    std::map<std::uint32_t, RxSeg> buf;  ///< [cum - retention, cum + window)
    std::map<std::uint32_t, ParityGroup> parity;  ///< keyed by group base seq
    proto::PortNum peer_port = 0;
    std::uint32_t epoch = 0;  ///< rx-state incarnation, echoed on feedback
    std::uint32_t since_fb = 0;
    bool dirty = false;
    sim::TimerId fb_timer;
  };
  struct Tombstone {
    std::uint32_t next_seq = 0;
    std::uint32_t epoch = 0;
    std::uint64_t bytes = 0;
  };

  void on_message(const core::ReceivedMessage& m);
  void rx_data(const core::ReceivedMessage& m, const proto::StreamHeader& sh);
  void rx_parity(const core::ReceivedMessage& m, const proto::StreamHeader& sh);
  void try_repair(RxKey key, RxState& st, std::uint32_t base);
  void deliver(RxKey key, RxState& st);
  void note_feedback(RxKey key, RxState& st, bool immediate);
  void send_feedback(RxKey key, RxState& st);
  void ack_tombstone(RxKey key, const Tombstone& t, proto::PortNum peer_port);
  void complete_rx(RxKey key, RxState& st);
  void send_data(Stream& s, std::uint32_t seq);
  void send_parity(Stream& s, std::uint32_t base, std::uint8_t index, std::uint8_t r,
                   const std::vector<std::uint32_t>& lens, std::string content);
  void trace_stream(telemetry::TraceEventType type, net::NodeId peer, std::uint32_t stream_id,
                    std::uint32_t seq, std::uint32_t bytes, std::uint64_t value);

  static void fb_fire(void* self, std::uint64_t key);
  static void rto_tramp(void* self, std::uint64_t stream_id);
  static void flush_tramp(void* self, std::uint64_t stream_id);

  core::MtpEndpoint& ep_;
  sim::Simulator& sim_;
  proto::PortNum port_;
  StreamConfig cfg_;
  bool offline_ = false;

  std::uint32_t next_stream_id_ = 1;
  /// Incarnation counter for receiver states. Survives crash() on purpose:
  /// it stands in for the random nonce a real implementation would use to
  /// tell a rebooted peer from a reordered one.
  std::uint32_t rx_epoch_ = 0;

  std::unordered_map<std::uint32_t, std::unique_ptr<Stream>> streams_;
  std::unordered_map<RxKey, RxState, RxKeyHash> rx_;
  std::unordered_map<RxKey, Tombstone, RxKeyHash> done_;
  std::deque<RxKey> done_fifo_;
  static constexpr std::size_t kDoneCache = 1024;

  std::uint64_t segments_received_ = 0, parity_received_ = 0;
  std::uint64_t segments_delivered_ = 0, bytes_delivered_ = 0;
  std::uint64_t fec_repairs_ = 0, arq_recovered_ = 0;
  std::uint64_t dup_segments_ = 0, reorder_drops_ = 0;
  std::uint64_t feedback_sent_ = 0;
  std::uint64_t gaps_retired_ = 0;  ///< gaps of completed/crashed rx states
  std::uint64_t streams_completed_ = 0, streams_failed_ = 0;
  telemetry::Registration metrics_;
};

}  // namespace mtp::stream
