#include "mtp/stream/stream.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "telemetry/trace.hpp"

namespace mtp::stream {

namespace {
/// Wire size modeled for a feedback message (cum + sacks + telemetry).
constexpr std::int64_t kFeedbackBytes = 64;
}  // namespace

const char* to_string(StreamError e) {
  switch (e) {
    case StreamError::kTimedOut: return "timed_out";
    case StreamError::kPeerReset: return "peer_reset";
  }
  return "?";
}

// ---------------------------------------------------------------- Stream ---

Stream::Stream(StreamMux& mux, std::uint32_t id, net::NodeId dst, proto::PortNum dst_port,
               StreamConfig cfg)
    : mux_(mux), id_(id), dst_(dst), dst_port_(dst_port), cfg_(cfg) {
  cfg_.fec_k = std::clamp<std::uint8_t>(cfg_.fec_k, 1, fec::kMaxK);
  cfg_.fec_r = std::min<std::uint8_t>(cfg_.fec_r, fec::kMaxR);
  cfg_.fec_r_max = std::min<std::uint8_t>(cfg_.fec_r_max, fec::kMaxR);
  r_active_ = cfg_.fec_r;
}

void Stream::write(std::int64_t bytes, std::string_view content) {
  if (failed_ || finished_ || bytes <= 0) return;
  std::int64_t off = 0;
  while (off < bytes) {
    const auto len = static_cast<std::uint32_t>(
        std::min<std::int64_t>(cfg_.segment_bytes, bytes - off));
    Seg s;
    s.start = stream_bytes_;
    s.len = len;
    if (!content.empty()) s.content = std::string(content.substr(off, len));
    stream_bytes_ += len;
    segs_.push_back(std::move(s));
    ++next_seq_;
    off += len;
  }
  maybe_submit();
}

void Stream::finish() {
  if (failed_ || finished_) return;
  finished_ = true;
  Seg s;
  s.start = stream_bytes_;
  s.flags = kFin;
  segs_.push_back(std::move(s));
  ++next_seq_;
  maybe_submit();
}

void Stream::maybe_submit() {
  while (next_submit_ < next_seq_ && next_submit_ - cum_ < cfg_.window_segments) {
    submit(next_submit_++);
  }
}

void Stream::submit(std::uint32_t seq) {
  Seg& s = seg(seq);
  // Parity covers only real data segments; the FIN marker flushes whatever
  // partial group precedes it so the stream tail is coded too.
  if (s.flags & kFin) flush_group();
  mux_.send_data(*this, seq);
  ++segments_sent_;
  bytes_submitted_ += std::max<std::uint32_t>(1, s.len);
  if (!(s.flags & kFin) && r_active_ > 0) {
    // Adaptive feedback can zero r_active_ mid-group and raise it again
    // before the flush timer fires; segments submitted while r == 0 were
    // never appended, so this group would go non-contiguous. The parity
    // header advertises base..base+k-1 — encoding any other seqs would make
    // the receiver rebuild a lost segment from the wrong data. Flush the
    // stale group and start fresh instead.
    if (!group_lens_.empty() && seq != group_base_ + group_lens_.size()) flush_group();
    if (group_lens_.empty()) {
      group_base_ = seq;
      flush_timer_ = mux_.sim_.timers().arm(mux_.sim_.now() + cfg_.group_flush_delay,
                                            &StreamMux::flush_tramp, &mux_, id_);
    }
    group_lens_.push_back(s.len);
    group_contents_.push_back(s.content);
    if (group_lens_.size() >= cfg_.fec_k) flush_group();
  }
  arm_rto();
}

void Stream::flush_group() {
  mux_.sim_.timers().cancel(flush_timer_);
  if (group_lens_.empty()) return;
  const unsigned r = r_active_;
  if (r > 0) {
    auto parities = fec::encode(group_contents_, r);
    for (unsigned j = 0; j < r; ++j) {
      mux_.send_parity(*this, group_base_, static_cast<std::uint8_t>(j),
                       static_cast<std::uint8_t>(r), group_lens_, std::move(parities[j]));
      ++parity_sent_;
      bytes_submitted_ += *std::max_element(group_lens_.begin(), group_lens_.end());
    }
  }
  ++group_id_;
  group_lens_.clear();
  group_contents_.clear();
}

void Stream::on_feedback(const proto::StreamHeader& fb) {
  if (complete_ || failed_) return;
  // Epoch rules: the receiver stamps each rx-state incarnation. Equal epoch
  // feedback is processed additively (stale lower cums are harmless under
  // max()); older epochs are pre-crash stragglers; a NEWER epoch means the
  // receiver rebuilt state from scratch — fatal if we had acked progress.
  if (!fb_seen_) {
    fb_seen_ = true;
    fb_epoch_ = fb.fec_group;
    last_fb_gaps_ = fb.gap_events;
  } else if (fb.fec_group < fb_epoch_) {
    return;
  } else if (fb.fec_group > fb_epoch_) {
    if (fb.seq < cum_) {
      fail(StreamError::kPeerReset);
      return;
    }
    fb_epoch_ = fb.fec_group;
    last_fb_gaps_ = fb.gap_events;
  }
  if (fb.seq > next_submit_) return;  // malformed: acks beyond what was sent

  const std::uint32_t old_cum = cum_;
  while (cum_ < fb.seq) {
    segs_.pop_front();
    ++cum_;
  }
  for (const std::uint32_t s : fb.sack) {
    if (s >= cum_ && s < next_submit_) seg(s).flags |= kAcked;
  }

  if (cfg_.adaptive_fec) {
    const std::uint64_t d_gaps =
        fb.gap_events > last_fb_gaps_ ? fb.gap_events - last_fb_gaps_ : 0;
    last_fb_gaps_ = std::max<std::uint64_t>(last_fb_gaps_, fb.gap_events);
    const double d_prog = std::max<double>(1.0, cum_ - old_cum);
    const double sample = static_cast<double>(d_gaps) / (static_cast<double>(d_gaps) + d_prog);
    loss_ewma_ = cfg_.fec_loss_decay * loss_ewma_ + (1.0 - cfg_.fec_loss_decay) * sample;
    if (loss_ewma_ < 0.5 * cfg_.fec_loss_per_r) {
      r_active_ = 0;  // clean path: redundancy decays to zero
    } else {
      r_active_ = static_cast<std::uint8_t>(std::min<double>(
          cfg_.fec_r_max, std::ceil(loss_ewma_ / cfg_.fec_loss_per_r)));
    }
  }

  if (cum_ > old_cum) {
    backoff_ = 1;
    mux_.sim_.timers().cancel(rto_timer_);
  }
  maybe_submit();
  if (finished_ && cum_ == next_seq_) {
    cancel_timers();
    complete_ = true;
    ++mux_.streams_completed_;
    if (on_complete) on_complete();
    return;
  }
  arm_rto();
}

void Stream::arm_rto() {
  if (complete_ || failed_ || cum_ == next_submit_) return;
  if (!mux_.sim_.timers().armed(rto_timer_)) {
    rto_timer_ = mux_.sim_.timers().arm(
        mux_.sim_.now() + sim::SimTime::nanoseconds(cfg_.stream_rto.ns() * backoff_),
        &StreamMux::rto_tramp, &mux_, id_);
  }
}

void Stream::rto_fire() {
  if (complete_ || failed_ || cum_ == next_submit_) return;
  // MTP keeps retransmitting each segment message on its own, so reaching
  // here repeatedly means the far stream state is gone or a segment fell
  // outside the reorder window: resend outstanding segments as fresh MTP
  // messages (the receiver dedups), give up after max_stream_retx.
  bool counted = false;
  for (std::uint32_t s = cum_; s < next_submit_; ++s) {
    Seg& sg = seg(s);
    if (sg.flags & kAcked) continue;
    if (!counted) {
      counted = true;
      if (++sg.retx > cfg_.max_stream_retx) {
        fail(StreamError::kTimedOut);
        return;
      }
    }
    mux_.send_data(*this, s);
    ++stream_retx_;
    mux_.trace_stream(telemetry::TraceEventType::kStreamRetx, dst_, id_, s, sg.len,
                      static_cast<std::uint64_t>(sg.retx));
  }
  backoff_ = std::min(backoff_ * 2, 32);
  arm_rto();
}

void Stream::cancel_timers() {
  mux_.sim_.timers().cancel(rto_timer_);
  mux_.sim_.timers().cancel(flush_timer_);
}

void Stream::quarantine() {
  cancel_timers();
  failed_ = true;
  segs_.clear();
  group_lens_.clear();
  group_contents_.clear();
}

void Stream::fail(StreamError e) {
  cancel_timers();
  failed_ = true;
  ++mux_.streams_failed_;
  segs_.clear();
  group_lens_.clear();
  group_contents_.clear();
  if (on_error) on_error(e);
}

// ------------------------------------------------------------- StreamMux ---

StreamMux::StreamMux(core::MtpEndpoint& ep, proto::PortNum port, StreamConfig cfg)
    : ep_(ep), sim_(ep.host().simulator()), port_(port), cfg_(cfg) {
  ep_.listen(port_, [this](const core::ReceivedMessage& m) { on_message(m); });
  metrics_ = telemetry::MetricRegistry::global().add(
      "stream", ep_.host().name(), [this](std::vector<telemetry::MetricSample>& out) {
        using telemetry::MetricKind;
        const Stats s = stats();
        out.push_back({"segments_sent", MetricKind::kCounter,
                       static_cast<double>(s.segments_sent)});
        out.push_back({"parity_sent", MetricKind::kCounter,
                       static_cast<double>(s.parity_sent)});
        out.push_back({"stream_retx", MetricKind::kCounter,
                       static_cast<double>(s.stream_retx)});
        out.push_back({"segments_delivered", MetricKind::kCounter,
                       static_cast<double>(s.segments_delivered)});
        out.push_back({"fec_repairs", MetricKind::kCounter,
                       static_cast<double>(s.fec_repairs)});
        out.push_back({"arq_recovered", MetricKind::kCounter,
                       static_cast<double>(s.arq_recovered)});
        out.push_back({"dup_segments", MetricKind::kCounter,
                       static_cast<double>(s.dup_segments)});
        out.push_back({"gap_events", MetricKind::kCounter,
                       static_cast<double>(s.gap_events)});
        out.push_back({"feedback_sent", MetricKind::kCounter,
                       static_cast<double>(s.feedback_sent)});
        out.push_back({"streams_completed", MetricKind::kCounter,
                       static_cast<double>(s.streams_completed)});
        out.push_back({"streams_failed", MetricKind::kCounter,
                       static_cast<double>(s.streams_failed)});
        out.push_back({"rx_buffered", MetricKind::kGauge, [this] {
                         std::size_t n = 0;
                         for (const auto& [k, st] : rx_) n += st.buf.size();
                         return static_cast<double>(n);
                       }()});
      });
}

StreamMux::~StreamMux() {
  for (auto& [id, s] : streams_) s->cancel_timers();
  for (auto& [k, st] : rx_) sim_.timers().cancel(st.fb_timer);
}

Stream& StreamMux::open(net::NodeId dst, proto::PortNum dst_port, StreamConfig cfg) {
  const std::uint32_t id = next_stream_id_++;
  auto s = std::unique_ptr<Stream>(new Stream(*this, id, dst, dst_port, cfg));
  Stream& ref = *s;
  streams_.emplace(id, std::move(s));
  return ref;
}

Stream* StreamMux::stream(std::uint32_t id) {
  const auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : it->second.get();
}

void StreamMux::crash() {
  offline_ = true;
  for (auto& [k, st] : rx_) {
    sim_.timers().cancel(st.fb_timer);
    gaps_retired_ += st.gaps;
  }
  rx_.clear();
  done_.clear();
  done_fifo_.clear();
  // Local senders die with the device. The Stream objects stay alive in a
  // failed state — callers hold raw Stream* — but no on_error is surfaced
  // into the wiped state: the app restarts from scratch.
  for (auto& [id, s] : streams_) s->quarantine();
}

void StreamMux::on_message(const core::ReceivedMessage& m) {
  if (offline_ || !m.stream) return;
  const proto::StreamHeader& sh = *m.stream;
  switch (sh.kind) {
    case proto::StreamKind::kFeedback: {
      const auto it = streams_.find(sh.stream_id);
      if (it != streams_.end()) it->second->on_feedback(sh);
      break;
    }
    case proto::StreamKind::kData:
      rx_data(m, sh);
      break;
    case proto::StreamKind::kParity:
      rx_parity(m, sh);
      break;
  }
}

void StreamMux::rx_data(const core::ReceivedMessage& m, const proto::StreamHeader& sh) {
  const RxKey key{m.src, sh.stream_id};
  if (const auto d = done_.find(key); d != done_.end()) {
    ++dup_segments_;
    ack_tombstone(key, d->second, m.src_port);
    return;
  }
  auto [it, fresh] = rx_.try_emplace(key);
  RxState& st = it->second;
  if (fresh) {
    st.epoch = ++rx_epoch_;
    st.peer_port = m.src_port;
  }
  const std::uint32_t seq = sh.seq;
  if (seq < st.cum || st.buf.contains(seq)) {
    ++dup_segments_;
    if (const auto b = st.buf.find(seq); b != st.buf.end()) {
      // The MTP-retransmitted original of a segment FEC already rebuilt.
      if ((b->second.flags & kRxRepaired) && !(b->second.flags & kRxOrigSeen)) {
        b->second.flags |= kRxOrigSeen;
      }
    }
    st.dirty = true;
    note_feedback(key, st, false);  // re-ack so a stalled sender converges
    return;
  }
  if (seq >= st.cum + cfg_.reorder_window) {
    ++reorder_drops_;
    st.dirty = true;
    note_feedback(key, st, true);
    return;
  }
  const std::uint32_t gaps_before = st.gaps;
  if (seq >= st.max_next) {
    st.gaps += seq - st.max_next;
    st.max_next = seq + 1;
  } else {
    ++arq_recovered_;  // fills a gap some retransmission path closed
  }
  RxSeg rs;
  rs.len = sh.fin() ? 0 : static_cast<std::uint32_t>(m.bytes);
  if (sh.fin()) rs.flags |= kRxFin;
  if (m.app) rs.content = m.app->value;
  st.buf.emplace(seq, std::move(rs));
  ++segments_received_;
  if (sh.fin()) {
    st.fin_known = true;
    st.fin_seq = seq;
  }
  // A data arrival can complete a previously short FEC group.
  if (const auto pit = st.parity.upper_bound(seq); pit != st.parity.begin()) {
    const auto prev = std::prev(pit);
    if (prev->first + prev->second.lens.size() > seq) try_repair(key, st, prev->first);
  }
  st.dirty = true;
  deliver(key, st);
  if (const auto live = rx_.find(key); live != rx_.end()) {
    note_feedback(key, live->second, st.gaps != gaps_before);
  }
}

void StreamMux::rx_parity(const core::ReceivedMessage& m, const proto::StreamHeader& sh) {
  const RxKey key{m.src, sh.stream_id};
  if (const auto d = done_.find(key); d != done_.end()) {
    ++dup_segments_;
    ack_tombstone(key, d->second, m.src_port);
    return;
  }
  auto [it, fresh] = rx_.try_emplace(key);
  RxState& st = it->second;
  if (fresh) {
    st.epoch = ++rx_epoch_;
    st.peer_port = m.src_port;
  }
  const std::uint32_t base = sh.seq;
  const std::uint32_t k = static_cast<std::uint32_t>(sh.seg_lens.size());
  if (k == 0 || k > fec::kMaxK) return;
  if (base + k <= st.cum) {
    ++dup_segments_;
    return;  // group already fully delivered
  }
  if (base >= st.cum + cfg_.reorder_window) {
    ++reorder_drops_;
    return;
  }
  const std::uint32_t gaps_before = st.gaps;
  // The parity proves its k data segments were sent: anything in its range
  // we have not seen yet is a detected loss.
  if (base + k > st.max_next) {
    st.gaps += base + k - st.max_next;
    st.max_next = base + k;
  }
  ParityGroup& g = st.parity[base];
  if (g.lens.empty()) g.lens = sh.seg_lens;
  bool have_row = false;
  for (const auto& [row, content] : g.parities) have_row |= row == sh.fec_index;
  if (have_row) {
    ++dup_segments_;
  } else {
    g.parities.emplace_back(sh.fec_index, m.app ? m.app->value : std::string());
    ++parity_received_;
    try_repair(key, st, base);
  }
  st.dirty = true;
  deliver(key, st);
  if (const auto live = rx_.find(key); live != rx_.end()) {
    note_feedback(key, live->second, st.gaps != gaps_before);
  }
}

void StreamMux::try_repair(RxKey key, RxState& st, std::uint32_t base) {
  const auto git = st.parity.find(base);
  if (git == st.parity.end()) return;
  ParityGroup& g = git->second;
  const std::uint32_t k = static_cast<std::uint32_t>(g.lens.size());
  std::vector<std::optional<std::string>> segments(k);
  std::vector<std::uint32_t> missing;
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto b = st.buf.find(base + i);
    if (b != st.buf.end()) {
      segments[i] = b->second.content;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) {
    st.parity.erase(git);
    return;
  }
  if (missing.size() > g.parities.size()) return;  // not enough parities yet
  if (!fec::decode(segments, g.parities)) return;
  for (const std::uint32_t i : missing) {
    const std::uint32_t seq = base + i;
    const std::uint32_t len = g.lens[i];
    RxSeg rs;
    rs.len = len;
    rs.flags = kRxRepaired;
    auto& rec = *segments[i];
    rec.resize(std::min<std::size_t>(rec.size(), len));  // drop group padding
    rs.content = std::move(rec);
    st.buf.emplace(seq, std::move(rs));
    ++st.repaired;
    ++fec_repairs_;
    trace_stream(telemetry::TraceEventType::kFecRepair, key.src, key.id, seq, len, base);
  }
  st.parity.erase(git);
}

void StreamMux::deliver(RxKey key, RxState& st) {
  bool progressed = false;
  while (true) {
    const auto it = st.buf.find(st.cum);
    if (it == st.buf.end()) break;
    RxSeg& rs = it->second;
    const std::uint32_t seq = st.cum;
    ++st.cum;
    ++st.since_fb;
    progressed = true;
    if (rs.flags & kRxFin) {
      complete_rx(key, st);
      return;
    }
    st.bytes += rs.len;
    ++segments_delivered_;
    bytes_delivered_ += rs.len;
    if (on_segment) {
      on_segment(key.src, key.id, seq, rs.len, rs.content, (rs.flags & kRxRepaired) != 0);
    }
    // Delivered entries are retained a little behind cum so parity groups
    // straddling the frontier can still decode, then pruned.
    while (!st.buf.empty() && st.buf.begin()->first + 2 * fec::kMaxK < st.cum) {
      st.buf.erase(st.buf.begin());
    }
    while (!st.parity.empty() &&
           st.parity.begin()->first + st.parity.begin()->second.lens.size() <= st.cum) {
      st.parity.erase(st.parity.begin());
    }
  }
  if (progressed && on_progress) on_progress(key.src, key.id, st.bytes);
}

void StreamMux::complete_rx(RxKey key, RxState& st) {
  send_feedback(key, st);  // final: cum = fin + 1, sender completes
  sim_.timers().cancel(st.fb_timer);
  ++streams_completed_;
  gaps_retired_ += st.gaps;  // gap_events is a counter: keep it monotone
  Tombstone t;
  t.next_seq = st.cum;
  t.epoch = st.epoch;
  t.bytes = st.bytes;
  const std::uint64_t bytes = st.bytes;
  done_.emplace(key, t);
  done_fifo_.push_back(key);
  while (done_fifo_.size() > kDoneCache) {
    done_.erase(done_fifo_.front());
    done_fifo_.pop_front();
  }
  rx_.erase(key);
  if (on_progress) on_progress(key.src, key.id, bytes);
  if (on_stream_complete) on_stream_complete(key.src, key.id);
}

void StreamMux::note_feedback(RxKey key, RxState& st, bool immediate) {
  if (!st.dirty) return;
  if (immediate || st.since_fb >= cfg_.feedback_every) {
    send_feedback(key, st);
    return;
  }
  if (!sim_.timers().armed(st.fb_timer)) {
    st.fb_timer = sim_.timers().arm(sim_.now() + cfg_.feedback_delay, &StreamMux::fb_fire,
                                    this, pack(key));
  }
}

void StreamMux::send_feedback(RxKey key, RxState& st) {
  proto::StreamHeader fb;
  fb.stream_id = key.id;
  fb.kind = proto::StreamKind::kFeedback;
  fb.seq = st.cum;
  fb.offset = st.bytes;
  fb.fec_group = st.epoch;  // feedback: rx-state incarnation
  fb.fec_repaired = st.repaired;
  fb.gap_events = st.gaps;
  for (const auto& [s, rs] : st.buf) {
    if (s < st.cum) continue;
    fb.sack.push_back(s);
    if (fb.sack.size() >= 64) break;
  }
  core::MessageOptions o;
  o.priority = cfg_.priority;
  o.tc = cfg_.tc;
  o.src_port = port_;
  o.dst_port = st.peer_port;
  o.stream = std::move(fb);
  ep_.send_message(key.src, kFeedbackBytes, std::move(o), {});
  ++feedback_sent_;
  st.since_fb = 0;
  st.dirty = false;
  sim_.timers().cancel(st.fb_timer);
}

void StreamMux::ack_tombstone(RxKey key, const Tombstone& t, proto::PortNum peer_port) {
  proto::StreamHeader fb;
  fb.stream_id = key.id;
  fb.kind = proto::StreamKind::kFeedback;
  fb.seq = t.next_seq;
  fb.offset = t.bytes;
  fb.fec_group = t.epoch;
  core::MessageOptions o;
  o.priority = cfg_.priority;
  o.tc = cfg_.tc;
  o.src_port = port_;
  o.dst_port = peer_port;
  o.stream = std::move(fb);
  ep_.send_message(key.src, kFeedbackBytes, std::move(o), {});
  ++feedback_sent_;
}

void StreamMux::send_data(Stream& s, std::uint32_t seq) {
  Stream::Seg& sg = s.seg(seq);
  proto::StreamHeader sh;
  sh.stream_id = s.id_;
  sh.kind = proto::StreamKind::kData;
  sh.seq = seq;
  sh.offset = sg.start;
  if (sg.flags & Stream::kFin) sh.flags |= proto::kStreamFin;
  core::MessageOptions o;
  o.priority = s.cfg_.priority;
  o.tc = s.cfg_.tc;
  o.src_port = port_;
  o.dst_port = s.dst_port_;
  if (!sg.content.empty()) o.app = net::AppData{{}, sg.content};
  o.stream = std::move(sh);
  ep_.send_message(s.dst_, std::max<std::int64_t>(1, sg.len), std::move(o), {});
}

void StreamMux::send_parity(Stream& s, std::uint32_t base, std::uint8_t index, std::uint8_t r,
                            const std::vector<std::uint32_t>& lens, std::string content) {
  proto::StreamHeader sh;
  sh.stream_id = s.id_;
  sh.kind = proto::StreamKind::kParity;
  sh.seq = base;
  sh.fec_group = s.group_id_;
  sh.fec_k = static_cast<std::uint8_t>(lens.size());
  sh.fec_r = r;
  sh.fec_index = index;
  sh.seg_lens = lens;
  const std::int64_t bytes = *std::max_element(lens.begin(), lens.end());
  core::MessageOptions o;
  o.priority = s.cfg_.priority;
  o.tc = s.cfg_.tc;
  o.src_port = port_;
  o.dst_port = s.dst_port_;
  if (!content.empty()) o.app = net::AppData{{}, std::move(content)};
  o.stream = std::move(sh);
  ep_.send_message(s.dst_, std::max<std::int64_t>(1, bytes), std::move(o), {});
}

void StreamMux::trace_stream(telemetry::TraceEventType type, net::NodeId peer,
                             std::uint32_t stream_id, std::uint32_t seq, std::uint32_t bytes,
                             std::uint64_t value) {
  if (!telemetry::TraceSink::enabled()) return;
  telemetry::TraceEvent ev;
  ev.t = sim_.now();
  ev.type = type;
  ev.component = ep_.host().name();
  ev.src = ep_.host().id();
  ev.dst = peer;
  ev.msg_id = stream_id;
  ev.pkt_num = seq;
  ev.bytes = bytes;
  ev.tc = cfg_.tc;
  ev.value = value;
  telemetry::trace().record(ev);
}

void StreamMux::fb_fire(void* self, std::uint64_t key) {
  auto* mux = static_cast<StreamMux*>(self);
  const RxKey k{static_cast<net::NodeId>(key >> 32), static_cast<std::uint32_t>(key)};
  const auto it = mux->rx_.find(k);
  if (it == mux->rx_.end() || !it->second.dirty) return;
  mux->send_feedback(k, it->second);
}

void StreamMux::rto_tramp(void* self, std::uint64_t stream_id) {
  auto* mux = static_cast<StreamMux*>(self);
  const auto it = mux->streams_.find(static_cast<std::uint32_t>(stream_id));
  if (it != mux->streams_.end()) it->second->rto_fire();
}

void StreamMux::flush_tramp(void* self, std::uint64_t stream_id) {
  auto* mux = static_cast<StreamMux*>(self);
  const auto it = mux->streams_.find(static_cast<std::uint32_t>(stream_id));
  if (it != mux->streams_.end()) it->second->flush_group();
}

StreamMux::Stats StreamMux::stats() const {
  Stats s;
  for (const auto& [id, st] : streams_) {
    s.segments_sent += st->segments_sent_;
    s.parity_sent += st->parity_sent_;
    s.stream_retx += st->stream_retx_;
    s.bytes_submitted += st->bytes_submitted_;
  }
  s.segments_received = segments_received_;
  s.parity_received = parity_received_;
  s.segments_delivered = segments_delivered_;
  s.bytes_delivered = bytes_delivered_;
  s.fec_repairs = fec_repairs_;
  s.arq_recovered = arq_recovered_;
  s.dup_segments = dup_segments_;
  s.reorder_drops = reorder_drops_;
  s.feedback_sent = feedback_sent_;
  s.streams_completed = streams_completed_;
  s.streams_failed = streams_failed_;
  s.gap_events = gaps_retired_;
  for (const auto& [k, st] : rx_) s.gap_events += st.gaps;
  return s;
}

std::uint64_t StreamMux::digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  std::uint64_t h = 0x5374726541764d31ULL;
  std::vector<std::pair<std::uint64_t, std::array<std::uint64_t, 4>>> rows;
  rows.reserve(rx_.size() + done_.size());
  for (const auto& [k, st] : rx_) {
    rows.push_back({pack(k), {st.cum, st.bytes, st.repaired, st.gaps}});
  }
  for (const auto& [k, t] : done_) {
    rows.push_back({pack(k) | (1ULL << 63), {t.next_seq, t.bytes, t.epoch, 0}});
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [k, vals] : rows) {
    h = mix(h, k);
    for (const auto v : vals) h = mix(h, v);
  }
  const Stats s = stats();
  h = mix(h, s.segments_delivered);
  h = mix(h, s.bytes_delivered);
  h = mix(h, s.fec_repairs);
  h = mix(h, s.arq_recovered);
  h = mix(h, s.dup_segments);
  h = mix(h, s.streams_completed);
  h = mix(h, s.streams_failed);
  return h;
}

}  // namespace mtp::stream
