// Systematic erasure coding for mtp::stream FEC groups (GF(256)).
//
// Every k data segments are coded into r parity segments so a receiver can
// reconstruct up to r lost segments without waiting out a retransmission
// timeout. The parity coefficient matrix is a column-normalized Cauchy
// matrix: coeff(0, i) == 1 for every i, so the single-parity case (r = 1)
// degenerates to plain XOR, and — unlike the naive Vandermonde extension
// alpha^(j*i), which is singular for some erasure patterns at r >= 3 — every
// square submatrix of a Cauchy matrix is invertible, so ANY combination of
// <= r erasures among the k data segments is recoverable from any r
// surviving parities (Reed-Solomon-style MDS property).
//
// Sized for stream groups: k <= 8 data segments, r <= 3 parities. Decoding
// is a t x t Gaussian elimination (t <= 3) plus one pass over the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mtp::stream::fec {

inline constexpr unsigned kMaxK = 8;
inline constexpr unsigned kMaxR = 3;

/// GF(256) arithmetic, polynomial 0x11d (the AES/RS field).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t gf_inv(std::uint8_t a);  ///< a != 0

/// Parity coefficient for parity row j in [0, kMaxR) and data index i in
/// [0, kMaxK). Row 0 is all-ones (XOR parity).
std::uint8_t coeff(unsigned j, unsigned i);

/// Code `data` (k = data.size() segments, possibly ragged lengths) into r
/// parity payloads. Each parity is as long as the longest data segment;
/// shorter segments are implicitly zero-padded. With all-empty data (the
/// sized-only simulation mode) the parities are empty strings.
std::vector<std::string> encode(const std::vector<std::string>& data, unsigned r);

/// Reconstruct missing data segments in place. `segments[i]` is the payload
/// of data segment i, or nullopt if it was lost; `parities` holds the
/// surviving (row index, payload) parity segments. Returns false when more
/// segments are missing than parities are available (or on a malformed
/// input); on success every segment is engaged, recovered ones padded to the
/// parity length (callers truncate to the true segment length).
bool decode(std::vector<std::optional<std::string>>& segments,
            const std::vector<std::pair<std::uint8_t, std::string>>& parities);

}  // namespace mtp::stream::fec
