#include "mtp/stream/fec.hpp"

#include <algorithm>
#include <array>

namespace mtp::stream::fec {

namespace {

// Log/exp tables for GF(256) with generator 0x03 over polynomial 0x11d.
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

// Cauchy points: x_j for parity rows, y_i for data columns, all distinct.
inline std::uint8_t cauchy(unsigned j, unsigned i) {
  return gf_inv(static_cast<std::uint8_t>(j ^ (kMaxR + i)));
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t coeff(unsigned j, unsigned i) {
  // Normalize each column by its row-0 entry so row 0 is all-ones; scaling
  // columns by nonzero constants preserves the any-submatrix-invertible
  // Cauchy property.
  return gf_mul(cauchy(j, i), gf_inv(cauchy(0, i)));
}

std::vector<std::string> encode(const std::vector<std::string>& data, unsigned r) {
  std::size_t width = 0;
  for (const auto& d : data) width = std::max(width, d.size());
  std::vector<std::string> out(r);
  for (unsigned j = 0; j < r; ++j) {
    std::string p(width, '\0');
    for (unsigned i = 0; i < data.size(); ++i) {
      const std::uint8_t c = coeff(j, i);
      const auto& d = data[i];
      for (std::size_t pos = 0; pos < d.size(); ++pos) {
        p[pos] = static_cast<char>(static_cast<std::uint8_t>(p[pos]) ^
                                   gf_mul(c, static_cast<std::uint8_t>(d[pos])));
      }
    }
    out[j] = std::move(p);
  }
  return out;
}

bool decode(std::vector<std::optional<std::string>>& segments,
            const std::vector<std::pair<std::uint8_t, std::string>>& parities) {
  const unsigned k = static_cast<unsigned>(segments.size());
  if (k == 0 || k > kMaxK) return false;
  std::vector<unsigned> missing;
  for (unsigned i = 0; i < k; ++i) {
    if (!segments[i]) missing.push_back(i);
  }
  if (missing.empty()) return true;
  const unsigned t = static_cast<unsigned>(missing.size());
  if (t > parities.size()) return false;

  std::size_t width = 0;
  for (const auto& [j, p] : parities) width = std::max(width, p.size());
  for (const auto& s : segments) {
    if (s) width = std::max(width, s->size());
  }

  // Syndromes: rhs_a = parity_a XOR sum over present i of coeff(j_a, i)*d_i.
  // Unknowns x_b = missing segment contents; M[a][b] = coeff(j_a, missing_b).
  std::vector<std::string> rhs(t);
  std::array<std::array<std::uint8_t, kMaxR>, kMaxR> m{};
  for (unsigned a = 0; a < t; ++a) {
    const std::uint8_t row = parities[a].first;
    if (row >= kMaxR) return false;
    std::string acc(width, '\0');
    const auto& p = parities[a].second;
    std::copy(p.begin(), p.end(), acc.begin());
    for (unsigned i = 0; i < k; ++i) {
      if (!segments[i]) continue;
      const std::uint8_t c = coeff(row, i);
      const auto& d = *segments[i];
      for (std::size_t pos = 0; pos < d.size(); ++pos) {
        acc[pos] = static_cast<char>(static_cast<std::uint8_t>(acc[pos]) ^
                                     gf_mul(c, static_cast<std::uint8_t>(d[pos])));
      }
    }
    rhs[a] = std::move(acc);
    for (unsigned b = 0; b < t; ++b) m[a][b] = coeff(row, missing[b]);
  }

  // Gaussian elimination with partial pivoting (t <= 3), applied to the
  // coefficient matrix and the rhs payload rows simultaneously.
  for (unsigned col = 0; col < t; ++col) {
    unsigned pivot = col;
    while (pivot < t && m[pivot][col] == 0) ++pivot;
    if (pivot == t) return false;  // duplicate parity rows
    if (pivot != col) {
      std::swap(m[pivot], m[col]);
      std::swap(rhs[pivot], rhs[col]);
    }
    const std::uint8_t inv = gf_inv(m[col][col]);
    for (unsigned b = col; b < t; ++b) m[col][b] = gf_mul(m[col][b], inv);
    for (char& ch : rhs[col]) ch = static_cast<char>(gf_mul(static_cast<std::uint8_t>(ch), inv));
    for (unsigned a = 0; a < t; ++a) {
      if (a == col || m[a][col] == 0) continue;
      const std::uint8_t f = m[a][col];
      for (unsigned b = col; b < t; ++b) m[a][b] ^= gf_mul(f, m[col][b]);
      for (std::size_t pos = 0; pos < width; ++pos) {
        rhs[a][pos] = static_cast<char>(
            static_cast<std::uint8_t>(rhs[a][pos]) ^
            gf_mul(f, static_cast<std::uint8_t>(rhs[col][pos])));
      }
    }
  }
  for (unsigned b = 0; b < t; ++b) segments[missing[b]] = std::move(rhs[b]);
  return true;
}

}  // namespace mtp::stream::fec
