// Hybrid-fidelity harness: the same experiment with its bulk background run
// packet-accurate (paced CBR datagram streams) and flow-level (sim::flow
// fluid rates), plus a no-bulk control.
//
// The control matters: the interesting numbers are the *foreground* FCT
// percentiles under each bulk representation (they must agree within a few
// percent for the fluid model to be a valid stand-in) and the *bulk share*
// of simulator events, (events_packet - events_none) vs (events_flow -
// events_none) — the events the background itself costs, which is what the
// fluid model collapses by orders of magnitude.
//
// Used by tests/flow_test.cpp (tight gates) and bench/bench_scale.cpp (the
// --smoke hybrid block scripts/check.sh compares against BENCH_scale.json).
#pragma once

#include <cstdint>

#include "scenario/scenario.hpp"

namespace mtp::scenario::hybrid {

struct FidelityResult {
  // Foreground FCT percentiles (us) under: no bulk, packet bulk, fluid bulk.
  double p50_none = 0, p99_none = 0;
  double p50_packet = 0, p99_packet = 0;
  double p50_flow = 0, p99_flow = 0;
  std::uint64_t events_none = 0, events_packet = 0, events_flow = 0;
  std::size_t fg_count = 0;    ///< foreground completions (same in all runs)
  std::size_t bulk_count = 0;  ///< bulk transfers completed (packet == flow)
  /// Worst foreground percentile disagreement, flow vs packet, in percent.
  double fct_delta_pct = 0;
  /// Bulk-share event cost ratio: packet events per flow event.
  double bulk_event_ratio = 0;
};

/// Fig 3 rig: 8-sender incast foreground with 4 rate-capped bulk streams
/// into the same receiver downlink.
FidelityResult fig3_fidelity(std::uint64_t seed = 7);

/// Fig 7 rig: tenant foreground on a shared 100G bottleneck while the other
/// tenant runs a rate-capped bulk stream.
FidelityResult fig7_fidelity(std::uint64_t seed = 7);

struct TenantIsolationResult {
  int hosts = 0;
  unsigned shards = 1;
  std::uint64_t events = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  std::size_t fg_sent = 0;
  std::size_t fg_completed = 0;
  std::size_t bulk_count = 0;
  std::size_t bulk_completed = 0;
  /// Folds foreground completion times (per-source cells) and every bulk
  /// transfer's exact completion time; shard-count-invariant by design.
  std::uint64_t digest = 0;
};

/// Tenant isolation at fabric scale: a k-ary fat-tree where every host sends
/// `msgs_per_host` packet-accurate MTP messages while a fluid bulk ring
/// (one rate-capped transfer per 8 hosts) occupies the fabric. The digest
/// must be bit-identical for every shard count.
TenantIsolationResult tenant_isolation(int k, unsigned shards,
                                       int msgs_per_host = 2);

}  // namespace mtp::scenario::hybrid
