// Scenario library: one fluent builder for experiment harnesses.
//
// Every figure bench used to hand-roll the same five steps — topology,
// forwarding policy, per-host transports, workload, telemetry sinks — with
// small copy-paste drift between binaries. ScenarioBuilder makes the steps
// explicit and ordered:
//
//   auto s = ScenarioBuilder()
//                .seed(7)
//                .topology(topo::dual_path(/*senders=*/2))
//                .forwarding(Forwarding::kMessageAware)
//                .transport("homa")
//                .workload(std::move(schedule))
//                .goodput_window(32_us)
//                .build();
//   s->run();
//
// Transports are chosen by name from transport::TransportRegistry ("mtp",
// "tcp", "dctcp", "homa", "mptcp", plus whatever tests register); unknown
// names fail listing the registered set. The built Scenario owns the network
// and a transport::TransportFleet — one transport::Transport per sender
// host — so harness code never touches MtpEndpoint / TcpStack unless it
// opts into the concrete accessors. Topologies are plain functors over
// net::Network; the canned ones in namespace topo cover the paper's rigs,
// and callers can pass their own.
//
// .shards(n) partitions the experiment across n sim::sharded space shards
// (net::Network's conservative engine). The workload replays through one
// workload::KeyedReplay per shard — always keyed, even for n = 1, so every
// shard count executes the identical event timeline — and completions are
// logged per shard, merged into fct() on demand. fct() sample *order* is
// shard-grouped; the multiset of samples (and thus every percentile/total)
// is independent of n.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "mtp/endpoint.hpp"
#include "mtp/stream/stream.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/flow/fluid.hpp"
#include "stats/stats.hpp"
#include "telemetry/metrics.hpp"
#include "transport/transport.hpp"
#include "workload/workload.hpp"

namespace mtp::scenario {

using namespace mtp::sim::literals;

/// How declared bulk transfers (bulk_transfer) are simulated.
///   kPacket:    paced packet streams — every byte costs per-packet events.
///   kFlowLevel: fluid rate processes (sim::flow) that reserve link capacity
///               along their path; packet traffic sees the residual as
///               serialization-delay inflation. Orders of magnitude fewer
///               events for the same background load.
enum class BulkMode { kPacket, kFlowLevel };

/// Policy applied to every multipath (lb) switch the topology reports.
enum class Forwarding {
  kStatic,       ///< first candidate (models an ECMP hash pin)
  kEcmp,         ///< per-flow hashing
  kSpray,        ///< per-packet spraying
  kMessageAware, ///< the paper's per-message placement
  kAlternating,  ///< time-based path flip (Fig 5's optical switch)
};

/// What a topology functor hands back to the builder.
struct Topology {
  std::vector<net::Host*> senders;
  /// Null means peer-to-peer: every sender also listens, and the caller
  /// drives endpoints directly (bench_scale's any-to-any pattern).
  net::Host* receiver = nullptr;
  std::vector<net::Switch*> lb_switches;  ///< get the Forwarding policy
  std::vector<net::Link*> fault_links;    ///< flap() targets, in order
  std::vector<net::Link*> paths;          ///< parallel sender->receiver paths
  std::shared_ptr<void> keepalive;        ///< owns helper objects (FatTree, ...)
};
using TopologyFn = std::function<Topology(net::Network&)>;

namespace topo {

/// Fig 5: sender -> switch -> receiver over a fast and a slow simplex path.
/// paths[0] is fast, paths[1] slow. Pair with Forwarding::kAlternating.
TopologyFn two_path_flip(sim::Bandwidth fast_bw = sim::Bandwidth::gbps(100),
                         sim::Bandwidth slow_bw = sim::Bandwidth::gbps(10));

/// Fig 6: `senders` hosts share an LB switch toward one receiver over two
/// 100G paths; the second has +1us extra delay.
TopologyFn dual_path(int senders);

/// Fault-recovery fabric: snd -- sw1 ==(two 25G two-hop paths)== sw2 -- rcv.
/// fault_links[0] is the sw1->swA uplink; pathlets 1/2 tag the two choices.
TopologyFn dual_hop_fabric();

/// Fig 7: two tenant hosts -> switch -> 100G/10us bottleneck -> receiver.
/// `make_queue` builds the bottleneck queue (WFQ vs shared drop-tail);
/// default drop-tail 256/ECN 40. paths[0] is the bottleneck link.
TopologyFn shared_bottleneck(
    std::function<std::unique_ptr<net::Queue>()> make_queue = {});

/// Fig 3: `senders` hosts into one switch, one 100G link to the receiver.
TopologyFn incast(int senders);

/// Three-tier fat-tree (net::FatTree) in peer-to-peer mode: every host is a
/// sender, there is no designated receiver, and with transport("mtp") every
/// endpoint listens on dst_port. Drive traffic through the concrete
/// mtp_sender(i) accessors (bench_scale's any-to-any pattern). The
/// Forwarding policy applies to all edge and aggregation switches.
TopologyFn fat_tree(net::FatTree::Config cfg);

}  // namespace topo

/// A built experiment. Move-averse on purpose (callbacks capture `this`);
/// ScenarioBuilder::build() returns it behind a unique_ptr.
class Scenario {
 public:
  net::Network& network() { return *net_; }
  sim::Simulator& simulator() { return net_->simulator(); }
  const Topology& topo() const { return topo_; }
  std::size_t num_senders() const { return topo_.senders.size(); }
  unsigned shards() const { return net_->shards(); }
  /// Conservative windows the sharded engine executed (0 when shards == 1).
  std::uint64_t windows() const { return net_->windows(); }

  /// Unified per-sender submission (bound to receiver:dst_port). Only
  /// available when the topology has a receiver.
  transport::Transport& sender(std::size_t i) { return fleet_->sender(i); }

  /// The whole fleet: name(), per-sender transports, metrics() roll-up.
  transport::TransportFleet& fleet() { return *fleet_; }
  std::string transport_name() const { return fleet_->name(); }
  /// RunReport columns: completions, pkts, retransmits, timeouts, grants.
  transport::TransportMetrics transport_metrics() const { return fleet_->metrics(); }

  // Concrete access for scenario-specific wiring; null when the scenario
  // runs a different transport.
  core::MtpEndpoint* mtp_sender(std::size_t i) {
    auto* f = dynamic_cast<transport::MtpFleet*>(fleet_.get());
    return f ? &f->sender_endpoint(i) : nullptr;
  }
  core::MtpEndpoint* mtp_receiver() {
    auto* f = dynamic_cast<transport::MtpFleet*>(fleet_.get());
    return f ? f->receiver_endpoint() : nullptr;
  }
  transport::TcpStack* tcp_sender(std::size_t i) {
    auto* f = dynamic_cast<transport::TcpFleet*>(fleet_.get());
    return f ? &f->sender_stack(i) : nullptr;
  }
  transport::TcpStack* tcp_receiver() {
    auto* f = dynamic_cast<transport::TcpFleet*>(fleet_.get());
    return f ? f->receiver_stack() : nullptr;
  }
  transport::HomaEndpoint* homa_sender(std::size_t i) {
    auto* f = dynamic_cast<transport::HomaFleet*>(fleet_.get());
    return f ? &f->sender_endpoint(i) : nullptr;
  }
  transport::HomaEndpoint* homa_receiver() {
    auto* f = dynamic_cast<transport::HomaFleet*>(fleet_.get());
    return f ? f->receiver_endpoint() : nullptr;
  }

  // Stream mode (ScenarioBuilder::stream_workload): one mtp::stream per
  // sender into the receiver's StreamMux. fct() then records per-record
  // delivery latency (arrival -> in-order delivery at the receiver).
  stream::StreamMux* stream_mux(std::size_t i) {
    return stream_muxes_.empty() ? nullptr : stream_muxes_[i].get();
  }
  stream::StreamMux* stream_receiver() { return stream_rcv_.get(); }
  stream::Stream* stream_sender(std::size_t i) {
    return stream_senders_.empty() ? nullptr : stream_senders_[i];
  }
  /// Sum over every mux (sender sides + receiver side).
  stream::StreamMux::Stats stream_stats() const;
  /// Fold of every mux digest — the shard-equality check for stream runs.
  std::uint64_t stream_digest() const;

  /// Completion-time recorder over every workload completion so far.
  /// Merged lazily from the per-shard logs; sample order is shard-grouped
  /// under shards > 1, the sample multiset is shard-count-invariant.
  stats::FctRecorder& fct();
  /// Order-independent hash of the (fct, bytes) completion multiset — equal
  /// across shard counts for every transport (the conformance check).
  std::uint64_t fct_digest() const;
  /// Receiver-side goodput meter; null unless goodput_window() was set.
  stats::ThroughputMeter* goodput() { return meter_.get(); }
  workload::ArrivalSchedule& schedule() { return schedule_; }
  /// Workload arrivals delivered so far, summed over shards.
  std::size_t replayed() const;

  /// Peer-to-peer topologies: route every workload arrival to `fn` instead
  /// of the built-in sender(i).send_message path. `fn` runs on the simulator
  /// thread of the shard that owns senders[arrival.src], so per-source state
  /// is safe but state shared across sources needs per-shard slots. Must be
  /// set before the first run.
  void set_arrival_handler(workload::ArrivalSchedule::SendFn fn) {
    arrival_handler_ = std::move(fn);
  }

  /// Fluid replica for `shard` (null unless built with BulkMode::kFlowLevel
  /// and at least one bulk_transfer). Replicas are state-identical at equal
  /// sim times; shard 0's is the one to introspect.
  sim::flow::FluidModel* flow_model(unsigned shard = 0) {
    return shard < flow_models_.size() ? flow_models_[shard].get() : nullptr;
  }
  /// Bulk-transfer completions so far, merged across shards and sorted by
  /// transfer index: (index, completion time). In kFlowLevel mode the time
  /// is the fluid model's last-bit time; in kPacket mode the receiver-side
  /// delivery of the last packet.
  std::vector<std::pair<std::uint32_t, sim::SimTime>> bulk_completions() const;
  std::size_t bulk_completed() const;
  std::size_t bulk_transfer_count() const { return bulk_transfers_.size(); }

  /// First call starts the workload replay (and bulk sources), then runs
  /// the network — all shards, under sim::sharded when shards > 1; later
  /// calls just continue. Returns events executed across shards.
  std::uint64_t run(sim::SimTime until);
  std::uint64_t run();  ///< run to quiescence

  telemetry::RegistrySnapshot snapshot() const {
    return telemetry::MetricRegistry::global().snapshot();
  }

 public:
  ~Scenario();

 private:
  friend class ScenarioBuilder;
  struct PacedBulk;
  Scenario();
  void start();
  void start_paced_bulk();
  net::Host* bulk_host(std::uint32_t idx) const;

  std::unique_ptr<net::Network> net_;
  Topology topo_;
  proto::PortNum dst_port_ = 80;
  std::int64_t bulk_bytes_ = 0;  ///< 0 = no bulk; <0 = endless
  BulkMode bulk_mode_ = BulkMode::kPacket;
  std::vector<workload::BulkTransfer> bulk_transfers_;
  /// One fluid replica per shard (kFlowLevel). Replicas execute identical
  /// event sequences; side effects (link reservations, completion logs) are
  /// installed only on the owning shard's replica.
  std::vector<std::unique_ptr<sim::flow::FluidModel>> flow_models_;
  /// Per-shard bulk completion logs, appended on the owning shard's thread.
  std::vector<std::vector<std::pair<std::uint32_t, sim::SimTime>>> bulk_done_;
  std::vector<std::unique_ptr<PacedBulk>> paced_;       ///< kPacket mode state
  std::vector<std::int64_t> paced_rx_bytes_;            ///< per transfer, receiver side
  bool started_ = false;

  std::unique_ptr<transport::TransportFleet> fleet_;

  // Stream mode. Sender muxes live on sender shards; receiver-side record
  // accounting (cursor/marks) is touched only on the receiver's shard.
  std::vector<std::unique_ptr<stream::StreamMux>> stream_muxes_;
  std::unique_ptr<stream::StreamMux> stream_rcv_;
  std::vector<stream::Stream*> stream_senders_;  ///< one per sender, owned by mux
  std::unordered_map<net::NodeId, std::size_t> stream_src_index_;
  struct RecordMark {
    sim::SimTime at;         ///< workload arrival time
    std::int64_t bytes = 0;  ///< record size
    std::uint64_t cum = 0;   ///< stream byte offset at which it is delivered
  };
  std::vector<std::vector<RecordMark>> record_marks_;  ///< per sender, in order
  std::vector<std::size_t> record_cursor_;
  std::vector<std::size_t> writes_left_;  ///< records not yet written (sender shard)

  std::unique_ptr<stats::ThroughputMeter> meter_;
  stats::FctRecorder fct_;  ///< merged view, rebuilt by fct() when stale
  workload::ArrivalSchedule schedule_;
  std::vector<workload::KeyedReplay> replays_;  ///< one per shard
  /// Per-shard completion logs: appended on the owning shard's thread.
  std::vector<std::vector<std::pair<sim::SimTime, std::int64_t>>> fct_samples_;
  std::size_t fct_merged_ = 0;  ///< samples already folded into fct_
  workload::ArrivalSchedule::SendFn arrival_handler_;
  std::unique_ptr<fault::FaultInjector> faults_;
};

class ScenarioBuilder {
 public:
  ScenarioBuilder& seed(std::uint64_t s) { seed_ = s; return *this; }
  /// Partition the experiment across `n` space shards (sim::sharded). The
  /// timeline, fct() statistics and fault digests are bit-identical for
  /// every n; only wall-clock changes.
  ScenarioBuilder& shards(unsigned n) { shards_ = n; return *this; }
  ScenarioBuilder& topology(TopologyFn fn) { topo_fn_ = std::move(fn); return *this; }
  ScenarioBuilder& forwarding(Forwarding f, sim::SimTime alternating_period = 0_us) {
    forwarding_ = f;
    alternating_period_ = alternating_period;
    return *this;
  }
  /// Pick the transport by registry name ("mtp", "tcp", "dctcp", "homa",
  /// "mptcp", or anything tests registered). Unknown names make build()
  /// throw, listing the registered set.
  ScenarioBuilder& transport(std::string name) {
    transport_ = std::move(name);
    return *this;
  }
  /// Same, with a full per-transport config bundle in one call.
  ScenarioBuilder& transport(std::string name, transport::TransportConfig cfg) {
    transport_ = std::move(name);
    tcfg_ = std::move(cfg);
    return *this;
  }
  ScenarioBuilder& transport_config(transport::TransportConfig cfg) {
    tcfg_ = std::move(cfg);
    return *this;
  }
  ScenarioBuilder& mtp_config(core::MtpConfig cfg) { tcfg_.mtp = std::move(cfg); return *this; }
  /// Overload-control knobs alone, leaving the rest of the MTP config as
  /// configured (receiver-driven admission, watermark shedding, deadlines).
  ScenarioBuilder& mtp_overload(core::MtpConfig::OverloadControl ov) {
    tcfg_.mtp.overload = std::move(ov);
    return *this;
  }
  ScenarioBuilder& tcp_config(transport::TcpConfig cfg) { tcfg_.tcp = std::move(cfg); return *this; }
  ScenarioBuilder& homa_config(transport::HomaConfig cfg) { tcfg_.homa = std::move(cfg); return *this; }
  ScenarioBuilder& mptcp_config(transport::MptcpConfig cfg) { tcfg_.mptcp = std::move(cfg); return *this; }
  ScenarioBuilder& dst_port(proto::PortNum p) { dst_port_ = p; return *this; }
  /// Per-sender traffic class (MessageOptions.tc for MTP, TcpConfig.tc for
  /// TCP). Missing entries default to 0.
  ScenarioBuilder& sender_tcs(std::vector<proto::TrafficClassId> tcs) {
    sender_tcs_ = std::move(tcs);
    return *this;
  }
  /// Open-loop arrivals, replayed on run(): arrival.src picks the sender,
  /// completions land in Scenario::fct().
  ScenarioBuilder& workload(workload::ArrivalSchedule sched) {
    schedule_ = std::move(sched);
    return *this;
  }
  /// Send every workload arrival as one record on a per-sender mtp::stream
  /// (ordered + FEC per `cfg`) instead of as an independent message.
  /// Requires transport("mtp") and a receiver topology. fct() records
  /// per-record delivery latency; each stream finish()es after its last
  /// scheduled record, so run() quiesces once all streams complete.
  ScenarioBuilder& stream_workload(stream::StreamConfig cfg = {}) {
    stream_on_ = true;
    stream_cfg_ = cfg;
    return *this;
  }
  /// One long transfer from sender 0 (bytes < 0 = endless for TCP, a 1 GB
  /// message for MTP) — Fig 5's long-lived flow.
  ScenarioBuilder& bulk(std::int64_t bytes = -1) { bulk_bytes_ = bytes; return *this; }
  /// How declared bulk_transfer()s run: paced packet streams (default) or
  /// fluid rate processes (sim::flow) with no per-packet events.
  ScenarioBuilder& bulk_mode(BulkMode m) { bulk_mode_ = m; return *this; }
  /// Declare one long bulk transfer. src/dst index the topology's sender
  /// hosts; dst == kBulkToReceiver targets the topology receiver instead.
  ScenarioBuilder& bulk_transfer(workload::BulkTransfer t) {
    bulk_transfers_.push_back(t);
    return *this;
  }
  ScenarioBuilder& bulk_transfers(std::vector<workload::BulkTransfer> v) {
    for (const auto& t : v) bulk_transfers_.push_back(t);
    return *this;
  }
  /// Fluid flows may claim at most num/den of any link (default 95/100), so
  /// packet traffic always keeps a serialization residual.
  ScenarioBuilder& flow_capacity_fraction(std::uint32_t num, std::uint32_t den) {
    flow_cap_num_ = num;
    flow_cap_den_ = den;
    return *this;
  }
  /// Mirror the declared foreground workload into the fluid model as
  /// external-load windows on each source's uplink: flows yield (re-solve)
  /// while a declared packet burst occupies a shared conduit. Off by
  /// default — CBR (rate-capped) bulk does not yield to bursts, and that is
  /// the regime the packet-mode oracle compares against.
  ScenarioBuilder& bulk_foreground_coupling(bool on) {
    fg_coupling_ = on;
    return *this;
  }
  /// Take topology fault_links[link] down over [at, at + duration).
  ScenarioBuilder& flap(std::size_t link, sim::SimTime at, sim::SimTime duration) {
    flaps_.push_back({link, at, duration});
    return *this;
  }
  /// Attach a receiver-side ThroughputMeter with this sample window.
  ScenarioBuilder& goodput_window(sim::SimTime w) { goodput_window_ = w; return *this; }

  std::unique_ptr<Scenario> build();

 private:
  struct Flap {
    std::size_t link;
    sim::SimTime at;
    sim::SimTime duration;
  };

  std::uint64_t seed_ = 1;
  unsigned shards_ = 1;
  TopologyFn topo_fn_;
  Forwarding forwarding_ = Forwarding::kStatic;
  sim::SimTime alternating_period_ = 0_us;
  std::string transport_ = "mtp";
  transport::TransportConfig tcfg_;
  proto::PortNum dst_port_ = 80;
  std::vector<proto::TrafficClassId> sender_tcs_;
  bool stream_on_ = false;
  stream::StreamConfig stream_cfg_;
  workload::ArrivalSchedule schedule_;
  std::int64_t bulk_bytes_ = 0;
  BulkMode bulk_mode_ = BulkMode::kPacket;
  std::vector<workload::BulkTransfer> bulk_transfers_;
  std::uint32_t flow_cap_num_ = 95;
  std::uint32_t flow_cap_den_ = 100;
  bool fg_coupling_ = false;
  std::vector<Flap> flaps_;
  sim::SimTime goodput_window_ = 0_us;

  void wire_flow_level(Scenario& s);
};

/// bulk_transfer() dst sentinel: target the topology's receiver host.
inline constexpr std::uint32_t kBulkToReceiver = 0xffffffffu;

}  // namespace mtp::scenario
