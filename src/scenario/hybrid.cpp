#include "scenario/hybrid.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace mtp::scenario::hybrid {

namespace {

enum class Mode { kNone, kPacket, kFlow };

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ModeRun {
  double p50_us = 0, p99_us = 0;
  std::uint64_t events = 0;
  std::size_t fg_count = 0;
  std::size_t bulk_completed = 0;
};

/// One experiment, one bulk representation. The builder closure declares
/// everything except the bulk mode; kNone skips the transfers entirely.
template <typename MakeBuilder>
ModeRun run_mode(MakeBuilder&& make, const std::vector<workload::BulkTransfer>& bulk,
                 Mode mode) {
  ScenarioBuilder b = make();
  if (mode != Mode::kNone) {
    b.bulk_transfers(bulk).bulk_mode(mode == Mode::kFlow ? BulkMode::kFlowLevel
                                                         : BulkMode::kPacket);
  }
  auto s = b.build();
  ModeRun r;
  r.events = s->run();
  r.fg_count = s->fct().count();
  r.p50_us = s->fct().p50_us();
  r.p99_us = s->fct().p99_us();
  r.bulk_completed = s->bulk_completed();
  return r;
}

template <typename MakeBuilder>
FidelityResult fidelity(MakeBuilder&& make,
                        const std::vector<workload::BulkTransfer>& bulk) {
  const ModeRun none = run_mode(make, bulk, Mode::kNone);
  const ModeRun pkt = run_mode(make, bulk, Mode::kPacket);
  const ModeRun flow = run_mode(make, bulk, Mode::kFlow);

  FidelityResult r;
  r.p50_none = none.p50_us;
  r.p99_none = none.p99_us;
  r.p50_packet = pkt.p50_us;
  r.p99_packet = pkt.p99_us;
  r.p50_flow = flow.p50_us;
  r.p99_flow = flow.p99_us;
  r.events_none = none.events;
  r.events_packet = pkt.events;
  r.events_flow = flow.events;
  r.fg_count = flow.fg_count;
  r.bulk_count = flow.bulk_completed;
  const double d50 = std::abs(flow.p50_us - pkt.p50_us) / pkt.p50_us * 100.0;
  const double d99 = std::abs(flow.p99_us - pkt.p99_us) / pkt.p99_us * 100.0;
  r.fct_delta_pct = d50 > d99 ? d50 : d99;
  const double bulk_pkt = static_cast<double>(pkt.events) - static_cast<double>(none.events);
  double bulk_flow = static_cast<double>(flow.events) - static_cast<double>(none.events);
  if (bulk_flow < 1.0) bulk_flow = 1.0;  // fluid bulk can cost ~no events at all
  r.bulk_event_ratio = bulk_pkt / bulk_flow;
  return r;
}

}  // namespace

FidelityResult fig3_fidelity(std::uint64_t seed) {
  // Foreground: Fig 3's incast rig in its CC-governed regime — two rounds
  // of 8 x 1 MB transfers, senders staggered 30 us apart, so for ~1 ms all
  // eight flows share the residual downlink under congestion control. Each
  // FCT is throughput-dominated over hundreds of RTTs — the fluid model's
  // validity regime. (A synchronized sub-RTT inrush is deliberately NOT the
  // foreground here: it overflows the 128-packet queue into timeout
  // territory, and a FIFO queue lets a transient burst cut ahead of future
  // paced bulk packets, which continuous rate reservation cannot express;
  // docs/scale.md quantifies the error of that regime.)
  workload::ArrivalSchedule sched;
  sim::SimTime t = 20_us;
  for (int m = 0; m < 2; ++m) {
    for (std::uint32_t s = 0; s < 8; ++s) {
      sched.add(t + sim::SimTime::microseconds(s * 30), s, 1'000'000);
    }
    t += 2'000_us;
  }
  // Background: four 8 MB streams rate-capped at 10 Gbps from senders 4..7
  // into the shared downlink (40 of 100 Gbps, so the foreground keeps a
  // residual in both representations). They outlast the foreground span.
  std::vector<workload::BulkTransfer> bulk;
  for (std::uint32_t i = 0; i < 4; ++i) {
    bulk.push_back({.at = sim::SimTime::zero(),
                    .src = 4 + i,
                    .dst = kBulkToReceiver,
                    .bytes = 8'000'000,
                    .rate_cap_bps = 10'000'000'000LL});
  }
  auto make = [seed, &sched] {
    ScenarioBuilder b;
    b.seed(seed)
        .topology(topo::incast(8))
        .transport("mtp")
        .workload(sched);
    return b;
  };
  return fidelity(make, bulk);
}

FidelityResult fig7_fidelity(std::uint64_t seed) {
  // Foreground: tenant1's burst stream across the shared 100G bottleneck —
  // 80 x 100 KB messages, 20 us apart. Each burst's FCT is dominated by
  // draining the bottleneck at the residual rate (again: the regime where
  // the two background representations must agree).
  workload::ArrivalSchedule sched;
  sim::SimTime t = 20_us;
  for (int m = 0; m < 80; ++m) {
    sched.add(t, 0, 100'000);
    t += 20_us;
  }
  // Background: tenant2 runs one 4 MB bulk stream capped at 40 Gbps.
  std::vector<workload::BulkTransfer> bulk{{.at = sim::SimTime::zero(),
                                            .src = 1,
                                            .dst = kBulkToReceiver,
                                            .bytes = 4'000'000,
                                            .rate_cap_bps = 40'000'000'000LL}};
  auto make = [seed, &sched] {
    ScenarioBuilder b;
    b.seed(seed)
        .topology(topo::shared_bottleneck())
        .transport("mtp")
        .workload(sched);
    return b;
  };
  return fidelity(make, bulk);
}

TenantIsolationResult tenant_isolation(int k, unsigned shards, int msgs_per_host) {
  using Clock = std::chrono::steady_clock;
  const int hosts = k * k * k / 4;

  // Foreground: every host bursts msgs_per_host x 10 KB MTP messages to the
  // host 37 ranks away within the first 10 us (bench_scale's pattern).
  workload::ArrivalSchedule sched;
  for (int m = 0; m < msgs_per_host; ++m) {
    const sim::SimTime at = sim::SimTime::nanoseconds(1 + m * 10'000 / msgs_per_host);
    for (int h = 0; h < hosts; ++h) {
      sched.add(at, static_cast<std::uint32_t>(h), 10'000);
    }
  }
  // Background: one fluid transfer per 8 hosts, 4 MB capped at 20 Gbps, to
  // the host half a fabric away — enough concurrent rate processes that
  // edge, aggregation and core conduits all carry reservations.
  std::vector<workload::BulkTransfer> bulk;
  for (int i = 0; i < hosts / 8; ++i) {
    bulk.push_back({.at = sim::SimTime::nanoseconds(1 + i * 200),
                    .src = static_cast<std::uint32_t>(i * 8),
                    .dst = static_cast<std::uint32_t>((i * 8 + hosts / 2) % hosts),
                    .bytes = 4'000'000,
                    .rate_cap_bps = 20'000'000'000LL});
  }

  auto s = ScenarioBuilder()
               .seed(7)
               .shards(shards)
               .topology(topo::fat_tree({.k = k}))
               .forwarding(Forwarding::kEcmp)
               .transport("mtp")
               .workload(std::move(sched))
               .bulk_transfers(bulk)
               .bulk_mode(BulkMode::kFlowLevel)
               .build();

  TenantIsolationResult r;
  r.hosts = hosts;
  r.shards = shards;
  r.fg_sent = static_cast<std::size_t>(hosts) * msgs_per_host;
  r.bulk_count = bulk.size();

  // Per-source digest cells: each is only written by the shard owning its
  // host, and XOR-folding them makes the digest independent of cross-host
  // completion interleaving (exactly bench_scale's scheme).
  struct alignas(64) ShardCount {
    std::uint64_t completed = 0;
  };
  std::vector<ShardCount> done(shards);
  std::vector<std::uint64_t> cell(hosts);
  for (int h = 0; h < hosts; ++h) cell[h] = splitmix64(0x1badb002ULL ^ h);

  Scenario* sp = s.get();
  s->set_arrival_handler([sp, &done, &cell, hosts](const workload::ArrivalSchedule::Arrival& a) {
    const int src = static_cast<int>(a.src);
    const auto dst = sp->topo().senders[(src + 37) % hosts]->id();
    auto* counter = &done[sp->network().shard_of(*sp->topo().senders[src])];
    sp->mtp_sender(a.src)->send_message(
        dst, a.bytes, {.dst_port = 80},
        [counter, c = &cell[src]](proto::MsgId, sim::SimTime fct) {
          ++counter->completed;
          *c ^= splitmix64(*c ^ static_cast<std::uint64_t>(fct.ns()));
        });
  });

  const auto t0 = Clock::now();
  r.events = s->run(50_ms);
  r.wall_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  r.events_per_sec = static_cast<double>(r.events) / r.wall_sec;
  for (const ShardCount& d : done) r.fg_completed += d.completed;
  for (int h = 0; h < hosts; ++h) r.digest ^= cell[h];
  // Bulk completion times fold in exactly: same (index, ns) on every shard
  // count or the digest differs.
  for (const auto& [idx, at] : s->bulk_completions()) {
    r.digest ^= splitmix64((std::uint64_t{idx} << 40) ^ static_cast<std::uint64_t>(at.ns()));
    ++r.bulk_completed;
  }
  return r;
}

}  // namespace mtp::scenario::hybrid
