#include "scenario/paper_figs.hpp"

#include <array>

#include "innetwork/fair_policer.hpp"
#include "innetwork/queues.hpp"

namespace mtp::scenario {

void add_transport_metrics(telemetry::RunReport::Section& sec,
                           const std::string& name,
                           const transport::TransportMetrics& m) {
  sec.add_text("transport", name);
  sec.add_scalar("msgs_completed", static_cast<double>(m.msgs_completed));
  sec.add_scalar("pkts_sent", static_cast<double>(m.pkts_sent));
  sec.add_scalar("retransmits", static_cast<double>(m.retransmits));
  sec.add_scalar("timeouts", static_cast<double>(m.timeouts));
  sec.add_scalar("grants_issued", static_cast<double>(m.grants_issued));
}

namespace {

Fig5Result summarize_fig5(const stats::ThroughputMeter& meter, sim::SimTime flip_period,
                          sim::SimTime duration) {
  Fig5Result r;
  r.series = meter.series();
  r.avg_gbps = static_cast<double>(meter.total_bytes()) * 8.0 / duration.sec() / 1e9;
  double fast_sum = 0, slow_sum = 0;
  std::size_t fast_n = 0, slow_n = 0;
  for (const auto& s : r.series) {
    // Phase parity at the *send* time: samples lag by ~RTT, which is tiny
    // (4us) next to the 384us phases; attribute by receive-window start.
    const auto phase = (s.start.ns() / flip_period.ns()) % 2;
    if (phase == 0) {
      fast_sum += s.gbps;
      ++fast_n;
    } else {
      slow_sum += s.gbps;
      ++slow_n;
    }
  }
  r.fast_phase_gbps = fast_n ? fast_sum / static_cast<double>(fast_n) : 0;
  r.slow_phase_gbps = slow_n ? slow_sum / static_cast<double>(slow_n) : 0;
  return r;
}

}  // namespace

Fig5Result run_fig5(const std::string& transport, sim::SimTime duration,
                    sim::SimTime flip_period, sim::SimTime sample) {
  auto s = ScenarioBuilder()
               .topology(topo::two_path_flip())
               .forwarding(Forwarding::kAlternating, flip_period)
               .transport(transport)
               .bulk()
               .goodput_window(sample)
               .build();
  s->run(duration);
  Fig5Result r = summarize_fig5(*s->goodput(), flip_period, duration);
  r.transport = s->transport_name();
  r.metrics = s->transport_metrics();
  r.registry = s->snapshot();
  return r;
}

Fig5Result run_fig5_dctcp(sim::SimTime duration, sim::SimTime flip_period,
                          sim::SimTime sample) {
  return run_fig5("dctcp", duration, flip_period, sample);
}

Fig5Result run_fig5_mtp(sim::SimTime duration, sim::SimTime flip_period,
                        proto::FeedbackType feedback, bool pathlets_per_path,
                        sim::SimTime sample) {
  auto s = ScenarioBuilder()
               .topology(topo::two_path_flip())
               .forwarding(Forwarding::kAlternating, flip_period)
               .transport("mtp")
               .bulk()
               .goodput_window(sample)
               .build();
  s->topo().paths[0]->set_pathlet({.id = 1, .feedback = feedback, .rcp_rtt = 10_us});
  s->topo().paths[1]->set_pathlet(
      {.id = pathlets_per_path ? 2u : 1u, .feedback = feedback, .rcp_rtt = 10_us});
  s->run(duration);
  Fig5Result r = summarize_fig5(*s->goodput(), flip_period, duration);
  r.transport = s->transport_name();
  r.metrics = s->transport_metrics();
  r.registry = s->snapshot();
  return r;
}

Fig6Result run_fig6(const std::string& scheme, int messages, std::uint64_t seed,
                    std::int64_t max_msg_bytes) {
  // Workload: skewed sizes (10KB..max); the two senders offer one aggregate
  // Poisson stream at ~130% of a single path, so balancing is required.
  workload::SizeDist sizes = workload::SizeDist::skewed(10'000, max_msg_bytes);
  sim::Rng rng(seed * 7919 + 1);
  std::vector<std::int64_t> msg_sizes(static_cast<std::size_t>(messages));
  for (auto& sz : msg_sizes) sz = sizes.sample(rng);
  workload::ArrivalSchedule sched;
  {
    const double mean_bytes = sizes.mean();
    const double rate_bytes_per_sec = 1.30 * 100e9 / 8.0;
    const sim::SimTime mean_gap = sim::SimTime::from_seconds(mean_bytes / rate_bytes_per_sec);
    sim::SimTime t = 10_us;
    for (std::size_t i = 0; i < msg_sizes.size(); ++i) {
      sched.add(t, static_cast<std::uint32_t>(rng.uniform_int(0, 1)), msg_sizes[i]);
      t += rng.exponential_time(mean_gap);
    }
  }

  // scheme -> (transport, fabric policy). Homa assumes a spraying fabric
  // (its receiver reassembles out-of-order packets); MPTCP relies on
  // per-flow ECMP to land its subflows on distinct paths.
  const std::string transport = scheme == "mtp-lb"  ? "mtp"
                                : scheme == "homa"  ? "homa"
                                : scheme == "mptcp" ? "mptcp"
                                                    : "dctcp";
  const Forwarding fwd = scheme == "spray" || scheme == "homa"
                             ? Forwarding::kSpray
                         : scheme == "mtp-lb" ? Forwarding::kMessageAware
                                              : Forwarding::kEcmp;
  auto s = ScenarioBuilder()
               .seed(seed)
               .topology(topo::dual_path(/*senders=*/2))
               .forwarding(fwd)
               .transport(transport)
               .workload(std::move(sched))
               .build();
  s->run();

  Fig6Result result;
  result.scheme = scheme;
  result.transport = s->transport_name();
  result.metrics = s->transport_metrics();
  result.registry = s->snapshot();
  const stats::FctRecorder& fct = s->fct();
  result.messages = fct.count();
  if (fct.count() > 0) {
    result.p50_us = fct.p50_us();
    result.p99_us = fct.p99_us();
    result.mean_us = fct.mean_us();
  }
  const double a = static_cast<double>(s->topo().paths[0]->stats().bytes_delivered);
  const double b = static_cast<double>(s->topo().paths[1]->stats().bytes_delivered);
  result.path_a_bytes_frac = (a + b) > 0 ? a / (a + b) : 0;
  result.fct = fct;
  return result;
}

Fig7Result run_fig7(const std::string& system, sim::SimTime duration) {
  // Two tenant sender hosts share one switch and a 100G/10us bottleneck to
  // the receiver. Tenant 2 runs 8x the message streams of tenant 1.
  std::function<std::unique_ptr<net::Queue>()> queue;
  if (system == "dctcp-queues") {
    queue = [] {
      return std::make_unique<innetwork::WfqQueue>(innetwork::WfqQueue::Config{
          .per_tc_capacity_pkts = 512, .ecn_threshold_pkts = 100});
    };
  }
  const bool mtp = system == "mtp-fairshare";
  auto s = ScenarioBuilder()
               .seed(42)
               .topology(topo::shared_bottleneck(std::move(queue)))
               .transport(mtp ? "mtp" : "dctcp")
               .sender_tcs({1, 2})
               .build();

  Fig7Result result;
  result.system = system;
  std::array<std::int64_t, 3> delivered{};
  net::Link* bottleneck = s->topo().paths[0];

  if (mtp) {
    bottleneck->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
    auto policer = std::make_shared<innetwork::FairSharePolicer>(
        s->simulator(), innetwork::FairSharePolicer::Config{.egress = bottleneck});
    s->topo().lb_switches[0]->add_ingress(policer);
    // Count per-tenant delivered payload via per-message completion. Each
    // stream keeps two 1MB messages outstanding so completion round-trips
    // don't bubble the pipe.
    constexpr std::int64_t kMsgBytes = 1'000'000;
    // The scenario owns the self-rescheduling generators; the callbacks hold
    // only raw pointers, so no generator keeps itself alive via a
    // shared_ptr cycle once the run ends.
    std::vector<std::unique_ptr<std::function<void()>>> generators;
    auto feed = [&](std::size_t sender_idx, proto::TrafficClassId tc, int streams) {
      for (int st = 0; st < 2 * streams; ++st) {
        generators.push_back(std::make_unique<std::function<void()>>());
        std::function<void()>* again = generators.back().get();
        *again = [&s, sender_idx, tc, &delivered, again] {
          s->sender(sender_idx)
              .send_message(kMsgBytes,
                            [tc, &delivered, again](sim::SimTime, std::int64_t bytes) {
                              delivered[tc] += bytes;
                              (*again)();
                            });
        };
        (*again)();
      }
    };
    feed(0, 1, 1);
    feed(1, 2, 8);
    s->run(duration);
    result.registry = s->snapshot();
  } else {
    // DCTCP tenants: tenant 1 has one long flow, tenant 2 has eight (the
    // paper's "8x the number of messages" expressed as flow count).
    std::vector<std::unique_ptr<transport::TcpSink>> sinks;
    std::vector<std::unique_ptr<transport::TcpBulkSource>> sources;
    auto tenant_flows = [&](std::size_t sender_idx, int flows, proto::PortNum base_port) {
      for (int f = 0; f < flows; ++f) {
        const proto::PortNum port = static_cast<proto::PortNum>(base_port + f);
        sinks.push_back(std::make_unique<transport::TcpSink>(*s->tcp_receiver(), port));
        sources.push_back(std::make_unique<transport::TcpBulkSource>(
            *s->tcp_sender(sender_idx), s->topo().receiver->id(), port));
      }
    };
    tenant_flows(0, 1, 8000);
    tenant_flows(1, 8, 9000);
    s->run(duration);
    result.registry = s->snapshot();
    std::int64_t b1 = 0, b2 = 0;
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (i == 0) {
        b1 += sinks[i]->bytes_received();
      } else {
        b2 += sinks[i]->bytes_received();
      }
    }
    delivered[1] = b1;
    delivered[2] = b2;
  }

  result.tenant1_gbps =
      static_cast<double>(delivered[1]) * 8.0 / duration.sec() / 1e9;
  result.tenant2_gbps =
      static_cast<double>(delivered[2]) * 8.0 / duration.sec() / 1e9;
  result.jain = stats::jain_index({result.tenant1_gbps, result.tenant2_gbps});
  return result;
}

// ------------------------------------------------------- fault recovery

namespace {

void finish_fault_run(FaultRecoveryResult& r) {
  const auto series = r.meter.series();
  double pre_sum = 0;
  int pre_n = 0;
  double dur_sum = 0;
  int dur_n = 0;
  for (const auto& s : series) {
    if (s.start >= 1_ms && s.start < kFaultFlapAt) {
      pre_sum += s.gbps;
      ++pre_n;
    } else if (s.start >= kFaultFlapAt && s.start < kFaultFlapAt + kFaultFlapFor) {
      dur_sum += s.gbps;
      ++dur_n;
    }
  }
  r.pre_fault_gbps = pre_n > 0 ? pre_sum / pre_n : 0;
  r.during_fault_gbps = dur_n > 0 ? dur_sum / dur_n : 0;
  for (const auto& s : series) {
    if (s.start < kFaultFlapAt) continue;
    if (s.gbps >= 0.8 * r.pre_fault_gbps) {
      r.recovery_us = (s.start + kFaultWindow - kFaultFlapAt).us();
      break;
    }
  }
}

}  // namespace

FaultRecoveryResult run_fault_recovery(const std::string& transport) {
  const bool mtp = transport == "mtp";
  const bool homa = transport == "homa";
  const bool mptcp = transport == "mptcp";
  const sim::SimTime horizon = 16_ms;
  ScenarioBuilder b;
  b.seed(42)
      .topology(topo::dual_hop_fabric())
      // MTP gets message-aware switches. Homa runs under its native
      // spraying fabric, MPTCP under per-flow ECMP so its subflows spread.
      // The TCP run keeps the default static first-candidate policy, which
      // pins the flow to the swA path the way an ECMP hash would.
      .forwarding(mtp     ? Forwarding::kMessageAware
                  : homa  ? Forwarding::kSpray
                  : mptcp ? Forwarding::kEcmp
                          : Forwarding::kStatic)
      .goodput_window(kFaultWindow)
      .flap(/*link=*/0, kFaultFlapAt, kFaultFlapFor);
  if (mtp || homa) {
    if (mtp) {
      core::MtpConfig cfg;
      cfg.auto_exclude_after_losses = 2;
      cfg.exclude_duration = 2_ms;
      b.transport("mtp").mtp_config(cfg);
    } else {
      b.transport("homa");
    }
    // Offered load: one 32 KB message every 12.8 us = 20 Gb/s, under either
    // path's solo capacity so the surviving path can carry everything.
    workload::ArrivalSchedule sched;
    for (sim::SimTime t = sim::SimTime::zero(); t < 12_ms;
         t += sim::SimTime::nanoseconds(12'800)) {
      sched.add(t, 0, 32'768);
    }
    b.workload(std::move(sched));
  } else {
    b.transport(mptcp ? "mptcp" : "dctcp").bulk(40'000'000);
  }
  auto s = b.build();
  s->run(horizon);
  FaultRecoveryResult res;
  res.meter = *s->goodput();
  res.metrics = s->transport_metrics();
  finish_fault_run(res);
  return res;
}

}  // namespace mtp::scenario
