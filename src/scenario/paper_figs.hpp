// Paper-experiment runners (Figs 5/6/7 and fault recovery), built on
// ScenarioBuilder so the figure benches, the ablation bench, and the
// guardrail tests all run the same scenario definitions.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "telemetry/report.hpp"

namespace mtp::scenario {

/// Stamp the uniform per-transport RunReport columns — transport name,
/// completions, packets, retransmits, timeouts, grants — into a section, so
/// every multi-way figure reports the zoo the same way.
void add_transport_metrics(telemetry::RunReport::Section& sec,
                           const std::string& name,
                           const transport::TransportMetrics& m);

// ---------------------------------------------------------------- Fig 5

struct Fig5Result {
  std::string transport;
  std::vector<stats::ThroughputMeter::Sample> series;  ///< goodput per 32us
  double avg_gbps = 0;
  double fast_phase_gbps = 0;  ///< mean goodput while routed via the fast path
  double slow_phase_gbps = 0;
  transport::TransportMetrics metrics;  ///< RunReport per-transport columns
  /// Registry state at end of run (captured while the rig is still alive).
  telemetry::RegistrySnapshot registry;
};

/// Fig 5 scenario for any registered transport ("dctcp", "tcp", "homa",
/// "mptcp", ...): a first-hop switch alternates one long-lived flow between
/// a fast (100G) and a slow (10G) path every `flip_period`. Goodput sampled
/// every `sample` at the receiver. For MTP use run_fig5_mtp, which also
/// tags the paths with pathlets.
Fig5Result run_fig5(const std::string& transport, sim::SimTime duration,
                    sim::SimTime flip_period, sim::SimTime sample = 32_us);

/// run_fig5("dctcp", ...), the paper's baseline.
Fig5Result run_fig5_dctcp(sim::SimTime duration, sim::SimTime flip_period,
                          sim::SimTime sample = 32_us);

/// Run the Fig 5 scenario with MTP. `pathlets_per_path` true gives each path
/// its own pathlet id (MTP proper); false tags both paths with one id — the
/// single-pathlet ablation that mimics TCP.
Fig5Result run_fig5_mtp(sim::SimTime duration, sim::SimTime flip_period,
                        proto::FeedbackType feedback = proto::FeedbackType::kEcn,
                        bool pathlets_per_path = true,
                        sim::SimTime sample = 32_us);

// ---------------------------------------------------------------- Fig 6

struct Fig6Result {
  std::string scheme;
  std::string transport;
  std::size_t messages = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double path_a_bytes_frac = 0;  ///< fraction of bytes on the first path
  transport::TransportMetrics metrics;  ///< RunReport per-transport columns
  stats::FctRecorder fct;        ///< full FCT sample set (size-bucket slicing)
  telemetry::RegistrySnapshot registry;
};

/// Fig 6: two 100G paths, one with +1us extra delay; skewed message sizes.
/// scheme:
///   ecmp   — per-message DCTCP connections, flow-hash placement
///   spray  — per-message DCTCP connections, per-packet spraying
///   mtp-lb — MTP + message-aware LB (the paper's scheme)
///   homa   — receiver-driven SRPT under per-packet spraying (Homa's
///            native fabric assumption; its receiver tolerates reordering)
///   mptcp  — coupled subflows, each ECMP-hashed onto its own path
Fig6Result run_fig6(const std::string& scheme, int messages, std::uint64_t seed,
                    std::int64_t max_msg_bytes = 16 << 20);

// ---------------------------------------------------------------- Fig 7

struct Fig7Result {
  std::string system;
  double tenant1_gbps = 0;
  double tenant2_gbps = 0;
  double jain = 0;
  telemetry::RegistrySnapshot registry;
};

/// Fig 7: two tenants over a shared 100G/10us link; tenant 2 sends 8x the
/// messages. system: "dctcp-shared" | "dctcp-queues" | "mtp-fairshare".
Fig7Result run_fig7(const std::string& system, sim::SimTime duration);

// ------------------------------------------------------- fault recovery

/// bench_fault_recovery timing: the sw1->swA uplink of a two-path fabric is
/// down over [kFaultFlapAt, kFaultFlapAt + kFaultFlapFor).
inline constexpr sim::SimTime kFaultFlapAt = sim::SimTime::milliseconds(2);
inline constexpr sim::SimTime kFaultFlapFor = sim::SimTime::milliseconds(4);
inline constexpr sim::SimTime kFaultWindow = sim::SimTime::microseconds(50);

struct FaultRecoveryResult {
  stats::ThroughputMeter meter{kFaultWindow};
  double pre_fault_gbps = 0;
  double during_fault_gbps = 0;
  /// Time from flap onset to the first goodput sample at >= 80% of the
  /// pre-fault mean; -1 if it never recovered inside the horizon.
  double recovery_us = -1;
  transport::TransportMetrics metrics;  ///< RunReport per-transport columns
};

/// `transport`:
///   "mtp"   — message-aware LB + pathlet auto-exclusion (the paper's story)
///   "tcp"   — DCTCP hash-pinned to the failing path (the ECMP model)
///   "homa"  — receiver-driven SRPT under per-packet spraying: half the
///             sprayed packets die while the link is down
///   "mptcp" — coupled subflows ECMP-spread over both paths: survivors
///             carry the load, dead subflows wait out their RTO penalty
FaultRecoveryResult run_fault_recovery(const std::string& transport);

}  // namespace mtp::scenario
