#include "scenario/scenario.hpp"

#include "net/fat_tree.hpp"
#include "net/forwarding.hpp"

namespace mtp::scenario {

namespace {

std::unique_ptr<net::ForwardingPolicy> make_policy(Forwarding f, sim::SimTime period) {
  switch (f) {
    case Forwarding::kStatic:
      return nullptr;
    case Forwarding::kEcmp:
      return std::make_unique<net::EcmpPolicy>();
    case Forwarding::kSpray:
      return std::make_unique<net::SprayPolicy>();
    case Forwarding::kMessageAware:
      return std::make_unique<net::MessageAwarePolicy>();
    case Forwarding::kAlternating:
      return std::make_unique<net::AlternatingPathPolicy>(period);
  }
  return nullptr;
}

}  // namespace

namespace topo {

TopologyFn two_path_flip(sim::Bandwidth fast_bw, sim::Bandwidth slow_bw) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    Topology t;
    net::Host* sender = net.add_host("sender");
    net::Host* receiver = net.add_host("receiver");
    net::Switch* sw = net.add_switch("sw");
    net.connect(*sender, *sw, sim::Bandwidth::gbps(100), 1_us, q);
    net::Link* fast = net.connect_simplex(*sw, *receiver, fast_bw, 1_us,
                                          std::make_unique<net::DropTailQueue>(q));
    net::Link* slow = net.connect_simplex(*sw, *receiver, slow_bw, 1_us,
                                          std::make_unique<net::DropTailQueue>(q));
    net.connect_simplex(*receiver, *sw, sim::Bandwidth::gbps(100), 1_us,
                        std::make_unique<net::DropTailQueue>(q));
    sw->add_route(sender->id(), 0);
    sw->add_route(receiver->id(), 1);  // fast
    sw->add_route(receiver->id(), 2);  // slow
    t.senders = {sender};
    t.receiver = receiver;
    t.lb_switches = {sw};
    t.paths = {fast, slow};
    t.fault_links = {fast, slow};
    return t;
  };
}

TopologyFn dual_path(int senders) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    Topology t;
    // Node creation order is part of the recorded experiment: NodeIds feed
    // forwarding hashes, so senders get ids 0..n-1, the receiver n, the
    // switch n+1 (the order the original Fig 6 rig used).
    for (int i = 0; i < senders; ++i) {
      t.senders.push_back(net.add_host("snd" + std::to_string(i)));
    }
    net::Host* rcv = net.add_host("rcv");
    net::Switch* sw = net.add_switch("lb");
    for (int i = 0; i < senders; ++i) {
      net.connect(*t.senders[i], *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(t.senders[i]->id(), static_cast<net::PortIndex>(i));
    }
    net::Link* path_a = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us,
                                            std::make_unique<net::DropTailQueue>(q));
    net::Link* path_b = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 2_us,
                                            std::make_unique<net::DropTailQueue>(q));
    net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 1_us,
                        std::make_unique<net::DropTailQueue>(q));
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders));
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders + 1));
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {path_a, path_b};
    t.fault_links = {path_a, path_b};
    return t;
  };
}

TopologyFn dual_hop_fabric() {
  return [](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    const sim::SimTime d = 2_us;
    Topology t;
    net::Host* snd = net.add_host("snd");
    net::Host* rcv = net.add_host("rcv");
    net::Switch* sw1 = net.add_switch("sw1");
    net::Switch* swa = net.add_switch("swA");
    net::Switch* swb = net.add_switch("swB");
    net::Switch* sw2 = net.add_switch("sw2");
    net.connect(*snd, *sw1, sim::Bandwidth::gbps(100), d, q);
    auto a_up = net.connect(*sw1, *swa, sim::Bandwidth::gbps(25), d, q);
    auto b_up = net.connect(*sw1, *swb, sim::Bandwidth::gbps(25), d, q);
    net.connect(*swa, *sw2, sim::Bandwidth::gbps(25), d, q);
    net.connect(*swb, *sw2, sim::Bandwidth::gbps(25), d, q);
    net.connect(*sw2, *rcv, sim::Bandwidth::gbps(100), d, q);
    // Pathlets on the two first-hop choices: what MTP learns and excludes.
    a_up.forward->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
    b_up.forward->set_pathlet({.id = 2, .feedback = proto::FeedbackType::kEcn});

    sw1->add_route(snd->id(), 0);
    sw1->add_route(rcv->id(), 1);  // via swA (the static policy's pick)
    sw1->add_route(rcv->id(), 2);  // via swB
    swa->add_route(snd->id(), 0);
    swa->add_route(rcv->id(), 1);
    swb->add_route(snd->id(), 0);
    swb->add_route(rcv->id(), 1);
    sw2->add_route(snd->id(), 0);  // ACKs return via swA
    sw2->add_route(snd->id(), 1);
    sw2->add_route(rcv->id(), 2);
    t.senders = {snd};
    t.receiver = rcv;
    t.lb_switches = {sw1, sw2};
    t.fault_links = {a_up.forward, b_up.forward};
    t.paths = {a_up.forward, b_up.forward};
    return t;
  };
}

TopologyFn shared_bottleneck(std::function<std::unique_ptr<net::Queue>()> make_queue) {
  return [make_queue = std::move(make_queue)](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    Topology t;
    net::Host* t1 = net.add_host("tenant1");
    net::Host* t2 = net.add_host("tenant2");
    net::Host* rcv = net.add_host("rcv");
    net::Switch* sw = net.add_switch("sw");
    net.connect(*t1, *sw, sim::Bandwidth::gbps(100), 1_us, q);
    net.connect(*t2, *sw, sim::Bandwidth::gbps(100), 1_us, q);
    net::Link* bottleneck = net.connect_simplex(
        *sw, *rcv, sim::Bandwidth::gbps(100), 10_us,
        make_queue ? make_queue() : std::make_unique<net::DropTailQueue>(q));
    net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 10_us,
                        std::make_unique<net::DropTailQueue>(q));
    sw->add_route(t1->id(), 0);
    sw->add_route(t2->id(), 1);
    sw->add_route(rcv->id(), 2);
    t.senders = {t1, t2};
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {bottleneck};
    t.fault_links = {bottleneck};
    return t;
  };
}

TopologyFn incast(int senders) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    Topology t;
    net::Switch* sw = net.add_switch("sw");
    net::Host* rcv = net.add_host("recv");
    for (int i = 0; i < senders; ++i) {
      net::Host* h = net.add_host("h" + std::to_string(i));
      t.senders.push_back(h);
      net.connect(*h, *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    auto down = net.connect(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us, q);
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders));
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {down.forward};
    t.fault_links = {down.forward};
    return t;
  };
}

TopologyFn fat_tree(net::FatTree::Config cfg) {
  return [cfg](net::Network& net) {
    Topology t;
    auto ft = std::make_shared<net::FatTree>(net, cfg);
    t.senders = ft->hosts();
    for (int p = 0; p < ft->k(); ++p) {
      for (int i = 0; i < ft->k() / 2; ++i) {
        t.lb_switches.push_back(ft->edge(p, i));
        t.lb_switches.push_back(ft->agg(p, i));
      }
    }
    t.fault_links = {ft->edge_uplink(0, 0, 0)};
    t.keepalive = std::move(ft);
    return t;
  };
}

}  // namespace topo

std::unique_ptr<Scenario> ScenarioBuilder::build() {
  auto s = std::unique_ptr<Scenario>(new Scenario());
  s->net_ = std::make_unique<net::Network>(seed_, shards_);
  s->topo_ = topo_fn_(*s->net_);
  s->dst_port_ = dst_port_;
  s->bulk_bytes_ = bulk_bytes_;
  s->schedule_ = std::move(schedule_);

  for (net::Switch* sw : s->topo_.lb_switches) {
    if (auto p = make_policy(forwarding_, alternating_period_)) sw->set_policy(std::move(p));
  }
  if (goodput_window_ > 0_us) {
    s->meter_ = std::make_unique<stats::ThroughputMeter>(goodput_window_);
  }

  const auto tc_of = [this](std::size_t i) {
    return i < sender_tcs_.size() ? sender_tcs_[i] : proto::TrafficClassId{0};
  };
  net::Host* rcv = s->topo_.receiver;

  if (transport_ == TransportKind::kMtp) {
    for (net::Host* h : s->topo_.senders) {
      s->mtp_eps_.push_back(std::make_unique<core::MtpEndpoint>(*h, mtp_cfg_));
      // Peer-to-peer topologies: every endpoint also accepts messages.
      if (!rcv) s->mtp_eps_.back()->listen(dst_port_, [](const core::ReceivedMessage&) {});
    }
    if (rcv) {
      s->mtp_rcv_ = std::make_unique<core::MtpEndpoint>(*rcv, core::MtpConfig{});
      s->mtp_rcv_->listen(dst_port_, [](const core::ReceivedMessage&) {});
      if (s->meter_) {
        auto* meter = s->meter_.get();
        // The receiver's shard clock: payload deliveries (and so the meter)
        // run on that shard's worker thread only.
        auto* sim = &s->net_->simulator(s->net_->shard_of(*rcv));
        s->mtp_rcv_->on_payload = [meter, sim](std::int64_t bytes) {
          meter->record(sim->now(), bytes);
        };
      }
      for (std::size_t i = 0; i < s->mtp_eps_.size(); ++i) {
        s->senders_.push_back(std::make_unique<transport::MtpMessageSender>(
            *s->mtp_eps_[i], rcv->id(), dst_port_, tc_of(i)));
      }
    }
  } else {
    transport::TcpConfig cfg = tcp_cfg_;
    if (transport_ == TransportKind::kDctcp) cfg.dctcp = true;
    for (std::size_t i = 0; i < s->topo_.senders.size(); ++i) {
      transport::TcpConfig c = cfg;
      c.tc = tc_of(i);
      s->tcp_stacks_.push_back(
          std::make_unique<transport::TcpStack>(*s->topo_.senders[i], c));
    }
    if (rcv) {
      transport::TcpConfig rcfg = cfg;
      rcfg.tc = 0;
      s->tcp_rcv_ = std::make_unique<transport::TcpStack>(*rcv, rcfg);
      s->tcp_sink_ = std::make_unique<transport::TcpSink>(*s->tcp_rcv_, dst_port_,
                                                          s->meter_.get());
      for (auto& stack : s->tcp_stacks_) {
        s->senders_.push_back(std::make_unique<transport::TcpMessageSender>(
            *stack, rcv->id(), dst_port_));
      }
    }
  }

  if (!flaps_.empty()) {
    s->faults_ = std::make_unique<fault::FaultInjector>(s->net_->simulator(), 1);
    for (const Flap& f : flaps_) {
      s->faults_->flap_link(*s->topo_.fault_links[f.link], f.at, f.duration);
    }
  }
  return s;
}

void Scenario::start() {
  if (started_) return;
  started_ = true;
  if (bulk_bytes_ != 0) {
    if (!mtp_eps_.empty()) {
      // A long-lasting flow: one very large message (endless = 1 GB, which
      // outlives every figure horizon).
      const std::int64_t bytes = bulk_bytes_ < 0 ? (std::int64_t{1} << 30) : bulk_bytes_;
      sender(0).send_message(bytes);
    } else {
      bulk_sources_.push_back(std::make_unique<transport::TcpBulkSource>(
          *tcp_stacks_[0], topo_.receiver->id(), dst_port_, bulk_bytes_));
    }
  }
  if (!schedule_.empty()) {
    if (senders_.empty() && !arrival_handler_) {
      throw std::logic_error(
          "Scenario: a workload on a peer-to-peer topology needs set_arrival_handler()");
    }
    const unsigned S = net_->shards();
    fct_samples_.assign(S, {});
    replays_.reserve(S);
    for (unsigned shard = 0; shard < S; ++shard) {
      // Each shard replays the sub-schedule of arrivals whose source host it
      // owns; KeyedReplay keys by global schedule index, so the union over
      // shards is the exact serial timeline. S == 1 goes through the same
      // keyed path (empty take = everything) to keep timelines comparable.
      std::function<bool(const workload::ArrivalSchedule::Arrival&)> take;
      if (S > 1) {
        take = [this, shard](const workload::ArrivalSchedule::Arrival& a) {
          return net_->shard_of(*topo_.senders[a.src]) == shard;
        };
      }
      replays_.emplace_back(schedule_, std::move(take));
    }
    // Second pass: start() parks a chained event capturing the replay's
    // address, so every emplace_back (and any reallocation) happens first.
    for (unsigned shard = 0; shard < S; ++shard) {
      replays_[shard].start(
          net_->simulator(shard),
          [this, shard](const workload::ArrivalSchedule::Arrival& a) {
            if (arrival_handler_) {
              arrival_handler_(a);
              return;
            }
            senders_[a.src]->send_message(
                a.bytes, [this, shard](sim::SimTime fct, std::int64_t bytes) {
                  fct_samples_[shard].emplace_back(fct, bytes);
                });
          });
    }
  }
}

stats::FctRecorder& Scenario::fct() {
  std::size_t total = 0;
  for (const auto& v : fct_samples_) total += v.size();
  if (total != fct_merged_) {
    fct_ = stats::FctRecorder{};
    for (const auto& v : fct_samples_) {
      for (const auto& [t, b] : v) fct_.record(t, b);
    }
    fct_merged_ = total;
  }
  return fct_;
}

std::size_t Scenario::replayed() const {
  std::size_t n = 0;
  for (const auto& r : replays_) n += r.replayed();
  return n;
}

std::uint64_t Scenario::run(sim::SimTime until) {
  start();
  return net_->run(until);
}

std::uint64_t Scenario::run() {
  start();
  return net_->run();
}

}  // namespace mtp::scenario
