#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "net/fat_tree.hpp"
#include "net/forwarding.hpp"

namespace mtp::scenario {

namespace {

/// Destination port shared by every paced bulk datagram; the transfer index
/// rides in the source port.
constexpr proto::PortNum kBulkUdpPort = 21930;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Static hop-by-hop walk src -> dst through the forwarding tables, picking
/// among multipath candidates by a hash of the transfer index (an ECMP-style
/// pin). Purely a function of topology + index, so every fluid replica
/// computes the identical path. Returns link indices into Network::links().
std::vector<std::uint32_t> walk_path(const std::unordered_map<const net::Link*, std::uint32_t>& index_of,
                                     net::Host* src, net::Host* dst, std::uint32_t transfer) {
  std::vector<std::uint32_t> path;
  net::Node* node = src;
  const net::NodeId dst_id = dst->id();
  for (int hop = 0; hop < 64; ++hop) {
    net::Link* link = nullptr;
    if (node == src) {
      link = src->out_port(0);  // hosts are single-homed in every canned topology
    } else {
      auto* sw = dynamic_cast<net::Switch*>(node);
      if (!sw) throw std::logic_error("bulk_transfer path hit a non-switch transit node");
      const std::span<const net::PortIndex> cand = sw->route_candidates(dst_id);
      if (cand.empty()) throw std::logic_error("bulk_transfer path: no route at " + sw->name());
      const net::PortIndex port =
          cand[mix64(transfer * 0x9e3779b9ULL + hop) % cand.size()];
      link = sw->out_port(port);
    }
    const auto it = index_of.find(link);
    if (it == index_of.end()) throw std::logic_error("bulk_transfer path: unknown link");
    path.push_back(it->second);
    node = link->peer();
    if (node->id() == dst_id) return path;
  }
  throw std::logic_error("bulk_transfer path: no route from " + src->name() + " to " +
                         dst->name());
}

std::unique_ptr<net::ForwardingPolicy> make_policy(Forwarding f, sim::SimTime period) {
  switch (f) {
    case Forwarding::kStatic:
      return nullptr;
    case Forwarding::kEcmp:
      return std::make_unique<net::EcmpPolicy>();
    case Forwarding::kSpray:
      return std::make_unique<net::SprayPolicy>();
    case Forwarding::kMessageAware:
      return std::make_unique<net::MessageAwarePolicy>();
    case Forwarding::kAlternating:
      return std::make_unique<net::AlternatingPathPolicy>(period);
  }
  return nullptr;
}

}  // namespace

namespace topo {

TopologyFn two_path_flip(sim::Bandwidth fast_bw, sim::Bandwidth slow_bw) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    Topology t;
    net::Host* sender = net.add_host("sender");
    net::Host* receiver = net.add_host("receiver");
    net::Switch* sw = net.add_switch("sw");
    net.connect(*sender, *sw, sim::Bandwidth::gbps(100), 1_us, q);
    net::Link* fast = net.connect_simplex(*sw, *receiver, fast_bw, 1_us,
                                          std::make_unique<net::DropTailQueue>(q));
    net::Link* slow = net.connect_simplex(*sw, *receiver, slow_bw, 1_us,
                                          std::make_unique<net::DropTailQueue>(q));
    net.connect_simplex(*receiver, *sw, sim::Bandwidth::gbps(100), 1_us,
                        std::make_unique<net::DropTailQueue>(q));
    sw->add_route(sender->id(), 0);
    sw->add_route(receiver->id(), 1);  // fast
    sw->add_route(receiver->id(), 2);  // slow
    t.senders = {sender};
    t.receiver = receiver;
    t.lb_switches = {sw};
    t.paths = {fast, slow};
    t.fault_links = {fast, slow};
    return t;
  };
}

TopologyFn dual_path(int senders) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    Topology t;
    // Node creation order is part of the recorded experiment: NodeIds feed
    // forwarding hashes, so senders get ids 0..n-1, the receiver n, the
    // switch n+1 (the order the original Fig 6 rig used).
    for (int i = 0; i < senders; ++i) {
      t.senders.push_back(net.add_host("snd" + std::to_string(i)));
    }
    net::Host* rcv = net.add_host("rcv");
    net::Switch* sw = net.add_switch("lb");
    for (int i = 0; i < senders; ++i) {
      net.connect(*t.senders[i], *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(t.senders[i]->id(), static_cast<net::PortIndex>(i));
    }
    net::Link* path_a = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us,
                                            std::make_unique<net::DropTailQueue>(q));
    net::Link* path_b = net.connect_simplex(*sw, *rcv, sim::Bandwidth::gbps(100), 2_us,
                                            std::make_unique<net::DropTailQueue>(q));
    net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 1_us,
                        std::make_unique<net::DropTailQueue>(q));
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders));
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders + 1));
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {path_a, path_b};
    t.fault_links = {path_a, path_b};
    return t;
  };
}

TopologyFn dual_hop_fabric() {
  return [](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    const sim::SimTime d = 2_us;
    Topology t;
    net::Host* snd = net.add_host("snd");
    net::Host* rcv = net.add_host("rcv");
    net::Switch* sw1 = net.add_switch("sw1");
    net::Switch* swa = net.add_switch("swA");
    net::Switch* swb = net.add_switch("swB");
    net::Switch* sw2 = net.add_switch("sw2");
    net.connect(*snd, *sw1, sim::Bandwidth::gbps(100), d, q);
    auto a_up = net.connect(*sw1, *swa, sim::Bandwidth::gbps(25), d, q);
    auto b_up = net.connect(*sw1, *swb, sim::Bandwidth::gbps(25), d, q);
    net.connect(*swa, *sw2, sim::Bandwidth::gbps(25), d, q);
    net.connect(*swb, *sw2, sim::Bandwidth::gbps(25), d, q);
    net.connect(*sw2, *rcv, sim::Bandwidth::gbps(100), d, q);
    // Pathlets on the two first-hop choices: what MTP learns and excludes.
    a_up.forward->set_pathlet({.id = 1, .feedback = proto::FeedbackType::kEcn});
    b_up.forward->set_pathlet({.id = 2, .feedback = proto::FeedbackType::kEcn});

    sw1->add_route(snd->id(), 0);
    sw1->add_route(rcv->id(), 1);  // via swA (the static policy's pick)
    sw1->add_route(rcv->id(), 2);  // via swB
    swa->add_route(snd->id(), 0);
    swa->add_route(rcv->id(), 1);
    swb->add_route(snd->id(), 0);
    swb->add_route(rcv->id(), 1);
    sw2->add_route(snd->id(), 0);  // ACKs return via swA
    sw2->add_route(snd->id(), 1);
    sw2->add_route(rcv->id(), 2);
    t.senders = {snd};
    t.receiver = rcv;
    t.lb_switches = {sw1, sw2};
    t.fault_links = {a_up.forward, b_up.forward};
    t.paths = {a_up.forward, b_up.forward};
    return t;
  };
}

TopologyFn shared_bottleneck(std::function<std::unique_ptr<net::Queue>()> make_queue) {
  return [make_queue = std::move(make_queue)](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
    Topology t;
    net::Host* t1 = net.add_host("tenant1");
    net::Host* t2 = net.add_host("tenant2");
    net::Host* rcv = net.add_host("rcv");
    net::Switch* sw = net.add_switch("sw");
    net.connect(*t1, *sw, sim::Bandwidth::gbps(100), 1_us, q);
    net.connect(*t2, *sw, sim::Bandwidth::gbps(100), 1_us, q);
    net::Link* bottleneck = net.connect_simplex(
        *sw, *rcv, sim::Bandwidth::gbps(100), 10_us,
        make_queue ? make_queue() : std::make_unique<net::DropTailQueue>(q));
    net.connect_simplex(*rcv, *sw, sim::Bandwidth::gbps(100), 10_us,
                        std::make_unique<net::DropTailQueue>(q));
    sw->add_route(t1->id(), 0);
    sw->add_route(t2->id(), 1);
    sw->add_route(rcv->id(), 2);
    t.senders = {t1, t2};
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {bottleneck};
    t.fault_links = {bottleneck};
    return t;
  };
}

TopologyFn incast(int senders) {
  return [=](net::Network& net) {
    const net::DropTailQueue::Config q{.capacity_pkts = 128, .ecn_threshold_pkts = 20};
    Topology t;
    net::Switch* sw = net.add_switch("sw");
    net::Host* rcv = net.add_host("recv");
    for (int i = 0; i < senders; ++i) {
      net::Host* h = net.add_host("h" + std::to_string(i));
      t.senders.push_back(h);
      net.connect(*h, *sw, sim::Bandwidth::gbps(100), 1_us, q);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    auto down = net.connect(*sw, *rcv, sim::Bandwidth::gbps(100), 1_us, q);
    sw->add_route(rcv->id(), static_cast<net::PortIndex>(senders));
    t.receiver = rcv;
    t.lb_switches = {sw};
    t.paths = {down.forward};
    t.fault_links = {down.forward};
    return t;
  };
}

TopologyFn fat_tree(net::FatTree::Config cfg) {
  return [cfg](net::Network& net) {
    Topology t;
    auto ft = std::make_shared<net::FatTree>(net, cfg);
    t.senders = ft->hosts();
    for (int p = 0; p < ft->k(); ++p) {
      for (int i = 0; i < ft->k() / 2; ++i) {
        t.lb_switches.push_back(ft->edge(p, i));
        t.lb_switches.push_back(ft->agg(p, i));
      }
    }
    t.fault_links = {ft->edge_uplink(0, 0, 0)};
    t.keepalive = std::move(ft);
    return t;
  };
}

}  // namespace topo

Scenario::Scenario() = default;
Scenario::~Scenario() = default;

net::Host* Scenario::bulk_host(std::uint32_t idx) const {
  if (idx == kBulkToReceiver) {
    if (!topo_.receiver) throw std::logic_error("bulk_transfer: topology has no receiver");
    return topo_.receiver;
  }
  return topo_.senders.at(idx);
}

std::unique_ptr<Scenario> ScenarioBuilder::build() {
  auto s = std::unique_ptr<Scenario>(new Scenario());
  s->net_ = std::make_unique<net::Network>(seed_, shards_);
  s->topo_ = topo_fn_(*s->net_);
  s->dst_port_ = dst_port_;
  s->bulk_bytes_ = bulk_bytes_;
  s->bulk_mode_ = bulk_mode_;
  s->bulk_transfers_ = bulk_transfers_;
  s->schedule_ = std::move(schedule_);

  for (net::Switch* sw : s->topo_.lb_switches) {
    if (auto p = make_policy(forwarding_, alternating_period_)) sw->set_policy(std::move(p));
  }
  if (goodput_window_ > 0_us) {
    s->meter_ = std::make_unique<stats::ThroughputMeter>(goodput_window_);
  }

  net::Host* rcv = s->topo_.receiver;

  // Resolve the transport by name. The fleet builds every sender-side
  // endpoint/stack (in sender order — creation order is part of the recorded
  // experiment) plus the receiver-side sink and wires the goodput meter.
  transport::TransportBuildContext tctx;
  tctx.net = s->net_.get();
  tctx.senders = s->topo_.senders;
  tctx.receiver = rcv;
  tctx.dst_port = dst_port_;
  tctx.sender_tcs = sender_tcs_;
  tctx.meter = s->meter_.get();
  s->fleet_ = transport::TransportRegistry::global().build(transport_, tctx, tcfg_);

  if (stream_on_) {
    if (!rcv) {
      throw std::logic_error("Scenario: stream_workload needs a receiver topology");
    }
    auto* mf = dynamic_cast<transport::MtpFleet*>(s->fleet_.get());
    if (!mf) {
      throw std::logic_error(
          "Scenario: stream_workload rides MTP endpoints; it requires "
          "transport(\"mtp\"), not \"" + s->fleet_->name() + "\"");
    }
    // The receiver mux's listen() supersedes the fleet's no-op listener.
    s->stream_rcv_ = std::make_unique<stream::StreamMux>(*mf->receiver_endpoint(),
                                                         dst_port_, stream_cfg_);
    for (std::size_t i = 0; i < s->topo_.senders.size(); ++i) {
      s->stream_muxes_.push_back(std::make_unique<stream::StreamMux>(
          mf->sender_endpoint(i), dst_port_, stream_cfg_));
      s->stream_senders_.push_back(
          &s->stream_muxes_.back()->open(rcv->id(), dst_port_));
      s->stream_src_index_[s->topo_.senders[i]->id()] = i;
    }
  }

  if (!flaps_.empty()) {
    s->faults_ = std::make_unique<fault::FaultInjector>(s->net_->simulator(), 1);
    for (const Flap& f : flaps_) {
      s->faults_->flap_link(*s->topo_.fault_links[f.link], f.at, f.duration);
    }
  }
  if (!bulk_transfers_.empty() && bulk_mode_ == BulkMode::kFlowLevel) {
    wire_flow_level(*s);
  }
  s->bulk_done_.assign(s->net_->shards(), {});
  return s;
}

/// Build the fluid model: one replica per shard, each declared the complete
/// experiment (every conduit, flow, flap mirror and optional foreground-load
/// window) so replicas execute identical keyed event sequences on their own
/// simulators. Side effects are installed only on owners: a link's RateFn on
/// the shard that runs the link, a flow's DoneFn on the shard that owns its
/// source host. That replication — not cross-shard messaging — is what keeps
/// rate re-solves deterministic for every shard count.
void ScenarioBuilder::wire_flow_level(Scenario& s) {
  net::Network& net = *s.net_;
  const unsigned S = net.shards();
  const auto& links = net.links();

  std::unordered_map<const net::Link*, std::uint32_t> index_of;
  index_of.reserve(links.size());
  for (std::uint32_t li = 0; li < links.size(); ++li) index_of.emplace(links[li], li);

  sim::flow::FluidModel::Config fcfg;
  fcfg.capacity_num = flow_cap_num_;
  fcfg.capacity_den = flow_cap_den_;
  s.flow_models_.reserve(S);
  for (unsigned shard = 0; shard < S; ++shard) {
    auto fm = std::make_unique<sim::flow::FluidModel>(net.simulator(shard), fcfg);
    for (std::uint32_t li = 0; li < links.size(); ++li) {
      sim::flow::FluidModel::RateFn apply;
      if (net.shard_of_link(li) == shard) {
        apply = [link = links[li]](std::int64_t bps) { link->set_fluid_reserved(bps); };
      }
      fm->add_conduit(links[li]->bandwidth().bits_per_sec(), std::move(apply));
    }
    s.flow_models_.push_back(std::move(fm));
  }

  std::vector<std::uint32_t> used_conduits;
  for (std::uint32_t ti = 0; ti < bulk_transfers_.size(); ++ti) {
    const workload::BulkTransfer& t = bulk_transfers_[ti];
    net::Host* src = s.bulk_host(t.src);
    net::Host* dst = s.bulk_host(t.dst);
    const std::vector<std::uint32_t> path = walk_path(index_of, src, dst, ti);
    used_conduits.insert(used_conduits.end(), path.begin(), path.end());
    const unsigned owner = net.shard_of(*src);
    for (unsigned shard = 0; shard < S; ++shard) {
      sim::flow::FluidModel::DoneFn done;
      if (shard == owner) {
        auto* sp = &s;
        done = [sp, shard](std::uint32_t flow, sim::SimTime at) {
          sp->bulk_done_[shard].emplace_back(flow, at);
        };
      }
      s.flow_models_[shard]->add_flow(t.at, path, t.bytes, t.rate_cap_bps,
                                      std::move(done));
    }
  }

  // Scheduled link flaps, declared here at build time, mirror into every
  // replica as capacity events (down -> 0, up -> line rate). Deliberately
  // not a Link::set_up listener: a runtime hook would fire only on the
  // owning shard and desynchronise the replicas.
  for (const Flap& f : flaps_) {
    const net::Link* link = s.topo_.fault_links.at(f.link);
    const auto it = index_of.find(link);
    if (it == index_of.end()) continue;
    for (unsigned shard = 0; shard < S; ++shard) {
      s.flow_models_[shard]->set_capacity_at(f.at, it->second, 0);
      s.flow_models_[shard]->set_capacity_at(f.at + f.duration, it->second,
                                             link->bandwidth().bits_per_sec());
    }
  }

  // Optional reverse coupling: each declared foreground arrival becomes an
  // external-load window (full line rate for the message's serialization
  // time) on its source's uplink, if that uplink carries any fluid flow.
  if (fg_coupling_ && !s.schedule_.empty()) {
    const std::unordered_set<std::uint32_t> used(used_conduits.begin(),
                                                 used_conduits.end());
    for (const auto& a : s.schedule_.arrivals()) {
      net::Link* uplink = s.topo_.senders.at(a.src)->out_port(0);
      const auto it = index_of.find(uplink);
      if (it == index_of.end() || !used.count(it->second)) continue;
      const std::int64_t rate = uplink->bandwidth().bits_per_sec();
      const sim::SimTime end = a.at + uplink->bandwidth().serialization_delay(a.bytes);
      for (unsigned shard = 0; shard < S; ++shard) {
        s.flow_models_[shard]->add_load_at(a.at, it->second, rate);
        s.flow_models_[shard]->add_load_at(end, it->second, -rate);
      }
    }
  }
}

/// Paced CBR sender for one bulk transfer in kPacket mode: a chain of keyed
/// events on the source host's shard, one per MTU-sized datagram, spaced so
/// the *payload* rate equals the transfer's cap (or the uplink line rate when
/// uncapped). Keys live in a private corner of the arrival keyspace
/// (kArrivalKeyBase | bit 45) so they can never collide with KeyedReplay's
/// schedule indices.
struct Scenario::PacedBulk {
  static constexpr std::uint32_t kMtu = 1000;  ///< payload bytes per datagram

  net::Host* src = nullptr;
  net::NodeId dst = net::kInvalidNode;
  sim::Simulator* sim = nullptr;
  std::uint32_t index = 0;
  std::int64_t remaining = 0;
  std::int64_t rate_bps = 0;
  sim::SimTime next;
  std::uint64_t seq = 0;

  void arm() {
    const std::uint64_t key = sim::kArrivalKeyBase | (std::uint64_t{1} << 45) |
                              (std::uint64_t{index} << 25) | (seq & 0x1ffffffULL);
    ++seq;
    sim->schedule_keyed_at(next, key, [this] { fire(); });
  }

  void fire() {
    const std::uint32_t payload =
        remaining < kMtu ? static_cast<std::uint32_t>(remaining) : kMtu;
    net::Packet pkt;
    pkt.src = src->id();
    pkt.dst = dst;
    pkt.payload_bytes = payload;
    pkt.header_bytes = 28;  // UDP + IP, like transport::UdpSocket
    pkt.flow_hash = mix64((std::uint64_t{index} << 32) ^ 0xb01cb01cULL);
    pkt.uid = sim->next_packet_uid();
    pkt.header = proto::UdpHeader{static_cast<proto::PortNum>(index), kBulkUdpPort,
                                  static_cast<std::uint16_t>(payload)};
    src->send(std::move(pkt));
    remaining -= payload;
    if (remaining > 0) {
      const __int128 gap_ns = (static_cast<__int128>(payload) * 8 * 1'000'000'000 +
                               (rate_bps - 1)) / rate_bps;
      next = next + sim::SimTime::nanoseconds(static_cast<std::int64_t>(gap_ns));
      arm();
    }
  }
};

void Scenario::start_paced_bulk() {
  if (bulk_transfers_.empty() || bulk_mode_ != BulkMode::kPacket) return;
  if (bulk_transfers_.size() > 0xffff) {
    throw std::logic_error(
        "BulkMode::kPacket supports at most 65535 transfers (the transfer index "
        "rides in the UDP source port); use BulkMode::kFlowLevel");
  }
  paced_rx_bytes_.assign(bulk_transfers_.size(), 0);

  // One receive handler per destination host, demuxing on the source port
  // (= transfer index). Runs on the destination's shard thread; each
  // paced_rx_bytes_ slot is only ever touched by its transfer's dst shard.
  std::unordered_set<net::Host*> bound;
  for (const workload::BulkTransfer& t : bulk_transfers_) {
    net::Host* dsth = bulk_host(t.dst);
    if (!bound.insert(dsth).second) continue;
    const unsigned shard = net_->shard_of(*dsth);
    auto* sim = &net_->simulator(shard);
    dsth->set_udp_handler(kBulkUdpPort, [this, shard, sim](net::Packet&& pkt) {
      const std::uint32_t idx = pkt.udp().src_port;
      const std::int64_t before = paced_rx_bytes_[idx];
      const std::int64_t total = bulk_transfers_[idx].bytes;
      paced_rx_bytes_[idx] = before + pkt.payload_bytes;
      if (before < total && paced_rx_bytes_[idx] >= total) {
        bulk_done_[shard].emplace_back(idx, sim->now());
      }
    });
  }

  for (std::uint32_t ti = 0; ti < bulk_transfers_.size(); ++ti) {
    const workload::BulkTransfer& t = bulk_transfers_[ti];
    net::Host* src = bulk_host(t.src);
    if (t.bytes <= 0) {
      // Degenerate transfer: completes at its arrival instant, like the
      // fluid model's zero-byte case.
      net::Host* dsth = bulk_host(t.dst);
      const unsigned shard = net_->shard_of(*dsth);
      net_->simulator(shard).schedule_keyed_at(
          t.at, sim::kArrivalKeyBase | (std::uint64_t{1} << 45) | (std::uint64_t{ti} << 25),
          [this, shard, ti] {
            bulk_done_[shard].emplace_back(ti, net_->simulator(shard).now());
          });
      continue;
    }
    auto pb = std::make_unique<PacedBulk>();
    pb->src = src;
    pb->dst = bulk_host(t.dst)->id();
    pb->sim = &net_->simulator(net_->shard_of(*src));
    pb->index = ti;
    pb->remaining = t.bytes;
    pb->rate_bps = t.rate_cap_bps > 0 ? t.rate_cap_bps
                                      : src->out_port(0)->bandwidth().bits_per_sec();
    pb->next = t.at;
    pb->arm();
    paced_.push_back(std::move(pb));
  }
}

std::vector<std::pair<std::uint32_t, sim::SimTime>> Scenario::bulk_completions() const {
  std::vector<std::pair<std::uint32_t, sim::SimTime>> out;
  for (const auto& v : bulk_done_) out.insert(out.end(), v.begin(), v.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t Scenario::bulk_completed() const {
  std::size_t n = 0;
  for (const auto& v : bulk_done_) n += v.size();
  return n;
}

void Scenario::start() {
  if (started_) return;
  started_ = true;
  for (auto& fm : flow_models_) fm->start();
  start_paced_bulk();
  if (bulk_bytes_ != 0) {
    // A long-lasting flow: message transports send one very large message
    // (endless = 1 GB, which outlives every figure horizon); TCP-family
    // transports keep a bottomless connection open.
    fleet_->sender(0).send_bulk(bulk_bytes_);
  }
  if (!schedule_.empty()) {
    if (fleet_->num_senders() == 0 && !arrival_handler_) {
      throw std::logic_error(
          "Scenario: a workload on a peer-to-peer topology needs set_arrival_handler()");
    }
    const unsigned S = net_->shards();
    fct_samples_.assign(S, {});
    if (stream_rcv_) {
      // Precompute where each record's last byte lands in its sender's
      // stream; the receiver's in-order progress then times completions.
      const std::size_t N = topo_.senders.size();
      record_marks_.assign(N, {});
      record_cursor_.assign(N, 0);
      writes_left_.assign(N, 0);
      std::vector<std::uint64_t> cum(N, 0);
      for (const auto& a : schedule_.arrivals()) {
        cum[a.src] += a.bytes;
        record_marks_[a.src].push_back({a.at, a.bytes, cum[a.src]});
        ++writes_left_[a.src];
      }
      const unsigned rshard = net_->shard_of(*topo_.receiver);
      auto* rsim = &net_->simulator(rshard);
      stream_rcv_->on_progress = [this, rshard, rsim](net::NodeId src, std::uint32_t,
                                                      std::uint64_t bytes) {
        const auto it = stream_src_index_.find(src);
        if (it == stream_src_index_.end()) return;
        auto& cur = record_cursor_[it->second];
        const auto& marks = record_marks_[it->second];
        while (cur < marks.size() && bytes >= marks[cur].cum) {
          fct_samples_[rshard].emplace_back(rsim->now() - marks[cur].at, marks[cur].bytes);
          ++cur;
        }
      };
    }
    replays_.reserve(S);
    for (unsigned shard = 0; shard < S; ++shard) {
      // Each shard replays the sub-schedule of arrivals whose source host it
      // owns; KeyedReplay keys by global schedule index, so the union over
      // shards is the exact serial timeline. S == 1 goes through the same
      // keyed path (empty take = everything) to keep timelines comparable.
      std::function<bool(const workload::ArrivalSchedule::Arrival&)> take;
      if (S > 1) {
        take = [this, shard](const workload::ArrivalSchedule::Arrival& a) {
          return net_->shard_of(*topo_.senders[a.src]) == shard;
        };
      }
      replays_.emplace_back(schedule_, std::move(take));
    }
    // Second pass: start() parks a chained event capturing the replay's
    // address, so every emplace_back (and any reallocation) happens first.
    for (unsigned shard = 0; shard < S; ++shard) {
      replays_[shard].start(
          net_->simulator(shard),
          [this, shard](const workload::ArrivalSchedule::Arrival& a) {
            if (!stream_senders_.empty()) {
              // Runs on the shard owning senders[a.src]; writes_left_[src]
              // has that same single writer.
              stream::Stream& st = *stream_senders_[a.src];
              st.write(a.bytes);
              if (--writes_left_[a.src] == 0) st.finish();
              return;
            }
            if (arrival_handler_) {
              arrival_handler_(a);
              return;
            }
            fleet_->sender(a.src).send_message(
                a.bytes, [this, shard](sim::SimTime fct, std::int64_t bytes) {
                  fct_samples_[shard].emplace_back(fct, bytes);
                });
          });
    }
  }
}

stats::FctRecorder& Scenario::fct() {
  std::size_t total = 0;
  for (const auto& v : fct_samples_) total += v.size();
  if (total != fct_merged_) {
    fct_ = stats::FctRecorder{};
    for (const auto& v : fct_samples_) {
      for (const auto& [t, b] : v) fct_.record(t, b);
    }
    fct_merged_ = total;
  }
  return fct_;
}

std::uint64_t Scenario::fct_digest() const {
  // Commutative fold of the (fct, bytes) samples: shard-grouped ordering
  // cannot change the result, different sample multisets almost surely do.
  std::uint64_t d = 0;
  std::uint64_t n = 0;
  for (const auto& v : fct_samples_) {
    for (const auto& [t, b] : v) {
      d += mix64(static_cast<std::uint64_t>(t.ns()) ^
                 (static_cast<std::uint64_t>(b) * 0x9e3779b97f4a7c15ull));
      ++n;
    }
  }
  return mix64(d ^ (n * 0xbf58476d1ce4e5b9ull));
}

stream::StreamMux::Stats Scenario::stream_stats() const {
  stream::StreamMux::Stats out;
  const auto add = [&out](const stream::StreamMux::Stats& s) {
    out.segments_sent += s.segments_sent;
    out.parity_sent += s.parity_sent;
    out.stream_retx += s.stream_retx;
    out.bytes_submitted += s.bytes_submitted;
    out.segments_received += s.segments_received;
    out.parity_received += s.parity_received;
    out.segments_delivered += s.segments_delivered;
    out.bytes_delivered += s.bytes_delivered;
    out.fec_repairs += s.fec_repairs;
    out.arq_recovered += s.arq_recovered;
    out.dup_segments += s.dup_segments;
    out.reorder_drops += s.reorder_drops;
    out.gap_events += s.gap_events;
    out.feedback_sent += s.feedback_sent;
    out.streams_completed += s.streams_completed;
    out.streams_failed += s.streams_failed;
  };
  for (const auto& m : stream_muxes_) add(m->stats());
  if (stream_rcv_) add(stream_rcv_->stats());
  return out;
}

std::uint64_t Scenario::stream_digest() const {
  std::uint64_t d = 0x9e3779b97f4a7c15ull;
  const auto mix = [&d](std::uint64_t v) {
    v *= 0xbf58476d1ce4e5b9ull;
    v ^= v >> 27;
    d = (d ^ v) * 0x94d049bb133111ebull;
  };
  for (const auto& m : stream_muxes_) mix(m->digest());
  if (stream_rcv_) mix(stream_rcv_->digest());
  return d;
}

std::size_t Scenario::replayed() const {
  std::size_t n = 0;
  for (const auto& r : replays_) n += r.replayed();
  return n;
}

std::uint64_t Scenario::run(sim::SimTime until) {
  start();
  return net_->run(until);
}

std::uint64_t Scenario::run() {
  start();
  return net_->run();
}

}  // namespace mtp::scenario
