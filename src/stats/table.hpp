// Console table rendering for the benchmark harness: the benches print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace mtp::stats {

/// Fixed-width text table. Usage:
///   Table t({"scheme", "p99 FCT (us)"});
///   t.add_row({"ecmp", format("%.1f", v)});
///   t.print();
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        std::fprintf(out, "| %-*s ", static_cast<int>(width[i]), cell.c_str());
      }
      std::fprintf(out, "|\n");
    };
    auto print_sep = [&] {
      for (std::size_t i = 0; i < width.size(); ++i) {
        std::fprintf(out, "|%s", std::string(width[i] + 2, '-').c_str());
      }
      std::fprintf(out, "|\n");
    };
    print_row(header_);
    print_sep();
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string helper.
inline std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace mtp::stats
