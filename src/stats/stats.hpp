// Measurement instruments used by tests, examples and the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace mtp::stats {

/// Exact percentile over a sample set (nearest-rank). p in [0, 100].
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of range");
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

inline double mean(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("mean: empty sample set");
  double s = 0;
  for (double v : samples) s += v;
  return s / static_cast<double>(samples.size());
}

/// Jain's fairness index: 1.0 = perfectly equal shares, 1/n = one hog.
inline double jain_index(const std::vector<double>& shares) {
  if (shares.empty()) throw std::invalid_argument("jain_index: empty");
  double sum = 0, sum_sq = 0;
  for (double v : shares) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0) return 1.0;
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

/// Windowed throughput time series: record deliveries as they happen, read
/// back Gb/s per fixed window (Fig 5 samples goodput every 32 us).
class ThroughputMeter {
 public:
  explicit ThroughputMeter(sim::SimTime window) : window_(window) {
    if (window.ns() <= 0) throw std::invalid_argument("ThroughputMeter: window must be > 0");
  }

  void record(sim::SimTime now, std::int64_t bytes) {
    const auto bucket = static_cast<std::size_t>(now.ns() / window_.ns());
    if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
    buckets_[bucket] += bytes;
    total_bytes_ += bytes;
  }

  struct Sample {
    sim::SimTime start;
    double gbps;
  };

  /// One sample per window from t=0 through the last recorded window.
  std::vector<Sample> series() const {
    std::vector<Sample> out;
    out.reserve(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const double gbps =
          static_cast<double>(buckets_[i]) * 8.0 / window_.sec() / 1e9;
      out.push_back({sim::SimTime::nanoseconds(static_cast<std::int64_t>(i) * window_.ns()), gbps});
    }
    return out;
  }

  /// Average rate over [0, end of last window with data].
  double average_gbps() const {
    if (buckets_.empty()) return 0;
    const double duration_s = static_cast<double>(buckets_.size()) * window_.sec();
    return static_cast<double>(total_bytes_) * 8.0 / duration_s / 1e9;
  }

  std::int64_t total_bytes() const { return total_bytes_; }
  sim::SimTime window() const { return window_; }

 private:
  sim::SimTime window_;
  std::vector<std::int64_t> buckets_;
  std::int64_t total_bytes_ = 0;
};

/// Flow/message completion-time recorder.
///
/// Quantile reads are served from a sorted view that is cached between
/// records (a record invalidates it), so `p50_us(); p99_us(); ...` sorts
/// once instead of copying and re-sorting the full sample set per call.
/// Message sizes are kept alongside the times so tail latency can be sliced
/// by size bucket (the paper's Fig 3 contrasts short and long messages).
class FctRecorder {
 public:
  void record(sim::SimTime fct, std::int64_t bytes) {
    fct_us_.push_back(fct.us());
    bytes_.push_back(bytes);
    total_bytes_ += bytes;
    sorted_dirty_ = true;
  }

  std::size_t count() const { return fct_us_.size(); }
  double p99_us() const { return percentile_us(99); }
  double p50_us() const { return percentile_us(50); }
  double mean_us() const { return mean(fct_us_); }
  double max_us() const { return *std::max_element(fct_us_.begin(), fct_us_.end()); }
  const std::vector<double>& samples_us() const { return fct_us_; }
  const std::vector<std::int64_t>& sample_bytes() const { return bytes_; }
  std::int64_t total_bytes() const { return total_bytes_; }

  /// Nearest-rank percentile over all samples, via the cached sorted view.
  double percentile_us(double p) const {
    if (fct_us_.empty()) throw std::invalid_argument("FctRecorder: empty sample set");
    if (p < 0 || p > 100) throw std::invalid_argument("FctRecorder: p out of range");
    const auto& s = sorted();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(s.size())));
    return s[rank == 0 ? 0 : rank - 1];
  }

  /// FCT summary restricted to one message-size bucket.
  struct SizeSlice {
    std::size_t count = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p99_us = 0;
    double max_us = 0;
  };

  /// Summary over messages with min_bytes <= size < max_bytes (half-open;
  /// pass max_bytes = INT64_MAX for an unbounded upper edge). Zero-valued
  /// when no message falls in the bucket.
  SizeSlice slice(std::int64_t min_bytes, std::int64_t max_bytes) const {
    std::vector<double> xs;
    for (std::size_t i = 0; i < fct_us_.size(); ++i) {
      if (bytes_[i] >= min_bytes && bytes_[i] < max_bytes) xs.push_back(fct_us_[i]);
    }
    SizeSlice out;
    if (xs.empty()) return out;
    std::sort(xs.begin(), xs.end());
    out.count = xs.size();
    out.mean_us = mean(xs);
    out.p50_us = percentile(xs, 50);
    out.p99_us = percentile(xs, 99);
    out.max_us = xs.back();
    return out;
  }

 private:
  const std::vector<double>& sorted() const {
    if (sorted_dirty_) {
      sorted_ = fct_us_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_dirty_ = false;
    }
    return sorted_;
  }

  std::vector<double> fct_us_;
  std::vector<std::int64_t> bytes_;
  std::int64_t total_bytes_ = 0;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = false;
};

/// Log-bucketed histogram for latency/size distributions: O(1) record, no
/// per-sample storage, ~4% relative error on quantiles — the right tool when
/// an experiment records millions of samples.
class LogHistogram {
 public:
  /// Buckets are powers of `base` (>1); e.g. 1.08 gives ~4% resolution.
  explicit LogHistogram(double base = 1.08) : log_base_(std::log(base)) {
    if (!(base > 1.0)) throw std::invalid_argument("LogHistogram: base must be > 1");
  }

  void record(double v) {
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
    min_ = std::min(min_, v);
    ++buckets_[bucket_of(v)];
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double max_value() const { return count_ ? max_ : 0; }
  double min_value() const { return count_ ? min_ : 0; }

  /// Quantile estimate: upper edge of the bucket containing rank q.
  double quantile(double q) const {
    if (count_ == 0) throw std::invalid_argument("LogHistogram::quantile: empty");
    if (q < 0 || q > 1) throw std::invalid_argument("LogHistogram::quantile: q in [0,1]");
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (const auto& [b, n] : buckets_) {
      seen += n;
      if (seen >= std::max<std::uint64_t>(rank, 1)) return upper_edge(b);
    }
    return max_;
  }

 private:
  int bucket_of(double v) const {
    if (v <= 0) return std::numeric_limits<int>::min() / 2;
    return static_cast<int>(std::floor(std::log(v) / log_base_));
  }
  double upper_edge(int b) const {
    if (b == std::numeric_limits<int>::min() / 2) return 0;
    return std::exp(static_cast<double>(b + 1) * log_base_);
  }

  double log_base_;
  std::map<int, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = std::numeric_limits<double>::lowest();
  double min_ = std::numeric_limits<double>::max();
};

/// Time series of arbitrary sampled values (queue occupancy, cwnd, ...).
class TimeSeries {
 public:
  struct Point {
    sim::SimTime t;
    double value;
  };

  void record(sim::SimTime t, double v) { points_.push_back({t, v}); }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  double max_value() const {
    double m = points_.empty() ? 0 : points_.front().value;
    for (const auto& p : points_) m = std::max(m, p.value);
    return m;
  }
  double final_value() const { return points_.empty() ? 0 : points_.back().value; }

 private:
  std::vector<Point> points_;
};

}  // namespace mtp::stats
