// Minimal UDP: unreliable datagrams, no congestion control. Baseline for
// Table 1 and substrate for datagram-style experiments.
#pragma once

#include <functional>

#include "net/host.hpp"

namespace mtp::transport {

class UdpSocket {
 public:
  using ReceiveFn = std::function<void(net::Packet&&)>;

  /// Binds `port` on `host`. The handler sees every datagram addressed to it.
  UdpSocket(net::Host& host, proto::PortNum port, ReceiveFn on_receive = {})
      : host_(host), port_(port) {
    host_.set_udp_handler(port_, [this](net::Packet&& pkt) {
      ++received_;
      received_bytes_ += pkt.payload_bytes;
      if (on_receive_) on_receive_(std::move(pkt));
    });
    on_receive_ = std::move(on_receive);
  }

  void set_receive(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Fire-and-forget datagram. Must fit one packet; large payloads are the
  /// application's problem (exactly UDP's deal).
  void send_to(net::NodeId dst, proto::PortNum dst_port, std::uint32_t bytes,
               std::uint8_t tc = 0) {
    net::Packet pkt;
    pkt.src = host_.id();
    pkt.dst = dst;
    pkt.payload_bytes = bytes;
    pkt.header_bytes = 28;  // UDP + IP
    pkt.tc = tc;
    pkt.flow_hash = (static_cast<std::uint64_t>(host_.id()) << 32) ^
                    (static_cast<std::uint64_t>(dst) << 16) ^ dst_port;
    pkt.uid = host_.simulator().next_packet_uid();
    pkt.header = proto::UdpHeader{port_, dst_port, bytes};
    host_.send(std::move(pkt));
  }

  std::uint64_t datagrams_received() const { return received_; }
  std::int64_t bytes_received() const { return received_bytes_; }
  proto::PortNum port() const { return port_; }

 private:
  net::Host& host_;
  proto::PortNum port_;
  ReceiveFn on_receive_;
  std::uint64_t received_ = 0;
  std::int64_t received_bytes_ = 0;
};

}  // namespace mtp::transport
