// Small reusable TCP applications: bulk source, counting sink, and a
// request generator that opens one connection per message (the paper's
// "one message per flow" anti-pattern, Fig 3).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "stats/stats.hpp"
#include "transport/tcp.hpp"

namespace mtp::transport {

/// Accepts connections on a port and counts delivered bytes into an optional
/// ThroughputMeter. One sink can serve many connections.
class TcpSink {
 public:
  TcpSink(TcpStack& stack, proto::PortNum port, stats::ThroughputMeter* meter = nullptr)
      : meter_(meter) {
    stack.listen(port, [this, &stack](std::shared_ptr<TcpConnection> conn) {
      conns_.push_back(conn);
      conn->on_data = [this, &stack](std::int64_t bytes) {
        total_ += bytes;
        if (meter_) meter_->record(stack.host().simulator().now(), bytes);
      };
    });
  }

  std::int64_t bytes_received() const { return total_; }
  std::size_t connections_accepted() const { return conns_.size(); }

 private:
  stats::ThroughputMeter* meter_;
  std::int64_t total_ = 0;
  std::vector<std::shared_ptr<TcpConnection>> conns_;
};

/// Opens one connection and streams `bytes` (or endless data when bytes < 0).
class TcpBulkSource {
 public:
  TcpBulkSource(TcpStack& stack, net::NodeId dst, proto::PortNum dst_port,
                std::int64_t bytes = -1)
      : stack_(stack) {
    conn_ = stack.connect(dst, dst_port);
    conn_->on_established = [this, bytes] {
      if (bytes < 0) {
        endless_ = true;
        top_up();
        conn_->on_send_progress = [this] { top_up(); };
      } else {
        conn_->send(bytes);
        conn_->close();
      }
    };
  }

  TcpConnection& connection() { return *conn_; }

 private:
  // Endless mode: keep a generous backlog queued so the connection is always
  // application-limited never; 64 MB re-upped as it drains.
  void top_up() {
    constexpr std::int64_t kBacklog = 64 << 20;
    if (endless_ && conn_->send_buffer_bytes() < kBacklog / 2) {
      conn_->send(kBacklog);
    }
  }

  TcpStack& stack_;
  std::shared_ptr<TcpConnection> conn_;
  bool endless_ = false;
};

/// The Fig 3 anti-pattern: every message gets a brand-new TCP connection
/// (handshake + slow start from scratch), closed after the transfer.
class TcpPerMessageClient {
 public:
  using DoneFn = std::function<void(sim::SimTime fct, std::int64_t bytes)>;

  TcpPerMessageClient(TcpStack& stack, net::NodeId dst, proto::PortNum dst_port)
      : stack_(stack), dst_(dst), dst_port_(dst_port) {}

  void send_message(std::int64_t bytes, DoneFn done = {}) {
    auto conn = stack_.connect(dst_, dst_port_);
    const sim::SimTime start = stack_.host().simulator().now();
    auto* raw = conn.get();
    conn->on_established = [raw, bytes] {
      raw->send(bytes);
      raw->close();
    };
    conn->on_closed = [this, conn, start, bytes, done = std::move(done)]() mutable {
      ++completed_;
      if (done) done(stack_.host().simulator().now() - start, bytes);
      conn.reset();
    };
  }

  std::uint64_t completed() const { return completed_; }

 private:
  TcpStack& stack_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  std::uint64_t completed_ = 0;
};

}  // namespace mtp::transport
