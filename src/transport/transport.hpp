// The transport zoo's common API.
//
// Every transport the scenarios compare — MTP, (DC)TCP, the Homa-style
// receiver-driven transport, the MPTCP subflow model — is reached through
// the same three types:
//
//   Transport       one sender endpoint: send_message(bytes, opts, done),
//                   send_bulk(), completed(), name(). SendOptions carries
//                   the per-message knobs (priority / tc / deadline) that
//                   the old MessageSender shim could not express.
//   TransportFleet  everything one scenario needs for one transport: the
//                   per-sender Transport objects plus the receiver-side
//                   state (sink endpoint/stack, grant machinery), built in
//                   one deterministic order, and a metrics() roll-up.
//   TransportRegistry  string-keyed factory ("mtp", "tcp", "dctcp", "homa",
//                   "mptcp"): ScenarioBuilder::transport("homa") resolves
//                   here, and unknown names fail listing what is registered.
//
// Fleets also expose their concrete endpoints (MtpFleet::sender_endpoint,
// TcpFleet::sender_stack, ...) for scenarios that must reach under the
// abstraction — streams ride MTP endpoints, fig7 drives raw TCP stacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "stats/stats.hpp"
#include "transport/apps.hpp"
#include "transport/homa.hpp"
#include "transport/mptcp.hpp"
#include "transport/tcp.hpp"

namespace mtp::transport {

/// Per-message options, understood by every transport to the extent its
/// protocol can express them (TCP-family transports ignore priority; only
/// MTP enforces deadlines in-network).
struct SendOptions {
  std::uint8_t priority = 0;
  proto::TrafficClassId tc = 0;
  sim::SimTime deadline;  ///< absolute sim time; 0 = none
};

/// Uniform counter roll-up every fleet reports (RunReport columns).
struct TransportMetrics {
  std::uint64_t msgs_completed = 0;
  std::uint64_t pkts_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t grants_issued = 0;

  TransportMetrics& operator+=(const TransportMetrics& o) {
    msgs_completed += o.msgs_completed;
    pkts_sent += o.pkts_sent;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    grants_issued += o.grants_issued;
    return *this;
  }
};

/// One sender endpoint of one transport, bound to the scenario's receiver.
class Transport {
 public:
  /// Completion callback: flow completion time and message size.
  using DoneFn = std::function<void(sim::SimTime fct, std::int64_t bytes)>;

  virtual ~Transport() = default;

  /// Send one `bytes`-long message with explicit options.
  virtual void send_message(std::int64_t bytes, const SendOptions& opts,
                            DoneFn done) = 0;

  /// Send with this sender's defaults (its scenario-assigned traffic class).
  void send_message(std::int64_t bytes, DoneFn done = {}) {
    send_message(bytes, defaults_, std::move(done));
  }

  /// Long-running background transfer; bytes < 0 means "effectively endless"
  /// (TCP keeps a bottomless connection open, message transports send one
  /// huge message).
  virtual void send_bulk(std::int64_t bytes) {
    send_message(bytes < 0 ? (std::int64_t{1} << 30) : bytes, defaults_, {});
  }

  /// Messages whose completion callback has fired (aborted transfers count,
  /// mirroring TCP's per-message client).
  virtual std::uint64_t completed() const = 0;

  virtual std::string name() const = 0;

  const SendOptions& defaults() const { return defaults_; }

 protected:
  explicit Transport(SendOptions defaults) : defaults_(defaults) {}
  SendOptions defaults_;
};

/// Everything a scenario holds for its chosen transport.
class TransportFleet {
 public:
  virtual ~TransportFleet() = default;
  virtual std::string name() const = 0;
  virtual std::size_t num_senders() const = 0;
  virtual Transport& sender(std::size_t i) = 0;
  virtual TransportMetrics metrics() const = 0;
};

/// What a factory gets to build a fleet from: the built topology plus the
/// scenario's addressing and metering choices.
struct TransportBuildContext {
  net::Network* net = nullptr;
  std::vector<net::Host*> senders;
  net::Host* receiver = nullptr;  ///< null = peer-to-peer topology
  proto::PortNum dst_port = 80;
  std::vector<proto::TrafficClassId> sender_tcs;
  stats::ThroughputMeter* meter = nullptr;

  proto::TrafficClassId tc_of(std::size_t i) const {
    return i < sender_tcs.size() ? sender_tcs[i] : proto::TrafficClassId{0};
  }
};

/// Per-transport configuration, one struct per transport so a scenario can
/// tune any of them before choosing one by name. MPTCP's subflows use `tcp`
/// as their per-subflow base config.
struct TransportConfig {
  core::MtpConfig mtp;
  TcpConfig tcp;
  HomaConfig homa;
  MptcpConfig mptcp;
};

/// String-keyed factory registry. `global()` arrives pre-loaded with the
/// built-in transports; tests may add their own.
class TransportRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TransportFleet>(
      const TransportBuildContext&, const TransportConfig&)>;

  static TransportRegistry& global();

  void add(std::string name, Factory factory);
  std::vector<std::string> names() const;

  /// Throws std::invalid_argument naming the registered transports when
  /// `name` is unknown.
  std::unique_ptr<TransportFleet> build(const std::string& name,
                                        const TransportBuildContext& ctx,
                                        const TransportConfig& cfg) const;

 private:
  mutable std::mutex mu_;  ///< ParallelSweep builds scenarios on worker threads
  std::vector<std::pair<std::string, Factory>> factories_;
};

// ---------------------------------------------------------------------------
// Concrete fleets, exposed so scenarios can reach the protocol-specific
// machinery beneath the uniform API (dynamic_cast from TransportFleet).

class MtpFleet : public TransportFleet {
 public:
  MtpFleet(const TransportBuildContext& ctx, const TransportConfig& cfg);
  std::string name() const override { return "mtp"; }
  std::size_t num_senders() const override;
  Transport& sender(std::size_t i) override;
  TransportMetrics metrics() const override;

  core::MtpEndpoint& sender_endpoint(std::size_t i) { return *eps_[i]; }
  core::MtpEndpoint* receiver_endpoint() { return rcv_.get(); }

 private:
  std::vector<std::unique_ptr<core::MtpEndpoint>> eps_;
  std::unique_ptr<core::MtpEndpoint> rcv_;
  std::vector<std::unique_ptr<Transport>> senders_;
};

class TcpFleet : public TransportFleet {
 public:
  TcpFleet(const TransportBuildContext& ctx, const TransportConfig& cfg);
  std::string name() const override;
  std::size_t num_senders() const override;
  Transport& sender(std::size_t i) override;
  TransportMetrics metrics() const override;

  TcpStack& sender_stack(std::size_t i) { return *stacks_[i]; }
  TcpStack* receiver_stack() { return rcv_.get(); }
  TcpSink* sink() { return sink_.get(); }

 private:
  std::vector<std::unique_ptr<TcpStack>> stacks_;
  std::unique_ptr<TcpStack> rcv_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<std::unique_ptr<Transport>> senders_;
};

class HomaFleet : public TransportFleet {
 public:
  HomaFleet(const TransportBuildContext& ctx, const TransportConfig& cfg);
  std::string name() const override { return "homa"; }
  std::size_t num_senders() const override;
  Transport& sender(std::size_t i) override;
  TransportMetrics metrics() const override;

  HomaEndpoint& sender_endpoint(std::size_t i) { return *eps_[i]; }
  HomaEndpoint* receiver_endpoint() { return rcv_.get(); }

 private:
  std::vector<std::unique_ptr<HomaEndpoint>> eps_;
  std::unique_ptr<HomaEndpoint> rcv_;
  std::vector<std::unique_ptr<Transport>> senders_;
};

class MptcpFleet : public TransportFleet {
 public:
  MptcpFleet(const TransportBuildContext& ctx, const TransportConfig& cfg);
  std::string name() const override { return "mptcp"; }
  std::size_t num_senders() const override;
  Transport& sender(std::size_t i) override;
  TransportMetrics metrics() const override;

  TcpStack& sender_stack(std::size_t i) { return *stacks_[i]; }
  TcpStack* receiver_stack() { return rcv_.get(); }

 private:
  std::vector<std::unique_ptr<TcpStack>> stacks_;
  std::unique_ptr<TcpStack> rcv_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<std::unique_ptr<Transport>> senders_;
};

}  // namespace mtp::transport
