// Subflow-based MPTCP model (RFC 8684 shape, Linked-Increases coupling).
//
// One MptcpSession carries one message over N concurrent TCP subflows opened
// to the same destination. Each subflow is a full TcpConnection — its own
// cwnd, RTO, SACK scoreboard — connected from a distinct ephemeral port, so
// ECMP hashing spreads the subflows across the fabric's parallel paths.
//
// Coupling (RFC 6356 Linked Increases): congestion-avoidance growth on
// subflow i is min(alpha * mss * acked / total_cwnd, mss * acked / w_i) with
//   alpha = total_cwnd * max_j(w_j / rtt_j^2) / (sum_j w_j / rtt_j)^2
// so the aggregate is no more aggressive than one TCP on the best path, and
// capacity shifts away from congested subflows. Slow start and loss response
// stay per-subflow (the hooks touch only the CA increment).
//
// Scheduling: round-robin in chunk_bytes units over established subflows
// with room in their send buffer, skipping subflows inside a post-RTO
// penalty window when an unpenalized alternative exists (the classic
// penalizing scheduler that keeps a path-flap from head-of-line-blocking the
// message). A subflow that dies (TCP's consecutive-timeout abort) returns
// its undelivered bytes to the pool for the survivors; if every subflow is
// gone with bytes still owed, the session respawns a subflow a bounded
// number of times before giving up.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/timer_wheel.hpp"
#include "transport/tcp.hpp"

namespace mtp::transport {

struct MptcpConfig {
  int subflows = 4;
  /// Scheduler granularity: bytes handed to one subflow per round-robin turn.
  std::int64_t chunk_bytes = 16'000;
  /// Post-RTO penalty: how long a timed-out subflow is skipped while an
  /// unpenalized alternative exists.
  sim::SimTime penalty = sim::SimTime::milliseconds(1);
  /// Respawn budget when every subflow has aborted with bytes still owed.
  int max_respawns = 4;
};

/// One message in flight over N coupled subflows. Completion (delivery of
/// all bytes and close of every subflow, or exhaustion of the respawn
/// budget) fires `done` exactly once.
class MptcpSession {
 public:
  using DoneFn = std::function<void(sim::SimTime fct, std::int64_t bytes)>;

  MptcpSession(TcpStack& stack, net::NodeId dst, proto::PortNum dst_port,
               std::int64_t bytes, MptcpConfig cfg, DoneFn done);
  ~MptcpSession();
  MptcpSession(const MptcpSession&) = delete;
  MptcpSession& operator=(const MptcpSession&) = delete;

  bool finished() const { return finished_; }
  /// True once finish() has fully unwound (done callback returned). Only a
  /// reapable session may be destroyed: `finished_` flips before the done
  /// callback runs, and that callback may re-enter the transport (a
  /// closed-loop sender issues its next message from done) while this
  /// session's subflow connections are still on the call stack.
  bool reapable() const { return reapable_; }
  std::int64_t total_bytes() const { return total_bytes_; }
  int respawns() const { return respawns_; }

 private:
  struct Subflow {
    std::shared_ptr<TcpConnection> conn;
    bool established = false;
    bool closed = false;
    std::int64_t assigned = 0;  ///< bytes handed to this subflow's send()
    sim::SimTime penalized_until;
  };

  void open_subflow();
  void wire(std::size_t idx);
  void feed();
  void check_delivered();
  void on_subflow_closed(std::size_t idx);
  void finish();
  double lia_increase(std::size_t idx, std::int64_t acked) const;
  std::int64_t delivered_bytes() const;
  static void timer_fire(void* self, std::uint64_t);

  TcpStack& stack_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  MptcpConfig cfg_;
  sim::Simulator& sim_;
  std::vector<Subflow> subs_;
  std::int64_t total_bytes_ = 0;
  std::int64_t remaining_ = 0;  ///< bytes not yet assigned to any subflow
  std::int64_t delivered_by_closed_ = 0;
  std::size_t rr_next_ = 0;
  bool closing_ = false;
  bool finished_ = false;
  bool reapable_ = false;
  int respawns_ = 0;
  sim::SimTime started_at;
  sim::TimerId penalty_timer_;  ///< re-runs feed() when a penalty expires
  DoneFn done_;
};

}  // namespace mtp::transport
