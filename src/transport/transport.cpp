#include "transport/transport.hpp"

#include <algorithm>
#include <sstream>

namespace mtp::transport {

namespace {

// ------------------------------------------------------------------- MTP

class MtpTransport : public Transport {
 public:
  MtpTransport(core::MtpEndpoint& ep, net::NodeId dst, proto::PortNum dst_port,
               SendOptions defaults)
      : Transport(defaults), ep_(ep), dst_(dst), dst_port_(dst_port) {}

  void send_message(std::int64_t bytes, const SendOptions& opts,
                    DoneFn done) override {
    core::MessageOptions mo;
    mo.priority = opts.priority;
    mo.tc = opts.tc;
    mo.dst_port = dst_port_;
    mo.deadline = opts.deadline;
    ep_.send_message(dst_, bytes, std::move(mo),
                     [this, bytes, done = std::move(done)](
                         proto::MsgId, sim::SimTime fct) mutable {
                       ++completed_;
                       if (done) done(fct, bytes);
                     });
  }

  std::uint64_t completed() const override { return completed_; }
  std::string name() const override { return "mtp"; }

 private:
  core::MtpEndpoint& ep_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  std::uint64_t completed_ = 0;
};

// ------------------------------------------------------------------- TCP

class TcpTransport : public Transport {
 public:
  TcpTransport(TcpStack& stack, net::NodeId dst, proto::PortNum dst_port,
               SendOptions defaults)
      : Transport(defaults),
        stack_(stack),
        dst_(dst),
        dst_port_(dst_port),
        client_(stack, dst, dst_port) {}

  // Per-call tc/priority cannot be honored: a TCP stack's traffic class is
  // per-stack configuration, already set by the fleet.
  void send_message(std::int64_t bytes, const SendOptions&, DoneFn done) override {
    client_.send_message(bytes, std::move(done));
  }

  void send_bulk(std::int64_t bytes) override {
    bulk_.push_back(
        std::make_unique<TcpBulkSource>(stack_, dst_, dst_port_, bytes));
  }

  std::uint64_t completed() const override { return client_.completed(); }
  std::string name() const override {
    return stack_.config().dctcp ? "dctcp" : "tcp";
  }

 private:
  TcpStack& stack_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  TcpPerMessageClient client_;
  std::vector<std::unique_ptr<TcpBulkSource>> bulk_;
};

// ------------------------------------------------------------------ Homa

class HomaTransport : public Transport {
 public:
  HomaTransport(HomaEndpoint& ep, net::NodeId dst, proto::PortNum dst_port,
                SendOptions defaults)
      : Transport(defaults), ep_(ep), dst_(dst), dst_port_(dst_port) {}

  void send_message(std::int64_t bytes, const SendOptions& opts,
                    DoneFn done) override {
    // Receiver-driven SRPT makes sender-assigned priority moot; deadlines
    // are not part of the Homa model.
    HomaOptions ho;
    ho.tc = opts.tc;
    ho.dst_port = dst_port_;
    ep_.send_message(dst_, bytes, ho,
                     [this, bytes, done = std::move(done)](
                         proto::MsgId, sim::SimTime fct) mutable {
                       ++completed_;
                       if (done) done(fct, bytes);
                     });
  }

  std::uint64_t completed() const override { return completed_; }
  std::string name() const override { return "homa"; }

 private:
  HomaEndpoint& ep_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  std::uint64_t completed_ = 0;
};

// ----------------------------------------------------------------- MPTCP

class MptcpTransport : public Transport {
 public:
  MptcpTransport(TcpStack& stack, net::NodeId dst, proto::PortNum dst_port,
                 MptcpConfig cfg, SendOptions defaults)
      : Transport(defaults), stack_(stack), dst_(dst), dst_port_(dst_port),
        cfg_(cfg) {}

  void send_message(std::int64_t bytes, const SendOptions&, DoneFn done) override {
    // Prune only fully-unwound sessions: a closed-loop done callback calls
    // send_message while its session's finish() (and the subflow connection
    // that drove it) are still on the stack — such a session is finished()
    // but not yet reapable().
    std::erase_if(sessions_, [](const auto& s) { return s->reapable(); });
    sessions_.push_back(std::make_unique<MptcpSession>(
        stack_, dst_, dst_port_, bytes, cfg_,
        [this, done = std::move(done)](sim::SimTime fct,
                                       std::int64_t sent) mutable {
          ++completed_;
          if (done) done(fct, sent);
        }));
  }

  std::uint64_t completed() const override { return completed_; }
  std::string name() const override { return "mptcp"; }

 private:
  TcpStack& stack_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  MptcpConfig cfg_;
  std::vector<std::unique_ptr<MptcpSession>> sessions_;
  std::uint64_t completed_ = 0;
};

}  // namespace

// ---------------------------------------------------------------- fleets

MtpFleet::MtpFleet(const TransportBuildContext& ctx, const TransportConfig& cfg) {
  net::Host* rcv = ctx.receiver;
  for (net::Host* h : ctx.senders) {
    eps_.push_back(std::make_unique<core::MtpEndpoint>(*h, cfg.mtp));
    // Peer-to-peer topologies: every endpoint also accepts messages.
    if (!rcv) eps_.back()->listen(ctx.dst_port, [](const core::ReceivedMessage&) {});
  }
  if (!rcv) return;
  // The receiver runs a plain default config: sender-side knobs (scheduling,
  // pathlet CC tuning) must not distort the sink.
  rcv_ = std::make_unique<core::MtpEndpoint>(*rcv, core::MtpConfig{});
  rcv_->listen(ctx.dst_port, [](const core::ReceivedMessage&) {});
  if (ctx.meter) {
    auto* meter = ctx.meter;
    // The receiver's shard clock: payload deliveries (and so the meter) run
    // on that shard's worker thread only.
    auto* sim = &ctx.net->simulator(ctx.net->shard_of(*rcv));
    rcv_->on_payload = [meter, sim](std::int64_t bytes) {
      meter->record(sim->now(), bytes);
    };
  }
  for (std::size_t i = 0; i < eps_.size(); ++i) {
    SendOptions defaults;
    defaults.tc = ctx.tc_of(i);
    senders_.push_back(std::make_unique<MtpTransport>(*eps_[i], rcv->id(),
                                                      ctx.dst_port, defaults));
  }
}

std::size_t MtpFleet::num_senders() const { return senders_.size(); }
Transport& MtpFleet::sender(std::size_t i) { return *senders_.at(i); }

TransportMetrics MtpFleet::metrics() const {
  TransportMetrics m;
  for (const auto& t : senders_) m.msgs_completed += t->completed();
  for (const auto& ep : eps_) {
    m.pkts_sent += ep->pkts_sent();
    m.retransmits += ep->pkts_retransmitted();
  }
  if (rcv_) m.grants_issued = rcv_->grants_issued();
  return m;
}

TcpFleet::TcpFleet(const TransportBuildContext& ctx, const TransportConfig& cfg) {
  for (std::size_t i = 0; i < ctx.senders.size(); ++i) {
    TcpConfig c = cfg.tcp;
    c.tc = ctx.tc_of(i);
    stacks_.push_back(std::make_unique<TcpStack>(*ctx.senders[i], c));
  }
  net::Host* rcv = ctx.receiver;
  if (!rcv) return;
  TcpConfig rcfg = cfg.tcp;
  rcfg.tc = 0;
  rcv_ = std::make_unique<TcpStack>(*rcv, rcfg);
  sink_ = std::make_unique<TcpSink>(*rcv_, ctx.dst_port, ctx.meter);
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    SendOptions defaults;
    defaults.tc = ctx.tc_of(i);
    senders_.push_back(std::make_unique<TcpTransport>(*stacks_[i], rcv->id(),
                                                      ctx.dst_port, defaults));
  }
}

std::string TcpFleet::name() const {
  return !stacks_.empty() && stacks_.front()->config().dctcp ? "dctcp" : "tcp";
}
std::size_t TcpFleet::num_senders() const { return senders_.size(); }
Transport& TcpFleet::sender(std::size_t i) { return *senders_.at(i); }

TransportMetrics TcpFleet::metrics() const {
  TransportMetrics m;
  for (const auto& t : senders_) m.msgs_completed += t->completed();
  for (const auto& s : stacks_) {
    m.pkts_sent += s->total_pkts_sent();
    m.retransmits += s->total_retransmits();
    m.timeouts += s->total_timeouts();
  }
  if (rcv_) {
    m.pkts_sent += rcv_->total_pkts_sent();
    m.retransmits += rcv_->total_retransmits();
    m.timeouts += rcv_->total_timeouts();
  }
  return m;
}

HomaFleet::HomaFleet(const TransportBuildContext& ctx, const TransportConfig& cfg) {
  net::Host* rcv = ctx.receiver;
  for (net::Host* h : ctx.senders) {
    eps_.push_back(std::make_unique<HomaEndpoint>(*h, cfg.homa));
    if (!rcv) eps_.back()->listen(ctx.dst_port, [](net::NodeId, std::int64_t) {});
  }
  if (!rcv) return;
  // Unlike MTP, the receiver shares the transport config: rtt_bytes,
  // overcommit and the priority split are receiver-side grant policy.
  rcv_ = std::make_unique<HomaEndpoint>(*rcv, cfg.homa);
  rcv_->listen(ctx.dst_port, [](net::NodeId, std::int64_t) {});
  if (ctx.meter) {
    auto* meter = ctx.meter;
    auto* sim = &ctx.net->simulator(ctx.net->shard_of(*rcv));
    rcv_->on_payload = [meter, sim](std::int64_t bytes) {
      meter->record(sim->now(), bytes);
    };
  }
  for (std::size_t i = 0; i < eps_.size(); ++i) {
    SendOptions defaults;
    defaults.tc = ctx.tc_of(i);
    senders_.push_back(std::make_unique<HomaTransport>(*eps_[i], rcv->id(),
                                                       ctx.dst_port, defaults));
  }
}

std::size_t HomaFleet::num_senders() const { return senders_.size(); }
Transport& HomaFleet::sender(std::size_t i) { return *senders_.at(i); }

TransportMetrics HomaFleet::metrics() const {
  TransportMetrics m;
  for (const auto& t : senders_) m.msgs_completed += t->completed();
  for (const auto& ep : eps_) {
    m.pkts_sent += ep->pkts_sent();
    m.retransmits += ep->pkts_retransmitted();
  }
  if (rcv_) m.grants_issued = rcv_->grants_issued();
  return m;
}

MptcpFleet::MptcpFleet(const TransportBuildContext& ctx, const TransportConfig& cfg) {
  for (std::size_t i = 0; i < ctx.senders.size(); ++i) {
    TcpConfig c = cfg.tcp;
    c.tc = ctx.tc_of(i);
    stacks_.push_back(std::make_unique<TcpStack>(*ctx.senders[i], c));
  }
  net::Host* rcv = ctx.receiver;
  if (!rcv) return;
  TcpConfig rcfg = cfg.tcp;
  rcfg.tc = 0;
  rcv_ = std::make_unique<TcpStack>(*rcv, rcfg);
  sink_ = std::make_unique<TcpSink>(*rcv_, ctx.dst_port, ctx.meter);
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    SendOptions defaults;
    defaults.tc = ctx.tc_of(i);
    senders_.push_back(std::make_unique<MptcpTransport>(
        *stacks_[i], rcv->id(), ctx.dst_port, cfg.mptcp, defaults));
  }
}

std::size_t MptcpFleet::num_senders() const { return senders_.size(); }
Transport& MptcpFleet::sender(std::size_t i) { return *senders_.at(i); }

TransportMetrics MptcpFleet::metrics() const {
  TransportMetrics m;
  for (const auto& t : senders_) m.msgs_completed += t->completed();
  for (const auto& s : stacks_) {
    m.pkts_sent += s->total_pkts_sent();
    m.retransmits += s->total_retransmits();
    m.timeouts += s->total_timeouts();
  }
  if (rcv_) {
    m.pkts_sent += rcv_->total_pkts_sent();
    m.retransmits += rcv_->total_retransmits();
    m.timeouts += rcv_->total_timeouts();
  }
  return m;
}

// -------------------------------------------------------------- registry

TransportRegistry& TransportRegistry::global() {
  static TransportRegistry* reg = [] {
    auto* r = new TransportRegistry();
    r->add("mtp", [](const TransportBuildContext& ctx, const TransportConfig& cfg) {
      return std::make_unique<MtpFleet>(ctx, cfg);
    });
    r->add("tcp", [](const TransportBuildContext& ctx, const TransportConfig& cfg) {
      return std::make_unique<TcpFleet>(ctx, cfg);
    });
    r->add("dctcp", [](const TransportBuildContext& ctx, const TransportConfig& cfg) {
      TransportConfig c = cfg;
      c.tcp.dctcp = true;
      return std::make_unique<TcpFleet>(ctx, c);
    });
    r->add("homa", [](const TransportBuildContext& ctx, const TransportConfig& cfg) {
      return std::make_unique<HomaFleet>(ctx, cfg);
    });
    r->add("mptcp", [](const TransportBuildContext& ctx, const TransportConfig& cfg) {
      return std::make_unique<MptcpFleet>(ctx, cfg);
    });
    return r;
  }();
  return *reg;
}

void TransportRegistry::add(std::string name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, f] : factories_) {
    if (n == name) {
      f = std::move(factory);  // re-registration replaces
      return;
    }
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

std::vector<std::string> TransportRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

std::unique_ptr<TransportFleet> TransportRegistry::build(
    const std::string& name, const TransportBuildContext& ctx,
    const TransportConfig& cfg) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [n, f] : factories_) {
      if (n == name) {
        factory = f;
        break;
      }
    }
  }
  if (!factory) {
    std::ostringstream msg;
    msg << "unknown transport '" << name << "'; registered:";
    for (const auto& n : names()) msg << " " << n;
    throw std::invalid_argument(msg.str());
  }
  return factory(ctx, cfg);
}

}  // namespace mtp::transport
