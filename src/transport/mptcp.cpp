#include "transport/mptcp.hpp"

#include <algorithm>
#include <cassert>

namespace mtp::transport {

MptcpSession::MptcpSession(TcpStack& stack, net::NodeId dst,
                           proto::PortNum dst_port, std::int64_t bytes,
                           MptcpConfig cfg, DoneFn done)
    : stack_(stack),
      dst_(dst),
      dst_port_(dst_port),
      cfg_(cfg),
      sim_(stack.host().simulator()),
      total_bytes_(bytes),
      remaining_(bytes),
      started_at(stack.host().simulator().now()),
      done_(std::move(done)) {
  assert(bytes > 0 && "empty messages are not a thing");
  const int n = std::max(1, cfg_.subflows);
  subs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) open_subflow();
}

MptcpSession::~MptcpSession() { sim_.timers().cancel(penalty_timer_); }

void MptcpSession::open_subflow() {
  // Each connect() takes a fresh ephemeral source port, so each subflow's
  // 5-tuple hashes to its own ECMP path.
  Subflow sf;
  sf.conn = stack_.connect(dst_, dst_port_);
  subs_.push_back(std::move(sf));
  wire(subs_.size() - 1);
}

void MptcpSession::wire(std::size_t idx) {
  TcpConnection& conn = *subs_[idx].conn;
  conn.on_established = [this, idx] {
    Subflow& sf = subs_[idx];
    sf.established = true;
    if (closing_) {
      sf.conn->close();
    } else {
      feed();
    }
  };
  conn.on_send_progress = [this, idx] {
    feed();
    check_delivered();
  };
  conn.on_timeout = [this, idx] {
    subs_[idx].penalized_until = sim_.now() + cfg_.penalty;
  };
  conn.ca_increase = [this, idx](std::int64_t acked) {
    return lia_increase(idx, acked);
  };
  conn.on_closed = [this, idx] { on_subflow_closed(idx); };
}

void MptcpSession::feed() {
  if (finished_ || closing_ || remaining_ <= 0) return;
  const std::size_t n = subs_.size();
  const sim::SimTime now = sim_.now();
  auto eligible = [&](const Subflow& sf) {
    return sf.established && !sf.closed &&
           sf.conn->send_buffer_bytes() < cfg_.chunk_bytes;
  };
  bool skipped_penalized = false;
  sim::SimTime earliest_penalty;
  bool progress = true;
  while (remaining_ > 0 && progress) {
    progress = false;
    for (std::size_t k = 0; k < n && remaining_ > 0; ++k) {
      const std::size_t i = (rr_next_ + k) % n;
      Subflow& sf = subs_[i];
      if (!eligible(sf)) continue;
      if (now < sf.penalized_until) {
        // Skip only while an unpenalized alternative could take the chunk —
        // a penalized last resort still beats stalling the message.
        bool alternative = false;
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i && eligible(subs_[j]) && now >= subs_[j].penalized_until) {
            alternative = true;
            break;
          }
        }
        if (alternative) {
          if (!skipped_penalized || sf.penalized_until < earliest_penalty) {
            earliest_penalty = sf.penalized_until;
          }
          skipped_penalized = true;
          continue;
        }
      }
      const std::int64_t chunk = std::min(cfg_.chunk_bytes, remaining_);
      sf.conn->send(chunk);
      sf.assigned += chunk;
      remaining_ -= chunk;
      rr_next_ = (i + 1) % n;
      progress = true;
    }
  }
  if (skipped_penalized && remaining_ > 0 && !sim_.timers().armed(penalty_timer_)) {
    // Liveness: if no subflow ever reports progress again (all stalled in
    // recovery), re-run the scheduler when the penalty lapses so the skipped
    // subflow is handed work rather than the message hanging forever.
    const sim::SimTime floor = sim_.now() + sim_.timers().granularity();
    penalty_timer_ = sim_.timers().arm(std::max(earliest_penalty, floor),
                                       &MptcpSession::timer_fire, this, 0);
  }
}

void MptcpSession::timer_fire(void* self, std::uint64_t) {
  auto* s = static_cast<MptcpSession*>(self);
  s->feed();
  s->check_delivered();
}

std::int64_t MptcpSession::delivered_bytes() const {
  std::int64_t sum = delivered_by_closed_;
  for (const Subflow& sf : subs_) {
    if (!sf.closed && sf.conn) sum += sf.conn->bytes_delivered();
  }
  return sum;
}

void MptcpSession::check_delivered() {
  if (finished_ || closing_) return;
  if (remaining_ > 0 || delivered_bytes() < total_bytes_) return;
  closing_ = true;
  for (Subflow& sf : subs_) {
    if (!sf.closed && sf.established) sf.conn->close();
  }
}

void MptcpSession::on_subflow_closed(std::size_t idx) {
  Subflow& sf = subs_[idx];
  if (sf.closed) return;
  sf.closed = true;
  // An aborted subflow (consecutive-timeout give-up) still owes bytes it
  // accepted but never delivered; put them back in the pool. The shared_ptr
  // is deliberately NOT released here: this runs inside the connection's own
  // on_closed callback (possibly from its RTO trampoline), and dropping the
  // last reference would destroy the connection mid-execution. Dead subflows
  // are freed with the session.
  const std::int64_t delivered = sf.conn->bytes_delivered();
  delivered_by_closed_ += delivered;
  if (sf.assigned > delivered) remaining_ += sf.assigned - delivered;

  bool any_open = false;
  for (const Subflow& s : subs_) {
    if (!s.closed) {
      any_open = true;
      break;
    }
  }
  if (!any_open) {
    if (!closing_ && remaining_ > 0 && respawns_ < cfg_.max_respawns) {
      // Every path died mid-message: try again on a fresh subflow (fresh
      // ephemeral port, likely a different ECMP path).
      ++respawns_;
      open_subflow();
      return;
    }
    // All subflows closed: the message is done — delivered, or abandoned
    // like a TCP abort (the per-message client counts both as completion).
    finish();
    return;
  }
  if (!closing_) feed();
}

void MptcpSession::finish() {
  if (finished_) return;
  finished_ = true;
  sim_.timers().cancel(penalty_timer_);
  if (done_) {
    auto done = std::move(done_);
    done(sim_.now() - started_at, total_bytes_);
  }
  reapable_ = true;
}

double MptcpSession::lia_increase(std::size_t idx, std::int64_t acked) const {
  const auto& cfg = stack_.config();
  const Subflow& self = subs_[idx];
  if (!self.conn) return 0.0;
  const double w_i = std::max(1.0, self.conn->cwnd_bytes());
  double total = 0.0;
  double best = 0.0;    // max_j w_j / rtt_j^2
  double sum_wr = 0.0;  // sum_j w_j / rtt_j
  for (const Subflow& sf : subs_) {
    if (sf.closed || !sf.established || !sf.conn) continue;
    const double w = std::max(1.0, sf.conn->cwnd_bytes());
    // Pre-handshake subflows have no RTT estimate yet; floor keeps the
    // coupling math finite.
    const double rtt = std::max(1e-6, static_cast<double>(sf.conn->srtt().ns()) * 1e-9);
    total += w;
    best = std::max(best, w / (rtt * rtt));
    sum_wr += w / rtt;
  }
  const double reno = static_cast<double>(cfg.mss) * static_cast<double>(acked) / w_i;
  if (total <= 0.0 || sum_wr <= 0.0) return reno;
  const double alpha = total * best / (sum_wr * sum_wr);
  const double coupled =
      alpha * static_cast<double>(cfg.mss) * static_cast<double>(acked) / total;
  return std::min(coupled, reno);
}

}  // namespace mtp::transport
