#include "transport/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "sim/logging.hpp"
#include "telemetry/trace.hpp"

namespace mtp::transport {

namespace {
// Sequence-space layout: SYN occupies [0,1); application data occupies
// [1, 1+N); FIN occupies [1+N, 2+N). 64-bit sequence numbers never wrap in
// simulation, so no modular comparisons are needed.
constexpr std::uint64_t kDataStart = 1;

std::uint64_t make_flow_hash(net::NodeId a, proto::PortNum ap, net::NodeId b,
                             proto::PortNum bp) {
  std::uint64_t h = (static_cast<std::uint64_t>(a) << 48) ^
                    (static_cast<std::uint64_t>(b) << 32) ^
                    (static_cast<std::uint64_t>(ap) << 16) ^ bp;
  h ^= h >> 31;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}
}  // namespace

// ---------------------------------------------------------------- TcpStack

TcpStack::TcpStack(net::Host& host, TcpConfig cfg) : host_(host), cfg_(cfg) {
  host_.set_tcp_handler([this](net::Packet&& pkt) { on_packet(std::move(pkt)); });
  metrics_ = telemetry::MetricRegistry::global().add(
      "tcp", host_.name(), [this](std::vector<telemetry::MetricSample>& out) {
        using telemetry::MetricKind;
        out.push_back({"pkts_sent", MetricKind::kCounter,
                       static_cast<double>(pkts_sent_)});
        out.push_back({"retransmits", MetricKind::kCounter,
                       static_cast<double>(retransmits_)});
        out.push_back({"timeouts", MetricKind::kCounter,
                       static_cast<double>(timeouts_)});
        out.push_back({"checksum_drops", MetricKind::kCounter,
                       static_cast<double>(checksum_drops_)});
        out.push_back({"open_connections", MetricKind::kGauge,
                       static_cast<double>(conns_.size())});
      });
}

std::shared_ptr<TcpConnection> TcpStack::connect(net::NodeId dst, proto::PortNum dst_port) {
  const proto::PortNum src_port = next_ephemeral_++;
  auto conn = std::shared_ptr<TcpConnection>(
      new TcpConnection(*this, dst, src_port, dst_port, /*active_open=*/true));
  conns_[ConnKey{dst, dst_port, src_port}] = conn;
  conn->start_active_open();
  return conn;
}

void TcpStack::listen(proto::PortNum port, AcceptFn on_accept) {
  listeners_[port] = std::move(on_accept);
}

void TcpStack::on_packet(net::Packet&& pkt) {
  if (!pkt.checksum_ok()) {
    // Damaged segment: drop before demux (SYNs, ACKs and data alike) and
    // let normal loss recovery retransmit. Never surfaces to a connection.
    ++checksum_drops_;
    if (telemetry::TraceSink::enabled()) {
      telemetry::TraceEvent ev;
      ev.t = host_.simulator().now();
      ev.type = telemetry::TraceEventType::kChecksumDrop;
      ev.component = host_.name();
      ev.src = pkt.src;
      ev.dst = pkt.dst;
      ev.bytes = pkt.size_bytes();
      ev.tc = pkt.tc;
      ev.flow = pkt.flow_hash;
      telemetry::trace().record(ev);
    }
    return;
  }
  const auto& hdr = pkt.tcp();
  const ConnKey key{pkt.src, hdr.src_port, hdr.dst_port};
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    // Keep the connection alive through the callback even if it removes
    // itself from the map while handling this packet.
    auto conn = it->second;
    conn->on_packet(std::move(pkt));
    return;
  }
  if (hdr.has(proto::kTcpSyn) && !hdr.has(proto::kTcpAck)) {
    auto lit = listeners_.find(hdr.dst_port);
    if (lit == listeners_.end()) return;  // no listener: drop silently
    auto conn = std::shared_ptr<TcpConnection>(
        new TcpConnection(*this, pkt.src, hdr.dst_port, hdr.src_port, /*active_open=*/false));
    conns_[key] = conn;
    conn->accept_fn_ = lit->second;
    conn->start_passive_open();
    return;
  }
  if (hdr.has(proto::kTcpFin)) {
    // Stray FIN for a connection this side already closed and forgot
    // (poor man's TIME_WAIT): re-ACK it so the peer's teardown completes
    // instead of retrying until its timeout budget runs out.
    net::Packet ack;
    ack.src = host_.id();
    ack.dst = pkt.src;
    ack.header_bytes = cfg_.header_bytes;
    ack.tc = cfg_.tc;
    ack.uid = host_.simulator().next_packet_uid();
    proto::TcpHeader h;
    h.src_port = hdr.dst_port;
    h.dst_port = hdr.src_port;
    h.flags = proto::kTcpAck;
    h.ack = hdr.seq + hdr.payload + 1;
    ack.header = h;
    host_.send(std::move(ack));
  }
  // Anything else for an unknown connection (stray ACKs after close) drops.
}

// ----------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(TcpStack& stack, net::NodeId peer, proto::PortNum local_port,
                             proto::PortNum peer_port, bool active_open)
    : stack_(stack),
      peer_(peer),
      local_port_(local_port),
      peer_port_(peer_port),
      state_(active_open ? State::kSynSent : State::kSynRcvd) {
  name_ = stack.host().name() + ":" + std::to_string(local_port_) + "->" +
          std::to_string(peer_) + ":" + std::to_string(peer_port_);
  const auto& cfg = stack_.config();
  cwnd_ = static_cast<double>(cfg.init_cwnd_pkts) * cfg.mss;
  ssthresh_ = 1e18;
  rto_ = cfg.min_rto.scaled(10.0);  // conservative until the first RTT sample
}

TcpConnection::~TcpConnection() { disarm_rto(); }

sim::Simulator& TcpConnection::simulator() { return stack_.host().simulator(); }

std::int64_t TcpConnection::data_sent() const {
  if (snd_nxt_ <= kDataStart) return 0;
  return static_cast<std::int64_t>(std::min(snd_nxt_ - kDataStart,
                                            static_cast<std::uint64_t>(tx_queued_)));
}

std::uint64_t TcpConnection::data_end_seq() const {
  return kDataStart + static_cast<std::uint64_t>(tx_queued_);
}

void TcpConnection::start_active_open() {
  send_control(proto::kTcpSyn, /*seq=*/0);
  snd_una_ = 0;
  snd_nxt_ = 1;
  arm_rto();
}

void TcpConnection::start_passive_open() {
  rcv_nxt_ = 1;  // peer's SYN consumed
  send_control(proto::kTcpSyn | proto::kTcpAck, /*seq=*/0);
  snd_una_ = 0;
  snd_nxt_ = 1;
  arm_rto();
}

void TcpConnection::send(std::int64_t bytes) {
  assert(bytes >= 0);
  assert(!fin_pending_ && !fin_sent_ && "send() after close()");
  tx_queued_ += bytes;
  if (state_ == State::kEstablished) try_send();
}

void TcpConnection::close() {
  if (fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  if (state_ == State::kEstablished) try_send();
}

void TcpConnection::consume(std::int64_t bytes) {
  assert(bytes <= rx_ready_);
  rx_ready_ -= bytes;
  // Window update so a sender blocked on zero window resumes promptly.
  if (state_ == State::kEstablished || state_ == State::kFinWait) send_ack();
}

std::int64_t TcpConnection::effective_window() const {
  return std::min(static_cast<std::int64_t>(cwnd_), peer_rwnd_);
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kFinWait) return;
  const auto& cfg = stack_.config();
  bool sent_any = false;
  while (true) {
    // In recovery, retransmitting SACK holes takes precedence over new data.
    if (in_recovery_) {
      const auto hole = next_hole();
      if (hole && pipe() + hole->len <= static_cast<std::int64_t>(cwnd_)) {
        emit_segment(hole->seq, hole->len, /*retransmit=*/true);
        high_retx_ = hole->seq + hole->len;
        retx_inflight_ += hole->len;
        sent_any = true;
        continue;
      }
    }
    const std::uint64_t data_end = data_end_seq();
    if (snd_nxt_ >= data_end) break;  // all data transmitted at least once
    const std::int64_t wnd = effective_window();
    if (pipe() >= wnd) break;
    const std::int64_t window_room = wnd - pipe();
    const std::uint64_t remaining = data_end - snd_nxt_;
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({cfg.mss, remaining,
                                 static_cast<std::uint64_t>(window_room)}));
    if (len == 0) break;
    emit_segment(snd_nxt_, len, /*retransmit=*/false);
    snd_nxt_ += len;
    sent_any = true;
  }
  // FIN rides after the last data byte has been transmitted.
  if (fin_pending_ && !fin_sent_ && snd_nxt_ == data_end_seq()) {
    send_control(proto::kTcpFin | proto::kTcpAck, snd_nxt_);
    snd_nxt_ += 1;
    fin_sent_ = true;
    state_ = State::kFinWait;
    sent_any = true;
  }
  if (sent_any) {
    arm_rto_if_idle();
  } else if (flight() == 0 && snd_nxt_ < data_end_seq() && effective_window() == 0) {
    // Zero-window deadlock guard: probe via the retransmission timer.
    arm_rto_if_idle();
  }
}

void TcpConnection::emit_segment(std::uint64_t seq, std::uint32_t len, bool retransmit) {
  const auto& cfg = stack_.config();
  net::Packet pkt;
  pkt.src = stack_.host().id();
  pkt.dst = peer_;
  pkt.payload_bytes = len;
  pkt.header_bytes = cfg.header_bytes;
  pkt.ecn = cfg.uses_ecn() ? net::Ecn::kEct : net::Ecn::kNotEct;
  pkt.tc = cfg.tc;
  pkt.flow_hash = make_flow_hash(pkt.src, local_port_, peer_, peer_port_);
  pkt.uid = simulator().next_packet_uid();
  proto::TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = peer_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = proto::kTcpAck;
  if (cwr_pending_ && !retransmit) {
    hdr.flags |= proto::kTcpCwr;
    cwr_pending_ = false;
  }
  hdr.rwnd = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, cfg.rcv_buf_bytes - rx_ready_));
  hdr.payload = len;
  fill_sack(hdr);
  pkt.header = hdr;
  if (retransmit) {
    ++retransmits_;
    ++stack_.retransmits_;
    rtt_seq_ = 0;  // Karn: invalidate the in-flight RTT measurement
  } else if (rtt_seq_ == 0) {
    rtt_seq_ = seq + len;
    rtt_sent_at_ = simulator().now();
  }
  if (seq <= snd_una_ && seq + len > snd_una_) last_una_tx_at_ = simulator().now();
  transmit(std::move(pkt));
}

void TcpConnection::send_control(std::uint8_t flags, std::uint64_t seq) {
  const auto& cfg = stack_.config();
  net::Packet pkt;
  pkt.src = stack_.host().id();
  pkt.dst = peer_;
  pkt.payload_bytes = 0;
  pkt.header_bytes = cfg.header_bytes;
  pkt.ecn = net::Ecn::kNotEct;  // control packets are not ECN-capable
  pkt.tc = cfg.tc;
  pkt.flow_hash = make_flow_hash(pkt.src, local_port_, peer_, peer_port_);
  pkt.uid = simulator().next_packet_uid();
  proto::TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = peer_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.rwnd = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, cfg.rcv_buf_bytes - rx_ready_));
  fill_sack(hdr);
  pkt.header = hdr;
  transmit(std::move(pkt));
}

void TcpConnection::send_ack() {
  std::uint8_t flags = proto::kTcpAck;
  if (stack_.config().dctcp) {
    // DCTCP: the ACK echoes the CE state of the segment it acknowledges.
    if (last_seg_ce_) flags |= proto::kTcpEce;
  } else if (stack_.config().ecn) {
    // Classic ECN: latch ECE until the sender signals CWR.
    if (ece_latched_) flags |= proto::kTcpEce;
  }
  send_control(flags, snd_nxt_);
}

void TcpConnection::transmit(net::Packet&& pkt) {
  ++stack_.pkts_sent_;
  stack_.host().send(std::move(pkt));
}

void TcpConnection::on_packet(net::Packet&& pkt) {
  const proto::TcpHeader hdr = pkt.tcp();

  // --- Handshake transitions.
  if (state_ == State::kSynSent) {
    if (hdr.has(proto::kTcpSyn) && hdr.has(proto::kTcpAck) && hdr.ack >= 1) {
      rcv_nxt_ = 1;
      snd_una_ = 1;
      peer_rwnd_ = static_cast<std::int64_t>(hdr.rwnd);
      rtt_sample(simulator().now() - rtt_sent_at_);  // SYN round trip
      disarm_rto();
      enter_established();
      send_ack();
      try_send();
    }
    return;
  }
  if (state_ == State::kSynRcvd) {
    if (hdr.has(proto::kTcpAck) && hdr.ack >= 1) {
      snd_una_ = std::max(snd_una_, std::uint64_t{1});
      peer_rwnd_ = static_cast<std::int64_t>(hdr.rwnd);
      disarm_rto();
      enter_established();
      if (accept_fn_) accept_fn_(shared_from_this());
      // Fall through: the third-handshake packet may carry data.
    } else if (hdr.has(proto::kTcpSyn) && !hdr.has(proto::kTcpAck)) {
      send_control(proto::kTcpSyn | proto::kTcpAck, 0);  // retransmitted SYN
      return;
    } else {
      return;
    }
  }
  if (state_ == State::kClosed) return;

  if (hdr.has(proto::kTcpAck)) on_ack(hdr);
  if (hdr.payload > 0 || hdr.has(proto::kTcpFin)) on_segment(pkt);
  maybe_close();
}

void TcpConnection::on_ack(const proto::TcpHeader& hdr) {
  const auto& cfg = stack_.config();
  peer_rwnd_ = static_cast<std::int64_t>(hdr.rwnd);

  // --- Classic ECN congestion response: once per window of data.
  if (cfg.ecn && !cfg.dctcp && hdr.has(proto::kTcpEce) && snd_una_ >= ecn_recover_) {
    ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0 * cfg.mss);
    cwnd_ = ssthresh_;
    ecn_recover_ = snd_nxt_;
    cwr_pending_ = true;
  }

  const std::size_t sack_intervals_before = sacked_.size();
  const std::int64_t sacked_bytes_before = sacked_bytes_;
  if (!hdr.sack().empty()) merge_sack(hdr.sack());

  if (hdr.ack > snd_una_) {
    const std::int64_t acked = static_cast<std::int64_t>(hdr.ack - snd_una_);
    snd_una_ = hdr.ack;
    consecutive_timeouts_ = 0;
    // A cumulative advance in recovery means retransmitted holes arrived:
    // drain the retransmission-inflight estimate by the acked amount.
    if (in_recovery_) retx_inflight_ = std::max<std::int64_t>(0, retx_inflight_ - acked);
    // Prune scoreboard below the new cumulative ack.
    while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
      sacked_.erase(sacked_.begin());
    }
    if (!sacked_.empty() && sacked_.begin()->first < snd_una_) {
      const auto end = sacked_.begin()->second;
      sacked_.erase(sacked_.begin());
      sacked_.emplace(snd_una_, end);
    }
    recompute_sacked_bytes();
    delivered_ = static_cast<std::int64_t>(
        std::min(snd_una_ >= kDataStart ? snd_una_ - kDataStart : 0,
                 static_cast<std::uint64_t>(tx_queued_)));
    dup_acks_ = 0;
    rto_backoff_ = 1.0;

    // RTT sample (Karn-valid only).
    if (rtt_seq_ != 0 && snd_una_ >= rtt_seq_) {
      rtt_sample(simulator().now() - rtt_sent_at_);
      rtt_seq_ = 0;
    }

    // --- DCTCP accounting.
    if (cfg.dctcp) {
      dctcp_acked_total_ += acked;
      if (hdr.has(proto::kTcpEce)) dctcp_acked_ce_ += acked;
      if (snd_una_ >= dctcp_window_end_) dctcp_window_end();
    }

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        // Full ACK: leave recovery.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        retx_inflight_ = 0;
      }
      // Partial ACKs: try_send()'s hole loop retransmits the next holes
      // under the pipe limit — no per-ack special casing needed with SACK.
    } else {
      // Normal growth: slow start then congestion avoidance.
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(acked);
      } else if (ca_increase) {
        cwnd_ += ca_increase(acked);
      } else {
        cwnd_ += static_cast<double>(cfg.mss) * static_cast<double>(acked) / cwnd_;
      }
    }

    if (flight() > 0) {
      arm_rto();
    } else {
      disarm_rto();
    }
    if (on_send_progress) on_send_progress();
    if (in_recovery_ && snd_una_ < recover_) {
      // Partial ACK: the hole at the new snd_una_ may itself have been a
      // retransmission that was lost; note when we last sent it.
      maybe_rescue_retransmit();
    }
  } else if (hdr.ack == snd_una_ && flight() > 0 && hdr.payload == 0 &&
             !hdr.has(proto::kTcpFin) && !hdr.has(proto::kTcpSyn)) {
    // Duplicate ACK (pure ack, no window change of interest, or new SACK).
    const bool new_sack_info = sacked_.size() != sack_intervals_before ||
                               sacked_bytes_ != sacked_bytes_before;
    ++dup_acks_;
    if (!in_recovery_ && (dup_acks_ >= 3 || (new_sack_info && dup_acks_ >= 2))) {
      in_recovery_ = true;
      recover_ = snd_nxt_;
      high_retx_ = snd_una_;
      retx_inflight_ = 0;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * cfg.mss);
      cwnd_ = ssthresh_;
      if (snd_una_ >= data_end_seq() && fin_sent_) {
        send_control(proto::kTcpFin | proto::kTcpAck, snd_una_);
      }
      arm_rto();
    } else if (in_recovery_) {
      maybe_rescue_retransmit();
    }
  }
  try_send();
}

// Lost-retransmission detection (RACK-flavoured): in recovery, if the
// segment at snd_una_ was last transmitted more than ~2 smoothed RTTs ago
// and ACKs are still flowing, its retransmission was itself lost — resend
// it now instead of stalling until the RTO.
void TcpConnection::maybe_rescue_retransmit() {
  if (!rtt_valid_ || snd_una_ >= data_end_seq()) return;
  const sim::SimTime threshold = std::max(srtt_ * 2, stack_.config().min_rto / 2);
  if (simulator().now() - last_una_tx_at_ < threshold) return;
  const auto& cfg = stack_.config();
  std::uint64_t hole_end = data_end_seq();
  const auto it = sacked_.upper_bound(snd_una_);
  if (it != sacked_.end()) hole_end = std::min(hole_end, it->first);
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg.mss, hole_end - snd_una_));
  emit_segment(snd_una_, len, /*retransmit=*/true);
  retx_inflight_ += len;
}

void TcpConnection::merge_sack(const std::vector<proto::TcpSackBlock>& blocks) {
  for (const auto& b : blocks) {
    std::uint64_t s = std::max(b.start, snd_una_);
    std::uint64_t e = b.end;
    if (e <= s) continue;
    auto it = sacked_.lower_bound(s);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= s) {
        s = prev->first;
        e = std::max(e, prev->second);
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= e) {
      e = std::max(e, it->second);
      it = sacked_.erase(it);
    }
    sacked_.emplace(s, e);
    fack_ = std::max(fack_, e);
  }
  recompute_sacked_bytes();
}

void TcpConnection::recompute_sacked_bytes() {
  sacked_bytes_ = 0;
  for (const auto& [s, e] : sacked_) {
    sacked_bytes_ += static_cast<std::int64_t>(e - std::max(s, snd_una_));
  }
}

std::optional<TcpConnection::Hole> TcpConnection::next_hole() const {
  const auto& cfg = stack_.config();
  const std::uint64_t limit = std::min({recover_, snd_nxt_, data_end_seq()});
  std::uint64_t start = std::max(snd_una_, high_retx_);
  // Skip over SACKed ranges covering `start`.
  while (start < limit) {
    auto it = sacked_.upper_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > start) {
        start = prev->second;
        continue;
      }
    }
    break;
  }
  if (start >= limit) return std::nullopt;
  const auto it = sacked_.upper_bound(start);
  const std::uint64_t hole_end =
      it == sacked_.end() ? limit : std::min(it->first, limit);
  const std::uint32_t len =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(cfg.mss, hole_end - start));
  return Hole{start, len};
}

void TcpConnection::fill_sack(proto::TcpHeader& hdr) const {
  if (ooo_.empty()) return;
  // First block: the one containing the most recently received segment
  // (RFC 2018). Remaining slots: forward-most blocks, so the sender's FACK
  // accounting learns how far delivery has progressed.
  auto recent = ooo_.upper_bound(last_ooo_seq_);
  if (recent != ooo_.begin()) {
    recent = std::prev(recent);
    if (recent->second > last_ooo_seq_) {
      hdr.sack().push_back({recent->first, recent->second});
    }
  }
  for (auto it = ooo_.rbegin();
       it != ooo_.rend() && hdr.sack().size() < proto::TcpHeader::kMaxSackBlocks; ++it) {
    const proto::TcpSackBlock b{it->first, it->second};
    if (!hdr.sack().empty() && hdr.sack().front() == b) continue;
    hdr.sack().push_back(b);
  }
}

void TcpConnection::dctcp_window_end() {
  const auto& cfg = stack_.config();
  if (dctcp_acked_total_ > 0) {
    const double f = static_cast<double>(dctcp_acked_ce_) /
                     static_cast<double>(dctcp_acked_total_);
    dctcp_alpha_ = (1.0 - cfg.dctcp_g) * dctcp_alpha_ + cfg.dctcp_g * f;
    if (dctcp_acked_ce_ > 0) {
      cwnd_ = std::max(cwnd_ * (1.0 - dctcp_alpha_ / 2.0),
                       static_cast<double>(cfg.mss));
      ssthresh_ = cwnd_;
    }
  }
  dctcp_acked_total_ = 0;
  dctcp_acked_ce_ = 0;
  dctcp_window_end_ = snd_nxt_;
}

void TcpConnection::on_segment(const net::Packet& pkt) {
  const proto::TcpHeader& hdr = pkt.tcp();
  const bool ce = pkt.ecn == net::Ecn::kCe;
  last_seg_ce_ = ce;
  if (ce) ece_latched_ = true;
  if (hdr.has(proto::kTcpCwr)) ece_latched_ = false;

  if (hdr.payload > 0) {
    const std::uint64_t seg_start = hdr.seq;
    const std::uint64_t seg_end = hdr.seq + hdr.payload;
    if (seg_end > rcv_nxt_) {
      if (seg_start <= rcv_nxt_) {
        rcv_nxt_ = seg_end;
        // Merge any out-of-order intervals now contiguous.
        auto it = ooo_.begin();
        while (it != ooo_.end() && it->first <= rcv_nxt_) {
          rcv_nxt_ = std::max(rcv_nxt_, it->second);
          it = ooo_.erase(it);
        }
      } else {
        // Out of order: merge the interval into the coalesced set and
        // remember it as the most recent block (RFC 2018: report it first).
        std::uint64_t s = seg_start;
        std::uint64_t e = seg_end;
        auto it = ooo_.lower_bound(s);
        if (it != ooo_.begin()) {
          auto prev = std::prev(it);
          if (prev->second >= s) {
            s = prev->first;
            e = std::max(e, prev->second);
            it = ooo_.erase(prev);
          }
        }
        while (it != ooo_.end() && it->first <= e) {
          e = std::max(e, it->second);
          it = ooo_.erase(it);
        }
        ooo_.emplace(s, e);
        last_ooo_seq_ = seg_start;
      }
    }
    maybe_deliver();
  }

  if (hdr.has(proto::kTcpFin)) {
    const std::uint64_t fin_seq = hdr.seq;
    if (fin_seq <= rcv_nxt_ && !peer_fin_) {
      if (fin_seq == rcv_nxt_) rcv_nxt_ += 1;
      peer_fin_ = true;
      // Passive close: if this side has nothing more to send, FIN back.
      if (!fin_pending_ && !fin_sent_ && send_buffer_bytes() == 0) close();
    } else if (fin_seq < rcv_nxt_) {
      peer_fin_ = true;
    }
  }
  send_ack();
}

void TcpConnection::maybe_deliver() {
  // New in-order payload bytes: everything below rcv_nxt_ minus what the
  // application has already seen (SYN consumed one sequence number).
  const std::int64_t in_order_data =
      static_cast<std::int64_t>(rcv_nxt_ >= kDataStart ? rcv_nxt_ - kDataStart : 0);
  const std::int64_t fresh = in_order_data - rx_delivered_;
  if (fresh <= 0) return;
  rx_delivered_ = in_order_data;
  rx_ready_ += fresh;
  if (on_data) on_data(fresh);
  if (auto_consume_ && rx_ready_ > 0) rx_ready_ = 0;
}

void TcpConnection::maybe_close() {
  // Fully closed once our FIN is acked and the peer's FIN was received.
  if (fin_sent_ && peer_fin_ && snd_una_ >= data_end_seq() + 1 &&
      state_ != State::kClosed) {
    state_ = State::kClosed;
    disarm_rto();
    stack_.remove(TcpStack::ConnKey{peer_, peer_port_, local_port_});
    if (on_closed) on_closed();
  }
}

void TcpConnection::rtt_sample(sim::SimTime sample) {
  const auto& cfg = stack_.config();
  if (!rtt_valid_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    rtt_valid_ = true;
  } else {
    const sim::SimTime err = sample >= srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = rttvar_.scaled(0.75) + err.scaled(0.25);
    srtt_ = srtt_.scaled(0.875) + sample.scaled(0.125);
  }
  rto_ = srtt_ + rttvar_ * 4;
  rto_ = std::max(rto_, cfg.min_rto);
  rto_ = std::min(rto_, cfg.max_rto);
}

void TcpConnection::rto_fire(void* self, std::uint64_t) {
  static_cast<TcpConnection*>(self)->on_rto();
}

// Restart the timer: tracks the oldest unacked segment, so it is reset on
// cumulative ACK advance — never on mere (re)transmission, which would
// starve it while the sender keeps pouring new data. Lives on the shared
// timer wheel (fires up to one wheel granularity late).
void TcpConnection::arm_rto() {
  disarm_rto();
  rto_timer_ = simulator().timers().arm(
      simulator().now() + rto_.scaled(rto_backoff_), &TcpConnection::rto_fire, this);
}

/// Arm only if no timer is pending (used on transmissions).
void TcpConnection::arm_rto_if_idle() {
  if (!simulator().timers().armed(rto_timer_)) arm_rto();
}

void TcpConnection::disarm_rto() {
  simulator().timers().cancel(rto_timer_);
}

void TcpConnection::on_rto() {
  const auto& cfg = stack_.config();
  ++timeouts_;
  ++stack_.timeouts_;
  if (on_timeout) on_timeout();
  if (telemetry::TraceSink::enabled()) {
    telemetry::TraceEvent ev;
    ev.t = simulator().now();
    ev.type = telemetry::TraceEventType::kRto;
    ev.component = stack_.host().name();
    ev.src = stack_.host().id();
    ev.dst = peer_;
    ev.flow = make_flow_hash(stack_.host().id(), local_port_, peer_, peer_port_);
    ev.value = static_cast<std::uint64_t>(flight());
    telemetry::trace().record(ev);
  }
  if (++consecutive_timeouts_ > cfg.max_consecutive_timeouts) {
    // Peer unreachable (or gone mid-close): abort instead of retrying
    // forever — otherwise the simulation never quiesces.
    state_ = State::kClosed;
    disarm_rto();
    stack_.remove(TcpStack::ConnKey{peer_, peer_port_, local_port_});
    if (on_closed) on_closed();
    return;
  }
  rto_backoff_ = std::min(rto_backoff_ * 2.0, 64.0);

  if (state_ == State::kSynSent) {
    send_control(proto::kTcpSyn, 0);
    arm_rto();
    return;
  }
  if (state_ == State::kSynRcvd) {
    send_control(proto::kTcpSyn | proto::kTcpAck, 0);
    arm_rto();
    return;
  }

  if (flight() == 0 && snd_nxt_ < data_end_seq() && effective_window() == 0) {
    // Zero-window probe: one byte beyond the window.
    emit_segment(snd_nxt_, 1, /*retransmit=*/false);
    snd_nxt_ += 1;
    arm_rto();
    return;
  }
  if (flight() == 0) return;  // spurious (everything got acked in flight)

  // Timeout: multiplicative decrease, go-back-N from snd_una_. The SACK
  // scoreboard is discarded (receiver reneging is legal; be safe).
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0 * cfg.mss);
  cwnd_ = cfg.mss;
  in_recovery_ = false;
  dup_acks_ = 0;
  sacked_.clear();
  sacked_bytes_ = 0;
  high_retx_ = 0;
  fack_ = 0;
  retx_inflight_ = 0;
  const std::uint64_t end = data_end_seq();
  if (snd_una_ < end) {
    snd_nxt_ = snd_una_;
    fin_sent_ = false;  // FIN (if sent) must also be retransmitted in order
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg.mss, end - snd_nxt_));
    emit_segment(snd_nxt_, len, /*retransmit=*/true);
    snd_nxt_ += len;
  } else if (fin_sent_) {
    send_control(proto::kTcpFin | proto::kTcpAck, end);
  }
  arm_rto();
  try_send();
}

void TcpConnection::enter_established() {
  state_ = State::kEstablished;
  dctcp_window_end_ = snd_nxt_;
  if (on_established) on_established();
}

}  // namespace mtp::transport
