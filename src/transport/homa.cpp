#include "transport/homa.hpp"

#include <algorithm>
#include <cassert>

namespace mtp::transport {

namespace {
constexpr double kMaxBackoff = 64.0;

std::uint64_t homa_flow_hash(net::NodeId a, proto::PortNum ap, net::NodeId b,
                             proto::PortNum bp) {
  std::uint64_t h = (static_cast<std::uint64_t>(a) << 48) ^
                    (static_cast<std::uint64_t>(b) << 32) ^
                    (static_cast<std::uint64_t>(ap) << 16) ^ bp;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}
}  // namespace

HomaEndpoint::HomaEndpoint(net::Host& host, HomaConfig cfg)
    : host_(host), cfg_(cfg), sim_(host.simulator()) {
  host_.set_mtp_handler([this](net::Packet&& pkt) { on_packet(std::move(pkt)); });
  metrics_ = telemetry::MetricRegistry::global().add(
      "homa", host_.name(), [this](std::vector<telemetry::MetricSample>& out) {
        using telemetry::MetricKind;
        out.push_back({"pkts_sent", MetricKind::kCounter,
                       static_cast<double>(pkts_sent_)});
        out.push_back({"pkts_retransmitted", MetricKind::kCounter,
                       static_cast<double>(pkts_retx_)});
        out.push_back({"grants_issued", MetricKind::kCounter,
                       static_cast<double>(grants_issued_)});
        out.push_back({"acks_sent", MetricKind::kCounter,
                       static_cast<double>(acks_sent_)});
        out.push_back({"msgs_delivered", MetricKind::kCounter,
                       static_cast<double>(msgs_delivered_)});
        out.push_back({"outstanding_messages", MetricKind::kGauge,
                       static_cast<double>(outgoing_.size())});
        out.push_back({"active_incoming", MetricKind::kGauge,
                       static_cast<double>(active_.size())});
        out.push_back({"srtt_us", MetricKind::kGauge,
                       rtt_valid_ ? static_cast<double>(srtt_.ns()) / 1000.0 : 0.0});
        out.push_back({"checksum_drops", MetricKind::kCounter,
                       static_cast<double>(checksum_drops_)});
      });
}

HomaEndpoint::~HomaEndpoint() {
  for (auto& [id, msg] : outgoing_) sim_.timers().cancel(msg.retx_timer);
}

// ------------------------------------------------------------------ sender

proto::MsgId HomaEndpoint::send_message(net::NodeId dst, std::int64_t bytes,
                                        HomaOptions opts, DoneFn on_delivered) {
  assert(bytes > 0 && "empty messages are not a thing");
  const proto::MsgId id = next_msg_id_++;
  OutMsg msg;
  msg.id = id;
  msg.dst = dst;
  msg.opts = opts;
  msg.total_bytes = bytes;
  msg.total_pkts = static_cast<std::uint32_t>((bytes + cfg_.mss - 1) / cfg_.mss);
  msg.state.assign(msg.total_pkts, 0);
  msg.sent_at.assign(msg.total_pkts, sim::SimTime{});
  // The unscheduled window: one BDP goes out immediately, no grant needed.
  msg.granted = std::min<std::int64_t>(bytes, cfg_.rtt_bytes);
  msg.sched_prio = 0;
  msg.started_at = sim_.now();
  msg.done = std::move(on_delivered);
  OutMsg& slot = outgoing_.emplace(id, std::move(msg)).first->second;
  pump(slot);
  return id;
}

void HomaEndpoint::pump(OutMsg& msg) {
  while (msg.next_unsent < msg.total_pkts &&
         static_cast<std::int64_t>(msg.next_unsent) * cfg_.mss < msg.granted) {
    send_data_pkt(msg, msg.next_unsent, /*is_retx=*/false);
    ++msg.next_unsent;
  }
}

void HomaEndpoint::send_data_pkt(OutMsg& msg, std::uint32_t pkt, bool is_retx) {
  const std::uint64_t offset = static_cast<std::uint64_t>(pkt) * cfg_.mss;
  // Priority remapping: the unscheduled prefix rides the top level so short
  // messages cut ahead; granted bytes carry whatever level the receiver's
  // SRPT ranking assigned in the latest grant.
  const bool unscheduled =
      static_cast<std::int64_t>(offset) < std::min<std::int64_t>(cfg_.rtt_bytes, msg.total_bytes);
  net::Packet p;
  p.src = host_.id();
  p.dst = msg.dst;
  p.payload_bytes = msg.pkt_len(pkt, cfg_.mss);
  p.ecn = net::Ecn::kEct;
  p.tc = msg.opts.tc;
  p.priority = unscheduled ? cfg_.unscheduled_priority : msg.sched_prio;
  p.flow_hash = homa_flow_hash(p.src, msg.opts.src_port, msg.dst, msg.opts.dst_port);
  p.uid = sim_.next_packet_uid();

  proto::MtpHeader hdr;
  hdr.src_port = msg.opts.src_port;
  hdr.dst_port = msg.opts.dst_port;
  hdr.type = proto::MtpPacketType::kData;
  hdr.msg_id = msg.id;
  hdr.priority = p.priority;
  hdr.tc = msg.opts.tc;
  hdr.msg_len_bytes = static_cast<std::uint64_t>(msg.total_bytes);
  hdr.msg_len_pkts = msg.total_pkts;
  hdr.pkt_num = pkt;
  hdr.pkt_offset = offset;
  hdr.pkt_len = p.payload_bytes;
  p.header_bytes = cfg_.base_header_bytes;
  p.header = std::move(hdr);

  msg.state[pkt] = static_cast<std::uint8_t>((msg.state[pkt] & ~3u) | 1u |
                                             (is_retx ? 4u : 0u));
  msg.sent_at[pkt] = sim_.now();
  ++pkts_sent_;
  if (is_retx) ++pkts_retx_;
  if (!sim_.timers().armed(msg.retx_timer)) arm_retx(msg, sim_.now() + rto(msg));
  host_.send(std::move(p));
}

void HomaEndpoint::on_ack(const net::Packet& pkt) {
  const auto& hdr = pkt.mtp();
  auto it = outgoing_.find(hdr.msg_id);
  if (it == outgoing_.end()) return;  // message already completed
  OutMsg& msg = it->second;
  bool progressed = false;
  for (const auto& s : hdr.sack()) {
    if (s.msg_id != msg.id || s.pkt_num >= msg.total_pkts) continue;
    std::uint8_t& st = msg.state[s.pkt_num];
    if ((st & 3u) == 2u) continue;  // already sacked
    // Karn: retransmitted packets give ambiguous RTT samples.
    if (!(st & 4u) && (st & 3u) == 1u) rtt_sample(sim_.now() - msg.sent_at[s.pkt_num]);
    st = static_cast<std::uint8_t>((st & ~3u) | 2u);
    ++msg.sacked;
    progressed = true;
  }
  if (progressed) {
    msg.backoff = 1.0;
    while (msg.cursor < msg.total_pkts && (msg.state[msg.cursor] & 3u) == 2u) ++msg.cursor;
  }
  if (hdr.has_overload()) {
    // grant_bytes is the absolute byte offset the receiver allows.
    const auto g = static_cast<std::int64_t>(hdr.overload->grant_bytes);
    if (g > msg.granted) msg.granted = std::min<std::int64_t>(g, msg.total_bytes);
    msg.sched_prio = hdr.priority;
  }
  if (msg.sacked == msg.total_pkts) {
    complete_outgoing(msg);
    return;
  }
  pump(msg);
}

void HomaEndpoint::complete_outgoing(OutMsg& msg) {
  const sim::SimTime fct = sim_.now() - msg.started_at;
  auto done = std::move(msg.done);
  const proto::MsgId id = msg.id;
  sim_.timers().cancel(msg.retx_timer);
  outgoing_.erase(id);  // msg is dangling beyond this point
  if (done) done(id, fct);
}

void HomaEndpoint::rtt_sample(sim::SimTime sample) {
  if (!rtt_valid_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    rtt_valid_ = true;
  } else {
    const sim::SimTime err = sample >= srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = rttvar_.scaled(0.75) + err.scaled(0.25);
    srtt_ = srtt_.scaled(0.875) + sample.scaled(0.125);
  }
}

sim::SimTime HomaEndpoint::rto(const OutMsg& msg) const {
  sim::SimTime r = rtt_valid_ ? srtt_ * 2 + rttvar_ * 4 : cfg_.min_rto.scaled(5.0);
  r = r.scaled(msg.backoff);
  r = std::max(r, cfg_.min_rto);
  r = std::min(r, cfg_.max_rto);
  return r;
}

void HomaEndpoint::retx_fire(void* self, std::uint64_t id) {
  static_cast<HomaEndpoint*>(self)->on_retx_timer(static_cast<proto::MsgId>(id));
}

void HomaEndpoint::arm_retx(OutMsg& msg, sim::SimTime deadline) {
  // Never (re)arm in the past or at the current instant — an `== now` arm
  // would re-fire at this timestamp forever when the oldest packet sits
  // exactly at its deadline.
  const sim::SimTime floor = sim_.now() + sim_.timers().granularity();
  msg.retx_timer =
      sim_.timers().arm(std::max(deadline, floor), &HomaEndpoint::retx_fire, this, msg.id);
}

void HomaEndpoint::on_retx_timer(proto::MsgId id) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;  // completed between arm and fire
  OutMsg& msg = it->second;
  const sim::SimTime deadline = rto(msg);
  const sim::SimTime now = sim_.now();
  bool any_expired = false;
  bool any_inflight = false;
  sim::SimTime oldest = now;
  // The cursor bounds the scan: everything below it is sacked, everything at
  // or above next_unsent was never sent.
  for (std::uint32_t pkt = msg.cursor; pkt < msg.next_unsent; ++pkt) {
    if ((msg.state[pkt] & 3u) != 1u) continue;
    if (now - msg.sent_at[pkt] > deadline) {
      send_data_pkt(msg, pkt, /*is_retx=*/true);
      any_expired = true;
    } else if (!any_inflight || msg.sent_at[pkt] < oldest) {
      oldest = msg.sent_at[pkt];
      any_inflight = true;
    }
  }
  if (any_expired) {
    msg.backoff = std::min(msg.backoff * 2.0, kMaxBackoff);
  } else if (!any_inflight && msg.next_unsent < msg.total_pkts) {
    // Grant-loss liveness probe: every in-flight packet is sacked, unsent
    // bytes remain, and no grant has arrived — the ACK carrying the grant
    // was lost. Send one packet past the grant horizon; the receiver
    // re-acks it and re-issues the grant (Homa's RESEND analog).
    send_data_pkt(msg, msg.next_unsent, /*is_retx=*/false);
    ++msg.next_unsent;
  }
  // The message is incomplete (completion erases it), so always keep a timer
  // pending: either at the oldest surviving packet's deadline or one RTO out.
  arm_retx(msg, any_inflight ? oldest + deadline : now + rto(msg));
}

// ---------------------------------------------------------------- receiver

void HomaEndpoint::on_packet(net::Packet&& pkt) {
  if (!pkt.checksum_ok()) {
    // Payload damaged in flight: count and drop, never deliver. The sender's
    // retransmission timer recovers.
    ++checksum_drops_;
    return;
  }
  if (pkt.mtp().is_ack()) {
    on_ack(pkt);
  } else {
    on_data(std::move(pkt));
  }
}

void HomaEndpoint::listen(proto::PortNum port, MessageHandler handler) {
  handlers_[port] = std::move(handler);
}

void HomaEndpoint::on_data(net::Packet&& pkt) {
  const auto& hdr = pkt.mtp();
  const MsgKey key{pkt.src, hdr.msg_id};

  // Duplicate of an already-delivered message: re-ACK to quench the sender.
  if (!completed_.empty() && completed_.contains(key)) {
    emit_ack(pkt);
    return;
  }

  auto [it, fresh] = incoming_.try_emplace(key);
  InMsg& msg = it->second;
  if (fresh) {
    msg.total_pkts = hdr.msg_len_pkts;
    msg.total_bytes = static_cast<std::int64_t>(hdr.msg_len_bytes);
    msg.have.assign(msg.total_pkts, false);
    // The sender's unscheduled window is implicitly granted.
    msg.granted = std::min<std::int64_t>(msg.total_bytes, cfg_.rtt_bytes);
    msg.tc = hdr.tc;
    msg.src_port = hdr.src_port;
    msg.dst_port = hdr.dst_port;
    msg.first_pkt_at = sim_.now();
    active_.insert({msg.total_bytes, key.src, key.id});
  }

  if (hdr.pkt_num < msg.total_pkts && !msg.have[hdr.pkt_num]) {
    msg.have[hdr.pkt_num] = true;
    ++msg.received;
    const std::int64_t before = msg.total_bytes - msg.received_bytes;
    msg.received_bytes += pkt.payload_bytes;
    if (on_payload) on_payload(pkt.payload_bytes);
    // Remaining bytes shrank: re-key the SRPT set so the grant ranking sees
    // the new shortest-remaining order.
    active_.erase({before, key.src, key.id});
    active_.insert({msg.total_bytes - msg.received_bytes, key.src, key.id});
  }

  if (msg.received == msg.total_pkts) {
    emit_ack(pkt);  // final SACK completes the sender
    active_.erase({0, key.src, key.id});
    auto h = handlers_.find(msg.dst_port);
    ++msgs_delivered_;
    const net::NodeId src = key.src;
    const std::int64_t bytes = msg.total_bytes;
    incoming_.erase(it);  // msg is dangling beyond this point
    completed_.insert(key);
    completed_fifo_.push_back(key);
    while (completed_fifo_.size() > cfg_.completed_cache) {
      completed_.erase(completed_fifo_.front());
      completed_fifo_.pop_front();
    }
    if (h != handlers_.end() && h->second) h->second(src, bytes);
    issue_grants();  // a slot opened: promote the next message
    return;
  }
  emit_ack(pkt);
  issue_grants();
}

void HomaEndpoint::emit_ack(const net::Packet& data) {
  const auto& dh = data.mtp();
  net::Packet p;
  p.src = host_.id();
  p.dst = data.src;
  p.payload_bytes = 0;
  p.ecn = net::Ecn::kNotEct;
  p.tc = data.tc;
  p.priority = data.priority;
  p.flow_hash = homa_flow_hash(p.src, dh.dst_port, data.src, dh.src_port);
  p.uid = sim_.next_packet_uid();

  proto::MtpHeader hdr;
  hdr.src_port = dh.dst_port;
  hdr.dst_port = dh.src_port;
  hdr.type = proto::MtpPacketType::kAck;
  hdr.msg_id = dh.msg_id;
  hdr.tc = dh.tc;
  hdr.priority = dh.priority;
  hdr.msg_len_bytes = dh.msg_len_bytes;
  hdr.msg_len_pkts = dh.msg_len_pkts;
  hdr.pkt_num = dh.pkt_num;
  hdr.sack().push_back({dh.msg_id, dh.pkt_num});
  p.header_bytes = cfg_.base_header_bytes +
                   static_cast<std::uint32_t>(hdr.sack().size() * 12);
  p.header = std::move(hdr);
  ++acks_sent_;
  host_.send(std::move(p));
}

void HomaEndpoint::issue_grants() {
  // Walk the SRPT order: the top `overcommit` incomplete messages each get
  // one rtt_bytes of lookahead past what has arrived, at a priority level
  // that falls with SRPT rank (rank 0 = highest scheduled level).
  int rank = 0;
  for (auto it = active_.begin(); it != active_.end() && rank < cfg_.overcommit;
       ++it, ++rank) {
    const MsgKey key{std::get<1>(*it), std::get<2>(*it)};
    auto mi = incoming_.find(key);
    if (mi == incoming_.end()) continue;
    InMsg& msg = mi->second;
    const std::int64_t desired =
        std::min(msg.total_bytes, msg.received_bytes + cfg_.rtt_bytes);
    if (desired <= msg.granted) continue;
    const int prio = std::max(0, static_cast<int>(cfg_.sched_priorities) - 1 - rank);
    msg.granted = desired;
    send_grant(key, msg, desired, static_cast<std::uint8_t>(prio));
  }
}

void HomaEndpoint::send_grant(const MsgKey& key, InMsg& msg, std::int64_t offset,
                              std::uint8_t prio) {
  net::Packet p;
  p.src = host_.id();
  p.dst = key.src;
  p.payload_bytes = 0;
  p.ecn = net::Ecn::kNotEct;
  p.tc = msg.tc;
  p.priority = prio;
  p.flow_hash = homa_flow_hash(p.src, msg.dst_port, key.src, msg.src_port);
  p.uid = sim_.next_packet_uid();

  proto::MtpHeader hdr;
  hdr.src_port = msg.dst_port;
  hdr.dst_port = msg.src_port;
  hdr.type = proto::MtpPacketType::kAck;
  hdr.msg_id = key.id;
  hdr.tc = msg.tc;
  hdr.priority = prio;  // the scheduled level the sender should use from here
  hdr.msg_len_bytes = static_cast<std::uint64_t>(msg.total_bytes);
  hdr.msg_len_pkts = msg.total_pkts;
  hdr.overload.ensure().grant_bytes = static_cast<std::uint64_t>(offset);
  p.header_bytes = cfg_.base_header_bytes;
  p.header = std::move(hdr);
  ++grants_issued_;
  host_.send(std::move(p));
}

}  // namespace mtp::transport
