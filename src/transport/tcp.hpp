// Simulated TCP (NewReno-style) with optional DCTCP congestion control.
//
// This is the baseline the paper compares MTP against. It models the
// mechanisms the experiments exercise:
//   - three-way handshake (Fig 3's per-message connection cost),
//   - sliding-window byte stream with cumulative ACKs and a receive window
//     (Fig 2's proxy buffering / HOL-blocking trade-off),
//   - slow start, congestion avoidance, fast retransmit/recovery, RTO,
//   - ECN (RFC 3168 echo) and DCTCP's fraction-based window reduction
//     (Figs 5 and 7 baselines).
//
// Payloads are counted bytes, not buffers; sequence numbers are 64-bit so
// wraparound never occurs in simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::transport {

struct TcpConfig {
  std::uint32_t mss = 1000;  ///< payload bytes per segment
  std::uint32_t header_bytes = 40;  ///< accounted TCP/IP header overhead
  std::int64_t init_cwnd_pkts = 10;
  /// Receive-buffer limit; the advertised window is this minus unread bytes.
  std::int64_t rcv_buf_bytes = std::int64_t{1} << 40;
  sim::SimTime min_rto = sim::SimTime::microseconds(200);
  sim::SimTime max_rto = sim::SimTime::milliseconds(100);
  /// Abort the connection after this many consecutive timeouts with no
  /// forward progress (a peer that vanished mid-close would otherwise keep
  /// the retransmission timer alive forever).
  int max_consecutive_timeouts = 12;

  bool ecn = false;    ///< ECT on data, classic ECE/CWR response
  bool dctcp = false;  ///< DCTCP: per-packet ECE echo + alpha-based reduction (implies ecn)
  double dctcp_g = 1.0 / 16.0;

  /// Traffic class stamped on every packet this stack emits (DSCP-style
  /// tenant marking; per-TC switch policies key on it).
  proto::TrafficClassId tc = 0;

  bool uses_ecn() const { return ecn || dctcp; }
};

class TcpStack;

/// One TCP connection endpoint (either side).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State { kSynSent, kSynRcvd, kEstablished, kFinWait, kClosed };

  /// Application hooks. All optional.
  std::function<void()> on_established;
  std::function<void(std::int64_t bytes)> on_data;     ///< new in-order bytes readable
  std::function<void()> on_send_progress;              ///< snd_una advanced
  std::function<void()> on_closed;                     ///< FIN handshake finished
  /// Congestion-avoidance override: returns the cwnd increment in bytes for
  /// `acked` newly acknowledged bytes. MPTCP's Linked-Increases coupling
  /// hooks in here; unset means classic NewReno mss*acked/cwnd. Slow start,
  /// loss response, and recovery are untouched.
  std::function<double(std::int64_t acked)> ca_increase;
  /// Fires on every retransmission timeout, after the stack's timeout
  /// accounting and before the go-back-N resend (the multipath scheduler's
  /// signal to penalize a subflow).
  std::function<void()> on_timeout;

  State state() const { return state_; }

  /// Cancels the RTO wheel timer: it holds a raw pointer to this connection
  /// (unlike the old heap event, which kept a shared_ptr alive).
  ~TcpConnection();

  /// Queue `bytes` of application data for transmission.
  void send(std::int64_t bytes);

  /// Close after all queued data is delivered (sends FIN).
  void close();

  /// In-order bytes received but not yet consumed by the application.
  std::int64_t available() const { return rx_ready_; }

  /// Consume `bytes` from the receive buffer, opening the advertised window.
  /// Only meaningful when auto-consume is off.
  void consume(std::int64_t bytes);

  /// When on (default), received bytes are consumed immediately (an
  /// infinitely fast application). The Fig 2 proxy turns this off to model a
  /// relay that drains at the downstream rate.
  void set_auto_consume(bool v) { auto_consume_ = v; }

  /// Application bytes queued but not yet transmitted for the first time.
  std::int64_t send_buffer_bytes() const { return tx_queued_ - data_sent(); }
  std::int64_t unacked_bytes() const { return static_cast<std::int64_t>(snd_nxt_ - snd_una_); }
  std::int64_t bytes_delivered() const { return delivered_; }  ///< cumulative acked payload
  double cwnd_bytes() const { return cwnd_; }
  sim::SimTime srtt() const { return srtt_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  const std::string& name() const { return name_; }

  /// Peer-advertised receive window (for tests).
  std::int64_t peer_rwnd() const { return peer_rwnd_; }
  /// DCTCP congestion estimate (0 when not running DCTCP).
  double dctcp_alpha() const { return dctcp_alpha_; }

 private:
  friend class TcpStack;
  TcpConnection(TcpStack& stack, net::NodeId peer, proto::PortNum local_port,
                proto::PortNum peer_port, bool active_open);

  void start_active_open();
  void start_passive_open();
  void on_packet(net::Packet&& pkt);
  void on_ack(const proto::TcpHeader& hdr);
  void on_segment(const net::Packet& pkt);
  void try_send();
  void emit_segment(std::uint64_t seq, std::uint32_t len, bool retransmit);
  void send_control(std::uint8_t flags, std::uint64_t seq);
  void send_ack();
  void maybe_rescue_retransmit();
  void arm_rto();
  void arm_rto_if_idle();
  void disarm_rto();
  void on_rto();
  static void rto_fire(void* self, std::uint64_t);  ///< timer-wheel trampoline
  void enter_established();
  void maybe_deliver();
  void maybe_close();
  void rtt_sample(sim::SimTime sample);
  void dctcp_window_end();
  std::int64_t effective_window() const;
  std::int64_t flight() const { return static_cast<std::int64_t>(snd_nxt_ - snd_una_); }
  /// Bytes believed still in the network. FACK rule: everything below the
  /// forward-most SACKed byte that isn't SACKed is presumed lost, so the
  /// pipe is the unsacked data above fack plus outstanding retransmissions.
  std::int64_t pipe() const {
    if (sacked_.empty()) return flight();
    const std::uint64_t f = std::max(fack_, snd_una_);
    return static_cast<std::int64_t>(snd_nxt_ - f) + retx_inflight_;
  }
  std::int64_t data_sent() const;
  std::uint64_t data_end_seq() const;
  void merge_sack(const std::vector<proto::TcpSackBlock>& blocks);
  void recompute_sacked_bytes();
  struct Hole { std::uint64_t seq; std::uint32_t len; };
  std::optional<Hole> next_hole() const;
  void fill_sack(proto::TcpHeader& hdr) const;
  sim::Simulator& simulator();
  void transmit(net::Packet&& pkt);

  TcpStack& stack_;
  std::string name_;
  net::NodeId peer_;
  proto::PortNum local_port_;
  proto::PortNum peer_port_;
  State state_;

  // --- Sender.
  std::int64_t tx_queued_ = 0;       ///< total bytes handed to send() so far
  std::uint64_t snd_una_ = 0;        ///< first unacked sequence number
  std::uint64_t snd_nxt_ = 0;        ///< next sequence to send
  double cwnd_ = 0;                  ///< congestion window, bytes
  double ssthresh_ = 0;
  std::int64_t peer_rwnd_ = std::int64_t{1} << 40;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;        ///< recovery point (snd_nxt at loss detection)

  // --- SACK scoreboard (RFC 2018 + FACK-style pipe accounting).
  std::map<std::uint64_t, std::uint64_t> sacked_;  ///< [start, end) above snd_una_
  std::int64_t sacked_bytes_ = 0;
  std::uint64_t high_retx_ = 0;      ///< end of the highest hole retransmitted this episode
  std::uint64_t fack_ = 0;           ///< forward-most SACKed byte (holes below presumed lost)
  std::int64_t retx_inflight_ = 0;   ///< recovery retransmissions still unaccounted
  sim::SimTime last_una_tx_at_;      ///< last (re)transmission covering snd_una_
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  int consecutive_timeouts_ = 0;
  std::int64_t delivered_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  // --- RTT estimation (Karn's algorithm: samples only from non-rexmitted).
  sim::SimTime srtt_;
  sim::SimTime rttvar_;
  sim::SimTime rto_;
  bool rtt_valid_ = false;
  std::uint64_t rtt_seq_ = 0;        ///< measuring segment end-seq; 0 = none
  sim::SimTime rtt_sent_at_;
  sim::TimerId rto_timer_;  ///< on the simulator's shared timer wheel
  double rto_backoff_ = 1.0;

  // --- Classic ECN sender state.
  bool cwr_pending_ = false;         ///< reduce once per window on ECE
  std::uint64_t ecn_recover_ = 0;

  // --- DCTCP sender state.
  double dctcp_alpha_ = 0.0;
  std::int64_t dctcp_acked_total_ = 0;
  std::int64_t dctcp_acked_ce_ = 0;
  std::uint64_t dctcp_window_end_ = 0;

  // --- Passive-open accept callback (server side only).
  std::function<void(std::shared_ptr<TcpConnection>)> accept_fn_;

  // --- Receiver.
  std::uint64_t rcv_nxt_ = 0;
  std::int64_t rx_delivered_ = 0;  ///< in-order bytes already surfaced to the app
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< out-of-order [start, end), coalesced
  std::uint64_t last_ooo_seq_ = 0;  ///< start of the most recent out-of-order segment
  std::int64_t rx_ready_ = 0;        ///< in-order, unconsumed bytes
  bool auto_consume_ = true;
  bool peer_fin_ = false;
  std::uint64_t fin_seq_ = 0;
  bool ece_latched_ = false;         ///< classic ECN: echo until CWR
  bool last_seg_ce_ = false;         ///< DCTCP: echo CE state of the segment acked
};

/// Per-host TCP stack: demultiplexes packets to connections and listeners.
class TcpStack {
 public:
  using AcceptFn = std::function<void(std::shared_ptr<TcpConnection>)>;

  TcpStack(net::Host& host, TcpConfig cfg);

  /// Active open; on_established fires when the handshake completes.
  std::shared_ptr<TcpConnection> connect(net::NodeId dst, proto::PortNum dst_port);

  /// Passive open: accept connections on `port`.
  void listen(proto::PortNum port, AcceptFn on_accept);

  const TcpConfig& config() const { return cfg_; }
  net::Host& host() { return host_; }
  std::size_t open_connections() const { return conns_.size(); }

  // Stack-wide aggregates across all connections, living and closed (the
  // per-connection counters die with the connection object).
  std::uint64_t total_pkts_sent() const { return pkts_sent_; }
  std::uint64_t total_retransmits() const { return retransmits_; }
  std::uint64_t total_timeouts() const { return timeouts_; }
  /// Packets dropped before demux on payload checksum mismatch; loss
  /// recovery (SACK/RTO) retransmits them like any other drop.
  std::uint64_t total_checksum_drops() const { return checksum_drops_; }

 private:
  friend class TcpConnection;
  struct ConnKey {
    net::NodeId peer;
    proto::PortNum peer_port;
    proto::PortNum local_port;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.peer) << 32) |
                                        (static_cast<std::uint64_t>(k.peer_port) << 16) |
                                        k.local_port);
    }
  };

  void on_packet(net::Packet&& pkt);
  void remove(const ConnKey& key) { conns_.erase(key); }

  net::Host& host_;
  TcpConfig cfg_;
  std::unordered_map<ConnKey, std::shared_ptr<TcpConnection>, ConnKeyHash> conns_;
  std::unordered_map<proto::PortNum, AcceptFn> listeners_;
  proto::PortNum next_ephemeral_ = 10000;
  std::uint64_t pkts_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t checksum_drops_ = 0;
  telemetry::Registration metrics_;
};

}  // namespace mtp::transport
