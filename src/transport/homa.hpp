// Homa-style receiver-driven message transport (Montazeri et al., SIGCOMM'18;
// the "replace TCP in the datacenter" bar the paper's evaluation must clear).
//
// Mechanisms modelled:
//   - Unscheduled first window: a sender blasts the first rtt_bytes of every
//     message immediately at the highest priority — short messages complete
//     in one RTT with no handshake and no grant round-trip.
//   - Receiver-issued grants: bytes beyond the unscheduled window are sent
//     only when the receiver grants them. The receiver keeps its active
//     messages in SRPT order (fewest remaining bytes first) and grants the
//     top `overcommit` messages one rtt_bytes of lookahead each, so the
//     downlink stays busy while the schedule still favors short messages.
//   - Priority remapping: unscheduled packets ride the top priority level;
//     granted packets carry the priority the receiver assigned by SRPT rank,
//     mapped onto the existing per-packet priority/TC fields.
//
// Wire format: the MTP header is reused verbatim (msg_id/len/pkt_num for
// data, SACK lists for acks, the overload block's grant_bytes for grant
// offsets) — so Homa packets get header parsing, checksum fingerprints, and
// switch-side message visibility for free. A HomaEndpoint claims the host's
// MTP protocol handler; a scenario runs either MTP or Homa on a host, never
// both.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::transport {

struct HomaConfig {
  std::uint32_t mss = 1000;             ///< payload bytes per packet
  std::uint32_t base_header_bytes = 40; ///< accounted fixed header overhead
  /// Unscheduled window and per-grant lookahead: roughly one
  /// bandwidth-delay product (25 KB ~ 100G x 2us RTT).
  std::int64_t rtt_bytes = 25'000;
  /// Messages granted concurrently (Homa's overcommitment degree): keeps the
  /// downlink busy when the top choice's sender stalls.
  int overcommit = 2;
  std::uint8_t unscheduled_priority = 7;  ///< highest level, short messages
  std::uint8_t sched_priorities = 4;      ///< scheduled levels 0..n-1 by SRPT rank
  sim::SimTime min_rto = sim::SimTime::microseconds(200);
  sim::SimTime max_rto = sim::SimTime::milliseconds(5);

  /// Completed-message tombstones kept to re-ACK duplicate retransmissions.
  std::size_t completed_cache = 1 << 14;
};

/// Per-message submission metadata (mirrors core::MessageOptions' subset the
/// receiver-driven protocol uses).
struct HomaOptions {
  proto::TrafficClassId tc = 0;
  proto::PortNum src_port = 0;
  proto::PortNum dst_port = 0;
};

/// One Homa transport attached to one host (sender and receiver roles).
class HomaEndpoint {
 public:
  /// A completed incoming message: source, payload size.
  using MessageHandler = std::function<void(net::NodeId src, std::int64_t bytes)>;
  using DoneFn = std::function<void(proto::MsgId, sim::SimTime fct)>;

  HomaEndpoint(net::Host& host, HomaConfig cfg);
  ~HomaEndpoint();
  HomaEndpoint(const HomaEndpoint&) = delete;
  HomaEndpoint& operator=(const HomaEndpoint&) = delete;

  proto::MsgId send_message(net::NodeId dst, std::int64_t bytes,
                            HomaOptions opts = {}, DoneFn on_delivered = {});
  void listen(proto::PortNum port, MessageHandler handler);

  /// Fires once per new (non-duplicate) data packet with its payload size.
  std::function<void(std::int64_t bytes)> on_payload;

  // --- Introspection.
  std::uint64_t pkts_sent() const { return pkts_sent_; }
  std::uint64_t pkts_retransmitted() const { return pkts_retx_; }
  std::uint64_t msgs_delivered() const { return msgs_delivered_; }
  std::uint64_t grants_issued() const { return grants_issued_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t checksum_drops() const { return checksum_drops_; }
  std::size_t outstanding_messages() const { return outgoing_.size(); }
  sim::SimTime srtt() const { return srtt_; }
  const HomaConfig& config() const { return cfg_; }
  net::Host& host() { return host_; }

 private:
  struct OutMsg {
    proto::MsgId id = 0;
    net::NodeId dst = net::kInvalidNode;
    HomaOptions opts;
    std::int64_t total_bytes = 0;
    std::uint32_t total_pkts = 0;
    /// Per packet: bits 0-1 state (0 unsent, 1 inflight, 2 sacked),
    /// bit 2 retransmitted (Karn).
    std::vector<std::uint8_t> state;
    std::vector<sim::SimTime> sent_at;
    std::uint32_t next_unsent = 0;
    std::uint32_t sacked = 0;
    std::uint32_t cursor = 0;  ///< all packets below are sacked
    std::int64_t granted = 0;  ///< bytes the receiver allows (incl. unscheduled)
    std::uint8_t sched_prio = 0;  ///< priority the latest grant assigned
    sim::SimTime started_at;
    sim::TimerId retx_timer;
    double backoff = 1.0;
    DoneFn done;

    std::uint32_t pkt_len(std::uint32_t pkt, std::uint32_t mss) const {
      const std::uint64_t off = static_cast<std::uint64_t>(pkt) * mss;
      return static_cast<std::uint32_t>(
          std::min<std::uint64_t>(mss, static_cast<std::uint64_t>(total_bytes) - off));
    }
  };

  struct InMsg {
    std::vector<bool> have;
    std::uint32_t received = 0;
    std::uint32_t total_pkts = 0;
    std::int64_t total_bytes = 0;
    std::int64_t received_bytes = 0;
    std::int64_t granted = 0;  ///< highest grant offset sent so far
    proto::TrafficClassId tc = 0;
    proto::PortNum src_port = 0;
    proto::PortNum dst_port = 0;
    sim::SimTime first_pkt_at;
  };

  struct MsgKey {
    net::NodeId src;
    proto::MsgId id;
    bool operator==(const MsgKey&) const = default;
  };
  struct MsgKeyHash {
    std::size_t operator()(const MsgKey& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.id);
    }
  };
  /// SRPT order with deterministic ties: (remaining bytes, source, msg id).
  using SrptKey = std::tuple<std::int64_t, net::NodeId, proto::MsgId>;

  void on_packet(net::Packet&& pkt);
  void on_data(net::Packet&& pkt);
  void on_ack(const net::Packet& pkt);
  void pump(OutMsg& msg);
  void send_data_pkt(OutMsg& msg, std::uint32_t pkt, bool is_retx);
  void complete_outgoing(OutMsg& msg);
  void emit_ack(const net::Packet& data);
  void send_grant(const MsgKey& key, InMsg& msg, std::int64_t offset,
                  std::uint8_t prio);
  /// Re-rank the active set and extend grants for the top `overcommit`.
  void issue_grants();
  void arm_retx(OutMsg& msg, sim::SimTime deadline);
  void on_retx_timer(proto::MsgId id);
  static void retx_fire(void* self, std::uint64_t id);
  void rtt_sample(sim::SimTime sample);
  sim::SimTime rto(const OutMsg& msg) const;

  net::Host& host_;
  HomaConfig cfg_;
  sim::Simulator& sim_;

  // --- Sender.
  proto::MsgId next_msg_id_ = 1;
  std::unordered_map<proto::MsgId, OutMsg> outgoing_;
  sim::SimTime srtt_;
  sim::SimTime rttvar_;
  bool rtt_valid_ = false;
  std::uint64_t pkts_sent_ = 0;
  std::uint64_t pkts_retx_ = 0;
  std::uint64_t checksum_drops_ = 0;

  // --- Receiver.
  std::unordered_map<MsgKey, InMsg, MsgKeyHash> incoming_;
  std::set<SrptKey> active_;  ///< incomplete messages in SRPT grant order
  std::unordered_set<MsgKey, MsgKeyHash> completed_;
  std::deque<MsgKey> completed_fifo_;
  std::unordered_map<proto::PortNum, MessageHandler> handlers_;
  std::uint64_t msgs_delivered_ = 0;
  std::uint64_t grants_issued_ = 0;
  std::uint64_t acks_sent_ = 0;

  telemetry::Registration metrics_;
};

}  // namespace mtp::transport
