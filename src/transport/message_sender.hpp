// One send/completion interface over MTP, TCP, and DCTCP.
//
// Harness code (scenario library, benches, sweeps) wants to offer the same
// message workload to different transports and compare completion times.
// MessageSender is that seam: send_message(bytes, done) where done receives
// the flow completion time. The concrete MtpEndpoint / TcpStack APIs stay
// unchanged underneath — these adapters only translate.
//
// Header-only on purpose: MtpMessageSender needs mtp/endpoint.hpp and
// TcpMessageSender needs transport/apps.hpp, and making either library link
// the other for an adapter would invert the dependency graph. Consumers
// already link both.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "mtp/endpoint.hpp"
#include "transport/apps.hpp"

namespace mtp::transport {

/// Transport-agnostic message submission. One instance is bound to a
/// (source host, destination, port) triple at construction; DCTCP vs plain
/// TCP is a TcpConfig knob on the stack handed to TcpMessageSender.
class MessageSender {
 public:
  /// `fct` is the flow completion time (duration, not timestamp).
  using DoneFn = std::function<void(sim::SimTime fct, std::int64_t bytes)>;

  virtual ~MessageSender() = default;
  virtual void send_message(std::int64_t bytes, DoneFn done = {}) = 0;
  virtual std::uint64_t completed() const = 0;
  virtual std::string name() const = 0;
};

/// MTP: one message per call, completion from the endpoint's done callback
/// (which already reports an FCT duration).
class MtpMessageSender final : public MessageSender {
 public:
  MtpMessageSender(core::MtpEndpoint& ep, net::NodeId dst, proto::PortNum dst_port,
                   proto::TrafficClassId tc = 0)
      : ep_(ep), dst_(dst), dst_port_(dst_port), tc_(tc) {}

  void send_message(std::int64_t bytes, DoneFn done = {}) override {
    core::MessageOptions opts;
    opts.dst_port = dst_port_;
    opts.tc = tc_;
    ep_.send_message(dst_, bytes, std::move(opts),
                     [this, bytes, done = std::move(done)](proto::MsgId, sim::SimTime fct) {
                       ++completed_;
                       if (done) done(fct, bytes);
                     });
  }

  std::uint64_t completed() const override { return completed_; }
  std::string name() const override { return "mtp"; }

 private:
  core::MtpEndpoint& ep_;
  net::NodeId dst_;
  proto::PortNum dst_port_;
  proto::TrafficClassId tc_;
  std::uint64_t completed_ = 0;
};

/// TCP/DCTCP: one connection per message (the paper's message-over-TCP
/// model), via TcpPerMessageClient. The stack's TcpConfig decides DCTCP.
class TcpMessageSender final : public MessageSender {
 public:
  TcpMessageSender(TcpStack& stack, net::NodeId dst, proto::PortNum dst_port)
      : client_(stack, dst, dst_port), dctcp_(stack.config().dctcp) {}

  void send_message(std::int64_t bytes, DoneFn done = {}) override {
    client_.send_message(bytes, std::move(done));
  }

  std::uint64_t completed() const override { return client_.completed(); }
  std::string name() const override { return dctcp_ ? "dctcp" : "tcp"; }

 private:
  TcpPerMessageClient client_;
  bool dctcp_;
};

}  // namespace mtp::transport
