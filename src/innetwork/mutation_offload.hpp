// Data-mutation offload (paper §2.2 "Data Mutation", §3.1.2).
//
// A middlebox that transforms message payloads in-flight — compression,
// serialization, preprocessing — changing the message's size and packet
// count. TCP cannot support this (sequence numbers break); MTP can because
// messages are processed atomically: the offload terminates the original
// message (ACKing its packets so the sender completes) and injects the
// transformed message toward the destination under its own reliability.
//
// Buffering is bounded per the paper's requirement: the first packet's
// Msg Len header field lets the device refuse (pass through) any message
// larger than its budget before buffering a single byte.
#pragma once

#include <functional>

#include "innetwork/device_endpoint.hpp"
#include "net/switch.hpp"

namespace mtp::innetwork {

class MutationOffload final : public net::IngressProcessor {
 public:
  /// Transform: given the original message, return the mutated payload size
  /// (and optionally rewrite the AppData). Default: 2x compression.
  using TransformFn = std::function<std::int64_t(const DeviceMessage&)>;

  struct Config {
    /// Only messages addressed to this port are transformed; 0 = all.
    proto::PortNum match_port = 0;
    DeviceReceiver::Config receiver;
    DeviceSender::Config sender;
  };

  MutationOffload(net::Switch& sw, Config cfg, TransformFn transform = {})
      : sw_(sw),
        cfg_(cfg),
        rx_(sw, cfg.receiver),
        tx_(sw, cfg.sender),
        transform_(transform ? std::move(transform) : [](const DeviceMessage& m) {
          return std::max<std::int64_t>(1, m.bytes / 2);
        }) {}

  std::uint64_t messages_mutated() const { return mutated_; }
  std::int64_t bytes_in() const { return bytes_in_; }
  std::int64_t bytes_out() const { return bytes_out_; }

  bool process(net::Packet& pkt, net::Switch&) override {
    if (!pkt.is_mtp()) return false;
    const auto& hdr = pkt.mtp();
    if (hdr.is_ack()) {
      return pkt.dst == sw_.id() && tx_.handle_ack(pkt);
    }
    if (cfg_.match_port != 0 && hdr.dst_port != cfg_.match_port) return false;
    if (pkt.src == sw_.id()) return false;        // our own injections
    if (!rx_.admissible(hdr)) return false;       // over budget: hands off

    auto done = rx_.on_data(pkt);
    if (done) {
      const std::int64_t new_bytes = transform_(*done);
      ++mutated_;
      bytes_in_ += done->bytes;
      bytes_out_ += new_bytes;
      DeviceSender::SendOptions opts;
      opts.tc = done->tc;
      opts.priority = done->priority;
      opts.src_port = done->src_port;
      opts.dst_port = done->dst_port;
      // Provenance rides in AppData: receivers see the original sender.
      net::AppData app = done->app.value_or(net::AppData{});
      if (app.key.empty()) app.key = "from:" + std::to_string(done->src);
      opts.app = std::move(app);
      tx_.send(done->dst, new_bytes, std::move(opts));
    }
    return true;  // consumed (either buffered or completed)
  }

 private:
  net::Switch& sw_;
  Config cfg_;
  DeviceReceiver rx_;
  DeviceSender tx_;
  TransformFn transform_;
  std::uint64_t mutated_ = 0;
  std::int64_t bytes_in_ = 0;
  std::int64_t bytes_out_ = 0;
};

}  // namespace mtp::innetwork
