// Per-entity fair-share enforcement on a *shared* queue (paper §5.3, Fig 7).
//
// The paper's claim: because every MTP packet carries its traffic class and
// end-hosts keep per-(pathlet, TC) congestion state, a switch can enforce a
// fair-share policy at ingress without per-tenant queues. This processor
// implements approximate fair dropping/marking: it estimates each TC's
// arrival rate over a sliding window and, when the egress queue has a
// standing backlog, CE-marks (or in extremis drops) packets of TCs exceeding
// their fair share, with probability proportional to the excess. MTP senders
// react per TC, so over-share tenants back off to the fair rate while the
// queue and its capacity stay fully shared.
#pragma once

#include <array>
#include <memory>

#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace mtp::innetwork {

class FairSharePolicer final : public net::IngressProcessor {
 public:
  struct Config {
    /// Egress link being policed (for capacity and queue depth).
    net::Link* egress = nullptr;
    sim::SimTime update_period = sim::SimTime::microseconds(50);
    /// Engage only when the egress queue exceeds this many packets.
    std::size_t min_queue_pkts = 5;
    /// Start dropping (not just marking) above this over-share ratio.
    double drop_ratio = 4.0;
    /// Rates below this fraction of capacity don't count a TC as active.
    double active_fraction = 0.005;
  };

  FairSharePolicer(sim::Simulator& simulator, Config cfg)
      : sim_(simulator), cfg_(cfg) {
    task_ = std::make_unique<sim::PeriodicTask>(sim_, cfg_.update_period,
                                                [this] { update(); });
    task_->start();
    metrics_ = telemetry::MetricRegistry::global().add(
        "policer", cfg_.egress ? cfg_.egress->name() : "unattached",
        [this](std::vector<telemetry::MetricSample>& out) {
          using telemetry::MetricKind;
          out.push_back({"marked", MetricKind::kCounter, static_cast<double>(marked_)});
          out.push_back({"dropped", MetricKind::kCounter, static_cast<double>(dropped_)});
          out.push_back({"fair_rate_bps", MetricKind::kGauge, fair_rate_bps_});
        });
  }

  bool process(net::Packet& pkt, net::Switch&) override {
    auto& tc = tcs_[pkt.tc];
    tc.window_bytes += pkt.size_bytes();
    if (fair_rate_bps_ <= 0) return false;
    if (cfg_.egress->queue().len_pkts() < cfg_.min_queue_pkts) return false;
    if (tc.rate_bps <= fair_rate_bps_) return false;

    const double over = tc.rate_bps / fair_rate_bps_;
    const double p_mark = 1.0 - 1.0 / over;
    // Deterministic rotation approximates probability p without an RNG
    // (keeps the policer reproducible): mark when the accumulated phase
    // wraps. phase += p per packet; mark on integer crossings.
    tc.phase += p_mark;
    if (tc.phase >= 1.0) {
      tc.phase -= 1.0;
      if (over >= cfg_.drop_ratio || pkt.ecn == net::Ecn::kNotEct) {
        ++dropped_;
        // Attribute the loss to the policed egress queue's split counters —
        // the packet never reaches it, but its drop must not be invisible
        // to queue-level accounting.
        cfg_.egress->queue().note_policer_drop(pkt);
        return true;  // consume = drop
      }
      pkt.ecn = net::Ecn::kCe;
      ++marked_;
    }
    return false;
  }

  double fair_rate_gbps() const { return fair_rate_bps_ / 1e9; }
  std::uint64_t marked() const { return marked_; }
  std::uint64_t dropped() const { return dropped_; }
  double tc_rate_gbps(proto::TrafficClassId tc) const { return tcs_[tc].rate_bps / 1e9; }

 private:
  void update() {
    const double period_s = cfg_.update_period.sec();
    // Police packet-level tenants to the *residual* capacity: bandwidth a
    // fluid bulk flow has reserved on the egress (sim/flow) is not available
    // to share, exactly as it wouldn't be if the bulk bytes were packets.
    const double capacity = static_cast<double>(
        cfg_.egress->residual_bandwidth().bits_per_sec());
    int active = 0;
    for (auto& tc : tcs_) {
      // EWMA over windows so transient bursts don't flip activity.
      const double inst = static_cast<double>(tc.window_bytes) * 8.0 / period_s;
      tc.rate_bps = 0.7 * tc.rate_bps + 0.3 * inst;
      tc.window_bytes = 0;
      if (tc.rate_bps > cfg_.active_fraction * capacity) ++active;
    }
    fair_rate_bps_ = active > 0 ? capacity / active : 0.0;
  }

  struct TcState {
    std::int64_t window_bytes = 0;
    double rate_bps = 0;
    double phase = 0;
  };

  sim::Simulator& sim_;
  Config cfg_;
  std::array<TcState, 256> tcs_{};
  double fair_rate_bps_ = 0;
  std::uint64_t marked_ = 0;
  std::uint64_t dropped_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
  telemetry::Registration metrics_;
};

}  // namespace mtp::innetwork
