// Application-level (L7) load balancer (paper Fig 1 (2a)).
//
// Clients address a *virtual service* node id; the balancer, sitting at a
// switch on the path, rewrites each request message's destination to one of
// the backend replicas — whole messages, never packets, so a replica always
// sees complete requests (inter-message independence in action). Reliability
// stays end-to-end: the replica's ACKs flow straight back to the client,
// which works precisely because MTP acknowledges (Msg ID, Pkt Num), not a
// connection.
//
// Placement policy: least-outstanding-bytes with message-size awareness —
// the visibility into message lengths that the paper argues transports must
// provide (§2.2, §5.2).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "net/switch.hpp"

namespace mtp::innetwork {

class L7LoadBalancer final : public net::IngressProcessor {
 public:
  struct Config {
    net::NodeId virtual_service = net::kInvalidNode;
    proto::PortNum service_port = 0;  ///< 0 = any port on the virtual node
    std::vector<net::NodeId> replicas;
  };

  explicit L7LoadBalancer(Config cfg)
      : cfg_(cfg), outstanding_(cfg.replicas.size(), 0), up_(cfg.replicas.size(), true) {}

  bool process(net::Packet& pkt, net::Switch&) override {
    if (!online_) return false;  // crashed: requests reach the virtual node raw
    if (!pkt.is_mtp()) return false;
    const auto& hdr = pkt.mtp();
    if (hdr.is_ack() || pkt.dst != cfg_.virtual_service) return false;
    if (cfg_.service_port != 0 && hdr.dst_port != cfg_.service_port) return false;
    if (cfg_.replicas.empty()) return false;

    const Key key{pkt.src, hdr.msg_id};
    std::size_t idx;
    auto it = pinned_.find(key);
    if (it != pinned_.end()) {
      idx = it->second;
    } else {
      idx = pick();
      outstanding_[idx] += static_cast<std::int64_t>(hdr.msg_len_bytes);
      if (hdr.msg_len_pkts > 1) pinned_.emplace(key, idx);
      ++assigned_;
    }
    if (hdr.is_last_pkt()) {
      // Whole request has passed: release the pin and the load estimate.
      outstanding_[idx] = std::max<std::int64_t>(
          0, outstanding_[idx] - static_cast<std::int64_t>(hdr.msg_len_bytes));
      pinned_.erase(key);
    }
    pkt.dst = cfg_.replicas[idx];  // rewrite and let normal forwarding run
    return false;
  }

  std::uint64_t requests_assigned() const { return assigned_; }
  std::int64_t outstanding_bytes(std::size_t replica) const {
    return outstanding_[replica];
  }

  /// Backend health ejection: a replica marked down stops receiving new
  /// requests (existing multi-packet pins finish so partially-delivered
  /// requests are not torn between replicas). Marking it back up restores it
  /// to the pick() rotation; its load estimate survived the ejection.
  void set_replica_up(std::size_t replica, bool up) { up_[replica] = up; }
  bool replica_up(std::size_t replica) const { return up_[replica]; }

  /// Crash with state wipe: forget pins and load estimates, stop rewriting.
  /// In-flight multi-packet requests lose their pin — their remaining
  /// packets reach the virtual service node and die; end-to-end recovery
  /// (the client's retry) re-places the whole message.
  void crash() {
    ++crashes_;
    online_ = false;
    pinned_.clear();
    std::fill(outstanding_.begin(), outstanding_.end(), 0);
  }
  void restart() { online_ = true; }
  bool online() const { return online_; }
  std::uint64_t crashes() const { return crashes_; }

 private:
  struct Key {
    net::NodeId src;
    proto::MsgId msg;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.msg);
    }
  };

  // Least outstanding bytes among healthy replicas; ties break round-robin
  // so uniform single-packet workloads still spread. If every replica is
  // ejected, fall back to the overall best — delivering somewhere beats
  // blackholing at the virtual node.
  std::size_t pick() {
    const std::size_t n = outstanding_.size();
    std::size_t best = n;  // sentinel: no healthy replica seen yet
    std::size_t best_any = rr_ % n;
    for (std::size_t off = 0; off < n; ++off) {
      const std::size_t i = (rr_ + off) % n;
      if (outstanding_[i] < outstanding_[best_any]) best_any = i;
      if (!up_[i]) continue;
      if (best == n || outstanding_[i] < outstanding_[best]) best = i;
    }
    if (best == n) best = best_any;
    rr_ = best + 1;
    return best;
  }

  Config cfg_;
  std::vector<std::int64_t> outstanding_;
  std::vector<bool> up_;
  std::unordered_map<Key, std::size_t, KeyHash> pinned_;
  std::uint64_t assigned_ = 0;
  std::uint64_t crashes_ = 0;
  std::size_t rr_ = 0;
  bool online_ = true;
};

}  // namespace mtp::innetwork
