// Application-level (L7) load balancer (paper Fig 1 (2a)).
//
// Clients address a *virtual service* node id; the balancer, sitting at a
// switch on the path, rewrites each request message's destination to one of
// the backend replicas — whole messages, never packets, so a replica always
// sees complete requests (inter-message independence in action). Reliability
// stays end-to-end: the replica's ACKs flow straight back to the client,
// which works precisely because MTP acknowledges (Msg ID, Pkt Num), not a
// connection.
//
// Placement policy: least-outstanding-bytes with message-size awareness —
// the visibility into message lengths that the paper argues transports must
// provide (§2.2, §5.2).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <string>

#include "mtp/overload/breaker.hpp"
#include "net/switch.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::innetwork {

class L7LoadBalancer final : public net::IngressProcessor {
 public:
  struct Config {
    net::NodeId virtual_service = net::kInvalidNode;
    proto::PortNum service_port = 0;  ///< 0 = any port on the virtual node
    std::vector<net::NodeId> replicas;
    /// Per-replica circuit breakers fed by busy-reject ACKs flowing back
    /// through the switch: a replica shedding at a sustained rate is ejected
    /// (breaker open), probed after a cooldown (half-open), and restored on
    /// clean ACKs. Complements the manual set_replica_up() health bit.
    bool breaker_enabled = false;
    overload::CircuitBreaker::Config breaker;
    /// Metrics instance name (one balancer per switch is typical, but the
    /// balancer itself holds no switch reference, so the name is config).
    std::string name = "l7_lb";
  };

  explicit L7LoadBalancer(Config cfg)
      : cfg_(cfg), outstanding_(cfg.replicas.size(), 0), up_(cfg.replicas.size(), true),
        breakers_(cfg.replicas.size(), overload::CircuitBreaker(cfg.breaker)) {
    metrics_ = telemetry::MetricRegistry::global().add(
        "l7_lb", cfg_.name, [this](std::vector<telemetry::MetricSample>& out) {
          using telemetry::MetricKind;
          out.push_back({"requests_assigned", MetricKind::kCounter,
                         static_cast<double>(assigned_)});
          out.push_back({"crashes", MetricKind::kCounter,
                         static_cast<double>(crashes_)});
          std::uint64_t opens = 0, half_opens = 0, closes = 0;
          for (const auto& b : breakers_) {
            opens += b.opens();
            half_opens += b.half_opens();
            closes += b.closes();
          }
          out.push_back({"breaker_opens", MetricKind::kCounter,
                         static_cast<double>(opens)});
          out.push_back({"breaker_half_opens", MetricKind::kCounter,
                         static_cast<double>(half_opens)});
          out.push_back({"breaker_closes", MetricKind::kCounter,
                         static_cast<double>(closes)});
        });
  }

  bool process(net::Packet& pkt, net::Switch& sw) override {
    if (!online_) return false;  // crashed: requests reach the virtual node raw
    if (!pkt.is_mtp()) return false;
    const auto& hdr = pkt.mtp();
    const sim::SimTime now = sw.simulator().now();
    // Replica health observation: ACKs from a replica flowing back toward a
    // client carry the overload verdict. Busy-rejects feed the replica's
    // breaker; clean SACKs count as successes (and close half-open probes).
    // The ACK itself is never consumed — it must reach the client.
    if (cfg_.breaker_enabled && hdr.is_ack()) {
      const std::size_t i = replica_index(pkt.src);
      if (i != cfg_.replicas.size()) {
        if (hdr.has_overload() && hdr.overload->busy()) {
          breakers_[i].on_shed(now);
        } else if (!hdr.sack().empty()) {
          breakers_[i].on_success(now);
        }
      }
    }
    if (hdr.is_ack() || pkt.dst != cfg_.virtual_service) return false;
    if (cfg_.service_port != 0 && hdr.dst_port != cfg_.service_port) return false;
    if (cfg_.replicas.empty()) return false;

    const Key key{pkt.src, hdr.msg_id};
    std::size_t idx;
    auto it = pinned_.find(key);
    if (it != pinned_.end()) {
      idx = it->second;
    } else {
      idx = pick(now);
      outstanding_[idx] += static_cast<std::int64_t>(hdr.msg_len_bytes);
      if (hdr.msg_len_pkts > 1) pinned_.emplace(key, idx);
      ++assigned_;
    }
    if (hdr.is_last_pkt()) {
      // Whole request has passed: release the pin and the load estimate.
      outstanding_[idx] = std::max<std::int64_t>(
          0, outstanding_[idx] - static_cast<std::int64_t>(hdr.msg_len_bytes));
      pinned_.erase(key);
    }
    pkt.dst = cfg_.replicas[idx];  // rewrite and let normal forwarding run
    return false;
  }

  std::uint64_t requests_assigned() const { return assigned_; }
  std::int64_t outstanding_bytes(std::size_t replica) const {
    return outstanding_[replica];
  }

  /// Backend health ejection: a replica marked down stops receiving new
  /// requests (existing multi-packet pins finish so partially-delivered
  /// requests are not torn between replicas). Marking it back up restores it
  /// to the pick() rotation; its load estimate survived the ejection.
  void set_replica_up(std::size_t replica, bool up) { up_[replica] = up; }
  bool replica_up(std::size_t replica) const { return up_[replica]; }
  /// The replica's circuit breaker (tests, experiments).
  overload::CircuitBreaker& breaker(std::size_t replica) { return breakers_[replica]; }
  /// Replicas currently pickable: manually up and breaker not open.
  std::size_t healthy_replicas(sim::SimTime now) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < up_.size(); ++i) n += available(i, now);
    return n;
  }

  /// Crash with state wipe: forget pins and load estimates, stop rewriting.
  /// In-flight multi-packet requests lose their pin — their remaining
  /// packets reach the virtual service node and die; end-to-end recovery
  /// (the client's retry) re-places the whole message.
  void crash() {
    ++crashes_;
    online_ = false;
    pinned_.clear();
    std::fill(outstanding_.begin(), outstanding_.end(), 0);
  }
  void restart() { online_ = true; }
  bool online() const { return online_; }
  std::uint64_t crashes() const { return crashes_; }

 private:
  struct Key {
    net::NodeId src;
    proto::MsgId msg;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.msg);
    }
  };

  std::size_t replica_index(net::NodeId node) const {
    for (std::size_t i = 0; i < cfg_.replicas.size(); ++i) {
      if (cfg_.replicas[i] == node) return i;
    }
    return cfg_.replicas.size();
  }

  /// Manually up AND breaker not open (half-open replicas get probe traffic;
  /// their verdicts drive the next breaker transition).
  bool available(std::size_t i, sim::SimTime now) {
    return up_[i] && (!cfg_.breaker_enabled || breakers_[i].allow(now));
  }

  // Least outstanding bytes among healthy replicas; ties break round-robin
  // so uniform single-packet workloads still spread. If every replica is
  // ejected, fall back to the overall best — delivering somewhere beats
  // blackholing at the virtual node.
  std::size_t pick(sim::SimTime now) {
    const std::size_t n = outstanding_.size();
    std::size_t best = n;  // sentinel: no healthy replica seen yet
    std::size_t best_any = rr_ % n;
    for (std::size_t off = 0; off < n; ++off) {
      const std::size_t i = (rr_ + off) % n;
      if (outstanding_[i] < outstanding_[best_any]) best_any = i;
      if (!available(i, now)) continue;
      if (best == n || outstanding_[i] < outstanding_[best]) best = i;
    }
    if (best == n) best = best_any;
    rr_ = best + 1;
    return best;
  }

  Config cfg_;
  std::vector<std::int64_t> outstanding_;
  std::vector<bool> up_;
  std::vector<overload::CircuitBreaker> breakers_;
  telemetry::Registration metrics_;
  std::unordered_map<Key, std::size_t, KeyHash> pinned_;
  std::uint64_t assigned_ = 0;
  std::uint64_t crashes_ = 0;
  std::size_t rr_ = 0;
  bool online_ = true;
};

}  // namespace mtp::innetwork
