// In-network gradient aggregation (ATP-style, paper §4 "ML Training").
//
// N workers push gradient messages for training round R toward a parameter
// server. A switch on the path terminates each worker's message (ACKing it,
// so workers complete immediately) and accumulates contributions per round.
// When the fan-in is complete — or a straggler timeout fires — it injects a
// single aggregated message to the server: N gradients in, one out.
//
// This is the use case the paper calls out as hard for classic transports:
// the "aggregation level" (how many messages fold into one) changes the
// traffic the server-side link sees, which only works when the unit of
// transport is a mutable, independent message. With pathlets, the
// aggregation switch can also expose itself as its own congestion resource.
#pragma once

#include <charconv>
#include <functional>
#include <string>
#include <unordered_map>

#include "innetwork/device_endpoint.hpp"
#include "mtp/overload/shed_guard.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::innetwork {

class AggregationOffload final : public net::IngressProcessor {
 public:
  struct Config {
    net::NodeId server = net::kInvalidNode;  ///< parameter server
    proto::PortNum service_port = 90;
    std::uint32_t fan_in = 0;  ///< workers per round (required)
    /// Flush a partial aggregate if stragglers keep a round open this long.
    sim::SimTime straggler_timeout = sim::SimTime::milliseconds(2);
    /// Overload shedding: bounded work queue + busy-rejects (off by default).
    overload::ShedConfig shed;
    DeviceReceiver::Config receiver;
    DeviceSender::Config sender;
  };

  AggregationOffload(net::Switch& sw, Config cfg)
      : sw_(sw), cfg_(cfg), rx_(sw, cfg.receiver), tx_(sw, cfg.sender),
        guard_(cfg.shed) {
    metrics_ = telemetry::MetricRegistry::global().add(
        "aggregation", sw_.name(),
        [this](std::vector<telemetry::MetricSample>& out) {
          using telemetry::MetricKind;
          out.push_back({"rounds_completed", MetricKind::kCounter,
                         static_cast<double>(rounds_completed_)});
          out.push_back({"rounds_flushed_partial", MetricKind::kCounter,
                         static_cast<double>(rounds_flushed_partial_)});
          out.push_back({"rounds_open", MetricKind::kGauge,
                         static_cast<double>(rounds_.size())});
          out.push_back({"crashes", MetricKind::kCounter,
                         static_cast<double>(crashes_)});
          guard_.append_metrics(out);
        });
  }

  std::uint64_t rounds_completed() const { return rounds_completed_; }
  std::uint64_t rounds_flushed_partial() const { return rounds_flushed_partial_; }
  std::int64_t bytes_in() const { return bytes_in_; }
  std::int64_t bytes_out() const { return bytes_out_; }
  std::size_t rounds_open() const { return rounds_.size(); }
  std::uint64_t crashes() const { return crashes_; }
  bool online() const { return online_; }
  const overload::ShedGuard& shed_guard() const { return guard_; }

  /// Crash with state wipe: open rounds (and their straggler timers) are
  /// dropped and gradients stop being intercepted — workers' messages flow
  /// straight to the parameter server until restart(). Contributions folded
  /// into a lost round are gone; the training loop's own round retry covers
  /// them, exactly as it would for a lost aggregate message.
  void crash() {
    ++crashes_;
    online_ = false;
    for (auto& [round, r] : rounds_) sw_.simulator().cancel(r.timeout);
    rounds_.clear();
    rx_.clear();
    tx_.clear();
  }
  void restart() { online_ = true; }

  bool process(net::Packet& pkt, net::Switch&) override {
    if (!online_) return false;  // crashed: gradients pass through unaggregated
    if (!pkt.is_mtp()) return false;
    const auto& hdr = pkt.mtp();
    if (hdr.is_ack()) {
      return pkt.dst == sw_.id() && tx_.handle_ack(pkt);
    }
    if (pkt.dst != cfg_.server || hdr.dst_port != cfg_.service_port) return false;
    if (pkt.src == sw_.id()) return false;  // our own aggregate
    // Retransmission of a shed gradient: re-reject, never silently drop.
    if (rx_.rejected(pkt.src, hdr.msg_id)) {
      rx_.busy_reject(pkt, proto::kOverloadBusy);
      return true;
    }
    if (!rx_.tracking(pkt.src, hdr.msg_id)) {
      // Overload shed at adoption: open rounds + reassembly + pending
      // aggregates are the bounded work queue; past the watermark fresh
      // low-priority contributions are busy-rejected so workers stop
      // retransmitting into an overloaded aggregator.
      const std::uint8_t shed = guard_.decide(
          rounds_.size() + rx_.partials() + tx_.outstanding(), hdr.priority,
          hdr.deadline_ns(), sw_.simulator().now());
      if (shed != 0) {
        rx_.busy_reject(pkt, shed);
        return true;
      }
      // Adoption happens on packet 0, where the AppData key rides; later
      // packets of adopted messages keep flowing into the receiver above.
      if (hdr.pkt_num != 0) return false;
      if (!pkt.app || pkt.app->key.rfind("grad:", 0) != 0) return false;
      if (!rx_.admissible(hdr)) return false;  // oversized gradient: pass through
    }

    auto done = rx_.on_data(pkt);
    if (!done) return true;  // packet consumed; message not complete yet

    std::uint64_t round = 0;
    const std::string& key = done->app->key;
    std::from_chars(key.data() + 5, key.data() + key.size(), round);

    auto [it, fresh] = rounds_.try_emplace(round);
    Round& r = it->second;
    if (fresh) {
      r.gradient_bytes = done->bytes;
      r.tc = done->tc;
      r.src_port = done->src_port;
      r.timeout = sw_.simulator().schedule(cfg_.straggler_timeout, [this, round] {
        flush(round, /*partial=*/true);
      });
    }
    ++r.contributions;
    bytes_in_ += done->bytes;
    if (r.contributions >= cfg_.fan_in) flush(round, /*partial=*/false);
    return true;
  }

 private:
  struct Round {
    std::uint32_t contributions = 0;
    std::int64_t gradient_bytes = 0;
    proto::TrafficClassId tc = 0;
    proto::PortNum src_port = 0;
    sim::EventId timeout;
  };

  void flush(std::uint64_t round, bool partial) {
    auto it = rounds_.find(round);
    if (it == rounds_.end()) return;
    Round r = it->second;
    rounds_.erase(it);
    sw_.simulator().cancel(r.timeout);
    if (partial) {
      ++rounds_flushed_partial_;
    } else {
      ++rounds_completed_;
    }
    DeviceSender::SendOptions opts;
    opts.tc = r.tc;
    opts.src_port = r.src_port;
    opts.dst_port = cfg_.service_port;
    opts.app = net::AppData{"grad:" + std::to_string(round),
                            "agg:" + std::to_string(r.contributions)};
    tx_.send(cfg_.server, std::max<std::int64_t>(1, r.gradient_bytes), std::move(opts));
    bytes_out_ += r.gradient_bytes;
  }

  net::Switch& sw_;
  Config cfg_;
  DeviceReceiver rx_;
  DeviceSender tx_;
  overload::ShedGuard guard_;
  telemetry::Registration metrics_;
  std::unordered_map<std::uint64_t, Round> rounds_;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t rounds_flushed_partial_ = 0;
  std::uint64_t crashes_ = 0;
  std::int64_t bytes_in_ = 0;
  std::int64_t bytes_out_ = 0;
  bool online_ = true;
};

}  // namespace mtp::innetwork
