// In-network key-value cache (NetCache-style, paper Fig 1 (1) and §4).
//
// Sits at a switch between clients and a KVS backend. GET requests are MTP
// messages whose AppData key is the requested key and whose header names the
// backend's service port. On a hit, the cache terminates the request
// in-network — ACKs it and injects the response message directly — so the
// backend never sees it. On a miss, the request passes through untouched and
// the cache (optionally) learns the key when the backend's response flows
// back through the switch.
//
// This is exactly the use case TCP forecloses (§2.2): it works because each
// request is an independent, self-describing message that the device can
// parse and answer with bounded state.
#pragma once

#include <list>
#include <string>
#include <unordered_map>

#include "innetwork/device_endpoint.hpp"
#include "mtp/overload/shed_guard.hpp"
#include "net/switch.hpp"

namespace mtp::innetwork {

class KvsCache final : public net::IngressProcessor {
 public:
  struct Config {
    /// Backend node and service port this cache fronts.
    net::NodeId backend = net::kInvalidNode;
    proto::PortNum service_port = 80;
    std::size_t capacity_entries = 1024;
    /// Learn keys from responses flowing back through the switch.
    bool learn_from_responses = true;
    /// Overload shedding: bounded work queue + busy-rejects (off by default).
    overload::ShedConfig shed;
    DeviceSender::Config sender;
    DeviceReceiver::Config receiver;
  };

  KvsCache(net::Switch& sw, Config cfg)
      : sw_(sw), cfg_(cfg), rx_(sw, cfg.receiver), tx_(sw, cfg.sender),
        guard_(cfg.shed) {
    metrics_ = telemetry::MetricRegistry::global().add(
        "kvs_cache", sw_.name(), [this](std::vector<telemetry::MetricSample>& out) {
          using telemetry::MetricKind;
          out.push_back({"hits", MetricKind::kCounter, static_cast<double>(hits_)});
          out.push_back({"misses", MetricKind::kCounter, static_cast<double>(misses_)});
          out.push_back({"entries", MetricKind::kGauge, static_cast<double>(map_.size())});
          out.push_back({"crashes", MetricKind::kCounter, static_cast<double>(crashes_)});
          guard_.append_metrics(out);
        });
  }

  /// Crash with state wipe: the cache forgets everything and stops
  /// intercepting. Requests miss through to the backend until restart() —
  /// the failure mode the paper's bounded-state design makes survivable.
  void crash() {
    ++crashes_;
    online_ = false;
    map_.clear();
    lru_.clear();
    rx_.clear();
    tx_.clear();
  }

  /// Come back empty; the cache re-warms from responses (if learning is on).
  void restart() { online_ = true; }

  bool online() const { return online_; }
  std::uint64_t crashes() const { return crashes_; }
  const DeviceReceiver& receiver() const { return rx_; }
  const overload::ShedGuard& shed_guard() const { return guard_; }

  /// Preload a key (value modelled by size; contents by the string).
  void put(const std::string& key, std::string value, std::int64_t value_bytes) {
    touch(key, Entry{std::move(value), value_bytes});
  }

  bool contains(const std::string& key) const { return map_.contains(key); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t entries() const { return map_.size(); }

  bool process(net::Packet& pkt, net::Switch&) override {
    if (!online_) return false;  // crashed: everything misses through
    if (!pkt.is_mtp()) return false;
    const auto& hdr = pkt.mtp();

    // ACKs addressed to this switch belong to our injected responses.
    if (hdr.is_ack()) {
      return pkt.dst == sw_.id() && tx_.handle_ack(pkt);
    }

    // Backend responses flowing back: learn hot keys, pass through. Never
    // learn from a corrupted response — a poisoned entry would be served to
    // every future requester.
    if (cfg_.learn_from_responses && pkt.src == cfg_.backend && pkt.app &&
        !pkt.app->key.empty() && pkt.checksum_ok()) {
      if (!map_.contains(pkt.app->key)) {
        touch(pkt.app->key,
              Entry{pkt.app->value, static_cast<std::int64_t>(hdr.msg_len_bytes)});
      }
      return false;
    }

    // GET requests toward the backend service. Adoption happens on packet 0
    // (where the AppData key rides); later packets of adopted requests keep
    // flowing into the reassembly below.
    if (pkt.dst != cfg_.backend || hdr.dst_port != cfg_.service_port) return false;
    // Retransmission of a shed request: re-reject (never silently drop, never
    // adopt — a rejected message must not also be delivered).
    if (rx_.rejected(pkt.src, hdr.msg_id)) {
      rx_.busy_reject(pkt, proto::kOverloadBusy);
      return true;
    }
    if (!rx_.tracking(pkt.src, hdr.msg_id)) {
      // Overload shed before any service: expired requests are refused even
      // if they would miss through (serving them downstream is wasted work),
      // and past the watermark low-priority fresh requests are busy-rejected.
      const std::uint8_t shed =
          guard_.decide(rx_.partials() + tx_.outstanding(), hdr.priority,
                        hdr.deadline_ns(), sw_.simulator().now());
      if (shed != 0) {
        rx_.busy_reject(pkt, shed);
        return true;
      }
      if (hdr.pkt_num != 0) return false;
      if (!pkt.app || pkt.app->key.empty()) return false;
      if (!rx_.admissible(hdr)) return false;  // oversized request: not ours
      if (!map_.contains(pkt.app->key)) {
        ++misses_;
        return false;  // backend will answer
      }
    }

    // Hit. Consume the request message (ACK + reassemble; answer on the
    // final packet so multi-packet requests work too).
    auto done = rx_.on_data(pkt);
    if (done) {
      auto it = map_.find(done->app ? done->app->key : "");
      if (it == map_.end()) return true;  // evicted while the request flowed in
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      DeviceSender::SendOptions opts;
      opts.tc = done->tc;
      opts.priority = done->priority;
      opts.src_port = cfg_.service_port;
      opts.dst_port = done->src_port;  // reply to the requester's port
      // RPC transparency: if the request carried a correlation tag in its
      // AppData value (the RpcClient convention), echo it as the reply key —
      // exactly what the real backend's RpcServer would do.
      const std::string reply_key =
          !done->app->value.empty() ? done->app->value : done->app->key;
      opts.app = net::AppData{reply_key, it->second.entry.value};
      tx_.send(done->src, std::max<std::int64_t>(1, it->second.entry.value_bytes),
               std::move(opts));
    }
    return true;
  }

 private:
  struct Entry {
    std::string value;
    std::int64_t value_bytes = 0;
  };
  struct Slot {
    Entry entry;
    std::list<std::string>::iterator lru_pos;
  };

  void touch(const std::string& key, Entry e) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.entry = std::move(e);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    lru_.push_front(key);
    map_.emplace(key, Slot{std::move(e), lru_.begin()});
    while (map_.size() > cfg_.capacity_entries) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  net::Switch& sw_;
  Config cfg_;
  DeviceReceiver rx_;
  DeviceSender tx_;
  overload::ShedGuard guard_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t crashes_ = 0;
  bool online_ = true;
  telemetry::Registration metrics_;
};

}  // namespace mtp::innetwork
