// Message-level machinery for in-network compute devices.
//
// A device that terminates MTP messages (cache answering a request,
// mutation offload re-emitting a transformed message) needs two halves:
//
//   DeviceReceiver — acts as the MTP receiver for messages the device
//     consumes: ACKs every packet (so the original sender completes and
//     stops retransmitting) and reassembles per-message state. Thanks to
//     MTP's per-packet message attributes, this needs only bounded state:
//     the device can reject messages larger than its buffer budget *on the
//     first packet* (the header carries Msg Len) and let them pass through.
//
//   DeviceSender — injects new messages from the switch with lightweight
//     reliability: per-message unacked sets, retransmission on NACK or
//     timeout, bounded retries. Congestion control is intentionally simple
//     (devices sit at line rate next to their egress queue).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "telemetry/trace.hpp"

namespace mtp::innetwork {

/// Reassembled message a device consumed (mirrors core::ReceivedMessage but
/// lives here so innetwork does not depend on the endpoint library).
struct DeviceMessage {
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;  ///< where the message was headed
  proto::MsgId msg_id = 0;
  std::int64_t bytes = 0;
  std::uint8_t priority = 0;
  proto::TrafficClassId tc = 0;
  proto::PortNum src_port = 0;
  proto::PortNum dst_port = 0;
  std::optional<net::AppData> app;
};

class DeviceReceiver {
 public:
  struct Config {
    /// Messages larger than this pass through untouched (bounded buffering —
    /// the paper's "low buffering and computation requirements").
    std::int64_t max_message_bytes = 1 << 20;
    std::size_t completed_cache = 1 << 12;
  };

  DeviceReceiver(net::Switch& sw, Config cfg) : sw_(sw), cfg_(cfg) {}

  /// True if the device is willing to consume this message (fits budget).
  bool admissible(const proto::MtpHeader& hdr) const {
    return hdr.msg_len_bytes <= static_cast<std::uint64_t>(cfg_.max_message_bytes);
  }

  /// True if this receiver already adopted the message (partial or recently
  /// completed). Devices that select messages by AppData — which rides only
  /// on packet 0 — use this to keep consuming the remaining packets.
  bool tracking(net::NodeId src, proto::MsgId id) const {
    const Key key{src, id};
    return partial_.contains(key) || completed_.contains(key);
  }

  /// Consume a data packet: ACK it to the sender and accumulate. Returns the
  /// completed message once all packets arrived. Corrupted packets are
  /// NACKed and never accumulated — an in-network device must not compute on
  /// damaged payloads (the checksum stands in for end-host verification).
  std::optional<DeviceMessage> on_data(const net::Packet& pkt) {
    const auto& hdr = pkt.mtp();
    const Key key{pkt.src, hdr.msg_id};
    if (!pkt.checksum_ok()) {
      ++checksum_drops_;
      ack(pkt, /*nack=*/true);
      return std::nullopt;
    }
    if (pkt.corrupted) ++corrupted_delivered_;  // checksum missed real damage
    ack(pkt, /*nack=*/false);
    if (completed_.contains(key)) return std::nullopt;  // dup of delivered msg
    if (hdr.msg_len_pkts == 0 || hdr.pkt_num >= hdr.msg_len_pkts) return std::nullopt;

    auto [it, fresh] = partial_.try_emplace(key);
    auto& st = it->second;
    if (fresh) {
      st.have.assign(hdr.msg_len_pkts, false);
      st.total_pkts = hdr.msg_len_pkts;
      st.msg.src = pkt.src;
      st.msg.dst = pkt.dst;
      st.msg.msg_id = hdr.msg_id;
      st.msg.bytes = static_cast<std::int64_t>(hdr.msg_len_bytes);
      st.msg.priority = hdr.priority;
      st.msg.tc = hdr.tc;
      st.msg.src_port = hdr.src_port;
      st.msg.dst_port = hdr.dst_port;
    }
    if (pkt.app) st.msg.app = *pkt.app;
    if (!st.have[hdr.pkt_num]) {
      st.have[hdr.pkt_num] = true;
      ++st.received;
    }
    if (st.received != st.total_pkts) return std::nullopt;
    DeviceMessage done = std::move(st.msg);
    partial_.erase(it);
    completed_.insert(key);
    completed_fifo_.push_back(key);
    while (completed_fifo_.size() > cfg_.completed_cache) {
      completed_.erase(completed_fifo_.front());
      completed_fifo_.pop_front();
    }
    return done;
  }

  /// Drop all reassembly state (crash with state wipe). In-flight messages
  /// will be re-offered from packet 0 by the sender's retransmissions.
  void clear() {
    partial_.clear();
    completed_.clear();
    completed_fifo_.clear();
  }

  std::uint64_t checksum_drops() const { return checksum_drops_; }
  /// Corrupted payloads that passed verification — must stay 0.
  std::uint64_t corrupted_delivered() const { return corrupted_delivered_; }
  /// Messages currently under reassembly (overload shedding's work measure).
  std::size_t partials() const { return partial_.size(); }

  /// True if this device busy-rejected the message (overload shed). Devices
  /// check before adopting so every retransmission is re-rejected — a shed
  /// message must never be partially reassembled later.
  bool rejected(net::NodeId src, proto::MsgId id) const {
    return !rejected_.empty() && rejected_.contains(Key{src, id});
  }

  /// Busy-reject a message: explicit NACK-style refusal in the MTP header
  /// overload block (never a silent drop). The sender aborts the message and
  /// surfaces the reject to its RPC layer. Remembered like a completion so
  /// retransmissions are quenched, bounded by the same cache budget.
  void busy_reject(const net::Packet& data, std::uint8_t flags) {
    const auto& dh = data.mtp();
    const Key key{data.src, dh.msg_id};
    if (rejected_.insert(key).second) {
      rejected_fifo_.push_back(key);
      while (rejected_fifo_.size() > cfg_.completed_cache) {
        rejected_.erase(rejected_fifo_.front());
        rejected_fifo_.pop_front();
      }
    }
    ++busy_rejects_;
    net::Packet p;
    p.src = sw_.id();
    p.dst = data.src;
    p.header_bytes = 64;
    p.tc = data.tc;
    p.priority = data.priority;
    p.uid = sw_.simulator().next_packet_uid();
    proto::MtpHeader hdr;
    hdr.src_port = dh.dst_port;
    hdr.dst_port = dh.src_port;
    hdr.type = proto::MtpPacketType::kAck;
    hdr.msg_id = dh.msg_id;
    hdr.tc = dh.tc;
    hdr.msg_len_bytes = dh.msg_len_bytes;
    hdr.msg_len_pkts = dh.msg_len_pkts;
    hdr.pkt_num = dh.pkt_num;
    hdr.overload.ensure().flags = flags;
    p.header = std::move(hdr);
    if (telemetry::TraceSink::enabled()) {
      telemetry::TraceEvent ev;
      ev.t = sw_.simulator().now();
      ev.type = telemetry::TraceEventType::kBusy;
      ev.component = sw_.name();
      ev.src = sw_.id();
      ev.dst = data.src;
      ev.msg_id = dh.msg_id;
      ev.pkt_num = dh.pkt_num;
      ev.bytes = data.size_bytes();
      ev.tc = data.tc;
      ev.value = flags;
      telemetry::trace().record(ev);
    }
    sw_.inject(std::move(p));
  }

  std::uint64_t busy_rejects() const { return busy_rejects_; }

  /// Emit an ACK (or NACK) for a data packet, as an MTP receiver would.
  void ack(const net::Packet& data, bool nack) {
    const auto& dh = data.mtp();
    net::Packet p;
    p.src = sw_.id();
    p.dst = data.src;
    p.header_bytes = 64;
    p.tc = data.tc;
    p.priority = data.priority;
    p.uid = sw_.simulator().next_packet_uid();
    proto::MtpHeader hdr;
    hdr.src_port = dh.dst_port;
    hdr.dst_port = dh.src_port;
    hdr.type = proto::MtpPacketType::kAck;
    hdr.msg_id = dh.msg_id;
    hdr.tc = dh.tc;
    hdr.msg_len_bytes = dh.msg_len_bytes;
    hdr.msg_len_pkts = dh.msg_len_pkts;
    hdr.pkt_num = dh.pkt_num;
    hdr.ack_path_feedback() = dh.path_feedback();
    if (nack) {
      hdr.nack().push_back({dh.msg_id, dh.pkt_num});
    } else {
      hdr.sack().push_back({dh.msg_id, dh.pkt_num});
    }
    p.header = std::move(hdr);
    sw_.inject(std::move(p));
  }

 private:
  struct Key {
    net::NodeId src;
    proto::MsgId id;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.id);
    }
  };
  struct Partial {
    std::vector<bool> have;
    std::uint32_t received = 0;
    std::uint32_t total_pkts = 0;
    DeviceMessage msg;
  };

  net::Switch& sw_;
  Config cfg_;
  std::unordered_map<Key, Partial, KeyHash> partial_;
  std::unordered_set<Key, KeyHash> completed_;
  std::deque<Key> completed_fifo_;
  std::unordered_set<Key, KeyHash> rejected_;
  std::deque<Key> rejected_fifo_;
  std::uint64_t checksum_drops_ = 0;
  std::uint64_t corrupted_delivered_ = 0;
  std::uint64_t busy_rejects_ = 0;
};

// Helper: DeviceMessage carries bytes; packet count comes from headers.
inline std::uint32_t device_msg_pkts(std::int64_t bytes, std::uint32_t mss) {
  return static_cast<std::uint32_t>((bytes + mss - 1) / mss);
}

class DeviceSender {
 public:
  struct Config {
    std::uint32_t mss = 1000;
    std::uint32_t header_bytes = 64;
    sim::SimTime retx_timeout = sim::SimTime::microseconds(500);
    int max_retries = 5;
    /// Packets in flight per message: the device self-clocks on ACKs rather
    /// than dumping whole messages into its egress queue.
    std::uint32_t window_pkts = 64;
  };

  // The retransmit timer runs only while messages are outstanding so idle
  // devices leave the event queue empty.
  DeviceSender(net::Switch& sw, Config cfg) : sw_(sw), cfg_(cfg) {
    task_ = std::make_unique<sim::PeriodicTask>(sw_.simulator(), cfg_.retx_timeout,
                                                [this] { retx_scan(); });
  }

  struct SendOptions {
    std::uint8_t priority = 0;
    proto::TrafficClassId tc = 0;
    proto::PortNum src_port = 0;
    proto::PortNum dst_port = 0;
    std::optional<net::AppData> app;
  };

  proto::MsgId send(net::NodeId dst, std::int64_t bytes, SendOptions opts) {
    const proto::MsgId id = next_id_++;
    Outgoing msg;
    msg.dst = dst;
    msg.bytes = bytes;
    msg.opts = std::move(opts);
    msg.total_pkts = device_msg_pkts(bytes, cfg_.mss);
    for (std::uint32_t k = 0; k < msg.total_pkts; ++k) msg.unsacked.insert(k);
    auto [it, ok] = outgoing_.emplace(id, std::move(msg));
    (void)ok;
    Outgoing& m = it->second;
    // Open a window's worth; each SACK clocks out the next unsent packet.
    while (m.next_unsent < m.total_pkts && m.next_unsent < cfg_.window_pkts) {
      emit(id, m, m.next_unsent++);
    }
    m.last_tx = sw_.simulator().now();
    if (!task_->running()) task_->start();
    return id;
  }

  /// Feed ACK packets addressed to this switch. Returns true if consumed.
  bool handle_ack(const net::Packet& pkt) {
    if (!pkt.is_mtp() || !pkt.mtp().is_ack()) return false;
    const auto& hdr = pkt.mtp();
    bool consumed = false;
    for (const auto& e : hdr.sack()) {
      auto it = outgoing_.find(e.msg_id);
      if (it == outgoing_.end()) continue;
      consumed = true;
      Outgoing& m = it->second;
      if (m.unsacked.erase(e.pkt_num) != 0) {
        m.last_tx = sw_.simulator().now();  // forward progress
        if (m.next_unsent < m.total_pkts) emit(e.msg_id, m, m.next_unsent++);
      }
      if (m.unsacked.empty()) outgoing_.erase(it);
    }
    for (const auto& e : hdr.nack()) {
      auto it = outgoing_.find(e.msg_id);
      if (it == outgoing_.end()) continue;
      consumed = true;
      if (it->second.unsacked.contains(e.pkt_num)) emit(e.msg_id, it->second, e.pkt_num);
    }
    return consumed;
  }

  std::size_t outstanding() const { return outgoing_.size(); }
  std::uint64_t messages_sent() const { return next_id_ - 1; }
  std::uint64_t messages_abandoned() const { return abandoned_; }

  /// Abandon all in-flight messages and stop the retransmit timer (crash
  /// with state wipe). Peers see the messages simply stop arriving.
  void clear() {
    outgoing_.clear();
    if (task_->running()) task_->stop();
  }

 private:
  struct Outgoing {
    net::NodeId dst;
    std::int64_t bytes;
    SendOptions opts;
    std::uint32_t total_pkts;
    std::uint32_t next_unsent = 0;
    std::unordered_set<std::uint32_t> unsacked;
    sim::SimTime last_tx;
    int retries = 0;
  };

  void emit(proto::MsgId id, Outgoing& msg, std::uint32_t pkt_num) {
    net::Packet p;
    p.src = sw_.id();
    p.dst = msg.dst;
    const std::int64_t off = static_cast<std::int64_t>(pkt_num) * cfg_.mss;
    p.payload_bytes = static_cast<std::uint32_t>(
        std::min<std::int64_t>(cfg_.mss, msg.bytes - off));
    p.header_bytes = cfg_.header_bytes;
    p.ecn = net::Ecn::kEct;
    p.tc = msg.opts.tc;
    p.priority = msg.opts.priority;
    p.uid = sw_.simulator().next_packet_uid();
    proto::MtpHeader hdr;
    hdr.src_port = msg.opts.src_port;
    hdr.dst_port = msg.opts.dst_port;
    hdr.msg_id = id;
    hdr.priority = msg.opts.priority;
    hdr.tc = msg.opts.tc;
    hdr.msg_len_bytes = static_cast<std::uint64_t>(msg.bytes);
    hdr.msg_len_pkts = msg.total_pkts;
    hdr.pkt_num = pkt_num;
    hdr.pkt_offset = static_cast<std::uint64_t>(off);
    hdr.pkt_len = p.payload_bytes;
    if (pkt_num == 0 && msg.opts.app) p.app = *msg.opts.app;
    p.header = std::move(hdr);
    sw_.inject(std::move(p));
  }

  void retx_scan() {
    if (outgoing_.empty()) {
      task_->stop();
      return;
    }
    const sim::SimTime now = sw_.simulator().now();
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
      Outgoing& msg = it->second;
      if (now - msg.last_tx < cfg_.retx_timeout) {
        ++it;
        continue;
      }
      if (++msg.retries > cfg_.max_retries) {
        ++abandoned_;
        it = outgoing_.erase(it);
        continue;
      }
      // Retransmit a window's worth of the oldest unacked packets.
      std::uint32_t budget = cfg_.window_pkts;
      for (std::uint32_t k = 0; k < msg.next_unsent && budget > 0; ++k) {
        if (msg.unsacked.contains(k)) {
          emit(it->first, msg, k);
          --budget;
        }
      }
      msg.last_tx = now;
      ++it;
    }
  }

  net::Switch& sw_;
  Config cfg_;
  std::unordered_map<proto::MsgId, Outgoing> outgoing_;
  proto::MsgId next_id_ = 1;
  std::uint64_t abandoned_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace mtp::innetwork
