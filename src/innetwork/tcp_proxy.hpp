// TCP-terminating proxy (paper §2.3, Figure 2).
//
// Models an L7 middlebox that terminates client TCP connections and opens
// its own connections to a backend. The paper's point: such a device must
// either buffer without bound when the backend side is slower (unlimited
// advertised receive window) or throttle the client and head-of-line block
// (limited window). The proxy tracks buffer occupancy and per-byte relay
// latency so the experiment can show both failure modes.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "stats/stats.hpp"
#include "transport/tcp.hpp"

namespace mtp::innetwork {

class TcpProxy {
 public:
  struct Config {
    proto::PortNum listen_port = 80;
    net::NodeId backend = net::kInvalidNode;
    proto::PortNum backend_port = 80;
    /// Max bytes queued toward the backend per session before the proxy
    /// stops reading from the client (its application-level buffer).
    std::int64_t forward_buffer_bytes = std::int64_t{1} << 40;
  };

  /// `stack` is the proxy host's TCP stack; its TcpConfig.rcv_buf_bytes is
  /// the advertised-receive-window knob the Fig 2 experiment turns.
  TcpProxy(transport::TcpStack& stack, Config cfg) : stack_(stack), cfg_(cfg) {
    stack_.listen(cfg_.listen_port, [this](std::shared_ptr<transport::TcpConnection> c) {
      accept(std::move(c));
    });
  }

  /// Total bytes the proxy currently holds across all sessions: unread
  /// client-side receive buffer plus unsent backend-side send buffer.
  std::int64_t buffer_occupancy() const {
    std::int64_t total = 0;
    for (const auto& s : sessions_) {
      total += s->client->available() + s->server->send_buffer_bytes();
    }
    return total;
  }

  std::size_t sessions() const { return sessions_.size(); }
  std::int64_t bytes_relayed() const { return bytes_relayed_; }

  /// Per-chunk time from arrival at the proxy to handoff to the backend
  /// connection — the head-of-line blocking measure.
  const std::vector<double>& relay_latency_us() const { return relay_latency_us_; }

 private:
  struct Session {
    std::shared_ptr<transport::TcpConnection> client;
    std::shared_ptr<transport::TcpConnection> server;
    std::deque<std::pair<std::int64_t, sim::SimTime>> arrivals;  // (bytes, when)
    bool server_ready = false;
  };

  void accept(std::shared_ptr<transport::TcpConnection> client) {
    auto session = std::make_shared<Session>();
    session->client = std::move(client);
    session->client->set_auto_consume(false);
    session->server = stack_.connect(cfg_.backend, cfg_.backend_port);
    // The connections' callbacks must not capture the session by shared_ptr:
    // the session owns the connections, so that would be a reference cycle
    // and neither side would ever be freed. The proxy's sessions_ vector
    // keeps the session alive; the weak_ptr guards connection callbacks that
    // fire after the proxy (and thus the session) is gone.
    std::weak_ptr<Session> weak = session;
    session->server->on_established = [this, weak] {
      if (auto s = weak.lock()) {
        s->server_ready = true;
        pump(*s);
      }
    };
    session->client->on_data = [this, weak](std::int64_t bytes) {
      if (auto s = weak.lock()) {
        s->arrivals.emplace_back(bytes, stack_.host().simulator().now());
        pump(*s);
      }
    };
    session->server->on_send_progress = [this, weak] {
      if (auto s = weak.lock()) pump(*s);
    };
    sessions_.push_back(std::move(session));
  }

  void pump(Session& s) {
    if (!s.server_ready) return;
    while (s.client->available() > 0 &&
           s.server->send_buffer_bytes() < cfg_.forward_buffer_bytes) {
      const std::int64_t room = cfg_.forward_buffer_bytes - s.server->send_buffer_bytes();
      std::int64_t n = std::min(s.client->available(), room);
      s.server->send(n);
      s.client->consume(n);
      bytes_relayed_ += n;
      // Attribute relay latency to the arrival chunks being drained.
      const sim::SimTime now = stack_.host().simulator().now();
      while (n > 0 && !s.arrivals.empty()) {
        auto& [chunk, when] = s.arrivals.front();
        relay_latency_us_.push_back((now - when).us());
        if (chunk <= n) {
          n -= chunk;
          s.arrivals.pop_front();
        } else {
          chunk -= n;
          n = 0;
        }
      }
    }
  }

  transport::TcpStack& stack_;
  Config cfg_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::int64_t bytes_relayed_ = 0;
  std::vector<double> relay_latency_us_;
};

}  // namespace mtp::innetwork
