// Specialized egress queues for in-network policies.
//
// WfqQueue      — per-TC sub-queues with deficit-round-robin service: the
//                 "separate queues per tenant" baseline of Figure 7.
// TrimmingQueue — NDP-style: instead of tail-dropping an MTP data packet on
//                 overflow, trim its payload and forward the header in a
//                 high-priority lane so the receiver can NACK immediately.
#pragma once

#include <array>
#include <optional>

#include "net/queue.hpp"

namespace mtp::innetwork {

/// Deficit-round-robin fair queue over traffic classes. Each TC gets its own
/// FIFO with its own capacity and ECN threshold; service alternates by byte
/// quantum so equal-demand TCs get equal bandwidth regardless of flow count.
class WfqQueue final : public net::Queue {
 public:
  struct Config {
    std::size_t per_tc_capacity_pkts = 128;
    std::size_t ecn_threshold_pkts = 0;
    std::int64_t quantum_bytes = 1500;
  };

  explicit WfqQueue(Config cfg) : cfg_(cfg) {}

  bool enqueue(net::Packet&& pkt) override {
    auto& q = queues_[pkt.tc];
    if (q.pkts.size() >= cfg_.per_tc_capacity_pkts) {
      note_tail_drop(pkt);
      ++q.dropped;
      return false;
    }
    if (cfg_.ecn_threshold_pkts != 0 && q.pkts.size() >= cfg_.ecn_threshold_pkts &&
        pkt.ecn != net::Ecn::kNotEct) {
      pkt.ecn = net::Ecn::kCe;
      ++stats_.ecn_marked;
    }
    q.bytes += pkt.size_bytes();
    bytes_ += pkt.size_bytes();
    ++pkts_;
    q.pkts.push_back(std::move(pkt));
    ++stats_.enqueued;
    return true;
  }

  std::optional<net::Packet> dequeue() override {
    if (pkts_ == 0) return std::nullopt;
    // DRR sweep: find the next TC whose deficit covers its head packet.
    for (int sweep = 0; sweep < 2 * 256; ++sweep) {
      TcQueue& q = queues_[rr_];
      if (q.pkts.empty()) {
        q.deficit = 0;  // inactive classes accumulate nothing
        rr_ = static_cast<std::uint8_t>(rr_ + 1);
        continue;
      }
      if (!q.fresh_round) {
        q.deficit += cfg_.quantum_bytes;
        q.fresh_round = true;
      }
      const auto head_size = q.pkts.front().size_bytes();
      if (q.deficit >= head_size) {
        q.deficit -= head_size;
        net::Packet pkt = q.pkts.pop_front();
        q.bytes -= head_size;
        bytes_ -= head_size;
        --pkts_;
        ++stats_.dequeued;
        if (q.pkts.empty()) q.deficit = 0;
        return pkt;
      }
      q.fresh_round = false;
      rr_ = static_cast<std::uint8_t>(rr_ + 1);
    }
    // Quantum smaller than every head packet (misconfiguration): serve the
    // current class anyway rather than deadlock.
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      TcQueue& q = queues_[(rr_ + i) % queues_.size()];
      if (!q.pkts.empty()) {
        net::Packet pkt = q.pkts.pop_front();
        q.bytes -= pkt.size_bytes();
        bytes_ -= pkt.size_bytes();
        --pkts_;
        ++stats_.dequeued;
        return pkt;
      }
    }
    return std::nullopt;
  }

  std::size_t len_pkts() const override { return pkts_; }
  std::int64_t len_bytes() const override { return bytes_; }
  std::size_t tc_len_pkts(proto::TrafficClassId tc) const { return queues_[tc].pkts.size(); }
  std::uint64_t tc_dropped(proto::TrafficClassId tc) const { return queues_[tc].dropped; }

 private:
  struct TcQueue {
    sim::RingBuffer<net::Packet> pkts;
    std::int64_t bytes = 0;
    std::int64_t deficit = 0;
    std::uint64_t dropped = 0;
    bool fresh_round = false;
  };

  Config cfg_;
  std::array<TcQueue, 256> queues_;
  std::size_t pkts_ = 0;
  std::int64_t bytes_ = 0;
  std::uint8_t rr_ = 0;
};

/// Strict-priority queue over the packet's application-assigned priority
/// (paper §3.1.1: "a priority ... describing the relative priority of
/// parallel messages"). Higher priority values are served first; equal
/// priorities stay FIFO. Capacity and ECN marking apply per priority level.
class StrictPriorityQueue final : public net::Queue {
 public:
  struct Config {
    std::size_t per_level_capacity_pkts = 128;
    std::size_t ecn_threshold_pkts = 0;
  };

  explicit StrictPriorityQueue(Config cfg) : cfg_(cfg) {}

  bool enqueue(net::Packet&& pkt) override {
    auto& q = levels_[pkt.priority];
    if (q.size() >= cfg_.per_level_capacity_pkts) {
      note_tail_drop(pkt);
      return false;
    }
    if (cfg_.ecn_threshold_pkts != 0 && q.size() >= cfg_.ecn_threshold_pkts &&
        pkt.ecn != net::Ecn::kNotEct) {
      pkt.ecn = net::Ecn::kCe;
      ++stats_.ecn_marked;
    }
    bytes_ += pkt.size_bytes();
    ++pkts_;
    q.push_back(std::move(pkt));
    ++stats_.enqueued;
    return true;
  }

  std::optional<net::Packet> dequeue() override {
    if (pkts_ == 0) return std::nullopt;
    for (int level = 255; level >= 0; --level) {
      auto& q = levels_[static_cast<std::size_t>(level)];
      if (q.empty()) continue;
      net::Packet pkt = q.pop_front();
      bytes_ -= pkt.size_bytes();
      --pkts_;
      ++stats_.dequeued;
      return pkt;
    }
    return std::nullopt;
  }

  std::size_t len_pkts() const override { return pkts_; }
  std::int64_t len_bytes() const override { return bytes_; }
  std::size_t level_len_pkts(std::uint8_t level) const { return levels_[level].size(); }

 private:
  Config cfg_;
  std::array<sim::RingBuffer<net::Packet>, 256> levels_;
  std::size_t pkts_ = 0;
  std::int64_t bytes_ = 0;
};

/// NDP-style trimming queue: when the data queue is full, an arriving MTP
/// data packet loses its payload (header survives) and joins the control
/// lane, which is always served first. Receivers NACK trimmed packets so
/// senders retransmit in one RTT instead of waiting out an RTO.
class TrimmingQueue final : public net::Queue {
 public:
  struct Config {
    std::size_t capacity_pkts = 128;
    std::size_t ecn_threshold_pkts = 0;
    std::size_t control_capacity_pkts = 1024;
  };

  explicit TrimmingQueue(Config cfg) : cfg_(cfg) {}

  bool enqueue(net::Packet&& pkt) override {
    const bool is_control = pkt.payload_bytes == 0;
    if (is_control) {
      if (control_.size() >= cfg_.control_capacity_pkts) {
        note_tail_drop(pkt);
        return false;
      }
      bytes_ += pkt.size_bytes();
      control_.push_back(std::move(pkt));
      ++stats_.enqueued;
      return true;
    }
    if (data_.size() >= cfg_.capacity_pkts) {
      if (pkt.is_mtp() && !pkt.mtp().is_ack()) {
        // Trim: drop the payload, keep the header, jump the queue.
        pkt.payload_bytes = 0;
        ++trimmed_;
        if (control_.size() >= cfg_.control_capacity_pkts) {
          note_tail_drop(pkt);
          return false;
        }
        bytes_ += pkt.size_bytes();
        control_.push_back(std::move(pkt));
        ++stats_.enqueued;
        return true;
      }
      note_tail_drop(pkt);
      return false;
    }
    if (cfg_.ecn_threshold_pkts != 0 && data_.size() >= cfg_.ecn_threshold_pkts &&
        pkt.ecn != net::Ecn::kNotEct) {
      pkt.ecn = net::Ecn::kCe;
      ++stats_.ecn_marked;
    }
    bytes_ += pkt.size_bytes();
    data_.push_back(std::move(pkt));
    ++stats_.enqueued;
    return true;
  }

  std::optional<net::Packet> dequeue() override {
    auto take = [this](sim::RingBuffer<net::Packet>& q) {
      net::Packet pkt = q.pop_front();
      bytes_ -= pkt.size_bytes();
      ++stats_.dequeued;
      return pkt;
    };
    if (!control_.empty()) return take(control_);
    if (!data_.empty()) return take(data_);
    return std::nullopt;
  }

  std::size_t len_pkts() const override { return data_.size() + control_.size(); }
  std::int64_t len_bytes() const override { return bytes_; }
  std::uint64_t trimmed() const { return trimmed_; }

 private:
  Config cfg_;
  sim::RingBuffer<net::Packet> data_;
  sim::RingBuffer<net::Packet> control_;
  std::int64_t bytes_ = 0;
  std::uint64_t trimmed_ = 0;
};

}  // namespace mtp::innetwork
