#include "fault/fault.hpp"

#include <algorithm>

#include "telemetry/trace.hpp"

namespace mtp::fault {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Content-derived packet identity for digest folds. pkt.uid is allocated by
// whichever shard's simulator transmitted the packet and is NOT
// shard-invariant (shards use disjoint uid ranges); the headers are.
std::uint64_t packet_identity(const net::Packet& pkt) {
  std::uint64_t h = pkt.flow_hash ^ (std::uint64_t{pkt.size_bytes()} << 1);
  if (pkt.is_mtp()) {
    h ^= splitmix64((std::uint64_t{pkt.mtp().msg_id} << 20) ^ pkt.mtp().pkt_num);
  }
  return h;
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, std::uint64_t seed, std::string name)
    : sim_(sim), seed_(seed), name_(std::move(name)) {
  metrics_ = telemetry::MetricRegistry::global().add(
      "fault", name_, [this](std::vector<telemetry::MetricSample>& out) {
        using telemetry::MetricKind;
        out.push_back({"flaps_scheduled", MetricKind::kCounter,
                       static_cast<double>(flaps_scheduled_)});
        out.push_back({"flaps_executed", MetricKind::kCounter,
                       static_cast<double>(flaps_executed())});
        out.push_back({"crashes", MetricKind::kCounter, static_cast<double>(crashes())});
        out.push_back({"restarts", MetricKind::kCounter, static_cast<double>(restarts())});
        out.push_back({"pkts_dropped", MetricKind::kCounter,
                       static_cast<double>(pkts_dropped())});
        out.push_back({"pkts_corrupted", MetricKind::kCounter,
                       static_cast<double>(pkts_corrupted())});
      });
}

FaultInjector::~FaultInjector() {
  // Detach impairment hooks: the links may outlive this injector and the
  // hooks capture `this`.
  for (auto& [link, st] : impaired_) link->set_fault_hook(nullptr);
}

std::uint64_t FaultInjector::derive_seed() {
  return splitmix64(seed_ ^ splitmix64(++streams_));
}

void FaultInjector::Cell::fold(std::uint64_t v) {
  state ^= splitmix64(v + state);
}

FaultInjector::Cell* FaultInjector::new_cell() {
  cells_.emplace_back(splitmix64(0xa5a5a5a5a5a5a5a5ULL ^ ++cells_created_));
  return &cells_.back();
}

FaultInjector::Cell& FaultInjector::flap_cell(net::Link& link) {
  auto it = flap_cells_.find(&link);
  if (it == flap_cells_.end()) it = flap_cells_.emplace(&link, new_cell()).first;
  return *it->second;
}

std::uint64_t FaultInjector::digest() const {
  std::uint64_t d = schedule_cell_.state;
  for (const Cell& c : cells_) d ^= c.state;
  for (const auto& [link, st] : impaired_) d ^= st->cell.state;
  return d;
}

void FaultInjector::set_link_state(net::Link& link, Cell& cell, bool up) {
  flaps_executed_.fetch_add(1, std::memory_order_relaxed);
  cell.fold(static_cast<std::uint64_t>(link.simulator().now().ns()) * 2 + (up ? 1 : 0));
  link.set_up(up);
}

void FaultInjector::flap_link(net::Link& link, sim::SimTime down_at,
                              sim::SimTime down_for) {
  ++flaps_scheduled_;
  schedule_cell_.fold(hash_name(link.name()));
  schedule_cell_.fold(static_cast<std::uint64_t>(down_at.ns()));
  schedule_cell_.fold(static_cast<std::uint64_t>(down_for.ns()));
  net::Link* l = &link;
  Cell* cell = &flap_cell(link);
  // Flap events run on the link's own simulator: under sim::sharded that is
  // the shard whose worker thread owns the link's queue and stats.
  link.simulator().schedule_at(down_at, [this, l, cell] { set_link_state(*l, *cell, false); });
  link.simulator().schedule_at(down_at + down_for,
                               [this, l, cell] { set_link_state(*l, *cell, true); });
}

void FaultInjector::random_flaps(net::Link& link, sim::SimTime start,
                                 sim::SimTime horizon, sim::SimTime mean_up,
                                 sim::SimTime mean_down) {
  // Pre-generate the whole alternating schedule now, from a stream derived
  // for this call: bounded, deterministic by call order, and independent of
  // anything that happens while the simulation runs.
  sim::Rng rng(derive_seed());
  sim::SimTime t = start + rng.exponential_time(mean_up);
  while (t < horizon) {
    sim::SimTime down = std::max(sim::SimTime::microseconds(1),
                                 rng.exponential_time(mean_down));
    // Guarantee the link is back up at or before the horizon so traffic in
    // flight at the end of the fault window can complete.
    if (t + down > horizon) down = horizon - t;
    if (down <= sim::SimTime::zero()) break;
    flap_link(link, t, down);
    t = t + down + rng.exponential_time(mean_up);
  }
}

void FaultInjector::impair_link(net::Link& link, GilbertElliott::Config model) {
  auto st = std::make_unique<Impairment>(model, derive_seed(),
                                         splitmix64(0x5c5c5c5c5c5c5c5cULL ^ ++cells_created_));
  Impairment* s = st.get();
  impaired_[&link] = std::move(st);
  link.set_fault_hook([this, s](const net::Packet& pkt) {
    const net::FaultAction action = s->chain.step(s->rng);
    if (action != net::FaultAction::kNone) {
      s->cell.fold(packet_identity(pkt) * 4 + static_cast<std::uint64_t>(action));
      if (action == net::FaultAction::kDrop) {
        pkts_dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        pkts_corrupted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return action;
  });
}

void FaultInjector::clear_impairment(net::Link& link) {
  link.set_fault_hook(nullptr);
  impaired_.erase(&link);
}

void FaultInjector::crash_device(std::string name, sim::SimTime at,
                                 sim::SimTime down_for, std::function<void()> crash_fn,
                                 std::function<void()> restart_fn) {
  crash_device(sim_, std::move(name), at, down_for, std::move(crash_fn),
               std::move(restart_fn));
}

void FaultInjector::crash_device(sim::Simulator& on, std::string name, sim::SimTime at,
                                 sim::SimTime down_for, std::function<void()> crash_fn,
                                 std::function<void()> restart_fn) {
  schedule_cell_.fold(hash_name(name));
  schedule_cell_.fold(static_cast<std::uint64_t>(at.ns()));
  schedule_cell_.fold(static_cast<std::uint64_t>(down_for.ns()));
  Cell* cell = new_cell();
  sim::Simulator* s = &on;
  auto trace_crash = [s](const std::string& who, bool restart) {
    if (!telemetry::TraceSink::enabled()) return;
    telemetry::TraceEvent ev;
    ev.t = s->now();
    ev.type = telemetry::TraceEventType::kCrash;
    ev.component = who;
    ev.value = restart ? 1 : 0;
    telemetry::trace().record(ev);
  };
  on.schedule_at(at, [this, s, cell, name, crash_fn = std::move(crash_fn), trace_crash] {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    cell->fold(static_cast<std::uint64_t>(s->now().ns()));
    trace_crash(name, /*restart=*/false);
    if (crash_fn) crash_fn();
  });
  on.schedule_at(at + down_for,
                 [this, s, cell, name, restart_fn = std::move(restart_fn), trace_crash] {
                   restarts_.fetch_add(1, std::memory_order_relaxed);
                   cell->fold(static_cast<std::uint64_t>(s->now().ns()) | 1);
                   trace_crash(name, /*restart=*/true);
                   if (restart_fn) restart_fn();
                 });
}

void FaultInjector::apply(const FaultPlan& plan) {
  for (const auto& f : plan.flaps) flap_link(*f.link, f.down_at, f.down_for);
  for (const auto& i : plan.impairments) impair_link(*i.link, i.model);
  for (const auto& c : plan.crashes) {
    crash_device(c.name, c.at, c.down_for, c.crash_fn, c.restart_fn);
  }
}

}  // namespace mtp::fault
