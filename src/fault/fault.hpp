// mtp::fault — deterministic, seeded fault injection (docs/faults.md).
//
// Everything here runs off the simulator clock and derives its randomness
// from an explicit seed, so a fault schedule is bit-reproducible per seed and
// safe under sim::ParallelSweep (no cross-job state: each injector owns its
// streams, and per-packet draws happen in deterministic event order).
//
// Three fault families:
//   - Link flaps: scheduled (flap_link) or seeded-random (random_flaps, a
//     bounded alternating up/down schedule pre-generated at attach time),
//     driven through the existing net::Link::set_up().
//   - Packet impairment: a per-link Gilbert-Elliott chain decides drop /
//     corrupt / pass for every packet entering the link (bursty loss, the
//     classic two-state wireless-and-bad-optics model).
//   - Crash with state wipe: a device (kvs_cache, l7_lb, aggregation, ...)
//     exposes crash()/restart(); the injector schedules both ends and
//     traces them.
//
// Every decision folds into digest(), so tests can assert that two runs of
// the same seed produced bit-identical fault timelines.
//
// Sharding (sim::sharded): an injector's faults may target links and devices
// spread across shards, so runtime work executes on the *owner's* simulator
// (flaps on link.simulator(), crashes on the simulator passed to
// crash_device) and runtime bookkeeping is shard-safe: counters are relaxed
// atomics, and the digest is a set of per-stream cells — each cell folds its
// own decisions in event order on one shard, and digest() XORs the cells.
// Per-cell order is fixed by the (shard-invariant) simulation timeline and
// XOR commutes, so the digest is bit-identical for every shard count.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::fault {

/// Two-state Markov packet impairment: a Good state with (near-)zero error
/// rates and a Bad state with bursty loss/corruption. Transition draws happen
/// per packet, so burst lengths scale with offered load — the standard
/// Gilbert-Elliott formulation.
struct GilbertElliott {
  struct Config {
    double p_good_to_bad = 0.001;  ///< per-packet chance of entering a burst
    double p_bad_to_good = 0.05;   ///< per-packet chance of the burst ending
    double good_loss = 0.0;
    double good_corrupt = 0.0;
    double bad_loss = 0.25;
    double bad_corrupt = 0.25;
  };

  explicit GilbertElliott(Config cfg) : cfg(cfg) {}

  /// Advance the chain one packet and decide that packet's fate.
  net::FaultAction step(sim::Rng& rng) {
    if (bad) {
      if (rng.bernoulli(cfg.p_bad_to_good)) bad = false;
    } else {
      if (rng.bernoulli(cfg.p_good_to_bad)) bad = true;
    }
    const double loss = bad ? cfg.bad_loss : cfg.good_loss;
    const double corrupt = bad ? cfg.bad_corrupt : cfg.good_corrupt;
    const double u = rng.uniform();
    if (u < loss) return net::FaultAction::kDrop;
    if (u < loss + corrupt) return net::FaultAction::kCorrupt;
    return net::FaultAction::kNone;
  }

  Config cfg;
  bool bad = false;
};

/// Declarative fault schedule: built by hand or generated, then handed to
/// FaultInjector::apply(). Times are absolute simulator times.
struct FaultPlan {
  struct LinkFlap {
    net::Link* link = nullptr;
    sim::SimTime down_at;
    sim::SimTime down_for;
  };
  struct Impairment {
    net::Link* link = nullptr;
    GilbertElliott::Config model;
  };
  struct Crash {
    std::string name;  ///< device name for traces/metrics
    sim::SimTime at;
    sim::SimTime down_for;
    std::function<void()> crash_fn;    ///< wipe state, go offline
    std::function<void()> restart_fn;  ///< come back empty
  };

  std::vector<LinkFlap> flaps;
  std::vector<Impairment> impairments;
  std::vector<Crash> crashes;
};

class FaultInjector {
 public:
  /// `seed` is the root of every random stream this injector derives. Two
  /// injectors built with the same seed and driven by the same call sequence
  /// produce identical fault timelines.
  FaultInjector(sim::Simulator& sim, std::uint64_t seed, std::string name = "injector");

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Schedule one flap: `link` goes down at `down_at` and back up
  /// `down_for` later.
  void flap_link(net::Link& link, sim::SimTime down_at, sim::SimTime down_for);

  /// Seeded-random flap schedule on `link` over [start, horizon): alternating
  /// exponential up/down dwell times. The schedule is pre-generated from a
  /// derived stream at call time (bounded, deterministic by call order) and
  /// the link is guaranteed back up at or before `horizon`.
  void random_flaps(net::Link& link, sim::SimTime start, sim::SimTime horizon,
                    sim::SimTime mean_up, sim::SimTime mean_down);

  /// Attach a Gilbert-Elliott impairment to `link` (replaces any previous
  /// one). Per-packet decisions draw from a stream derived at attach time.
  void impair_link(net::Link& link, GilbertElliott::Config model);

  /// Remove the impairment from `link` (the link is clean again).
  void clear_impairment(net::Link& link);

  /// Schedule a crash-with-state-wipe: `crash_fn` at `at`, `restart_fn`
  /// `down_for` later. `name` identifies the device in traces. Runs on the
  /// injector's own simulator — for a device living on another shard, use
  /// the overload below with that shard's simulator.
  void crash_device(std::string name, sim::SimTime at, sim::SimTime down_for,
                    std::function<void()> crash_fn, std::function<void()> restart_fn);

  /// Same, but the crash/restart events run on `on` (the simulator of the
  /// shard that owns the device's state).
  void crash_device(sim::Simulator& on, std::string name, sim::SimTime at,
                    sim::SimTime down_for, std::function<void()> crash_fn,
                    std::function<void()> restart_fn);

  /// Apply a whole declarative plan.
  void apply(const FaultPlan& plan);

  // --- Introspection. Relaxed atomics: runtime increments come from shard
  // worker threads; reads are exact once a run has joined.
  std::uint64_t flaps_scheduled() const { return flaps_scheduled_; }
  std::uint64_t flaps_executed() const { return flaps_executed_.load(std::memory_order_relaxed); }
  std::uint64_t crashes() const { return crashes_.load(std::memory_order_relaxed); }
  std::uint64_t restarts() const { return restarts_.load(std::memory_order_relaxed); }
  std::uint64_t pkts_dropped() const { return pkts_dropped_.load(std::memory_order_relaxed); }
  std::uint64_t pkts_corrupted() const { return pkts_corrupted_.load(std::memory_order_relaxed); }

  /// Fold of every fault decision this injector made — schedule generation
  /// and per-packet impairment verdicts alike. Equal digests mean
  /// bit-identical fault timelines. XOR of order-sensitive per-stream cells
  /// (see the header comment), so the value is independent of the shard
  /// count the experiment ran with. Call between runs, not during one.
  std::uint64_t digest() const;

 private:
  /// One order-sensitive digest stream. Each cell is owned by exactly one
  /// shard at runtime (the schedule cell by the build thread). Cells start
  /// at a per-creation-index salt so identical fold sequences in different
  /// cells cannot XOR-cancel.
  struct Cell {
    explicit Cell(std::uint64_t salt) : state(salt) {}
    void fold(std::uint64_t v);
    std::uint64_t state;
  };

  struct Impairment {
    GilbertElliott chain;
    sim::Rng rng;
    Cell cell;
    Impairment(GilbertElliott::Config cfg, std::uint64_t seed, std::uint64_t salt)
        : chain(cfg), rng(seed), cell(salt) {}
  };

  /// Derive an independent substream: splitmix64 over (root seed, counter).
  std::uint64_t derive_seed();
  Cell* new_cell();  ///< build-time only (not thread-safe)
  Cell& flap_cell(net::Link& link);
  void set_link_state(net::Link& link, Cell& cell, bool up);

  sim::Simulator& sim_;
  std::uint64_t seed_;
  std::uint64_t streams_ = 0;
  std::uint64_t cells_created_ = 0;
  std::string name_;
  std::unordered_map<net::Link*, std::unique_ptr<Impairment>> impaired_;
  std::unordered_map<net::Link*, Cell*> flap_cells_;  ///< runtime flap folds, per link
  std::deque<Cell> cells_;  ///< flap + crash cells; deque keeps pointers stable
  Cell schedule_cell_{0x9e3779b97f4a7c15ULL};  ///< build-time scheduling decisions
  std::uint64_t flaps_scheduled_ = 0;
  std::atomic<std::uint64_t> flaps_executed_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> pkts_dropped_{0};
  std::atomic<std::uint64_t> pkts_corrupted_{0};
  telemetry::Registration metrics_;
};

}  // namespace mtp::fault
