// mtp::fault — deterministic, seeded fault injection (docs/faults.md).
//
// Everything here runs off the simulator clock and derives its randomness
// from an explicit seed, so a fault schedule is bit-reproducible per seed and
// safe under sim::ParallelSweep (no cross-job state: each injector owns its
// streams, and per-packet draws happen in deterministic event order).
//
// Three fault families:
//   - Link flaps: scheduled (flap_link) or seeded-random (random_flaps, a
//     bounded alternating up/down schedule pre-generated at attach time),
//     driven through the existing net::Link::set_up().
//   - Packet impairment: a per-link Gilbert-Elliott chain decides drop /
//     corrupt / pass for every packet entering the link (bursty loss, the
//     classic two-state wireless-and-bad-optics model).
//   - Crash with state wipe: a device (kvs_cache, l7_lb, aggregation, ...)
//     exposes crash()/restart(); the injector schedules both ends and
//     traces them.
//
// Every decision folds into digest(), so tests can assert that two runs of
// the same seed produced bit-identical fault timelines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::fault {

/// Two-state Markov packet impairment: a Good state with (near-)zero error
/// rates and a Bad state with bursty loss/corruption. Transition draws happen
/// per packet, so burst lengths scale with offered load — the standard
/// Gilbert-Elliott formulation.
struct GilbertElliott {
  struct Config {
    double p_good_to_bad = 0.001;  ///< per-packet chance of entering a burst
    double p_bad_to_good = 0.05;   ///< per-packet chance of the burst ending
    double good_loss = 0.0;
    double good_corrupt = 0.0;
    double bad_loss = 0.25;
    double bad_corrupt = 0.25;
  };

  explicit GilbertElliott(Config cfg) : cfg(cfg) {}

  /// Advance the chain one packet and decide that packet's fate.
  net::FaultAction step(sim::Rng& rng) {
    if (bad) {
      if (rng.bernoulli(cfg.p_bad_to_good)) bad = false;
    } else {
      if (rng.bernoulli(cfg.p_good_to_bad)) bad = true;
    }
    const double loss = bad ? cfg.bad_loss : cfg.good_loss;
    const double corrupt = bad ? cfg.bad_corrupt : cfg.good_corrupt;
    const double u = rng.uniform();
    if (u < loss) return net::FaultAction::kDrop;
    if (u < loss + corrupt) return net::FaultAction::kCorrupt;
    return net::FaultAction::kNone;
  }

  Config cfg;
  bool bad = false;
};

/// Declarative fault schedule: built by hand or generated, then handed to
/// FaultInjector::apply(). Times are absolute simulator times.
struct FaultPlan {
  struct LinkFlap {
    net::Link* link = nullptr;
    sim::SimTime down_at;
    sim::SimTime down_for;
  };
  struct Impairment {
    net::Link* link = nullptr;
    GilbertElliott::Config model;
  };
  struct Crash {
    std::string name;  ///< device name for traces/metrics
    sim::SimTime at;
    sim::SimTime down_for;
    std::function<void()> crash_fn;    ///< wipe state, go offline
    std::function<void()> restart_fn;  ///< come back empty
  };

  std::vector<LinkFlap> flaps;
  std::vector<Impairment> impairments;
  std::vector<Crash> crashes;
};

class FaultInjector {
 public:
  /// `seed` is the root of every random stream this injector derives. Two
  /// injectors built with the same seed and driven by the same call sequence
  /// produce identical fault timelines.
  FaultInjector(sim::Simulator& sim, std::uint64_t seed, std::string name = "injector");

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Schedule one flap: `link` goes down at `down_at` and back up
  /// `down_for` later.
  void flap_link(net::Link& link, sim::SimTime down_at, sim::SimTime down_for);

  /// Seeded-random flap schedule on `link` over [start, horizon): alternating
  /// exponential up/down dwell times. The schedule is pre-generated from a
  /// derived stream at call time (bounded, deterministic by call order) and
  /// the link is guaranteed back up at or before `horizon`.
  void random_flaps(net::Link& link, sim::SimTime start, sim::SimTime horizon,
                    sim::SimTime mean_up, sim::SimTime mean_down);

  /// Attach a Gilbert-Elliott impairment to `link` (replaces any previous
  /// one). Per-packet decisions draw from a stream derived at attach time.
  void impair_link(net::Link& link, GilbertElliott::Config model);

  /// Remove the impairment from `link` (the link is clean again).
  void clear_impairment(net::Link& link);

  /// Schedule a crash-with-state-wipe: `crash_fn` at `at`, `restart_fn`
  /// `down_for` later. `name` identifies the device in traces.
  void crash_device(std::string name, sim::SimTime at, sim::SimTime down_for,
                    std::function<void()> crash_fn, std::function<void()> restart_fn);

  /// Apply a whole declarative plan.
  void apply(const FaultPlan& plan);

  // --- Introspection.
  std::uint64_t flaps_scheduled() const { return flaps_scheduled_; }
  std::uint64_t flaps_executed() const { return flaps_executed_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t pkts_dropped() const { return pkts_dropped_; }
  std::uint64_t pkts_corrupted() const { return pkts_corrupted_; }

  /// Order-sensitive fold of every fault decision this injector made —
  /// schedule generation and per-packet impairment verdicts alike. Equal
  /// digests mean bit-identical fault timelines.
  std::uint64_t digest() const { return digest_; }

 private:
  struct Impairment {
    GilbertElliott chain;
    sim::Rng rng;
    Impairment(GilbertElliott::Config cfg, std::uint64_t seed) : chain(cfg), rng(seed) {}
  };

  /// Derive an independent substream: splitmix64 over (root seed, counter).
  std::uint64_t derive_seed();
  void fold(std::uint64_t v);
  void set_link_state(net::Link& link, bool up);

  sim::Simulator& sim_;
  std::uint64_t seed_;
  std::uint64_t streams_ = 0;
  std::string name_;
  std::unordered_map<net::Link*, std::unique_ptr<Impairment>> impaired_;
  std::uint64_t flaps_scheduled_ = 0;
  std::uint64_t flaps_executed_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t pkts_dropped_ = 0;
  std::uint64_t pkts_corrupted_ = 0;
  std::uint64_t digest_ = 0x9e3779b97f4a7c15ULL;
  telemetry::Registration metrics_;
};

}  // namespace mtp::fault
