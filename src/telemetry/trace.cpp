#include "telemetry/trace.hpp"

#include <array>
#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "telemetry/metrics.hpp"  // json_escape

namespace mtp::telemetry {

namespace {

constexpr std::array<const char*, 19> kTypeNames = {
    "enqueue",   "dequeue",          "drop",      "ecn_mark", "tx",
    "rx",        "ack",              "nack",      "rto",      "pathlet_feedback",
    "link_flap", "corrupt",          "checksum_drop", "crash", "fec_repair",
    "stream_retx", "busy",           "shed",      "hedge",
};

}  // namespace

const char* to_string(TraceEventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kTypeNames.size() ? kTypeNames[i] : "?";
}

std::optional<TraceEventType> trace_event_type_from_string(std::string_view s) {
  for (std::size_t i = 0; i < kTypeNames.size(); ++i) {
    if (s == kTypeNames[i]) return static_cast<TraceEventType>(i);
  }
  return std::nullopt;
}

TraceSink& TraceSink::instance() {
  static thread_local TraceSink sink;
  return sink;
}

void TraceSink::set_capacity(std::size_t events) {
  cap_ = events == 0 ? 1 : events;
  clear();
}

void TraceSink::clear() {
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  suppressed_ = 0;
}

void TraceSink::clear_filters() {
  msg_filter_.reset();
  node_filter_.reset();
  flow_filter_.reset();
}

void TraceSink::record(TraceEvent ev) {
  if (!passes_filters(ev)) {
    ++suppressed_;
    return;
  }
  ++recorded_;
  if (ring_.size() < cap_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % cap_;
  }
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, the oldest event sits at the overwrite cursor.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceSink::count(TraceEventType type) const {
  std::uint64_t n = 0;
  for (const auto& ev : ring_) {
    if (ev.type == type) ++n;
  }
  return n;
}

std::string to_json(const TraceEvent& ev) {
  char buf[256];
  std::string out = "{\"t_ns\":";
  std::snprintf(buf, sizeof(buf), "%" PRId64, ev.t.ns());
  out += buf;
  out += ",\"type\":\"";
  out += to_string(ev.type);
  out += "\",\"component\":\"" + json_escape(ev.component) + "\"";
  std::snprintf(buf, sizeof(buf),
                ",\"src\":%u,\"dst\":%u,\"msg_id\":%" PRIu64
                ",\"pkt_num\":%u,\"bytes\":%u,\"tc\":%u,\"flow\":%" PRIu64
                ",\"pathlet\":%u,\"value\":%" PRIu64 "}",
                ev.src, ev.dst, ev.msg_id, ev.pkt_num, ev.bytes,
                static_cast<unsigned>(ev.tc), ev.flow, ev.pathlet, ev.value);
  out += buf;
  return out;
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (const auto& ev : events()) {
    out += to_json(ev);
    out += '\n';
  }
  return out;
}

namespace {

/// Locate `"key":` in a JSONL line and return a view starting at the value.
std::optional<std::string_view> find_value(std::string_view line,
                                           std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  return line.substr(pos + needle.size());
}

template <typename T>
bool parse_number(std::string_view line, std::string_view key, T& out) {
  const auto v = find_value(line, key);
  if (!v) return false;
  const char* begin = v->data();
  const char* end = begin + v->size();
  return std::from_chars(begin, end, out).ec == std::errc{};
}

/// Parse a quoted JSON string value (handles \" \\ \n \t \r escapes).
bool parse_string(std::string_view line, std::string_view key, std::string& out) {
  const auto v = find_value(line, key);
  if (!v || v->empty() || (*v)[0] != '"') return false;
  out.clear();
  for (std::size_t i = 1; i < v->size(); ++i) {
    const char c = (*v)[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < v->size()) {
      const char esc = (*v)[++i];
      switch (esc) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += esc;
      }
    } else {
      out += c;
    }
  }
  return false;  // unterminated
}

}  // namespace

std::vector<TraceEvent> TraceSink::parse_jsonl(std::string_view text) {
  std::vector<TraceEvent> out;
  std::size_t start = 0;
  while (start < text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;

    TraceEvent ev;
    std::int64_t t_ns = 0;
    std::string type_name;
    if (!parse_number(line, "t_ns", t_ns)) continue;
    if (!parse_string(line, "type", type_name)) continue;
    const auto type = trace_event_type_from_string(type_name);
    if (!type) continue;
    ev.t = sim::SimTime::nanoseconds(t_ns);
    ev.type = *type;
    parse_string(line, "component", ev.component);
    parse_number(line, "src", ev.src);
    parse_number(line, "dst", ev.dst);
    parse_number(line, "msg_id", ev.msg_id);
    parse_number(line, "pkt_num", ev.pkt_num);
    parse_number(line, "bytes", ev.bytes);
    unsigned tc = 0;
    parse_number(line, "tc", tc);
    ev.tc = static_cast<std::uint8_t>(tc);
    parse_number(line, "flow", ev.flow);
    parse_number(line, "pathlet", ev.pathlet);
    parse_number(line, "value", ev.value);
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace mtp::telemetry
