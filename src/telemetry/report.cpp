#include "telemetry/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>

namespace mtp::telemetry {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fct_summary_json(const stats::FctRecorder::SizeSlice& s) {
  std::string out = "{\"count\":" + std::to_string(s.count);
  if (s.count > 0) {
    out += ",\"mean_us\":" + num(s.mean_us) + ",\"p50_us\":" + num(s.p50_us) +
           ",\"p99_us\":" + num(s.p99_us) + ",\"max_us\":" + num(s.max_us);
  }
  out += "}";
  return out;
}

}  // namespace

void RunReport::Section::add_fct(std::string key, const stats::FctRecorder& fct,
                                 std::int64_t split_bytes) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::string block = "\"" + json_escape(key) + "\":";
  std::string body = fct_summary_json(fct.slice(0, kMax));
  if (fct.count() > 0 && split_bytes > 0) {
    body.pop_back();  // reopen the object to append the size buckets
    body += ",\"split_bytes\":" + std::to_string(split_bytes);
    body += ",\"short\":" + fct_summary_json(fct.slice(0, split_bytes));
    body += ",\"long\":" + fct_summary_json(fct.slice(split_bytes, kMax));
    body += "}";
  }
  if (!blocks_.empty()) blocks_ += ",";
  blocks_ += block + body;
}

void RunReport::Section::add_throughput(std::string key,
                                        const stats::ThroughputMeter& meter) {
  if (!blocks_.empty()) blocks_ += ",";
  blocks_ += "\"" + json_escape(key) + "\":{\"avg_gbps\":" +
             num(meter.average_gbps()) +
             ",\"total_bytes\":" + std::to_string(meter.total_bytes()) +
             ",\"window_us\":" + num(meter.window().us()) + "}";
}

RunReport::Section& RunReport::section(const std::string& name) {
  for (auto& s : sections_) {
    if (s.name_ == name) return s;
  }
  sections_.emplace_back();
  sections_.back().name_ = name;
  return sections_.back();
}

std::string RunReport::to_json() const {
  std::string out = "{\n  \"experiment\": \"" + json_escape(experiment_) +
                    "\",\n  \"schema\": \"mtp.telemetry.run_report/v1\",\n"
                    "  \"sections\": [";
  bool first = true;
  for (const auto& s : sections_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"" + json_escape(s.name_) + "\"";
    if (!s.scalars_.empty()) {
      out += ",\"scalars\":{";
      bool f = true;
      for (const auto& [k, v] : s.scalars_) {
        if (!f) out += ",";
        f = false;
        out += "\"" + json_escape(k) + "\":" + num(v);
      }
      out += "}";
    }
    if (!s.texts_.empty()) {
      out += ",\"text\":{";
      bool f = true;
      for (const auto& [k, v] : s.texts_) {
        if (!f) out += ",";
        f = false;
        out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
      }
      out += "}";
    }
    if (!s.blocks_.empty()) out += "," + s.blocks_;
    if (s.registry_) out += ",\"registry\":" + s.registry_->to_json();
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool RunReport::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string RunReport::default_path() const {
  // $MTP_REPORT_DIR wins; otherwise artifacts collect in ./reports (created
  // on demand) so bench output never litters the working directory.
  const char* dir = std::getenv("MTP_REPORT_DIR");
  std::string base = dir != nullptr && *dir != '\0' ? dir : "reports";
  std::error_code ec;
  std::filesystem::create_directories(base, ec);  // best effort; write reports failure
  if (base.back() != '/') base += '/';
  return base + experiment_ + "_report.json";
}

bool RunReport::write() const {
  const std::string path = default_path();
  const bool ok = write_file(path);
  std::fprintf(stderr, "%s run report: %s\n", ok ? "wrote" : "FAILED to write",
               path.c_str());
  return ok;
}

}  // namespace mtp::telemetry
