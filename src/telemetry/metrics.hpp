// mtp::telemetry — unified metrics registry (paper-evaluation observability).
//
// Components (queues, links, switches, transport endpoints, in-network
// devices) register a *provider*: a `component/instance` label pair plus a
// callback that appends the component's current counters and gauges. The
// registry never copies component state on the fast path — a snapshot walks
// the providers and samples live values, so registration costs a few
// allocations at construction time and nothing per packet.
//
// Naming scheme (see docs/telemetry.md):
//   component  — kind of thing: "queue", "link", "switch", "host", "mtp",
//                "tcp", "policer", "kvs_cache", ...
//   instance   — which one: the link/host name ("alice->tor", "sender")
//   metric     — snake_case measurement: "pkts_delivered", "len_bytes", ...
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mtp::telemetry {

enum class MetricKind : std::uint8_t {
  kCounter,  ///< monotone non-decreasing count
  kGauge,    ///< point-in-time sampled value
};

/// One metric appended by a provider callback. `name` must be a string with
/// static storage duration (metric names are compile-time constants).
struct MetricSample {
  const char* name;
  MetricKind kind;
  double value;
};

/// Provider callback: append the component's current samples.
using MetricFn = std::function<void(std::vector<MetricSample>&)>;

class MetricRegistry;

/// RAII provider handle: deregisters on destruction. Movable, not copyable.
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& o) noexcept : reg_(o.reg_), id_(o.id_) {
    o.reg_ = nullptr;
  }
  Registration& operator=(Registration&& o) noexcept {
    if (this != &o) {
      reset();
      reg_ = o.reg_;
      id_ = o.id_;
      o.reg_ = nullptr;
    }
    return *this;
  }
  ~Registration() { reset(); }

  void reset();
  bool active() const { return reg_ != nullptr; }

 private:
  friend class MetricRegistry;
  Registration(MetricRegistry* reg, std::uint64_t id) : reg_(reg), id_(id) {}
  MetricRegistry* reg_ = nullptr;
  std::uint64_t id_ = 0;
};

struct MetricPoint {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;
};

struct ProviderSnapshot {
  std::string component;
  std::string instance;
  std::vector<MetricPoint> metrics;
};

/// Point-in-time capture of every registered provider. Benches stash one in
/// their result structs (the providers deregister when the rig is destroyed,
/// so the snapshot must be taken while the scenario is alive).
class RegistrySnapshot {
 public:
  std::vector<ProviderSnapshot> providers;

  bool empty() const { return providers.empty(); }

  /// Look up one metric; nullopt if the provider or metric is absent.
  std::optional<double> value(std::string_view component, std::string_view instance,
                              std::string_view metric) const;

  /// Sum `metric` over every instance of `component` (e.g. total ECN marks
  /// across all queues).
  double total(std::string_view component, std::string_view metric) const;

  std::string to_json() const;
};

class MetricRegistry {
 public:
  /// The registry components on the calling thread register with. Thread-
  /// local rather than process-wide: each sim::ParallelSweep worker gets a
  /// private registry, so concurrent scenarios neither race on the provider
  /// list nor see each other's instances. Providers deregister via RAII when
  /// a scenario's rig is destroyed, so a worker thread starts every job with
  /// an empty registry. Snapshot inside the job, while the rig is alive.
  static MetricRegistry& global();

  [[nodiscard]] Registration add(std::string component, std::string instance,
                                 MetricFn fn);

  RegistrySnapshot snapshot() const;
  std::size_t provider_count() const { return providers_.size(); }

 private:
  friend class Registration;
  void remove(std::uint64_t id);

  struct Provider {
    std::uint64_t id;
    std::string component;
    std::string instance;
    MetricFn fn;
  };
  std::vector<Provider> providers_;
  std::uint64_t next_id_ = 0;
};

/// Escape a string for embedding in a JSON document (shared by the trace and
/// report writers).
std::string json_escape(std::string_view s);

}  // namespace mtp::telemetry
