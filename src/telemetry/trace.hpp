// mtp::telemetry — packet-event tracing.
//
// A bounded ring buffer of typed packet events. The hooks are always
// compiled in, but the fast path is a single predictable branch on a static
// flag (mirroring sim::Log::enabled) so benchmarks pay ~nothing while
// tracing is off. When the ring fills, the oldest events are overwritten —
// memory stays bounded no matter how long the experiment runs.
//
// Record-time filters restrict capture to one message, one node, or one
// flow hash, so a long run can trace a single transfer without drowning in
// background traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mtp::telemetry {

enum class TraceEventType : std::uint8_t {
  kEnqueue,          ///< packet accepted by an egress queue
  kDequeue,          ///< packet left the queue for the serializer
  kDrop,             ///< packet discarded (queue full, link down, no route)
  kEcnMark,          ///< queue set the CE codepoint
  kTx,               ///< serialization onto the wire finished
  kRx,               ///< delivered to the receiving node
  kAck,              ///< transport emitted an acknowledgement
  kNack,             ///< transport emitted a negative acknowledgement
  kRto,              ///< sender declared a packet lost on timeout
  kPathletFeedback,  ///< sender consumed an echoed pathlet feedback TLV
  kLinkFlap,         ///< link went down (value=0) or came back up (value=1)
  kCorrupt,          ///< fault injection damaged a packet's payload
  kChecksumDrop,     ///< receiver dropped a packet on checksum mismatch
  kCrash,            ///< device crashed (value=0) or restarted (value=1)
  kFecRepair,        ///< mtp::stream reconstructed a lost segment from parity
  kStreamRetx,       ///< mtp::stream fell back to a stream-level retransmit
  kBusy,             ///< overload: explicit busy-reject emitted for a message
  kShed,             ///< overload: queued work discarded before service
  kHedge,            ///< overload: RPC issued a budget-guarded hedged attempt
};

const char* to_string(TraceEventType t);
std::optional<TraceEventType> trace_event_type_from_string(std::string_view s);

struct TraceEvent {
  sim::SimTime t;
  TraceEventType type = TraceEventType::kEnqueue;
  std::string component;      ///< emitting link / node / endpoint name
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t msg_id = 0;   ///< MTP message id (0 for non-MTP packets)
  std::uint32_t pkt_num = 0;  ///< MTP packet number within the message
  std::uint32_t bytes = 0;    ///< wire size of the packet involved
  std::uint8_t tc = 0;
  std::uint64_t flow = 0;     ///< flow hash (all protocols)
  std::uint32_t pathlet = 0;  ///< kPathletFeedback: which pathlet
  std::uint64_t value = 0;    ///< type detail: queue depth, feedback value, ...
};

class TraceSink {
 public:
  /// Fast-path gate: every hook tests this before building an event.
  /// Thread-local, like the sink itself.
  static bool enabled() { return enabled_; }
  static void set_enabled(bool on) { enabled_ = on; }

  /// The sink for the calling thread. Thread-local rather than process-wide
  /// so parallel sweeps stay race-free and deterministic: each worker owns a
  /// private ring. A job that wants tracing enables/clears it inside its own
  /// body (see sim::ParallelSweep's determinism contract in docs/perf.md).
  static TraceSink& instance();

  /// Resize the ring (also clears it). Default capacity: 65536 events.
  void set_capacity(std::size_t events);
  std::size_t capacity() const { return cap_; }
  void clear();

  // --- Record-time filters; unset means match-all.
  void filter_message(std::optional<std::uint64_t> msg_id) { msg_filter_ = msg_id; }
  void filter_node(std::optional<std::uint32_t> node) { node_filter_ = node; }
  void filter_flow(std::optional<std::uint64_t> flow) { flow_filter_ = flow; }
  void clear_filters();
  // Getters so the sharded engine can copy the main thread's filter config
  // onto each worker's thread-local sink before a run.
  std::optional<std::uint64_t> message_filter() const { return msg_filter_; }
  std::optional<std::uint32_t> node_filter() const { return node_filter_; }
  std::optional<std::uint64_t> flow_filter() const { return flow_filter_; }

  void record(TraceEvent ev);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const { return ring_.size(); }
  /// Count of buffered events of one type.
  std::uint64_t count(TraceEventType type) const;

  std::uint64_t recorded() const { return recorded_; }      ///< accepted (incl. overwritten)
  std::uint64_t suppressed() const { return suppressed_; }  ///< rejected by a filter

  /// One JSON object per line, oldest first (schema: docs/telemetry.md).
  std::string to_jsonl() const;
  /// Parse a JSONL export back into events (round-trip for tooling/tests).
  /// Lines that are not valid trace events are skipped.
  static std::vector<TraceEvent> parse_jsonl(std::string_view text);

 private:
  bool passes_filters(const TraceEvent& ev) const {
    if (msg_filter_ && ev.msg_id != *msg_filter_) return false;
    if (node_filter_ && ev.src != *node_filter_ && ev.dst != *node_filter_) return false;
    if (flow_filter_ && ev.flow != *flow_filter_) return false;
    return true;
  }

  static inline thread_local bool enabled_ = false;

  std::size_t cap_ = 1 << 16;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  ///< overwrite cursor once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t suppressed_ = 0;
  std::optional<std::uint64_t> msg_filter_;
  std::optional<std::uint32_t> node_filter_;
  std::optional<std::uint64_t> flow_filter_;
};

/// Shorthand for the global sink.
inline TraceSink& trace() { return TraceSink::instance(); }

/// Serialize one event as a JSON object (no trailing newline).
std::string to_json(const TraceEvent& ev);

}  // namespace mtp::telemetry
