#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mtp::telemetry {

void Registration::reset() {
  if (reg_ != nullptr) {
    reg_->remove(id_);
    reg_ = nullptr;
  }
}

MetricRegistry& MetricRegistry::global() {
  static thread_local MetricRegistry registry;
  return registry;
}

Registration MetricRegistry::add(std::string component, std::string instance,
                                 MetricFn fn) {
  const std::uint64_t id = ++next_id_;
  providers_.push_back(
      Provider{id, std::move(component), std::move(instance), std::move(fn)});
  return Registration{this, id};
}

void MetricRegistry::remove(std::uint64_t id) {
  std::erase_if(providers_, [id](const Provider& p) { return p.id == id; });
}

RegistrySnapshot MetricRegistry::snapshot() const {
  RegistrySnapshot snap;
  snap.providers.reserve(providers_.size());
  std::vector<MetricSample> scratch;
  for (const auto& p : providers_) {
    scratch.clear();
    p.fn(scratch);
    ProviderSnapshot ps;
    ps.component = p.component;
    ps.instance = p.instance;
    ps.metrics.reserve(scratch.size());
    for (const auto& s : scratch) {
      ps.metrics.push_back(MetricPoint{s.name, s.kind, s.value});
    }
    snap.providers.push_back(std::move(ps));
  }
  return snap;
}

std::optional<double> RegistrySnapshot::value(std::string_view component,
                                              std::string_view instance,
                                              std::string_view metric) const {
  for (const auto& p : providers) {
    if (p.component != component || p.instance != instance) continue;
    for (const auto& m : p.metrics) {
      if (m.name == metric) return m.value;
    }
  }
  return std::nullopt;
}

double RegistrySnapshot::total(std::string_view component,
                               std::string_view metric) const {
  double sum = 0;
  for (const auto& p : providers) {
    if (p.component != component) continue;
    for (const auto& m : p.metrics) {
      if (m.name == metric) sum += m.value;
    }
  }
  return sum;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Render a metric value: counters as integers, gauges shortest-round-trip.
std::string format_value(const MetricPoint& m) {
  char buf[64];
  if (m.kind == MetricKind::kCounter) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(m.value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", m.value);
  }
  return buf;
}

}  // namespace

std::string RegistrySnapshot::to_json() const {
  std::string out = "[";
  bool first_p = true;
  for (const auto& p : providers) {
    if (!first_p) out += ",";
    first_p = false;
    out += "\n    {\"component\":\"" + json_escape(p.component) +
           "\",\"instance\":\"" + json_escape(p.instance) + "\",\"metrics\":{";
    bool first_m = true;
    for (const auto& m : p.metrics) {
      if (!first_m) out += ",";
      first_m = false;
      out += "\"" + json_escape(m.name) + "\":" + format_value(m);
    }
    out += "}}";
  }
  out += first_p ? "]" : "\n  ]";
  return out;
}

}  // namespace mtp::telemetry
