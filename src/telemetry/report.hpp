// mtp::telemetry — per-experiment run reports.
//
// A RunReport collects everything one experiment produced — scalar results,
// registry snapshots, FCT / throughput recorder summaries — into a single
// JSON document, so every figure's raw data is regenerable from one
// artifact. Benches write `<experiment>_report.json` into the directory
// named by $MTP_REPORT_DIR (default: ./reports, created on demand).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::telemetry {

class RunReport {
 public:
  /// One named sub-experiment (a scheme, a config, a protocol under test).
  class Section {
   public:
    void add_scalar(std::string key, double value) {
      scalars_.emplace_back(std::move(key), value);
    }
    void add_text(std::string key, std::string value) {
      texts_.emplace_back(std::move(key), std::move(value));
    }
    /// Attach a registry snapshot (take it while the scenario is alive —
    /// providers deregister when their components are destroyed).
    void set_registry(RegistrySnapshot snap) { registry_ = std::move(snap); }

    /// Summarize an FCT recorder: count/mean/p50/p99/max, plus short/long
    /// message slices when `split_bytes` > 0 (messages < split vs >= split).
    void add_fct(std::string key, const stats::FctRecorder& fct,
                 std::int64_t split_bytes = 0);

    /// Summarize a throughput meter: average rate and total bytes.
    void add_throughput(std::string key, const stats::ThroughputMeter& meter);

   private:
    friend class RunReport;
    std::string name_;
    std::vector<std::pair<std::string, double>> scalars_;
    std::vector<std::pair<std::string, std::string>> texts_;
    std::optional<RegistrySnapshot> registry_;
    std::string blocks_;  ///< pre-rendered JSON members from add_fct & co
  };

  explicit RunReport(std::string experiment) : experiment_(std::move(experiment)) {}

  /// Get or create a section; sections render in first-use order.
  Section& section(const std::string& name);

  const std::string& experiment() const { return experiment_; }

  std::string to_json() const;
  bool write_file(const std::string& path) const;
  /// $MTP_REPORT_DIR/<experiment>_report.json (or ./reports/ if unset).
  std::string default_path() const;
  /// write_file(default_path()), with a one-line note on stderr.
  bool write() const;

 private:
  std::string experiment_;
  std::vector<Section> sections_;
};

}  // namespace mtp::telemetry
