// Boxed<T>: a value-semantic heap box for rarely-populated packet fields.
//
// Packets are moved several times per hop (NIC ring -> queue -> link ->
// receive), so every inline byte of header is paid for on every hop of every
// packet. The variable-length lists (SACK/NACK, path feedback, app payload)
// are empty on most packets in flight; Boxed keeps them behind a single
// pointer so an idle field costs 8 bytes and a null check instead of a
// 24-byte std::vector (or worse, five of them).
//
// Semantics: a deep-copying unique_ptr whose null state means "default
// constructed T". Copies clone, moves steal, and equality compares contents —
// a null box equals a box holding a default-constructed value, so a parsed
// header with no list entries equals a built header whose lists were touched
// but left empty.
#pragma once

#include <memory>
#include <utility>

namespace mtp::proto {

template <typename T>
class Boxed {
 public:
  Boxed() = default;
  Boxed(const Boxed& o) : p_(o.p_ ? std::make_unique<T>(*o.p_) : nullptr) {}
  Boxed(Boxed&&) noexcept = default;
  Boxed(const T& v) : p_(std::make_unique<T>(v)) {}
  Boxed(T&& v) : p_(std::make_unique<T>(std::move(v))) {}
  Boxed& operator=(const Boxed& o) {
    if (this != &o) p_ = o.p_ ? std::make_unique<T>(*o.p_) : nullptr;
    return *this;
  }
  Boxed& operator=(Boxed&&) noexcept = default;
  Boxed& operator=(const T& v) {
    if (p_) *p_ = v; else p_ = std::make_unique<T>(v);
    return *this;
  }
  Boxed& operator=(T&& v) {
    if (p_) *p_ = std::move(v); else p_ = std::make_unique<T>(std::move(v));
    return *this;
  }

  explicit operator bool() const { return p_ != nullptr; }
  bool has_value() const { return p_ != nullptr; }
  T* operator->() { return p_.get(); }
  const T* operator->() const { return p_.get(); }
  T& operator*() { return *p_; }
  const T& operator*() const { return *p_; }
  void reset() { p_.reset(); }

  /// Mutable access, allocating the value on first touch.
  T& ensure() {
    if (!p_) p_ = std::make_unique<T>();
    return *p_;
  }

  /// Read access; a null box reads as a default-constructed T.
  const T& view() const { return p_ ? *p_ : empty_value(); }

  /// Contents equality: null compares equal to a default-constructed value.
  friend bool operator==(const Boxed& a, const Boxed& b) {
    if (a.p_ && b.p_) return *a.p_ == *b.p_;
    if (!a.p_ && !b.p_) return true;
    return (a.p_ ? *a.p_ : empty_value()) == (b.p_ ? *b.p_ : empty_value());
  }

 private:
  static const T& empty_value() {
    static const T kEmpty{};
    return kEmpty;
  }
  std::unique_ptr<T> p_;
};

}  // namespace mtp::proto
