// TCP and UDP headers for the baseline transports.
//
// These model the fields the simulated stacks actually use; option parsing,
// checksums and urgent pointers are out of scope (they do not affect any of
// the paper's experiments).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/boxed.hpp"
#include "proto/types.hpp"

namespace mtp::proto {

/// TCP flag bits (subset).
enum TcpFlags : std::uint8_t {
  kTcpSyn = 1 << 0,
  kTcpAck = 1 << 1,
  kTcpFin = 1 << 2,
  kTcpRst = 1 << 3,
  kTcpEce = 1 << 4,  ///< ECN-Echo: receiver saw CE-marked segment (RFC 3168)
  kTcpCwr = 1 << 5,  ///< Congestion Window Reduced
};

/// One SACK block: received bytes [start, end).
struct TcpSackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool operator==(const TcpSackBlock&) const = default;
};

struct TcpHeader {
  PortNum src_port = 0;
  PortNum dst_port = 0;
  std::uint64_t seq = 0;      ///< 64-bit in simulation: no wraparound handling needed
  std::uint64_t ack = 0;      ///< cumulative ack (valid when kTcpAck set)
  std::uint8_t flags = 0;
  std::uint64_t rwnd = 0;     ///< receive window in bytes (no window scaling games)
  std::uint32_t payload = 0;  ///< payload bytes carried (convenience; also in Packet)

  /// RFC 2018 SACK option (up to kMaxSackBlocks). Boxed: most segments carry
  /// no SACK blocks, and packets are moved on every hop, so the option only
  /// costs a pointer when absent. The mutable accessor allocates on first
  /// touch; the const accessor reads an empty list for free.
  Boxed<std::vector<TcpSackBlock>> sack_blocks;
  std::vector<TcpSackBlock>& sack() { return sack_blocks.ensure(); }
  const std::vector<TcpSackBlock>& sack() const { return sack_blocks.view(); }

  static constexpr std::size_t kMaxSackBlocks = 3;

  bool has(TcpFlags f) const { return (flags & f) != 0; }

  /// Fixed fields plus the SACK block count byte.
  static constexpr std::size_t kFixedSize = 2 + 2 + 8 + 8 + 1 + 8 + 4 + 1;
  std::size_t wire_size() const { return kFixedSize + sack().size() * 16; }
  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<TcpHeader> parse(std::span<const std::uint8_t> in);
  bool operator==(const TcpHeader&) const = default;
};

struct UdpHeader {
  PortNum src_port = 0;
  PortNum dst_port = 0;
  std::uint32_t length = 0;  ///< payload bytes

  static constexpr std::size_t kWireSize = 2 + 2 + 4;
  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> in);
  bool operator==(const UdpHeader&) const = default;
};

}  // namespace mtp::proto
