// Core protocol identifier types shared by every layer.
#pragma once

#include <cstdint>

namespace mtp::proto {

/// Identifies a pathlet: a network resource (link, switch egress, device)
/// that provides its own congestion feedback. Assigned by the network
/// operator; 0 is reserved for "the default pathlet" (the whole network seen
/// as one resource, which makes MTP degrade to TCP-style behaviour).
using PathletId = std::uint32_t;
inline constexpr PathletId kDefaultPathlet = 0;

/// Traffic class: the entity (tenant, application class) a message belongs
/// to. Switch policies and end-host congestion state are keyed on TC.
using TrafficClassId = std::uint8_t;

/// Message id, unique among all outstanding messages from one end-host
/// (paper §3.1.1). 64 bits so they never wrap in practice.
using MsgId = std::uint64_t;

/// Application port numbers, as in TCP/UDP.
using PortNum = std::uint16_t;

}  // namespace mtp::proto
