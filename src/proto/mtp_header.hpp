// The MTP packet header (paper Figure 4).
//
// Layout, in order:
//   SRC Port | DST Port | Msg ID | Msg Pri | Msg Len (bytes/pkts) | Pkt Num |
//   Pkt Offset/Len (bytes) | Path Exclude list of (Path ID, TC) |
//   Path Feedback list of (Path ID, TC, Feedback) |
//   ACK Path Feedback list of (Path ID, TC, Feedback) |
//   SACK list of (Msg ID, Pkt Num) | NACK list of (Msg ID, Pkt Num)
//
// Path Feedback starts empty and is appended by network devices en route;
// the receiver copies it into ACK Path Feedback on the reply, which is how
// pathlet congestion information reaches the sender (paper §3.1.1/§3.1.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/boxed.hpp"
#include "proto/types.hpp"

namespace mtp::proto {

/// Per-pathlet congestion feedback, carried as a Type-Length-Value so
/// different pathlets can run different congestion-control algorithms
/// simultaneously (paper §3.1.3).
enum class FeedbackType : std::uint8_t {
  kNone = 0,
  kEcn = 1,       ///< value: 1 if the packet saw queue >= marking threshold (DCTCP-style)
  kRate = 2,      ///< value: explicit fair rate in bits/sec (RCP-style)
  kDelay = 3,     ///< value: queueing delay in ns experienced at the pathlet (Swift-style)
  kTrimmed = 4,   ///< value: unused; payload was trimmed at an overloaded queue (NDP-style)
};

struct Feedback {
  FeedbackType type = FeedbackType::kNone;
  std::uint64_t value = 0;
  bool operator==(const Feedback&) const = default;
};

/// (Path ID, TC) — element of the Path Exclude list: pathlets the sender asks
/// the network to avoid because it has seen congestion feedback for them.
struct PathRef {
  PathletId pathlet = kDefaultPathlet;
  TrafficClassId tc = 0;
  bool operator==(const PathRef&) const = default;
};

/// (Path ID, TC, Feedback) — element of the Path Feedback lists.
struct PathFeedback {
  PathletId pathlet = kDefaultPathlet;
  TrafficClassId tc = 0;
  Feedback feedback;
  bool operator==(const PathFeedback&) const = default;
};

/// (Msg ID, Pkt Num) — element of the SACK/NACK lists.
struct SackEntry {
  MsgId msg_id = 0;
  std::uint32_t pkt_num = 0;
  bool operator==(const SackEntry&) const = default;
  auto operator<=>(const SackEntry&) const = default;
};

/// Packet roles. DATA carries message payload; ACK carries SACK/NACK lists
/// and echoed path feedback. A trimmed DATA packet keeps its header but has
/// payload_bytes == 0 (NDP-style packet trimming).
enum class MtpPacketType : std::uint8_t { kData = 0, kAck = 1 };

/// Role of an mtp::stream message. kData carries one stream segment, kParity
/// carries one FEC parity segment coding a group of data segments, kFeedback
/// is the receiver's cumulative/selective progress report.
enum class StreamKind : std::uint8_t { kData = 0, kParity = 1, kFeedback = 2 };

inline constexpr std::uint8_t kStreamFin = 1;    ///< data: last segment of the stream
inline constexpr std::uint8_t kStreamReset = 2;  ///< feedback: receiver lost stream state

/// mtp::stream segment/feedback metadata. Rides packet 0 of the MTP message
/// that carries one stream segment (or one feedback report); boxed on
/// MtpHeader because most MTP messages are not stream traffic.
struct StreamHeader {
  std::uint32_t stream_id = 0;
  StreamKind kind = StreamKind::kData;
  std::uint8_t flags = 0;    ///< kStreamFin / kStreamReset
  std::uint32_t seq = 0;     ///< data: segment seq; parity: group base seq; feedback: cumulative ack
  std::uint64_t offset = 0;  ///< data: stream byte offset; feedback: in-order bytes delivered

  // --- FEC group description (parity segments only).
  std::uint32_t fec_group = 0;
  std::uint8_t fec_k = 0;      ///< data segments coded into the group
  std::uint8_t fec_r = 0;      ///< parity segments emitted for the group
  std::uint8_t fec_index = 0;  ///< which parity row [0, fec_r) this segment is
  std::vector<std::uint32_t> seg_lens;  ///< parity: payload length of each data segment

  // --- Receiver loss/repair telemetry (feedback only; drives adaptive r).
  std::vector<std::uint32_t> sack;  ///< seqs received above the cumulative ack (capped)
  std::uint64_t fec_repaired = 0;   ///< cumulative segments repaired by parity
  std::uint32_t gap_events = 0;     ///< cumulative segments first observed missing

  bool fin() const { return flags & kStreamFin; }
  bool reset() const { return flags & kStreamReset; }
  bool operator==(const StreamHeader&) const = default;
};

inline constexpr std::uint8_t kOverloadBusy = 1;     ///< receiver/device rejected the message
inline constexpr std::uint8_t kOverloadExpired = 2;  ///< shed because its deadline had passed

/// mtp::overload metadata. Rides ACKs (receiver-driven admission grants,
/// busy rejects) and packet 0 of deadline-carrying data messages; boxed on
/// MtpHeader because most traffic carries none of it.
struct OverloadInfo {
  std::uint8_t flags = 0;          ///< kOverloadBusy / kOverloadExpired
  /// ACKs: the receiver's per-sender new-message credit (admission window).
  std::uint64_t grant_bytes = 0;
  /// Data packet 0: absolute deadline in sim ns (0 = none). Devices shed
  /// expired messages before service; servers propagate it to children.
  std::uint64_t deadline_ns = 0;

  bool busy() const { return flags & kOverloadBusy; }
  bool expired() const { return flags & kOverloadExpired; }
  bool operator==(const OverloadInfo&) const = default;
};

struct MtpHeader {
  PortNum src_port = 0;
  PortNum dst_port = 0;
  MtpPacketType type = MtpPacketType::kData;

  // --- Message-level information (enables per-message decisions in-network).
  MsgId msg_id = 0;
  std::uint8_t priority = 0;       ///< application-assigned relative priority
  TrafficClassId tc = 0;           ///< entity/tenant the message belongs to
  std::uint64_t msg_len_bytes = 0; ///< total message payload length
  std::uint32_t msg_len_pkts = 0;  ///< total packets in the message
  std::uint32_t pkt_num = 0;       ///< this packet's index within the message
  std::uint64_t pkt_offset = 0;    ///< byte offset of this packet's payload
  std::uint32_t pkt_len = 0;       ///< payload bytes in this packet

  // --- Variable-length lists (pathlet CC + selective acknowledgement).
  //
  // Boxed behind one pointer: most data packets in flight carry none of
  // them, and the packet is moved on every hop, so the five lists would
  // otherwise dominate sizeof(MtpHeader). Mutable accessors allocate the
  // block on first touch; const accessors read empty lists for free.
  struct Lists {
    std::vector<PathRef> path_exclude;
    std::vector<PathFeedback> path_feedback;
    std::vector<PathFeedback> ack_path_feedback;
    std::vector<SackEntry> sack;
    std::vector<SackEntry> nack;
    bool operator==(const Lists&) const = default;
  };
  Boxed<Lists> lists;

  std::vector<PathRef>& path_exclude() { return lists.ensure().path_exclude; }
  const std::vector<PathRef>& path_exclude() const { return lists.view().path_exclude; }
  /// Appended by devices en route.
  std::vector<PathFeedback>& path_feedback() { return lists.ensure().path_feedback; }
  const std::vector<PathFeedback>& path_feedback() const { return lists.view().path_feedback; }
  /// Echoed by the receiver.
  std::vector<PathFeedback>& ack_path_feedback() { return lists.ensure().ack_path_feedback; }
  const std::vector<PathFeedback>& ack_path_feedback() const {
    return lists.view().ack_path_feedback;
  }
  std::vector<SackEntry>& sack() { return lists.ensure().sack; }
  const std::vector<SackEntry>& sack() const { return lists.view().sack; }
  std::vector<SackEntry>& nack() { return lists.ensure().nack; }
  const std::vector<SackEntry>& nack() const { return lists.view().nack; }

  // mtp::stream metadata, present only on stream traffic (packet 0 of the
  // carrying message). Same boxing rationale as the lists above.
  Boxed<StreamHeader> stream;
  bool has_stream() const { return stream.has_value(); }

  // mtp::overload metadata (grants, busy rejects, deadlines); absent on
  // traffic that never touches the overload subsystem.
  Boxed<OverloadInfo> overload;
  bool has_overload() const { return overload.has_value(); }
  /// Absolute deadline carried by this packet, 0 if none.
  std::uint64_t deadline_ns() const { return overload ? overload->deadline_ns : 0; }

  bool is_ack() const { return type == MtpPacketType::kAck; }
  bool is_last_pkt() const { return msg_len_pkts != 0 && pkt_num + 1 == msg_len_pkts; }

  /// Wire size in bytes of this header as laid out by serialize().
  std::size_t wire_size() const;

  /// Fixed portion size (everything before the variable-length lists).
  static constexpr std::size_t kFixedSize =
      2 + 2 + 1 + 8 + 1 + 1 + 8 + 4 + 4 + 8 + 4;  // see serialize()

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<MtpHeader> parse(std::span<const std::uint8_t> in);

  bool operator==(const MtpHeader&) const = default;
};

}  // namespace mtp::proto
