// Little-endian wire serialization helpers.
//
// The simulator's fast path never serializes (packets carry header structs by
// value), but real byte-level serde exists so header-overhead claims
// (paper §4 "Packet Header Overheads") are measurable and testable.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

namespace mtp::proto {

/// Appends fixed-width little-endian integers to a byte buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
    const auto start = out_.size();
    out_.resize(start + sizeof(T));
    std::memcpy(out_.data() + start, &v, sizeof(T));  // host is little-endian on all targets we support
  }

  std::size_t bytes_written() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads fixed-width little-endian integers; returns nullopt on underrun
/// rather than throwing so parsers can reject malformed headers cheaply.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> in) : in_(in) {}

  template <typename T>
  std::optional<T> get() {
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
    if (pos_ + sizeof(T) > in_.size()) return std::nullopt;
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace mtp::proto
