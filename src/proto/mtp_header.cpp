#include "proto/mtp_header.hpp"

#include "proto/wire.hpp"

namespace mtp::proto {

namespace {

// List lengths on the wire are 16-bit counts; a header with more than 65535
// feedback entries is nonsensical and rejected at serialize time by clamping
// being impossible (vectors of that size never occur; parse rejects absurd
// remaining-space mismatches naturally via WireReader underrun).
constexpr std::size_t kPathRefSize = 4 + 1;          // PathletId + TC
constexpr std::size_t kPathFeedbackSize = 4 + 1 + 1 + 8;  // + FeedbackType + value
constexpr std::size_t kSackEntrySize = 8 + 4;        // MsgId + PktNum

void put_path_refs(WireWriter& w, const std::vector<PathRef>& v) {
  w.put<std::uint16_t>(static_cast<std::uint16_t>(v.size()));
  for (const auto& e : v) {
    w.put<std::uint32_t>(e.pathlet);
    w.put<std::uint8_t>(e.tc);
  }
}

void put_path_feedback(WireWriter& w, const std::vector<PathFeedback>& v) {
  w.put<std::uint16_t>(static_cast<std::uint16_t>(v.size()));
  for (const auto& e : v) {
    w.put<std::uint32_t>(e.pathlet);
    w.put<std::uint8_t>(e.tc);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(e.feedback.type));
    w.put<std::uint64_t>(e.feedback.value);
  }
}

void put_sack(WireWriter& w, const std::vector<SackEntry>& v) {
  w.put<std::uint16_t>(static_cast<std::uint16_t>(v.size()));
  for (const auto& e : v) {
    w.put<std::uint64_t>(e.msg_id);
    w.put<std::uint32_t>(e.pkt_num);
  }
}

// The get_* readers take the destination lazily: an empty list on the wire
// must not allocate the header's list block.
template <typename Ensure>
bool get_path_refs(WireReader& r, Ensure ensure) {
  const auto n = r.get<std::uint16_t>();
  if (!n) return false;
  if (*n == 0) return true;
  auto& v = ensure();
  v.reserve(*n);
  for (std::uint16_t i = 0; i < *n; ++i) {
    const auto pathlet = r.get<std::uint32_t>();
    const auto tc = r.get<std::uint8_t>();
    if (!pathlet || !tc.has_value()) return false;
    v.push_back({*pathlet, *tc});
  }
  return true;
}

template <typename Ensure>
bool get_path_feedback(WireReader& r, Ensure ensure) {
  const auto n = r.get<std::uint16_t>();
  if (!n) return false;
  if (*n == 0) return true;
  auto& v = ensure();
  v.reserve(*n);
  for (std::uint16_t i = 0; i < *n; ++i) {
    const auto pathlet = r.get<std::uint32_t>();
    const auto tc = r.get<std::uint8_t>();
    const auto type = r.get<std::uint8_t>();
    const auto value = r.get<std::uint64_t>();
    if (!pathlet || !tc.has_value() || !type || !value) return false;
    if (*type > static_cast<std::uint8_t>(FeedbackType::kTrimmed)) return false;
    v.push_back({*pathlet, *tc, Feedback{static_cast<FeedbackType>(*type), *value}});
  }
  return true;
}

template <typename Ensure>
bool get_sack(WireReader& r, Ensure ensure) {
  const auto n = r.get<std::uint16_t>();
  if (!n) return false;
  if (*n == 0) return true;
  auto& v = ensure();
  v.reserve(*n);
  for (std::uint16_t i = 0; i < *n; ++i) {
    const auto msg = r.get<std::uint64_t>();
    const auto pkt = r.get<std::uint32_t>();
    if (!msg || !pkt) return false;
    v.push_back({*msg, *pkt});
  }
  return true;
}

// StreamHeader fixed fields: stream_id + kind + flags + seq + offset +
// fec_group + fec_k + fec_r + fec_index + fec_repaired + gap_events.
constexpr std::size_t kStreamFixedSize = 4 + 1 + 1 + 4 + 8 + 4 + 1 + 1 + 1 + 8 + 4;

// OverloadInfo fields: flags + grant_bytes + deadline_ns.
constexpr std::size_t kOverloadSize = 1 + 8 + 8;

void put_u32_list(WireWriter& w, const std::vector<std::uint32_t>& v) {
  w.put<std::uint16_t>(static_cast<std::uint16_t>(v.size()));
  for (const auto e : v) w.put<std::uint32_t>(e);
}

bool get_u32_list(WireReader& r, std::vector<std::uint32_t>& v) {
  const auto n = r.get<std::uint16_t>();
  if (!n) return false;
  v.reserve(*n);
  for (std::uint16_t i = 0; i < *n; ++i) {
    const auto e = r.get<std::uint32_t>();
    if (!e) return false;
    v.push_back(*e);
  }
  return true;
}

/// Overload block (trailing): presence byte, then flags + grant + deadline.
std::optional<MtpHeader> parse_overload(WireReader& r, MtpHeader& h) {
  const auto op = r.get<std::uint8_t>();
  if (!op.has_value() || *op > 1) return std::nullopt;
  if (*op == 0) return std::move(h);
  const auto flags = r.get<std::uint8_t>();
  const auto grant = r.get<std::uint64_t>();
  const auto deadline = r.get<std::uint64_t>();
  if (!flags.has_value() || !grant || !deadline) return std::nullopt;
  if (*flags > (kOverloadBusy | kOverloadExpired)) return std::nullopt;
  auto& o = h.overload.ensure();
  o.flags = *flags;
  o.grant_bytes = *grant;
  o.deadline_ns = *deadline;
  return std::move(h);
}

}  // namespace

std::size_t MtpHeader::wire_size() const {
  std::size_t n = kFixedSize + 5 * 2  // five 16-bit list counts
                  + path_exclude().size() * kPathRefSize
                  + (path_feedback().size() + ack_path_feedback().size()) * kPathFeedbackSize
                  + (sack().size() + nack().size()) * kSackEntrySize;
  n += 1;  // stream presence flag
  if (stream) {
    n += kStreamFixedSize + 2 * 2 + (stream->seg_lens.size() + stream->sack.size()) * 4;
  }
  n += 1;  // overload presence flag
  if (overload) n += kOverloadSize;
  return n;
}

void MtpHeader::serialize(std::vector<std::uint8_t>& out) const {
  out.reserve(out.size() + wire_size());
  WireWriter w(out);
  w.put<std::uint16_t>(src_port);
  w.put<std::uint16_t>(dst_port);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(type));
  w.put<std::uint64_t>(msg_id);
  w.put<std::uint8_t>(priority);
  w.put<std::uint8_t>(tc);
  w.put<std::uint64_t>(msg_len_bytes);
  w.put<std::uint32_t>(msg_len_pkts);
  w.put<std::uint32_t>(pkt_num);
  w.put<std::uint64_t>(pkt_offset);
  w.put<std::uint32_t>(pkt_len);
  put_path_refs(w, path_exclude());
  put_path_feedback(w, path_feedback());
  put_path_feedback(w, ack_path_feedback());
  put_sack(w, sack());
  put_sack(w, nack());
  w.put<std::uint8_t>(stream ? 1 : 0);
  if (stream) {
    const auto& s = *stream;
    w.put<std::uint32_t>(s.stream_id);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(s.kind));
    w.put<std::uint8_t>(s.flags);
    w.put<std::uint32_t>(s.seq);
    w.put<std::uint64_t>(s.offset);
    w.put<std::uint32_t>(s.fec_group);
    w.put<std::uint8_t>(s.fec_k);
    w.put<std::uint8_t>(s.fec_r);
    w.put<std::uint8_t>(s.fec_index);
    w.put<std::uint64_t>(s.fec_repaired);
    w.put<std::uint32_t>(s.gap_events);
    put_u32_list(w, s.seg_lens);
    put_u32_list(w, s.sack);
  }
  w.put<std::uint8_t>(overload ? 1 : 0);
  if (overload) {
    w.put<std::uint8_t>(overload->flags);
    w.put<std::uint64_t>(overload->grant_bytes);
    w.put<std::uint64_t>(overload->deadline_ns);
  }
}

std::optional<MtpHeader> MtpHeader::parse(std::span<const std::uint8_t> in) {
  WireReader r(in);
  MtpHeader h;
  const auto src = r.get<std::uint16_t>();
  const auto dst = r.get<std::uint16_t>();
  const auto type = r.get<std::uint8_t>();
  const auto msg_id = r.get<std::uint64_t>();
  const auto pri = r.get<std::uint8_t>();
  const auto tc = r.get<std::uint8_t>();
  const auto len_bytes = r.get<std::uint64_t>();
  const auto len_pkts = r.get<std::uint32_t>();
  const auto pkt_num = r.get<std::uint32_t>();
  const auto pkt_off = r.get<std::uint64_t>();
  const auto pkt_len = r.get<std::uint32_t>();
  if (!src || !dst || !type || !msg_id || !pri || !tc.has_value() || !len_bytes || !len_pkts ||
      !pkt_num || !pkt_off || !pkt_len) {
    return std::nullopt;
  }
  if (*type > static_cast<std::uint8_t>(MtpPacketType::kAck)) return std::nullopt;
  h.src_port = *src;
  h.dst_port = *dst;
  h.type = static_cast<MtpPacketType>(*type);
  h.msg_id = *msg_id;
  h.priority = *pri;
  h.tc = *tc;
  h.msg_len_bytes = *len_bytes;
  h.msg_len_pkts = *len_pkts;
  h.pkt_num = *pkt_num;
  h.pkt_offset = *pkt_off;
  h.pkt_len = *pkt_len;
  if (!get_path_refs(r, [&]() -> auto& { return h.path_exclude(); })) return std::nullopt;
  if (!get_path_feedback(r, [&]() -> auto& { return h.path_feedback(); })) return std::nullopt;
  if (!get_path_feedback(r, [&]() -> auto& { return h.ack_path_feedback(); })) return std::nullopt;
  if (!get_sack(r, [&]() -> auto& { return h.sack(); })) return std::nullopt;
  if (!get_sack(r, [&]() -> auto& { return h.nack(); })) return std::nullopt;
  // Stream block: presence byte, then the fixed fields + two u32 lists.
  const auto sp = r.get<std::uint8_t>();
  if (!sp.has_value() || *sp > 1) return std::nullopt;
  if (*sp == 0) return parse_overload(r, h);
  auto& s = h.stream.ensure();
  const auto sid = r.get<std::uint32_t>();
  const auto kind = r.get<std::uint8_t>();
  const auto flags = r.get<std::uint8_t>();
  const auto seq = r.get<std::uint32_t>();
  const auto off = r.get<std::uint64_t>();
  const auto group = r.get<std::uint32_t>();
  const auto fk = r.get<std::uint8_t>();
  const auto fr = r.get<std::uint8_t>();
  const auto fi = r.get<std::uint8_t>();
  const auto repaired = r.get<std::uint64_t>();
  const auto gaps = r.get<std::uint32_t>();
  if (!sid || !kind || !flags.has_value() || !seq || !off || !group || !fk.has_value() ||
      !fr.has_value() || !fi.has_value() || !repaired || !gaps) {
    return std::nullopt;
  }
  if (*kind > static_cast<std::uint8_t>(StreamKind::kFeedback)) return std::nullopt;
  s.stream_id = *sid;
  s.kind = static_cast<StreamKind>(*kind);
  s.flags = *flags;
  s.seq = *seq;
  s.offset = *off;
  s.fec_group = *group;
  s.fec_k = *fk;
  s.fec_r = *fr;
  s.fec_index = *fi;
  s.fec_repaired = *repaired;
  s.gap_events = *gaps;
  if (!get_u32_list(r, s.seg_lens)) return std::nullopt;
  if (!get_u32_list(r, s.sack)) return std::nullopt;
  return parse_overload(r, h);
}

}  // namespace mtp::proto
