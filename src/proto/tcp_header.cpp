#include "proto/tcp_header.hpp"

#include "proto/wire.hpp"

namespace mtp::proto {

void TcpHeader::serialize(std::vector<std::uint8_t>& out) const {
  out.reserve(out.size() + wire_size());
  WireWriter w(out);
  w.put<std::uint16_t>(src_port);
  w.put<std::uint16_t>(dst_port);
  w.put<std::uint64_t>(seq);
  w.put<std::uint64_t>(ack);
  w.put<std::uint8_t>(flags);
  w.put<std::uint64_t>(rwnd);
  w.put<std::uint32_t>(payload);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(sack().size()));
  for (const auto& b : sack()) {
    w.put<std::uint64_t>(b.start);
    w.put<std::uint64_t>(b.end);
  }
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> in) {
  WireReader r(in);
  TcpHeader h;
  const auto src = r.get<std::uint16_t>();
  const auto dst = r.get<std::uint16_t>();
  const auto seq = r.get<std::uint64_t>();
  const auto ack = r.get<std::uint64_t>();
  const auto flags = r.get<std::uint8_t>();
  const auto rwnd = r.get<std::uint64_t>();
  const auto payload = r.get<std::uint32_t>();
  const auto n_sack = r.get<std::uint8_t>();
  if (!src || !dst || !seq || !ack || !flags || !rwnd || !payload || !n_sack) {
    return std::nullopt;
  }
  if (*n_sack > kMaxSackBlocks) return std::nullopt;
  h.src_port = *src;
  h.dst_port = *dst;
  h.seq = *seq;
  h.ack = *ack;
  h.flags = *flags;
  h.rwnd = *rwnd;
  h.payload = *payload;
  for (std::uint8_t i = 0; i < *n_sack; ++i) {
    const auto start = r.get<std::uint64_t>();
    const auto end = r.get<std::uint64_t>();
    if (!start || !end || *end <= *start) return std::nullopt;
    h.sack().push_back({*start, *end});
  }
  return h;
}

void UdpHeader::serialize(std::vector<std::uint8_t>& out) const {
  out.reserve(out.size() + kWireSize);
  WireWriter w(out);
  w.put<std::uint16_t>(src_port);
  w.put<std::uint16_t>(dst_port);
  w.put<std::uint32_t>(length);
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::uint8_t> in) {
  WireReader r(in);
  UdpHeader h;
  const auto src = r.get<std::uint16_t>();
  const auto dst = r.get<std::uint16_t>();
  const auto length = r.get<std::uint32_t>();
  if (!src || !dst || !length) return std::nullopt;
  h.src_port = *src;
  h.dst_port = *dst;
  h.length = *length;
  return h;
}

}  // namespace mtp::proto
