// Workload generation: message-size distributions and arrival processes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <variant>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mtp::workload {

/// Message-size model. The paper's Fig 6 workload is "10 KB-1 GB skewed
/// toward short messages as per [DCTCP]"; skewed() builds that shape.
class SizeDist {
 public:
  static SizeDist fixed(std::int64_t bytes) { return SizeDist{Fixed{bytes}}; }
  static SizeDist bounded_pareto(std::int64_t lo, std::int64_t hi, double alpha) {
    return SizeDist{sim::BoundedPareto(static_cast<double>(lo), static_cast<double>(hi), alpha)};
  }
  static SizeDist empirical(sim::EmpiricalCdf cdf) { return SizeDist{std::move(cdf)}; }

  /// The paper's skewed mix over [lo, hi]: bounded Pareto with shape 1.2 —
  /// the majority of messages land within ~4x of `lo`, with a heavy tail.
  static SizeDist skewed(std::int64_t lo, std::int64_t hi) {
    return bounded_pareto(lo, hi, 1.2);
  }

  /// Web-search workload (DCTCP paper, Fig. 2 shape): mostly short queries
  /// with a minority of multi-MB background transfers.
  static SizeDist web_search() {
    return empirical(sim::EmpiricalCdf({{6'000, 0.0},
                                        {10'000, 0.15},
                                        {20'000, 0.40},
                                        {50'000, 0.60},
                                        {200'000, 0.75},
                                        {1'000'000, 0.90},
                                        {5'000'000, 0.97},
                                        {30'000'000, 1.0}}));
  }

  /// Data-mining workload (VL2/DCTCP literature): extreme skew — ~80% of
  /// flows under 10 KB, but most *bytes* in 100 MB-scale shuffles.
  static SizeDist data_mining() {
    return empirical(sim::EmpiricalCdf({{100, 0.0},
                                        {1'000, 0.50},
                                        {10'000, 0.80},
                                        {1'000'000, 0.95},
                                        {10'000'000, 0.98},
                                        {100'000'000, 1.0}}));
  }

  std::int64_t sample(sim::Rng& rng) const {
    return std::visit(
        [&](const auto& d) -> std::int64_t {
          using T = std::decay_t<decltype(d)>;
          if constexpr (std::is_same_v<T, Fixed>) {
            return d.bytes;
          } else {
            return std::max<std::int64_t>(1, d.sample_int(rng));
          }
        },
        dist_);
  }

  double mean() const {
    return std::visit(
        [](const auto& d) -> double {
          using T = std::decay_t<decltype(d)>;
          if constexpr (std::is_same_v<T, Fixed>) {
            return static_cast<double>(d.bytes);
          } else {
            return d.mean();
          }
        },
        dist_);
  }

 private:
  struct Fixed {
    std::int64_t bytes;
  };
  using Variant = std::variant<Fixed, sim::BoundedPareto, sim::EmpiricalCdf>;
  explicit SizeDist(Variant v) : dist_(std::move(v)) {}
  Variant dist_;
};

/// Open-loop Poisson message generator: draws exponential inter-arrival
/// times targeting `offered_load` of `capacity`, samples a size, and calls
/// `send(bytes)`. Stop by destroying or calling stop().
class PoissonGenerator {
 public:
  using SendFn = std::function<void(std::int64_t bytes)>;

  PoissonGenerator(sim::Simulator& simulator, sim::Rng& rng, SizeDist sizes,
                   sim::Bandwidth capacity, double offered_load, SendFn send)
      : sim_(simulator),
        rng_(rng),
        sizes_(std::move(sizes)),
        send_(std::move(send)) {
    const double bytes_per_sec =
        static_cast<double>(capacity.bits_per_sec()) / 8.0 * offered_load;
    mean_interarrival_ = sim::SimTime::from_seconds(sizes_.mean() / bytes_per_sec);
  }

  void start() {
    stopped_ = false;
    schedule_next();
  }
  void stop() {
    stopped_ = true;
    sim_.cancel(next_);
  }

  std::uint64_t messages_sent() const { return sent_; }
  sim::SimTime mean_interarrival() const { return mean_interarrival_; }

 private:
  void schedule_next() {
    next_ = sim_.schedule(rng_.exponential_time(mean_interarrival_), [this] {
      if (stopped_) return;
      ++sent_;
      send_(sizes_.sample(rng_));
      schedule_next();
    });
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  SizeDist sizes_;
  SendFn send_;
  sim::SimTime mean_interarrival_;
  sim::EventId next_;
  bool stopped_ = true;
  std::uint64_t sent_ = 0;
};

/// Precomputed open-loop arrival schedule, replayed by a single cursor
/// event. Benches used to park one scheduled event per message upfront —
/// at 100k+ concurrent messages that is 100k live heap slots and closures
/// before the first packet moves. A schedule is one flat vector (16 bytes
/// per arrival) and exactly one pending simulator event at any moment, so
/// generating load does not allocate per arrival during the run.
class ArrivalSchedule {
 public:
  struct Arrival {
    sim::SimTime at;
    std::uint32_t src = 0;  ///< caller-defined (e.g. sender host index)
    std::uint32_t bytes = 0;
  };
  using SendFn = std::function<void(const Arrival&)>;

  /// Poisson arrivals over [0, horizon): one aggregate exponential process
  /// with each arrival assigned uniformly to a source. Statistically
  /// identical to `sources` independent thinned processes.
  static ArrivalSchedule poisson(sim::Rng& rng, const SizeDist& sizes,
                                 std::uint32_t sources, sim::SimTime mean_interarrival,
                                 sim::SimTime horizon) {
    ArrivalSchedule s;
    sim::SimTime t = rng.exponential_time(mean_interarrival);
    while (t < horizon) {
      const std::uint32_t src =
          sources <= 1 ? 0 : static_cast<std::uint32_t>(rng.uniform_int(0, sources - 1));
      s.add(t, src, sizes.sample(rng));
      t += rng.exponential_time(mean_interarrival);
    }
    return s;
  }

  /// Append one arrival. Times must be non-decreasing (replay asserts).
  void add(sim::SimTime at, std::uint32_t src, std::int64_t bytes) {
    arrivals_.push_back(
        {at, src, static_cast<std::uint32_t>(std::min<std::int64_t>(bytes, UINT32_MAX))});
  }

  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }
  const std::vector<Arrival>& arrivals() const { return arrivals_; }

  /// Replay from the beginning on `simulator`. Arrivals that share a
  /// timestamp are delivered inside one event.
  void start(sim::Simulator& simulator, SendFn send) {
    send_ = std::move(send);
    cursor_ = 0;
    schedule_next(simulator);
  }

  std::size_t replayed() const { return cursor_; }

 private:
  void schedule_next(sim::Simulator& simulator) {
    if (cursor_ >= arrivals_.size()) return;
    simulator.schedule_at(arrivals_[cursor_].at, [this, &simulator] {
      const sim::SimTime now = simulator.now();
      while (cursor_ < arrivals_.size() && arrivals_[cursor_].at == now) {
        send_(arrivals_[cursor_++]);
      }
      schedule_next(simulator);
    });
  }

  std::vector<Arrival> arrivals_;
  std::size_t cursor_ = 0;
  SendFn send_;
};

/// One long bulk transfer, declared to ScenarioBuilder::bulk_transfer().
/// `src`/`dst` index the topology's sender hosts. rate_cap_bps > 0 paces the
/// transfer (a CBR source); 0 lets it take its max-min fair share. In
/// BulkMode::kFlowLevel these become fluid flows (sim/flow) — no per-packet
/// events; in BulkMode::kPacket the same transfers run as paced packet
/// streams, which is what the flow-vs-packet oracle test compares against.
struct BulkTransfer {
  sim::SimTime at;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::int64_t bytes = 0;
  std::int64_t rate_cap_bps = 0;
};

/// `count` bulk transfers spread across `hosts` sources: source h sends to
/// the host `stride` ranks away, staggered `spacing` apart — the canned
/// background-load pattern the hybrid fidelity scenarios and the k=32
/// tenant-isolation rig share.
inline std::vector<BulkTransfer> bulk_ring(std::uint32_t hosts, std::uint32_t count,
                                           std::int64_t bytes, std::uint32_t stride,
                                           sim::SimTime spacing = sim::SimTime::zero(),
                                           std::int64_t rate_cap_bps = 0) {
  std::vector<BulkTransfer> v;
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t src =
        hosts == 0 ? 0 : static_cast<std::uint32_t>((std::uint64_t{i} * 97) % hosts);
    v.push_back({spacing * static_cast<std::int64_t>(i), src,
                 (src + stride) % (hosts == 0 ? 1 : hosts), bytes, rate_cap_bps});
  }
  return v;
}

/// Shard-invariant replay of a subset of an ArrivalSchedule.
///
/// Unlike ArrivalSchedule::start() — which chains plain FIFO events and
/// batches same-timestamp arrivals — every arrival here executes as its own
/// *keyed* event at (arrival.at, kArrivalKeyBase | schedule index). The
/// tie-break position among same-timestamp events is derived from the
/// schedule, not from when the cursor event happened to be scheduled, so S
/// replays over S disjoint subsets (one per shard, each on its own
/// simulator) execute every arrival at exactly the position the serial
/// single-replay run would. Still one pending simulator event per replay at
/// any moment.
class KeyedReplay {
 public:
  using Arrival = ArrivalSchedule::Arrival;
  using SendFn = ArrivalSchedule::SendFn;

  /// Select the subset at construction: `take(arrival)` in schedule order.
  /// An empty `take` selects everything (the serial case — used for shard
  /// count 1 too, so one- and many-shard runs replay through identical
  /// machinery).
  KeyedReplay(const ArrivalSchedule& schedule, std::function<bool(const Arrival&)> take)
      : schedule_(&schedule) {
    const auto& all = schedule.arrivals();
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (!take || take(all[i])) picks_.push_back(i);
    }
  }

  void start(sim::Simulator& simulator, SendFn send) {
    send_ = std::move(send);
    cursor_ = 0;
    schedule_next(simulator);
  }

  std::size_t size() const { return picks_.size(); }
  std::size_t replayed() const { return cursor_; }

 private:
  void schedule_next(sim::Simulator& simulator) {
    if (cursor_ >= picks_.size()) return;
    const std::size_t idx = picks_[cursor_];
    const Arrival& a = schedule_->arrivals()[idx];
    simulator.schedule_keyed_at(a.at, sim::kArrivalKeyBase | idx, [this, &simulator] {
      const Arrival& arr = schedule_->arrivals()[picks_[cursor_]];
      ++cursor_;
      schedule_next(simulator);  // chain first so send_ may run() recursively
      send_(arr);
    });
  }

  const ArrivalSchedule* schedule_;
  std::vector<std::size_t> picks_;  ///< global schedule indices, ascending
  std::size_t cursor_ = 0;
  SendFn send_;
};

/// Closed-loop generator: keeps exactly `concurrency` messages outstanding;
/// the owner must call on_complete() when one finishes.
class ClosedLoopGenerator {
 public:
  using SendFn = std::function<void(std::int64_t bytes)>;

  ClosedLoopGenerator(sim::Rng& rng, SizeDist sizes, std::size_t concurrency, SendFn send)
      : rng_(rng), sizes_(std::move(sizes)), concurrency_(concurrency), send_(std::move(send)) {}

  void start() {
    for (std::size_t i = 0; i < concurrency_; ++i) launch();
  }
  void on_complete() {
    if (!stopped_) launch();
  }
  void stop() { stopped_ = true; }
  std::uint64_t messages_sent() const { return sent_; }

 private:
  void launch() {
    ++sent_;
    send_(sizes_.sample(rng_));
  }

  sim::Rng& rng_;
  SizeDist sizes_;
  std::size_t concurrency_;
  SendFn send_;
  bool stopped_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace mtp::workload
