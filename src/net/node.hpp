// Node base class: anything with an address that can receive packets.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace mtp::net {

class Link;

class Node {
 public:
  Node(sim::Simulator& simulator, NodeId id, std::string name)
      : sim_(simulator), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Deliver a packet that arrived on `in_port`.
  virtual void receive(Packet&& pkt, PortIndex in_port) = 0;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  /// Attach an outgoing link; returns its port index. Called by Network.
  PortIndex add_out_port(Link* link) {
    out_ports_.push_back(link);
    return static_cast<PortIndex>(out_ports_.size() - 1);
  }
  Link* out_port(PortIndex i) const {
    assert(i < out_ports_.size());
    return out_ports_[i];
  }
  std::size_t num_out_ports() const { return out_ports_.size(); }

 protected:
  sim::Simulator& sim_;

 private:
  NodeId id_;
  std::string name_;
  std::vector<Link*> out_ports_;
};

}  // namespace mtp::net
