// Stock forwarding policies (paper Figs 5 and 6 compare these).
#pragma once

#include <limits>
#include <unordered_map>

#include "net/switch.hpp"
#include "sim/time.hpp"

namespace mtp::net {

/// Always the first candidate. The single-path baseline.
class StaticPolicy final : public ForwardingPolicy {
 public:
  PortIndex select(const Packet&, std::span<const PortIndex> c, Switch&) override {
    return c.front();
  }
  std::string name() const override { return "static"; }
};

/// Flow-hash ECMP: every packet of a flow takes the same path, so elephants
/// can collide on one path while the other idles (Fig 6's ECMP downside).
class EcmpPolicy final : public ForwardingPolicy {
 public:
  PortIndex select(const Packet& pkt, std::span<const PortIndex> c, Switch&) override {
    // Mix the hash so correlated low bits don't bias the modulo.
    std::uint64_t h = pkt.flow_hash;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return c[h % c.size()];
  }
  std::string name() const override { return "ecmp"; }
};

/// Per-packet round-robin spraying: perfect byte balance, maximal reordering
/// (Fig 6's spraying downside).
class SprayPolicy final : public ForwardingPolicy {
 public:
  PortIndex select(const Packet&, std::span<const PortIndex> c, Switch&) override {
    return c[counter_++ % c.size()];
  }
  std::string name() const override { return "spray"; }

 private:
  std::uint64_t counter_ = 0;
};

/// Time-driven path alternation: models the Fig 5 optical/rotor switch that
/// flips all traffic between two paths every `period` (384 us in the paper).
class AlternatingPathPolicy final : public ForwardingPolicy {
 public:
  explicit AlternatingPathPolicy(sim::SimTime period) : period_(period) {}

  PortIndex select(const Packet& pkt, std::span<const PortIndex> c, Switch& sw) override {
    const auto slot =
        static_cast<std::size_t>(sw.simulator().now().ns() / period_.ns());
    (void)pkt;
    return c[slot % c.size()];
  }
  std::string name() const override { return "alternating"; }

 private:
  sim::SimTime period_;
};

/// Flowlet switching (CONGA/LetFlow-style): packets of a flow stick to a
/// path while they come back-to-back; an idle gap longer than the flowlet
/// timeout is a safe point to re-place the flow on the least-loaded path
/// without reordering. A classic middle ground between ECMP and spraying.
class FlowletPolicy final : public ForwardingPolicy {
 public:
  explicit FlowletPolicy(sim::SimTime gap) : gap_(gap) {}

  PortIndex select(const Packet& pkt, std::span<const PortIndex> c, Switch& sw) override {
    const sim::SimTime now = sw.simulator().now();
    auto [it, fresh] = table_.try_emplace(pkt.flow_hash);
    Flowlet& f = it->second;
    if (fresh || now - f.last_seen > gap_ || !sw.out_port(f.port)->is_up()) {
      f.port = least_loaded(c, sw);
      if (!fresh) ++flowlet_switches_;
    }
    f.last_seen = now;
    return f.port;
  }
  std::string name() const override { return "flowlet"; }
  std::uint64_t flowlet_switches() const { return flowlet_switches_; }

 private:
  struct Flowlet {
    sim::SimTime last_seen;
    PortIndex port = 0;
  };

  static PortIndex least_loaded(std::span<const PortIndex> c, Switch& sw) {
    PortIndex best = c.front();
    std::int64_t best_backlog = std::numeric_limits<std::int64_t>::max();
    for (const PortIndex port : c) {
      if (!sw.out_port(port)->is_up()) continue;
      const std::int64_t b = sw.out_port(port)->backlog_bytes();
      if (b < best_backlog) {
        best_backlog = b;
        best = port;
      }
    }
    return best;
  }

  sim::SimTime gap_;
  std::unordered_map<std::uint64_t, Flowlet> table_;
  std::uint64_t flowlet_switches_ = 0;
};

/// Message-aware load balancing (the MTP-enabled LB of Fig 6): each MTP
/// message is pinned to one path — chosen, on its first packet, as the path
/// with the least estimated drain time (backlog/rate + propagation). Packets
/// of a message never split across paths (paper §3.1.2: messages are atomic),
/// so there is no reordering within a message; balance comes from placing
/// whole messages by size and current load. Paths whose pathlet appears in
/// the packet's Path Exclude list are avoided (paper §3.1.3: end-hosts tell
/// the network which pathlets not to use). Non-MTP packets fall back to
/// least-loaded per packet.
class MessageAwarePolicy final : public ForwardingPolicy {
 public:
  PortIndex select(const Packet& pkt, std::span<const PortIndex> c, Switch& sw) override {
    if (pkt.is_mtp()) {
      const auto& hdr = pkt.mtp();
      const Key key{pkt.src, hdr.msg_id};
      auto it = pinned_.find(key);
      if (it != pinned_.end()) {
        const PortIndex port = it->second;
        if (sw.out_port(port)->is_up()) {
          if (hdr.is_last_pkt() || hdr.is_ack()) pinned_.erase(it);
          return port;
        }
        pinned_.erase(it);  // pinned path failed: re-place the message
      }
      const PortIndex port = least_loaded(c, sw, &hdr);
      if (!hdr.is_ack() && hdr.msg_len_pkts > 1 && !hdr.is_last_pkt()) {
        // Bounded pin state: a message whose last packet never crosses this
        // switch (sender died, rerouted) would leak its pin. Past the cap,
        // drop the table — in-flight messages simply re-pin on their next
        // packet, possibly to a new least-loaded port (a rare, safe reorder).
        if (pinned_.size() >= kMaxPins) pinned_.clear();
        pinned_.emplace(key, port);
      }
      return port;
    }
    return least_loaded(c, sw, nullptr);
  }
  std::string name() const override { return "msg-aware"; }

  std::size_t pinned_messages() const { return pinned_.size(); }
  static constexpr std::size_t kMaxPins = 1 << 16;

 private:
  struct Key {
    NodeId src;
    proto::MsgId msg;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.src) << 32) ^ k.msg);
    }
  };

  static bool excluded(Switch& sw, PortIndex port, const proto::MtpHeader* hdr) {
    if (hdr == nullptr || hdr->path_exclude().empty()) return false;
    const PathletState* pl = sw.out_port(port)->pathlet();
    if (pl == nullptr) return false;
    for (const auto& e : hdr->path_exclude()) {
      if (e.pathlet == pl->config().id) return true;
    }
    return false;
  }

  static PortIndex least_loaded(std::span<const PortIndex> c, Switch& sw,
                                const proto::MtpHeader* hdr) {
    // Prefer live, non-excluded candidates; fall back to all of them only
    // when the sender excluded (or failures downed) every path.
    PortIndex best = c.front();
    double best_cost = 1e300;
    bool found = false;
    for (const PortIndex port : c) {
      if (!sw.out_port(port)->is_up()) continue;
      if (excluded(sw, port, hdr)) continue;
      const double cc = cost(sw, port);
      if (cc < best_cost) {
        best_cost = cc;
        best = port;
        found = true;
      }
    }
    if (found) return best;
    for (const PortIndex port : c) {
      const double cc = cost(sw, port);
      if (cc < best_cost) {
        best_cost = cc;
        best = port;
      }
    }
    return best;
  }

  /// Estimated time for a new byte to reach the other end of this port.
  static double cost(Switch& sw, PortIndex port) {
    const Link* l = sw.out_port(port);
    const double drain_s = static_cast<double>(l->backlog_bytes()) * 8.0 /
                           static_cast<double>(l->bandwidth().bits_per_sec());
    return drain_s + l->propagation_delay().sec();
  }

  std::unordered_map<Key, PortIndex, KeyHash> pinned_;
};

}  // namespace mtp::net
