// Three-tier fat-tree fabric (Al-Fares et al., parameterized by k).
//
// k pods, each with k/2 edge and k/2 aggregation switches; (k/2)^2 core
// switches; k^3/4 hosts (k=8 -> 128 hosts, k=16 -> 1024). Every switch has k
// ports. Aggregation switch j of every pod connects to cores
// [j*k/2, (j+1)*k/2), which gives core c exactly one port per pod.
//
// Routing is valley-free by construction: edge and aggregation switches
// carry explicit *down* routes only for the hosts below them plus a default
// route over their up-ports (Switch::set_default_route), so table size per
// switch is O(hosts in subtree), not O(hosts in datacenter). Cores hold one
// down route per host. Explicit routes shadow the default set, so a packet
// turns downward at the first switch that knows its destination and can
// never loop. Multipath fan-out happens on the up-ports; the per-switch
// PolicyFactory picks among them (ECMP, spray, message-aware, ...) exactly
// as on LeafSpine.
//
// Hop counts (links traversed host to host): same edge 2, same pod 4,
// different pods 6 — the property tests in tests/scale_test.cpp walk every
// candidate path and assert this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/forwarding.hpp"
#include "net/network.hpp"

namespace mtp::net {

class FatTree {
 public:
  struct Config {
    int k = 4;  ///< pod count; must be even and >= 2
    sim::Bandwidth host_bw = sim::Bandwidth::gbps(100);
    sim::Bandwidth fabric_bw = sim::Bandwidth::gbps(100);
    sim::SimTime link_delay = sim::SimTime::microseconds(1);
    DropTailQueue::Config queue{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
  };

  /// Called once per edge/aggregation switch (cores are single-path and get
  /// no policy), so stateful policies don't share state across switches.
  using PolicyFactory = std::function<std::unique_ptr<ForwardingPolicy>()>;

  FatTree(Network& net, Config cfg, const PolicyFactory& up_policy = {}) : cfg_(cfg) {
    const int k = cfg.k;
    const int half = k / 2;

    // Space partitioning for sim::sharded: a pod is the natural cut (all its
    // edge/agg/host traffic is internal), so pod p and everything below it
    // land on shard p*S/k — contiguous pod ranges per shard. Core switches
    // talk to every pod equally and are spread round-robin. With S == 1 every
    // call is set_build_shard(0) and this is the classic serial build. Node
    // *creation order* is identical for every S: NodeIds — and with them flow
    // hashes and routing tables — never depend on the partitioning.
    const unsigned S = net.shards();
    const auto pod_shard = [k, S](int p) {
      return static_cast<unsigned>(static_cast<long long>(p) * S / k);
    };

    for (int c = 0; c < half * half; ++c) {
      net.set_build_shard(static_cast<unsigned>(c) % S);
      cores_.push_back(net.add_switch("core" + std::to_string(c)));
    }
    edges_.resize(k);
    aggs_.resize(k);
    for (int p = 0; p < k; ++p) {
      net.set_build_shard(pod_shard(p));
      for (int e = 0; e < half; ++e) {
        edges_[p].push_back(
            net.add_switch("p" + std::to_string(p) + ".e" + std::to_string(e)));
      }
      for (int a = 0; a < half; ++a) {
        aggs_[p].push_back(
            net.add_switch("p" + std::to_string(p) + ".a" + std::to_string(a)));
      }
    }

    // Hosts first so every edge switch has ports [0, half) host-facing.
    for (int p = 0; p < k; ++p) {
      net.set_build_shard(pod_shard(p));
      for (int e = 0; e < half; ++e) {
        for (int h = 0; h < half; ++h) {
          Host* host = net.add_host("h" + std::to_string(p) + "." +
                                    std::to_string(e) + "." + std::to_string(h));
          hosts_.push_back(host);
          host_pod_.push_back(p);
          host_edge_.push_back(e);
          net.connect(*host, *edges_[p][e], cfg.host_bw, cfg.link_delay, cfg.queue);
          edges_[p][e]->add_route(host->id(), static_cast<PortIndex>(h));
        }
      }
    }

    // Edge <-> aggregation mesh within each pod: edge port half+a faces
    // aggregation a; aggregation ports [0, half) face edges in order.
    for (int p = 0; p < k; ++p) {
      for (int e = 0; e < half; ++e) {
        for (int a = 0; a < half; ++a) {
          net.connect(*edges_[p][e], *aggs_[p][a], cfg.fabric_bw, cfg.link_delay,
                      cfg.queue);
        }
      }
    }

    // Aggregation <-> core: aggregation a's up-port half+i faces core
    // a*half + i. Pods iterate outermost, so core c's port p faces pod p.
    for (int p = 0; p < k; ++p) {
      for (int a = 0; a < half; ++a) {
        for (int i = 0; i < half; ++i) {
          net.connect(*aggs_[p][a], *cores_[a * half + i], cfg.fabric_bw,
                      cfg.link_delay, cfg.queue);
        }
      }
    }

    // Up-routing: one default set per switch instead of per-host entries.
    std::vector<PortIndex> up_ports;
    for (int i = 0; i < half; ++i) up_ports.push_back(static_cast<PortIndex>(half + i));
    for (int p = 0; p < k; ++p) {
      for (int e = 0; e < half; ++e) {
        edges_[p][e]->set_default_route(up_ports);
        if (up_policy) edges_[p][e]->set_policy(up_policy());
      }
      for (int a = 0; a < half; ++a) {
        aggs_[p][a]->set_default_route(up_ports);
        if (up_policy) aggs_[p][a]->set_policy(up_policy());
      }
    }

    // Down-routing: aggregation switches know their pod's hosts; cores know
    // every host's pod.
    for (std::size_t hi = 0; hi < hosts_.size(); ++hi) {
      const NodeId id = hosts_[hi]->id();
      const int p = host_pod_[hi];
      for (int a = 0; a < half; ++a) {
        aggs_[p][a]->add_route(id, static_cast<PortIndex>(host_edge_[hi]));
      }
      for (Switch* core : cores_) {
        core->add_route(id, static_cast<PortIndex>(p));
      }
    }

    net.set_build_shard(0);  // leave the network in its default build state
  }

  int k() const { return cfg_.k; }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  const std::vector<Host*>& hosts() const { return hosts_; }
  Host* host(int i) const { return hosts_[i]; }
  /// Host `h` of edge switch `e` in pod `p`.
  Host* host(int p, int e, int h) const {
    const int half = cfg_.k / 2;
    return hosts_[(p * half + e) * half + h];
  }
  Switch* edge(int pod, int i) const { return edges_[pod][i]; }
  Switch* agg(int pod, int i) const { return aggs_[pod][i]; }
  Switch* core(int i) const { return cores_[i]; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  int pod_of(int host_idx) const { return host_pod_[host_idx]; }

  /// The uplink from edge `e` in `pod` toward aggregation `a` (for failing
  /// fabric paths in fault experiments).
  Link* edge_uplink(int pod, int e, int a) const {
    return edges_[pod][e]->out_port(static_cast<PortIndex>(cfg_.k / 2 + a));
  }
  /// The uplink from aggregation `a` in `pod` toward its `i`-th core.
  Link* agg_uplink(int pod, int a, int i) const {
    return aggs_[pod][a]->out_port(static_cast<PortIndex>(cfg_.k / 2 + i));
  }

 private:
  Config cfg_;
  std::vector<Switch*> cores_;
  std::vector<std::vector<Switch*>> edges_;  ///< [pod][i]
  std::vector<std::vector<Switch*>> aggs_;   ///< [pod][i]
  std::vector<Host*> hosts_;
  std::vector<int> host_pod_;
  std::vector<int> host_edge_;
};

}  // namespace mtp::net
