// Unidirectional link: egress queue + serializer + propagation delay.
//
// A duplex cable is modelled as two Links. The link owns its egress queue;
// the sending node calls send(), the link transmits packets back-to-back at
// line rate and delivers each to the peer node after the propagation delay.
//
// If the link carries a pathlet (set_pathlet), departing MTP data packets
// get a (Path ID, TC, Feedback) TLV appended — see net/pathlet.hpp.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/pathlet.hpp"
#include "net/queue.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace mtp::net {

struct LinkStats {
  std::uint64_t pkts_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t pkts_dropped_down = 0;   ///< sends attempted while the link was down
                                         ///< plus queued packets discarded on a flap
  std::uint64_t pkts_dropped_fault = 0;  ///< dropped by the injected fault hook
  std::uint64_t pkts_corrupted = 0;      ///< payload-damaged by the fault hook
  std::uint64_t flaps = 0;               ///< down transitions seen by set_up()
};

/// What an injected per-packet fault does to a packet entering the link.
enum class FaultAction : std::uint8_t { kNone, kDrop, kCorrupt };

class Link {
 public:
  Link(sim::Simulator& simulator, std::string name, sim::Bandwidth bandwidth,
       sim::SimTime propagation_delay, std::unique_ptr<Queue> queue)
      : sim_(simulator),
        uid_(simulator.next_link_uid()),
        name_(std::move(name)),
        bandwidth_(bandwidth),
        delay_(propagation_delay),
        queue_(std::move(queue)) {
    register_metrics();
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Wire the receiving end. Must be called before the first send().
  void connect_to(Node& dst, PortIndex dst_in_port) {
    dst_ = &dst;
    dst_in_port_ = dst_in_port;
  }

  /// Attach a pathlet to this link. Starts the RCP control loop if the
  /// pathlet's feedback type is kRate.
  void set_pathlet(PathletConfig cfg);

  /// Hand a packet to the link for transmission. May drop (queue policy).
  void send(Packet&& pkt);

  const std::string& name() const { return name_; }
  /// The simulator this link's events run on — the *sender's* shard under
  /// sim::sharded. Fault machinery uses this to schedule flaps on the shard
  /// that owns the link.
  sim::Simulator& simulator() const { return sim_; }
  sim::Bandwidth bandwidth() const { return bandwidth_; }
  sim::SimTime propagation_delay() const { return delay_; }
  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }
  const LinkStats& stats() const { return stats_; }
  const PathletState* pathlet() const { return pathlet_ ? &*pathlet_ : nullptr; }
  Node* peer() const { return dst_; }

  /// Bytes currently committed to this link: in-queue plus in-serialization.
  /// Used by load-aware forwarding policies.
  std::int64_t backlog_bytes() const { return queue_->len_bytes() + in_flight_bytes_; }

  /// Capacity reservation (sim::flow fluid bulk transfers). The reserved
  /// rate is bandwidth a fluid flow is currently "transmitting" at; packet
  /// traffic serializes into the residual, so a bulk rate process inflates
  /// packet serialization delay exactly as competing bulk packets would,
  /// without one event per bulk packet. Clamped so packets always keep at
  /// least 1% of line rate (a reservation must slow packets, not wedge
  /// them). Only the shard that owns the link may call this (the fluid
  /// model installs its apply hook on the owning replica only).
  void set_fluid_reserved(std::int64_t bps) {
    const std::int64_t cap = bandwidth_.bits_per_sec();
    fluid_reserved_bps_ = bps < 0 ? 0 : (bps > cap ? cap : bps);
  }
  std::int64_t fluid_reserved_bps() const { return fluid_reserved_bps_; }

  /// Line rate minus the fluid reservation, floored at 1% of line rate —
  /// what packet-level traffic serializes at.
  sim::Bandwidth residual_bandwidth() const {
    if (fluid_reserved_bps_ == 0) return bandwidth_;
    const std::int64_t cap = bandwidth_.bits_per_sec();
    std::int64_t floor_bps = cap / 100;
    if (floor_bps < 1) floor_bps = 1;
    const std::int64_t residual = cap - fluid_reserved_bps_;
    return sim::Bandwidth::bps(residual > floor_bps ? residual : floor_bps);
  }

  /// Failure injection: a down link blackholes every send (packets already
  /// in flight still arrive — the fiber was cut behind them). Queued packets
  /// are discarded on the transition, as on a real port flap.
  void set_up(bool up);
  bool is_up() const { return up_; }

  /// Per-packet fault injection (mtp::fault drives this with a seeded
  /// Gilbert-Elliott chain): consulted on every send while the link is up.
  /// kDrop models a bit error that killed the whole frame; kCorrupt damages
  /// the payload but lets the packet through (receivers catch it by
  /// checksum). Empty hook = clean link.
  using FaultHook = std::function<FaultAction(const Packet&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Canonical link identity, the high bits of every delivery key (see
  /// delivery ordering below). Defaults to a per-simulator counter; Network
  /// overrides it with a topology-global counter so keys stay unique across
  /// shards no matter how the network is partitioned. Must be < 2^34.
  std::uint64_t uid() const { return uid_; }
  void set_uid(std::uint64_t uid) { uid_ = uid; }

  /// In-port index this link delivers into on peer() (set by connect_to).
  PortIndex peer_in_port() const { return dst_in_port_; }

  /// Cross-shard handoff: when set, a packet finishing serialization is
  /// passed to the sink — with its delivery time and canonical delivery
  /// key — instead of being scheduled on this (the sender-side) simulator.
  /// The sharded engine's drain schedules it on the receiving shard.
  using RemoteSink =
      std::function<void(Packet&&, sim::SimTime deliver_at, std::uint64_t key)>;
  void set_remote_sink(RemoteSink sink) { remote_sink_ = std::move(sink); }

  /// Build a trace event for this link at an explicit timestamp, touching
  /// only immutable link state — safe to call from the receiving shard's
  /// worker thread when a remote delivery executes.
  telemetry::TraceEvent trace_event_at(sim::SimTime t, telemetry::TraceEventType type,
                                       const Packet& pkt) const;

 private:
  void try_transmit();
  void finish_tx();
  void deliver_front();
  void stamp(Packet& pkt, sim::SimTime queue_delay);
  void register_metrics();
  telemetry::TraceEvent trace_event(telemetry::TraceEventType type,
                                    const Packet& pkt) const;

  /// A packet between serialization start and delivery. Packets wait here —
  /// not inside scheduled closures — so the per-hop events capture only
  /// `this` (8 bytes) and the 312-byte Packet is moved three times per hop
  /// total (into the queue, into this ring, out to the receiver) instead of
  /// six. Each delivery is a *keyed* event at its deliver_at: key =
  /// (uid << 28) | per-link tx counter, so at equal timestamps deliveries
  /// execute in link-uid order — derived from topology, not from scheduling
  /// history, which is what keeps serial and sharded runs bit-identical
  /// (sim/sharded/engine.hpp). Per-link deliver_at is strictly increasing
  /// (serialization is >= 1ns), so the counter only disambiguates events of
  /// *different* links.
  struct InFlight {
    Packet pkt;
    sim::SimTime qdelay;      ///< queueing delay, for the pathlet stamp at tx end
    sim::SimTime deliver_at;  ///< set at serialization end (tx + propagation)
  };

  std::uint64_t next_delivery_key() {
    return (uid_ << 28) | (std::uint64_t{++tx_seq_} & 0x0fffffff);
  }

  sim::Simulator& sim_;
  std::uint64_t uid_;
  std::uint32_t tx_seq_ = 0;  ///< low bits of the delivery key
  std::string name_;
  sim::Bandwidth bandwidth_;
  sim::SimTime delay_;
  std::unique_ptr<Queue> queue_;
  Node* dst_ = nullptr;
  PortIndex dst_in_port_ = 0;
  bool transmitting_ = false;
  bool up_ = true;
  std::int64_t fluid_reserved_bps_ = 0;  ///< sim::flow capacity reservation
  sim::RingBuffer<InFlight> in_flight_{8};  ///< back = serializing, front = next to deliver
  std::int64_t in_flight_bytes_ = 0;
  RemoteSink remote_sink_;
  LinkStats stats_;
  FaultHook fault_hook_;
  std::optional<PathletState> pathlet_;
  std::unique_ptr<sim::PeriodicTask> rcp_task_;
  telemetry::Registration link_metrics_;
  telemetry::Registration queue_metrics_;
};

}  // namespace mtp::net
