// Unidirectional link: egress queue + serializer + propagation delay.
//
// A duplex cable is modelled as two Links. The link owns its egress queue;
// the sending node calls send(), the link transmits packets back-to-back at
// line rate and delivers each to the peer node after the propagation delay.
//
// If the link carries a pathlet (set_pathlet), departing MTP data packets
// get a (Path ID, TC, Feedback) TLV appended — see net/pathlet.hpp.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/pathlet.hpp"
#include "net/queue.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace mtp::net {

struct LinkStats {
  std::uint64_t pkts_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t pkts_dropped_down = 0;   ///< sends attempted while the link was down
                                         ///< plus queued packets discarded on a flap
  std::uint64_t pkts_dropped_fault = 0;  ///< dropped by the injected fault hook
  std::uint64_t pkts_corrupted = 0;      ///< payload-damaged by the fault hook
  std::uint64_t flaps = 0;               ///< down transitions seen by set_up()
};

/// What an injected per-packet fault does to a packet entering the link.
enum class FaultAction : std::uint8_t { kNone, kDrop, kCorrupt };

class Link {
 public:
  Link(sim::Simulator& simulator, std::string name, sim::Bandwidth bandwidth,
       sim::SimTime propagation_delay, std::unique_ptr<Queue> queue)
      : sim_(simulator),
        name_(std::move(name)),
        bandwidth_(bandwidth),
        delay_(propagation_delay),
        queue_(std::move(queue)) {
    register_metrics();
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Wire the receiving end. Must be called before the first send().
  void connect_to(Node& dst, PortIndex dst_in_port) {
    dst_ = &dst;
    dst_in_port_ = dst_in_port;
  }

  /// Attach a pathlet to this link. Starts the RCP control loop if the
  /// pathlet's feedback type is kRate.
  void set_pathlet(PathletConfig cfg);

  /// Hand a packet to the link for transmission. May drop (queue policy).
  void send(Packet&& pkt);

  const std::string& name() const { return name_; }
  sim::Bandwidth bandwidth() const { return bandwidth_; }
  sim::SimTime propagation_delay() const { return delay_; }
  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }
  const LinkStats& stats() const { return stats_; }
  const PathletState* pathlet() const { return pathlet_ ? &*pathlet_ : nullptr; }
  Node* peer() const { return dst_; }

  /// Bytes currently committed to this link: in-queue plus in-serialization.
  /// Used by load-aware forwarding policies.
  std::int64_t backlog_bytes() const { return queue_->len_bytes() + in_flight_bytes_; }

  /// Failure injection: a down link blackholes every send (packets already
  /// in flight still arrive — the fiber was cut behind them). Queued packets
  /// are discarded on the transition, as on a real port flap.
  void set_up(bool up);
  bool is_up() const { return up_; }

  /// Per-packet fault injection (mtp::fault drives this with a seeded
  /// Gilbert-Elliott chain): consulted on every send while the link is up.
  /// kDrop models a bit error that killed the whole frame; kCorrupt damages
  /// the payload but lets the packet through (receivers catch it by
  /// checksum). Empty hook = clean link.
  using FaultHook = std::function<FaultAction(const Packet&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  void try_transmit();
  void finish_tx();
  void deliver_front();
  void stamp(Packet& pkt, sim::SimTime queue_delay);
  void register_metrics();
  telemetry::TraceEvent trace_event(telemetry::TraceEventType type,
                                    const Packet& pkt) const;

  /// A packet between serialization start and delivery. Packets wait here —
  /// not inside scheduled closures — so the per-hop events capture only
  /// `this` (8 bytes) and the 312-byte Packet is moved three times per hop
  /// total (into the queue, into this ring, out to the receiver) instead of
  /// six. Delivery order is FIFO because the serializer emits packets one at
  /// a time onto a fixed propagation delay.
  struct InFlight {
    Packet pkt;
    sim::SimTime qdelay;      ///< queueing delay, for the pathlet stamp at tx end
    sim::SimTime deliver_at;  ///< set at serialization end (tx + propagation)
  };

  sim::Simulator& sim_;
  std::string name_;
  sim::Bandwidth bandwidth_;
  sim::SimTime delay_;
  std::unique_ptr<Queue> queue_;
  Node* dst_ = nullptr;
  PortIndex dst_in_port_ = 0;
  bool transmitting_ = false;
  bool up_ = true;
  sim::RingBuffer<InFlight> in_flight_{8};  ///< back = serializing, front = next to deliver
  std::size_t ready_count_ = 0;  ///< in_flight_ entries past serialization (deliver_at set)
  std::int64_t in_flight_bytes_ = 0;
  LinkStats stats_;
  FaultHook fault_hook_;
  std::optional<PathletState> pathlet_;
  std::unique_ptr<sim::PeriodicTask> rcp_task_;
  telemetry::Registration link_metrics_;
  telemetry::Registration queue_metrics_;
};

}  // namespace mtp::net
