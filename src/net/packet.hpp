// The simulated packet.
//
// Packets carry metadata (sizes, ECN codepoint) plus a protocol header held
// in a variant. Payload bytes are modelled as a count, not a buffer — the
// experiments only depend on sizes and timing. Where payload *content*
// matters (the in-network KVS cache, mutation offloads), the content rides in
// the header's application fields or in the KeyValue annotation below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "proto/mtp_header.hpp"
#include "proto/tcp_header.hpp"
#include "proto/types.hpp"
#include "sim/time.hpp"

namespace mtp::net {

/// Node address. The simulator uses flat addressing: one id per node.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

/// Port index within a node (attachment point of a link).
using PortIndex = std::uint32_t;

/// IP ECN codepoint (RFC 3168). Queues mark kEct* -> kCe above threshold.
enum class Ecn : std::uint8_t { kNotEct = 0, kEct = 1, kCe = 3 };

/// Optional application payload annotation used by in-network compute
/// devices (KVS cache keys, etc.). Carried alongside the header because the
/// simulation does not materialize payload bytes.
struct AppData {
  std::string key;    ///< KVS key, request name, ...
  std::string value;  ///< KVS value or response body
  bool operator==(const AppData&) const = default;
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t payload_bytes = 0;  ///< application payload carried
  std::uint32_t header_bytes = 0;   ///< accounted header overhead on the wire
  Ecn ecn = Ecn::kNotEct;
  proto::TrafficClassId tc = 0;
  std::uint8_t priority = 0;
  std::uint64_t flow_hash = 0;  ///< 5-tuple-style hash for ECMP decisions
  std::uint64_t uid = 0;        ///< unique per packet *transmission* (retransmits get fresh uids)

  /// Payload checksum, stamped by the first link the packet crosses (NIC
  /// checksum offload). 0 = not yet stamped. Receivers recompute and drop on
  /// mismatch; see stamp_fingerprint()/checksum_ok() below.
  std::uint64_t payload_fingerprint = 0;

  std::variant<std::monostate, proto::TcpHeader, proto::UdpHeader, proto::MtpHeader> header;

  /// Application payload annotation, boxed because almost every packet in
  /// flight has none and packets are moved on every hop. Mimics the optional
  /// interface (bool test, ->, *, assignment from AppData).
  proto::Boxed<AppData> app;

  // --- Per-hop scratch space owned by the Link currently carrying the
  // packet; reset on every send(). Not part of the wire format.
  sim::SimTime hop_enqueued_at;
  bool hop_was_ce = false;  ///< CE codepoint on arrival at the current hop

  /// Ground truth for fault injection: corrupt() sets this. The simulation
  /// does not materialize payload bytes, so this one bit stands in for the
  /// flipped bits — it feeds the fingerprint (making verification fail) but
  /// MUST NOT be consulted by any delivery path. Tests read it to prove that
  /// checksum verification, not this flag, kept corrupted data out.
  bool corrupted = false;

  std::uint32_t size_bytes() const { return payload_bytes + header_bytes; }

  bool is_tcp() const { return std::holds_alternative<proto::TcpHeader>(header); }
  bool is_udp() const { return std::holds_alternative<proto::UdpHeader>(header); }
  bool is_mtp() const { return std::holds_alternative<proto::MtpHeader>(header); }

  proto::TcpHeader& tcp() { return std::get<proto::TcpHeader>(header); }
  const proto::TcpHeader& tcp() const { return std::get<proto::TcpHeader>(header); }
  proto::UdpHeader& udp() { return std::get<proto::UdpHeader>(header); }
  const proto::UdpHeader& udp() const { return std::get<proto::UdpHeader>(header); }
  proto::MtpHeader& mtp() { return std::get<proto::MtpHeader>(header); }
  const proto::MtpHeader& mtp() const { return std::get<proto::MtpHeader>(header); }

  // Transmission uids come from Simulator::next_packet_uid(): per-simulator
  // state keeps them deterministic per run and race-free under
  // sim::ParallelSweep (a process-wide counter was neither).

  // --- Payload checksum (fault model, docs/faults.md).
  //
  // The fingerprint covers the payload identity: size, application content,
  // and the protocol fields describing what the payload is. It deliberately
  // excludes everything legitimately rewritten en route — dst (the L7 load
  // balancer redirects requests), ECN, path feedback TLVs, per-hop scratch —
  // so only actual payload damage trips verification.
  std::uint64_t compute_fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    };
    mix(src);
    mix(payload_bytes);
    mix(corrupted ? 0x5bd1e995ULL : 0);
    if (app) {
      for (const char c : app->key) mix(static_cast<std::uint8_t>(c));
      for (const char c : app->value) mix(static_cast<std::uint8_t>(c));
    }
    if (is_mtp()) {
      const auto& m = mtp();
      mix((static_cast<std::uint64_t>(m.msg_id) << 8) | static_cast<std::uint64_t>(m.type));
      mix((static_cast<std::uint64_t>(m.pkt_num) << 32) | m.pkt_len);
      mix(m.pkt_offset);
      if (m.has_stream()) {
        const auto& s = *m.stream;
        mix((static_cast<std::uint64_t>(s.stream_id) << 16) |
            (static_cast<std::uint64_t>(s.kind) << 8) | s.flags);
        mix((static_cast<std::uint64_t>(s.seq) << 32) | s.fec_index);
        mix(s.offset);
      }
    } else if (is_tcp()) {
      const auto& t = tcp();
      mix((t.seq << 8) | t.flags);
      mix((static_cast<std::uint64_t>(t.src_port) << 32) | t.payload);
    } else if (is_udp()) {
      const auto& u = udp();
      mix((static_cast<std::uint64_t>(u.src_port) << 32) |
          (static_cast<std::uint64_t>(u.dst_port) << 16) | u.length);
    }
    return h == 0 ? 1 : h;  // 0 is reserved for "unstamped"
  }

  void stamp_fingerprint() { payload_fingerprint = compute_fingerprint(); }

  /// True when the payload matches its stamp. Unstamped packets (which never
  /// crossed a link) vacuously pass.
  bool checksum_ok() const {
    return payload_fingerprint == 0 || payload_fingerprint == compute_fingerprint();
  }

  /// Inject a payload bit error (Gilbert-Elliott corruption). The stored
  /// fingerprint keeps the value stamped before the damage, so every
  /// verifying receiver sees a mismatch.
  void corrupt() { corrupted = true; }
};

}  // namespace mtp::net
