// The simulated packet.
//
// Packets carry metadata (sizes, ECN codepoint) plus a protocol header held
// in a variant. Payload bytes are modelled as a count, not a buffer — the
// experiments only depend on sizes and timing. Where payload *content*
// matters (the in-network KVS cache, mutation offloads), the content rides in
// the header's application fields or in the KeyValue annotation below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "proto/mtp_header.hpp"
#include "proto/tcp_header.hpp"
#include "proto/types.hpp"
#include "sim/time.hpp"

namespace mtp::net {

/// Node address. The simulator uses flat addressing: one id per node.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

/// Port index within a node (attachment point of a link).
using PortIndex = std::uint32_t;

/// IP ECN codepoint (RFC 3168). Queues mark kEct* -> kCe above threshold.
enum class Ecn : std::uint8_t { kNotEct = 0, kEct = 1, kCe = 3 };

/// Optional application payload annotation used by in-network compute
/// devices (KVS cache keys, etc.). Carried alongside the header because the
/// simulation does not materialize payload bytes.
struct AppData {
  std::string key;    ///< KVS key, request name, ...
  std::string value;  ///< KVS value or response body
  bool operator==(const AppData&) const = default;
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t payload_bytes = 0;  ///< application payload carried
  std::uint32_t header_bytes = 0;   ///< accounted header overhead on the wire
  Ecn ecn = Ecn::kNotEct;
  proto::TrafficClassId tc = 0;
  std::uint8_t priority = 0;
  std::uint64_t flow_hash = 0;  ///< 5-tuple-style hash for ECMP decisions
  std::uint64_t uid = 0;        ///< unique per packet *transmission* (retransmits get fresh uids)

  std::variant<std::monostate, proto::TcpHeader, proto::UdpHeader, proto::MtpHeader> header;
  std::optional<AppData> app;

  // --- Per-hop scratch space owned by the Link currently carrying the
  // packet; reset on every send(). Not part of the wire format.
  sim::SimTime hop_enqueued_at;
  bool hop_was_ce = false;  ///< CE codepoint on arrival at the current hop

  std::uint32_t size_bytes() const { return payload_bytes + header_bytes; }

  bool is_tcp() const { return std::holds_alternative<proto::TcpHeader>(header); }
  bool is_udp() const { return std::holds_alternative<proto::UdpHeader>(header); }
  bool is_mtp() const { return std::holds_alternative<proto::MtpHeader>(header); }

  proto::TcpHeader& tcp() { return std::get<proto::TcpHeader>(header); }
  const proto::TcpHeader& tcp() const { return std::get<proto::TcpHeader>(header); }
  proto::UdpHeader& udp() { return std::get<proto::UdpHeader>(header); }
  const proto::UdpHeader& udp() const { return std::get<proto::UdpHeader>(header); }
  proto::MtpHeader& mtp() { return std::get<proto::MtpHeader>(header); }
  const proto::MtpHeader& mtp() const { return std::get<proto::MtpHeader>(header); }

  // Transmission uids come from Simulator::next_packet_uid(): per-simulator
  // state keeps them deterministic per run and race-free under
  // sim::ParallelSweep (a process-wide counter was neither).
};

}  // namespace mtp::net
