// Network: owns the simulator, nodes and links, and wires topologies.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mtp::net {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  sim::Simulator& simulator() { return sim_; }
  sim::Rng& rng() { return rng_; }

  Host* add_host(std::string name) {
    auto host = std::make_unique<Host>(sim_, next_id(), std::move(name));
    Host* p = host.get();
    nodes_.push_back(std::move(host));
    return p;
  }

  Switch* add_switch(std::string name) {
    auto sw = std::make_unique<Switch>(sim_, next_id(), std::move(name));
    Switch* p = sw.get();
    nodes_.push_back(std::move(sw));
    return p;
  }

  /// One direction of a cable: a -> b. Returns the created link, attached as
  /// a new out-port on `a` and delivering into `b`.
  Link* connect_simplex(Node& a, Node& b, sim::Bandwidth bw, sim::SimTime delay,
                        std::unique_ptr<Queue> queue) {
    auto link = std::make_unique<Link>(sim_, a.name() + "->" + b.name(), bw, delay,
                                       std::move(queue));
    Link* p = link.get();
    links_.push_back(std::move(link));
    a.add_out_port(p);
    // In-port index on the receiving side: we reuse the count of links that
    // already deliver into b. Receivers only need a stable identifier.
    p->connect_to(b, next_in_port(b));
    return p;
  }

  struct Duplex {
    Link* forward;   ///< a -> b
    Link* backward;  ///< b -> a
  };

  /// Symmetric duplex cable with drop-tail queues on both ends.
  Duplex connect(Node& a, Node& b, sim::Bandwidth bw, sim::SimTime delay,
                 DropTailQueue::Config qcfg = {}) {
    return {connect_simplex(a, b, bw, delay, std::make_unique<DropTailQueue>(qcfg)),
            connect_simplex(b, a, bw, delay, std::make_unique<DropTailQueue>(qcfg))};
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

 private:
  NodeId next_id() { return static_cast<NodeId>(nodes_.size()); }
  // Next in-port index on `b`: the number of links already delivering into
  // it. A running counter — scanning links_ per connect made building a
  // thousand-host fat-tree quadratic in the link count.
  PortIndex next_in_port(Node& b) { return in_port_count_[&b]++; }

  sim::Simulator sim_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<const Node*, PortIndex> in_port_count_;
};

}  // namespace mtp::net
