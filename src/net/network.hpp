// Network: owns the simulator(s), nodes and links, and wires topologies.
//
// A Network is built for a shard count fixed at construction. With one shard
// (the default) it is exactly the classic single-simulator container. With
// S > 1 shards it owns S simulators and S arenas; topology builders place
// each node on a shard (set_build_shard), links bind to their *sending*
// node's simulator, and a link whose endpoints live on different shards
// hands packets across through a lock-free SPSC channel instead of
// scheduling the delivery locally. run() then drives all shards through
// sim::sharded::Engine using the minimum cross-shard propagation delay as
// conservative lookahead — and merges per-shard traces deterministically
// (timestamp, then shard id) back into the caller's sink. See
// sim/sharded/engine.hpp for why the result is bit-identical to shards=1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/arena.hpp"
#include "sim/random.hpp"
#include "sim/sharded/spsc.hpp"
#include "sim/simulator.hpp"

namespace mtp::sim::sharded {
class Engine;
}  // namespace mtp::sim::sharded

namespace mtp::net {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1, unsigned shards = 1);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Shard 0's simulator — THE simulator for single-shard networks.
  sim::Simulator& simulator() { return *sims_[0]; }
  sim::Simulator& simulator(unsigned shard) { return *sims_.at(shard); }
  unsigned shards() const { return static_cast<unsigned>(sims_.size()); }
  sim::Rng& rng() { return rng_; }

  /// Conservative lookahead: the minimum propagation delay over cross-shard
  /// links wired so far (SimTime::max() if none).
  sim::SimTime lookahead() const { return min_cross_delay_; }

  /// Topology builders call this before add_host()/add_switch() to place
  /// subsequent nodes (and the links they send on) on `shard`.
  void set_build_shard(unsigned shard) {
    if (shard >= shards()) {
      throw std::invalid_argument("Network::set_build_shard: shard out of range");
    }
    build_shard_ = shard;
  }
  unsigned build_shard() const { return build_shard_; }
  /// Nodes constructed outside add_host()/add_switch() (test fixtures with
  /// hand-picked ids) were never placed; they count as the current build
  /// shard rather than indexing node_shard_ out of bounds.
  unsigned shard_of(const Node& n) const {
    return n.id() < node_shard_.size() ? node_shard_[n.id()] : build_shard_;
  }

  Host* add_host(std::string name) {
    Host* p = arenas_[build_shard_]->make<Host>(*sims_[build_shard_], next_id(),
                                                std::move(name));
    nodes_.push_back(p);
    node_shard_.push_back(build_shard_);
    return p;
  }

  Switch* add_switch(std::string name) {
    Switch* p = arenas_[build_shard_]->make<Switch>(*sims_[build_shard_], next_id(),
                                                    std::move(name));
    nodes_.push_back(p);
    node_shard_.push_back(build_shard_);
    return p;
  }

  /// One direction of a cable: a -> b. Returns the created link, attached as
  /// a new out-port on `a` and delivering into `b`. The link lives in `a`'s
  /// shard (queueing and serialization run on the sender's simulator); when
  /// `b` is on another shard the delivery crosses an SPSC channel.
  Link* connect_simplex(Node& a, Node& b, sim::Bandwidth bw, sim::SimTime delay,
                        std::unique_ptr<Queue> queue);

  struct Duplex {
    Link* forward;   ///< a -> b
    Link* backward;  ///< b -> a
  };

  /// Symmetric duplex cable with drop-tail queues on both ends.
  Duplex connect(Node& a, Node& b, sim::Bandwidth bw, sim::SimTime delay,
                 DropTailQueue::Config qcfg = {}) {
    return {connect_simplex(a, b, bw, delay, std::make_unique<DropTailQueue>(qcfg)),
            connect_simplex(b, a, bw, delay, std::make_unique<DropTailQueue>(qcfg))};
  }

  /// Run every shard to `until` (exclusive bound on event timestamps, like
  /// Simulator::run). Returns the number of events executed across shards.
  /// Single-shard networks run inline on the calling thread; multi-shard
  /// networks run under sim::sharded::Engine, with per-shard traces merged
  /// back into the calling thread's sink ordered by (timestamp, shard).
  std::uint64_t run(sim::SimTime until = sim::SimTime::max());

  /// Conservative windows executed by run() so far (0 for single-shard).
  std::uint64_t windows() const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// Every link in topology-construction order — the order is a function of
  /// the topology alone (not the shard count), so an index into this vector
  /// is a shard-invariant link identity. The fluid flow model (sim/flow)
  /// registers its conduits in exactly this order on every replica.
  const std::vector<Link*>& links() const { return links_; }
  /// The shard whose simulator runs a link's events (its sender's shard).
  unsigned shard_of_link(std::size_t link_index) const {
    return link_shard_[link_index];
  }

 private:
  /// A packet mid-flight between shards: everything the receiving shard
  /// needs to schedule the delivery as a keyed event.
  struct Handoff {
    Packet pkt;
    sim::SimTime deliver_at;
    std::uint64_t key = 0;
    const Link* link = nullptr;
  };
  using Channel = sim::sharded::SpscChannel<Handoff>;

  NodeId next_id() { return static_cast<NodeId>(nodes_.size()); }
  // Next in-port index on `b`: the number of links already delivering into
  // it. A running counter — scanning links_ per connect made building a
  // thousand-host fat-tree quadratic in the link count.
  PortIndex next_in_port(Node& b) { return in_port_count_[&b]++; }

  Channel& channel(unsigned from, unsigned to) {
    return *channels_[from * shards() + to];
  }
  /// Move every queued handoff bound for `shard` onto its simulator.
  /// Called by the engine on the shard's worker thread between windows.
  void drain_into(unsigned shard);

  sim::Rng rng_;
  std::vector<std::unique_ptr<sim::Simulator>> sims_;   ///< one per shard
  std::vector<std::unique_ptr<sim::Arena>> arenas_;     ///< nodes+links, per shard
  std::vector<std::unique_ptr<Channel>> channels_;      ///< [from * S + to]
  std::vector<std::vector<Handoff>> drain_buf_;         ///< per-shard scratch
  unsigned build_shard_ = 0;
  std::vector<Node*> nodes_;        ///< arena-owned
  std::vector<unsigned> node_shard_;  ///< by NodeId
  std::vector<Link*> links_;        ///< arena-owned
  std::vector<unsigned> link_shard_;  ///< by links_ index: the sender's shard
  std::uint64_t next_link_uid_ = 0;
  sim::SimTime min_cross_delay_ = sim::SimTime::max();
  std::unordered_map<const Node*, PortIndex> in_port_count_;

  // --- sharded::Engine plumbing (multi-shard runs only).
  std::unique_ptr<sim::sharded::Engine> engine_;
  sim::SimTime engine_lookahead_ = sim::SimTime::zero();  ///< lookahead engine_ was built with
  bool run_trace_on_ = false;                 ///< caller's trace flag, per run
  std::size_t run_trace_cap_ = 0;             ///< caller's sink capacity
  std::optional<std::uint64_t> run_filter_msg_;   ///< caller's filters, copied
  std::optional<std::uint32_t> run_filter_node_;  ///< onto worker sinks
  std::optional<std::uint64_t> run_filter_flow_;
  std::vector<std::vector<telemetry::TraceEvent>> shard_events_;
};

}  // namespace mtp::net
