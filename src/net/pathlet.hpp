// Pathlet feedback stamping (paper §3.1.3).
//
// A pathlet is a network resource with its own congestion feedback. In this
// simulator pathlets attach to links: when an MTP data packet leaves a link
// configured with a pathlet, the link appends a (Path ID, TC, Feedback) TLV
// to the packet's Path Feedback list. The receiver echoes the list in ACKs,
// giving the sender per-resource congestion state.
//
// Each pathlet chooses its own feedback algorithm — this is the paper's
// "multi-algorithm" property:
//   kEcn   — DCTCP-style: 1 if this hop's queue CE-marked the packet
//   kRate  — RCP-style: the link's current computed fair rate (bits/sec)
//   kDelay — Swift-style: queueing delay experienced at this hop (ns)
#pragma once

#include <cstdint>

#include "proto/mtp_header.hpp"
#include "sim/time.hpp"

namespace mtp::net {

struct PathletConfig {
  proto::PathletId id = proto::kDefaultPathlet;
  proto::FeedbackType feedback = proto::FeedbackType::kEcn;

  /// Header-overhead reduction (paper §4): stamp feedback on every packet
  /// (1, the default) or only on every Nth packet — congestion signals
  /// (marks, rate cuts, standing delay) are always stamped regardless, so
  /// control reacts immediately while quiet paths stay cheap.
  std::uint32_t selective_every = 1;

  // --- RCP parameters (used when feedback == kRate).
  /// Control-loop interval; also the averaging window for arrival rate.
  sim::SimTime rcp_period = sim::SimTime::microseconds(10);
  /// Estimate of the average RTT of flows crossing this pathlet.
  sim::SimTime rcp_rtt = sim::SimTime::microseconds(10);
  double rcp_alpha = 0.4;  ///< gain on spare capacity
  double rcp_beta = 0.2;   ///< gain on queue drain
};

/// Per-link pathlet state. The owning Link calls on_arrival() for every
/// packet accepted into the queue, periodic_update() on a timer when running
/// RCP, and make_feedback() when stamping a departing packet.
class PathletState {
 public:
  PathletState(PathletConfig cfg, sim::Bandwidth capacity)
      : cfg_(cfg), capacity_(capacity), rcp_rate_(capacity) {}

  const PathletConfig& config() const { return cfg_; }

  void on_arrival(std::int64_t bytes) { arrived_bytes_ += bytes; }

  /// RCP control law: R <- R * (1 + (alpha*(C - y) - beta*q/d) / C), clamped
  /// to [1% C, C]. `queue_bytes` is the instantaneous backlog.
  void periodic_update(std::int64_t queue_bytes) {
    const double c = static_cast<double>(capacity_.bits_per_sec());
    const double period_s = cfg_.rcp_period.sec();
    const double y = static_cast<double>(arrived_bytes_) * 8.0 / period_s;  // arrival bits/s
    const double d = cfg_.rcp_rtt.sec();
    const double q_term = static_cast<double>(queue_bytes) * 8.0 / d;
    const double delta = (cfg_.rcp_alpha * (c - y) - cfg_.rcp_beta * q_term) / c;
    double r = static_cast<double>(rcp_rate_.bits_per_sec()) * (1.0 + delta * period_s / d);
    r = std::min(r, c);
    r = std::max(r, 0.01 * c);
    rcp_rate_ = sim::Bandwidth::bps(static_cast<std::int64_t>(r));
    arrived_bytes_ = 0;
  }

  sim::Bandwidth rcp_rate() const { return rcp_rate_; }

  /// Selective stamping decision: true if this departure should carry a TLV.
  /// Congestion is always reported; routine "all clear" only every Nth.
  bool should_stamp(bool marked_at_hop, sim::SimTime queue_delay) {
    const bool routine_turn = (stamp_counter_++ % cfg_.selective_every) == 0;
    if (cfg_.selective_every <= 1 || routine_turn) return true;
    switch (cfg_.feedback) {
      case proto::FeedbackType::kEcn:
        return marked_at_hop;
      case proto::FeedbackType::kRate:
        return rcp_rate_.bits_per_sec() < capacity_.bits_per_sec() * 9 / 10;
      case proto::FeedbackType::kDelay:
        return queue_delay > sim::SimTime::microseconds(1);
      default:
        return false;
    }
  }

  /// Build the TLV stamped onto a departing packet.
  proto::Feedback make_feedback(bool marked_at_hop, sim::SimTime queue_delay) const {
    switch (cfg_.feedback) {
      case proto::FeedbackType::kEcn:
        return {proto::FeedbackType::kEcn, marked_at_hop ? 1u : 0u};
      case proto::FeedbackType::kRate:
        return {proto::FeedbackType::kRate,
                static_cast<std::uint64_t>(rcp_rate_.bits_per_sec())};
      case proto::FeedbackType::kDelay:
        return {proto::FeedbackType::kDelay, static_cast<std::uint64_t>(queue_delay.ns())};
      default:
        return {proto::FeedbackType::kNone, 0};
    }
  }

 private:
  PathletConfig cfg_;
  sim::Bandwidth capacity_;
  sim::Bandwidth rcp_rate_;
  std::int64_t arrived_bytes_ = 0;
  std::uint64_t stamp_counter_ = 0;
};

}  // namespace mtp::net
