#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "sim/sharded/engine.hpp"

namespace mtp::net {

Network::Network(std::uint64_t seed, unsigned shards) : rng_(seed) {
  if (shards == 0) {
    throw std::invalid_argument("Network: shard count must be >= 1");
  }
  sims_.reserve(shards);
  arenas_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    sims_.push_back(std::make_unique<sim::Simulator>());
    // Shard-disjoint packet uid ranges without cross-thread coordination.
    // Shard 0's base is 0, so a one-shard Network hands out the exact uid
    // sequence a bare Simulator would.
    sims_.back()->seed_packet_uids(std::uint64_t{s} << 48);
    arenas_.push_back(std::make_unique<sim::Arena>());
  }
  channels_.resize(static_cast<std::size_t>(shards) * shards);
  for (auto& c : channels_) c = std::make_unique<Channel>();
  drain_buf_.resize(shards);
}

Network::~Network() = default;  // out of line: sharded::Engine is incomplete in the header

Link* Network::connect_simplex(Node& a, Node& b, sim::Bandwidth bw, sim::SimTime delay,
                               std::unique_ptr<Queue> queue) {
  const unsigned sa = shard_of(a);
  const unsigned sb = shard_of(b);
  // The link lives where its sender lives: queueing, serialization and fault
  // hooks all run on a's simulator.
  Link* p = arenas_[sa]->make<Link>(*sims_[sa], a.name() + "->" + b.name(), bw, delay,
                                    std::move(queue));
  // Topology-global uid in construction order: identical for every shard
  // count, which keeps keyed delivery ordering — and therefore the whole
  // timeline — independent of the partitioning.
  p->set_uid(next_link_uid_++);
  links_.push_back(p);
  link_shard_.push_back(sa);
  a.add_out_port(p);
  // In-port index on the receiving side: we reuse the count of links that
  // already deliver into b. Receivers only need a stable identifier.
  p->connect_to(b, next_in_port(b));
  if (sa != sb) {
    if (delay <= sim::SimTime::zero()) {
      throw std::invalid_argument(
          "Network::connect_simplex: cross-shard link " + p->name() +
          " needs a positive propagation delay (it bounds the conservative lookahead)");
    }
    min_cross_delay_ = std::min(min_cross_delay_, delay);
    Channel& ch = channel(sa, sb);
    p->set_remote_sink([&ch, p](Packet&& pkt, sim::SimTime at, std::uint64_t key) {
      ch.push(Handoff{std::move(pkt), at, key, p});
    });
  }
  return p;
}

void Network::drain_into(unsigned shard) {
  std::vector<Handoff>& buf = drain_buf_[shard];
  sim::Simulator& sim = *sims_[shard];
  for (unsigned s = 0; s < shards(); ++s) {
    if (s != shard) channel(s, shard).drain(buf);
  }
  for (Handoff& h : buf) {
    // The delivery becomes a keyed event on the receiving shard — the same
    // (when, key) the sender's Link would have scheduled locally, so the
    // receiver executes it at exactly the serial run's position. deliver_at
    // is >= the window end (lookahead), never in this shard's past.
    const Link* link = h.link;
    sim.schedule_keyed_at(
        h.deliver_at, h.key,
        [link, at = h.deliver_at, pkt = std::move(h.pkt)]() mutable {
          if (telemetry::TraceSink::enabled()) {
            telemetry::trace().record(
                link->trace_event_at(at, telemetry::TraceEventType::kRx, pkt));
          }
          link->peer()->receive(std::move(pkt), link->peer_in_port());
        });
  }
  buf.clear();
}

std::uint64_t Network::run(sim::SimTime until) {
  if (shards() == 1) return sims_[0]->run(until);

  if (!engine_ || engine_lookahead_ != min_cross_delay_) {
    // (Re)build if topology grew a tighter cross-shard delay since the last
    // run. min_cross_delay_ may be SimTime::max() when no link crosses a
    // shard boundary — windows then collapse to "run everything once".
    sim::sharded::Engine::Config cfg;
    for (auto& s : sims_) cfg.sims.push_back(s.get());
    cfg.lookahead = min_cross_delay_;
    cfg.drain = [this](std::size_t shard) { drain_into(static_cast<unsigned>(shard)); };
    cfg.on_worker_start = [this](std::size_t /*shard*/) {
      // Each worker gets a private thread-local sink configured like the
      // caller's. Workers never run on the calling thread (WorkerPool
      // contract), so the caller's own sink is untouched by the run.
      telemetry::TraceSink::set_enabled(run_trace_on_);
      if (!run_trace_on_) return;
      telemetry::TraceSink& sink = telemetry::trace();
      sink.set_capacity(run_trace_cap_);
      sink.filter_message(run_filter_msg_);
      sink.filter_node(run_filter_node_);
      sink.filter_flow(run_filter_flow_);
    };
    cfg.on_worker_finish = [this](std::size_t shard) {
      if (run_trace_on_) shard_events_[shard] = telemetry::trace().events();
      telemetry::TraceSink::set_enabled(false);
    };
    engine_ = std::make_unique<sim::sharded::Engine>(std::move(cfg));
    engine_lookahead_ = min_cross_delay_;
  }

  run_trace_on_ = telemetry::TraceSink::enabled();
  if (run_trace_on_) {
    const telemetry::TraceSink& sink = telemetry::trace();
    run_trace_cap_ = sink.capacity();
    run_filter_msg_ = sink.message_filter();
    run_filter_node_ = sink.node_filter();
    run_filter_flow_ = sink.flow_filter();
  }
  shard_events_.assign(shards(), {});

  const std::uint64_t executed = engine_->run(until);

  if (run_trace_on_) {
    // Deterministic merge: tag each event with its shard, stable-sort by
    // (timestamp, shard). Per-shard streams are already time-ordered (sim
    // time is monotone), so the result is a total order independent of
    // thread scheduling. Note equal-timestamp events from *different* shards
    // order by shard id here, not by the serial run's execution order —
    // cross-shard-count trace comparisons must sort both sides the same way.
    std::vector<std::pair<unsigned, std::size_t>> idx;  // (shard, pos)
    std::size_t total = 0;
    for (const auto& v : shard_events_) total += v.size();
    idx.reserve(total);
    for (unsigned s = 0; s < shards(); ++s) {
      for (std::size_t i = 0; i < shard_events_[s].size(); ++i) idx.push_back({s, i});
    }
    std::stable_sort(idx.begin(), idx.end(),
                     [this](const auto& x, const auto& y) {
                       return shard_events_[x.first][x.second].t <
                              shard_events_[y.first][y.second].t;
                     });
    // The caller's sink (untouched during the run) receives the merged
    // stream after anything it already held, exactly as if the run had
    // recorded into it directly.
    telemetry::TraceSink& sink = telemetry::trace();
    for (const auto& [s, i] : idx) sink.record(std::move(shard_events_[s][i]));
    shard_events_.assign(shards(), {});
  }
  return executed;
}

std::uint64_t Network::windows() const {
  return engine_ ? engine_->windows() : 0;
}

}  // namespace mtp::net
