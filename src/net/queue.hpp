// Egress queues.
//
// A Link owns one Queue. DropTailQueue implements the paper's switch model:
// bounded capacity in packets with an ECN marking threshold (Fig 5 uses
// capacity 128 pkts, K = 20 pkts). Subclasses elsewhere add approximate fair
// dropping (Fig 7) and NDP-style packet trimming.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/ring.hpp"
#include "sim/time.hpp"

namespace mtp::telemetry {
struct MetricSample;
}

namespace mtp::net {

/// Counters every queue maintains; exposed for tests and experiment probes.
/// `dropped` is the total; every drop must also be attributed to exactly one
/// of the split counters (tail / policer / overload shed) so bench tables
/// can tell loss causes apart — the overload tests assert the sum matches,
/// i.e. no queue ever discards a packet silently.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ecn_marked = 0;
  std::uint64_t bytes_dropped = 0;
  std::uint64_t tail_dropped = 0;     ///< queue full at enqueue
  std::uint64_t policer_dropped = 0;  ///< fair-share policer verdict at ingress
  std::uint64_t overload_shed = 0;    ///< explicit overload shed charged here
};

/// Abstract egress queue. enqueue() may mutate the packet (ECN marking,
/// trimming) and returns false if the packet was dropped entirely.
class Queue {
 public:
  virtual ~Queue() = default;

  virtual bool enqueue(Packet&& pkt) = 0;
  virtual std::optional<Packet> dequeue() = 0;

  /// Move the next packet into `out` (one move-assign, no temporaries);
  /// returns false if the queue is empty. The Link's serializer drains
  /// through this so the hot path skips the optional<Packet> round trip.
  /// Subclasses with a flat FIFO should override; the default delegates.
  virtual bool dequeue_into(Packet& out) {
    std::optional<Packet> p = dequeue();
    if (!p) return false;
    out = std::move(*p);
    return true;
  }

  virtual std::size_t len_pkts() const = 0;
  virtual std::int64_t len_bytes() const = 0;
  bool empty() const { return len_pkts() == 0; }

  const QueueStats& stats() const { return stats_; }

  /// Telemetry provider: append this queue's counters and occupancy gauges.
  /// The owning Link registers it under component "queue" with the link's
  /// name, so every queue in a topology is queryable from the registry.
  /// Subclasses with extra state may override and call the base first.
  /// Defined out of line (queue.cpp) so this header — included by every hot
  /// queue implementation — does not pull in the telemetry headers.
  virtual void append_metrics(std::vector<telemetry::MetricSample>& out) const;

  /// Attribute a drop decided *outside* the queue (ingress policer verdict,
  /// device overload shed) to this egress queue's loss accounting. The
  /// packet never entered the queue; these exist so every discarded packet
  /// shows up in exactly one split counter somewhere.
  void note_policer_drop(const Packet& pkt) {
    ++stats_.dropped;
    ++stats_.policer_dropped;
    stats_.bytes_dropped += pkt.size_bytes();
  }
  void note_overload_shed(const Packet& pkt) {
    ++stats_.dropped;
    ++stats_.overload_shed;
    stats_.bytes_dropped += pkt.size_bytes();
  }

 protected:
  /// Queue-full drop at enqueue; subclasses must use this (not bare
  /// ++stats_.dropped) so the tail split counter stays in step.
  void note_tail_drop(const Packet& pkt) {
    ++stats_.dropped;
    ++stats_.tail_dropped;
    stats_.bytes_dropped += pkt.size_bytes();
  }

  QueueStats stats_;
};

/// FIFO tail-drop queue with instantaneous-queue-length ECN marking.
class DropTailQueue : public Queue {
 public:
  struct Config {
    std::size_t capacity_pkts = 128;
    /// Mark CE when the queue length at enqueue is >= this many packets.
    /// 0 disables marking.
    std::size_t ecn_threshold_pkts = 0;
  };

  explicit DropTailQueue(Config cfg) : cfg_(cfg) {}
  DropTailQueue() : DropTailQueue(Config{}) {}

  bool enqueue(Packet&& pkt) override {
    if (q_.size() >= cfg_.capacity_pkts) {
      note_tail_drop(pkt);
      return false;
    }
    if (cfg_.ecn_threshold_pkts != 0 && q_.size() >= cfg_.ecn_threshold_pkts &&
        pkt.ecn != Ecn::kNotEct) {
      pkt.ecn = Ecn::kCe;
      ++stats_.ecn_marked;
    }
    bytes_ += pkt.size_bytes();
    q_.push_back(std::move(pkt));
    ++stats_.enqueued;
    return true;
  }

  std::optional<Packet> dequeue() override {
    if (q_.empty()) return std::nullopt;
    // Default-construct the optional's Packet and move-assign into it: one
    // move instead of two (ring cell -> local -> optional).
    std::optional<Packet> out(std::in_place);
    q_.pop_front_into(*out);
    bytes_ -= out->size_bytes();
    ++stats_.dequeued;
    return out;
  }

  bool dequeue_into(Packet& out) override {
    if (q_.empty()) return false;
    q_.pop_front_into(out);
    bytes_ -= out.size_bytes();
    ++stats_.dequeued;
    return true;
  }

  std::size_t len_pkts() const override { return q_.size(); }
  std::int64_t len_bytes() const override { return bytes_; }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  sim::RingBuffer<Packet> q_;
  std::int64_t bytes_ = 0;
};

}  // namespace mtp::net
