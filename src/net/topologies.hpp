// Canned multipath topologies.
//
// LeafSpine builds the standard two-tier Clos fabric the paper's
// load-balancing discussion assumes: every leaf connects to every spine, so
// any inter-rack pair has `spines` equal-cost paths. Up-ports use the
// fabric-wide forwarding policy (ECMP, spraying, flowlet, message-aware);
// down-routing is deterministic. Racks may be asymmetric: `hosts_at_leaf`
// overrides the per-leaf host count (real pods are rarely uniform, and the
// port arithmetic has to survive that).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/forwarding.hpp"
#include "net/network.hpp"

namespace mtp::net {

class LeafSpine {
 public:
  struct Config {
    int leaves = 2;
    int spines = 2;
    int hosts_per_leaf = 2;
    /// When non-empty (size must equal `leaves`), leaf l hosts
    /// hosts_at_leaf[l] machines and `hosts_per_leaf` is ignored.
    std::vector<int> hosts_at_leaf;
    sim::Bandwidth host_bw = sim::Bandwidth::gbps(100);
    sim::Bandwidth fabric_bw = sim::Bandwidth::gbps(100);
    sim::SimTime link_delay = sim::SimTime::microseconds(1);
    DropTailQueue::Config queue{.capacity_pkts = 256, .ecn_threshold_pkts = 40};
  };

  /// Factory for the policy each leaf uses to pick a spine (called once per
  /// leaf so stateful policies don't share state across switches).
  using PolicyFactory = std::function<std::unique_ptr<ForwardingPolicy>()>;

  LeafSpine(Network& net, Config cfg, const PolicyFactory& up_policy = {}) : cfg_(cfg) {
    // Create switches and hosts. Port layout on a leaf: [0, n_l) host-facing
    // (down), [n_l, n_l + spines) spine-facing (up), where n_l is that
    // leaf's own host count.
    //
    // Sharding (net.shards() > 1): a rack is the natural unit of space
    // partitioning — a leaf and its hosts only talk to each other over
    // leaf-local links, so leaves spread contiguously over the shards and
    // spines round-robin. Node creation ORDER is identical for every shard
    // count (NodeIds feed forwarding hashes); only placement changes.
    const unsigned S = net.shards();
    const auto leaf_shard = [&cfg, S](int l) {
      return static_cast<unsigned>(static_cast<long long>(l) * S / cfg.leaves);
    };
    for (int s = 0; s < cfg.spines; ++s) {
      net.set_build_shard(static_cast<unsigned>(s) % S);
      spines_.push_back(net.add_switch("spine" + std::to_string(s)));
    }
    for (int l = 0; l < cfg.leaves; ++l) {
      net.set_build_shard(leaf_shard(l));
      Switch* leaf = net.add_switch("leaf" + std::to_string(l));
      leaves_.push_back(leaf);
      leaf_host_base_.push_back(static_cast<int>(hosts_.size()));
      const int n = hosts_at(l);
      for (int h = 0; h < n; ++h) {
        Host* host = net.add_host("h" + std::to_string(l) + "." + std::to_string(h));
        hosts_.push_back(host);
        host_leaf_.push_back(l);
        net.connect(*host, *leaf, cfg.host_bw, cfg.link_delay, cfg.queue);
      }
      if (up_policy) leaf->set_policy(up_policy());
    }
    net.set_build_shard(0);
    // Leaf <-> spine mesh. On a spine: port l faces leaf l.
    for (int l = 0; l < cfg.leaves; ++l) {
      for (int s = 0; s < cfg.spines; ++s) {
        net.connect(*leaves_[l], *spines_[s], cfg.fabric_bw, cfg.link_delay, cfg.queue);
      }
    }
    // Routing. Leaf: local hosts go down; remote hosts go up any spine.
    // Spine: every host goes down to its leaf.
    for (int l = 0; l < cfg.leaves; ++l) {
      for (std::size_t hi = 0; hi < hosts_.size(); ++hi) {
        if (host_leaf_[hi] == l) {
          leaves_[l]->add_route(
              hosts_[hi]->id(),
              static_cast<PortIndex>(static_cast<int>(hi) - leaf_host_base_[l]));
        } else {
          for (int s = 0; s < cfg.spines; ++s) {
            leaves_[l]->add_route(hosts_[hi]->id(),
                                  static_cast<PortIndex>(hosts_at(l) + s));
          }
        }
      }
    }
    for (int s = 0; s < cfg.spines; ++s) {
      for (std::size_t hi = 0; hi < hosts_.size(); ++hi) {
        spines_[s]->add_route(hosts_[hi]->id(),
                              static_cast<PortIndex>(host_leaf_[hi]));
      }
    }
  }

  Host* host(int leaf, int idx) const { return hosts_[leaf_host_base_[leaf] + idx]; }
  Switch* leaf(int i) const { return leaves_[i]; }
  Switch* spine(int i) const { return spines_[i]; }
  const std::vector<Host*>& hosts() const { return hosts_; }
  int leaf_of(int host_idx) const { return host_leaf_[host_idx]; }
  /// Hosts attached to leaf l (respects the asymmetric override).
  int hosts_at(int l) const {
    return cfg_.hosts_at_leaf.empty() ? cfg_.hosts_per_leaf : cfg_.hosts_at_leaf[l];
  }

  /// The uplink from `leaf` to `spine` (for probing/failing fabric paths).
  Link* uplink(int leaf, int spine) const {
    return leaves_[leaf]->out_port(static_cast<PortIndex>(hosts_at(leaf) + spine));
  }

 private:
  Config cfg_;
  std::vector<Switch*> leaves_;
  std::vector<Switch*> spines_;
  std::vector<Host*> hosts_;
  std::vector<int> host_leaf_;
  std::vector<int> leaf_host_base_;  ///< first host index of each leaf
};

}  // namespace mtp::net
