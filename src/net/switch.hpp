// Output-queued switch with pluggable forwarding and ingress processing.
//
// Forwarding: a routing table maps destination -> candidate egress ports; a
// ForwardingPolicy picks among candidates. The stock policies implement the
// paper's load-balancing comparisons (Fig 5/6): static, ECMP hashing,
// per-packet spraying, time-based path alternation, and per-message pinning.
//
// Ingress processing: an optional chain of IngressProcessors sees every
// packet before forwarding; in-network compute devices (KVS cache, fair-
// share policer, mutation offload, L7 load balancer) hook in here.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"

namespace mtp::net {

class Switch;

/// Chooses an egress port among routing candidates.
class ForwardingPolicy {
 public:
  virtual ~ForwardingPolicy() = default;
  virtual PortIndex select(const Packet& pkt, std::span<const PortIndex> candidates,
                           Switch& sw) = 0;
  virtual std::string name() const = 0;
};

/// Sees every packet at switch ingress before routing. Returning true means
/// the packet was consumed (answered, redirected or dropped by the device).
class IngressProcessor {
 public:
  virtual ~IngressProcessor() = default;
  virtual bool process(Packet& pkt, Switch& sw) = 0;
};

class Switch : public Node {
 public:
  Switch(sim::Simulator& simulator, NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {
    metrics_ = telemetry::MetricRegistry::global().add(
        "switch", this->name(), [this](std::vector<telemetry::MetricSample>& out) {
          out.push_back({"no_route_drops", telemetry::MetricKind::kCounter,
                         static_cast<double>(no_route_drops_)});
        });
  }

  /// Add `port` as a candidate egress for `dst`. Call repeatedly to create
  /// multipath candidate sets.
  void add_route(NodeId dst, PortIndex port) { routes_[dst].push_back(port); }

  /// Candidate ports for any destination with no explicit route. This is how
  /// large fabrics stay compact: a fat-tree edge switch routes its own hosts
  /// down with explicit entries and everything else up through the default
  /// set, instead of per-host entries for the whole datacenter.
  void set_default_route(std::vector<PortIndex> ports) { default_route_ = std::move(ports); }

  /// The candidates forward() would consider for `dst` (explicit route if
  /// present, else the default set; empty = drop). For topology tests.
  std::span<const PortIndex> route_candidates(NodeId dst) const {
    auto it = routes_.find(dst);
    if (it != routes_.end() && !it->second.empty()) return it->second;
    return default_route_;
  }

  void set_policy(std::unique_ptr<ForwardingPolicy> p) { policy_ = std::move(p); }
  ForwardingPolicy* policy() const { return policy_.get(); }

  void add_ingress(std::shared_ptr<IngressProcessor> p) { ingress_.push_back(std::move(p)); }

  /// Forward a packet the switch itself originates (cache hits, proxied
  /// traffic). Skips ingress processing to avoid loops.
  void inject(Packet&& pkt) { forward(std::move(pkt)); }

  void receive(Packet&& pkt, PortIndex /*in_port*/) override {
    for (auto& proc : ingress_) {
      if (proc->process(pkt, *this)) return;
    }
    forward(std::move(pkt));
  }

  std::uint64_t no_route_drops() const { return no_route_drops_; }

 private:
  void forward(Packet&& pkt) {
    const std::span<const PortIndex> candidates = route_candidates(pkt.dst);
    if (candidates.empty()) {
      ++no_route_drops_;
      return;
    }
    PortIndex port = candidates.front();
    if (candidates.size() > 1 && policy_) {
      port = policy_->select(pkt, candidates, *this);
    }
    out_port(port)->send(std::move(pkt));
  }

  std::unordered_map<NodeId, std::vector<PortIndex>> routes_;
  std::vector<PortIndex> default_route_;
  std::unique_ptr<ForwardingPolicy> policy_;
  std::vector<std::shared_ptr<IngressProcessor>> ingress_;
  std::uint64_t no_route_drops_ = 0;
  telemetry::Registration metrics_;
};

}  // namespace mtp::net
