#include "net/queue.hpp"

#include "telemetry/metrics.hpp"

namespace mtp::net {

void Queue::append_metrics(std::vector<telemetry::MetricSample>& out) const {
  using telemetry::MetricKind;
  out.push_back({"enqueued", MetricKind::kCounter, static_cast<double>(stats_.enqueued)});
  out.push_back({"dequeued", MetricKind::kCounter, static_cast<double>(stats_.dequeued)});
  out.push_back({"dropped", MetricKind::kCounter, static_cast<double>(stats_.dropped)});
  out.push_back({"ecn_marked", MetricKind::kCounter, static_cast<double>(stats_.ecn_marked)});
  out.push_back({"bytes_dropped", MetricKind::kCounter,
                 static_cast<double>(stats_.bytes_dropped)});
  out.push_back({"tail_dropped", MetricKind::kCounter,
                 static_cast<double>(stats_.tail_dropped)});
  out.push_back({"policer_dropped", MetricKind::kCounter,
                 static_cast<double>(stats_.policer_dropped)});
  out.push_back({"overload_shed", MetricKind::kCounter,
                 static_cast<double>(stats_.overload_shed)});
  out.push_back({"len_pkts", MetricKind::kGauge, static_cast<double>(len_pkts())});
  out.push_back({"len_bytes", MetricKind::kGauge, static_cast<double>(len_bytes())});
}

}  // namespace mtp::net
