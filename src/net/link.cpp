#include "net/link.hpp"

#include <cassert>

#include "sim/logging.hpp"

namespace mtp::net {

void Link::register_metrics() {
  using telemetry::MetricKind;
  auto& registry = telemetry::MetricRegistry::global();
  link_metrics_ = registry.add("link", name_, [this](std::vector<telemetry::MetricSample>& out) {
    out.push_back({"pkts_delivered", MetricKind::kCounter,
                   static_cast<double>(stats_.pkts_delivered)});
    out.push_back({"bytes_delivered", MetricKind::kCounter,
                   static_cast<double>(stats_.bytes_delivered)});
    out.push_back({"pkts_dropped_down", MetricKind::kCounter,
                   static_cast<double>(stats_.pkts_dropped_down)});
    out.push_back({"backlog_bytes", MetricKind::kGauge,
                   static_cast<double>(backlog_bytes())});
    out.push_back({"up", MetricKind::kGauge, up_ ? 1.0 : 0.0});
  });
  queue_metrics_ = registry.add("queue", name_, [this](std::vector<telemetry::MetricSample>& out) {
    queue_->append_metrics(out);
  });
}

telemetry::TraceEvent Link::trace_event(telemetry::TraceEventType type,
                                        const Packet& pkt) const {
  telemetry::TraceEvent ev;
  ev.t = sim_.now();
  ev.type = type;
  ev.component = name_;
  ev.src = pkt.src;
  ev.dst = pkt.dst;
  ev.bytes = pkt.size_bytes();
  ev.tc = pkt.tc;
  ev.flow = pkt.flow_hash;
  if (pkt.is_mtp()) {
    ev.msg_id = pkt.mtp().msg_id;
    ev.pkt_num = pkt.mtp().pkt_num;
  }
  return ev;
}

void Link::set_pathlet(PathletConfig cfg) {
  pathlet_.emplace(cfg, bandwidth_);
  if (cfg.feedback == proto::FeedbackType::kRate) {
    rcp_task_ = std::make_unique<sim::PeriodicTask>(sim_, cfg.rcp_period, [this] {
      pathlet_->periodic_update(queue_->len_bytes());
    });
    rcp_task_->start();
  }
}

void Link::set_up(bool up) {
  up_ = up;
  if (!up_) {
    while (queue_->dequeue().has_value()) {
      // discard queued packets on the flap
    }
  } else {
    try_transmit();
  }
}

void Link::send(Packet&& pkt) {
  assert(dst_ != nullptr && "Link::connect_to must be called before send");
  if (!up_) {
    ++stats_.pkts_dropped_down;
    if (telemetry::TraceSink::enabled()) {
      telemetry::trace().record(trace_event(telemetry::TraceEventType::kDrop, pkt));
    }
    return;
  }
  // Per-hop scratch: when the packet was queued here, and whether it arrived
  // already CE-marked (so this pathlet is not blamed for upstream marks).
  pkt.hop_enqueued_at = sim_.now();
  pkt.hop_was_ce = pkt.ecn == Ecn::kCe;
  if (pathlet_) pathlet_->on_arrival(pkt.size_bytes());
  if (telemetry::TraceSink::enabled()) {
    // The packet is consumed by enqueue() whether it is accepted, marked or
    // dropped, so snapshot the event now and classify it from the queue's
    // counter deltas afterwards. Works for every Queue subclass unchanged.
    telemetry::TraceEvent ev = trace_event(telemetry::TraceEventType::kEnqueue, pkt);
    const QueueStats before = queue_->stats();
    const bool accepted = queue_->enqueue(std::move(pkt));
    const QueueStats& after = queue_->stats();
    if (!accepted) {
      ev.type = telemetry::TraceEventType::kDrop;
      telemetry::trace().record(ev);
      MTP_TRACE(sim_.now(), name_, "drop (queue full)");
      return;
    }
    if (after.ecn_marked > before.ecn_marked) {
      telemetry::TraceEvent mark = ev;
      mark.type = telemetry::TraceEventType::kEcnMark;
      telemetry::trace().record(mark);
    }
    telemetry::trace().record(ev);
  } else if (!queue_->enqueue(std::move(pkt))) {
    MTP_TRACE(sim_.now(), name_, "drop (queue full)");
    return;
  }
  try_transmit();
}

void Link::stamp(Packet& pkt, sim::SimTime queue_delay) {
  if (!pathlet_ || !pkt.is_mtp()) return;
  auto& hdr = pkt.mtp();
  if (hdr.is_ack()) return;  // feedback is collected on the data path only
  const bool marked_here = pkt.ecn == Ecn::kCe && !pkt.hop_was_ce;
  if (!pathlet_->should_stamp(marked_here, queue_delay)) return;
  hdr.path_feedback.push_back(
      {pathlet_->config().id, hdr.tc, pathlet_->make_feedback(marked_here, queue_delay)});
}

void Link::try_transmit() {
  if (transmitting_) return;
  auto next = queue_->dequeue();
  if (!next) return;
  transmitting_ = true;
  Packet pkt = std::move(*next);
  if (telemetry::TraceSink::enabled()) {
    telemetry::trace().record(trace_event(telemetry::TraceEventType::kDequeue, pkt));
  }
  // Queueing delay (excluding this packet's own serialization time).
  const sim::SimTime qdelay = sim_.now() - pkt.hop_enqueued_at;
  const std::uint32_t size = pkt.size_bytes();
  in_flight_bytes_ += size;
  const sim::SimTime tx_time = bandwidth_.serialization_delay(size);
  sim_.schedule(tx_time, [this, qdelay, pkt = std::move(pkt)]() mutable {
    in_flight_bytes_ -= pkt.size_bytes();
    stamp(pkt, qdelay);
    stats_.pkts_delivered++;
    stats_.bytes_delivered += pkt.size_bytes();
    if (telemetry::TraceSink::enabled()) {
      telemetry::trace().record(trace_event(telemetry::TraceEventType::kTx, pkt));
    }
    sim_.schedule(delay_, [this, pkt = std::move(pkt)]() mutable {
      if (telemetry::TraceSink::enabled()) {
        telemetry::trace().record(trace_event(telemetry::TraceEventType::kRx, pkt));
      }
      dst_->receive(std::move(pkt), dst_in_port_);
    });
    transmitting_ = false;
    try_transmit();
  });
}

}  // namespace mtp::net
