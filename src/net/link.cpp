#include "net/link.hpp"

#include <cassert>

#include "sim/logging.hpp"

namespace mtp::net {

namespace {
// Budget guard promised by sim/task.hpp: a delivery-style closure capturing a
// whole Packet by value (plus a timestamp) must run from Task's inline
// buffer. The Link's own hot path captures only `this`, but protocol and
// device code is free to capture packets — growing Packet past the budget
// must be a compile error here, not a silent heap-per-event perf cliff.
struct PacketClosureProbe {
  Packet pkt;
  sim::SimTime deadline;
  void operator()() {}
};
static_assert(sim::Task::fits_inline<PacketClosureProbe>(),
              "net::Packet no longer fits sim::Task's inline buffer; "
              "grow sim::Task::kInlineBytes or shrink Packet");
}  // namespace

void Link::register_metrics() {
  using telemetry::MetricKind;
  auto& registry = telemetry::MetricRegistry::global();
  link_metrics_ = registry.add("link", name_, [this](std::vector<telemetry::MetricSample>& out) {
    out.push_back({"pkts_delivered", MetricKind::kCounter,
                   static_cast<double>(stats_.pkts_delivered)});
    out.push_back({"bytes_delivered", MetricKind::kCounter,
                   static_cast<double>(stats_.bytes_delivered)});
    out.push_back({"pkts_dropped_down", MetricKind::kCounter,
                   static_cast<double>(stats_.pkts_dropped_down)});
    out.push_back({"pkts_dropped_fault", MetricKind::kCounter,
                   static_cast<double>(stats_.pkts_dropped_fault)});
    out.push_back({"pkts_corrupted", MetricKind::kCounter,
                   static_cast<double>(stats_.pkts_corrupted)});
    out.push_back({"flaps", MetricKind::kCounter,
                   static_cast<double>(stats_.flaps)});
    out.push_back({"backlog_bytes", MetricKind::kGauge,
                   static_cast<double>(backlog_bytes())});
    out.push_back({"up", MetricKind::kGauge, up_ ? 1.0 : 0.0});
    out.push_back({"fluid_reserved_bps", MetricKind::kGauge,
                   static_cast<double>(fluid_reserved_bps_)});
  });
  queue_metrics_ = registry.add("queue", name_, [this](std::vector<telemetry::MetricSample>& out) {
    queue_->append_metrics(out);
  });
}

telemetry::TraceEvent Link::trace_event(telemetry::TraceEventType type,
                                        const Packet& pkt) const {
  return trace_event_at(sim_.now(), type, pkt);
}

telemetry::TraceEvent Link::trace_event_at(sim::SimTime t, telemetry::TraceEventType type,
                                           const Packet& pkt) const {
  telemetry::TraceEvent ev;
  ev.t = t;
  ev.type = type;
  ev.component = name_;
  ev.src = pkt.src;
  ev.dst = pkt.dst;
  ev.bytes = pkt.size_bytes();
  ev.tc = pkt.tc;
  ev.flow = pkt.flow_hash;
  if (pkt.is_mtp()) {
    ev.msg_id = pkt.mtp().msg_id;
    ev.pkt_num = pkt.mtp().pkt_num;
  }
  return ev;
}

void Link::set_pathlet(PathletConfig cfg) {
  pathlet_.emplace(cfg, bandwidth_);
  if (cfg.feedback == proto::FeedbackType::kRate) {
    rcp_task_ = std::make_unique<sim::PeriodicTask>(sim_, cfg.rcp_period, [this] {
      pathlet_->periodic_update(queue_->len_bytes());
    });
    rcp_task_->start();
  }
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (telemetry::TraceSink::enabled()) {
    telemetry::TraceEvent ev;
    ev.t = sim_.now();
    ev.type = telemetry::TraceEventType::kLinkFlap;
    ev.component = name_;
    ev.value = up_ ? 1 : 0;
    telemetry::trace().record(ev);
  }
  if (!up_) {
    ++stats_.flaps;
    while (queue_->dequeue().has_value()) {
      ++stats_.pkts_dropped_down;  // discard queued packets on the flap
    }
  } else {
    try_transmit();
  }
}

void Link::send(Packet&& pkt) {
  assert(dst_ != nullptr && "Link::connect_to must be called before send");
  if (!up_) {
    ++stats_.pkts_dropped_down;
    if (telemetry::TraceSink::enabled()) {
      telemetry::trace().record(trace_event(telemetry::TraceEventType::kDrop, pkt));
    }
    return;
  }
  // NIC checksum offload: the first link a packet crosses stamps the payload
  // fingerprint, so every sender (MTP, TCP, UDP, in-network devices) is
  // covered without per-stack stamping code.
  if (pkt.payload_fingerprint == 0) pkt.stamp_fingerprint();
  if (fault_hook_) {
    switch (fault_hook_(pkt)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kDrop:
        ++stats_.pkts_dropped_fault;
        if (telemetry::TraceSink::enabled()) {
          telemetry::trace().record(trace_event(telemetry::TraceEventType::kDrop, pkt));
        }
        return;
      case FaultAction::kCorrupt:
        pkt.corrupt();
        ++stats_.pkts_corrupted;
        if (telemetry::TraceSink::enabled()) {
          telemetry::trace().record(trace_event(telemetry::TraceEventType::kCorrupt, pkt));
        }
        break;
    }
  }
  // Per-hop scratch: when the packet was queued here, and whether it arrived
  // already CE-marked (so this pathlet is not blamed for upstream marks).
  pkt.hop_enqueued_at = sim_.now();
  pkt.hop_was_ce = pkt.ecn == Ecn::kCe;
  if (pathlet_) pathlet_->on_arrival(pkt.size_bytes());
  if (telemetry::TraceSink::enabled()) {
    // The packet is consumed by enqueue() whether it is accepted, marked or
    // dropped, so snapshot the event now and classify it from the queue's
    // counter deltas afterwards. Works for every Queue subclass unchanged.
    telemetry::TraceEvent ev = trace_event(telemetry::TraceEventType::kEnqueue, pkt);
    const QueueStats before = queue_->stats();
    const bool accepted = queue_->enqueue(std::move(pkt));
    const QueueStats& after = queue_->stats();
    if (!accepted) {
      ev.type = telemetry::TraceEventType::kDrop;
      telemetry::trace().record(ev);
      MTP_TRACE(sim_.now(), name_, "drop (queue full)");
      return;
    }
    if (after.ecn_marked > before.ecn_marked) {
      telemetry::TraceEvent mark = ev;
      mark.type = telemetry::TraceEventType::kEcnMark;
      telemetry::trace().record(mark);
    }
    telemetry::trace().record(ev);
  } else if (!queue_->enqueue(std::move(pkt))) {
    MTP_TRACE(sim_.now(), name_, "drop (queue full)");
    return;
  }
  try_transmit();
}

void Link::stamp(Packet& pkt, sim::SimTime queue_delay) {
  if (!pathlet_ || !pkt.is_mtp()) return;
  auto& hdr = pkt.mtp();
  if (hdr.is_ack()) return;  // feedback is collected on the data path only
  const bool marked_here = pkt.ecn == Ecn::kCe && !pkt.hop_was_ce;
  if (!pathlet_->should_stamp(marked_here, queue_delay)) return;
  hdr.path_feedback().push_back(
      {pathlet_->config().id, hdr.tc, pathlet_->make_feedback(marked_here, queue_delay)});
}

void Link::try_transmit() {
  if (transmitting_) return;
  // Dequeue straight into the in-flight ring cell: one move-assign from the
  // queue's storage, no optional<Packet> round trip.
  InFlight& f = in_flight_.push_empty();
  if (!queue_->dequeue_into(f.pkt)) {
    in_flight_.drop_back();
    return;
  }
  transmitting_ = true;
  if (telemetry::TraceSink::enabled()) {
    telemetry::trace().record(trace_event(telemetry::TraceEventType::kDequeue, f.pkt));
  }
  // Queueing delay (excluding this packet's own serialization time).
  f.qdelay = sim_.now() - f.pkt.hop_enqueued_at;
  const std::uint32_t size = f.pkt.size_bytes();
  in_flight_bytes_ += size;
  // Serialization runs at the residual rate: line rate minus whatever the
  // fluid flow model has reserved on this link (bandwidth_ itself when no
  // reservation is active — the common case costs one load and a compare).
  sim_.schedule(residual_bandwidth().serialization_delay(size), [this] { finish_tx(); });
}

// Serialization finished: the wire has the whole packet. The serializing
// packet is always in_flight_.back() — exactly one serialization runs at a
// time, and packets enter the ring when theirs starts.
void Link::finish_tx() {
  InFlight& f = in_flight_.back();
  in_flight_bytes_ -= f.pkt.size_bytes();
  stamp(f.pkt, f.qdelay);
  stats_.pkts_delivered++;
  stats_.bytes_delivered += f.pkt.size_bytes();
  if (telemetry::TraceSink::enabled()) {
    telemetry::trace().record(trace_event(telemetry::TraceEventType::kTx, f.pkt));
  }
  // One *keyed* delivery event per packet (key = link uid + tx counter):
  // deliveries at equal timestamps execute in link-uid order on every
  // engine, which is what keeps serial and sharded runs bit-identical —
  // FIFO tie-breaking would encode cross-shard scheduling history into the
  // timeline. Per-link deliveries are still FIFO in time: serialization
  // ends are strictly ordered onto a fixed propagation delay.
  const sim::SimTime deliver_at = sim_.now() + delay_;
  const std::uint64_t key = next_delivery_key();
  if (remote_sink_) {
    // Cross-shard hop: the receiving shard schedules the delivery. The
    // packet leaves the ring now — sender-side accounting (stats, kTx) is
    // already done above.
    Packet pkt = std::move(f.pkt);
    in_flight_.drop_back();
    transmitting_ = false;
    remote_sink_(std::move(pkt), deliver_at, key);
    try_transmit();
    return;
  }
  f.deliver_at = deliver_at;
  sim_.schedule_keyed_at(deliver_at, key, [this] { deliver_front(); });
  transmitting_ = false;
  try_transmit();
}

void Link::deliver_front() {
  InFlight& f = in_flight_.front();
  if (telemetry::TraceSink::enabled()) {
    telemetry::trace().record(trace_event(telemetry::TraceEventType::kRx, f.pkt));
  }
  // Hand the packet to the receiver straight from the ring cell; drop_front
  // before receive() so a receiver that re-enters this link (e.g. a loopback
  // forward) sees a consistent ring. The receive sink takes the packet by
  // rvalue reference, so the only move left is the receiver's own store.
  Packet pkt = std::move(f.pkt);
  in_flight_.drop_front();
  dst_->receive(std::move(pkt), dst_in_port_);
}

}  // namespace mtp::net
