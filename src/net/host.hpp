// End-host: demultiplexes received packets to the transport stacks bound to
// it (one TCP stack, one MTP endpoint, per-port UDP handlers).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/link.hpp"
#include "net/node.hpp"

namespace mtp::net {

class Host : public Node {
 public:
  using Handler = std::function<void(Packet&&)>;

  Host(sim::Simulator& simulator, NodeId id, std::string name)
      : Node(simulator, id, std::move(name)) {
    metrics_ = telemetry::MetricRegistry::global().add(
        "host", this->name(), [this](std::vector<telemetry::MetricSample>& out) {
          out.push_back({"unhandled_packets", telemetry::MetricKind::kCounter,
                         static_cast<double>(unhandled_)});
          out.push_back({"misdelivered_packets", telemetry::MetricKind::kCounter,
                         static_cast<double>(misdelivered_)});
        });
  }

  /// Transmit toward pkt.dst: the route table picks the uplink; unknown
  /// destinations use the first attached link (single-homed hosts never need
  /// routes; a dual-homed middlebox host adds one per peer).
  void send(Packet&& pkt) {
    assert(num_out_ports() > 0 && "host has no uplink");
    PortIndex port = 0;
    auto it = routes_.find(pkt.dst);
    if (it != routes_.end()) port = it->second;
    out_port(port)->send(std::move(pkt));
  }

  void add_route(NodeId dst, PortIndex port) { routes_[dst] = port; }

  void set_tcp_handler(Handler h) { tcp_ = std::move(h); }
  void set_mtp_handler(Handler h) { mtp_ = std::move(h); }
  void set_udp_handler(proto::PortNum port, Handler h) { udp_[port] = std::move(h); }

  void receive(Packet&& pkt, PortIndex /*in_port*/) override {
    if (pkt.dst != id()) {
      ++misdelivered_;  // not addressed to this host: drop
      return;
    }
    if (pkt.is_tcp()) {
      if (tcp_) tcp_(std::move(pkt));
      return;
    }
    if (pkt.is_mtp()) {
      if (mtp_) mtp_(std::move(pkt));
      return;
    }
    if (pkt.is_udp()) {
      auto it = udp_.find(pkt.udp().dst_port);
      if (it != udp_.end()) it->second(std::move(pkt));
      return;
    }
    ++unhandled_;
  }

  std::uint64_t unhandled_packets() const { return unhandled_; }
  std::uint64_t misdelivered_packets() const { return misdelivered_; }

 private:
  Handler tcp_;
  Handler mtp_;
  std::unordered_map<proto::PortNum, Handler> udp_;
  std::unordered_map<NodeId, PortIndex> routes_;
  std::uint64_t unhandled_ = 0;
  std::uint64_t misdelivered_ = 0;
  telemetry::Registration metrics_;
};

}  // namespace mtp::net
