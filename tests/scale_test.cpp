// Scale-out properties: routing correctness on the big fabrics and the
// timer wheel's fidelity to the contract of the retx scan it replaced.
//
// The fat-tree routing tests do not send packets — they walk every candidate
// port the forwarding tables expose (route_candidates + default routes),
// exploring all multipath choices exhaustively, and assert that every walk
// reaches the destination host loop-free with exactly the hop count the
// topology promises (2 same-edge, 4 same-pod, 6 cross-pod).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "net/topologies.hpp"
#include "scenario/scenario.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sim/timer_wheel.hpp"

namespace mtp {
namespace {

using namespace sim::literals;

// Walks every routing choice from `node` toward host `dst`, asserting each
// complete path is loop-free and exactly `hops_left` links long. Returns the
// number of distinct complete paths found.
int walk_all_paths(net::Node* node, net::NodeId dst, int hops_left,
                   std::vector<net::NodeId>& visited) {
  if (node->id() == dst) {
    EXPECT_EQ(hops_left, 0) << "path shorter than promised hop count";
    return 1;
  }
  EXPECT_GT(hops_left, 0) << "path longer than promised hop count at node "
                          << node->id();
  if (hops_left <= 0) return 0;
  EXPECT_EQ(std::count(visited.begin(), visited.end(), node->id()), 0)
      << "forwarding loop through node " << node->id();
  visited.push_back(node->id());

  int paths = 0;
  if (auto* sw = dynamic_cast<net::Switch*>(node)) {
    const std::span<const net::PortIndex> cand = sw->route_candidates(dst);
    EXPECT_FALSE(cand.empty()) << "switch " << node->id() << " has no route to "
                               << dst;
    for (net::PortIndex p : cand) {
      net::Link* link = sw->out_port(p);
      paths += walk_all_paths(link->peer(), dst, hops_left - 1, visited);
    }
  } else {
    // Host: single uplink.
    EXPECT_GE(node->num_out_ports(), 1u);
    paths += walk_all_paths(node->out_port(0)->peer(), dst, hops_left - 1, visited);
  }
  visited.pop_back();
  return paths;
}

int expected_fat_tree_hops(const net::FatTree& ft, int src, int dst) {
  if (ft.pod_of(src) != ft.pod_of(dst)) return 6;
  const int half = ft.k() / 2;
  const bool same_edge = (src / half) == (dst / half);
  return same_edge ? 2 : 4;
}

void check_fat_tree_all_pairs(int k) {
  net::Network net;
  net::FatTree ft(net, {.k = k});
  ASSERT_EQ(ft.num_hosts(), k * k * k / 4);
  for (int s = 0; s < ft.num_hosts(); ++s) {
    for (int d = 0; d < ft.num_hosts(); ++d) {
      if (s == d) continue;
      std::vector<net::NodeId> visited;
      const int hops = expected_fat_tree_hops(ft, s, d);
      const int paths = walk_all_paths(ft.host(s), ft.host(d)->id(), hops, visited);
      // Path diversity: 1 same-edge, k/2 same-pod, (k/2)^2 cross-pod.
      const int half = k / 2;
      const int want = hops == 2 ? 1 : hops == 4 ? half : half * half;
      EXPECT_EQ(paths, want) << "host " << s << " -> " << d;
    }
  }
}

TEST(FatTreeRouting, AllPairsLoopFreeWithExpectedHopsK4) {
  check_fat_tree_all_pairs(4);
}

TEST(FatTreeRouting, AllPairsLoopFreeWithExpectedHopsK8) {
  check_fat_tree_all_pairs(8);
}

TEST(FatTreeRouting, HostIndexingMatchesPodEdgeCoordinates) {
  net::Network net;
  net::FatTree ft(net, {.k = 4});
  for (int p = 0; p < 4; ++p) {
    for (int e = 0; e < 2; ++e) {
      for (int h = 0; h < 2; ++h) {
        const int idx = (p * 2 + e) * 2 + h;
        EXPECT_EQ(ft.host(p, e, h), ft.host(idx));
        EXPECT_EQ(ft.pod_of(idx), p);
      }
    }
  }
}

TEST(LeafSpineRouting, AsymmetricRacksAllPairsLoopFree) {
  net::Network net;
  net::LeafSpine ls(net, {.leaves = 3, .spines = 2, .hosts_at_leaf = {1, 4, 2}});
  ASSERT_EQ(ls.hosts().size(), 7u);
  for (std::size_t s = 0; s < ls.hosts().size(); ++s) {
    for (std::size_t d = 0; d < ls.hosts().size(); ++d) {
      if (s == d) continue;
      const bool same_leaf = ls.leaf_of(static_cast<int>(s)) ==
                             ls.leaf_of(static_cast<int>(d));
      const int hops = same_leaf ? 2 : 4;
      std::vector<net::NodeId> visited;
      const int paths =
          walk_all_paths(ls.hosts()[s], ls.hosts()[d]->id(), hops, visited);
      EXPECT_EQ(paths, same_leaf ? 1 : 2) << "host " << s << " -> " << d;
    }
  }
}

TEST(LeafSpineRouting, AsymmetricHostAccessorsAgree) {
  net::Network net;
  net::LeafSpine ls(net, {.leaves = 3, .spines = 2, .hosts_at_leaf = {1, 4, 2}});
  EXPECT_EQ(ls.hosts_at(0), 1);
  EXPECT_EQ(ls.hosts_at(1), 4);
  EXPECT_EQ(ls.hosts_at(2), 2);
  int idx = 0;
  for (int l = 0; l < 3; ++l) {
    for (int h = 0; h < ls.hosts_at(l); ++h, ++idx) {
      EXPECT_EQ(ls.host(l, h), ls.hosts()[idx]);
      EXPECT_EQ(ls.leaf_of(idx), l);
    }
  }
}

// --- Timer wheel vs the retired retx_scan -----------------------------------
//
// The old scan woke every `granularity` and fired all timers whose deadline
// had passed, in arm order. The wheel's contract is the same: deadlines
// quantized UP to the scan tick, ties in arm order. Replay a recorded
// schedule of arms through both models and require identical fire sequences.

struct FireLog {
  std::vector<std::uint64_t> order;
  static void fire(void* owner, std::uint64_t arg) {
    static_cast<FireLog*>(owner)->order.push_back(arg);
  }
};

TEST(TimerWheelOrder, MatchesRetxScanSemanticsOnRecordedSchedule) {
  struct Arm {
    sim::SimTime at;        // when the arm happens
    sim::SimTime deadline;  // absolute deadline requested
    std::uint64_t id;
  };
  // Recorded schedule: deliberately interleaved deadlines (later arms with
  // earlier deadlines), duplicates sharing a quantized tick, and deadlines
  // that collide modulo the bucket count.
  sim::Rng rng(2024);
  std::vector<Arm> schedule;
  sim::SimTime t = 0_us;
  for (std::uint64_t i = 0; i < 500; ++i) {
    t += sim::SimTime::nanoseconds(rng.uniform_int(0, 7'000));
    const auto timeout = sim::SimTime::nanoseconds(rng.uniform_int(1, 300'000));
    schedule.push_back({t, t + timeout, i});
  }

  sim::Simulator simulator;
  const sim::TimerWheel::Config cfg{.granularity = 10_us, .buckets = 16};
  sim::TimerWheel wheel(simulator, cfg);
  FireLog wheel_log;
  for (const Arm& a : schedule) {
    simulator.schedule_at(a.at, [&wheel, &wheel_log, a] {
      wheel.arm(a.deadline, &FireLog::fire, &wheel_log, a.id);
    });
  }
  simulator.run();
  ASSERT_EQ(wheel_log.order.size(), schedule.size());

  // Reference model: the old periodic sweep. Sort by quantized-up deadline
  // tick; stable sort preserves arm order within a tick (the schedule's
  // arm times are non-decreasing, matching a sweep over a FIFO of inflight
  // packets).
  const std::int64_t g = cfg.granularity.ns();
  std::vector<std::pair<std::int64_t, std::uint64_t>> ref;
  for (const Arm& a : schedule) {
    ref.emplace_back((a.deadline.ns() + g - 1) / g, a.id);
  }
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(wheel_log.order[i], ref[i].second) << "divergence at fire #" << i;
  }
}

TEST(TimerWheelOrder, CancelledTimersNeverFire) {
  sim::Simulator simulator;
  sim::TimerWheel wheel(simulator, {.granularity = 10_us, .buckets = 8});
  FireLog log;
  std::vector<sim::TimerId> ids;
  for (std::uint64_t i = 0; i < 64; ++i) {
    ids.push_back(wheel.arm(sim::SimTime::microseconds(5 + i * 3),
                            &FireLog::fire, &log, i));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) wheel.cancel(ids[i]);
  simulator.run();
  ASSERT_EQ(log.order.size(), 32u);
  for (std::uint64_t v : log.order) EXPECT_EQ(v % 2, 1u);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

// Whole ScenarioBuilder rigs on ParallelSweep workers must be bit-identical
// to a serial run — the fabric-scale version of the determinism contract in
// docs/perf.md, and the thread-coverage surface scripts/check.sh tsan runs.
std::uint64_t scenario_sweep_digest(unsigned workers) {
  sim::ParallelSweep pool(workers);
  const std::vector<std::uint64_t> digests =
      pool.map(3, [](std::size_t job) -> std::uint64_t {
        auto s = scenario::ScenarioBuilder()
                     .seed(300 + job)
                     .topology(scenario::topo::fat_tree({.k = 4}))
                     .forwarding(scenario::Forwarding::kMessageAware)
                     .transport("mtp")
                     .build();
        const int hosts = static_cast<int>(s->num_senders());
        std::uint64_t digest = 14695981039346656037ull;
        auto mix = [&digest](std::uint64_t v) { digest = (digest ^ v) * 1099511628211ull; };
        for (int h = 0; h < hosts; ++h) {
          const auto dst = s->topo().senders[(h + 3) % hosts]->id();
          for (int m = 0; m < 8; ++m) {
            s->mtp_sender(h)->send_message(
                dst, 20'000, {.dst_port = 80},
                [&mix, h, m](proto::MsgId, sim::SimTime fct) {
                  mix(static_cast<std::uint64_t>(fct.ns()) + h * 1000003ull + m);
                });
          }
        }
        mix(s->simulator().run(20_ms));
        return digest;
      });
  std::uint64_t combined = 14695981039346656037ull;
  for (std::uint64_t d : digests) combined = (combined ^ d) * 1099511628211ull;
  return combined;
}

TEST(ScenarioSweep, ParallelScenarioSweepIsBitIdentical) {
  EXPECT_EQ(scenario_sweep_digest(1), scenario_sweep_digest(0));
}

}  // namespace
}  // namespace mtp
