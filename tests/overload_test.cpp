// mtp::overload suite: admission grants, deadline/watermark shedding,
// device busy-rejects + circuit breakers, retry budgets, hedging, and a
// seeded metastable-failure chaos harness whose digests must be identical
// at 1, 2 and 4 space shards.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "helpers.hpp"
#include "innetwork/kvs_cache.hpp"
#include "innetwork/l7_lb.hpp"
#include "mtp/endpoint.hpp"
#include "mtp/overload/admission.hpp"
#include "mtp/overload/breaker.hpp"
#include "mtp/overload/retry_budget.hpp"
#include "mtp/overload/shed_guard.hpp"
#include "mtp/rpc.hpp"
#include "net/topologies.hpp"
#include "sim/random.hpp"

namespace mtp {
namespace {

using namespace mtp::sim::literals;
using core::MessageOptions;
using core::MtpConfig;
using core::MtpEndpoint;
using core::ReceivedMessage;
using core::RpcClient;
using core::RpcReply;
using core::RpcServer;
using mtp::testing::Dumbbell;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

MtpConfig cfg_default() { return MtpConfig{}; }

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// --- Unit: retry budget token bucket.

TEST(RetryBudget, AccruesPerSuccessAndSpendsPerRetry) {
  overload::RetryBudget b({.ratio = 0.5, .burst = 2.0});
  EXPECT_DOUBLE_EQ(b.tokens(), 2.0);
  EXPECT_TRUE(b.try_spend());
  EXPECT_TRUE(b.try_spend());
  EXPECT_FALSE(b.try_spend());  // burst gone, nothing earned yet
  EXPECT_EQ(b.spent(), 2u);
  EXPECT_EQ(b.exhausted(), 1u);
  b.on_success();
  b.on_success();  // 2 successes x 0.5 = one retry token
  EXPECT_TRUE(b.try_spend());
  EXPECT_FALSE(b.try_spend());
}

TEST(RetryBudget, TokensCapAtBurst) {
  overload::RetryBudget b({.ratio = 1.0, .burst = 3.0});
  for (int i = 0; i < 100; ++i) b.on_success();
  EXPECT_DOUBLE_EQ(b.tokens(), 3.0);
}

// --- Unit: circuit breaker state machine.

TEST(CircuitBreaker, TripsHalfOpensAndCloses) {
  overload::CircuitBreaker br({.open_after_sheds = 3,
                               .window = 100_us,
                               .open_duration = 200_us,
                               .half_open_successes = 2});
  using State = overload::CircuitBreaker::State;
  SimTime t;
  EXPECT_TRUE(br.allow(t));
  br.on_shed(t);
  br.on_shed(t);
  EXPECT_EQ(br.state(t), State::kClosed);
  br.on_shed(t);  // third shed inside the window trips it
  EXPECT_EQ(br.state(t), State::kOpen);
  EXPECT_FALSE(br.allow(t));
  EXPECT_EQ(br.opens(), 1u);
  // Time alone half-opens it; probes are allowed through.
  t = t + 250_us;
  EXPECT_TRUE(br.allow(t));
  EXPECT_EQ(br.state(t), State::kHalfOpen);
  EXPECT_EQ(br.half_opens(), 1u);
  br.on_success(t);
  EXPECT_EQ(br.state(t), State::kHalfOpen);
  br.on_success(t);  // second consecutive success closes
  EXPECT_EQ(br.state(t), State::kClosed);
  EXPECT_EQ(br.closes(), 1u);
}

TEST(CircuitBreaker, ShedWhileProbingReopens) {
  overload::CircuitBreaker br({.open_after_sheds = 1,
                               .window = 100_us,
                               .open_duration = 100_us,
                               .half_open_successes = 2});
  using State = overload::CircuitBreaker::State;
  SimTime t;
  br.on_shed(t);
  EXPECT_EQ(br.state(t), State::kOpen);
  t = t + 150_us;
  EXPECT_EQ(br.state(t), State::kHalfOpen);
  br.on_shed(t);  // failed probe: straight back open
  EXPECT_EQ(br.state(t), State::kOpen);
  EXPECT_EQ(br.opens(), 2u);
}

// --- Unit: receiver admission rate estimate and grant sizing.

TEST(Admission, GrantTracksServiceRateSplitAcrossSenders) {
  overload::Admission adm({.rate_window = 20_us,
                           .ewma_alpha = 0.3,
                           .grant_horizon = 50_us,
                           .min_grant_bytes = 1000,
                           .max_grant_bytes = 1 << 20,
                           .sender_idle_timeout = 500_us});
  // Two senders deliver 1000 B every microsecond for 100 us: 1 B/ns total.
  SimTime t;
  for (int i = 0; i < 100; ++i) {
    adm.on_delivered(i % 2 == 0 ? 10 : 11, 1000, t);
    t = t + 1_us;
  }
  EXPECT_EQ(adm.active_senders(), 2u);
  EXPECT_NEAR(adm.rate_gbps(), 8.0, 1.0);  // 1 B/ns = 8 Gbps
  // grant = rate * horizon / senders = 1 * 50000 / 2 = 25 KB.
  const std::int64_t g = adm.grant_bytes(t);
  EXPECT_GT(g, 20'000);
  EXPECT_LT(g, 30'000);
  // A long silent gap decays the rate estimate and prunes idle senders; the
  // next grant is sized from the decayed rate split over the floor-of-one
  // remaining sender.
  const double rate_before = adm.rate_gbps();
  const std::int64_t after_idle = adm.grant_bytes(t + 10_ms);
  EXPECT_LT(adm.rate_gbps(), rate_before);
  EXPECT_EQ(adm.active_senders(), 1u);
  EXPECT_NEAR(static_cast<double>(after_idle),
              adm.rate_gbps() / 8.0 * 50'000.0, 1.0);
}

// --- Unit: shed guard priority and deadline rules.

TEST(ShedGuard, WatermarkPriorityAndDeadlineRules) {
  overload::ShedGuard g({.enabled = true,
                         .high_watermark = 2,
                         .hard_limit = 4,
                         .protect_priority = 1,
                         .shed_expired = true});
  const SimTime now = 10_us;
  EXPECT_EQ(g.decide(1, 0, 0, now), 0);  // under watermark: accept
  EXPECT_EQ(g.decide(3, 0, 0, now), proto::kOverloadBusy);  // low pri over mark
  EXPECT_EQ(g.decide(3, 1, 0, now), 0);  // protected priority survives
  EXPECT_EQ(g.decide(5, 1, 0, now), proto::kOverloadBusy);  // hard limit: all
  // Expired work is shed regardless of load (deadline 1 us < now 10 us).
  EXPECT_EQ(g.decide(0, 1, 1'000, now),
            proto::kOverloadBusy | proto::kOverloadExpired);
  EXPECT_EQ(g.sheds(), 3u);
  EXPECT_EQ(g.expired_sheds(), 1u);
  EXPECT_EQ(g.sheds_at_priority(0), 1u);
  EXPECT_EQ(g.sheds_at_priority(1), 2u);
}

// --- Unit: queue drop-split accounting never loses a drop.

TEST(QueueDropSplit, CausesSumToTotalDropped) {
  net::DropTailQueue q({.capacity_pkts = 2});
  auto mk = [] {
    net::Packet p;
    p.payload_bytes = 1000;
    return p;
  };
  EXPECT_TRUE(q.enqueue(mk()));
  EXPECT_TRUE(q.enqueue(mk()));
  EXPECT_FALSE(q.enqueue(mk()));  // tail drop
  q.note_policer_drop(mk());
  q.note_overload_shed(mk());
  const net::QueueStats& s = q.stats();
  EXPECT_EQ(s.tail_dropped, 1u);
  EXPECT_EQ(s.policer_dropped, 1u);
  EXPECT_EQ(s.overload_shed, 1u);
  EXPECT_EQ(s.dropped, s.tail_dropped + s.policer_dropped + s.overload_shed);
}

// --- Transport: receiver-driven grants pace an 8:1 incast.

struct IncastOutcome {
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t completions = 0;
  std::uint64_t grants = 0;
  std::uint64_t tail_drops = 0;
};

IncastOutcome run_incast(bool overload_on) {
  Dumbbell t(8, Bandwidth::gbps(10), 1_us, {.capacity_pkts = 64});
  MtpConfig cfg;
  cfg.overload.enabled = overload_on;
  cfg.overload.admission.grant_horizon = 10_us;
  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  for (net::Host* h : t.senders) eps.push_back(std::make_unique<MtpEndpoint>(*h, cfg));
  MtpEndpoint rx(*t.receiver, cfg);
  IncastOutcome out;
  std::set<std::pair<net::NodeId, proto::MsgId>> seen;
  rx.listen_any([&](const ReceivedMessage& m) {
    ++out.delivered;
    if (!seen.emplace(m.src, m.msg_id).second) ++out.duplicates;
  });
  for (auto& ep : eps) {
    ep->send_message(t.receiver->id(), 200'000, {.dst_port = 80},
                     [&out](proto::MsgId, SimTime) { ++out.completions; });
  }
  t.sim().run(500_ms);
  out.grants = rx.grants_issued();
  out.tail_drops = t.bottleneck->queue().stats().tail_dropped;
  // Drop-split invariant on the bottleneck: nothing discarded untagged.
  const net::QueueStats& qs = t.bottleneck->queue().stats();
  EXPECT_EQ(qs.dropped, qs.tail_dropped + qs.policer_dropped + qs.overload_shed);
  EXPECT_EQ(t.sim().pending_events(), 0u);
  return out;
}

TEST(OverloadTransport, GrantPacingDeliversIncastWithFewerDrops) {
  const IncastOutcome off = run_incast(false);
  const IncastOutcome on = run_incast(true);
  for (const IncastOutcome* o : {&off, &on}) {
    EXPECT_EQ(o->delivered, 8u);
    EXPECT_EQ(o->completions, 8u);
    EXPECT_EQ(o->duplicates, 0u);
  }
  EXPECT_EQ(off.grants, 0u);
  EXPECT_GT(on.grants, 0u);
  // Grant pacing must not make the last-hop queue worse.
  EXPECT_LE(on.tail_drops, off.tail_drops);
}

// --- Transport: deadline-expired work is rejected before service,
// exactly once, and the sender aborts instead of retransmitting.

TEST(OverloadTransport, DeadlineExpiredRejectedNeverDelivered) {
  HostPair t(Bandwidth::gbps(10));
  MtpConfig cfg;
  cfg.overload.enabled = true;
  MtpEndpoint a(*t.a, cfg);
  MtpEndpoint b(*t.b, cfg);
  std::uint64_t delivered = 0;
  b.listen_any([&](const ReceivedMessage&) { ++delivered; });
  std::uint64_t rejected = 0;
  bool reject_expired = false;
  a.on_rejected = [&](proto::MsgId, net::NodeId, bool expired) {
    ++rejected;
    reject_expired = expired;
  };
  std::uint64_t completions = 0;
  // Deadline 100 ns, one-way delay 2 us: expired on arrival.
  a.send_message(t.b->id(), 10'000,
                 {.dst_port = 80, .deadline = SimTime::nanoseconds(100)},
                 [&](proto::MsgId, SimTime) { ++completions; });
  t.sim().run(500_ms);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(completions, 0u);  // an aborted message never "completes"
  EXPECT_EQ(rejected, 1u);
  EXPECT_TRUE(reject_expired);
  EXPECT_EQ(a.msgs_rejected(), 1u);
  EXPECT_EQ(b.deadline_expiries(), 1u);
  EXPECT_GE(b.busy_rejects_sent(), 1u);
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// --- Transport: receiver watermark sheds low priority, protects high.

TEST(OverloadTransport, WatermarkShedsLowPriorityProtectsHigh) {
  Dumbbell t(4, Bandwidth::gbps(1), 5_us);
  MtpConfig cfg;
  cfg.overload.enabled = true;
  MtpConfig rx_cfg = cfg;
  rx_cfg.overload.max_incoming_msgs = 1;
  rx_cfg.overload.shed_below_priority = 1;
  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  for (net::Host* h : t.senders) eps.push_back(std::make_unique<MtpEndpoint>(*h, cfg));
  MtpEndpoint rx(*t.receiver, rx_cfg);

  std::set<std::pair<net::NodeId, proto::MsgId>> delivered;
  std::uint64_t delivered_high = 0;
  rx.listen_any([&](const ReceivedMessage& m) {
    EXPECT_TRUE(delivered.emplace(m.src, m.msg_id).second) << "duplicate delivery";
    if (m.priority > 0) ++delivered_high;
  });
  std::set<std::pair<net::NodeId, proto::MsgId>> rejected;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    eps[i]->on_rejected = [&rejected, src = t.senders[i]->id()](
                              proto::MsgId id, net::NodeId, bool) {
      rejected.emplace(src, id);
    };
  }
  // Senders 0-1 are low priority, 2-3 high; two 30 KB messages each.
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const std::uint8_t pri = i < 2 ? 0 : 1;
    for (int m = 0; m < 2; ++m) {
      eps[i]->send_message(t.receiver->id(), 30'000,
                           {.priority = pri, .dst_port = 80});
    }
  }
  t.sim().run(500_ms);
  EXPECT_EQ(delivered_high, 4u) << "protected priority must not be shed";
  EXPECT_GE(rejected.size(), 1u) << "watermark never fired";
  EXPECT_EQ(delivered.size() + rejected.size(), 8u);
  for (const auto& key : rejected) {
    EXPECT_FALSE(delivered.contains(key)) << "message both rejected and delivered";
  }
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// --- Devices: kvs cache sheds with explicit busy-rejects; its breaker's
// transition counters are sampled over time and must be monotone.

TEST(OverloadDevices, KvsCacheShedsAndBreakerCountersMonotone) {
  HostPair t(Bandwidth::gbps(10));
  innetwork::KvsCache::Config kc;
  kc.backend = t.b->id();
  kc.service_port = 80;
  kc.shed = {.enabled = true,
             .high_watermark = 0,  // everything below protect_priority sheds
             .hard_limit = 1000,
             .protect_priority = 1,
             .shed_expired = true,
             .breaker = {.open_after_sheds = 4,
                         .window = 1_ms,
                         .open_duration = 200_us,
                         .half_open_successes = 2}};
  auto cache = std::make_shared<innetwork::KvsCache>(*t.sw, kc);
  cache->put("hot", "v", 2'000);
  t.sw->add_ingress(cache);

  MtpConfig cfg;
  cfg.overload.enabled = true;
  MtpEndpoint client(*t.a, cfg);
  MtpEndpoint backend(*t.b, cfg);
  std::uint64_t replies = 0;
  client.listen_any([&](const ReceivedMessage&) { ++replies; });
  std::uint64_t rejected = 0;
  client.on_rejected = [&](proto::MsgId, net::NodeId, bool) { ++rejected; };

  // 12 low-priority GETs, 10 us apart: all shed, breaker trips on the 4th.
  for (int i = 0; i < 12; ++i) {
    t.sim().schedule_at(SimTime::microseconds(10 * i), [&] {
      client.send_message(t.b->id(), 2'000,
                          {.priority = 0,
                           .src_port = 9001,
                           .dst_port = 80,
                           .app = net::AppData{"hot", ""}});
    });
  }
  // 5 protected-priority GETs after the open_duration: they pass the guard,
  // hit the cache, and their successes close the half-open breaker.
  for (int i = 0; i < 5; ++i) {
    t.sim().schedule_at(SimTime::microseconds(400 + 10 * i), [&] {
      client.send_message(t.b->id(), 2'000,
                          {.priority = 1,
                           .src_port = 9001,
                           .dst_port = 80,
                           .app = net::AppData{"hot", ""}});
    });
  }
  // Sample breaker counters every 25 us: monotone by construction.
  struct Sample {
    std::uint64_t opens, half_opens, closes;
  };
  std::vector<Sample> samples;
  for (int i = 0; i < 24; ++i) {
    t.sim().schedule_at(SimTime::microseconds(25 * i), [&] {
      const auto& br = cache->shed_guard().breaker();
      samples.push_back({br.opens(), br.half_opens(), br.closes()});
    });
  }
  t.sim().run(500_ms);

  EXPECT_EQ(rejected, 12u);
  EXPECT_EQ(client.msgs_rejected(), 12u);
  EXPECT_EQ(cache->shed_guard().sheds(), 12u);
  EXPECT_EQ(replies, 5u) << "protected GETs must be served from the cache";
  EXPECT_EQ(cache->hits(), 5u);
  const auto& br = cache->shed_guard().breaker();
  EXPECT_GE(br.opens(), 1u);
  EXPECT_GE(br.closes(), 1u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].opens, samples[i - 1].opens);
    EXPECT_GE(samples[i].half_opens, samples[i - 1].half_opens);
    EXPECT_GE(samples[i].closes, samples[i - 1].closes);
  }
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// --- Devices: the L7 balancer observes busy-reject ACKs flowing back and
// ejects the shedding replica until its breaker closes again.

TEST(OverloadDevices, L7BalancerEjectsBusyReplicaAndRestoresIt) {
  Dumbbell t(2, Bandwidth::gbps(10), 1_us);
  innetwork::L7LoadBalancer::Config lc;
  lc.virtual_service = t.receiver->id();
  lc.replicas = {t.senders[0]->id(), t.senders[1]->id()};
  lc.breaker_enabled = true;
  lc.breaker = {.open_after_sheds = 3,
                .window = 500_us,
                .open_duration = 300_us,
                .half_open_successes = 2};
  innetwork::L7LoadBalancer lb(lc);

  auto busy_ack_from = [&](net::NodeId replica) {
    net::Packet pkt;
    pkt.src = replica;
    pkt.dst = 999;  // toward some client; the lb only observes
    proto::MtpHeader h;
    h.type = proto::MtpPacketType::kAck;
    h.msg_id = 7;
    h.overload.ensure().flags = proto::kOverloadBusy;
    pkt.header = h;
    return pkt;
  };
  auto request = [&] {
    net::Packet pkt;
    pkt.src = 999;
    pkt.dst = lc.virtual_service;
    proto::MtpHeader h;
    h.type = proto::MtpPacketType::kData;
    h.msg_id = 42;
    h.msg_len_bytes = 1'000;
    h.msg_len_pkts = 1;
    h.pkt_len = 1'000;
    pkt.header = h;
    return pkt;
  };

  EXPECT_EQ(lb.healthy_replicas(t.sim().now()), 2u);
  for (int i = 0; i < 3; ++i) {
    net::Packet ack = busy_ack_from(lc.replicas[0]);
    EXPECT_FALSE(lb.process(ack, *t.sw));  // never consumed: must reach client
  }
  EXPECT_GE(lb.breaker(0).opens(), 1u);
  EXPECT_EQ(lb.healthy_replicas(t.sim().now()), 1u);
  // New requests avoid the ejected replica entirely.
  for (int i = 0; i < 4; ++i) {
    net::Packet req = request();
    req.mtp().msg_id = 100 + i;
    lb.process(req, *t.sw);
    EXPECT_EQ(req.dst, lc.replicas[1]);
  }
  // After the cooldown the breaker half-opens; clean SACK ACKs close it.
  const SimTime later = t.sim().now() + 400_us;
  EXPECT_TRUE(lb.breaker(0).allow(later));  // half-open: probes flow
  lb.breaker(0).on_success(later);
  lb.breaker(0).on_success(later);
  EXPECT_EQ(lb.healthy_replicas(later), 2u);
  EXPECT_GE(lb.breaker(0).closes(), 1u);
}

// --- RPC: propagated deadlines shed expired work at the server before
// service; the context-aware handler sees the deadline.

TEST(OverloadRpc, ServerShedsExpiredQueuedWork) {
  HostPair t(Bandwidth::gbps(10));
  MtpConfig cfg;
  cfg.overload.enabled = true;
  cfg.overload.shed_expired = false;  // let the *server queue* do the shedding
  MtpEndpoint client_ep(*t.a, cfg);
  MtpEndpoint server_ep(*t.b, cfg);
  RpcClient client(client_ep, {.reply_port = 9000,
                               .timeout = 5_ms,
                               .max_retries = 0,
                               .deadline = 250_us});
  RpcServer server(server_ep, 80);
  server.set_service_model({.service_time = 100_us, .queue_limit = 16,
                            .shed_expired = true});
  std::uint64_t saw_deadline = 0;
  server.handle_ex("work", [&](const RpcServer::RequestContext& ctx) {
    if (ctx.deadline.ns() > 0) ++saw_deadline;
    return RpcServer::Response{1'000, "ok"};
  });
  const int kCalls = 5;
  std::vector<int> cb(kCalls, 0);
  std::uint64_t ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    client.call(t.b->id(), 80, "work", 1'000, [&, i](const RpcReply& r) {
      ++cb[i];
      if (r.ok) ++ok;
    });
  }
  t.sim().run(500_ms);
  for (int i = 0; i < kCalls; ++i) EXPECT_EQ(cb[i], 1) << "call " << i;
  // 100 us service against a 250 us deadline: three fit, two expire queued.
  EXPECT_EQ(server.requests_served(), 3u);
  EXPECT_EQ(server.shed_expired(), 2u);
  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(client.completed(), 3u);
  EXPECT_EQ(client.timed_out(), 2u);
  EXPECT_EQ(saw_deadline, 3u) << "deadline must propagate into the handler";
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// --- RPC: the retry budget converts a retry storm into fail-fast.

TEST(OverloadRpc, RetryBudgetCapsStormAgainstDeadServer) {
  HostPair t(Bandwidth::gbps(10));
  MtpEndpoint client_ep(*t.a, cfg_default());
  MtpEndpoint server_ep(*t.b, cfg_default());
  RpcServer server(server_ep, 80);
  server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{1'000, "ok"};
  });
  server.crash();  // transport still ACKs; the app never answers

  RpcClient unbudgeted(client_ep, {.reply_port = 9000,
                                   .timeout = 100_us,
                                   .max_retries = 3,
                                   .retry_seed = 7});
  RpcClient budgeted(client_ep, {.reply_port = 9001,
                                 .timeout = 100_us,
                                 .max_retries = 3,
                                 .retry_seed = 7,
                                 .retry_budget_ratio = 0.1,
                                 .retry_budget_burst = 2.0});
  const int kCalls = 5;
  std::vector<int> cb_a(kCalls, 0), cb_b(kCalls, 0);
  for (int i = 0; i < kCalls; ++i) {
    unbudgeted.call(t.b->id(), 80, "m", 1'000,
                    [&cb_a, i](const RpcReply&) { ++cb_a[i]; });
    budgeted.call(t.b->id(), 80, "m", 1'000,
                  [&cb_b, i](const RpcReply&) { ++cb_b[i]; });
  }
  t.sim().run(500_ms);
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_EQ(cb_a[i], 1);
    EXPECT_EQ(cb_b[i], 1);
  }
  EXPECT_EQ(unbudgeted.retries(), 15u);  // 5 calls x 3 retries: the storm
  EXPECT_LE(budgeted.retries(), 2u);     // the whole burst allowance, no more
  ASSERT_NE(budgeted.retry_budget(), nullptr);
  EXPECT_GE(budgeted.retry_budget()->exhausted(), 1u);
  EXPECT_EQ(budgeted.timed_out(), static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// --- RPC: hedged requests are budget-guarded and complete exactly once.

TEST(OverloadRpc, HedgesAreBudgetGuardedAndExactlyOnce) {
  HostPair t(Bandwidth::gbps(10));
  MtpEndpoint client_ep(*t.a, cfg_default());
  MtpEndpoint server_ep(*t.b, cfg_default());
  RpcServer server(server_ep, 80);
  server.set_service_model({.service_time = 50_us, .queue_limit = 32});
  server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{1'000, "ok"};
  });
  RpcClient hedger(client_ep, {.reply_port = 9000,
                               .timeout = 10_ms,
                               .retry_budget_ratio = 1.0,
                               .retry_budget_burst = 10.0,
                               .hedge_after = 20_us});
  RpcClient starved(client_ep, {.reply_port = 9001,
                                .timeout = 10_ms,
                                .retry_budget_ratio = 0.01,
                                .retry_budget_burst = 0.5,  // < 1: never a hedge
                                .hedge_after = 20_us});
  const int kCalls = 3;
  std::vector<int> cb_h(kCalls, 0), cb_s(kCalls, 0);
  for (int i = 0; i < kCalls; ++i) {
    t.sim().schedule_at(SimTime::microseconds(200 * i), [&, i] {
      hedger.call(t.b->id(), 80, "m", 1'000,
                  [&cb_h, i](const RpcReply& r) {
                    ++cb_h[i];
                    EXPECT_TRUE(r.ok);
                  });
      starved.call(t.b->id(), 80, "m", 1'000,
                   [&cb_s, i](const RpcReply& r) {
                     ++cb_s[i];
                     EXPECT_TRUE(r.ok);
                   });
    });
  }
  t.sim().run(500_ms);
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_EQ(cb_h[i], 1) << "hedged call must complete exactly once";
    EXPECT_EQ(cb_s[i], 1);
  }
  EXPECT_EQ(hedger.hedges(), static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(starved.hedges(), 0u) << "an exhausted budget must veto hedging";
  ASSERT_NE(starved.retry_budget(), nullptr);
  EXPECT_GE(starved.retry_budget()->exhausted(), 1u);
  EXPECT_EQ(t.sim().pending_events(), 0u);
}

// ---------------------------------------------------------------------------
// Seeded overload chaos harness on a sharded leaf-spine: RPC retry storms
// around a server crash, raw traffic under receiver watermarks, and a shed-
// guarded kvs cache — with all folds shard-local so the digest is a pure
// function of the seed, independent of the shard count.
// ---------------------------------------------------------------------------

struct OvChaosResult {
  std::uint64_t digest = 0;
  std::uint64_t rpc_ok = 0;
  std::uint64_t rpc_timeout = 0;
  std::uint64_t rpc_rejected = 0;
  std::uint64_t served = 0;
  std::uint64_t server_shed = 0;
  std::uint64_t cache_sheds = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t msgs_rejected = 0;
  std::size_t leaked_events = 0;
  bool callbacks_exactly_once = true;
  bool msgs_exactly_once = true;
  bool reject_and_deliver = false;
  bool breaker_monotone = true;
};

OvChaosResult run_overload_chaos(std::uint64_t seed, unsigned shards) {
  net::Network net(seed, shards);
  net::LeafSpine ls(net, {.leaves = 4, .spines = 2, .hosts_per_leaf = 1,
                          .link_delay = 5_us});
  const std::size_t kHosts = 4;
  net::Host* server_host = ls.hosts()[3];

  MtpConfig client_cfg;
  client_cfg.overload.enabled = true;
  client_cfg.overload.max_incoming_msgs = 3;  // raw traffic hits the watermark
  MtpConfig server_cfg;
  server_cfg.overload.enabled = true;
  server_cfg.overload.max_incoming_msgs = 6;

  // Per-host slots: every runtime fold lives on the shard owning the host.
  struct alignas(64) HostSlot {
    std::uint64_t cell = 0;
  };
  std::vector<HostSlot> slot(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) {
    slot[h].cell = mix64(0x0ddba11ULL ^ h);
  }

  // Raw (non-RPC) messages: index -> outcome flags. `delivered` is written
  // by the receiving host's shard, `completed`/`rejected` by the sender's —
  // distinct fields, so the parallel run stays race-free.
  struct alignas(64) MsgSlot {
    std::uint64_t delivered = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
  };
  const int kRaw = 18;   // client <-> client messages
  const int kGets = 18;  // GETs fronted by the shed-guarded cache
  std::vector<MsgSlot> msg_slot(kRaw + kGets);

  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  // Per-sender map from transport msg id -> raw-message index, touched only
  // on that sender's shard (send + reject hooks both run there).
  std::vector<std::unordered_map<proto::MsgId, int>> msg_index(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) {
    auto ep = std::make_unique<MtpEndpoint>(
        *ls.hosts()[h], h == 3 ? server_cfg : client_cfg);
    ep->listen_any([s = &slot[h], &msg_slot](const ReceivedMessage& m) {
      if (!m.app) return;
      const std::string& key = m.app->key;
      int idx = -1;
      if (key.rfind("raw:", 0) == 0) idx = std::stoi(key.substr(4));
      if (key.rfind("get:", 0) == 0) idx = std::stoi(key.substr(4));
      if (idx < 0) return;
      ++msg_slot[idx].delivered;
      s->cell = mix64(s->cell ^ mix64(m.src) ^ mix64(m.msg_id) ^
                      mix64(static_cast<std::uint64_t>(m.bytes)));
    });
    ep->on_rejected = [s = &slot[h], &msg_slot, mi = &msg_index[h]](
                          proto::MsgId id, net::NodeId, bool expired) {
      auto it = mi->find(id);
      if (it != mi->end()) {
        ++msg_slot[it->second].rejected;
        s->cell = mix64(s->cell ^ mix64(id) ^ (expired ? 0x5eedULL : 0));
      }
    };
    eps.push_back(std::move(ep));
  }

  // Shed-guarded kvs cache on the server's leaf, fronting server port 81.
  innetwork::KvsCache::Config kc;
  kc.backend = server_host->id();
  kc.service_port = 81;
  kc.shed = {.enabled = true,
             .high_watermark = 0,
             .hard_limit = 1000,
             .protect_priority = 1,
             .shed_expired = true,
             .breaker = {.open_after_sheds = 3,
                         .window = 500_us,
                         .open_duration = 300_us,
                         .half_open_successes = 2}};
  auto cache = std::make_shared<innetwork::KvsCache>(*ls.leaf(3), kc);
  for (int k = 0; k < 4; ++k) cache->put("k" + std::to_string(k), "v", 3'000);
  ls.leaf(3)->add_ingress(cache);

  // RPC: three clients against one server that crashes mid-run. Requests
  // are still ACKed by the transport while the app is down — the classic
  // retry-storm trigger the budgets must contain.
  RpcServer server(*eps[3], 80);
  server.set_service_model({.service_time = 15_us, .queue_limit = 8,
                            .shed_expired = true});
  server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
    return RpcServer::Response{2'000, "ok"};
  });
  sim::Simulator& server_sim = net.simulator(net.shard_of(*server_host));
  server_sim.schedule_at(1_ms, [&server] { server.crash(); });
  server_sim.schedule_at(SimTime::microseconds(1'800), [&server] { server.restart(); });

  std::vector<std::unique_ptr<RpcClient>> clients;
  const int kCalls = 30;
  std::vector<int> cb(kCalls, 0);
  for (std::size_t h = 0; h < 3; ++h) {
    clients.push_back(std::make_unique<RpcClient>(
        *eps[h], RpcClient::Config{.reply_port = 9000,
                                   .timeout = 150_us,
                                   .max_retries = 3,
                                   .retry_seed = seed * 31 + h,
                                   .retry_budget_ratio = 0.2,
                                   .retry_budget_burst = 4.0,
                                   .deadline = 600_us}));
  }

  // Everything below derives from `seed` alone; sends fire on the shard
  // owning the sending host.
  sim::Rng rng(mix64(seed ^ 0xabcdefULL));
  for (int i = 0; i < kCalls; ++i) {
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::int64_t bytes = rng.uniform_int(1, 20'000);
    const std::uint8_t pri = rng.bernoulli(0.5) ? 1 : 0;
    const SimTime at = SimTime::nanoseconds(rng.uniform_int(0, 3'000'000));
    RpcClient* cl = clients[c].get();
    HostSlot* s = &slot[c];
    net.simulator(net.shard_of(*ls.hosts()[c]))
        .schedule_at(at, [cl, s, &cb, i, bytes, pri, server_host] {
          cl->call(server_host->id(), 80, "m", bytes,
                   [s, &cb, i](const RpcReply& r) {
                     ++cb[i];
                     s->cell = mix64(s->cell ^ (r.ok ? 0x600dULL : 0xbadULL) ^
                                     (r.rejected ? 0x7e7ec7ULL : 0) ^
                                     static_cast<std::uint64_t>(r.latency.ns()));
                   });
        });
  }
  for (int i = 0; i < kRaw; ++i) {
    const auto src = static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::size_t dst = static_cast<std::size_t>(rng.uniform_int(0, 1));
    if (dst >= src) ++dst;  // uniform over the other two clients
    const std::int64_t bytes = rng.uniform_int(1, 40'000);
    const std::uint8_t pri = rng.bernoulli(0.4) ? 1 : 0;
    const SimTime at = SimTime::nanoseconds(rng.uniform_int(0, 3'000'000));
    MtpEndpoint* ep = eps[src].get();
    net::Host* to = ls.hosts()[dst];
    auto* mi = &msg_index[src];
    auto* ms = &msg_slot[i];
    net.simulator(net.shard_of(*ls.hosts()[src]))
        .schedule_at(at, [ep, to, bytes, pri, i, mi, ms] {
          MessageOptions opts;
          opts.priority = pri;
          opts.dst_port = 7;
          opts.app = net::AppData{"raw:" + std::to_string(i), ""};
          const proto::MsgId mid = ep->send_message(
              to->id(), bytes, std::move(opts),
              [ms](proto::MsgId, SimTime) { ++ms->completed; });
          mi->emplace(mid, i);
        });
  }
  for (int g = 0; g < kGets; ++g) {
    const int i = kRaw + g;
    const auto src = static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::uint8_t pri = g % 2 == 0 ? 0 : 1;  // pri0 guaranteed: sheds fire
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 3));
    const SimTime at = SimTime::nanoseconds(rng.uniform_int(0, 3'000'000));
    MtpEndpoint* ep = eps[src].get();
    auto* mi = &msg_index[src];
    auto* ms = &msg_slot[i];
    net.simulator(net.shard_of(*ls.hosts()[src]))
        .schedule_at(at, [ep, key, pri, i, mi, ms, server_host] {
          MessageOptions opts;
          opts.priority = pri;
          opts.src_port = 9002;
          opts.dst_port = 81;
          opts.app = net::AppData{key, "get:" + std::to_string(i)};
          const proto::MsgId mid = ep->send_message(
              server_host->id(), 3'000, std::move(opts),
              [ms](proto::MsgId, SimTime) { ++ms->completed; });
          mi->emplace(mid, i);
        });
  }

  // Breaker monotonicity, sampled on the cache's own shard.
  struct BreakerSample {
    std::uint64_t opens, half_opens, closes;
  };
  std::vector<BreakerSample> br_samples;
  sim::Simulator& cache_sim = net.simulator(net.shard_of(*ls.leaf(3)));
  for (int i = 0; i < 12; ++i) {
    cache_sim.schedule_at(SimTime::microseconds(300 * i), [&br_samples, &cache] {
      const auto& br = cache->shed_guard().breaker();
      br_samples.push_back({br.opens(), br.half_opens(), br.closes()});
    });
  }

  net.run(500_ms);

  OvChaosResult res;
  for (int i = 0; i < kCalls; ++i) {
    if (cb[i] != 1) res.callbacks_exactly_once = false;
  }
  for (const MsgSlot& m : msg_slot) {
    if (m.delivered > 1 || m.completed + m.rejected != 1) {
      res.msgs_exactly_once = false;
    }
    if (m.delivered > 0 && m.rejected > 0) res.reject_and_deliver = true;
  }
  for (std::size_t i = 1; i < br_samples.size(); ++i) {
    if (br_samples[i].opens < br_samples[i - 1].opens ||
        br_samples[i].half_opens < br_samples[i - 1].half_opens ||
        br_samples[i].closes < br_samples[i - 1].closes) {
      res.breaker_monotone = false;
    }
  }
  for (const auto& cl : clients) {
    res.rpc_ok += cl->completed();
    res.rpc_timeout += cl->timed_out();
    res.rpc_rejected += cl->rejected();
  }
  res.served = server.requests_served();
  res.server_shed = server.shed_expired();
  res.cache_sheds = cache->shed_guard().sheds();
  res.breaker_opens = cache->shed_guard().breaker().opens();
  for (const auto& ep : eps) res.msgs_rejected += ep->msgs_rejected();
  for (unsigned sh = 0; sh < net.shards(); ++sh) {
    res.leaked_events += net.simulator(sh).pending_events();
  }
  for (const HostSlot& s : slot) res.digest ^= s.cell;
  res.digest = mix64(res.digest ^ mix64(res.rpc_ok) ^ mix64(res.rpc_timeout) ^
                     mix64(res.rpc_rejected) ^ mix64(res.served) ^
                     mix64(res.server_shed) ^ mix64(res.cache_sheds) ^
                     mix64(res.breaker_opens) ^ mix64(res.msgs_rejected) ^
                     mix64(eps[3]->busy_rejects_sent()) ^
                     mix64(eps[3]->grants_issued()));
  return res;
}

// Named to match the tsan lane's -R 'Sharded' filter: shard workers fold
// into adjacent slots and exchange packets while TSan watches.
TEST(OverloadChaosSharded, TwelveSeedsSatisfyAllInvariants) {
  std::uint64_t total_cache_sheds = 0;
  std::uint64_t total_rejected = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const OvChaosResult r = run_overload_chaos(seed, /*shards=*/2);
    EXPECT_TRUE(r.callbacks_exactly_once) << "seed " << seed;
    EXPECT_TRUE(r.msgs_exactly_once) << "seed " << seed;
    EXPECT_FALSE(r.reject_and_deliver)
        << "seed " << seed << ": message both rejected and delivered";
    EXPECT_TRUE(r.breaker_monotone) << "seed " << seed;
    EXPECT_EQ(r.rpc_ok + r.rpc_timeout + r.rpc_rejected, 30u) << "seed " << seed;
    EXPECT_EQ(r.leaked_events, 0u) << "seed " << seed;
    total_cache_sheds += r.cache_sheds;
    total_rejected += r.msgs_rejected;
  }
  // The harness must actually exercise the overload paths it guards.
  EXPECT_GT(total_cache_sheds, 0u);
  EXPECT_GT(total_rejected, 0u);
}

TEST(OverloadChaosSharded, DigestsIdenticalAcrossShardCounts) {
  for (const std::uint64_t seed : {1ull, 7ull, 11ull}) {
    const OvChaosResult one = run_overload_chaos(seed, 1);
    for (const unsigned shards : {2u, 4u}) {
      const OvChaosResult r = run_overload_chaos(seed, shards);
      EXPECT_EQ(r.digest, one.digest) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.rpc_ok, one.rpc_ok) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.served, one.served) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.cache_sheds, one.cache_sheds) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.msgs_rejected, one.msgs_rejected)
          << "seed " << seed << " x" << shards;
    }
  }
}

}  // namespace
}  // namespace mtp
