// Tests for sim::ParallelSweep: result ordering, exception propagation, and
// the determinism contract — a sweep of independent simulations must produce
// bit-identical results whether it runs serially (workers=1) or on a pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mtp/endpoint.hpp"
#include "net/network.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "telemetry/metrics.hpp"

namespace mtp::sim {
namespace {

using namespace mtp::sim::literals;

TEST(ParallelSweep, ResultsComeBackInJobOrder) {
  ParallelSweep pool(4);
  const std::vector<int> out = pool.map(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelSweep, ZeroWorkersPicksHardwareConcurrency) {
  ParallelSweep pool(0);
  EXPECT_GE(pool.workers(), 1u);
}

TEST(ParallelSweep, SingleWorkerRunsInlineOnCallingThread) {
  // workers=1 is the serial baseline: jobs see the caller's thread-local
  // state (telemetry registry, trace sink).
  auto& caller_registry = telemetry::MetricRegistry::global();
  ParallelSweep pool(1);
  const std::vector<bool> same =
      pool.map(4, [&](std::size_t) { return &telemetry::MetricRegistry::global() == &caller_registry; });
  for (const bool s : same) EXPECT_TRUE(s);
}

TEST(ParallelSweep, WorkersGetTheirOwnTelemetryRegistry) {
  // The determinism/thread-safety contract: worker threads must not share
  // the caller's (or each other's) mutable telemetry singletons.
  auto& caller_registry = telemetry::MetricRegistry::global();
  ParallelSweep pool(4);
  std::atomic<int> shared_with_caller{0};
  pool.run(std::vector<std::function<void()>>(
      8, [&] {
        if (&telemetry::MetricRegistry::global() == &caller_registry) {
          shared_with_caller.fetch_add(1);
        }
      }));
  EXPECT_EQ(shared_with_caller.load(), 0);
}

TEST(ParallelSweep, VoidJobsAllRun) {
  ParallelSweep pool(4);
  std::atomic<int> count{0};
  pool.run(std::vector<std::function<void()>>(32, [&] { count.fetch_add(1); }));
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelSweep, FirstExceptionByJobIndexPropagates) {
  ParallelSweep pool(4);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i]() -> int {
      if (i == 3) throw std::runtime_error("job 3 failed");
      if (i == 6) throw std::logic_error("job 6 failed");
      return i;
    });
  }
  try {
    pool.run<int>(std::move(jobs));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 3 failed");  // lowest job index wins
  }
}

TEST(ParallelSweep, EmptyJobListIsANoOp) {
  ParallelSweep pool(4);
  EXPECT_TRUE(pool.run<int>({}).empty());
  pool.run(std::vector<std::function<void()>>{});
}

// One independent simulation: the bench_micro_core end-to-end scenario at a
// parameterized message size. Returns everything an experiment would record.
struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::int64_t fct_ns = 0;
  std::int64_t end_ns = 0;
  std::uint64_t task_heap_allocs = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult run_transfer(std::int64_t msg_bytes) {
  const std::uint64_t heap_before = Task::heap_allocations();
  net::Network net;
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, Bandwidth::gbps(100), 1_us);
  net.connect(*sw, *b, Bandwidth::gbps(100), 1_us);
  sw->add_route(a->id(), 0);
  sw->add_route(b->id(), 1);
  core::MtpEndpoint src(*a, {});
  core::MtpEndpoint dst(*b, {});
  dst.listen(80, [](const core::ReceivedMessage&) {});
  RunResult r;
  src.send_message(b->id(), msg_bytes, {.dst_port = 80},
                   [&r](proto::MsgId, SimTime fct) { r.fct_ns = fct.ns(); });
  net.simulator().run();
  r.events = net.simulator().events_executed();
  r.delivered = dst.msgs_delivered();
  r.end_ns = net.simulator().now().ns();
  r.task_heap_allocs = Task::heap_allocations() - heap_before;
  return r;
}

TEST(ParallelSweep, SimulationsAreBitIdenticalSerialVsParallel) {
  std::vector<std::int64_t> sizes;
  for (int i = 0; i < 12; ++i) sizes.push_back(20'000 + 37'000 * i);

  auto sweep = [&](unsigned workers) {
    ParallelSweep pool(workers);
    return pool.map(sizes.size(), [&](std::size_t i) { return run_transfer(sizes[i]); });
  };
  const std::vector<RunResult> serial = sweep(1);
  const std::vector<RunResult> parallel = sweep(4);
  const std::vector<RunResult> parallel_again = sweep(4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].delivered, 0u);
    EXPECT_GT(serial[i].fct_ns, 0);
    EXPECT_EQ(serial[i], parallel[i]) << "scenario " << i << " diverged serial vs parallel";
    EXPECT_EQ(parallel[i], parallel_again[i]) << "scenario " << i << " unstable across sweeps";
  }
}

TEST(ParallelSweep, SteadyStateSchedulingIsAllocationFree) {
  // The allocation contract, measured per worker thread: after warm-up, the
  // event core must not heap-allocate for ordinary [this]-style callbacks.
  ParallelSweep pool(2);
  const std::vector<std::uint64_t> allocs = pool.map(4, [](std::size_t) {
    Simulator sim;
    // Warm up the slot pool and heap storage.
    for (int i = 0; i < 512; ++i) sim.schedule(SimTime::nanoseconds(i), [] {});
    sim.run();
    const std::uint64_t before = Task::heap_allocations();
    int counter = 0;
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 128; ++i) {
        sim.schedule(SimTime::nanoseconds(i % 16), [&counter] { ++counter; });
      }
      sim.run();
    }
    return Task::heap_allocations() - before;
  });
  for (const std::uint64_t a : allocs) EXPECT_EQ(a, 0u);
}

}  // namespace
}  // namespace mtp::sim
