// Chaos harness: seeded random fault schedules (flaps + bursty impairment +
// device crashes) over a leaf-spine fabric, checked against hard invariants:
//
//   - exactly-once application delivery (no loss, no duplicates),
//   - payload integrity (no corrupted packet ever reaches an app or device),
//   - every RPC completes or cleanly times out (callback exactly once),
//   - the event queue drains (no leaked timers or runaway retransmission),
//   - the fault timeline is bit-identical for a given seed, serial or under
//     sim::ParallelSweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "helpers.hpp"
#include "innetwork/kvs_cache.hpp"
#include "mtp/endpoint.hpp"
#include "mtp/rpc.hpp"
#include "net/topologies.hpp"
#include "sim/parallel.hpp"

namespace mtp::fault {
namespace {

using namespace mtp::sim::literals;
using core::MtpEndpoint;
using core::ReceivedMessage;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct ChaosResult {
  std::uint64_t fault_digest = 0;  ///< injector's decision timeline
  std::uint64_t run_digest = 0;    ///< fold of delivery outcomes
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t completions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corrupted_delivered = 0;
  std::uint64_t checksum_drops = 0;
  std::uint64_t flaps = 0;
  std::size_t leaked_events = 0;
};

// One chaos run: 48 random messages over a 2x2 leaf-spine while two uplinks
// flap at random and a third runs a Gilbert-Elliott impairment. Everything —
// workload and faults — derives from `seed`, so the whole run is a pure
// function of it (the ParallelSweep determinism contract).
ChaosResult run_chaos(std::uint64_t seed) {
  net::Network net(seed);
  net::LeafSpine ls(net, {.leaves = 2, .spines = 2, .hosts_per_leaf = 2},
                    [] { return std::make_unique<net::MessageAwarePolicy>(); });
  ls.uplink(0, 0)->set_pathlet({.id = 11, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(0, 1)->set_pathlet({.id = 12, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(1, 0)->set_pathlet({.id = 21, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(1, 1)->set_pathlet({.id = 22, .feedback = proto::FeedbackType::kEcn});

  core::MtpConfig cfg;
  cfg.auto_exclude_after_losses = 2;
  cfg.exclude_duration = 300_us;
  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  ChaosResult res;
  std::set<std::pair<net::NodeId, proto::MsgId>> seen;
  for (net::Host* h : ls.hosts()) {
    auto ep = std::make_unique<MtpEndpoint>(*h, cfg);
    ep->listen_any([&res, &seen](const ReceivedMessage& m) {
      ++res.delivered;
      if (!seen.emplace(m.src, m.msg_id).second) ++res.duplicates;
      res.run_digest = mix64(res.run_digest ^ mix64(m.src) ^
                             mix64(m.msg_id) ^ mix64(static_cast<std::uint64_t>(m.bytes)));
    });
    eps.push_back(std::move(ep));
  }

  // Faults: two flapping uplinks, one bursty-lossy/corrupting uplink. All
  // links are guaranteed healthy again by t = 3 ms.
  FaultInjector inj(net.simulator(), seed);
  inj.random_flaps(*ls.uplink(0, 0), 200_us, 3_ms, /*mean_up=*/400_us,
                   /*mean_down=*/150_us);
  inj.random_flaps(*ls.uplink(1, 1), 250_us, 3_ms, 400_us, 150_us);
  inj.impair_link(*ls.uplink(0, 1), {.p_good_to_bad = 0.01,
                                     .p_bad_to_good = 0.1,
                                     .bad_loss = 0.2,
                                     .bad_corrupt = 0.2});

  // Workload: 48 messages between random host pairs over the first 2 ms.
  sim::Rng wl(mix64(seed ^ 0xabcdef));
  const int kMessages = 48;
  for (int i = 0; i < kMessages; ++i) {
    const auto src = static_cast<std::size_t>(wl.uniform_int(0, 3));
    std::size_t dst = static_cast<std::size_t>(wl.uniform_int(0, 2));
    if (dst >= src) ++dst;  // uniform over the other three hosts
    const std::int64_t bytes = wl.uniform_int(1, 40'000);
    const SimTime at = SimTime::nanoseconds(wl.uniform_int(0, 2'000'000));
    net::Host* to = ls.hosts()[dst];
    MtpEndpoint* ep = eps[src].get();
    net.simulator().schedule_at(at, [ep, to, bytes, &res] {
      ++res.sent;
      ep->send_message(to->id(), bytes, {.dst_port = 80},
                       [&res](proto::MsgId, SimTime fct) {
                         ++res.completions;
                         res.run_digest = mix64(
                             res.run_digest ^ static_cast<std::uint64_t>(fct.ns()));
                       });
    });
  }

  net.simulator().run(500_ms);  // generous bound: a healthy run quiesces long before
  res.leaked_events = net.simulator().pending_events();
  res.fault_digest = inj.digest();
  res.flaps = inj.flaps_executed();
  for (const auto& ep : eps) {
    res.corrupted_delivered += ep->corrupted_delivered();
    res.checksum_drops += ep->checksum_drops();
  }
  res.run_digest = mix64(res.run_digest ^ res.fault_digest ^ res.delivered ^
                         res.checksum_drops);
  return res;
}

void check_invariants(const ChaosResult& r, std::uint64_t seed) {
  EXPECT_EQ(r.sent, 48u) << "seed " << seed;
  EXPECT_EQ(r.completions, r.sent) << "seed " << seed << ": message never completed";
  EXPECT_EQ(r.delivered, r.sent) << "seed " << seed << ": lost or duplicated delivery";
  EXPECT_EQ(r.duplicates, 0u) << "seed " << seed;
  EXPECT_EQ(r.corrupted_delivered, 0u)
      << "seed " << seed << ": corrupted payload reached the application";
  EXPECT_EQ(r.leaked_events, 0u) << "seed " << seed << ": event queue did not drain";
  EXPECT_GT(r.flaps, 0u) << "seed " << seed << ": fault schedule was a no-op";
}

TEST(Chaos, TwentyFourSeededScheduleSatisfyAllInvariants) {
  bool any_checksum_drops = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ChaosResult r = run_chaos(seed);
    check_invariants(r, seed);
    any_checksum_drops |= r.checksum_drops > 0;
  }
  // Across 24 schedules the impaired link must have corrupted something —
  // otherwise the integrity invariant above was never actually exercised.
  EXPECT_TRUE(any_checksum_drops);
}

TEST(Chaos, SameSeedReproducesBitIdenticalTimeline) {
  const ChaosResult a = run_chaos(7);
  const ChaosResult b = run_chaos(7);
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.run_digest, b.run_digest);
  EXPECT_EQ(a.checksum_drops, b.checksum_drops);
  const ChaosResult c = run_chaos(8);
  EXPECT_NE(a.fault_digest, c.fault_digest);
}

// Named to match the tsan suite filter (-R 'ParallelSweep'): the chaos jobs
// must be data-race-free across workers, and their fault timelines must not
// depend on which thread ran them.
TEST(ParallelSweepChaos, FaultTimelinesBitIdenticalSerialVsParallel) {
  const std::size_t kSeeds = 20;
  auto job = [](std::size_t i) { return run_chaos(i + 1); };
  sim::ParallelSweep serial(1);
  sim::ParallelSweep pool(4);
  const std::vector<ChaosResult> s = serial.map(kSeeds, job);
  const std::vector<ChaosResult> p = pool.map(kSeeds, job);
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(s[i].fault_digest, p[i].fault_digest) << "seed " << i + 1;
    EXPECT_EQ(s[i].run_digest, p[i].run_digest) << "seed " << i + 1;
    EXPECT_EQ(s[i].delivered, p[i].delivered) << "seed " << i + 1;
    EXPECT_EQ(s[i].flaps, p[i].flaps) << "seed " << i + 1;
  }
}

// One chaos run on `shards` space shards (sim::sharded via net::Network).
// Same fabric, fault families and 48-message workload as run_chaos, but all
// runtime folds are shard-local: delivery/completion digests live in
// per-host cells (each host is owned by exactly one shard) combined by XOR,
// counters are per-host, and workload sends are scheduled on the simulator
// of the shard owning the sending host. The result is therefore a pure
// function of `seed` alone — `shards` must not change a single bit of it.
ChaosResult run_chaos_sharded(std::uint64_t seed, unsigned shards) {
  net::Network net(seed, shards);
  // 5 us fabric delay = 5 us conservative lookahead: wider windows keep the
  // barrier count civil on the CI box. (The timeline differs from run_chaos's
  // 1 us default, which is fine — sharded runs are compared to each other.)
  net::LeafSpine ls(net,
                    {.leaves = 4, .spines = 2, .hosts_per_leaf = 1,
                     .link_delay = 5_us},
                    [] { return std::make_unique<net::MessageAwarePolicy>(); });
  ls.uplink(0, 0)->set_pathlet({.id = 11, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(0, 1)->set_pathlet({.id = 12, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(1, 0)->set_pathlet({.id = 21, .feedback = proto::FeedbackType::kEcn});
  ls.uplink(1, 1)->set_pathlet({.id = 22, .feedback = proto::FeedbackType::kEcn});

  core::MtpConfig cfg;
  cfg.auto_exclude_after_losses = 2;
  cfg.exclude_duration = 300_us;

  struct alignas(64) HostSlot {
    std::uint64_t cell = 0;  ///< delivery + completion fold, this host only
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t completions = 0;
    std::uint64_t duplicates = 0;
    std::set<std::pair<net::NodeId, proto::MsgId>> seen;
  };
  std::vector<HostSlot> slot(4);
  for (int h = 0; h < 4; ++h) slot[h].cell = mix64(0x2545f4914f6cdd1dULL ^ h);

  std::vector<std::unique_ptr<MtpEndpoint>> eps;
  for (std::size_t h = 0; h < ls.hosts().size(); ++h) {
    auto ep = std::make_unique<MtpEndpoint>(*ls.hosts()[h], cfg);
    ep->listen_any([s = &slot[h]](const ReceivedMessage& m) {
      ++s->delivered;
      if (!s->seen.emplace(m.src, m.msg_id).second) ++s->duplicates;
      s->cell = mix64(s->cell ^ mix64(m.src) ^ mix64(m.msg_id) ^
                      mix64(static_cast<std::uint64_t>(m.bytes)));
    });
    eps.push_back(std::move(ep));
  }

  FaultInjector inj(net.simulator(), seed);
  inj.random_flaps(*ls.uplink(0, 0), 200_us, 3_ms, 400_us, 150_us);
  inj.random_flaps(*ls.uplink(1, 1), 250_us, 3_ms, 400_us, 150_us);
  inj.impair_link(*ls.uplink(0, 1), {.p_good_to_bad = 0.01,
                                     .p_bad_to_good = 0.1,
                                     .bad_loss = 0.2,
                                     .bad_corrupt = 0.2});

  sim::Rng wl(mix64(seed ^ 0xabcdef));
  const int kMessages = 48;
  for (int i = 0; i < kMessages; ++i) {
    const auto src = static_cast<std::size_t>(wl.uniform_int(0, 3));
    std::size_t dst = static_cast<std::size_t>(wl.uniform_int(0, 2));
    if (dst >= src) ++dst;
    const std::int64_t bytes = wl.uniform_int(1, 40'000);
    const SimTime at = SimTime::nanoseconds(wl.uniform_int(0, 2'000'000));
    net::Host* to = ls.hosts()[dst];
    MtpEndpoint* ep = eps[src].get();
    HostSlot* s = &slot[src];
    // The send fires on the sending host's own shard; the completion
    // callback therefore also runs there and folds into the same slot.
    net.simulator(net.shard_of(*ls.hosts()[src]))
        .schedule_at(at, [ep, to, bytes, s] {
          ++s->sent;
          ep->send_message(to->id(), bytes, {.dst_port = 80},
                           [s](proto::MsgId, SimTime fct) {
                             ++s->completions;
                             s->cell = mix64(s->cell ^
                                             static_cast<std::uint64_t>(fct.ns()));
                           });
        });
  }

  net.run(500_ms);
  ChaosResult res;
  res.fault_digest = inj.digest();
  res.flaps = inj.flaps_executed();
  for (const HostSlot& s : slot) {
    res.sent += s.sent;
    res.delivered += s.delivered;
    res.completions += s.completions;
    res.duplicates += s.duplicates;
    res.run_digest ^= s.cell;
  }
  for (const auto& ep : eps) {
    res.corrupted_delivered += ep->corrupted_delivered();
    res.checksum_drops += ep->checksum_drops();
  }
  for (unsigned sh = 0; sh < net.shards(); ++sh) {
    res.leaked_events += net.simulator(sh).pending_events();
  }
  res.run_digest = mix64(res.run_digest ^ res.fault_digest ^ res.delivered ^
                         res.checksum_drops);
  return res;
}

// Named to match the tsan suite filter (-R 'Sharded'): four shard workers
// exchange packets over the SPSC channels and fold into adjacent per-host
// slots while TSan watches.
TEST(ShardedChaos, SeededSchedulesSatisfyAllInvariantsOnShards) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ChaosResult r = run_chaos_sharded(seed, /*shards=*/4);
    EXPECT_EQ(r.sent, 48u) << "seed " << seed;
    EXPECT_EQ(r.completions, r.sent) << "seed " << seed << ": message never completed";
    EXPECT_EQ(r.delivered, r.sent) << "seed " << seed << ": lost or duplicated";
    EXPECT_EQ(r.duplicates, 0u) << "seed " << seed;
    EXPECT_EQ(r.corrupted_delivered, 0u) << "seed " << seed;
    EXPECT_EQ(r.leaked_events, 0u) << "seed " << seed << ": queues did not drain";
    EXPECT_GT(r.flaps, 0u) << "seed " << seed;
  }
}

TEST(ShardedChaos, DigestsBitIdenticalAcrossShardCounts) {
  for (const std::uint64_t seed : {1ull, 7ull, 13ull, 19ull}) {
    const ChaosResult one = run_chaos_sharded(seed, 1);
    for (const unsigned shards : {2u, 4u}) {
      const ChaosResult r = run_chaos_sharded(seed, shards);
      EXPECT_EQ(r.fault_digest, one.fault_digest) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.run_digest, one.run_digest) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.delivered, one.delivered) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.completions, one.completions) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.checksum_drops, one.checksum_drops) << "seed " << seed << " x" << shards;
      EXPECT_EQ(r.flaps, one.flaps) << "seed " << seed << " x" << shards;
    }
  }
}

// Devices + RPC under chaos: a KVS cache that crashes (twice) and a flapping
// backend link, with client retries on. Every call's callback fires exactly
// once and the sum of outcomes accounts for every call.
TEST(Chaos, DevicesAndRpcSurviveCrashesAndFlaps) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    HostPair t(Bandwidth::gbps(10));
    MtpEndpoint client_ep(*t.a, {});
    MtpEndpoint server_ep(*t.b, {});
    core::RpcClient client(client_ep, {.reply_port = 9000,
                                       .timeout = 2_ms,
                                       .max_retries = 3,
                                       .retry_seed = seed});
    core::RpcServer server(server_ep, 80);
    server.handle("", [](const std::string&, std::int64_t, net::NodeId) {
      return core::RpcServer::Response{4'000, "srv"};
    });
    auto cache = std::make_shared<innetwork::KvsCache>(
        *t.sw, innetwork::KvsCache::Config{.backend = t.b->id(), .service_port = 80});
    for (int k = 0; k < 5; ++k) {
      cache->put("key" + std::to_string(k), "cached", 4'000);
    }
    t.sw->add_ingress(cache);

    FaultInjector inj(t.sim(), mix64(seed));
    inj.crash_device(
        "kvs", 1_ms, 2_ms, [&] { cache->crash(); }, [&] { cache->restart(); });
    inj.crash_device(
        "kvs-again", 6_ms, 1_ms, [&] { cache->crash(); }, [&] { cache->restart(); });
    inj.random_flaps(*t.sw_to_b, 2_ms, 6_ms, /*mean_up=*/800_us, /*mean_down=*/200_us);

    const int kCalls = 30;
    std::vector<int> callbacks(kCalls, 0);
    sim::Rng wl(seed * 1000 + 5);
    for (int i = 0; i < kCalls; ++i) {
      const SimTime at = SimTime::nanoseconds(wl.uniform_int(0, 5'000'000));
      const std::string method = "key" + std::to_string(i % 8);  // some always miss
      t.sim().schedule_at(at, [&, i, method] {
        client.call(t.b->id(), 80, method, 1'000,
                    [&callbacks, i](const core::RpcReply&) { ++callbacks[i]; });
      });
    }
    t.sim().run(500_ms);

    for (int i = 0; i < kCalls; ++i) {
      EXPECT_EQ(callbacks[i], 1) << "seed " << seed << " call " << i;
    }
    EXPECT_EQ(client.completed() + client.timed_out(), static_cast<std::uint64_t>(kCalls))
        << "seed " << seed;
    EXPECT_EQ(cache->crashes(), 2u);
    EXPECT_EQ(cache->receiver().corrupted_delivered(), 0u);
    EXPECT_EQ(client_ep.corrupted_delivered(), 0u);
    EXPECT_EQ(server_ep.corrupted_delivered(), 0u);
    EXPECT_EQ(t.sim().pending_events(), 0u) << "seed " << seed;
    EXPECT_TRUE(cache->online());
  }
}

}  // namespace
}  // namespace mtp::fault
