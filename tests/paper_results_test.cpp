// Guardrail tests for the paper's headline results: scaled-down versions of
// the Fig 5/6/7 experiments with qualitative assertions, so a regression in
// any protocol component that would change the paper's story fails CI —
// not just the benchmarks' eyeballs.
#include <gtest/gtest.h>

#include "scenario/paper_figs.hpp"

namespace mtp::scenario {
namespace {

TEST(PaperFig5, MtpBeatsDctcpUnderPathFlapping) {
  const Fig5Result dctcp = run_fig5_dctcp(3_ms, 384_us);
  const Fig5Result mtp = run_fig5_mtp(3_ms, 384_us);
  // Paper: ~+33% goodput for MTP. Guard a conservative +15% so modelling
  // tweaks don't trip it, but a real regression does.
  EXPECT_GT(mtp.avg_gbps, dctcp.avg_gbps * 1.15)
      << "MTP " << mtp.avg_gbps << " vs DCTCP " << dctcp.avg_gbps;
  // MTP must ride the fast path near capacity when it is active.
  EXPECT_GT(mtp.fast_phase_gbps, 70.0);
  // And both protocols are capped by physics on the slow path.
  EXPECT_LT(mtp.slow_phase_gbps, 11.0);
  EXPECT_LT(dctcp.slow_phase_gbps, 11.0);
}

TEST(PaperFig5, MtpConvergesWithinOneSampleOfFlip) {
  const Fig5Result mtp = run_fig5_mtp(3_ms, 384_us);
  // After each slow->fast flip (skip the first, which includes slow start),
  // goodput must be back above 80 Gb/s within 2 samples (64 us).
  int checked = 0;
  for (std::size_t i = 1; i < mtp.series.size(); ++i) {
    const auto phase = (mtp.series[i].start.ns() / (384_us).ns()) % 2;
    const auto prev_phase = (mtp.series[i - 1].start.ns() / (384_us).ns()) % 2;
    const bool flip_to_fast = phase == 0 && prev_phase == 1;
    if (!flip_to_fast || i + 2 >= mtp.series.size()) continue;
    if (mtp.series[i].start < 1_ms) continue;  // warmup
    ++checked;
    EXPECT_GT(mtp.series[i + 2].gbps, 80.0)
        << "slow re-convergence after flip at " << mtp.series[i].start.to_string();
  }
  EXPECT_GE(checked, 2);
}

TEST(PaperFig6, MtpLbHasLowestTailEcmpAndSprayWorse) {
  const Fig6Result mtp = run_fig6("mtp-lb", 400, 7, 4 << 20);
  const Fig6Result ecmp = run_fig6("ecmp", 400, 7, 4 << 20);
  const Fig6Result spray = run_fig6("spray", 400, 7, 4 << 20);
  ASSERT_EQ(mtp.messages, 400u);
  ASSERT_EQ(ecmp.messages, 400u);
  ASSERT_EQ(spray.messages, 400u);
  EXPECT_LT(mtp.p99_us, ecmp.p99_us);
  EXPECT_LT(mtp.p99_us, spray.p99_us);
  // Spraying's reordering penalty on TCP is the paper's headline contrast.
  EXPECT_GT(spray.p99_us, mtp.p99_us * 3);
}

TEST(PaperFig7, SharedQueueSkewsAndMtpEqualizes) {
  const Fig7Result shared = run_fig7("dctcp-shared", 15_ms);
  const Fig7Result mtp = run_fig7("mtp-fairshare", 15_ms);
  // Per-flow fairness hands the 8-flow tenant most of the link (paper: ~8x).
  EXPECT_GT(shared.tenant2_gbps, shared.tenant1_gbps * 4);
  // MTP's per-TC fair share on the same shared FIFO equalizes.
  EXPECT_GT(mtp.jain, 0.95);
  EXPECT_GT(mtp.tenant1_gbps + mtp.tenant2_gbps, 40.0);  // and stays useful
}

TEST(PaperFaultRecovery, MtpRecoversStrictlyFasterThanTcpAcrossAFlap) {
  const FaultRecoveryResult mtp = run_fault_recovery("mtp");
  const FaultRecoveryResult tcp = run_fault_recovery("tcp");
  ASSERT_GT(mtp.recovery_us, 0) << "MTP never recovered inside the horizon";
  ASSERT_GT(tcp.recovery_us, 0) << "TCP never recovered inside the horizon";
  // The headline: per-message placement rides through the outage, the
  // hash-pinned bytestream waits it out plus its RTO backoff.
  EXPECT_LT(mtp.recovery_us, tcp.recovery_us);
  EXPECT_LT(mtp.recovery_us, kFaultFlapFor.us() * 0.5);  // during, not after
  EXPECT_GE(tcp.recovery_us, kFaultFlapFor.us());        // blackholed throughout
  EXPECT_GT(mtp.during_fault_gbps, 0.8 * mtp.pre_fault_gbps);
  EXPECT_LT(tcp.during_fault_gbps, 1.0);
}

}  // namespace
}  // namespace mtp::scenario
