// Shared test topologies.
#pragma once

#include <memory>

#include "net/forwarding.hpp"
#include "net/network.hpp"

namespace mtp::testing {

using namespace mtp::sim::literals;

/// host a -- switch -- host b, symmetric links.
struct HostPair {
  net::Network net;
  net::Host* a;
  net::Host* b;
  net::Switch* sw;
  net::Link* a_to_sw;
  net::Link* sw_to_b;

  explicit HostPair(sim::Bandwidth bw = sim::Bandwidth::gbps(100),
                    sim::SimTime delay = 1_us,
                    net::DropTailQueue::Config qcfg = {.capacity_pkts = 128,
                                                       .ecn_threshold_pkts = 0},
                    std::uint64_t seed = 1)
      : net(seed) {
    a = net.add_host("a");
    b = net.add_host("b");
    sw = net.add_switch("sw");
    auto d1 = net.connect(*a, *sw, bw, delay, qcfg);
    auto d2 = net.connect(*sw, *b, bw, delay, qcfg);
    a_to_sw = d1.forward;
    sw_to_b = d2.forward;
    sw->add_route(a->id(), 0);  // port 0: back toward a
    sw->add_route(b->id(), 1);  // port 1: toward b
  }

  sim::Simulator& sim() { return net.simulator(); }
};

/// n senders + 1 receiver through one bottleneck switch (dumbbell).
struct Dumbbell {
  net::Network net;
  std::vector<net::Host*> senders;
  net::Host* receiver;
  net::Switch* sw;
  net::Link* bottleneck;

  Dumbbell(int n, sim::Bandwidth bw, sim::SimTime delay,
           net::DropTailQueue::Config qcfg = {.capacity_pkts = 128,
                                              .ecn_threshold_pkts = 0},
           std::uint64_t seed = 1)
      : net(seed) {
    sw = net.add_switch("sw");
    receiver = net.add_host("recv");
    for (int i = 0; i < n; ++i) {
      net::Host* h = net.add_host("h" + std::to_string(i));
      senders.push_back(h);
      net.connect(*h, *sw, bw, delay, qcfg);
      sw->add_route(h->id(), static_cast<net::PortIndex>(i));
    }
    auto d = net.connect(*sw, *receiver, bw, delay, qcfg);
    bottleneck = d.forward;
    sw->add_route(receiver->id(), static_cast<net::PortIndex>(n));
  }

  sim::Simulator& sim() { return net.simulator(); }
};

}  // namespace mtp::testing
