// TCP baseline tests: handshake, reliable delivery, congestion control,
// receive-window flow control, ECN/DCTCP, loss recovery, fairness.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "stats/stats.hpp"
#include "transport/apps.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace mtp::transport {
namespace {

using namespace mtp::sim::literals;
using mtp::testing::Dumbbell;
using mtp::testing::HostPair;
using sim::Bandwidth;
using sim::SimTime;

TEST(TcpHandshake, EstablishesBothEnds) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  std::shared_ptr<TcpConnection> server;
  cb.listen(80, [&](std::shared_ptr<TcpConnection> c) { server = std::move(c); });
  auto client = ca.connect(t.b->id(), 80);
  bool established = false;
  client->on_established = [&] { established = true; };
  t.sim().run(1_ms);
  EXPECT_TRUE(established);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(server->state(), TcpConnection::State::kEstablished);
}

TEST(TcpHandshake, SynRetransmittedAfterLoss) {
  // Tiny queue that cannot drop a single SYN: instead drop by disconnecting
  // the listener for a while? Simplest: no listener at all means no reply,
  // and the client keeps retrying SYN (timeouts observable).
  HostPair t;
  TcpStack ca(*t.a, {});
  auto client = ca.connect(t.b->id(), 80);
  t.sim().run(5_ms);
  EXPECT_GT(client->timeouts(), 0u);
  EXPECT_EQ(client->state(), TcpConnection::State::kSynSent);
}

TEST(TcpTransfer, DeliversExactByteCount) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(123456);
    client->close();
  };
  t.sim().run(50_ms);
  EXPECT_EQ(sink.bytes_received(), 123456);
}

class TcpTransferSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TcpTransferSizes, DeliversExactly) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  const std::int64_t n = GetParam();
  client->on_established = [&, n] {
    client->send(n);
    client->close();
  };
  t.sim().run(200_ms);
  EXPECT_EQ(sink.bytes_received(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSizes,
                         ::testing::Values(1, 999, 1000, 1001, 16'384, 100'000,
                                           1'000'000, 5'000'001));

TEST(TcpTransfer, LongFlowSaturatesLink) {
  HostPair t(Bandwidth::gbps(10), 1_us);
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  stats::ThroughputMeter meter(100_us);
  TcpSink sink(cb, 80, &meter);
  TcpBulkSource source(ca, t.b->id(), 80);
  t.sim().run(5_ms);
  // Goodput near line rate (headers ~4%, plus loss-recovery transients on
  // the shallow default buffer).
  EXPECT_GT(meter.average_gbps(), 8.0);
  EXPECT_LE(meter.average_gbps(), 10.0);
}

TEST(TcpTransfer, SlowStartDoublesWindow) {
  // Deep queue so slow start is observable without loss.
  HostPair t(Bandwidth::gbps(100), 10_us, {.capacity_pkts = 4096});
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] { client->send(10'000'000); };
  const double cwnd0 = 10 * 1000;
  t.sim().run(1_ms);
  // Several RTTs (~40us each) of slow start: cwnd should have grown far
  // beyond the initial window and the transfer should be in full swing.
  EXPECT_GT(client->cwnd_bytes(), 4 * cwnd0);
}

TEST(TcpTransfer, RttEstimateTracksPathRtt) {
  HostPair t(Bandwidth::gbps(100), 5_us);  // RTT = 4 hops * 5us = 20us + tx
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] { client->send(200'000); };
  t.sim().run(5_ms);
  EXPECT_GT(client->srtt().us(), 19.0);
  EXPECT_LT(client->srtt().us(), 60.0);  // some queueing on top is fine
}

TEST(TcpLoss, RecoversFromDropsAndDeliversAll) {
  // 4-packet queue at the bottleneck: slow start overshoots and drops.
  HostPair t(Bandwidth::gbps(10), 2_us, {.capacity_pkts = 4});
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(2'000'000);
    client->close();
  };
  t.sim().run(100_ms);
  EXPECT_EQ(sink.bytes_received(), 2'000'000);
  EXPECT_GT(client->retransmits(), 0u);
}

TEST(TcpLoss, FastRetransmitBeatsTimeoutOnIsolatedLoss) {
  HostPair t(Bandwidth::gbps(10), 2_us, {.capacity_pkts = 6});
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(500'000);
    client->close();
  };
  t.sim().run(100_ms);
  EXPECT_EQ(sink.bytes_received(), 500'000);
  // Most recoveries should be via dup-acks, not full timeouts.
  EXPECT_LT(client->timeouts(), client->retransmits());
}

TEST(TcpFlowControl, ReceiveWindowBoundsBufferAndThrottles) {
  HostPair t(Bandwidth::gbps(100), 1_us);
  TcpConfig server_cfg;
  server_cfg.rcv_buf_bytes = 64 * 1000;  // 64 packets
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, server_cfg);
  std::shared_ptr<TcpConnection> server;
  std::int64_t buffered_peak = 0;
  cb.listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server = std::move(c);
    server->set_auto_consume(false);
    server->on_data = [&](std::int64_t) {
      buffered_peak = std::max(buffered_peak, server->available());
    };
  });
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] { client->send(10'000'000); };
  t.sim().run(2_ms);
  ASSERT_NE(server, nullptr);
  // The receiver never buffers more than its advertised limit, and the
  // sender stalls (far fewer bytes than a 100G pipe would carry in 2ms).
  // (small slack: zero-window probes may land a few extra bytes)
  EXPECT_LE(buffered_peak, 64 * 1000 + 2 * 1000);
  EXPECT_LE(client->bytes_delivered(), 64 * 1000 + 2000);
}

TEST(TcpFlowControl, ConsumeReopensWindow) {
  HostPair t(Bandwidth::gbps(100), 1_us);
  TcpConfig server_cfg;
  server_cfg.rcv_buf_bytes = 16 * 1000;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, server_cfg);
  std::shared_ptr<TcpConnection> server;
  cb.listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server = std::move(c);
    server->set_auto_consume(false);
  });
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(1'000'000);
    client->close();
  };
  // Drain the server buffer periodically: the transfer must finish.
  sim::PeriodicTask drain(t.sim(), 10_us, [&] {
    if (server && server->available() > 0) server->consume(server->available());
  });
  drain.start();
  t.sim().run(200_ms);
  ASSERT_NE(server, nullptr);
  server->consume(server->available());
  EXPECT_EQ(client->bytes_delivered(), 1'000'000);
}

TEST(TcpTeardown, FinHandshakeClosesAndRemovesConnections) {
  HostPair t;
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  bool closed = false;
  auto client = ca.connect(t.b->id(), 80);
  client->on_established = [&] {
    client->send(5000);
    client->close();
  };
  client->on_closed = [&] { closed = true; };
  t.sim().run(50_ms);
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(ca.open_connections(), 0u);
  EXPECT_EQ(cb.open_connections(), 0u);
}

TEST(TcpFairness, TwoFlowsShareBottleneck) {
  Dumbbell t(2, Bandwidth::gbps(10), 2_us);
  TcpStack s0(*t.senders[0], {});
  TcpStack s1(*t.senders[1], {});
  TcpStack r(*t.receiver, {});
  stats::ThroughputMeter m0(500_us), m1(500_us);
  TcpSink sink0(r, 80, &m0);
  TcpSink sink1(r, 81, &m1);
  TcpBulkSource src0(s0, t.receiver->id(), 80);
  TcpBulkSource src1(s1, t.receiver->id(), 81);
  t.sim().run(20_ms);
  const double g0 = m0.average_gbps();
  const double g1 = m1.average_gbps();
  EXPECT_GT(g0 + g1, 8.0);  // bottleneck well utilized
  EXPECT_GT(stats::jain_index({g0, g1}), 0.8);
}

TEST(Dctcp, MarksKeepQueueShort) {
  // Same bottleneck, two configs: NewReno fills the 128-packet buffer;
  // DCTCP with K=20 keeps the standing queue near the mark threshold.
  auto run_one = [](bool dctcp) {
    HostPair t(Bandwidth::gbps(10), 2_us,
               {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
    TcpConfig cfg;
    cfg.dctcp = dctcp;
    TcpStack ca(*t.a, cfg);
    TcpStack cb(*t.b, cfg);
    TcpSink sink(cb, 80);
    TcpBulkSource src(ca, t.b->id(), 80);
    // With equal link rates end to end, the standing queue forms at the
    // sender's NIC (the first queue the window pushes into). Skip the first
    // 3ms so the initial slow-start overshoot doesn't dominate the peak.
    std::size_t peak_q = 0;
    sim::PeriodicTask probe(t.sim(), 10_us, [&] {
      peak_q = std::max(peak_q, t.a_to_sw->queue().len_pkts());
    });
    probe.start(3_ms);
    t.sim().run(10_ms);
    return peak_q;
  };
  const std::size_t reno_peak = run_one(false);
  const std::size_t dctcp_peak = run_one(true);
  EXPECT_GT(reno_peak, 100u);   // fills the buffer
  EXPECT_LT(dctcp_peak, 60u);   // stays near K
  EXPECT_LT(dctcp_peak, reno_peak / 2);
}

TEST(Dctcp, StillSaturatesLink) {
  HostPair t(Bandwidth::gbps(10), 2_us,
             {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  TcpConfig cfg;
  cfg.dctcp = true;
  TcpStack ca(*t.a, cfg);
  TcpStack cb(*t.b, cfg);
  stats::ThroughputMeter meter(100_us);
  TcpSink sink(cb, 80, &meter);
  TcpBulkSource src(ca, t.b->id(), 80);
  t.sim().run(10_ms);
  EXPECT_GT(meter.average_gbps(), 8.5);
}

TEST(ClassicEcn, SenderReducesOnEce) {
  HostPair t(Bandwidth::gbps(10), 2_us,
             {.capacity_pkts = 128, .ecn_threshold_pkts = 20});
  TcpConfig cfg;
  cfg.ecn = true;
  TcpStack ca(*t.a, cfg);
  TcpStack cb(*t.b, cfg);
  TcpSink sink(cb, 80);
  TcpBulkSource src(ca, t.b->id(), 80);
  t.sim().run(10_ms);
  // With marking but no drops, delivery is loss-free.
  EXPECT_EQ(src.connection().retransmits(), 0u);
  EXPECT_GT(sink.bytes_received(), 0);
}

TEST(TcpPerMessage, EachMessageCostsHandshakeAndSlowStart) {
  HostPair t(Bandwidth::gbps(100), 1_us);
  TcpStack ca(*t.a, {});
  TcpStack cb(*t.b, {});
  TcpSink sink(cb, 80);
  TcpPerMessageClient client(ca, t.b->id(), 80);
  std::vector<double> fcts;
  for (int i = 0; i < 10; ++i) {
    client.send_message(16'384, [&](SimTime fct, std::int64_t) {
      fcts.push_back(fct.us());
    });
  }
  t.sim().run(100_ms);
  EXPECT_EQ(client.completed(), 10u);
  EXPECT_EQ(sink.bytes_received(), 10 * 16'384);
  // Base RTT is ~4us; handshake + transfer + FIN costs several RTTs.
  for (double f : fcts) EXPECT_GT(f, 8.0);
}

TEST(Udp, DatagramsDeliveredWithoutConnection) {
  HostPair t;
  UdpSocket server(*t.b, 53);
  UdpSocket client(*t.a, 1234);
  client.send_to(t.b->id(), 53, 512);
  client.send_to(t.b->id(), 53, 256);
  t.sim().run(1_ms);
  EXPECT_EQ(server.datagrams_received(), 2u);
  EXPECT_EQ(server.bytes_received(), 768);
}

TEST(Udp, NoHandlerMeansSilentDrop) {
  HostPair t;
  UdpSocket client(*t.a, 1234);
  client.send_to(t.b->id(), 99, 100);
  t.sim().run(1_ms);
  EXPECT_EQ(t.b->unhandled_packets(), 0u);  // UDP demux without binding: dropped quietly
}

}  // namespace
}  // namespace mtp::transport
